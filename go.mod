module wcm

go 1.22
