package wcm

// Facade tests: every re-exported entry point is exercised once through
// the public API, mirroring what a downstream user writes. Deep behaviour
// is covered by the internal package suites.

import (
	"testing"
)

func TestFacadeWorkloadFlow(t *testing.T) {
	demands := DemandTrace{900, 120, 130, 110, 880, 140}
	w, err := FromDemandTrace(demands, 6)
	if err != nil {
		t.Fatal(err)
	}
	if w.WCET() != 900 || w.BCET() != 110 {
		t.Fatalf("WCET/BCET = %d/%d", w.WCET(), w.BCET())
	}
	env, err := FromDemandTraces([]DemandTrace{demands, {1000, 100, 100, 100, 100, 100}}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if env.WCET() != 1000 || env.BCET() != 100 {
		t.Fatalf("envelope WCET/BCET = %d/%d", env.WCET(), env.BCET())
	}
	a, err := NewTraceAnalyzer(demands)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := a.UpperAt(2); err != nil || v != 1020 {
		t.Fatalf("UpperAt(2) = %d, %v", v, err)
	}
}

func TestFacadeCurveConstructors(t *testing.T) {
	c, err := NewCurve([]int64{0, 5, 8}, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.MustAt(4) != 14 {
		t.Fatalf("tail value = %d", c.MustAt(4))
	}
	l, err := LinearCurve(7)
	if err != nil || l.MustAt(3) != 21 {
		t.Fatal("LinearCurve broken")
	}
}

func TestFacadeEventSequence(t *testing.T) {
	ts, err := NewEventTypeSet(
		EventType{Name: "a", BCET: 2, WCET: 4},
		EventType{Name: "b", BCET: 1, WCET: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewEventSequence(ts, "a", "b", "a")
	if err != nil {
		t.Fatal(err)
	}
	w, err := FromEventSequence(seq, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w.WCET() != 4 || w.Upper.MustAt(3) != 11 {
		t.Fatalf("sequence curves: %d %d", w.WCET(), w.Upper.MustAt(3))
	}
}

func TestFacadePollingAndTypeCounts(t *testing.T) {
	p := PollingTask{Period: 10, ThetaMin: 30, ThetaMax: 50, Ep: 9, Ec: 2}
	w, err := p.Workload(20)
	if err != nil {
		t.Fatal(err)
	}
	g, err := UpperFromTypeCounts([]TypeCountBound{{
		Name: "event", BCET: 9, WCET: 9,
		Count: func(k int) int64 { return p.NMax(k) },
	}}, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 20; k++ {
		if g.MustAt(k) != w.Upper.MustAt(k) {
			t.Fatalf("type-count route diverges at %d", k)
		}
	}
}

func TestFacadeNetcalcFlow(t *testing.T) {
	tt, err := GenerateSporadic(0, 50, 120, 400, 9)
	if err != nil {
		t.Fatal(err)
	}
	spans, err := SpansFromTrace(tt, 100)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeSpans(spans, spans)
	if err != nil || merged.MaxK() != 100 {
		t.Fatal("MergeSpans broken")
	}
	periodic, err := PeriodicSpans(100, 10)
	if err != nil || periodic.Alpha(250) != 3 {
		t.Fatal("PeriodicSpans broken")
	}

	demands, err := GenerateModalDemands([]DemandMode{
		{Lo: 10, Hi: 30, MinRun: 2, MaxRun: 5},
		{Lo: 200, Hi: 300, MinRun: 1, MaxRun: 1},
	}, 400, 4)
	if err != nil {
		t.Fatal(err)
	}
	w, err := FromDemandTrace(demands, 100)
	if err != nil {
		t.Fatal(err)
	}
	fg, err := MinFrequency(spans, w.Upper, 5)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := MinFrequencyWCET(spans, w.WCET(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if fg.Hz > fw.Hz {
		t.Fatalf("Fγ %g > Fw %g", fg.Hz, fw.Hz)
	}
	beta, err := FullService(fg.Hz * (1 + 1e-9))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := CheckServiceConstraint(spans, beta, w.Upper, 5)
	if err != nil || !ok {
		t.Fatalf("eq. 8 violated at Fγ: %v %v", ok, err)
	}
	bl, err := BacklogEvents(spans, beta, w.Upper)
	if err != nil {
		t.Fatal(err)
	}
	if bl < 1 || bl > 5+1 {
		t.Fatalf("event backlog %d incompatible with b=5 design", bl)
	}
	if _, err := DelayBound(spans, beta, w.Upper, tt.Span()); err != nil {
		t.Fatal(err)
	}
	rl, err := RateLatencyService(1e9, 100)
	if err != nil || rl.At(100) != 0 {
		t.Fatal("RateLatencyService broken")
	}
}

func TestFacadeRMSFlow(t *testing.T) {
	hi, err := NewWCETTask("hi", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := NewWCETTask("lo", 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewRMSTaskSet(hi, lo)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := set.Compare()
	if err != nil || !cmp.WCET.Schedulable() {
		t.Fatalf("classic pair must be schedulable: %v %v", cmp.WCET.Set, err)
	}
	if RMSUtilizationBound(1) != 1 {
		t.Fatal("bound broken")
	}
	res, err := SimulateFixedPriority([]SchedTask{
		{Name: "hi", Period: 2, Demands: []int64{1}},
		{Name: "lo", Period: 5, Demands: []int64{1}},
	}, 100)
	if err != nil || res.Misses != 0 {
		t.Fatalf("simulation: %d misses, %v", res.Misses, err)
	}
}

func TestFacadePipelineFlow(t *testing.T) {
	items := []PipelineItem{
		{Bits: 100, D1: 50, D2: 100},
		{Bits: 100, D1: 50, D2: 100},
	}
	st, err := RunPipeline(items, PipelineConfig{BitRate: 1e9, F1Hz: 1e9, F2Hz: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxBacklog < 1 || len(st.PE2Done) != 2 {
		t.Fatalf("pipeline stats: %+v", st)
	}
}

func TestFacadeCaseStudyFlow(t *testing.T) {
	p := DefaultCaseStudyParams(4)
	p.Clips = MPEGClipLibrary()[:1]
	a, err := AnalyzeCaseStudy(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.FGamma.Hz >= a.FWCET.Hz {
		t.Fatal("no savings in case study")
	}
	res, err := SimulateCaseStudyBacklogs(p, a, a.FGamma.Hz*1.001)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Overflowed {
		t.Fatalf("backlog results: %+v", res)
	}
	if DefaultMPEGStream(8).MBPerFrame() != 1620 {
		t.Fatal("stream geometry broken")
	}
}
