package wcm

// Facade tests for the extension APIs (dbf, shaper, chains, modal tasks,
// approximate extraction, buffer sizing, shared PEs).

import (
	"testing"
)

func TestFacadeDBFFlow(t *testing.T) {
	a, err := NewDBFWCETTask("a", 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDBFWCETTask("b", 6, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewDBFTaskSet(a, b)
	if err != nil {
		t.Fatal(err)
	}
	v, err := set.FeasibleEDF(120)
	if err != nil || !v.Feasible {
		t.Fatalf("U=1 implicit set must be EDF-feasible: %+v %v", v, err)
	}
	vc, err := set.FeasibleEDFCurve(120)
	if err != nil || !vc.Feasible {
		t.Fatalf("curve variant must also accept: %+v %v", vc, err)
	}
	res, err := SimulateEDF([]SchedTask{
		{Name: "a", Period: 4, Demands: []int64{2}},
		{Name: "b", Period: 6, Demands: []int64{3}},
	}, 240)
	if err != nil || res.Misses != 0 {
		t.Fatalf("EDF sim: %d misses, %v", res.Misses, err)
	}
}

func TestFacadeShaperFlow(t *testing.T) {
	in := TimedTrace{0, 0, 0, 100}
	sigma, err := PeriodicSpans(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ShapeTrace(in, sigma)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ShaperMaxDelay(in, out)
	if err != nil || d != 20 {
		t.Fatalf("max delay = %d, %v; want 20", d, err)
	}
}

func TestFacadeModalAndApprox(t *testing.T) {
	m := ModalTask{Modes: []ModalMode{
		{Name: "hot", Lo: 50, Hi: 90, MinRun: 1, MaxRun: 2},
		{Name: "cold", Lo: 5, Hi: 10, MinRun: 2, MaxRun: 4},
	}}
	w, err := m.Workload(12)
	if err != nil {
		t.Fatal(err)
	}
	if w.WCET() != 90 {
		t.Fatalf("modal WCET = %d", w.WCET())
	}
	demands, err := GenerateModalDemands([]DemandMode{
		{Lo: 50, Hi: 90, MinRun: 1, MaxRun: 2},
		{Lo: 5, Hi: 10, MinRun: 2, MaxRun: 4},
	}, 300, 9)
	if err != nil {
		t.Fatal(err)
	}
	an, err := NewTraceAnalyzer(demands)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := an.Workload(50)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := ApproxWorkload(an, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 50; k++ {
		if approx.Upper.MustAt(k) < exact.Upper.MustAt(k) {
			t.Fatalf("approx below exact at %d", k)
		}
	}
}

func TestFacadeMinBufferAndSharedPE(t *testing.T) {
	hiT, err := GenerateSporadic(0, 200, 500, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	hiSpans, err := SpansFromTrace(hiT, 50)
	if err != nil {
		t.Fatal(err)
	}
	hiGamma, err := LinearCurve(40)
	if err != nil {
		t.Fatal(err)
	}
	loT, err := GenerateSporadic(0, 400, 900, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	loSpans, err := SpansFromTrace(loT, 50)
	if err != nil {
		t.Fatal(err)
	}
	loGamma, err := LinearCurve(60)
	if err != nil {
		t.Fatal(err)
	}
	beta, err := FullService(1e9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MinBuffer(loSpans, beta, loGamma)
	if err != nil || b < 1 {
		t.Fatalf("MinBuffer = %d, %v", b, err)
	}
	rep, err := AnalyzeSharedPE(beta, hiSpans, hiGamma, loSpans, loGamma, loT.Span())
	if err != nil {
		t.Fatal(err)
	}
	if rep.BacklogEvents < 1 || rep.DelayNs < 1 {
		t.Fatalf("shared-PE report degenerate: %+v", rep)
	}
	lo, err := LeftoverService(beta, hiSpans, hiGamma, loT.Span())
	if err != nil {
		t.Fatal(err)
	}
	if lo.At(1000) > beta.At(1000) {
		t.Fatal("leftover exceeds capacity")
	}
}

func TestFacadeChainFlow(t *testing.T) {
	release := make(TimedTrace, 100)
	for i := range release {
		release[i] = int64(i) * 2_000
	}
	spans, err := SpansFromTrace(release, 30)
	if err != nil {
		t.Fatal(err)
	}
	g, err := LinearCurve(500)
	if err != nil {
		t.Fatal(err)
	}
	stages := []ChainStage{
		{Name: "s0", Gamma: g, FreqHz: 1e9, BufferEvents: 8},
		{Name: "s1", Gamma: g, FreqHz: 1e9, BufferEvents: 8},
	}
	reports, err := AnalyzeChain(spans, stages, release.Span()*2)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 || ChainEndToEndDelay(reports) <= 0 {
		t.Fatalf("chain reports: %+v", reports)
	}
	items := make([]ChainItem, len(release))
	for i := range items {
		items[i] = ChainItem{ReadyAt: release[i], D: []int64{500, 500}}
	}
	st, err := RunChain(items, ChainConfig{BitRate: 1, Stages: []ChainStageConfig{
		{Name: "s0", Hz: 1e9}, {Name: "s1", Hz: 1e9},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for s := range stages {
		if st.MaxBacklog[s] > reports[s].BacklogEvents {
			t.Fatalf("stage %d sim backlog %d > bound %d", s, st.MaxBacklog[s], reports[s].BacklogEvents)
		}
	}
}

func TestFacadeCaseStudySweeps(t *testing.T) {
	p := DefaultCaseStudyParams(4)
	p.Clips = MPEGClipLibrary()[:1]
	a, err := AnalyzeCaseStudy(p)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := CaseStudyBufferSweep(a, []int{810, 1620})
	if err != nil || len(bs) != 2 {
		t.Fatalf("buffer sweep: %v %v", bs, err)
	}
	ws, err := CaseStudyWindowSweep(a, []int{1, 2})
	if err != nil || len(ws) != 2 {
		t.Fatalf("window sweep: %v %v", ws, err)
	}
	if ws[0].FGammaHz < ws[1].FGammaHz-1e-6 {
		t.Fatal("shorter window must not tighten the bound")
	}
}
