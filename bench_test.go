package wcm

// One benchmark per paper artifact (see DESIGN.md §4): each regenerates the
// corresponding figure/table from scratch, so `go test -bench=.` doubles as
// the reproduction harness timing report. Small instances are used so a
// benchmark iteration stays in the millisecond range; cmd/paperfigs runs
// the full-size experiment.

import (
	"testing"

	"wcm/internal/casestudy"
	"wcm/internal/core"
	"wcm/internal/events"
	"wcm/internal/mpeg2"
	"wcm/internal/netcalc"
	"wcm/internal/rms"
	"wcm/internal/sched"
)

// BenchmarkFig1EventSequence regenerates Fig. 1: workload-curve extraction
// from the typed event sequence with the worked γ_b(3,4)/γ_w(3,4) values.
func BenchmarkFig1EventSequence(b *testing.B) {
	ts := events.MustNewTypeSet(
		events.Type{Name: "a", BCET: 2, WCET: 4},
		events.Type{Name: "b", BCET: 1, WCET: 3},
		events.Type{Name: "c", BCET: 1, WCET: 3},
	)
	seq := events.MustNewSequence(ts, "a", "b", "a", "b", "c", "c", "a", "a", "c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gb, err := seq.GammaB(3, 4)
		if err != nil || gb != 5 {
			b.Fatalf("γ_b(3,4) = %d, %v", gb, err)
		}
		gw, err := seq.GammaW(3, 4)
		if err != nil || gw != 13 {
			b.Fatalf("γ_w(3,4) = %d, %v", gw, err)
		}
		if _, err := core.FromSequence(seq, seq.Len()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2PollingCurves regenerates Fig. 2: the analytic polling-task
// workload curves with θmin = 3T, θmax = 5T.
func BenchmarkFig2PollingCurves(b *testing.B) {
	p := core.PollingTask{Period: 10, ThetaMin: 30, ThetaMax: 50, Ep: 9, Ec: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, err := p.Workload(64)
		if err != nil {
			b.Fatal(err)
		}
		if w.Upper.MustAt(3) != 20 || w.Lower.MustAt(5) != 17 {
			b.Fatal("Fig. 2 golden values broken")
		}
	}
}

// BenchmarkTableRMS regenerates the Sec. 3.1 comparison: the classical
// Lehoczky test vs the workload-curve test on the polling task set.
func BenchmarkTableRMS(b *testing.B) {
	p := core.PollingTask{Period: 10, ThetaMin: 30, ThetaMax: 50, Ep: 9, Ec: 2}
	w, err := p.Workload(64)
	if err != nil {
		b.Fatal(err)
	}
	lo, err := rms.WCETTask("worker", 40, 16)
	if err != nil {
		b.Fatal(err)
	}
	ts, err := rms.NewTaskSet(rms.Task{Name: "poller", Period: 10, Gamma: w.Upper}, lo)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cmp, err := ts.Compare()
		if err != nil {
			b.Fatal(err)
		}
		if cmp.WCET.Schedulable() || !cmp.Curve.Schedulable() {
			b.Fatal("Sec. 3.1 outcome broken")
		}
	}
}

// benchParams is the reduced case-study instance used by the Fig. 6 / Fmin
// / Fig. 7 benchmarks.
func benchParams() casestudy.Params {
	p := casestudy.DefaultParams(4)
	p.Clips = mpeg2.Library()[:2]
	return p
}

// BenchmarkFig6WorkloadCurves regenerates Fig. 6: trace generation plus
// workload-curve extraction for the MPEG-2 decoder's PE2 subtask.
func BenchmarkFig6WorkloadCurves(b *testing.B) {
	p := benchParams()
	ct, err := casestudy.BuildClipTrace(p, p.Clips[0])
	if err != nil {
		b.Fatal(err)
	}
	maxK := p.WindowFrames * 1620
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := core.FromTrace(ct.D2, maxK)
		if err != nil {
			b.Fatal(err)
		}
		if w.WCET() <= w.BCET() {
			b.Fatal("degenerate curves")
		}
	}
}

// BenchmarkTableFmin regenerates the headline numbers: Fᵞmin (eq. 9) vs
// Fʷmin (eq. 10) for the two-clip instance, end to end.
func BenchmarkTableFmin(b *testing.B) {
	p := benchParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, err := casestudy.Analyze(p)
		if err != nil {
			b.Fatal(err)
		}
		if a.FGamma.Hz >= a.FWCET.Hz {
			b.Fatal("workload curves must beat WCET")
		}
	}
}

// BenchmarkFig7Backlogs regenerates Fig. 7: the per-clip maximum FIFO
// backlog simulation at Fᵞmin.
func BenchmarkFig7Backlogs(b *testing.B) {
	p := benchParams()
	a, err := casestudy.Analyze(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := casestudy.SimulateBacklogs(p, a.Traces, a.FGamma.Hz*1.001)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.Overflowed {
				b.Fatal("eq. 8 guarantee broken")
			}
		}
	}
}

// --- ablations (EXPERIMENTS.md §Ablations) --------------------------------

// BenchmarkAblationBufferSweep regenerates ABL-BUFFER: Fᵞmin/Fʷmin as a
// function of FIFO size, from ¼ frame to 3 frames.
func BenchmarkAblationBufferSweep(b *testing.B) {
	p := benchParams()
	a, err := casestudy.Analyze(p)
	if err != nil {
		b.Fatal(err)
	}
	buffers := []int{405, 810, 1620, 2430, 3000} // within the 2-frame window table
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := casestudy.BufferSweep(a, buffers)
		if err != nil {
			b.Fatal(err)
		}
		for j := 1; j < len(pts); j++ {
			if pts[j].FGammaHz > pts[j-1].FGammaHz {
				b.Fatal("Fmin must fall with buffer size")
			}
		}
	}
}

// BenchmarkAblationWindowSweep regenerates ABL-WINDOW: how Fᵞmin loosens
// when the trace-analysis window shrinks.
func BenchmarkAblationWindowSweep(b *testing.B) {
	p := benchParams()
	a, err := casestudy.Analyze(p)
	if err != nil {
		b.Fatal(err)
	}
	windows := []int{1, 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := casestudy.WindowSweep(a, windows)
		if err != nil {
			b.Fatal(err)
		}
		if pts[0].FGammaHz < pts[len(pts)-1].FGammaHz-1 {
			b.Fatal("shorter windows must not yield tighter bounds")
		}
	}
}

// --- micro-benchmarks for the hot paths ----------------------------------

// BenchmarkAnalyzerUpperAt measures the O(n) single-k workload query on a
// frame-sized trace.
func BenchmarkAnalyzerUpperAt(b *testing.B) {
	d, err := events.ModalDemands([]events.Mode{
		{Lo: 100, Hi: 900, MinRun: 3, MaxRun: 9},
		{Lo: 2000, Hi: 9000, MinRun: 1, MaxRun: 2},
	}, 16200, 7)
	if err != nil {
		b.Fatal(err)
	}
	a, err := core.NewAnalyzer(d)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.UpperAt(1620); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinFrequency measures the eq. 9 search over a 10k-entry span
// table.
func BenchmarkMinFrequency(b *testing.B) {
	tt, err := events.Sporadic(0, 10_000, 40_000, 12_000, 3)
	if err != nil {
		b.Fatal(err)
	}
	spans, err := SpansFromTrace(tt, 10_000)
	if err != nil {
		b.Fatal(err)
	}
	d, err := events.ModalDemands([]events.Mode{
		{Lo: 500, Hi: 800, MinRun: 4, MaxRun: 9},
		{Lo: 5000, Hi: 9000, MinRun: 1, MaxRun: 1},
	}, 12_000, 5)
	if err != nil {
		b.Fatal(err)
	}
	w, err := core.FromTrace(d, 10_000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := netcalc.MinFrequency(spans, w.Upper, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineRun measures the transaction-level two-PE simulation on
// one frame of macroblocks.
func BenchmarkPipelineRun(b *testing.B) {
	p := benchParams()
	ct, err := casestudy.BuildClipTrace(p, p.Clips[0])
	if err != nil {
		b.Fatal(err)
	}
	cfg := PipelineConfig{BitRate: 9_780_000, F1Hz: 300e6, F2Hz: 350e6}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunPipeline(ct.Items, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactExtraction and BenchmarkApproxExtraction quantify the
// EXT-APPROX tradeoff: full O(n·K) curve extraction vs the strided
// conservative variant on a one-second-of-video-sized trace.
func BenchmarkExactExtraction(b *testing.B) {
	a := extractionAnalyzer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Workload(4000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApproxExtraction(b *testing.B) {
	a := extractionAnalyzer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ApproxWorkload(a, 4000, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func extractionAnalyzer(b *testing.B) *core.Analyzer {
	b.Helper()
	d, err := events.ModalDemands([]events.Mode{
		{Lo: 100, Hi: 900, MinRun: 3, MaxRun: 9},
		{Lo: 2000, Hi: 9000, MinRun: 1, MaxRun: 2},
	}, 40_000, 7)
	if err != nil {
		b.Fatal(err)
	}
	a, err := core.NewAnalyzer(d)
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// --- extraction-kernel benchmarks (BENCH_extract.json) --------------------
//
// Case-study-sized inputs: n ≥ 10⁴ activations, K ≥ 2·10³ window lengths —
// the scale at which the MPEG-2 clips and the DVS-style frequency sweeps
// exercise extraction. The *Naive variants measure the pre-kernel path
// (one full pass per curve per k) the speedup criterion is judged against;
// cmd/benchjson runs the same pairs and emits BENCH_extract.json.

const (
	extractBenchN = 40_000
	extractBenchK = 4_000
)

// BenchmarkExtractWorkload measures fused/blocked/pool-parallel workload-
// curve extraction (γᵘ and γˡ together) through the shared kernel.
func BenchmarkExtractWorkload(b *testing.B) {
	a := extractionAnalyzer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Workload(extractBenchK); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtractWorkloadNaive measures the pre-kernel extraction: one
// O(n) pass per curve per k via the single-k queries.
func BenchmarkExtractWorkloadNaive(b *testing.B) {
	a := extractionAnalyzer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 1; k <= extractBenchK; k++ {
			if _, err := a.UpperAt(k); err != nil {
				b.Fatal(err)
			}
			if _, err := a.LowerAt(k); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func extractionTimedTrace(b *testing.B) TimedTrace {
	b.Helper()
	tt, err := events.Sporadic(0, 10_000, 40_000, extractBenchN, 3)
	if err != nil {
		b.Fatal(err)
	}
	return tt
}

// BenchmarkExtractSpans measures fused span-table extraction — minimal
// d(k) and maximal D(k) in one kernel sweep.
func BenchmarkExtractSpans(b *testing.B) {
	tt := extractionTimedTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ExtractSpans(tt, extractBenchK); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtractSpansNaive measures the pre-kernel span extraction: one
// full pass per table per k.
func BenchmarkExtractSpansNaive(b *testing.B) {
	tt := extractionTimedTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mins := make(Spans, extractBenchK)
		maxs := make(MaxSpans, extractBenchK)
		for k := 2; k <= extractBenchK; k++ {
			best := tt[k-1] - tt[0]
			for j := 1; j+k-1 < len(tt); j++ {
				if d := tt[j+k-1] - tt[j]; d < best {
					best = d
				}
			}
			mins[k-1] = best
			worst := int64(0)
			for j := 0; j+k-1 < len(tt); j++ {
				if d := tt[j+k-1] - tt[j]; d > worst {
					worst = d
				}
			}
			maxs[k-1] = worst
		}
	}
}

// BenchmarkAdmitsAnalyzed measures the monitor-path admissibility check on
// an admissible trace (no early exit — the full fused scan runs to maxK)
// with the Analyzer built once outside the loop.
func BenchmarkAdmitsAnalyzed(b *testing.B) {
	a := extractionAnalyzer(b)
	w, err := a.Workload(extractBenchK)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := w.AdmitsAnalyzed(a)
		if err != nil {
			b.Fatal(err)
		}
		if v != nil {
			b.Fatalf("own trace rejected: %+v", *v)
		}
	}
}

// BenchmarkSchedSimulate measures the fixed-priority scheduler over a
// 100k-unit horizon with three tasks.
func BenchmarkSchedSimulate(b *testing.B) {
	tasks := []sched.Task{
		{Name: "a", Period: 10, Demands: []int64{2, 1, 1}},
		{Name: "b", Period: 35, Demands: []int64{9}},
		{Name: "c", Period: 100, Demands: []int64{20, 5}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := sched.Simulate(tasks, 100_000)
		if err != nil || res.Misses != 0 {
			b.Fatalf("misses=%d err=%v", res.Misses, err)
		}
	}
}
