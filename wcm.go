// Package wcm is a Go implementation of the workload characterization model
// of Maxiaguine, Künzli and Thiele, "Workload Characterization Model for
// Tasks with Variable Execution Demand" (DATE 2004).
//
// The central abstraction is the workload curve pair (γᵘ, γˡ): guaranteed
// upper and lower bounds on the processor cycles consumed by any k
// consecutive activations of a task. Unlike a single WCET value, workload
// curves capture correlation between consecutive demands ("at most one
// expensive activation in any three"), which tightens schedulability tests
// and system-level performance bounds without giving up hard guarantees.
//
// The package re-exports the stable public API of the implementation
// packages:
//
//   - workload curves: Workload, FromDemandTrace, FromDemandTraces,
//     TraceAnalyzer, PollingTask (the paper's Example 1);
//   - event modelling: EventType, EventSequence, DemandTrace, TimedTrace
//     and deterministic generators;
//   - arrival/service curves and Network-Calculus bounds: Spans,
//     SpansFromTrace, BacklogEvents, MinFrequency (eq. 9),
//     MinFrequencyWCET (eq. 10), CheckServiceConstraint (eq. 8);
//   - rate-monotonic analysis: RMSTask, RMSTaskSet with the classical
//     Lehoczky test (eq. 3) and the workload-curve test (eq. 4);
//   - the MPEG-2 case study: CaseStudyParams, AnalyzeCaseStudy,
//     SimulateCaseStudyBacklogs (Fig. 6, Fmin, Fig. 7);
//   - streaming: CurveStream (incremental sliding-window curve
//     maintenance) and WCMDServer, the HTTP service behind cmd/wcmd.
//
// See the runnable programs under examples/ for entry points, and DESIGN.md
// for the mapping between paper artifacts and modules.
package wcm

import (
	"wcm/internal/arrival"
	"wcm/internal/casestudy"
	"wcm/internal/chain"
	"wcm/internal/core"
	"wcm/internal/curve"
	"wcm/internal/dbf"
	"wcm/internal/events"
	"wcm/internal/mpeg2"
	"wcm/internal/netcalc"
	"wcm/internal/pipeline"
	"wcm/internal/power"
	"wcm/internal/pwl"
	"wcm/internal/rms"
	"wcm/internal/sched"
	"wcm/internal/server"
	"wcm/internal/service"
	"wcm/internal/shaper"
	"wcm/internal/stream"
	"wcm/internal/wirefmt"
)

// ---- Curves -------------------------------------------------------------

// Curve is an integer-valued monotone curve over the activation-count
// domain k ≥ 0 (workload curves, demand-bound functions).
type Curve = curve.Curve

// PWLCurve is a piecewise-linear curve over the time-interval domain
// (arrival and service curves).
type PWLCurve = pwl.Curve

// PWLPoint is a breakpoint of a PWLCurve.
type PWLPoint = pwl.Point

// NewCurve builds a k-domain curve from explicit values and an optional
// exact periodic tail; see curve.New.
func NewCurve(vals []int64, period int, delta int64) (Curve, error) {
	return curve.New(vals, period, delta)
}

// LinearCurve returns γ(k) = rate·k, the single-value WCET/BCET abstraction.
func LinearCurve(rate int64) (Curve, error) { return curve.Linear(rate) }

// ---- Events and traces --------------------------------------------------

// EventType is a typed trigger with a [BCET, WCET] execution interval.
type EventType = events.Type

// EventTypeSet is the finite alphabet of event types.
type EventTypeSet = events.TypeSet

// EventSequence is an ordered sequence of typed events (paper Fig. 1).
type EventSequence = events.Sequence

// DemandTrace is a per-activation cycle-demand trace.
type DemandTrace = events.DemandTrace

// TimedTrace is a sorted sequence of event timestamps in nanoseconds.
type TimedTrace = events.TimedTrace

// NewEventTypeSet builds a validated event-type alphabet.
func NewEventTypeSet(types ...EventType) (*EventTypeSet, error) {
	return events.NewTypeSet(types...)
}

// NewEventSequence resolves named events against a type set.
func NewEventSequence(set *EventTypeSet, names ...string) (*EventSequence, error) {
	return events.NewSequence(set, names...)
}

// GeneratePollingDemands produces a deterministic demand trace of the
// paper's Example 1 polling task (see PollingTask for the parameters).
func GeneratePollingDemands(pollPeriod, thetaMin, thetaMax, ep, ec int64, n int, seed uint64) (DemandTrace, error) {
	return events.PollingDemands(pollPeriod, thetaMin, thetaMax, ep, ec, n, seed)
}

// GenerateSporadic produces a deterministic timed trace with inter-arrival
// times uniform in [minGap, maxGap].
func GenerateSporadic(t0, minGap, maxGap int64, n int, seed uint64) (TimedTrace, error) {
	return events.Sporadic(t0, minGap, maxGap, n, seed)
}

// DemandMode is one mode of a multi-mode demand generator.
type DemandMode = events.Mode

// GenerateModalDemands produces a deterministic demand trace cycling
// through the given modes (the SPI-style multi-mode processes the paper
// builds on).
func GenerateModalDemands(modes []DemandMode, n int, seed uint64) (DemandTrace, error) {
	return events.ModalDemands(modes, n, seed)
}

// ---- Workload curves (the paper's contribution) -------------------------

// Workload is a task's (γᵘ, γˡ) characterization.
type Workload = core.Workload

// TraceAnalyzer extracts workload curves from demand traces with O(n)
// single-k queries.
type TraceAnalyzer = core.Analyzer

// PollingTask is the paper's Example 1 (Sec. 2.2 / Fig. 2).
type PollingTask = core.PollingTask

// TypeCountBound is a per-type occurrence constraint for analytic upper
// workload curves.
type TypeCountBound = core.TypeCountBound

// NewTraceAnalyzer builds an analyzer over a demand trace.
func NewTraceAnalyzer(d DemandTrace) (*TraceAnalyzer, error) { return core.NewAnalyzer(d) }

// FromDemandTrace extracts (γᵘ, γˡ) from one demand trace up to window maxK.
func FromDemandTrace(d DemandTrace, maxK int) (Workload, error) { return core.FromTrace(d, maxK) }

// FromDemandTraces extracts the envelope characterization over several
// traces (max of uppers, min of lowers), as in the paper's case study.
func FromDemandTraces(traces []DemandTrace, maxK int) (Workload, error) {
	return core.FromTraces(traces, maxK)
}

// FromEventSequence extracts (γᵘ, γˡ) from a typed event sequence.
func FromEventSequence(s *EventSequence, maxK int) (Workload, error) {
	return core.FromSequence(s, maxK)
}

// UpperFromTypeCounts derives an analytic γᵘ from per-type count bounds.
func UpperFromTypeCounts(bounds []TypeCountBound, defaultWCET int64, maxK int) (Curve, error) {
	return core.UpperFromTypeCounts(bounds, defaultWCET, maxK)
}

// ---- Arrival and service curves -----------------------------------------

// Spans is the minimal-span table d(k) of an event trace; its pseudo-
// inverse is the arrival curve ᾱ(Δ).
type Spans = arrival.Spans

// SpansFromTrace extracts d(k) = min_j(t[j+k−1] − t[j]) for k = 1..maxK.
func SpansFromTrace(tt TimedTrace, maxK int) (Spans, error) { return arrival.FromTrace(tt, maxK) }

// ExtractSpans extracts both span tables — minimal d(k) and maximal D(k) —
// in one fused pass of the shared extraction kernel.
func ExtractSpans(tt TimedTrace, maxK int) (Spans, MaxSpans, error) {
	return arrival.ExtractSpans(tt, maxK)
}

// MergeSpans combines span tables from several traces (per-k minimum).
func MergeSpans(tables ...Spans) (Spans, error) { return arrival.Merge(tables...) }

// PeriodicSpans returns the exact span table of a periodic stream.
func PeriodicSpans(period int64, maxK int) (Spans, error) { return arrival.Periodic(period, maxK) }

// FullService returns β(Δ) = F·Δ for a fully available processor.
func FullService(freqHz float64) (PWLCurve, error) { return service.Full(freqHz) }

// RateLatencyService returns β(Δ) = max(0, rate·(Δ − latency)).
func RateLatencyService(freqHz float64, latencyNs int64) (PWLCurve, error) {
	return service.RateLatency(freqHz, latencyNs)
}

// ---- Network-Calculus results (paper Sec. 3.2) ---------------------------

// MinFrequencyResult reports a minimum-frequency computation.
type MinFrequencyResult = netcalc.MinFrequencyResult

// BacklogEvents bounds the FIFO backlog in events (eq. 7).
func BacklogEvents(spans Spans, beta PWLCurve, gammaU Curve) (int, error) {
	return netcalc.BacklogEvents(spans, beta, gammaU)
}

// CheckServiceConstraint verifies the buffer-overflow-free condition
// β(Δ) ≥ γᵘ(ᾱ(Δ) − b) (eq. 8).
func CheckServiceConstraint(spans Spans, beta PWLCurve, gammaU Curve, b int) (bool, error) {
	return netcalc.CheckServiceConstraint(spans, beta, gammaU, b)
}

// MinFrequency computes Fᵞmin of eq. (9).
func MinFrequency(spans Spans, gammaU Curve, b int) (MinFrequencyResult, error) {
	return netcalc.MinFrequency(spans, gammaU, b)
}

// MinFrequencyWCET computes the conventional Fʷmin of eq. (10).
func MinFrequencyWCET(spans Spans, wcet int64, b int) (MinFrequencyResult, error) {
	return netcalc.MinFrequencyWCET(spans, wcet, b)
}

// DelayBound computes the Network-Calculus delay bound for the stream.
func DelayBound(spans Spans, beta PWLCurve, gammaU Curve, horizon int64) (int64, error) {
	return netcalc.DelayBound(spans, beta, gammaU, horizon)
}

// MinBuffer answers the dual design question of eq. (8): the smallest FIFO
// size that avoids overflow at a FIXED processor frequency.
func MinBuffer(spans Spans, beta PWLCurve, gammaU Curve) (int, error) {
	return netcalc.MinBuffer(spans, beta, gammaU)
}

// SharedPEReport bounds the low-priority stream of a shared processor.
type SharedPEReport = netcalc.SharedPEReport

// LeftoverService returns the service remaining for a low-priority task
// after a high-priority stream's worst-case preemption.
func LeftoverService(beta PWLCurve, hiSpans Spans, hiGamma Curve, horizon int64) (PWLCurve, error) {
	return netcalc.LeftoverService(beta, hiSpans, hiGamma, horizon)
}

// AnalyzeSharedPE bounds backlog and delay of the low-priority stream on a
// fixed-priority shared processor.
func AnalyzeSharedPE(beta PWLCurve, hiSpans Spans, hiGamma Curve, loSpans Spans, loGamma Curve, horizon int64) (SharedPEReport, error) {
	return netcalc.AnalyzeSharedPE(beta, hiSpans, hiGamma, loSpans, loGamma, horizon)
}

// ---- Rate-monotonic analysis (paper Sec. 3.1) ----------------------------

// RMSTask is a periodic task characterized by an upper workload curve.
type RMSTask = rms.Task

// RMSTaskSet is a rate-monotonic task set.
type RMSTaskSet = rms.TaskSet

// RMSComparison holds the classical (eq. 3) and workload-curve (eq. 4)
// schedulability factors side by side.
type RMSComparison = rms.Comparison

// NewRMSTaskSet validates and priority-orders a task set.
func NewRMSTaskSet(tasks ...RMSTask) (RMSTaskSet, error) { return rms.NewTaskSet(tasks...) }

// NewWCETTask builds a task with the single-value WCET characterization.
func NewWCETTask(name string, period, wcet int64) (RMSTask, error) {
	return rms.WCETTask(name, period, wcet)
}

// RMSUtilizationBound returns the Liu & Layland bound n(2^{1/n} − 1).
func RMSUtilizationBound(n int) float64 { return rms.UtilizationBound(n) }

// ---- Scheduler simulation ------------------------------------------------

// SchedTask is a periodic task for fixed-priority preemptive simulation.
type SchedTask = sched.Task

// SchedResult is the outcome of a scheduler simulation.
type SchedResult = sched.Result

// SimulateFixedPriority runs the preemptive fixed-priority simulation.
func SimulateFixedPriority(tasks []SchedTask, horizon int64) (SchedResult, error) {
	return sched.Simulate(tasks, horizon)
}

// ---- Streaming pipeline and MPEG-2 case study ----------------------------

// PipelineItem is one unit of work in the two-PE pipeline.
type PipelineItem = pipeline.Item

// PipelineConfig holds the two-PE architecture parameters.
type PipelineConfig = pipeline.Config

// PipelineStats is the outcome of a pipeline simulation.
type PipelineStats = pipeline.Stats

// RunPipeline simulates the CBR → PE1 → FIFO → PE2 architecture (Fig. 5).
func RunPipeline(items []PipelineItem, cfg PipelineConfig) (PipelineStats, error) {
	return pipeline.Run(items, cfg)
}

// MPEGClip is a synthetic video-clip profile.
type MPEGClip = mpeg2.Clip

// MPEGStreamConfig is the stream geometry (resolution, fps, bitrate, GOP).
type MPEGStreamConfig = mpeg2.StreamConfig

// MPEGClipLibrary returns the 14 synthetic clips of the case study.
func MPEGClipLibrary() []MPEGClip { return mpeg2.Library() }

// DefaultMPEGStream returns the paper's stream parameters (720×576, 25 fps,
// 9.78 Mbit/s, GOP 12/3) for the given clip length.
func DefaultMPEGStream(frames int) MPEGStreamConfig { return mpeg2.DefaultStream(frames) }

// CaseStudyParams configures the end-to-end MPEG-2 experiment.
type CaseStudyParams = casestudy.Params

// CaseStudyAnalysis is the merged analysis result (curves, Fᵞmin, Fʷmin).
type CaseStudyAnalysis = casestudy.Analysis

// CaseStudyBacklog is one bar of Fig. 7.
type CaseStudyBacklog = casestudy.BacklogResult

// DefaultCaseStudyParams returns the paper's setup for the given clip
// length in frames.
func DefaultCaseStudyParams(frames int) CaseStudyParams { return casestudy.DefaultParams(frames) }

// AnalyzeCaseStudy runs trace generation, curve extraction and the
// frequency computations of eq. (9)/(10).
func AnalyzeCaseStudy(p CaseStudyParams) (*CaseStudyAnalysis, error) { return casestudy.Analyze(p) }

// SimulateCaseStudyBacklogs reruns the clips at the given PE2 frequency and
// reports normalized maximum FIFO backlogs (Fig. 7).
func SimulateCaseStudyBacklogs(p CaseStudyParams, a *CaseStudyAnalysis, f2Hz float64) ([]CaseStudyBacklog, error) {
	return casestudy.SimulateBacklogs(p, a.Traces, f2Hz)
}

// CaseStudyBufferPoint is one row of the buffer-size ablation.
type CaseStudyBufferPoint = casestudy.BufferPoint

// CaseStudyWindowPoint is one row of the analysis-window ablation.
type CaseStudyWindowPoint = casestudy.WindowPoint

// CaseStudyBufferSweep recomputes the minimum frequencies for several FIFO
// sizes from one analysis.
func CaseStudyBufferSweep(a *CaseStudyAnalysis, buffers []int) ([]CaseStudyBufferPoint, error) {
	return casestudy.BufferSweep(a, buffers)
}

// CaseStudyWindowSweep quantifies the cost of shorter trace-analysis
// windows (curves conservatively extended by their additivity properties).
func CaseStudyWindowSweep(a *CaseStudyAnalysis, windowsFrames []int) ([]CaseStudyWindowPoint, error) {
	return casestudy.WindowSweep(a, windowsFrames)
}

// ---- Extensions: EDF demand-bound functions and greedy shaping ----------

// DBFTask is a sporadic task with constrained deadline for EDF feasibility
// analysis; its demand goes through an upper workload curve.
type DBFTask = dbf.Task

// DBFTaskSet is a set of sporadic tasks for the processor-demand criterion.
type DBFTaskSet = dbf.TaskSet

// DBFVerdict is the outcome of an EDF feasibility check.
type DBFVerdict = dbf.Verdict

// NewDBFTaskSet validates a sporadic task set.
func NewDBFTaskSet(tasks ...DBFTask) (DBFTaskSet, error) { return dbf.NewTaskSet(tasks...) }

// NewDBFWCETTask builds a sporadic task with the single-WCET demand model.
func NewDBFWCETTask(name string, period, deadline, wcet int64) (DBFTask, error) {
	return dbf.WCETTask(name, period, deadline, wcet)
}

// SimulateEDF runs a preemptive earliest-deadline-first simulation.
func SimulateEDF(tasks []SchedTask, horizon int64) (SchedResult, error) {
	return sched.SimulateEDF(tasks, horizon)
}

// ShapeTrace passes a timed trace through a greedy shaper so its minimal
// spans dominate the shaping table sigma.
func ShapeTrace(tt TimedTrace, sigma Spans) (TimedTrace, error) { return shaper.Shape(tt, sigma) }

// ShaperMaxDelay returns the largest per-event delay a shaping pass
// introduced.
func ShaperMaxDelay(in, out TimedTrace) (int64, error) { return shaper.MaxDelay(in, out) }

// ---- Modal tasks and approximate extraction ------------------------------

// ModalMode is one operating mode of an SPI-style multi-mode process.
type ModalMode = core.ModalMode

// ModalTask characterizes a task as a walk over a mode graph; its Workload
// method computes exact workload curves by dynamic programming.
type ModalTask = core.ModalTask

// ApproxWorkload extracts conservatively rounded workload curves in
// O(n·K/stride) instead of O(n·K); all downstream bounds stay sound.
func ApproxWorkload(a *TraceAnalyzer, maxK, stride int) (Workload, error) {
	return core.ApproxWorkload(a, maxK, stride)
}

// WorstTrace synthesizes the greedy-worst demand sequence consistent with
// an upper workload curve (adversarial input for simulations).
func WorstTrace(gammaU Curve, n int) (DemandTrace, error) { return core.WorstTrace(gammaU, n) }

// WorkloadViolation reports where a trace breaks a characterization.
type WorkloadViolation = core.Violation

// ---- Lower arrival curves (guaranteed throughput) -------------------------

// MaxSpans is the maximal-span table D(k); its pseudo-inverse is the lower
// arrival curve ᾱˡ(Δ) — events guaranteed in any window.
type MaxSpans = arrival.MaxSpans

// MaxSpansFromTrace extracts D(k) = max_j(t[j+k−1] − t[j]).
func MaxSpansFromTrace(tt TimedTrace, maxK int) (MaxSpans, error) {
	return arrival.MaxSpansFromTrace(tt, maxK)
}

// MergeMaxSpans combines maximal-span tables (per-k maximum).
func MergeMaxSpans(tables ...MaxSpans) (MaxSpans, error) { return arrival.MergeMax(tables...) }

// ---- Power -----------------------------------------------------------------

// PowerModel selects how supply voltage tracks frequency.
type PowerModel = power.Model

// Power model constants.
const (
	PowerFrequencyOnly = power.FrequencyOnly
	PowerVoltageScaled = power.VoltageScaled
)

// PowerSavings summarizes the power/energy effect of the frequency saving.
type PowerSavings = power.Savings

// ComparePower translates a frequency reduction into dynamic-power and
// energy ratios under the chosen model.
func ComparePower(fGammaHz, fWCETHz float64, m PowerModel) (PowerSavings, error) {
	return power.Compare(fGammaHz, fWCETHz, m)
}

// ---- Multi-stage chains ---------------------------------------------------

// ChainItem is one unit of work in an N-stage pipeline.
type ChainItem = pipeline.ChainItem

// ChainStageConfig is one processing element of a simulated chain.
type ChainStageConfig = pipeline.StageConfig

// ChainConfig is the N-stage architecture for simulation.
type ChainConfig = pipeline.ChainConfig

// ChainStats is the outcome of a chain simulation.
type ChainStats = pipeline.ChainStats

// RunChain simulates an N-stage pipeline (generalizing RunPipeline).
func RunChain(items []ChainItem, cfg ChainConfig) (ChainStats, error) {
	return pipeline.RunChain(items, cfg)
}

// ChainStage is one processing element for compositional analysis.
type ChainStage = chain.Stage

// ChainReport is the per-stage analysis outcome.
type ChainReport = chain.Report

// AnalyzeChain derives per-stage delay/backlog bounds and propagates sound
// arrival bounds through a multi-PE chain.
func AnalyzeChain(in Spans, stages []ChainStage, horizon int64) ([]ChainReport, error) {
	return chain.Analyze(in, stages, horizon)
}

// ChainEndToEndDelay sums the per-stage delay bounds of a chain analysis.
func ChainEndToEndDelay(reports []ChainReport) int64 { return chain.EndToEndDelay(reports) }

// ChainEndToEndDelayPBOO computes the tandem-service ("pay bursts only
// once") end-to-end delay bound; see chain.EndToEndDelayPBOO for the
// grid-resolution caveat.
func ChainEndToEndDelayPBOO(in Spans, stages []ChainStage, horizon int64) (int64, error) {
	return chain.EndToEndDelayPBOO(in, stages, horizon)
}

// PEStreamSpec characterizes one stream competing for a shared processor.
type PEStreamSpec = netcalc.StreamSpec

// AnalyzePriorityPE bounds every stream of an N-priority shared processor.
func AnalyzePriorityPE(beta PWLCurve, streams []PEStreamSpec, horizon int64) ([]SharedPEReport, error) {
	return netcalc.AnalyzePriorityPE(beta, streams, horizon)
}

// WorkloadMonitor is the streaming admissibility checker for live demand
// sequences.
type WorkloadMonitor = core.Monitor

// NewWorkloadMonitor builds a monitor over the characterization with the
// given window (capped to the curves' domain).
func NewWorkloadMonitor(w Workload, window int) (*WorkloadMonitor, error) {
	return core.NewMonitor(w, window)
}

// PJDModel holds fitted periodic-with-jitter event-model parameters.
type PJDModel = arrival.PJD

// FitPJDModel fits the tightest periodic-with-jitter model dominating an
// observed span table.
func FitPJDModel(s Spans) (PJDModel, error) { return arrival.FitPJD(s) }

// ConvolveService min-plus convolves two service curves (tandem
// composition, "pay bursts only once").
func ConvolveService(a, b PWLCurve) PWLCurve { return pwl.Convolve(a, b) }

// ---- Streaming curve maintenance and the wcmd service ---------------------

// CurveStream maintains (γᵘ, γˡ) and the span tables d(k)/D(k)
// incrementally over a sliding window of demand samples — amortized
// O(MaxK) per sample instead of a full re-extraction — with a periodic
// batch re-extraction as correctness anchor. Safe for concurrent use.
type CurveStream = stream.Stream

// CurveStreamConfig parameterizes a CurveStream (window, curve domain,
// anchor cadence).
type CurveStreamConfig = stream.Config

// CurveStreamSnapshot is a consistent point-in-time view of a stream's
// curves and span tables.
type CurveStreamSnapshot = stream.Snapshot

// CurveStreamStats is a stream's observability surface (totals, drift,
// contract violations).
type CurveStreamStats = stream.Stats

// StreamIngestResult reports one accepted ingest batch.
type StreamIngestResult = stream.IngestResult

// FrequencyComparison holds eq. (9) and eq. (10) minimum frequencies side
// by side with the relative saving.
type FrequencyComparison = netcalc.FrequencyComparison

// NewCurveStream builds an empty incremental curve maintainer.
func NewCurveStream(cfg CurveStreamConfig) (*CurveStream, error) { return stream.New(cfg) }

// CompareFrequencies computes eq. (9) and eq. (10) together.
func CompareFrequencies(spans Spans, gammaU Curve, b int) (FrequencyComparison, error) {
	return netcalc.CompareFrequencies(spans, gammaU, b)
}

// WCMDServer is the HTTP/JSON characterization service served by cmd/wcmd:
// sharded CurveStream registry with ingest, curve, service-check,
// min-frequency, contract/verdict and metrics endpoints.
type WCMDServer = server.Server

// WCMDServerConfig parameterizes a WCMDServer.
type WCMDServerConfig = server.Config

// NewWCMDServer builds the service; mount its Handler on any http.Server.
func NewWCMDServer(cfg WCMDServerConfig) (*WCMDServer, error) { return server.New(cfg) }

// BinaryIngestContentType is the Content-Type selecting the columnar binary
// ingest encoding on POST /v1/streams/{id}/ingest (see DESIGN.md §9).
const BinaryIngestContentType = server.ContentTypeBinary

// AppendBinaryIngestBatch encodes one ingest batch in the binary wire format
// — uint32 LE sample count, then the timestamp column, then the demand
// column, both little-endian int64 — appending to dst and returning the
// extended slice. Panics if the slices differ in length or are empty, like
// append-style encoders throughout the stdlib.
func AppendBinaryIngestBatch(dst []byte, t, demand []int64) []byte {
	return server.AppendBinaryBatch(dst, t, demand)
}

// BinaryQueryContentType is the Accept / Content-Type value selecting the
// columnar binary query response encoding on /curves, /check and /minfreq
// (see DESIGN.md §14).
const BinaryQueryContentType = server.ContentTypeQueryBinary

// Decoded forms of the binary query answers, and their decoders. One answer
// has exactly one encoding; the decoders reject any damaged or trailing
// bytes. Errors never travel in this format — a non-200 response is always
// the JSON error object.
type (
	BinaryCurves  = wirefmt.Curves
	BinaryCheck   = wirefmt.Check
	BinaryMinFreq = wirefmt.MinFreq
)

// DecodeBinaryCurves decodes a kind-1 (GET /curves) binary answer.
func DecodeBinaryCurves(b []byte) (BinaryCurves, error) { return wirefmt.DecodeCurves(b) }

// DecodeBinaryCheck decodes a kind-2 (POST /check) binary answer.
func DecodeBinaryCheck(b []byte) (BinaryCheck, error) { return wirefmt.DecodeCheck(b) }

// DecodeBinaryMinFreq decodes a kind-3 (GET /minfreq) binary answer.
func DecodeBinaryMinFreq(b []byte) (BinaryMinFreq, error) { return wirefmt.DecodeMinFreq(b) }

// DeconvolveArrival computes the exact output arrival curve a ⊘ b of a
// flow with arrival a served by b, over u ∈ [0, uMax].
func DeconvolveArrival(a, b PWLCurve, uMax int64) (PWLCurve, error) {
	return pwl.Deconvolve(a, b, uMax)
}
