package wal

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
)

// Snapshot files. One file per stream per shard directory, written by the
// checkpointer (tmp + rename, so a crash mid-write never leaves a partial
// snapshot under the live name) and replacing the need to replay every WAL
// segment from the beginning of time. The layout:
//
//	8×byte  magic     "WCMSNAP1"
//	uint64  snapSeg   the segment the checkpoint rotated to before
//	                  capturing this state: every record the snapshot
//	                  covers lives in a segment < snapSeg
//	int64   version   the stream version at capture (duplicated from the
//	                  state blob so replay filtering never needs to decode
//	                  the blob first)
//	uint16  idLen     little-endian, then the id bytes
//	uint32  stateLen  little-endian, then the stream.State blob
//	uint32  crc       CRC-32C of every preceding byte
//
// Validity at recovery: a snapshot is trusted only when no tombstone for
// its id lives at or after snapSeg — a DELETE that raced a checkpoint
// always lands its tombstone in a segment ≥ snapSeg (appends go to the
// rotated-to segment), so the tombstone wins and the snapshot is discarded.

const snapMagic = "WCMSNAP1"

// snapFixedLen is everything before the id bytes; snapTrailerLen the CRC.
const (
	snapFixedLen   = len(snapMagic) + 8 + 8 + 2
	snapTrailerLen = 4
)

// snapshotFile is one parsed snapshot.
type snapshotFile struct {
	id      string
	seg     uint64 // snapSeg
	version int64
	state   []byte
}

// appendSnapshot encodes a snapshot file's contents.
func appendSnapshot(dst []byte, id string, snapSeg uint64, version int64, state []byte) []byte {
	start := len(dst)
	dst = append(dst, snapMagic...)
	dst = binary.LittleEndian.AppendUint64(dst, snapSeg)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(version))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(id)))
	dst = append(dst, id...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(state)))
	dst = append(dst, state...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(dst[start:], castagnoli))
}

// parseSnapshot decodes and CRC-checks snapshot bytes. Never panics on
// arbitrary input (FuzzSnapshot).
func parseSnapshot(b []byte) (snapshotFile, error) {
	if len(b) < snapFixedLen+snapTrailerLen {
		return snapshotFile{}, fmt.Errorf("wal: snapshot %d bytes, need at least %d",
			len(b), snapFixedLen+snapTrailerLen)
	}
	if string(b[:len(snapMagic)]) != snapMagic {
		return snapshotFile{}, fmt.Errorf("wal: snapshot magic %q, want %q", b[:len(snapMagic)], snapMagic)
	}
	body, crc := b[:len(b)-snapTrailerLen], binary.LittleEndian.Uint32(b[len(b)-snapTrailerLen:])
	if crc32.Checksum(body, castagnoli) != crc {
		return snapshotFile{}, fmt.Errorf("wal: snapshot CRC mismatch")
	}
	p := body[len(snapMagic):]
	sf := snapshotFile{
		seg:     binary.LittleEndian.Uint64(p),
		version: int64(binary.LittleEndian.Uint64(p[8:])),
	}
	idLen := int(binary.LittleEndian.Uint16(p[16:]))
	p = p[18:]
	if idLen > len(p) {
		return snapshotFile{}, fmt.Errorf("wal: snapshot id length %d exceeds file", idLen)
	}
	sf.id = string(p[:idLen])
	p = p[idLen:]
	if len(p) < 4 {
		return snapshotFile{}, fmt.Errorf("wal: snapshot truncated before state length")
	}
	stateLen := binary.LittleEndian.Uint32(p)
	if int(stateLen) != len(p)-4 {
		return snapshotFile{}, fmt.Errorf("wal: snapshot state length %d, %d bytes remain", stateLen, len(p)-4)
	}
	sf.state = append([]byte(nil), p[4:]...)
	return sf, nil
}

// snapFileName maps a stream id to its snapshot file name. Ids are
// arbitrary URL path segments, so the name is base64url of the id; very
// long ids switch to a truncated prefix plus a SHA-256 tag so the name
// stays under filesystem limits while remaining collision-free in
// practice. The mapping only needs to be deterministic and injective —
// recovery reads the authoritative id from the file header, never from
// the name.
func snapFileName(id string) string {
	enc := base64.RawURLEncoding.EncodeToString([]byte(id))
	if len(enc) > 160 {
		sum := sha256.Sum256([]byte(id))
		enc = enc[:96] + "-" + hex.EncodeToString(sum[:16])
	}
	return "snap-" + enc + ".snap"
}

// writeSnapshotFile durably writes a snapshot: tmp file, fsync, rename,
// fsync the directory. After it returns, a crash at any point leaves
// either the old snapshot or the complete new one — never a torn mix.
func writeSnapshotFile(dir, id string, snapSeg uint64, version int64, state []byte) error {
	data := appendSnapshot(nil, id, snapSeg, version, state)
	final := filepath.Join(dir, snapFileName(id))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// readSnapshots loads every parseable snapshot in dir, keyed by id.
// Corrupt snapshot files are deleted (the WAL tail still holds anything
// not checkpointed away, and a bad snapshot must not shadow a good future
// one under the same name) and counted via the returned tally.
func readSnapshots(dir string) (map[string]snapshotFile, int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	snaps := make(map[string]snapshotFile)
	bad := 0
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, "snap-") {
			continue
		}
		path := filepath.Join(dir, name)
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(path) // a checkpoint died mid-write; the tmp is garbage
			continue
		}
		if !strings.HasSuffix(name, ".snap") {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, bad, err
		}
		sf, err := parseSnapshot(data)
		if err != nil {
			bad++
			os.Remove(path)
			continue
		}
		snaps[sf.id] = sf
	}
	return snaps, bad, nil
}

// syncDir fsyncs a directory so renames and removals inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
