package wal

import (
	"errors"
	"testing"

	"wcm/internal/stream"
)

// The durability layer's parsers face bytes that a crash, a bad disk, or a
// hostile tenant wrote. The contract under fuzzing: never panic, never
// allocate absurdly, and classify every input as either a clean record, a
// torn tail (errTorn), or a loud structural error.

func FuzzWALRecord(f *testing.F) {
	f.Add(appendRecord(nil, recIngest, "stream-a", 7, []int64{1, 2, 3}, []int64{4, 5, 6}))
	f.Add(appendRecord(nil, recTombstone, "stream-b", 0, nil, nil))
	f.Add(appendRecord(nil, recIngest, "", 1, []int64{0}, []int64{0}))
	// Two records back to back, as a segment holds them.
	two := appendRecord(nil, recIngest, "x", 1, []int64{1}, []int64{1})
	two = appendRecord(two, recTombstone, "x", 0, nil, nil)
	f.Add(two)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 1})

	f.Fuzz(func(t *testing.T, b []byte) {
		// Scan exactly like recovery does: frame by frame until torn or done.
		off := 0
		for off < len(b) {
			payload, consumed, err := parseFrame(b[off:])
			if errors.Is(err, errTorn) {
				return
			}
			if consumed <= 0 {
				t.Fatalf("parseFrame consumed %d without error", consumed)
			}
			rec, perr := parsePayload(payload)
			if perr == nil && rec.kind == recIngest && len(rec.ts) != len(rec.ds) {
				t.Fatalf("decoded ingest record with mismatched columns: %+v", rec)
			}
			off += consumed
		}
	})
}

func FuzzSnapshot(f *testing.F) {
	// A genuine snapshot of a genuine stream as the seed.
	s, err := stream.New(stream.Config{Window: 8, MaxK: 4})
	if err != nil {
		f.Fatal(err)
	}
	for i := int64(1); i <= 10; i++ {
		if _, err := s.Ingest([]int64{i * 10}, []int64{i}); err != nil {
			f.Fatal(err)
		}
	}
	blob := s.ExportState().AppendBinary(nil)
	f.Add(appendSnapshot(nil, "stream-a", 3, 10, blob))
	f.Add(appendSnapshot(nil, "", 0, 0, nil))
	f.Add([]byte(snapMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		sf, err := parseSnapshot(b)
		if err != nil {
			return // corrupt file: recovery deletes it, nothing to check
		}
		// A CRC-valid snapshot's state blob still goes through DecodeState,
		// which must never panic and must only accept Restorable shapes.
		st, err := stream.DecodeState(sf.state)
		if err != nil {
			return
		}
		if st.Window > 1<<16 {
			// Shape-valid but enormous: Restore would faithfully allocate
			// the rings. Real recovery hits the config-mismatch check (the
			// server's window is sane) before any allocation.
			return
		}
		cfg := stream.Config{Window: st.Window, MaxK: st.MaxK, ReextractEvery: st.ReextractEvery}
		if _, err := stream.Restore(cfg, st); err != nil {
			t.Fatalf("DecodeState accepted a state Restore rejects: %v", err)
		}
	})
}
