package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"wcm/internal/wirefmt"
)

// WAL record framing. Every record in a segment is
//
//	uint32  payloadLen   little-endian
//	uint32  crc          CRC-32C (Castagnoli) of the payload bytes
//	payload
//
// and the payload is
//
//	byte    kind         recIngest | recTombstone
//	uint16  idLen        little-endian
//	idLen×  id           the stream id, raw bytes
//	— recIngest only —
//	int64   version      stream version the batch landed at
//	        batch        the wirefmt columnar encoding (uint32 n, t×n, d×n)
//
// An ingest record's batch bytes are EXACTLY the application/x-wcm-ingest
// wire format: what a binary-ingest client sent is what hits the disk, one
// codec for both (see internal/wirefmt).
//
// The frame is designed so a torn tail — a crash mid-write — is always
// detectable and never misparsed: a truncated length prefix, a length
// running past the segment, or a CRC mismatch all stop replay cleanly at
// the last intact record (errTorn), and nothing after a torn record is
// trusted.

const (
	recIngest    byte = 1
	recTombstone byte = 2

	frameHeaderLen = 8
	// recordIDOverhead is the payload cost of the kind byte and id prefix.
	recordIDOverhead = 3
	// maxRecordPayload bounds a declared payload length so a corrupted
	// prefix cannot demand a multi-GiB allocation. 64 MiB comfortably
	// exceeds any real batch (the HTTP body cap is 1 MiB by default).
	maxRecordPayload = 1 << 26
	// maxIDLen is the largest stream id a record can carry (uint16 prefix).
	maxIDLen = 1<<16 - 1
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errTorn marks the clean-stop condition of a segment scan: the bytes from
// here on are a torn or corrupted tail, everything before is intact.
var errTorn = errors.New("wal: torn record")

// lsn is a record's log sequence number: position in the shard's segment
// chain. Orders every record of a shard totally — tombstone/snapshot
// resolution at recovery compares these.
type lsn struct {
	seg uint64
	off int64
}

func (a lsn) after(b lsn) bool {
	if a.seg != b.seg {
		return a.seg > b.seg
	}
	return a.off > b.off
}

// appendRecord frames one record into dst. For recTombstone, version/ts/ds
// are ignored. The caller guarantees len(id) ≤ maxIDLen and, for ingest,
// len(ts) == len(ds) ≥ 1 (wirefmt.AppendBatch panics otherwise — appenders
// control their batches).
func appendRecord(dst []byte, kind byte, id string, version int64, ts, ds []int64) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // frame header, patched below
	dst = append(dst, kind)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(id)))
	dst = append(dst, id...)
	if kind == recIngest {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(version))
		dst = wirefmt.AppendBatch(dst, ts, ds)
	}
	payload := dst[start+frameHeaderLen:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, castagnoli))
	return dst
}

// record is one parsed WAL record.
type record struct {
	kind    byte
	id      string
	version int64
	ts, ds  []int64
}

// parseFrame extracts the next record's payload from b. It returns errTorn
// for every way a crash can shear the tail (short header, short payload,
// CRC mismatch, absurd length) — the scanner stops there — and never
// panics on arbitrary input (FuzzWALRecord).
func parseFrame(b []byte) (payload []byte, consumed int, err error) {
	if len(b) < frameHeaderLen {
		return nil, 0, errTorn
	}
	n := binary.LittleEndian.Uint32(b)
	if n < recordIDOverhead || n > maxRecordPayload || int(n) > len(b)-frameHeaderLen {
		return nil, 0, errTorn
	}
	payload = b[frameHeaderLen : frameHeaderLen+int(n)]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[4:]) {
		return nil, 0, errTorn
	}
	return payload, frameHeaderLen + int(n), nil
}

// parsePayload decodes a CRC-validated payload. A structural error here is
// not a torn write (the CRC matched) — it means an incompatible or buggy
// writer, reported loudly instead of silently skipped.
func parsePayload(p []byte) (record, error) {
	// parseFrame guarantees len(p) ≥ recordIDOverhead.
	kind := p[0]
	idLen := int(binary.LittleEndian.Uint16(p[1:]))
	p = p[recordIDOverhead:]
	if idLen > len(p) {
		return record{}, fmt.Errorf("wal: record id length %d exceeds payload", idLen)
	}
	rec := record{kind: kind, id: string(p[:idLen])}
	p = p[idLen:]
	switch kind {
	case recTombstone:
		if len(p) != 0 {
			return record{}, fmt.Errorf("wal: tombstone record with %d trailing bytes", len(p))
		}
	case recIngest:
		if len(p) < 8 {
			return record{}, fmt.Errorf("wal: ingest record truncated before version")
		}
		rec.version = int64(binary.LittleEndian.Uint64(p))
		var err error
		rec.ts, rec.ds, err = wirefmt.DecodeBatch(p[8:], nil, nil)
		if err != nil {
			return record{}, fmt.Errorf("wal: ingest record batch: %w", err)
		}
	default:
		return record{}, fmt.Errorf("wal: unknown record kind %d", kind)
	}
	return rec, nil
}
