package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"wcm/internal/stream"
)

func testOpts(dir string) Options {
	return Options{
		Dir:          dir,
		Shards:       2,
		SegmentBytes: 4096,
		Policy:       PolicyBatch,
		Stream:       stream.Config{Window: 64, MaxK: 16},
	}
}

func mustOpen(t *testing.T, opts Options) *Manager {
	t.Helper()
	m, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return m
}

func ing(t *testing.T, l *ShardLog, id string, ver int64, ts, ds []int64) {
	t.Helper()
	if err := l.AppendIngest(id, ver, ts, ds); err != nil {
		t.Fatalf("AppendIngest(%s, v%d): %v", id, ver, err)
	}
}

func TestAppendRecoverCycle(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir)
	m := mustOpen(t, opts)
	if m.CleanStart() {
		t.Error("fresh directory reported a clean start")
	}
	l := m.Shard(0)
	ing(t, l, "a", 1, []int64{10, 20}, []int64{3, 4})
	ing(t, l, "a", 2, []int64{30}, []int64{5})
	ing(t, l, "b", 1, []int64{5}, []int64{7})
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if m.Appends() != 3 || m.Fsyncs() != 1 {
		t.Errorf("appends=%d fsyncs=%d, want 3 and 1", m.Appends(), m.Fsyncs())
	}
	if m.BytesAppended() == 0 {
		t.Error("BytesAppended is zero after three appends")
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	m2 := mustOpen(t, opts)
	defer m2.Close()
	if !m2.CleanStart() {
		t.Error("reopen after Close did not report a clean start")
	}
	rec := m2.Recovery(0)
	if len(rec) != 2 || rec[0].ID != "a" || rec[1].ID != "b" {
		t.Fatalf("recovery: %+v", rec)
	}
	a := rec[0]
	if a.SnapshotState != nil || len(a.Batches) != 2 {
		t.Fatalf("stream a: %+v", a)
	}
	if a.Batches[0].Version != 1 || !reflect.DeepEqual(a.Batches[0].Ts, []int64{10, 20}) ||
		!reflect.DeepEqual(a.Batches[0].Demands, []int64{3, 4}) {
		t.Errorf("a batch 0: %+v", a.Batches[0])
	}
	if a.Batches[1].Version != 2 || !reflect.DeepEqual(a.Batches[1].Demands, []int64{5}) {
		t.Errorf("a batch 1: %+v", a.Batches[1])
	}
	if len(rec[1].Batches) != 1 || rec[1].Batches[0].Version != 1 {
		t.Errorf("stream b: %+v", rec[1])
	}
	if got := m2.Recovery(1); len(got) != 0 {
		t.Errorf("shard 1 recovered %+v, want nothing", got)
	}
}

func TestPolicyNoneSurvivesCleanClose(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir)
	opts.Policy = PolicyNone
	m := mustOpen(t, opts)
	ing(t, m.Shard(0), "a", 1, []int64{1}, []int64{2})
	if err := m.Shard(0).Commit(); err != nil {
		t.Fatal(err)
	}
	if m.Fsyncs() != 0 {
		t.Errorf("PolicyNone fsynced %d times on Commit", m.Fsyncs())
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2 := mustOpen(t, opts)
	defer m2.Close()
	if rec := m2.Recovery(0); len(rec) != 1 || len(rec[0].Batches) != 1 {
		t.Fatalf("recovery: %+v", rec)
	}
}

func TestTombstoneDropsPriorRecords(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir)
	m := mustOpen(t, opts)
	l := m.Shard(0)
	ing(t, l, "a", 1, []int64{1, 2}, []int64{1, 1})
	ing(t, l, "a", 2, []int64{3}, []int64{1})
	if err := l.AppendTombstone("a"); err != nil {
		t.Fatal(err)
	}
	// The stream is re-created after the DELETE: versions restart.
	ing(t, l, "a", 1, []int64{100}, []int64{9})
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2 := mustOpen(t, opts)
	defer m2.Close()
	rec := m2.Recovery(0)
	if len(rec) != 1 || len(rec[0].Batches) != 1 {
		t.Fatalf("recovery: %+v", rec)
	}
	if b := rec[0].Batches[0]; b.Version != 1 || b.Ts[0] != 100 {
		t.Errorf("post-tombstone batch: %+v", b)
	}
}

func TestTombstoneWithoutRecreateKillsStream(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir)
	m := mustOpen(t, opts)
	l := m.Shard(1)
	ing(t, l, "gone", 1, []int64{1}, []int64{1})
	if err := l.AppendTombstone("gone"); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2 := mustOpen(t, opts)
	defer m2.Close()
	if rec := m2.Recovery(1); len(rec) != 0 {
		t.Fatalf("deleted stream resurrected: %+v", rec)
	}
}

// TestCheckpointCoversAndTruncates walks the full checkpoint protocol the
// serving layer runs: rotate, snapshot at the rotation segment, drop old
// segments — then proves recovery uses the snapshot plus only the
// post-snapshot records.
func TestCheckpointCoversAndTruncates(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir)
	m := mustOpen(t, opts)
	l := m.Shard(0)
	ing(t, l, "a", 1, []int64{1}, []int64{1})
	ing(t, l, "a", 2, []int64{2}, []int64{2})

	newSeg, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("opaque-state-v2")
	if err := l.WriteSnapshot("a", newSeg, 2, blob); err != nil {
		t.Fatal(err)
	}
	if err := l.RemoveSegmentsBefore(newSeg); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint traffic.
	ing(t, l, "a", 3, []int64{3}, []int64{3})
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// The pre-rotation segment is physically gone.
	if _, err := os.Stat(filepath.Join(dir, "shard-000", segName(1))); !os.IsNotExist(err) {
		t.Errorf("segment 1 still present after RemoveSegmentsBefore: %v", err)
	}

	m2 := mustOpen(t, opts)
	defer m2.Close()
	rec := m2.Recovery(0)
	if len(rec) != 1 {
		t.Fatalf("recovery: %+v", rec)
	}
	a := rec[0]
	if string(a.SnapshotState) != string(blob) || a.SnapshotVersion != 2 {
		t.Errorf("snapshot: version=%d state=%q", a.SnapshotVersion, a.SnapshotState)
	}
	if len(a.Batches) != 1 || a.Batches[0].Version != 3 {
		t.Errorf("replay batches: %+v", a.Batches)
	}
}

// TestSnapshotKilledByLaterTombstone is the DELETE-racing-checkpoint
// ordering: the tombstone lands at/after the snapshot's rotation segment,
// so the snapshot must be discarded (and its file removed).
func TestSnapshotKilledByLaterTombstone(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir)
	m := mustOpen(t, opts)
	l := m.Shard(0)
	ing(t, l, "a", 1, []int64{1}, []int64{1})
	newSeg, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot("a", newSeg, 1, []byte("covered")); err != nil {
		t.Fatal(err)
	}
	// DELETE after the checkpoint: the tombstone lands in a segment ≥ newSeg.
	if err := l.AppendTombstone("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2 := mustOpen(t, opts)
	defer m2.Close()
	if rec := m2.Recovery(0); len(rec) != 0 {
		t.Fatalf("tombstoned snapshot resurrected: %+v", rec)
	}
	if _, err := os.Stat(filepath.Join(dir, "shard-000", snapFileName("a"))); !os.IsNotExist(err) {
		t.Errorf("stale snapshot file survived recovery: %v", err)
	}
}

// TestSnapshotSurvivesEarlierTombstone is the delete-then-recreate-then-
// checkpoint ordering: the tombstone precedes the snapshot's segment, so
// the snapshot (of the new incarnation) is trusted.
func TestSnapshotSurvivesEarlierTombstone(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir)
	m := mustOpen(t, opts)
	l := m.Shard(0)
	ing(t, l, "a", 1, []int64{1}, []int64{1})
	if err := l.AppendTombstone("a"); err != nil {
		t.Fatal(err)
	}
	ing(t, l, "a", 1, []int64{50}, []int64{5}) // recreated
	newSeg, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot("a", newSeg, 1, []byte("incarnation-2")); err != nil {
		t.Fatal(err)
	}
	if err := l.RemoveSegmentsBefore(newSeg); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2 := mustOpen(t, opts)
	defer m2.Close()
	rec := m2.Recovery(0)
	if len(rec) != 1 || string(rec[0].SnapshotState) != "incarnation-2" || len(rec[0].Batches) != 0 {
		t.Fatalf("recovery: %+v", rec)
	}
}

func TestTornTailTruncatedThenAppendable(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir)
	m := mustOpen(t, opts)
	l := m.Shard(0)
	ing(t, l, "a", 1, []int64{1}, []int64{1})
	ing(t, l, "a", 2, []int64{2}, []int64{2})
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Shear the tail: a partial frame header, as a crash mid-write leaves.
	seg := filepath.Join(dir, "shard-000", segName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xAB, 0xCD, 0xEF}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(seg)

	m2 := mustOpen(t, opts)
	if m2.TornTails() != 1 {
		t.Errorf("TornTails=%d, want 1", m2.TornTails())
	}
	rec := m2.Recovery(0)
	if len(rec) != 1 || len(rec[0].Batches) != 2 {
		t.Fatalf("recovery after torn tail: %+v", rec)
	}
	after, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size()-3 {
		t.Errorf("segment not truncated: before=%d after=%d", before.Size(), after.Size())
	}
	// The truncated segment accepts new appends, and a further recovery
	// sees old and new records both.
	ing(t, m2.Shard(0), "a", 3, []int64{3}, []int64{3})
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	m3 := mustOpen(t, opts)
	defer m3.Close()
	if rec := m3.Recovery(0); len(rec) != 1 || len(rec[0].Batches) != 3 {
		t.Fatalf("recovery after post-torn append: %+v", rec)
	}
	if m3.TornTails() != 0 {
		t.Errorf("clean reopen reported %d torn tails", m3.TornTails())
	}
}

func TestCorruptMidRecordDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir)
	m := mustOpen(t, opts)
	l := m.Shard(0)
	ing(t, l, "a", 1, []int64{1}, []int64{1})
	ing(t, l, "a", 2, []int64{2}, []int64{2})
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	ing(t, l, "a", 3, []int64{3}, []int64{3})
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte inside segment 1's second record: the scan stops there,
	// and segment 2 — with records "after" the corruption — must be dropped
	// so future appends can't strand them.
	seg1 := filepath.Join(dir, "shard-000", segName(1))
	data, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(seg1, data, 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := mustOpen(t, opts)
	defer m2.Close()
	rec := m2.Recovery(0)
	if len(rec) != 1 || len(rec[0].Batches) != 1 || rec[0].Batches[0].Version != 1 {
		t.Fatalf("recovery: %+v", rec)
	}
	if _, err := os.Stat(filepath.Join(dir, "shard-000", segName(2))); !os.IsNotExist(err) {
		t.Errorf("segment after corruption survived: %v", err)
	}
}

func TestSegmentRotationBySize(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir) // 4096-byte segments
	m := mustOpen(t, opts)
	l := m.Shard(0)
	ts := make([]int64, 64)
	ds := make([]int64, 64)
	for i := range ts {
		ts[i] = int64(i)
		ds[i] = 1
	}
	const n = 16 // 16 × ~1KiB records: several rotations
	for v := int64(1); v <= n; v++ {
		ing(t, l, "big", v, ts, ds)
	}
	segs, err := listSegments(filepath.Join(dir, "shard-000"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("no rotation after %d large appends: segments %v", n, segs)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2 := mustOpen(t, opts)
	defer m2.Close()
	rec := m2.Recovery(0)
	if len(rec) != 1 || len(rec[0].Batches) != n {
		t.Fatalf("recovered %d batches across segments, want %d", len(rec[0].Batches), n)
	}
	for i, b := range rec[0].Batches {
		if b.Version != int64(i+1) {
			t.Fatalf("batch %d has version %d", i, b.Version)
		}
	}
}

func TestMetaMismatchRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir)
	m := mustOpen(t, opts)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	bad := opts
	bad.Shards = 4
	if _, err := Open(bad); err == nil || !strings.Contains(err.Error(), "must match") {
		t.Errorf("shard-count mismatch: err=%v", err)
	}
	bad = opts
	bad.Stream = stream.Config{Window: 128, MaxK: 16}
	if _, err := Open(bad); err == nil || !strings.Contains(err.Error(), "must match") {
		t.Errorf("stream-config mismatch: err=%v", err)
	}
	// The original options still open fine.
	m2 := mustOpen(t, opts)
	m2.Close()
}

func TestCleanMarkerLifecycle(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir)
	m := mustOpen(t, opts)
	if m.CleanStart() {
		t.Error("first open clean")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2 := mustOpen(t, opts)
	if !m2.CleanStart() {
		t.Error("open after Close not clean")
	}
	// Abandon m2 without Close — a crash. The marker was consumed at open,
	// so the next open must report an unclean start.
	m3 := mustOpen(t, opts)
	defer m3.Close()
	if m3.CleanStart() {
		t.Error("open after crash reported clean start")
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"always": PolicyAlways, "batch": PolicyBatch, "none": PolicyNone} {
		p, err := ParsePolicy(s)
		if err != nil || p != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, p, err)
		}
		if p.String() != s {
			t.Errorf("Policy.String() = %q, want %q", p.String(), s)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Error("ParsePolicy accepted garbage")
	}
}

func TestOpenValidation(t *testing.T) {
	cases := []Options{
		{},                                       // no dir
		{Dir: "x", Shards: 0},                    // no shards
		{Dir: "x", Shards: 1, SegmentBytes: 100}, // absurdly small segments
		{Dir: "x", Shards: 1, Policy: Policy(7)}, // unknown policy
	}
	for i, opts := range cases {
		if opts.Dir != "" {
			opts.Dir = filepath.Join(t.TempDir(), "d")
		}
		if _, err := Open(opts); err == nil {
			t.Errorf("case %d: Open accepted %+v", i, cases[i])
		}
	}
}

func TestStructuralCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir)
	m := mustOpen(t, opts)
	ing(t, m.Shard(0), "a", 1, []int64{1}, []int64{1})
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Hand-craft a record whose CRC is valid but whose kind is unknown:
	// that is writer incompatibility, and Open must refuse, not skip.
	seg := filepath.Join(dir, "shard-000", segName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	frame := appendRecord(nil, 0x7F, "x", 0, nil, nil)
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(opts); err == nil || !strings.Contains(err.Error(), "unknown record kind") {
		t.Errorf("structurally corrupt record: err=%v", err)
	}
}

func TestOversizedIDRejected(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, testOpts(dir))
	defer m.Close()
	huge := strings.Repeat("x", maxIDLen+1)
	if err := m.Shard(0).AppendIngest(huge, 1, []int64{1}, []int64{1}); err == nil {
		t.Error("oversized id accepted by AppendIngest")
	}
	if err := m.Shard(0).AppendTombstone(huge); err == nil {
		t.Error("oversized id accepted by AppendTombstone")
	}
}

func TestLSNOrdering(t *testing.T) {
	a := lsn{seg: 2, off: 10}
	for _, b := range []lsn{{seg: 1, off: 999}, {seg: 2, off: 9}} {
		if !a.after(b) || b.after(a) {
			t.Errorf("lsn ordering broken for %+v vs %+v", a, b)
		}
	}
	if a.after(a) {
		t.Error("lsn after itself")
	}
}

func TestErrTornSentinel(t *testing.T) {
	// Every torn shape maps to errTorn, never a panic or a misparse.
	cases := [][]byte{
		nil,
		{1, 2, 3},                            // short header
		{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}, // absurd length
		{10, 0, 0, 0, 0, 0, 0, 0, 1, 2},      // length past buffer
	}
	valid := appendRecord(nil, recIngest, "s", 1, []int64{1}, []int64{2})
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] ^= 1 // CRC mismatch
	cases = append(cases, corrupt, valid[:len(valid)-1])
	for i, b := range cases {
		if _, _, err := parseFrame(b); !errors.Is(err, errTorn) {
			t.Errorf("case %d: err=%v, want errTorn", i, err)
		}
	}
	// And the valid frame round-trips.
	payload, consumed, err := parseFrame(valid)
	if err != nil || consumed != len(valid) {
		t.Fatalf("valid frame: consumed=%d err=%v", consumed, err)
	}
	rec, err := parsePayload(payload)
	if err != nil || rec.id != "s" || rec.version != 1 || rec.ts[0] != 1 || rec.ds[0] != 2 {
		t.Errorf("round-trip: %+v err=%v", rec, err)
	}
}

// TestAppendIngestGroup: a group append must recover identically to the same
// records appended one at a time, and the appends counter must advance per
// record, not per write call.
func TestAppendIngestGroup(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir)
	m := mustOpen(t, opts)
	l := m.Shard(0)
	if err := l.AppendIngestGroup(nil); err != nil {
		t.Fatalf("empty group: %v", err)
	}
	group := []IngestRec{
		{ID: "a", Version: 1, Ts: []int64{10, 20}, Ds: []int64{3, 4}},
		{ID: "b", Version: 1, Ts: []int64{5}, Ds: []int64{7}},
		{ID: "a", Version: 2, Ts: []int64{30}, Ds: []int64{5}},
	}
	if err := l.AppendIngestGroup(group); err != nil {
		t.Fatalf("AppendIngestGroup: %v", err)
	}
	ing(t, l, "b", 2, []int64{9}, []int64{11})
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if m.Appends() != 4 {
		t.Errorf("appends=%d, want 4 (counter counts records, not writes)", m.Appends())
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	m2 := mustOpen(t, opts)
	defer m2.Close()
	rec := m2.Recovery(0)
	if len(rec) != 2 || rec[0].ID != "a" || rec[1].ID != "b" {
		t.Fatalf("recovery: %+v", rec)
	}
	a, b := rec[0], rec[1]
	if len(a.Batches) != 2 || len(b.Batches) != 2 {
		t.Fatalf("batch counts: a=%d b=%d, want 2 and 2", len(a.Batches), len(b.Batches))
	}
	if a.Batches[0].Version != 1 || !reflect.DeepEqual(a.Batches[0].Ts, []int64{10, 20}) ||
		!reflect.DeepEqual(a.Batches[0].Demands, []int64{3, 4}) {
		t.Errorf("a batch 0: %+v", a.Batches[0])
	}
	if a.Batches[1].Version != 2 || !reflect.DeepEqual(a.Batches[1].Demands, []int64{5}) {
		t.Errorf("a batch 1: %+v", a.Batches[1])
	}
	if b.Batches[0].Version != 1 || !reflect.DeepEqual(b.Batches[0].Demands, []int64{7}) {
		t.Errorf("b batch 0: %+v", b.Batches[0])
	}
	if b.Batches[1].Version != 2 || !reflect.DeepEqual(b.Batches[1].Demands, []int64{11}) {
		t.Errorf("b batch 1: %+v", b.Batches[1])
	}

	// An over-long ID anywhere in the group rejects the whole group before
	// any bytes are written.
	before := m2.BytesAppended()
	bad := []IngestRec{
		{ID: "ok", Version: 3, Ts: []int64{1}, Ds: []int64{1}},
		{ID: string(make([]byte, 1<<16)), Version: 3, Ts: []int64{1}, Ds: []int64{1}},
	}
	if err := m2.Shard(0).AppendIngestGroup(bad); err == nil {
		t.Fatal("group with over-long ID accepted")
	}
	if m2.BytesAppended() != before {
		t.Error("rejected group still wrote bytes")
	}
}
