// Package wal is wcmd's durability subsystem: a per-shard, segmented,
// CRC-framed write-ahead log of ingest batches, periodic per-stream
// snapshots that truncate it, and replay-on-boot recovery. It turns the
// in-memory stream registry of internal/server into state that survives a
// kill -9.
//
// # Shape
//
// One Manager owns a data directory with one subdirectory per registry
// shard. Each shard holds a chain of segment files (wal-00000001.log, …)
// that records every acknowledged ingest batch — in the SAME columnar
// encoding the binary ingest wire format uses (internal/wirefmt), so a WAL
// is also a replayable ingest trace — plus tombstone records for DELETEd
// streams and one snapshot file per live stream.
//
// # Group commit
//
// The serving layer appends a record for each applied batch and then calls
// Commit before acknowledging the client; Commit's fsync behavior is the
// configured Policy. Under the async ingest pipeline, a whole coalesced
// group (PolicyAlways) or a whole worker wakeup (PolicyBatch) rides one
// fsync — group commit — so the fsync cost amortizes across every batch
// that arrived while the previous group was applying.
//
// # Checkpoints
//
// A checkpoint rotates the segment chain, snapshots every live stream
// (stream.State, versioned and CRC'd, written atomically), and then
// deletes every pre-rotation segment: each deleted record is either
// covered by a snapshot (its version ≤ the snapshot's) or belongs to a
// dead stream. Recovery trusts a snapshot only when no tombstone lives at
// or after its rotation segment, which makes DELETE-vs-checkpoint races
// safe in both orders.
//
// # Recovery
//
// Open scans every shard: snapshots are loaded (corrupt ones deleted),
// segments are walked record by record, and a torn final record — the
// signature of a crash mid-append — stops the scan cleanly at the last
// intact byte, where the file is truncated so new appends start from a
// valid tail. Per stream, surviving records are the ones after the last
// tombstone and newer than the snapshot's version, sorted by version
// (concurrent sync-path appenders may land slightly out of order); the
// serving layer replays them through the normal ingest path. The result
// is exposed via Recovery.
package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"wcm/internal/obs"
	"wcm/internal/stream"
)

// DefaultSegmentBytes is the rotation threshold for zero-valued
// Options.SegmentBytes.
const DefaultSegmentBytes = 64 << 20

// segMagic heads every segment file.
const segMagic = "WCMWAL1\n"

// Policy selects when appends are fsynced.
type Policy int

const (
	// PolicyBatch fsyncs once per group commit — per request on the
	// synchronous ingest path, once per worker WAKEUP (all coalesced
	// groups of the drain) on the async pipeline, before any of those
	// batches are acknowledged. The default.
	PolicyBatch Policy = iota
	// PolicyAlways fsyncs before every acknowledgement batch-group-wise:
	// per request on the synchronous path, per coalesced stream group on
	// the async pipeline.
	PolicyAlways
	// PolicyNone never fsyncs on the ingest path; the OS flushes when it
	// pleases. Acknowledged data survives process death (the page cache
	// persists) but not machine death. Close still flushes.
	PolicyNone
)

func (p Policy) String() string {
	switch p {
	case PolicyBatch:
		return "batch"
	case PolicyAlways:
		return "always"
	case PolicyNone:
		return "none"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy maps the -fsync flag values to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "batch":
		return PolicyBatch, nil
	case "always":
		return PolicyAlways, nil
	case "none":
		return PolicyNone, nil
	}
	return 0, fmt.Errorf(`wal: fsync policy %q (want "always", "batch" or "none")`, s)
}

// Options parameterizes Open.
type Options struct {
	// Dir is the data directory. Created if absent.
	Dir string
	// Shards must equal the serving layer's registry shard count: records
	// are partitioned the same way streams are. Persisted in meta.json and
	// validated on reopen — recovering a 16-shard log into a 32-shard
	// registry would split streams from their records.
	Shards int
	// SegmentBytes is the size past which a segment rotates. 0 picks
	// DefaultSegmentBytes.
	SegmentBytes int64
	// Policy is the fsync policy. Zero value is PolicyBatch.
	Policy Policy
	// Stream is the serving layer's stream config; its resolved form is
	// persisted in meta.json and validated on reopen, because snapshots
	// and replay are only meaningful under the window geometry they were
	// recorded with.
	Stream stream.Config
}

// walMeta is the meta.json schema.
type walMeta struct {
	Format         int `json:"format"`
	Shards         int `json:"shards"`
	Window         int `json:"window"`
	MaxK           int `json:"max_k"`
	ReextractEvery int `json:"reextract_every"`
}

const metaFormat = 1

// Manager owns one data directory: the shard logs, the recovery results of
// the Open-time scan, and the cumulative counters the serving layer
// exports.
type Manager struct {
	opts       Options
	shards     []*ShardLog
	recovery   [][]StreamRecovery
	cleanStart bool

	bytes   atomic.Uint64
	appends atomic.Uint64
	fsyncs  atomic.Uint64
	torn    atomic.Uint64

	appendH atomic.Pointer[obs.Histogram]
	fsyncH  atomic.Pointer[obs.Histogram]

	closed atomic.Bool
}

// ShardLog is one shard's segment chain. Appends serialize on its mutex;
// snapshot file operations serialize on snapMu (they never block appends).
type ShardLog struct {
	mgr *Manager
	dir string

	mu    sync.Mutex
	f     *os.File
	seg   uint64
	off   int64
	buf   []byte
	dirty bool

	snapMu sync.Mutex
}

// Open loads (or initializes) a data directory: validates meta against the
// options, consumes the CLEAN marker, scans every shard's segments and
// snapshots into recovery state, truncates torn tails, and leaves each
// shard positioned for appending. The caller drains Recovery per shard,
// replays it, and only then serves traffic.
func Open(opts Options) (*Manager, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: empty data directory")
	}
	if opts.Shards < 1 {
		return nil, fmt.Errorf("wal: shards=%d", opts.Shards)
	}
	if opts.SegmentBytes == 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SegmentBytes < 4096 {
		return nil, fmt.Errorf("wal: segment bytes=%d (need ≥ 4096)", opts.SegmentBytes)
	}
	if opts.Policy < PolicyBatch || opts.Policy > PolicyNone {
		return nil, fmt.Errorf("wal: invalid policy %d", int(opts.Policy))
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	rs := opts.Stream.Resolved()
	want := walMeta{Format: metaFormat, Shards: opts.Shards,
		Window: rs.Window, MaxK: rs.MaxK, ReextractEvery: rs.ReextractEvery}
	if err := checkOrWriteMeta(opts.Dir, want); err != nil {
		return nil, err
	}

	m := &Manager{opts: opts}
	cleanPath := filepath.Join(opts.Dir, "CLEAN")
	if _, err := os.Stat(cleanPath); err == nil {
		m.cleanStart = true
		if err := os.Remove(cleanPath); err != nil {
			return nil, err
		}
	}

	m.shards = make([]*ShardLog, opts.Shards)
	m.recovery = make([][]StreamRecovery, opts.Shards)
	for i := range m.shards {
		dir := filepath.Join(opts.Dir, fmt.Sprintf("shard-%03d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		l := &ShardLog{mgr: m, dir: dir}
		rec, err := l.openAndScan()
		if err != nil {
			m.closeFiles()
			return nil, fmt.Errorf("wal: shard %d: %w", i, err)
		}
		m.shards[i] = l
		m.recovery[i] = rec
	}
	return m, nil
}

func checkOrWriteMeta(dir string, want walMeta) error {
	path := filepath.Join(dir, "meta.json")
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		var have walMeta
		if err := json.Unmarshal(data, &have); err != nil {
			return fmt.Errorf("wal: corrupt meta.json: %w", err)
		}
		if have != want {
			return fmt.Errorf("wal: data dir recorded %+v, process configured %+v — "+
				"shard count and stream geometry must match the directory they wrote", have, want)
		}
		return nil
	case os.IsNotExist(err):
		data, err := json.Marshal(want)
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		return syncDir(dir)
	default:
		return err
	}
}

// CleanStart reports whether the previous process shut down cleanly (its
// Close wrote the CLEAN marker). Informational: recovery replays the WAL
// tail either way.
func (m *Manager) CleanStart() bool { return m.cleanStart }

// Shards returns the shard count the directory was opened with.
func (m *Manager) Shards() int { return len(m.shards) }

// Shard returns shard i's log.
func (m *Manager) Shard(i int) *ShardLog { return m.shards[i] }

// Policy returns the fsync policy.
func (m *Manager) Policy() Policy { return m.opts.Policy }

// Recovery returns shard i's recovered streams, sorted by id: the decoded
// snapshot state (nil when the stream has none) plus the surviving WAL
// batches in replay order. The slice is the Open-time scan result; the
// caller replays it once at boot.
func (m *Manager) Recovery(i int) []StreamRecovery { return m.recovery[i] }

// SetObs installs latency histograms for appends and fsyncs. Call before
// serving traffic (the serving layer does, during construction).
func (m *Manager) SetObs(appendH, fsyncH *obs.Histogram) {
	m.appendH.Store(appendH)
	m.fsyncH.Store(fsyncH)
}

// BytesAppended, Appends, Fsyncs and TornTails are the cumulative counters
// behind wcmd_wal_*_total.
func (m *Manager) BytesAppended() uint64 { return m.bytes.Load() }
func (m *Manager) Appends() uint64       { return m.appends.Load() }
func (m *Manager) Fsyncs() uint64        { return m.fsyncs.Load() }
func (m *Manager) TornTails() uint64     { return m.torn.Load() }

// Close flushes and closes every shard log, then writes the CLEAN marker.
// Regardless of policy, a clean shutdown leaves everything durable. Safe
// to call once; the serving layer checkpoints first so reopening replays
// (almost) nothing.
func (m *Manager) Close() error {
	if !m.closed.CompareAndSwap(false, true) {
		return nil
	}
	var first error
	for _, l := range m.shards {
		l.mu.Lock()
		if l.f != nil {
			if err := l.f.Sync(); err != nil && first == nil {
				first = err
			}
			if err := l.f.Close(); err != nil && first == nil {
				first = err
			}
			l.f = nil
		}
		l.mu.Unlock()
	}
	if first != nil {
		return first
	}
	if err := os.WriteFile(filepath.Join(m.opts.Dir, "CLEAN"), []byte("clean\n"), 0o644); err != nil {
		return err
	}
	return syncDir(m.opts.Dir)
}

func (m *Manager) closeFiles() {
	for _, l := range m.shards {
		if l != nil && l.f != nil {
			l.f.Close()
		}
	}
}

func segName(seg uint64) string { return fmt.Sprintf("wal-%08d.log", seg) }

// ---- append path -----------------------------------------------------------

// AppendIngest logs one applied batch. It writes (one write syscall, no
// user-space buffering — an acknowledged record is in the page cache even
// if the process dies before any fsync) but does not sync; pair with
// Commit before acknowledging. The serving layer calls this under its
// shard lock so no record for a stream can land after that stream's
// tombstone.
func (l *ShardLog) AppendIngest(id string, version int64, ts, ds []int64) error {
	if len(id) > maxIDLen {
		return fmt.Errorf("wal: stream id %d bytes exceeds %d", len(id), maxIDLen)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(recIngest, id, version, ts, ds)
}

// IngestRec is one applied batch of an AppendIngestGroup call.
type IngestRec struct {
	ID      string
	Version int64
	Ts, Ds  []int64
}

// AppendIngestGroup logs a whole coalesced group of applied batches with ONE
// write syscall. Each record is framed exactly as AppendIngest frames it —
// replay cannot tell the two apart — but the group shares a single encode
// buffer fill, lock acquisition and kernel crossing. This is the async
// pipeline's group-commit companion: per-record AppendIngest calls paid a
// buffer reset, counter pair and write per job, which at high coalesce
// ratios dominated the ingest allocation profile; a drain's records now
// amortize all of it. The appends counter still advances once per RECORD,
// so wcmd_wal_appends_total means the same thing on both paths.
func (l *ShardLog) AppendIngestGroup(recs []IngestRec) error {
	if len(recs) == 0 {
		return nil
	}
	for i := range recs {
		if len(recs[i].ID) > maxIDLen {
			return fmt.Errorf("wal: stream id %d bytes exceeds %d", len(recs[i].ID), maxIDLen)
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: shard log closed")
	}
	if l.off >= l.mgr.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	start := time.Now()
	l.buf = l.buf[:0]
	for i := range recs {
		l.buf = appendRecord(l.buf, recIngest, recs[i].ID, recs[i].Version, recs[i].Ts, recs[i].Ds)
	}
	n, err := l.f.Write(l.buf)
	l.off += int64(n)
	l.mgr.bytes.Add(uint64(n))
	l.mgr.appends.Add(uint64(len(recs)))
	if h := l.mgr.appendH.Load(); h != nil {
		h.Observe(time.Since(start))
	}
	if err != nil {
		return err
	}
	l.dirty = true
	return nil
}

// AppendTombstone logs a DELETE. Same contract as AppendIngest.
func (l *ShardLog) AppendTombstone(id string) error {
	if len(id) > maxIDLen {
		return fmt.Errorf("wal: stream id %d bytes exceeds %d", len(id), maxIDLen)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(recTombstone, id, 0, nil, nil)
}

func (l *ShardLog) appendLocked(kind byte, id string, version int64, ts, ds []int64) error {
	if l.f == nil {
		return errors.New("wal: shard log closed")
	}
	if l.off >= l.mgr.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	start := time.Now()
	l.buf = appendRecord(l.buf[:0], kind, id, version, ts, ds)
	n, err := l.f.Write(l.buf)
	l.off += int64(n)
	l.mgr.bytes.Add(uint64(n))
	l.mgr.appends.Add(1)
	if h := l.mgr.appendH.Load(); h != nil {
		h.Observe(time.Since(start))
	}
	if err != nil {
		return err
	}
	l.dirty = true
	return nil
}

// Commit makes every record appended so far durable under the configured
// policy: fsync when dirty (PolicyAlways/PolicyBatch), no-op under
// PolicyNone. The serving layer calls it before acknowledging the batches
// the pending records carry.
func (l *ShardLog) Commit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.dirty || l.mgr.opts.Policy == PolicyNone || l.f == nil {
		return nil
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	l.dirty = false
	return nil
}

func (l *ShardLog) syncLocked() error {
	start := time.Now()
	err := l.f.Sync()
	l.mgr.fsyncs.Add(1)
	if h := l.mgr.fsyncH.Load(); h != nil {
		h.Observe(time.Since(start))
	}
	return err
}

// Rotate closes the current segment and starts the next one, returning the
// new segment's index. The checkpointer calls it so every record appended
// before the call lives strictly below the returned index.
func (l *ShardLog) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, errors.New("wal: shard log closed")
	}
	if err := l.rotateLocked(); err != nil {
		return 0, err
	}
	return l.seg, nil
}

func (l *ShardLog) rotateLocked() error {
	if l.f != nil {
		// The old segment's records may be awaiting a group commit; flush
		// them so rotation never weakens the policy's guarantee. (Under
		// PolicyNone nothing was promised, so nothing is forced.)
		if l.dirty && l.mgr.opts.Policy != PolicyNone {
			if err := l.syncLocked(); err != nil {
				return err
			}
			l.dirty = false
		}
		if err := l.f.Close(); err != nil {
			return err
		}
		l.f = nil
	}
	return l.startSegmentLocked(l.seg + 1)
}

// startSegmentLocked creates segment seg with its header and makes it the
// append target.
func (l *ShardLog) startSegmentLocked(seg uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segName(seg)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return err
	}
	if l.mgr.opts.Policy != PolicyNone {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := syncDir(l.dir); err != nil {
			f.Close()
			return err
		}
	}
	l.f, l.seg, l.off, l.dirty = f, seg, int64(len(segMagic)), false
	return nil
}

// ---- checkpoint file operations -------------------------------------------

// WriteSnapshot atomically persists one stream's state, tagged with the
// checkpoint's rotation segment and the stream version inside the blob.
func (l *ShardLog) WriteSnapshot(id string, snapSeg uint64, version int64, state []byte) error {
	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	return writeSnapshotFile(l.dir, id, snapSeg, version, state)
}

// RemoveSnapshot unlinks a stream's snapshot file, if present. DELETE
// calls it after logging the tombstone; losing the race with a concurrent
// checkpoint is fine — the tombstone's position invalidates whatever
// snapshot that checkpoint writes.
func (l *ShardLog) RemoveSnapshot(id string) error {
	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	err := os.Remove(filepath.Join(l.dir, snapFileName(id)))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// CleanSnapshots removes every snapshot file whose stream id the keep
// function rejects — checkpoint hygiene for streams that died since the
// last pass.
func (l *ShardLog) CleanSnapshots(keep func(id string) bool) error {
	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || len(name) < 10 || name[:5] != "snap-" || name[len(name)-5:] != ".snap" {
			continue
		}
		path := filepath.Join(l.dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		sf, err := parseSnapshot(data)
		if err == nil && keep(sf.id) {
			continue
		}
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// RemoveSegmentsBefore deletes every segment file with index < seg. The
// checkpointer calls it last: the snapshots covering those records are
// already durable.
func (l *ShardLog) RemoveSegmentsBefore(seg uint64) error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return err
	}
	for _, ent := range entries {
		idx, ok := segIndex(ent.Name())
		if !ok || idx >= seg {
			continue
		}
		if err := os.Remove(filepath.Join(l.dir, ent.Name())); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return syncDir(l.dir)
}

// segIndex parses a segment file name, reporting whether it is one.
func segIndex(name string) (uint64, bool) {
	var idx uint64
	if n, err := fmt.Sscanf(name, "wal-%08d.log", &idx); n != 1 || err != nil {
		return 0, false
	}
	// Reject names Sscanf is lenient about (suffix garbage).
	if name != segName(idx) {
		return 0, false
	}
	return idx, true
}
