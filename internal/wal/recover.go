package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Recovery scan: executed once per shard inside Open, before any append.
// The scan reads every snapshot and walks every segment record by record,
// then resolves three orderings into the state the serving layer replays:
//
//   - tombstone vs record: a record survives only if it was appended after
//     the last tombstone for its stream (equivalently: tombstones drop
//     everything accumulated so far — the scan is in LSN order).
//   - tombstone vs snapshot: a snapshot is trusted only when no tombstone
//     for its id lives at or after its rotation segment (snapSeg). A
//     DELETE racing a checkpoint lands its tombstone in a segment ≥
//     snapSeg, so the tombstone wins in either interleaving.
//   - snapshot vs record: surviving records with version ≤ the snapshot's
//     are already inside it and are dropped; the rest replay on top,
//     sorted by version (two sync-path appenders holding the shard read
//     lock may reach the log mutex in either order, so raw file order is
//     not version order).
//
// A torn tail — short header, short payload, CRC mismatch — stops the scan
// at the last intact record: that segment is truncated to its valid end
// (or removed outright when even the header is torn) and every later
// segment is deleted, because records appended after an ignored region
// would be unreachable to any future scan. A payload that passes its CRC
// but fails structural decoding is NOT torn — it means an incompatible
// writer, and Open fails loudly rather than silently dropping data.

// RecoveredBatch is one WAL ingest record to replay: the batch columns and
// the stream version the batch originally landed at.
type RecoveredBatch struct {
	Version int64
	Ts      []int64
	Demands []int64
}

// StreamRecovery is everything recovery knows about one stream:
// the snapshot blob to restore from (nil when the stream has none; decode
// with stream.DecodeState) and the batches to replay on top, in order.
type StreamRecovery struct {
	ID              string
	SnapshotState   []byte
	SnapshotVersion int64 // 0 when SnapshotState is nil
	Batches         []RecoveredBatch
}

// openAndScan recovers one shard directory and leaves the log positioned
// for appending. Called from Open before the manager is shared, so no
// locking is needed.
func (l *ShardLog) openAndScan() ([]StreamRecovery, error) {
	snaps, badSnaps, err := readSnapshots(l.dir)
	if err != nil {
		return nil, err
	}
	// Corrupt snapshots count toward the torn tally: artifacts dropped at
	// recovery because a crash (or the disk) sheared them.
	if badSnaps > 0 {
		l.mgr.torn.Add(uint64(badSnaps))
	}

	segs, err := listSegments(l.dir)
	if err != nil {
		return nil, err
	}

	batches := make(map[string][]RecoveredBatch)
	tombs := make(map[string]lsn)
	var (
		tailSeg  uint64 // last intact segment
		tailEnd  int64  // its valid length
		haveTail bool
	)
	for si, seg := range segs {
		path := filepath.Join(l.dir, segName(seg))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		validEnd, torn := int64(0), false
		if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
			torn = true
		} else {
			off := int64(len(segMagic))
			for off < int64(len(data)) {
				payload, consumed, ferr := parseFrame(data[off:])
				if errors.Is(ferr, errTorn) {
					torn = true
					break
				}
				rec, perr := parsePayload(payload)
				if perr != nil {
					return nil, fmt.Errorf("%s offset %d: %w", segName(seg), off, perr)
				}
				switch rec.kind {
				case recTombstone:
					tombs[rec.id] = lsn{seg: seg, off: off}
					delete(batches, rec.id) // everything before the tombstone is dead
				case recIngest:
					batches[rec.id] = append(batches[rec.id],
						RecoveredBatch{Version: rec.version, Ts: rec.ts, Demands: rec.ds})
				}
				off += int64(consumed)
			}
			validEnd = off
		}
		if !torn {
			tailSeg, tailEnd, haveTail = seg, int64(len(data)), true
			continue
		}
		l.mgr.torn.Add(1)
		if validEnd < int64(len(segMagic)) {
			// Even the header is torn: the segment holds nothing.
			if err := os.Remove(path); err != nil {
				return nil, err
			}
		} else {
			if err := os.Truncate(path, validEnd); err != nil {
				return nil, err
			}
			tailSeg, tailEnd, haveTail = seg, validEnd, true
		}
		// Nothing after a torn region is trustworthy, and appending to a
		// later segment would strand these bytes forever — drop them.
		for _, later := range segs[si+1:] {
			if err := os.Remove(filepath.Join(l.dir, segName(later))); err != nil {
				return nil, err
			}
		}
		break
	}

	if haveTail {
		f, err := os.OpenFile(filepath.Join(l.dir, segName(tailSeg)), os.O_WRONLY, 0o644)
		if err != nil {
			return nil, err
		}
		if _, err := f.Seek(tailEnd, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		l.f, l.seg, l.off = f, tailSeg, tailEnd
	} else {
		// No usable segment. Never reuse an index that existed (or that a
		// snapshot's snapSeg references): tombstone-vs-snapshot resolution
		// compares segment indices, so a fresh segment below an existing
		// snapSeg could let a future DELETE land "before" a snapshot it
		// should kill.
		next := uint64(1)
		if n := len(segs); n > 0 && segs[n-1] >= next {
			next = segs[n-1] + 1
		}
		for _, sf := range snaps {
			if sf.seg >= next {
				next = sf.seg + 1
			}
		}
		if err := l.startSegmentLocked(next); err != nil {
			return nil, err
		}
	}

	// Resolve snapshots against tombstones, then assemble per-stream
	// recovery entries.
	ids := make(map[string]struct{}, len(snaps)+len(batches))
	for id, sf := range snaps {
		if tomb, ok := tombs[id]; ok && tomb.seg >= sf.seg {
			// The stream was deleted after this snapshot was cut; the file
			// is garbage that a clean checkpoint would have removed.
			if err := os.Remove(filepath.Join(l.dir, snapFileName(id))); err != nil && !os.IsNotExist(err) {
				return nil, err
			}
			delete(snaps, id)
			continue
		}
		ids[id] = struct{}{}
	}
	for id := range batches {
		ids[id] = struct{}{}
	}

	out := make([]StreamRecovery, 0, len(ids))
	for id := range ids {
		sr := StreamRecovery{ID: id}
		if sf, ok := snaps[id]; ok {
			sr.SnapshotState = sf.state
			sr.SnapshotVersion = sf.version
		}
		bs := batches[id]
		sort.Slice(bs, func(i, j int) bool { return bs[i].Version < bs[j].Version })
		for _, b := range bs {
			if b.Version <= sr.SnapshotVersion && sr.SnapshotState != nil {
				continue // already inside the snapshot
			}
			sr.Batches = append(sr.Batches, b)
		}
		if sr.SnapshotState == nil && len(sr.Batches) == 0 {
			continue
		}
		out = append(out, sr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// listSegments returns the shard's segment indices, ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []uint64
	for _, ent := range entries {
		if idx, ok := segIndex(ent.Name()); ok {
			segs = append(segs, idx)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}
