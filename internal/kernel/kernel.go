// Package kernel is the shared extraction kernel behind every curve
// extraction in the repository: workload curves γᵘ/γˡ (internal/core),
// minimal/maximal span tables d(k)/D(k) (internal/arrival) and the
// admissibility scan of the runtime monitor.
//
// All of these reduce to ONE primitive. Given a non-empty array
// data[0..m−1] and a window offset k, the k-differences are
//
//	diff(j, k) = data[j+k] − data[j]     for j = 0..m−1−k
//
// and the extraction needs, for every k in 1..maxK, the maximum and the
// minimum k-difference:
//
//   - workload curves: data is the demand prefix-sum array (m = n+1);
//     γᵘ(k) = max_j diff(j, k) and γˡ(k) = min_j diff(j, k);
//   - span tables: data is the timestamp array itself (m = n);
//     d(k) = min_j diff(j, k−1) and D(k) = max_j diff(j, k−1);
//   - admissibility: a window of length k violates (γˡ, γᵘ) iff the
//     minimum or maximum k-difference of the prefix array escapes
//     [γˡ(k), γᵘ(k)].
//
// The naive formulation (one full pass over data per curve per k) costs
// 2·K·m scattered reads. This kernel restructures the computation three
// ways, preserving bit-identical results (see ExtractNaive and the
// differential tests):
//
//  1. FUSE: max and min accumulate in the same pass, so data is read once
//     where the naive code reads it twice.
//  2. BLOCK over k: offsets are processed in contiguous groups of four by
//     a register-blocked micro-kernel — one streaming pass over data
//     serves four window lengths, with all eight max/min accumulators in
//     registers (wider grouping spills and measures slower), branchless
//     min/max updates (CMOV, no data-dependent branches) and equal-length
//     subslices so the compiler drops every bounds check. Passes over data
//     fall from 2 per offset to ¼, and data[j] is loaded once per four
//     windows. Options.BlockSize sets the outer scheduling granularity
//     (work chunks handed to the pool / early-exit quantum of Scan).
//  3. POOL-PARALLELIZE over contiguous k-blocks: the 1..maxK range is cut
//     into one contiguous chunk per worker, so each goroutine writes a
//     contiguous region of the result slices (no false sharing) and keeps
//     the best possible locality. Small inputs skip the pool entirely
//     (SeqThreshold) so goroutine overhead never dominates.
package kernel

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
)

// ErrBadInput is wrapped by every argument-validation error of the package.
var ErrBadInput = errors.New("kernel: invalid extraction input")

// DefaultBlockSize is the k-block width B: the granularity at which work
// is chunked (pool scheduling, Scan's early-exit quantum). The micro-
// kernel processes 4 offsets per streaming pass regardless; B only has to
// be large enough that per-block overhead stays negligible. The
// differential tests exercise many other widths.
const DefaultBlockSize = 64

// DefaultSeqThreshold is the approximate number of window evaluations
// (≈ maxK·m) below which Extract stays sequential: at ~tens of ns per
// goroutine handoff, smaller jobs finish faster on one core.
const DefaultSeqThreshold = 1 << 16

// Options tunes the kernel. The zero value picks defaults that are right
// for nearly all callers.
type Options struct {
	// BlockSize is the width of the contiguous k-blocks streamed per pass.
	// 0 means DefaultBlockSize.
	BlockSize int
	// Workers caps the worker pool. 0 means runtime.GOMAXPROCS(0);
	// 1 forces a sequential run.
	Workers int
	// SeqThreshold is the approximate window-evaluation count below which
	// the pool is skipped even when Workers > 1. 0 means
	// DefaultSeqThreshold; pass a negative value to force the pool on.
	SeqThreshold int64
}

func (o Options) blockSize() int {
	if o.BlockSize <= 0 {
		return DefaultBlockSize
	}
	return o.BlockSize
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

func (o Options) seqThreshold() int64 {
	if o.SeqThreshold == 0 {
		return DefaultSeqThreshold
	}
	if o.SeqThreshold < 0 {
		return 0
	}
	return o.SeqThreshold
}

func validate(m, maxK int) error {
	if m == 0 {
		return fmt.Errorf("%w: empty data", ErrBadInput)
	}
	if maxK < 0 || maxK > m-1 {
		return fmt.Errorf("%w: maxK=%d, len(data)=%d", ErrBadInput, maxK, m)
	}
	return nil
}

// Extract computes, for every offset k = 0..maxK, the extrema of the
// k-differences of data:
//
//	up[k] = max_j data[j+k] − data[j]
//	lo[k] = min_j data[j+k] − data[j]
//
// up[0] = lo[0] = 0 by construction. maxK must satisfy
// 0 ≤ maxK ≤ len(data)−1 so every offset has at least one window.
func Extract(data []int64, maxK int, opt Options) (up, lo []int64, err error) {
	if err := validate(len(data), maxK); err != nil {
		return nil, nil, err
	}
	up = make([]int64, maxK+1)
	lo = make([]int64, maxK+1)
	if err := ExtractInto(data, maxK, opt, up, lo); err != nil {
		return nil, nil, err
	}
	return up, lo, nil
}

// ExtractInto is Extract writing into caller-provided slices, for hot loops
// that re-extract periodically and want zero steady-state allocations (the
// re-extraction anchor of internal/stream). up and lo must each hold at
// least maxK+1 elements; only indices 0..maxK are written.
func ExtractInto(data []int64, maxK int, opt Options, up, lo []int64) error {
	if err := validate(len(data), maxK); err != nil {
		return err
	}
	if len(up) < maxK+1 || len(lo) < maxK+1 {
		return fmt.Errorf("%w: result slices hold %d/%d values, need %d",
			ErrBadInput, len(up), len(lo), maxK+1)
	}
	up[0], lo[0] = 0, 0
	if maxK == 0 {
		return nil
	}

	work := int64(maxK) * int64(len(data))
	workers := opt.workers()
	if workers > maxK {
		workers = maxK
	}
	if workers <= 1 || work < opt.seqThreshold() {
		extractBlocked(data, 1, maxK, opt.blockSize(), up, lo)
		return nil
	}

	// Contiguous k-chunks: worker w owns [1+w·chunk, 1+(w+1)·chunk), so all
	// its writes to up/lo land in a contiguous region it alone touches.
	chunk := (maxK + workers - 1) / workers
	var wg sync.WaitGroup
	for kLo := 1; kLo <= maxK; kLo += chunk {
		kHi := kLo + chunk - 1
		if kHi > maxK {
			kHi = maxK
		}
		wg.Add(1)
		go func(kLo, kHi int) {
			defer wg.Done()
			extractBlocked(data, kLo, kHi, opt.blockSize(), up, lo)
		}(kLo, kHi)
	}
	wg.Wait()
	return nil
}

// extractBlocked fills up[k], lo[k] for k in [kLo, kHi] by streaming one
// fused pass per k-block of width blockSize.
func extractBlocked(data []int64, kLo, kHi, blockSize int, up, lo []int64) {
	for k := kLo; k <= kHi; k += blockSize {
		end := k + blockSize - 1
		if end > kHi {
			end = kHi
		}
		extractRange(data, k, end, up, lo)
	}
}

// extractRange fills up[k], lo[k] for k in [kLo, kHi] using the fused
// register-blocked micro-kernel: offsets are processed four at a time, so
// one streaming pass over data serves four window lengths with all eight
// max/min accumulators held in registers and data[j] loaded once per four
// windows. Compared to the naive code this cuts loads per window from 4
// (two passes × two loads) to 1.25 and passes over data from 2 per offset
// to ¼ per offset.
func extractRange(data []int64, kLo, kHi int, up, lo []int64) {
	k := kLo
	for ; k+3 <= kHi; k += 4 {
		extract4(data, k, up, lo)
	}
	for ; k <= kHi; k++ {
		extract1(data, k, up, lo)
	}
}

// extract4 computes the extrema for offsets k..k+3 in one fused pass.
// Accumulators start at the j=0 window of their offset (which always
// exists: k+3 ≤ maxK ≤ m−1); updates use the max/min builtins, which
// compile to branchless conditional moves — measurably faster here than
// compare-and-branch, whose taken/not-taken pattern is data-dependent.
func extract4(data []int64, k int, up, lo []int64) {
	m := len(data)
	b0 := data[0]
	u0, u1, u2, u3 := data[k]-b0, data[k+1]-b0, data[k+2]-b0, data[k+3]-b0
	l0, l1, l2, l3 := u0, u1, u2, u3
	n3 := m - (k + 3) // number of j positions where all four offsets fit
	// e_i[j] = data[(j+1)+k+i]: the four window ends for start j+1. All
	// four are resliced to exactly len(base) so every access below is
	// provably in bounds — the compiler drops the checks.
	base := data[1:n3]
	e0 := data[k+1:][:len(base)]
	e1 := data[k+2:][:len(base)]
	e2 := data[k+3:][:len(base)]
	e3 := data[k+4:][:len(base)]
	for j, b := range base {
		v0 := e0[j] - b
		u0, l0 = max(u0, v0), min(l0, v0)
		v1 := e1[j] - b
		u1, l1 = max(u1, v1), min(l1, v1)
		v2 := e2[j] - b
		u2, l2 = max(u2, v2), min(l2, v2)
		v3 := e3[j] - b
		u3, l3 = max(u3, v3), min(l3, v3)
	}
	// Ragged tail: the last ≤3 windows of the three shorter offsets.
	for j := n3; j < m-k; j++ {
		v := data[j+k] - data[j]
		if v > u0 {
			u0 = v
		}
		if v < l0 {
			l0 = v
		}
		if j < m-k-1 {
			v = data[j+k+1] - data[j]
			if v > u1 {
				u1 = v
			}
			if v < l1 {
				l1 = v
			}
		}
		if j < m-k-2 {
			v = data[j+k+2] - data[j]
			if v > u2 {
				u2 = v
			}
			if v < l2 {
				l2 = v
			}
		}
	}
	up[k], up[k+1], up[k+2], up[k+3] = u0, u1, u2, u3
	lo[k], lo[k+1], lo[k+2], lo[k+3] = l0, l1, l2, l3
}

// extract1 is the single-offset fused pass used for the ≤3 leftover
// offsets of a block. Same register-accumulator scheme as extract4.
func extract1(data []int64, k int, up, lo []int64) {
	u := data[k] - data[0]
	l := u
	base := data[1 : len(data)-k]
	dk := data[k+1:][:len(base)]
	for j, b := range base {
		v := dk[j] - b
		u, l = max(u, v), min(l, v)
	}
	up[k], lo[k] = u, l
}

// ExtractNaive is the textbook reference implementation: one full pass
// over data per curve per k, exactly as the pre-kernel extraction did it.
// It is kept as the ground truth for the differential/fuzz tests and as
// the baseline the benchmarks measure speedups against.
func ExtractNaive(data []int64, maxK int) (up, lo []int64, err error) {
	if err := validate(len(data), maxK); err != nil {
		return nil, nil, err
	}
	up = make([]int64, maxK+1)
	lo = make([]int64, maxK+1)
	for k := 1; k <= maxK; k++ {
		best := int64(math.MinInt64)
		for j := 0; j+k < len(data); j++ {
			if v := data[j+k] - data[j]; v > best {
				best = v
			}
		}
		up[k] = best
		worst := int64(math.MaxInt64)
		for j := 0; j+k < len(data); j++ {
			if v := data[j+k] - data[j]; v < worst {
				worst = v
			}
		}
		lo[k] = worst
	}
	return up, lo, nil
}

// Scan streams the fused blocked extraction in ascending-k order and hands
// each offset's extrema to visit(k, min, max). It stops (and skips all
// remaining passes) as soon as visit returns false — the early-exit shape
// of an admissibility check, where the first out-of-bounds window length
// terminates the scan. The visit order is deterministic: k = 1, 2, ...
func Scan(data []int64, maxK int, blockSize int, visit func(k int, lo, up int64) bool) error {
	if err := validate(len(data), maxK); err != nil {
		return err
	}
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	up := make([]int64, maxK+1)
	lo := make([]int64, maxK+1)
	for k := 1; k <= maxK; k += blockSize {
		end := k + blockSize - 1
		if end > maxK {
			end = maxK
		}
		extractRange(data, k, end, up, lo)
		for kk := k; kk <= end; kk++ {
			if !visit(kk, lo[kk], up[kk]) {
				return nil
			}
		}
	}
	return nil
}
