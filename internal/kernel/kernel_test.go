package kernel

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randData draws a length-n array; monotone=true yields a non-decreasing
// array (the prefix-sum / timestamp shape real callers pass), otherwise
// values are arbitrary, including negatives (the kernel must not care).
func randData(rng *rand.Rand, n int, monotone bool) []int64 {
	d := make([]int64, n)
	var cum int64
	for i := range d {
		v := rng.Int63n(10_000) - 2_000
		if monotone {
			if v < 0 {
				v = -v
			}
			cum += v
			d[i] = cum
		} else {
			d[i] = v
		}
	}
	return d
}

// TestExtractMatchesNaive is the central differential property test: the
// fused/blocked/parallel kernel must be bit-identical to the naive
// reference for random data, maxK, block sizes and worker counts.
func TestExtractMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sizes := []int{1, 2, 3, 5, 17, 64, 65, 129, 257, 400}
	blocks := []int{1, 2, 3, 7, 64, 101, 1000}
	workerCounts := []int{0, 1, 2, 3, 5, 16}
	for _, n := range sizes {
		for _, monotone := range []bool{true, false} {
			data := randData(rng, n, monotone)
			for _, maxK := range []int{0, 1, n / 2, n - 1} {
				if maxK > n-1 {
					continue
				}
				wantUp, wantLo, err := ExtractNaive(data, maxK)
				if err != nil {
					t.Fatalf("naive n=%d maxK=%d: %v", n, maxK, err)
				}
				for _, b := range blocks {
					for _, w := range workerCounts {
						opt := Options{BlockSize: b, Workers: w, SeqThreshold: -1}
						up, lo, err := Extract(data, maxK, opt)
						if err != nil {
							t.Fatalf("kernel n=%d maxK=%d b=%d w=%d: %v", n, maxK, b, w, err)
						}
						for k := 0; k <= maxK; k++ {
							if up[k] != wantUp[k] || lo[k] != wantLo[k] {
								t.Fatalf("n=%d maxK=%d b=%d w=%d monotone=%v: k=%d got (%d,%d) want (%d,%d)",
									n, maxK, b, w, monotone, k, up[k], lo[k], wantUp[k], wantLo[k])
							}
						}
					}
				}
			}
		}
	}
}

// TestExtractDefaultsMatchNaive covers the default option path (auto block
// size, GOMAXPROCS workers, sequential-fallback threshold) at a size big
// enough to actually engage the pool.
func TestExtractDefaultsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := randData(rng, 3_000, true)
	maxK := 1_500
	wantUp, wantLo, err := ExtractNaive(data, maxK)
	if err != nil {
		t.Fatal(err)
	}
	up, lo, err := Extract(data, maxK, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= maxK; k++ {
		if up[k] != wantUp[k] || lo[k] != wantLo[k] {
			t.Fatalf("k=%d: got (%d,%d) want (%d,%d)", k, up[k], lo[k], wantUp[k], wantLo[k])
		}
	}
}

func TestExtractKnownValues(t *testing.T) {
	// Demands 3,1,4,1,5 → prefix 0,3,4,8,9,14.
	prefix := []int64{0, 3, 4, 8, 9, 14}
	up, lo, err := Extract(prefix, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantUp := []int64{0, 5, 6, 10, 11, 14}
	wantLo := []int64{0, 1, 4, 6, 9, 14}
	for k := range wantUp {
		if up[k] != wantUp[k] || lo[k] != wantLo[k] {
			t.Fatalf("k=%d: got (%d,%d) want (%d,%d)", k, up[k], lo[k], wantUp[k], wantLo[k])
		}
	}
}

func TestExtractValidation(t *testing.T) {
	if _, _, err := Extract(nil, 0, Options{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("empty data: %v", err)
	}
	if _, _, err := Extract([]int64{0, 1}, 2, Options{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("maxK beyond domain: %v", err)
	}
	if _, _, err := Extract([]int64{0, 1}, -1, Options{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("negative maxK: %v", err)
	}
	if _, _, err := ExtractNaive(nil, 0); !errors.Is(err, ErrBadInput) {
		t.Fatalf("naive empty data: %v", err)
	}
	if err := Scan(nil, 0, 0, nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("scan empty data: %v", err)
	}
}

// TestScanMatchesExtract checks that Scan visits every k in ascending
// order with the same extrema Extract reports.
func TestScanMatchesExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	data := randData(rng, 200, true)
	maxK := 199
	up, lo, err := Extract(data, maxK, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, block := range []int{1, 3, 64, 500} {
		next := 1
		err := Scan(data, maxK, block, func(k int, l, u int64) bool {
			if k != next {
				t.Fatalf("block=%d: visited k=%d, want %d", block, k, next)
			}
			if u != up[k] || l != lo[k] {
				t.Fatalf("block=%d k=%d: got (%d,%d) want (%d,%d)", block, k, l, u, lo[k], up[k])
			}
			next++
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if next != maxK+1 {
			t.Fatalf("block=%d: visited up to %d, want %d", block, next-1, maxK)
		}
	}
}

// TestScanEarlyExit checks the scan stops exactly where visit says so.
func TestScanEarlyExit(t *testing.T) {
	data := make([]int64, 100)
	for i := range data {
		data[i] = int64(i)
	}
	visited := 0
	err := Scan(data, 99, 8, func(k int, l, u int64) bool {
		visited++
		return k < 10
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != 10 {
		t.Fatalf("visited %d offsets, want 10", visited)
	}
}

// TestExtractZeroMaxK: the degenerate offset-0 request used by span
// extraction on single-event traces.
func TestExtractZeroMaxK(t *testing.T) {
	up, lo, err := Extract([]int64{42}, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(up) != 1 || len(lo) != 1 || up[0] != 0 || lo[0] != 0 {
		t.Fatalf("got up=%v lo=%v", up, lo)
	}
}

// TestExtractExtremeValues guards the accumulator initialization: data
// whose differences include MinInt64-adjacent values must still round-trip.
func TestExtractExtremeValues(t *testing.T) {
	data := []int64{math.MaxInt64 / 2, math.MinInt64 / 2, 0, math.MaxInt64 / 2}
	up, lo, err := Extract(data, 3, Options{BlockSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantUp, wantLo, err := ExtractNaive(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 3; k++ {
		if up[k] != wantUp[k] || lo[k] != wantLo[k] {
			t.Fatalf("k=%d: got (%d,%d) want (%d,%d)", k, up[k], lo[k], wantUp[k], wantLo[k])
		}
	}
}

func TestExtractIntoReusesBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := randData(rng, 300, true)
	wantUp, wantLo, err := Extract(data, 40, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Oversized buffers with garbage: only 0..maxK may be written.
	up := make([]int64, 64)
	lo := make([]int64, 64)
	for i := range up {
		up[i], lo[i] = -7, -7
	}
	if err := ExtractInto(data, 40, Options{}, up, lo); err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 40; k++ {
		if up[k] != wantUp[k] || lo[k] != wantLo[k] {
			t.Fatalf("ExtractInto mismatch at k=%d", k)
		}
	}
	for k := 41; k < 64; k++ {
		if up[k] != -7 || lo[k] != -7 {
			t.Fatalf("ExtractInto wrote past maxK at k=%d", k)
		}
	}
	// Undersized buffers are rejected.
	if err := ExtractInto(data, 40, Options{}, make([]int64, 40), lo); !errors.Is(err, ErrBadInput) {
		t.Fatalf("short up buffer: want ErrBadInput, got %v", err)
	}
}
