package kernel

import (
	"encoding/binary"
	"testing"
)

// FuzzExtract fuzzes the fused/blocked/parallel kernel against the naive
// reference: for arbitrary data and arbitrary (normalized) maxK, block
// size and worker count, both must either fail identically or agree
// bit-for-bit — the same guarantee the differential tests check on random
// traces, here driven by the fuzzer's corpus.
func FuzzExtract(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, 3, 2, 2)
	f.Add([]byte{255, 255, 0, 0, 128, 7}, 1, 1, 1)
	f.Add([]byte{}, 0, 0, 0)
	f.Add([]byte{9}, 0, 64, 8)
	f.Fuzz(func(t *testing.T, raw []byte, maxK, block, workers int) {
		// Two bytes per sample, signed, so short inputs still yield
		// interesting magnitudes and sign changes.
		n := len(raw) / 2
		data := make([]int64, n)
		for i := 0; i < n; i++ {
			data[i] = int64(int16(binary.LittleEndian.Uint16(raw[2*i:])))
		}
		if n > 0 {
			maxK = ((maxK % n) + n) % n // normalize into 0..n-1
		}
		block = ((block % 130) + 130) % 130
		workers = ((workers % 9) + 9) % 9

		wantUp, wantLo, wantErr := ExtractNaive(data, maxK)
		up, lo, err := Extract(data, maxK, Options{
			BlockSize: block, Workers: workers, SeqThreshold: -1,
		})
		if (err == nil) != (wantErr == nil) {
			t.Fatalf("error mismatch: kernel=%v naive=%v", err, wantErr)
		}
		if err != nil {
			return
		}
		for k := 0; k <= maxK; k++ {
			if up[k] != wantUp[k] || lo[k] != wantLo[k] {
				t.Fatalf("k=%d (n=%d block=%d workers=%d): got (%d,%d) want (%d,%d)",
					k, n, block, workers, up[k], lo[k], wantUp[k], wantLo[k])
			}
		}
		// Scan must report the same extrema in the same domain.
		err = Scan(data, maxK, block, func(k int, l, u int64) bool {
			if u != wantUp[k] || l != wantLo[k] {
				t.Fatalf("scan k=%d: got (%d,%d) want (%d,%d)", k, l, u, wantLo[k], wantUp[k])
			}
			return true
		})
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
	})
}
