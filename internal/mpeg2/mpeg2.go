// Package mpeg2 is a synthetic MPEG-2 decoder workload model: the substrate
// for the paper's case study (Sec. 3.2).
//
// The paper obtained per-macroblock execution demands from a SystemC +
// SimpleScalar simulation of a real decoder fed with 14 video clips
// (CBR 9.78 Mbit/s, main profile @ main level, 25 fps, 720×576). Neither
// the clips nor the simulator are available, so this package generates the
// same *kind* of data analytically: a deterministic, seeded content model
// produces for every macroblock its coding type (intra / inter / skipped),
// coded-block pattern, motion-compensation mode and bit budget, from which
// per-stage cycle demands follow. Workload-curve analysis only consumes the
// demand and timing sequences, so this reproduces the structure that makes
// the case study interesting:
//
//   - I frames are all-intra and expensive on PE2 (IDCT-heavy), P frames
//     mix inter/skip, B frames are mostly cheap (skips, small residuals);
//   - bits are distributed ≈5:3:1 across I:P:B frames at constant total
//     bitrate, so the PE1 output stream is bursty (cheap frames decode
//     quickly once their few bits arrive);
//   - content "activity" varies by scene, with deterministic scene cuts,
//     so the 14 clips differ the way real clips do.
//
// Geometry follows the paper: 720×576 → 45×36 = 1620 macroblocks per frame,
// 25 fps, GOP N=12 / M=3.
package mpeg2

import (
	"errors"
	"fmt"

	"wcm/internal/events"
)

// Errors returned by this package.
var (
	ErrBadConfig = errors.New("mpeg2: invalid stream configuration")
	ErrBadClip   = errors.New("mpeg2: invalid clip profile")
)

// FrameType is the MPEG-2 picture coding type.
type FrameType uint8

const (
	FrameI FrameType = iota // intra-coded
	FrameP                  // forward-predicted
	FrameB                  // bi-directionally predicted
)

func (f FrameType) String() string {
	switch f {
	case FrameI:
		return "I"
	case FrameP:
		return "P"
	case FrameB:
		return "B"
	}
	return "?"
}

// MBType is the macroblock coding type.
type MBType uint8

const (
	MBIntra   MBType = iota // fully intra-coded
	MBInter                 // motion-compensated with coded residual
	MBSkipped               // copied from reference, no coded data
)

func (m MBType) String() string {
	switch m {
	case MBIntra:
		return "intra"
	case MBInter:
		return "inter"
	case MBSkipped:
		return "skipped"
	}
	return "?"
}

// Motion is the motion-compensation mode of an inter macroblock.
type Motion uint8

const (
	MotionNone Motion = iota // intra or skipped: no MC
	MotionFwd                // forward prediction
	MotionBwd                // backward prediction
	MotionBi                 // bi-directional (average of two references)
)

// Macroblock is one 16×16 macroblock with everything the demand model
// needs: coding decisions and bit budget (pixel data is irrelevant to the
// analysis and never materialized).
type Macroblock struct {
	Frame       int // frame index in decode order
	Index       int // macroblock index within the frame (raster order)
	Type        MBType
	Motion      Motion
	CodedBlocks int   // number of coded 8×8 blocks, 0..6 (4 luma + 2 chroma)
	Bits        int64 // compressed size of this macroblock
	// Heavy marks the rare pathological macroblocks whose coefficients the
	// IDCT accelerator cannot handle (escape-coded levels, mismatch
	// control), forcing a software fallback on PE2. These are what makes
	// the per-macroblock WCET much larger than any frame-long average —
	// the high WCET-to-average ratio the paper's introduction cites.
	Heavy bool
}

// StreamConfig fixes the stream geometry and rate parameters.
type StreamConfig struct {
	WidthMB    int   // macroblock columns (paper: 45)
	HeightMB   int   // macroblock rows (paper: 36)
	FPS        int   // frames per second (paper: 25)
	BitRate    int64 // bits per second (paper: 9_780_000)
	GOPSize    int   // frames per GOP (paper: 12)
	GOPPeriodP int   // P-frame spacing M (paper: 3)
	Frames     int   // frames to generate
}

// DefaultStream returns the paper's stream parameters for the given number
// of frames.
func DefaultStream(frames int) StreamConfig {
	return StreamConfig{
		WidthMB:    45,
		HeightMB:   36,
		FPS:        25,
		BitRate:    9_780_000,
		GOPSize:    12,
		GOPPeriodP: 3,
		Frames:     frames,
	}
}

// Validate checks configuration invariants.
func (c StreamConfig) Validate() error {
	switch {
	case c.WidthMB <= 0 || c.HeightMB <= 0:
		return fmt.Errorf("%w: %dx%d macroblocks", ErrBadConfig, c.WidthMB, c.HeightMB)
	case c.FPS <= 0:
		return fmt.Errorf("%w: fps=%d", ErrBadConfig, c.FPS)
	case c.BitRate <= 0:
		return fmt.Errorf("%w: bitrate=%d", ErrBadConfig, c.BitRate)
	case c.GOPSize < 2 || c.GOPPeriodP < 1 || c.GOPPeriodP >= c.GOPSize:
		return fmt.Errorf("%w: GOP N=%d M=%d", ErrBadConfig, c.GOPSize, c.GOPPeriodP)
	case c.Frames <= 0:
		return fmt.Errorf("%w: frames=%d", ErrBadConfig, c.Frames)
	}
	return nil
}

// MBPerFrame returns the number of macroblocks per frame (paper: 1620).
func (c StreamConfig) MBPerFrame() int { return c.WidthMB * c.HeightMB }

// FramePeriodNs returns the frame period in nanoseconds (paper: 40ms).
func (c StreamConfig) FramePeriodNs() int64 { return int64(1e9) / int64(c.FPS) }

// BitsPerFrame returns the average CBR bit budget of one frame.
func (c StreamConfig) BitsPerFrame() int64 { return c.BitRate / int64(c.FPS) }

// FrameTypeAt returns the decode-order frame type: frame 0 of every GOP is
// I, then frames at multiples of M are P, the rest B. (This is the decode
// order of the classic IBBP… display GOP; exact reordering details do not
// affect the workload shape and are documented in DESIGN.md.)
func (c StreamConfig) FrameTypeAt(frame int) FrameType {
	pos := frame % c.GOPSize
	switch {
	case pos == 0:
		return FrameI
	case pos%c.GOPPeriodP == 0:
		return FrameP
	default:
		return FrameB
	}
}

// Clip is one synthetic video clip profile. The 14 profiles in Library()
// stand in for the paper's 14 real clips.
type Clip struct {
	Name          string
	Seed          uint64  // generator seed (deterministic content)
	BaseActivity  float64 // 0..1: spatial detail / coding cost level
	MotionLevel   float64 // 0..1: how much motion (more inter coding, bigger residuals)
	SceneCutEvery int     // mean frames between scene cuts (0 = none)
}

// Validate checks clip invariants.
func (cl Clip) Validate() error {
	if cl.BaseActivity < 0 || cl.BaseActivity > 1 || cl.MotionLevel < 0 || cl.MotionLevel > 1 {
		return fmt.Errorf("%w: %q activity=%g motion=%g", ErrBadClip, cl.Name, cl.BaseActivity, cl.MotionLevel)
	}
	if cl.SceneCutEvery < 0 {
		return fmt.Errorf("%w: %q sceneCutEvery=%d", ErrBadClip, cl.Name, cl.SceneCutEvery)
	}
	return nil
}

// Library returns the 14 synthetic clip profiles used throughout the case
// study, spanning static talking-head material to high-motion sports.
func Library() []Clip {
	return []Clip{
		{Name: "newsdesk", Seed: 101, BaseActivity: 0.20, MotionLevel: 0.10, SceneCutEvery: 0},
		{Name: "interview", Seed: 102, BaseActivity: 0.25, MotionLevel: 0.15, SceneCutEvery: 200},
		{Name: "weather", Seed: 103, BaseActivity: 0.30, MotionLevel: 0.20, SceneCutEvery: 0},
		{Name: "documentary", Seed: 104, BaseActivity: 0.40, MotionLevel: 0.30, SceneCutEvery: 120},
		{Name: "cityscape", Seed: 105, BaseActivity: 0.55, MotionLevel: 0.25, SceneCutEvery: 150},
		{Name: "cartoon", Seed: 106, BaseActivity: 0.35, MotionLevel: 0.45, SceneCutEvery: 60},
		{Name: "musicvideo", Seed: 107, BaseActivity: 0.50, MotionLevel: 0.60, SceneCutEvery: 25},
		{Name: "sitcom", Seed: 108, BaseActivity: 0.35, MotionLevel: 0.25, SceneCutEvery: 90},
		{Name: "nature", Seed: 109, BaseActivity: 0.60, MotionLevel: 0.40, SceneCutEvery: 140},
		{Name: "football", Seed: 110, BaseActivity: 0.65, MotionLevel: 0.80, SceneCutEvery: 70},
		{Name: "tennis", Seed: 111, BaseActivity: 0.55, MotionLevel: 0.70, SceneCutEvery: 80},
		{Name: "actionfilm", Seed: 112, BaseActivity: 0.70, MotionLevel: 0.75, SceneCutEvery: 30},
		{Name: "concert", Seed: 113, BaseActivity: 0.75, MotionLevel: 0.55, SceneCutEvery: 45},
		{Name: "mobile", Seed: 114, BaseActivity: 0.85, MotionLevel: 0.65, SceneCutEvery: 100},
	}
}

// Stream is a generated clip: the macroblock sequence in decode order plus
// per-frame metadata.
type Stream struct {
	Config     StreamConfig
	Clip       Clip
	FrameTypes []FrameType
	MBs        []Macroblock
}

// Generate produces the macroblock sequence of a clip. The generation is
// fully deterministic in (cfg, clip).
func Generate(cfg StreamConfig, clip Clip) (*Stream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := clip.Validate(); err != nil {
		return nil, err
	}
	g := events.NewLCG(clip.Seed)
	perFrame := cfg.MBPerFrame()
	s := &Stream{
		Config:     cfg,
		Clip:       clip,
		FrameTypes: make([]FrameType, cfg.Frames),
		MBs:        make([]Macroblock, 0, cfg.Frames*perFrame),
	}

	activity := clip.BaseActivity
	motion := clip.MotionLevel
	framesToCut := sceneLength(clip, g)

	for f := 0; f < cfg.Frames; f++ {
		ft := cfg.FrameTypeAt(f)
		s.FrameTypes[f] = ft

		sceneCut := false
		if clip.SceneCutEvery > 0 {
			framesToCut--
			if framesToCut <= 0 {
				sceneCut = true
				framesToCut = sceneLength(clip, g)
				// New scene: re-draw activity/motion around the base level.
				activity = clamp01(clip.BaseActivity + (g.Float64()-0.5)*0.4)
				motion = clamp01(clip.MotionLevel + (g.Float64()-0.5)*0.4)
			}
		}
		// Small per-frame drift within a scene.
		activity = clamp01(activity + (g.Float64()-0.5)*0.04)

		frameMBs := generateFrame(cfg, g, f, ft, activity, motion, sceneCut)
		normalizeFrameBits(cfg, frameMBs, ft, activity)
		s.MBs = append(s.MBs, frameMBs...)
	}
	return s, nil
}

func sceneLength(clip Clip, g *events.LCG) int {
	if clip.SceneCutEvery == 0 {
		return 1 << 30
	}
	half := int64(clip.SceneCutEvery / 2)
	if half < 1 {
		half = 1
	}
	return clip.SceneCutEvery/2 + int(g.Intn(2*half))
}

// generateFrame draws the per-macroblock coding decisions of one frame.
func generateFrame(cfg StreamConfig, g *events.LCG, frame int, ft FrameType, activity, motion float64, sceneCut bool) []Macroblock {
	perFrame := cfg.MBPerFrame()
	mbs := make([]Macroblock, perFrame)

	// Coding-decision probabilities by frame type. A scene cut forces
	// intra-heavy coding of the next predicted frame (no usable reference).
	var pSkip, pIntra float64
	switch ft {
	case FrameI:
		pSkip, pIntra = 0, 1
	case FrameP:
		pSkip = 0.35 * (1 - motion) * (1 - activity*0.5)
		pIntra = 0.03 + 0.10*motion
		if sceneCut {
			pIntra = 0.85
			pSkip = 0
		}
	case FrameB:
		pSkip = 0.45 + 0.25*(1-motion)
		pIntra = 0.01 + 0.03*motion
		if sceneCut {
			pIntra = 0.30
			pSkip *= 0.3
		}
	}

	// Accelerator-bypass probability: rare, slightly more common in complex
	// material (large escape-coded coefficients).
	pHeavy := 0.002 + 0.004*activity

	for i := 0; i < perFrame; i++ {
		mb := Macroblock{Frame: frame, Index: i}
		r := g.Float64()
		switch {
		case r < pSkip:
			mb.Type = MBSkipped
			mb.Motion = MotionNone
			mb.CodedBlocks = 0
			mb.Bits = 1 // skip run-length flag
		case r < pSkip+pIntra:
			mb.Type = MBIntra
			mb.Motion = MotionNone
			mb.CodedBlocks = 4 + int(g.Intn(3)) // 4..6: intra always codes luma
			mb.Bits = intraBits(g, activity, mb.CodedBlocks)
		default:
			mb.Type = MBInter
			mb.Motion = drawMotion(g, ft)
			mb.CodedBlocks = interCodedBlocks(g, activity, motion)
			mb.Bits = interBits(g, activity, motion, mb.CodedBlocks)
		}
		if mb.Type != MBSkipped && mb.CodedBlocks > 0 && g.Float64() < pHeavy {
			mb.Heavy = true
		}
		mbs[i] = mb
	}
	return mbs
}

func drawMotion(g *events.LCG, ft FrameType) Motion {
	if ft == FrameP {
		return MotionFwd
	}
	// B frame: roughly 40% bi, 30% fwd, 30% bwd.
	switch g.Intn(10) {
	case 0, 1, 2, 3:
		return MotionBi
	case 4, 5, 6:
		return MotionFwd
	default:
		return MotionBwd
	}
}

func interCodedBlocks(g *events.LCG, activity, motion float64) int {
	// More activity/motion ⇒ bigger residual ⇒ more coded blocks.
	mean := 1 + 4*clamp01(0.3*activity+0.7*motion)
	n := int(mean + (g.Float64()-0.5)*2)
	if n < 0 {
		n = 0
	}
	if n > 6 {
		n = 6
	}
	return n
}

func intraBits(g *events.LCG, activity float64, codedBlocks int) int64 {
	base := 200 + 900*activity // per-MB bits before noise
	noise := 0.7 + 0.6*g.Float64()
	return int64(base * noise * float64(codedBlocks) / 6 * 1.4)
}

func interBits(g *events.LCG, activity, motion float64, codedBlocks int) int64 {
	mv := 12 + 30*motion // motion-vector coding cost
	residual := (40 + 300*activity) * float64(codedBlocks) / 6
	noise := 0.7 + 0.6*g.Float64()
	return int64((mv + residual) * noise)
}

// targetFrameBits returns the CBR-normalized bit budget of one frame,
// following the classic ≈5:3:1 split between I:P:B frames (weights scaled
// so a whole GOP meets the average bitrate exactly, up to rounding).
func targetFrameBits(cfg StreamConfig, ft FrameType, activity float64) int64 {
	nP := int64(cfg.GOPSize/cfg.GOPPeriodP - 1)
	nB := int64(cfg.GOPSize) - 1 - nP
	const wI, wP, wB = 5, 3, 1
	unit := float64(cfg.BitsPerFrame()) * float64(cfg.GOPSize) / float64(wI+wP*nP+wB*nB)
	var w float64
	switch ft {
	case FrameI:
		w = wI
	case FrameP:
		w = wP
	default:
		w = wB
	}
	// Activity sways the instantaneous budget ±15% around the CBR schedule
	// (rate control is never perfectly flat).
	return int64(unit * w * (0.85 + 0.3*activity))
}

// normalizeFrameBits rescales the raw macroblock bits so the frame hits its
// CBR budget, preserving relative per-MB sizes. Every macroblock keeps at
// least 1 bit.
func normalizeFrameBits(cfg StreamConfig, mbs []Macroblock, ft FrameType, activity float64) {
	var raw int64
	for i := range mbs {
		raw += mbs[i].Bits
	}
	if raw == 0 {
		return
	}
	target := targetFrameBits(cfg, ft, activity)
	for i := range mbs {
		b := mbs[i].Bits * target / raw
		if b < 1 {
			b = 1
		}
		mbs[i].Bits = b
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
