package mpeg2

import (
	"fmt"

	"wcm/internal/events"
)

// PE1Costs models the VLD + IQ subtask on PE1 (the paper's PE1 has special
// hardware support for video bitstream access, so the per-bit parsing cost
// is small). Cycles per macroblock:
//
//	d1 = Base + PerBit·Bits + PerBlock·CodedBlocks
type PE1Costs struct {
	Base     int64 // fixed header/bookkeeping cost per macroblock
	PerBit   int64 // VLD cost per compressed bit (hardware-assisted)
	PerBlock int64 // IQ cost per coded 8×8 block
	PerSlice int64 // slice-header parse cost (MPEG-2 slices = macroblock rows)
}

// DefaultPE1Costs returns the calibrated PE1 model.
func DefaultPE1Costs() PE1Costs {
	return PE1Costs{Base: 150, PerBit: 2, PerBlock: 220, PerSlice: 600}
}

// Validate checks cost invariants.
func (c PE1Costs) Validate() error {
	if c.Base < 0 || c.PerBit < 0 || c.PerBlock < 0 || c.PerSlice < 0 {
		return fmt.Errorf("%w: PE1 costs %+v", ErrBadConfig, c)
	}
	return nil
}

// Demand returns the PE1 cycle demand of one macroblock. sliceStart marks
// the first macroblock of a slice (MPEG-2 main profile: one slice per
// macroblock row), which pays the start-code search and slice header.
func (c PE1Costs) Demand(mb Macroblock, sliceStart bool) int64 {
	d := c.Base + c.PerBit*mb.Bits + c.PerBlock*int64(mb.CodedBlocks)
	if sliceStart {
		d += c.PerSlice
	}
	return d
}

// PE2Costs models the IDCT + MC subtask on PE2 (the paper's PE2 has
// hardware IDCT acceleration and a block-based memory access mode). Cycles
// per macroblock:
//
//	skipped: SkipCopy
//	intra:   Base + IntraSetup + PerBlockIDCT·CodedBlocks [+ HeavyExtra]
//	inter:   Base + PerBlockIDCT·CodedBlocks + MC(motion) [+ HeavyExtra]
type PE2Costs struct {
	Base         int64 // per-macroblock dispatch cost
	PerBlockIDCT int64 // accelerated IDCT cost per coded 8×8 block
	IntraSetup   int64 // DC/AC prediction setup for intra macroblocks
	MCFwd        int64 // single-reference motion compensation
	MCBwd        int64 // single-reference motion compensation
	MCBi         int64 // dual-reference MC with averaging (most expensive)
	SkipCopy     int64 // block-mode copy of a skipped macroblock
	HeavyExtra   int64 // software-IDCT fallback for accelerator-bypass MBs
}

// DefaultPE2Costs returns the calibrated PE2 model. The worst case — an
// accelerator-bypass bi-predicted macroblock with all six blocks coded — is
// roughly 2.3× the typical intra macroblock and ≈35× a skipped one: the
// high WCET-to-average ratio that makes single-value WCET characterization
// so pessimistic in the paper's case study.
func DefaultPE2Costs() PE2Costs {
	return PE2Costs{
		Base:         450,
		PerBlockIDCT: 1550,
		IntraSetup:   750,
		MCFwd:        1300,
		MCBwd:        1300,
		MCBi:         3000,
		SkipCopy:     600,
		HeavyExtra:   8000,
	}
}

// Validate checks cost invariants.
func (c PE2Costs) Validate() error {
	if c.Base < 0 || c.PerBlockIDCT < 0 || c.IntraSetup < 0 ||
		c.MCFwd < 0 || c.MCBwd < 0 || c.MCBi < 0 || c.SkipCopy < 0 || c.HeavyExtra < 0 {
		return fmt.Errorf("%w: PE2 costs %+v", ErrBadConfig, c)
	}
	return nil
}

// Demand returns the PE2 cycle demand of one macroblock.
func (c PE2Costs) Demand(mb Macroblock) int64 {
	var d int64
	switch mb.Type {
	case MBSkipped:
		return c.SkipCopy
	case MBIntra:
		d = c.Base + c.IntraSetup + c.PerBlockIDCT*int64(mb.CodedBlocks)
	default:
		d = c.Base + c.PerBlockIDCT*int64(mb.CodedBlocks)
		switch mb.Motion {
		case MotionFwd:
			d += c.MCFwd
		case MotionBwd:
			d += c.MCBwd
		case MotionBi:
			d += c.MCBi
		}
	}
	if mb.Heavy {
		d += c.HeavyExtra
	}
	return d
}

// WCET returns the largest demand any macroblock can have under this model.
func (c PE2Costs) WCET() int64 {
	intra := c.Base + c.IntraSetup + 6*c.PerBlockIDCT
	inter := c.Base + 6*c.PerBlockIDCT + c.MCBi
	if intra > inter {
		return intra + c.HeavyExtra
	}
	return inter + c.HeavyExtra
}

// DemandsPE1 returns the per-macroblock PE1 demand trace of the stream.
// Slice boundaries fall at macroblock-row starts (MP@ML convention).
func (s *Stream) DemandsPE1(costs PE1Costs) (events.DemandTrace, error) {
	if err := costs.Validate(); err != nil {
		return nil, err
	}
	d := make(events.DemandTrace, len(s.MBs))
	for i, mb := range s.MBs {
		sliceStart := mb.Index%s.Config.WidthMB == 0
		d[i] = costs.Demand(mb, sliceStart)
	}
	return d, nil
}

// DemandsPE2 returns the per-macroblock PE2 demand trace of the stream.
func (s *Stream) DemandsPE2(costs PE2Costs) (events.DemandTrace, error) {
	if err := costs.Validate(); err != nil {
		return nil, err
	}
	d := make(events.DemandTrace, len(s.MBs))
	for i, mb := range s.MBs {
		d[i] = costs.Demand(mb)
	}
	return d, nil
}

// Bits returns the per-macroblock compressed sizes of the stream.
func (s *Stream) Bits() []int64 {
	b := make([]int64, len(s.MBs))
	for i, mb := range s.MBs {
		b[i] = mb.Bits
	}
	return b
}

// AudioCosts models an MPEG-1 Layer II audio decoding task: one audio
// frame of 1152 samples per 24 ms at 48 kHz, with a demand that varies
// with the (synthetic) spectral complexity of the frame. Audio decode
// shares PE2 in the shared-processor extension experiment.
type AudioCosts struct {
	Base    int64 // subband synthesis baseline per frame
	PerBand int64 // cost per active subband (0..32)
}

// DefaultAudioCosts returns the calibrated audio model: roughly 2–4% of a
// video frame's PE2 demand per audio frame — typical for MP2 audio next to
// MP@ML video.
func DefaultAudioCosts() AudioCosts {
	return AudioCosts{Base: 180_000, PerBand: 9_000}
}

// AudioFramePeriodNs is the MPEG-1 Layer II frame period at 48 kHz:
// 1152 samples / 48000 Hz = 24 ms.
const AudioFramePeriodNs int64 = 24_000_000

// AudioTrace generates `frames` audio-frame arrivals (strictly periodic at
// 24 ms) and their decode demands, deterministic in seed.
func AudioTrace(frames int, costs AudioCosts, seed uint64) (events.TimedTrace, events.DemandTrace, error) {
	if frames < 1 {
		return nil, nil, fmt.Errorf("%w: audio frames=%d", ErrBadConfig, frames)
	}
	if costs.Base < 0 || costs.PerBand < 0 {
		return nil, nil, fmt.Errorf("%w: audio costs %+v", ErrBadConfig, costs)
	}
	g := events.NewLCG(seed)
	tt := make(events.TimedTrace, frames)
	d := make(events.DemandTrace, frames)
	for i := 0; i < frames; i++ {
		tt[i] = int64(i) * AudioFramePeriodNs
		bands := 8 + g.Intn(25) // 8..32 active subbands
		d[i] = costs.Base + costs.PerBand*bands
	}
	return tt, d, nil
}

// FrameStats summarizes one frame for inspection and tests.
type FrameStats struct {
	Type    FrameType
	Bits    int64
	Intra   int
	Inter   int
	Skipped int
}

// StatsPerFrame aggregates macroblock statistics frame by frame.
func (s *Stream) StatsPerFrame() []FrameStats {
	perFrame := s.Config.MBPerFrame()
	out := make([]FrameStats, s.Config.Frames)
	for f := range out {
		out[f].Type = s.FrameTypes[f]
		for i := f * perFrame; i < (f+1)*perFrame; i++ {
			mb := s.MBs[i]
			out[f].Bits += mb.Bits
			switch mb.Type {
			case MBIntra:
				out[f].Intra++
			case MBInter:
				out[f].Inter++
			default:
				out[f].Skipped++
			}
		}
	}
	return out
}
