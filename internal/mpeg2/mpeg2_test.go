package mpeg2

import (
	"errors"
	"testing"
	"testing/quick"
)

func smallStream(t *testing.T, frames int, clip Clip) *Stream {
	t.Helper()
	s, err := Generate(DefaultStream(frames), clip)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDefaultStreamMatchesPaper(t *testing.T) {
	cfg := DefaultStream(24)
	if cfg.MBPerFrame() != 1620 {
		t.Fatalf("MBs/frame = %d, want 1620", cfg.MBPerFrame())
	}
	if cfg.FramePeriodNs() != 40_000_000 {
		t.Fatalf("frame period = %d, want 40ms", cfg.FramePeriodNs())
	}
	if cfg.BitsPerFrame() != 391_200 {
		t.Fatalf("bits/frame = %d, want 391200", cfg.BitsPerFrame())
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []StreamConfig{
		{WidthMB: 0, HeightMB: 36, FPS: 25, BitRate: 1, GOPSize: 12, GOPPeriodP: 3, Frames: 1},
		{WidthMB: 45, HeightMB: 36, FPS: 0, BitRate: 1, GOPSize: 12, GOPPeriodP: 3, Frames: 1},
		{WidthMB: 45, HeightMB: 36, FPS: 25, BitRate: 0, GOPSize: 12, GOPPeriodP: 3, Frames: 1},
		{WidthMB: 45, HeightMB: 36, FPS: 25, BitRate: 1, GOPSize: 1, GOPPeriodP: 3, Frames: 1},
		{WidthMB: 45, HeightMB: 36, FPS: 25, BitRate: 1, GOPSize: 12, GOPPeriodP: 12, Frames: 1},
		{WidthMB: 45, HeightMB: 36, FPS: 25, BitRate: 1, GOPSize: 12, GOPPeriodP: 3, Frames: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("case %d must fail: %v", i, err)
		}
	}
}

func TestGOPPattern(t *testing.T) {
	cfg := DefaultStream(24)
	// Decode order per GOP (N=12, M=3): I P B B P B B P B B B B? No —
	// positions 0..11: 0=I, 3,6,9=P, rest B.
	want := []FrameType{FrameI, FrameB, FrameB, FrameP, FrameB, FrameB,
		FrameP, FrameB, FrameB, FrameP, FrameB, FrameB}
	for f := 0; f < 24; f++ {
		if got := cfg.FrameTypeAt(f); got != want[f%12] {
			t.Fatalf("frame %d type = %v, want %v", f, got, want[f%12])
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	clip := Library()[0]
	a := smallStream(t, 6, clip)
	b := smallStream(t, 6, clip)
	if len(a.MBs) != len(b.MBs) {
		t.Fatal("length mismatch")
	}
	for i := range a.MBs {
		if a.MBs[i] != b.MBs[i] {
			t.Fatalf("MB %d differs between identical generations", i)
		}
	}
}

func TestGenerateGeometry(t *testing.T) {
	s := smallStream(t, 13, Library()[3])
	if len(s.MBs) != 13*1620 {
		t.Fatalf("MB count = %d", len(s.MBs))
	}
	for i, mb := range s.MBs {
		if mb.Frame != i/1620 || mb.Index != i%1620 {
			t.Fatalf("MB %d has frame/index %d/%d", i, mb.Frame, mb.Index)
		}
		if mb.CodedBlocks < 0 || mb.CodedBlocks > 6 {
			t.Fatalf("MB %d coded blocks %d", i, mb.CodedBlocks)
		}
		if mb.Bits < 1 {
			t.Fatalf("MB %d bits %d", i, mb.Bits)
		}
	}
}

func TestIFramesAllIntra(t *testing.T) {
	s := smallStream(t, 12, Library()[5])
	for i, mb := range s.MBs {
		if s.FrameTypes[mb.Frame] == FrameI && mb.Type != MBIntra {
			t.Fatalf("MB %d in I frame has type %v", i, mb.Type)
		}
		if mb.Type == MBIntra && mb.Motion != MotionNone {
			t.Fatalf("intra MB %d has motion %v", i, mb.Motion)
		}
		if mb.Type == MBSkipped && mb.CodedBlocks != 0 {
			t.Fatalf("skipped MB %d has coded blocks", i)
		}
	}
}

func TestPFramesForwardOnly(t *testing.T) {
	s := smallStream(t, 12, Library()[9])
	for i, mb := range s.MBs {
		if s.FrameTypes[mb.Frame] == FrameP && mb.Type == MBInter && mb.Motion != MotionFwd {
			t.Fatalf("inter MB %d in P frame has motion %v", i, mb.Motion)
		}
	}
}

func TestBitBudgetRatios(t *testing.T) {
	// Over whole GOPs, I frames must be the biggest and B the smallest, and
	// the total must be within 25% of the CBR schedule.
	s := smallStream(t, 24, Library()[4])
	stats := s.StatsPerFrame()
	var iBits, pBits, bBits, total int64
	var iN, pN, bN int64
	for _, fs := range stats {
		total += fs.Bits
		switch fs.Type {
		case FrameI:
			iBits += fs.Bits
			iN++
		case FrameP:
			pBits += fs.Bits
			pN++
		default:
			bBits += fs.Bits
			bN++
		}
	}
	iAvg, pAvg, bAvg := iBits/iN, pBits/pN, bBits/bN
	if !(iAvg > pAvg && pAvg > bAvg) {
		t.Fatalf("frame bit ordering violated: I=%d P=%d B=%d", iAvg, pAvg, bAvg)
	}
	if iAvg < 3*bAvg {
		t.Fatalf("I frames not dominant enough: I=%d B=%d", iAvg, bAvg)
	}
	cbr := s.Config.BitsPerFrame() * int64(s.Config.Frames)
	if total < cbr*3/4 || total > cbr*5/4 {
		t.Fatalf("total bits %d not within 25%% of CBR schedule %d", total, cbr)
	}
}

func TestDemandModels(t *testing.T) {
	s := smallStream(t, 6, Library()[7])
	p1, p2 := DefaultPE1Costs(), DefaultPE2Costs()
	d1, err := s.DemandsPE1(p1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s.DemandsPE2(p2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) != len(s.MBs) || len(d2) != len(s.MBs) {
		t.Fatal("length mismatch")
	}
	wcet := p2.WCET()
	for i, mb := range s.MBs {
		if d1[i] <= 0 || d2[i] <= 0 {
			t.Fatalf("nonpositive demand at %d", i)
		}
		if d2[i] > wcet {
			t.Fatalf("PE2 demand %d exceeds WCET %d at MB %d", d2[i], wcet, i)
		}
		switch mb.Type {
		case MBSkipped:
			if d2[i] != p2.SkipCopy {
				t.Fatalf("skipped MB demand %d", d2[i])
			}
		case MBIntra:
			if d2[i] < p2.Base+p2.IntraSetup {
				t.Fatalf("intra MB demand %d too small", d2[i])
			}
		}
	}
	// Demand ordering: typical intra ≫ typical skip.
	var intraSum, skipSum, intraN, skipN int64
	for i, mb := range s.MBs {
		if mb.Type == MBIntra {
			intraSum += d2[i]
			intraN++
		} else if mb.Type == MBSkipped {
			skipSum += d2[i]
			skipN++
		}
	}
	if intraN == 0 || skipN == 0 {
		t.Fatal("need both intra and skipped MBs in 6 frames")
	}
	if intraSum/intraN < 5*(skipSum/skipN) {
		t.Fatalf("intra/skip demand ratio too small: %d vs %d", intraSum/intraN, skipSum/skipN)
	}
}

func TestCostValidation(t *testing.T) {
	if err := (PE1Costs{Base: -1}).Validate(); !errors.Is(err, ErrBadConfig) {
		t.Fatal("negative PE1 base must fail")
	}
	if err := (PE2Costs{MCBi: -1}).Validate(); !errors.Is(err, ErrBadConfig) {
		t.Fatal("negative PE2 MCBi must fail")
	}
	s := smallStream(t, 2, Library()[0])
	if _, err := s.DemandsPE1(PE1Costs{Base: -1}); err == nil {
		t.Fatal("DemandsPE1 must validate costs")
	}
	if _, err := s.DemandsPE2(PE2Costs{Base: -1}); err == nil {
		t.Fatal("DemandsPE2 must validate costs")
	}
}

func TestClipValidation(t *testing.T) {
	if err := (Clip{Name: "x", BaseActivity: 2}).Validate(); !errors.Is(err, ErrBadClip) {
		t.Fatal("activity > 1 must fail")
	}
	if err := (Clip{Name: "x", SceneCutEvery: -1}).Validate(); !errors.Is(err, ErrBadClip) {
		t.Fatal("negative scene cut must fail")
	}
	if _, err := Generate(DefaultStream(2), Clip{Name: "bad", BaseActivity: -1}); err == nil {
		t.Fatal("Generate must validate clip")
	}
}

func TestLibraryHas14DistinctClips(t *testing.T) {
	lib := Library()
	if len(lib) != 14 {
		t.Fatalf("library size = %d, want 14 (as in the paper)", len(lib))
	}
	names := map[string]bool{}
	seeds := map[uint64]bool{}
	for _, c := range lib {
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		if names[c.Name] || seeds[c.Seed] {
			t.Fatalf("duplicate clip %q / seed %d", c.Name, c.Seed)
		}
		names[c.Name] = true
		seeds[c.Seed] = true
	}
}

func TestClipsDiffer(t *testing.T) {
	a := smallStream(t, 3, Library()[0])  // newsdesk: static
	b := smallStream(t, 3, Library()[11]) // actionfilm: busy
	p2 := DefaultPE2Costs()
	da, _ := a.DemandsPE2(p2)
	db, _ := b.DemandsPE2(p2)
	// The busy clip must have clearly higher average PE2 demand.
	if db.Total() < da.Total()*11/10 {
		t.Fatalf("actionfilm (%d) not clearly heavier than newsdesk (%d)", db.Total(), da.Total())
	}
}

func TestQuickGenerateInvariants(t *testing.T) {
	f := func(seedRaw uint16, actRaw, motRaw uint8) bool {
		clip := Clip{
			Name:          "q",
			Seed:          uint64(seedRaw) + 1,
			BaseActivity:  float64(actRaw%100) / 100,
			MotionLevel:   float64(motRaw%100) / 100,
			SceneCutEvery: int(seedRaw % 50),
		}
		cfg := StreamConfig{WidthMB: 6, HeightMB: 4, FPS: 25, BitRate: 2_000_000,
			GOPSize: 6, GOPPeriodP: 3, Frames: 12}
		s, err := Generate(cfg, clip)
		if err != nil {
			return false
		}
		if len(s.MBs) != 12*24 {
			return false
		}
		for _, mb := range s.MBs {
			if mb.Bits < 1 || mb.CodedBlocks < 0 || mb.CodedBlocks > 6 {
				return false
			}
			if s.FrameTypes[mb.Frame] == FrameI && mb.Type != MBIntra {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
