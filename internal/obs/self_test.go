package obs

import (
	"sync"
	"testing"
	"time"

	"wcm/internal/stream"
)

func TestSelfStreamCharacterizes(t *testing.T) {
	s, err := NewSelf(stream.Config{Window: 64, MaxK: 16})
	if err != nil {
		t.Fatal(err)
	}
	// A steady 50µs handler with one 400µs outlier.
	for i := 0; i < 20; i++ {
		s.Observe(50 * time.Microsecond)
	}
	s.Observe(400 * time.Microsecond)
	if s.Observed() != 21 {
		t.Fatalf("observed = %d", s.Observed())
	}

	snap, err := s.Stream().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	up := snap.Workload.Upper.Values()
	lo := snap.Workload.Lower.Values()
	if up[1] != 400 { // worst single request, in µs
		t.Fatalf("γᵘ(1) = %d µs, want 400", up[1])
	}
	if lo[1] != 50 {
		t.Fatalf("γˡ(1) = %d µs, want 50", lo[1])
	}
	// Any 2 consecutive requests: at most outlier+steady, at least 2 steady.
	if up[2] != 450 || lo[2] != 100 {
		t.Fatalf("γ(2) = (%d, %d), want (450, 100)", up[2], lo[2])
	}

	// The eq. (9) figure must be computable and below the WCET-based one.
	cmp, err := snap.MinFrequency(1)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Gamma.Hz <= 0 || cmp.Gamma.Hz > cmp.WCET.Hz {
		t.Fatalf("min frequency %+v", cmp)
	}
}

func TestSelfStreamDefaultsAndClamping(t *testing.T) {
	s, err := NewSelf(stream.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stream().Stats(); st.Window != DefaultSelfWindow || st.MaxK != DefaultSelfMaxK {
		t.Fatalf("defaults: window=%d maxK=%d", st.Window, st.MaxK)
	}
	// Sub-microsecond costs still register one unit of demand.
	s.Observe(30 * time.Nanosecond)
	snap, err := s.Stream().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Workload.Upper.Values()[1]; got != 1 {
		t.Fatalf("sub-µs cost recorded as %d µs, want 1", got)
	}

	// Concurrent observers: every observation lands (timestamp clamping
	// absorbs completion reordering). Run under -race in CI.
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Observe(5 * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := s.Stream().Stats().Total; got != workers*per+1 {
		t.Fatalf("total = %d, want %d", got, workers*per+1)
	}
}
