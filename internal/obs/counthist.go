package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// CountNumBuckets is the number of finite buckets of a CountHist. Bucket i
// counts observations with value ≤ 2^i, so the finite range spans 1 ..
// 2^15 = 32768; anything larger lands in the +Inf bucket. The async ingest
// pipeline records coalesce sizes (batches per drain) and ring occupancies
// here — both bounded by configured ring capacities well inside the range.
const CountNumBuckets = 16

// CountHist is Histogram's sibling for dimensionless counts instead of
// durations: lock-free, fixed power-of-two buckets, three atomic adds per
// observation, zero value ready to use. The same mid-observation snapshot
// caveat as Histogram applies.
type CountHist struct {
	counts [CountNumBuckets + 1]atomic.Uint64 // [CountNumBuckets] is +Inf
	count  atomic.Uint64
	sum    atomic.Int64
}

// CountBucketIndex returns the index of the finite bucket covering n, or
// CountNumBuckets (the +Inf bucket) when n exceeds the finite range.
// Bucket i covers (2^(i-1), 2^i], with bucket 0 absorbing everything ≤ 1.
func CountBucketIndex(n int64) int {
	if n <= 1 {
		return 0
	}
	i := bits.Len64(uint64(n - 1)) // smallest i with 2^i ≥ n
	if i > CountNumBuckets-1 {
		return CountNumBuckets
	}
	return i
}

// CountUpperBound returns bucket i's inclusive upper bound (2^i), or +Inf
// for the overflow bucket.
func CountUpperBound(i int) float64 {
	if i >= CountNumBuckets {
		return math.Inf(1)
	}
	return float64(int64(1) << i)
}

// Observe records one count. Negative values (impossible sizes) count as 0.
func (h *CountHist) Observe(n int64) {
	if n < 0 {
		n = 0
	}
	h.counts[CountBucketIndex(n)].Add(1)
	h.count.Add(1)
	h.sum.Add(n)
}

// Count returns the number of observations recorded so far.
func (h *CountHist) Count() uint64 { return h.count.Load() }

// CountHistSnapshot is a point-in-time copy of a CountHist's cells.
type CountHistSnapshot struct {
	Counts [CountNumBuckets + 1]uint64 // per-bucket (non-cumulative) counts
	Count  uint64                      // total observations
	Sum    int64                       // summed observed values
}

// Snapshot copies the histogram's cells.
func (h *CountHist) Snapshot() CountHistSnapshot {
	var s CountHistSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// CumulativeCount returns the number of observations in buckets 0..i — the
// Prometheus bucket value for le = CountUpperBound(i).
func (s CountHistSnapshot) CumulativeCount(i int) uint64 {
	var c uint64
	for j := 0; j <= i && j < len(s.Counts); j++ {
		c += s.Counts[j]
	}
	return c
}

// Mean returns the average observed count, or 0 when empty.
func (s CountHistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
