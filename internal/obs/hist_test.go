package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 10, 10}, {1<<10 + 1, 11},
		{1 << 35, 35},           // top finite bucket, inclusive
		{1<<35 + 1, NumBuckets}, // first +Inf value
		{math.MaxInt64, NumBuckets},
	}
	for _, c := range cases {
		if got := BucketIndex(c.ns); got != c.want {
			t.Fatalf("BucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
		// The defining invariant: value ≤ upper bound of its bucket, and
		// strictly above the previous bucket's bound.
		if i := BucketIndex(c.ns); i < NumBuckets {
			ub := int64(1) << i
			if c.ns > ub {
				t.Fatalf("ns %d above its bucket bound 2^%d", c.ns, i)
			}
			if i > 0 && c.ns <= ub/2 {
				t.Fatalf("ns %d should be in a lower bucket than %d", c.ns, i)
			}
		}
	}
	if UpperBoundSeconds(NumBuckets) != math.Inf(1) {
		t.Fatal("overflow bucket bound is not +Inf")
	}
	if got := UpperBoundSeconds(30); got != float64(1<<30)/1e9 {
		t.Fatalf("UpperBoundSeconds(30) = %v", got)
	}
}

func TestHistogramCountsAndCumulative(t *testing.T) {
	var h Histogram
	for _, ns := range []int64{1, 1, 3, 1000, 1 << 40, -5} {
		h.ObserveNs(ns)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Counts[0] != 3 { // 1, 1 and the clamped -5
		t.Fatalf("bucket 0 = %d", s.Counts[0])
	}
	if s.Counts[NumBuckets] != 1 {
		t.Fatalf("+Inf bucket = %d", s.Counts[NumBuckets])
	}
	if got := s.CumulativeCount(NumBuckets); got != 6 {
		t.Fatalf("cumulative over all buckets = %d", got)
	}
	if s.CumulativeCount(0) != 3 || s.CumulativeCount(1) != 3 || s.CumulativeCount(2) != 4 {
		t.Fatalf("cumulative prefix wrong: %d %d %d",
			s.CumulativeCount(0), s.CumulativeCount(1), s.CumulativeCount(2))
	}
	if s.SumNs != 1+1+3+1000+(1<<40) {
		t.Fatalf("sum = %d", s.SumNs)
	}
	// Cumulative counts must be non-decreasing in the bucket index — the
	// property the Prometheus exposition relies on.
	prev := uint64(0)
	for i := 0; i <= NumBuckets; i++ {
		c := s.CumulativeCount(i)
		if c < prev {
			t.Fatalf("cumulative decreased at %d: %d < %d", i, c, prev)
		}
		prev = c
	}
}

func TestQuantileBounds(t *testing.T) {
	var empty HistSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty p50 = %v", q)
	}

	// 100 observations at ~1µs, 5 at ~1ms: p50 must sit near 1µs, p99
	// near 1ms. The log buckets guarantee only factor-2 accuracy, so the
	// assertions are bracketing, not exact.
	var h Histogram
	for i := 0; i < 100; i++ {
		h.ObserveNs(1000)
	}
	for i := 0; i < 5; i++ {
		h.ObserveNs(1_000_000)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.50); p50 < 0.4e-6 || p50 > 2.1e-6 {
		t.Fatalf("p50 = %v s, want ≈ 1µs", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 0.4e-3 || p99 > 2.1e-3 {
		t.Fatalf("p99 = %v s, want ≈ 1ms", p99)
	}
	if p100 := s.Quantile(1.0); p100 < 0.4e-3 || p100 > 2.1e-3 {
		t.Fatalf("p100 = %v s", p100)
	}

	// All mass in +Inf reports the top finite bound rather than Inf.
	var inf Histogram
	inf.ObserveNs(1 << 60)
	if q := inf.Snapshot().Quantile(0.5); math.IsInf(q, 1) || q <= 0 {
		t.Fatalf("overflow-only p50 = %v", q)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines and
// checks the totals balance — run under -race in CI.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", s.Count, workers*perWorker)
	}
	if got := s.CumulativeCount(NumBuckets); got != s.Count {
		t.Fatalf("bucket sum %d != count %d", got, s.Count)
	}
}

func TestObserveAllocs(t *testing.T) {
	var h Histogram
	avg := testing.AllocsPerRun(1000, func() { h.ObserveNs(12345) })
	if avg != 0 {
		t.Fatalf("Observe allocates %.2f/op", avg)
	}
}
