package obs

import (
	"sync/atomic"
	"time"

	"wcm/internal/stream"
)

// Defaults for NewSelf's zero-valued config fields: a few thousand requests
// of history with a curve domain wide enough for eq. (9) to see bursts.
const (
	DefaultSelfWindow = 4096
	DefaultSelfMaxK   = 128
)

// SelfStream is the service characterizing itself with its own model: each
// completed request's measured handler cost is one demand sample (in
// microseconds of handler time) pushed into an internal/stream CurveStream,
// so γᵘ(k)/γˡ(k) bound the work of any k consecutive requests and the
// eq. (9) minimum frequency is the minimum service rate — in µs of handler
// work per second — that keeps a FIFO of b requests from overflowing.
// Dividing that rate by 1e6 gives it in "cores".
//
// Timestamps are monotonic nanoseconds since the SelfStream was created;
// stream.Observe clamps the inevitable reordering of concurrent request
// completions, so every observation is accepted.
type SelfStream struct {
	start    time.Time
	st       *stream.Stream
	observed atomic.Uint64 // requests pushed
}

// NewSelf builds the self-characterization stream. Zero-valued cfg fields
// take the Self defaults above rather than stream's (larger) ones.
func NewSelf(cfg stream.Config) (*SelfStream, error) {
	if cfg.Window == 0 {
		cfg.Window = DefaultSelfWindow
	}
	if cfg.MaxK == 0 {
		cfg.MaxK = DefaultSelfMaxK
	}
	st, err := stream.New(cfg)
	if err != nil {
		return nil, err
	}
	return &SelfStream{start: time.Now(), st: st}, nil
}

// Observe pushes one completed request: cost is the measured handler
// latency, recorded as ⌈µs⌉ so even sub-microsecond cache hits contribute
// nonzero demand (a zero-demand request would make γˡ degenerate without
// representing any real work). Safe for concurrent use; errors cannot
// occur (timestamps are clamped, demand is non-negative) and are ignored.
func (s *SelfStream) Observe(cost time.Duration) {
	us := (cost.Nanoseconds() + 999) / 1000
	if us < 1 {
		us = 1
	}
	if _, err := s.st.Observe(time.Since(s.start).Nanoseconds(), us); err == nil {
		s.observed.Add(1)
	}
}

// Observed returns the number of requests pushed so far.
func (s *SelfStream) Observed() uint64 { return s.observed.Load() }

// Stream exposes the underlying CurveStream for snapshots and queries.
func (s *SelfStream) Stream() *stream.Stream { return s.st }
