package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of finite histogram buckets. Bucket i counts
// observations with duration ≤ 2^i nanoseconds, so the finite range spans
// 1 ns .. 2^35 ns ≈ 34.4 s; anything slower lands in the +Inf bucket.
// Powers of two keep Observe branch-free (one bits.Len64) and give ~2×
// resolution everywhere on the latency spectrum — tight at the µs scale
// the cached query path lives on, still meaningful at whole seconds.
const NumBuckets = 36

// Histogram is a lock-free latency histogram: fixed power-of-two buckets
// updated with three atomic adds per observation, no locks, no allocation.
// The zero value is ready to use. Readers take a Snapshot; because the
// three cells are updated independently, a snapshot taken mid-Observe may
// be off by one in-flight observation — exact equality holds once writers
// are quiescent, which is what the race tests assert.
type Histogram struct {
	counts [NumBuckets + 1]atomic.Uint64 // [NumBuckets] is the +Inf bucket
	count  atomic.Uint64
	sumNs  atomic.Int64
}

// BucketIndex returns the index of the finite bucket covering ns, or
// NumBuckets (the +Inf bucket) when ns exceeds the finite range. Bucket i
// covers (2^(i-1), 2^i] ns, with bucket 0 absorbing everything ≤ 1 ns.
func BucketIndex(ns int64) int {
	if ns <= 1 {
		return 0
	}
	i := bits.Len64(uint64(ns - 1)) // smallest i with 2^i ≥ ns
	if i > NumBuckets-1 {
		return NumBuckets
	}
	return i
}

// UpperBoundSeconds returns bucket i's inclusive upper bound in seconds
// (2^i ns), or +Inf for the overflow bucket.
func UpperBoundSeconds(i int) float64 {
	if i >= NumBuckets {
		return math.Inf(1)
	}
	return float64(int64(1)<<i) / 1e9
}

// Observe records one duration. Negative durations (clock steps) count as 0.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNs(d.Nanoseconds()) }

// ObserveNs records one duration given in nanoseconds.
func (h *Histogram) ObserveNs(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[BucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
}

// Count returns the number of observations recorded so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// HistSnapshot is a point-in-time copy of a Histogram's cells.
type HistSnapshot struct {
	Counts [NumBuckets + 1]uint64 // per-bucket (non-cumulative) counts
	Count  uint64                 // total observations
	SumNs  int64                  // summed durations, nanoseconds
}

// Snapshot copies the histogram's cells.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNs = h.sumNs.Load()
	return s
}

// CumulativeCount returns the number of observations in buckets 0..i —
// the Prometheus bucket value for le = UpperBoundSeconds(i).
func (s HistSnapshot) CumulativeCount(i int) uint64 {
	var c uint64
	for j := 0; j <= i && j < len(s.Counts); j++ {
		c += s.Counts[j]
	}
	return c
}

// Quantile estimates the q-quantile (0 < q ≤ 1) in seconds by locating the
// bucket holding the q·Count-th observation and interpolating linearly
// inside it. With 2× bucket ratios the estimate is within a factor ~1.5 of
// the true value — plenty for p50/p95/p99 dashboards. Returns 0 when the
// histogram is empty; observations in the +Inf bucket report the top
// finite bound.
func (s HistSnapshot) Quantile(q float64) float64 {
	total := uint64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum+1e-9 < rank {
			continue
		}
		if i >= NumBuckets { // +Inf bucket: no finite upper edge
			return UpperBoundSeconds(NumBuckets - 1)
		}
		lo := 0.0
		if i > 0 {
			lo = UpperBoundSeconds(i - 1)
		}
		hi := UpperBoundSeconds(i)
		frac := (rank - prev) / float64(c)
		return lo + frac*(hi-lo)
	}
	return UpperBoundSeconds(NumBuckets - 1) // unreachable: cum == total ≥ rank
}

// SumSeconds returns the summed observed duration in seconds.
func (s HistSnapshot) SumSeconds() float64 { return float64(s.SumNs) / 1e9 }
