// Package trace is a zero-dependency, allocation-disciplined request
// tracer. Each request records a span tree into a fixed-size slab owned by
// the trace (no per-span allocation, no locks on the hot path); at request
// end the tracer applies tail-based retention — anomalous traces (slow,
// errored, shed, degraded, panicked) are always kept, ordinary traces are
// counter-sampled 1-in-N — and kept traces land in a sharded lock-free
// ring store bounded by a hard byte cap (oldest evicted).
//
// The package deliberately does not import the rest of internal/obs (obs
// embeds a *trace.Active in its per-request scope, so the dependency runs
// the other way), and imports nothing beyond the standard library.
package trace

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// Defaults. SampleN is the 1-in-N keep rate for ordinary (non-anomalous)
// traces; StoreBytes bounds retained trace memory; MaxSpans bounds the
// per-trace slab (spans past the cap are counted, not recorded).
const (
	DefaultSampleN    = 64
	DefaultStoreBytes = 4 << 20
	DefaultMaxSpans   = 48

	// MaxAttrs is the per-span attribute capacity. Attributes past it are
	// silently ignored — spans carry a handful of integers, not payloads.
	MaxAttrs = 4
)

// KeepReason says why a finished trace was retained. Reasons are a bitmask:
// a slow request that also panicked carries both.
type KeepReason uint32

const (
	KeepSampled  KeepReason = 1 << iota // won the 1-in-N counter sample
	KeepSlow                            // exceeded the slow-request threshold
	KeepError                           // status >= 400
	KeepShed                            // 429/503 overload answer
	KeepDegraded                        // served a degraded fallback
	KeepPanic                           // handler or worker panicked
)

// String renders the bitmask as a comma-joined list ("slow,error").
func (k KeepReason) String() string {
	if k == 0 {
		return "none"
	}
	names := [...]struct {
		bit  KeepReason
		name string
	}{
		{KeepSampled, "sampled"}, {KeepSlow, "slow"}, {KeepError, "error"},
		{KeepShed, "shed"}, {KeepDegraded, "degraded"}, {KeepPanic, "panic"},
	}
	var b []byte
	for _, n := range names {
		if k&n.bit != 0 {
			if len(b) > 0 {
				b = append(b, ',')
			}
			b = append(b, n.name...)
		}
	}
	return string(b)
}

// Attr is one span attribute: a small integer or a short string.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsStr bool
}

// Span is one timed operation within a trace. Times are nanosecond offsets
// from the trace start so a span tree renders without clock bookkeeping.
// IDs are 1-based slab indices; Parent 0 means "child of nothing" and only
// the root carries it.
type Span struct {
	Name    string
	ID      int32
	Parent  int32
	StartNs int64
	DurNs   int64 // -1 while the span is open
	NAttr   int32
	Attrs   [MaxAttrs]Attr
}

// Active is a trace being recorded (and, once kept, the stored immutable
// result). The span slab is fixed at construction; concurrent goroutines
// claim slots with a CAS on n, then write their slot exclusively, so
// recording is lock-free and the handler/worker pair never contend.
type Active struct {
	spans   []Span // len == cap == maxSpans, slots [0,n) in use
	n       atomic.Int32
	dropped atomic.Int32 // spans refused because the slab was full
	marks   atomic.Uint32

	start    time.Time
	reqID    string
	endpoint string
	status   int
	durNs    int64
	keep     KeepReason
	szBytes  int64 // set at store insert

	hi, lo      uint64 // W3C trace-id halves
	spanID      uint64 // our span-id, echoed in the response traceparent
	remoteSpan  uint64 // parent span-id from an accepted incoming traceparent
	remote      bool   // trace-id was accepted from the caller
	remoteFlags byte
}

// SpanRef is a handle to one span of one trace. The zero value (and any
// ref minted after the slab filled) is inert: End and attribute setters
// no-op, so call sites never branch on "is tracing on".
type SpanRef struct {
	t   *Active
	idx int32
}

func (s SpanRef) valid() bool { return s.t != nil && s.idx >= 0 }

// ID returns the span's 1-based ID, or 0 for an inert ref.
func (s SpanRef) ID() int32 {
	if !s.valid() {
		return 0
	}
	return s.idx + 1
}

// Root returns a ref to the request's root span.
func (t *Active) Root() SpanRef {
	if t == nil {
		return SpanRef{}
	}
	return SpanRef{t, 0}
}

// alloc claims the next free span slot, or reports the slab full.
func (t *Active) alloc() (int32, bool) {
	for {
		n := t.n.Load()
		if int(n) >= len(t.spans) {
			t.dropped.Add(1)
			return 0, false
		}
		if t.n.CompareAndSwap(n, n+1) {
			return n, true
		}
	}
}

// StartAt opens a span under parent beginning at the given instant. The
// caller must EndAt it (or abandon it; open spans render with duration -1).
func (t *Active) StartAt(name string, parent SpanRef, at time.Time) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	idx, ok := t.alloc()
	if !ok {
		return SpanRef{t, -1}
	}
	t.spans[idx] = Span{
		Name:    name,
		ID:      idx + 1,
		Parent:  parent.ID(),
		StartNs: at.Sub(t.start).Nanoseconds(),
		DurNs:   -1,
	}
	return SpanRef{t, idx}
}

// RecordAt records a closed span in one call — the common shape when the
// caller already holds both timestamps.
func (t *Active) RecordAt(name string, parent SpanRef, start, end time.Time) SpanRef {
	s := t.StartAt(name, parent, start)
	s.EndAt(end)
	return s
}

// EndAt closes the span at the given instant.
func (s SpanRef) EndAt(at time.Time) {
	if !s.valid() {
		return
	}
	sp := &s.t.spans[s.idx]
	sp.DurNs = at.Sub(s.t.start).Nanoseconds() - sp.StartNs
}

// Int attaches an integer attribute; ignored past MaxAttrs.
func (s SpanRef) Int(key string, v int64) SpanRef {
	if s.valid() {
		if sp := &s.t.spans[s.idx]; sp.NAttr < MaxAttrs {
			sp.Attrs[sp.NAttr] = Attr{Key: key, Int: v}
			sp.NAttr++
		}
	}
	return s
}

// Str attaches a string attribute; ignored past MaxAttrs.
func (s SpanRef) Str(key, v string) SpanRef {
	if s.valid() {
		if sp := &s.t.spans[s.idx]; sp.NAttr < MaxAttrs {
			sp.Attrs[sp.NAttr] = Attr{Key: key, Str: v, IsStr: true}
			sp.NAttr++
		}
	}
	return s
}

// Mark records an anomaly (panic, degraded fallback) that forces retention
// at Finish. Safe on a nil trace and from any goroutine.
func (t *Active) Mark(r KeepReason) {
	if t == nil {
		return
	}
	for {
		old := t.marks.Load()
		if old&uint32(r) == uint32(r) || t.marks.CompareAndSwap(old, old|uint32(r)) {
			return
		}
	}
}

// Read-side accessors. Valid on a stored (finished) trace; Spans of a
// still-active trace returns the slots recorded so far.

func (t *Active) ReqID() string           { return t.reqID }
func (t *Active) Endpoint() string        { return t.endpoint }
func (t *Active) Status() int             { return t.status }
func (t *Active) Keep() KeepReason        { return t.keep }
func (t *Active) Start() time.Time        { return t.start }
func (t *Active) Duration() time.Duration { return time.Duration(t.durNs) }
func (t *Active) Remote() bool            { return t.remote }
func (t *Active) DroppedSpans() int       { return int(t.dropped.Load()) }
func (t *Active) SpanCount() int          { return int(t.n.Load()) }
func (t *Active) Spans() []Span           { return t.spans[:t.n.Load()] }

// TraceIDHex returns the 32-hex W3C trace-id.
func (t *Active) TraceIDHex() string {
	var b [32]byte
	putHex(b[:16], t.hi)
	putHex(b[16:], t.lo)
	return string(b[:])
}

// Traceparent renders the response traceparent header: our span-id under
// the trace-id (accepted from the caller or freshly minted), sampled flag
// set.
func (t *Active) Traceparent() string {
	return FormatTraceparent(t.hi, t.lo, t.spanID)
}

// size estimates the trace's retained footprint: the fixed slab plus the
// strings it references. Span names and attr keys are static literals
// shared across traces, so only per-request strings are charged.
func (t *Active) size() int64 {
	sz := int64(unsafe.Sizeof(*t)) + int64(cap(t.spans))*int64(unsafe.Sizeof(Span{}))
	sz += int64(len(t.reqID) + len(t.endpoint))
	for i := range t.Spans() {
		sp := &t.spans[i]
		for j := int32(0); j < sp.NAttr; j++ {
			if sp.Attrs[j].IsStr {
				sz += int64(len(sp.Attrs[j].Str))
			}
		}
	}
	return sz
}

// reset clears per-request state so the trace can be pooled.
func (t *Active) reset() {
	for i := range t.Spans() {
		t.spans[i] = Span{}
	}
	t.n.Store(0)
	t.dropped.Store(0)
	t.marks.Store(0)
	t.start = time.Time{}
	t.reqID, t.endpoint = "", ""
	t.status, t.durNs, t.keep, t.szBytes = 0, 0, 0, 0
	t.hi, t.lo, t.spanID, t.remoteSpan = 0, 0, 0, 0
	t.remote, t.remoteFlags = false, 0
}

// Config parameterizes a Tracer. Zero fields take the package defaults.
type Config struct {
	// SampleN keeps 1 in SampleN ordinary traces (anomalous traces are
	// always kept). 1 keeps everything.
	SampleN int
	// StoreBytes is the hard cap on retained trace memory.
	StoreBytes int64
	// MaxSpans bounds each trace's span slab.
	MaxSpans int
}

// Tracer owns the sampling decision, the trace pool, and the bounded store.
type Tracer struct {
	sampleN  uint64
	maxSpans int
	pool     sync.Pool
	store    *store

	idHi  uint64        // random per-process trace-id high half
	idSeq atomic.Uint64 // low-half / span-id counter

	seq       atomic.Uint64 // ordinary-trace counter driving 1-in-N
	kept      atomic.Uint64
	dropped   atomic.Uint64
	sampled   atomic.Uint64
	truncated atomic.Uint64
}

// New builds a Tracer. SampleN <= 0 and other zero fields default.
func New(cfg Config) *Tracer {
	if cfg.SampleN <= 0 {
		cfg.SampleN = DefaultSampleN
	}
	if cfg.StoreBytes <= 0 {
		cfg.StoreBytes = DefaultStoreBytes
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = DefaultMaxSpans
	}
	tr := &Tracer{
		sampleN:  uint64(cfg.SampleN),
		maxSpans: cfg.MaxSpans,
		idHi:     randomUint64(),
	}
	tr.store = newStore(cfg.StoreBytes, estTraceBytes(cfg.MaxSpans))
	tr.pool.New = func() any {
		return &Active{spans: make([]Span, cfg.MaxSpans)}
	}
	return tr
}

func randomUint64() uint64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano())
	}
	return binary.LittleEndian.Uint64(b[:])
}

// estTraceBytes is the sizing estimate used to derive store slot counts
// from the byte cap: slab plus fixed header plus a generous string budget.
func estTraceBytes(maxSpans int) int64 {
	return int64(unsafe.Sizeof(Active{})) +
		int64(maxSpans)*int64(unsafe.Sizeof(Span{})) + 256
}

// StartRequest begins a trace for a request. traceparent, when well formed,
// donates the trace-id and remote parent; otherwise fresh IDs are minted.
// The returned trace is pooled — the caller must hand it to Finish exactly
// once.
func (tr *Tracer) StartRequest(endpoint, reqID, traceparent string, at time.Time) *Active {
	t := tr.pool.Get().(*Active)
	t.start = at
	t.reqID = reqID
	t.endpoint = endpoint
	if hi, lo, parent, flags, ok := ParseTraceparent(traceparent); ok {
		t.hi, t.lo, t.remoteSpan, t.remoteFlags, t.remote = hi, lo, parent, flags, true
	} else {
		t.hi = tr.idHi
		t.lo = tr.idSeq.Add(1)
	}
	t.spanID = tr.idHi ^ tr.idSeq.Add(1)
	if t.spanID == 0 {
		t.spanID = 1 // W3C forbids the all-zero parent-id
	}
	t.spans[0] = Span{Name: "request", ID: 1, DurNs: -1}
	t.n.Store(1)
	return t
}

// Finish closes the trace and applies tail-based retention: marks plus the
// slow/error/shed status classification force a keep; otherwise the
// ordinary-trace counter keeps 1-in-SampleN. Kept traces become immutable
// and enter the store (true is returned); dropped ones are pooled for
// reuse.
func (tr *Tracer) Finish(t *Active, status int, d time.Duration, slow bool) bool {
	if t == nil {
		return false
	}
	t.status = status
	t.durNs = d.Nanoseconds()
	t.spans[0].DurNs = t.durNs
	tr.truncated.Add(uint64(t.dropped.Load()))

	keep := KeepReason(t.marks.Load())
	if slow {
		keep |= KeepSlow
	}
	if status == 429 || status == 503 {
		keep |= KeepShed
	}
	if status >= 400 {
		keep |= KeepError
	}
	if keep == 0 {
		if tr.seq.Add(1)%tr.sampleN == 0 {
			keep = KeepSampled
			tr.sampled.Add(1)
		} else {
			tr.dropped.Add(1)
			t.reset()
			tr.pool.Put(t)
			return false
		}
	}
	t.keep = keep
	t.szBytes = t.size()
	tr.kept.Add(1)
	tr.store.insert(t)
	return true
}

// Counters and store accounting for the wcmd_trace_* metric family.

func (tr *Tracer) Kept() uint64           { return tr.kept.Load() }
func (tr *Tracer) Dropped() uint64        { return tr.dropped.Load() }
func (tr *Tracer) Sampled() uint64        { return tr.sampled.Load() }
func (tr *Tracer) TruncatedSpans() uint64 { return tr.truncated.Load() }
func (tr *Tracer) Evicted() uint64        { return tr.store.evicted.Load() }
func (tr *Tracer) StoreBytes() int64      { return tr.store.bytes.Load() }
func (tr *Tracer) StoreLimit() int64      { return tr.store.limit }

// Traces snapshots the stored traces, newest first.
func (tr *Tracer) Traces() []*Active { return tr.store.snapshot() }

// Lookup returns the newest stored trace whose request ID matches, or nil.
func (tr *Tracer) Lookup(reqID string) *Active { return tr.store.lookup(reqID) }
