package trace

// W3C Trace Context "traceparent" handling: version-00 wire format
// "vv-tttttttttttttttttttttttttttttttt-pppppppppppppppp-ff" (2-hex
// version, 32-hex trace-id, 16-hex parent-id, 2-hex flags). Parsing is
// forgiving per spec — unknown versions are accepted as long as the
// version-00 prefix shape holds, version ff and all-zero IDs are invalid —
// and a malformed header is simply ignored (the caller mints fresh IDs).

const traceparentLen = 55 // 2 + 1 + 32 + 1 + 16 + 1 + 2

const hexdig = "0123456789abcdef"

// ParseTraceparent extracts the trace-id halves, parent span-id, and flags
// from a traceparent header. ok is false for anything malformed.
func ParseTraceparent(s string) (hi, lo, parent uint64, flags byte, ok bool) {
	if len(s) < traceparentLen {
		return 0, 0, 0, 0, false
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return 0, 0, 0, 0, false
	}
	ver, ok1 := parseHexByte(s[0:2])
	if !ok1 || ver == 0xff {
		return 0, 0, 0, 0, false
	}
	// Version 00 is exactly 55 chars; future versions may append
	// dash-separated fields but must keep the prefix shape.
	if len(s) > traceparentLen && (ver == 0 || s[traceparentLen] != '-') {
		return 0, 0, 0, 0, false
	}
	hi, ok1 = parseHex64(s[3:19])
	lo, ok2 := parseHex64(s[19:35])
	parent, ok3 := parseHex64(s[36:52])
	fl, ok4 := parseHexByte(s[53:55])
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return 0, 0, 0, 0, false
	}
	if hi == 0 && lo == 0 || parent == 0 {
		return 0, 0, 0, 0, false
	}
	return hi, lo, parent, fl, true
}

// FormatTraceparent renders a version-00 traceparent with the sampled flag
// set. One string allocation.
func FormatTraceparent(hi, lo, span uint64) string {
	var b [traceparentLen]byte
	b[0], b[1], b[2] = '0', '0', '-'
	putHex(b[3:19], hi)
	putHex(b[19:35], lo)
	b[35] = '-'
	putHex(b[36:52], span)
	b[52] = '-'
	b[53], b[54] = '0', '1'
	return string(b[:])
}

// putHex writes v into dst as 16 lowercase hex digits.
func putHex(dst []byte, v uint64) {
	for i := 0; i < 16; i++ {
		dst[i] = hexdig[(v>>(60-4*i))&0xf]
	}
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	// Uppercase hex is invalid in traceparent.
	return 0, false
}

func parseHexByte(s string) (byte, bool) {
	h, ok1 := hexVal(s[0])
	l, ok2 := hexVal(s[1])
	return h<<4 | l, ok1 && ok2
}

func parseHex64(s string) (uint64, bool) {
	var v uint64
	for i := 0; i < 16; i++ {
		d, ok := hexVal(s[i])
		if !ok {
			return 0, false
		}
		v = v<<4 | uint64(d)
	}
	return v, true
}
