package trace

import "sync/atomic"

// store retains kept traces in sharded lock-free rings. Each shard is a
// power-of-two slot array with a monotone cursor: insert is one atomic add
// plus one pointer swap, eviction is implicit (the swapped-out oldest trace
// is released to the GC — never back to the pool, since a concurrent
// reader may still hold the pointer). The byte cap is hard by
// construction: slot count = limit / estimated-max-trace-size, so retained
// bytes can never exceed the limit even with every slot full, and the
// bytes counter tracks the actual footprint for the store-bytes gauge.
type store struct {
	shards  []storeShard
	mask    uint64
	limit   int64
	bytes   atomic.Int64
	evicted atomic.Uint64
}

type storeShard struct {
	cursor atomic.Uint64
	slots  []atomic.Pointer[Active]
	mask   uint64
	_      [40]byte // keep neighboring shards' cursors off one cache line
}

// newStore sizes the shard rings from the byte cap. At least one slot per
// shard survives even absurdly small caps so the store always holds the
// most recent anomalies.
func newStore(limitBytes, estTrace int64) *store {
	slots := limitBytes / estTrace
	if slots < 4 {
		slots = 4
	}
	nShards := 4
	if slots < 16 {
		nShards = 1
	}
	perShard := 1
	for int64(perShard)*2*int64(nShards) <= slots {
		perShard *= 2
	}
	st := &store{
		shards: make([]storeShard, nShards),
		mask:   uint64(nShards - 1),
		limit:  limitBytes,
	}
	for i := range st.shards {
		st.shards[i].slots = make([]atomic.Pointer[Active], perShard)
		st.shards[i].mask = uint64(perShard - 1)
	}
	return st
}

// insert stores a finished trace, evicting the oldest in its shard's ring
// when the ring has wrapped.
func (st *store) insert(t *Active) {
	sh := &st.shards[t.lo&st.mask]
	i := sh.cursor.Add(1) - 1
	old := sh.slots[i&sh.mask].Swap(t)
	st.bytes.Add(t.szBytes)
	if old != nil {
		st.bytes.Add(-old.szBytes)
		st.evicted.Add(1)
	}
}

// snapshot collects the currently stored traces, newest first.
func (st *store) snapshot() []*Active {
	var out []*Active
	for s := range st.shards {
		sh := &st.shards[s]
		for i := range sh.slots {
			if t := sh.slots[i].Load(); t != nil {
				out = append(out, t)
			}
		}
	}
	// Insertion-sort by start time descending: slot counts are small and
	// each shard is already nearly ordered.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].start.After(out[j-1].start); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// lookup returns the newest stored trace with the given request ID.
func (st *store) lookup(reqID string) *Active {
	var best *Active
	for s := range st.shards {
		sh := &st.shards[s]
		for i := range sh.slots {
			t := sh.slots[i].Load()
			if t != nil && t.reqID == reqID && (best == nil || t.start.After(best.start)) {
				best = t
			}
		}
	}
	return best
}
