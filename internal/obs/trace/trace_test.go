package trace

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseTraceparent(t *testing.T) {
	good := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	hi, lo, parent, flags, ok := ParseTraceparent(good)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) not ok", good)
	}
	if hi != 0x4bf92f3577b34da6 || lo != 0xa3ce929d0e0e4736 {
		t.Errorf("trace-id halves = %016x %016x", hi, lo)
	}
	if parent != 0x00f067aa0ba902b7 {
		t.Errorf("parent = %016x", parent)
	}
	if flags != 0x01 {
		t.Errorf("flags = %02x", flags)
	}

	// Unknown future version with extra dash-separated fields is accepted.
	future := "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"
	if _, _, _, _, ok := ParseTraceparent(future); !ok {
		t.Errorf("future version with suffix rejected: %q", future)
	}

	bad := []string{
		"",
		"garbage",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",     // short
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x", // v00 must be exactly 55
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // version ff invalid
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // zero trace-id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero parent
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",  // uppercase hex
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // wrong separator
		"0g-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // non-hex version
		"00-4bf92f3577b34da6a3ce929d0e0e473z-00f067aa0ba902b7-01",  // non-hex trace-id
	}
	for _, s := range bad {
		if _, _, _, _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", s)
		}
	}
}

func TestFormatTraceparentRoundTrip(t *testing.T) {
	out := FormatTraceparent(0x4bf92f3577b34da6, 0xa3ce929d0e0e4736, 0x00f067aa0ba902b7)
	want := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if out != want {
		t.Fatalf("FormatTraceparent = %q, want %q", out, want)
	}
	hi, lo, parent, _, ok := ParseTraceparent(out)
	if !ok || hi != 0x4bf92f3577b34da6 || lo != 0xa3ce929d0e0e4736 || parent != 0x00f067aa0ba902b7 {
		t.Fatalf("round trip failed: %016x %016x %016x ok=%v", hi, lo, parent, ok)
	}
}

func TestStartRequestRemoteParent(t *testing.T) {
	tr := New(Config{SampleN: 1})
	in := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	a := tr.StartRequest("ingest", "r1", in, time.Now())
	if !a.Remote() {
		t.Fatal("trace with valid traceparent not marked remote")
	}
	if got := a.TraceIDHex(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("TraceIDHex = %q, accepted trace-id not propagated", got)
	}
	echo := a.Traceparent()
	hi, lo, span, _, ok := ParseTraceparent(echo)
	if !ok || hi != 0x4bf92f3577b34da6 || lo != 0xa3ce929d0e0e4736 {
		t.Errorf("echoed traceparent %q does not carry the remote trace-id", echo)
	}
	if span == 0x00f067aa0ba902b7 {
		t.Error("echoed span-id must be ours, not the caller's parent-id")
	}
	tr.Finish(a, 200, time.Millisecond, false)

	// Malformed header mints fresh IDs.
	b := tr.StartRequest("ingest", "r2", "bogus", time.Now())
	if b.Remote() {
		t.Error("malformed traceparent marked remote")
	}
	if b.TraceIDHex() == "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Error("malformed traceparent inherited prior trace-id")
	}
	tr.Finish(b, 200, time.Millisecond, false)
}

func TestSpanTreeRecording(t *testing.T) {
	tr := New(Config{SampleN: 1})
	t0 := time.Now()
	a := tr.StartRequest("ingest", "req-1", "", t0)

	upd := a.StartAt("update", a.Root(), t0.Add(time.Millisecond))
	a.RecordAt("queue_wait", upd, t0.Add(time.Millisecond), t0.Add(2*time.Millisecond)).
		Int("depth", 3)
	a.RecordAt("apply", upd, t0.Add(2*time.Millisecond), t0.Add(3*time.Millisecond)).
		Int("coalesced", 2).Str("mode", "group")
	upd.EndAt(t0.Add(4 * time.Millisecond))

	if !tr.Finish(a, 200, 5*time.Millisecond, false) {
		t.Fatal("SampleN=1 trace dropped")
	}
	got := tr.Lookup("req-1")
	if got == nil {
		t.Fatal("Lookup(req-1) = nil")
	}
	spans := got.Spans()
	if len(spans) != 4 {
		t.Fatalf("span count = %d, want 4", len(spans))
	}
	if spans[0].Name != "request" || spans[0].Parent != 0 || spans[0].DurNs != (5*time.Millisecond).Nanoseconds() {
		t.Errorf("root span = %+v", spans[0])
	}
	byName := map[string]*Span{}
	for i := range spans {
		byName[spans[i].Name] = &spans[i]
	}
	if byName["update"].Parent != 1 {
		t.Errorf("update.Parent = %d, want root (1)", byName["update"].Parent)
	}
	for _, name := range []string{"queue_wait", "apply"} {
		if byName[name].Parent != byName["update"].ID {
			t.Errorf("%s.Parent = %d, want update (%d)", name, byName[name].Parent, byName["update"].ID)
		}
	}
	if byName["update"].DurNs != (3 * time.Millisecond).Nanoseconds() {
		t.Errorf("update duration = %d", byName["update"].DurNs)
	}
	ap := byName["apply"]
	if ap.NAttr != 2 || ap.Attrs[0].Key != "coalesced" || ap.Attrs[0].Int != 2 ||
		ap.Attrs[1].Key != "mode" || ap.Attrs[1].Str != "group" {
		t.Errorf("apply attrs = %+v", ap.Attrs[:ap.NAttr])
	}
}

func TestSlabTruncation(t *testing.T) {
	tr := New(Config{SampleN: 1, MaxSpans: 4})
	a := tr.StartRequest("ingest", "trunc", "", time.Now())
	now := time.Now()
	for i := 0; i < 10; i++ {
		s := a.RecordAt("filler", a.Root(), now, now)
		// Refs past the slab must be inert, not panic.
		s.Int("i", int64(i))
		s.EndAt(now)
	}
	if a.SpanCount() != 4 {
		t.Errorf("SpanCount = %d, want slab cap 4", a.SpanCount())
	}
	if a.DroppedSpans() != 7 {
		t.Errorf("DroppedSpans = %d, want 7", a.DroppedSpans())
	}
	tr.Finish(a, 200, time.Millisecond, false)
	if tr.TruncatedSpans() != 7 {
		t.Errorf("TruncatedSpans = %d, want 7", tr.TruncatedSpans())
	}
}

func TestNilAndInertSafety(t *testing.T) {
	var nilTrace *Active
	nilTrace.Mark(KeepPanic)
	s := nilTrace.StartAt("x", nilTrace.Root(), time.Now())
	s.EndAt(time.Now())
	s.Int("k", 1)
	s.Str("k", "v")
	if s.ID() != 0 {
		t.Errorf("inert ref ID = %d", s.ID())
	}
	if nilTrace.Root().ID() != 0 {
		t.Error("nil trace root ref not inert")
	}
}

func TestTailSampling(t *testing.T) {
	tr := New(Config{SampleN: 10})
	for i := 0; i < 100; i++ {
		a := tr.StartRequest("list", fmt.Sprintf("ok-%d", i), "", time.Now())
		tr.Finish(a, 200, time.Millisecond, false)
	}
	if tr.Sampled() != 10 {
		t.Errorf("Sampled = %d, want 10 of 100 at 1-in-10", tr.Sampled())
	}
	if tr.Dropped() != 90 {
		t.Errorf("Dropped = %d, want 90", tr.Dropped())
	}
	if tr.Kept() != 10 {
		t.Errorf("Kept = %d, want 10", tr.Kept())
	}
}

func TestForcedRetention(t *testing.T) {
	cases := []struct {
		name   string
		status int
		slow   bool
		mark   KeepReason
		want   KeepReason
	}{
		{"slow", 200, true, 0, KeepSlow},
		{"error", 500, false, 0, KeepError},
		{"shed429", 429, false, 0, KeepShed | KeepError},
		{"shed503", 503, false, 0, KeepShed | KeepError},
		{"degraded", 200, false, KeepDegraded, KeepDegraded},
		{"panic", 500, false, KeepPanic, KeepPanic | KeepError},
	}
	for _, c := range cases {
		// SampleN huge so nothing survives by sampling alone.
		tr := New(Config{SampleN: 1 << 30})
		a := tr.StartRequest("ingest", c.name, "", time.Now())
		a.Mark(c.mark)
		if !tr.Finish(a, c.status, time.Millisecond, c.slow) {
			t.Errorf("%s: anomalous trace dropped", c.name)
			continue
		}
		got := tr.Lookup(c.name)
		if got == nil {
			t.Errorf("%s: not stored", c.name)
			continue
		}
		if got.Keep() != c.want {
			t.Errorf("%s: Keep = %v, want %v", c.name, got.Keep(), c.want)
		}
	}

	// An ordinary fast 200 at a huge SampleN is dropped.
	tr := New(Config{SampleN: 1 << 30})
	a := tr.StartRequest("ingest", "plain", "", time.Now())
	if tr.Finish(a, 200, time.Millisecond, false) {
		t.Error("ordinary trace kept despite 1-in-2^30 sampling")
	}
}

func TestKeepReasonString(t *testing.T) {
	if got := KeepReason(0).String(); got != "none" {
		t.Errorf("zero KeepReason = %q", got)
	}
	if got := (KeepSlow | KeepError).String(); got != "slow,error" {
		t.Errorf("slow|error = %q", got)
	}
	if !strings.Contains((KeepPanic | KeepDegraded).String(), "panic") {
		t.Errorf("panic reason missing from %q", (KeepPanic | KeepDegraded).String())
	}
}

func TestStoreByteCapAndEviction(t *testing.T) {
	const limit = 64 << 10
	tr := New(Config{SampleN: 1, StoreBytes: limit, MaxSpans: 8})
	for i := 0; i < 500; i++ {
		a := tr.StartRequest("ingest", fmt.Sprintf("r-%d", i), "", time.Now())
		a.RecordAt("decode", a.Root(), time.Now(), time.Now())
		tr.Finish(a, 200, time.Millisecond, false)
	}
	if tr.Evicted() == 0 {
		t.Error("500 kept traces into a 64KiB store evicted nothing")
	}
	if got := tr.StoreBytes(); got <= 0 || got > limit {
		t.Errorf("StoreBytes = %d, want within (0, %d]", got, limit)
	}
	if tr.StoreLimit() != limit {
		t.Errorf("StoreLimit = %d", tr.StoreLimit())
	}
	// The survivors are the newest.
	traces := tr.Traces()
	if len(traces) == 0 {
		t.Fatal("no traces stored")
	}
	for i := 1; i < len(traces); i++ {
		if traces[i].Start().After(traces[i-1].Start()) {
			t.Fatal("Traces() not sorted newest first")
		}
	}
}

func TestConcurrentRecordAndFinish(t *testing.T) {
	tr := New(Config{SampleN: 1, StoreBytes: 256 << 10})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a := tr.StartRequest("ingest", fmt.Sprintf("c-%d-%d", g, i), "", time.Now())
				// Simulate the handler/worker pair racing on one slab.
				var inner sync.WaitGroup
				inner.Add(1)
				upd := a.StartAt("update", a.Root(), time.Now())
				go func() {
					defer inner.Done()
					a.RecordAt("queue_wait", upd, time.Now(), time.Now())
					a.Mark(KeepDegraded)
				}()
				a.RecordAt("decode", a.Root(), time.Now(), time.Now())
				inner.Wait()
				upd.EndAt(time.Now())
				tr.Finish(a, 200, time.Millisecond, false)
				if g == 0 && i%10 == 0 {
					_ = tr.Traces()
					_ = tr.Lookup("c-0-0")
				}
			}
		}(g)
	}
	wg.Wait()
	if tr.Kept() != 1600 {
		t.Errorf("Kept = %d, want 1600", tr.Kept())
	}
}
