package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger("json", slog.LevelInfo, &buf)
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hello", "k", 7)
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("json log line not JSON: %q", buf.String())
	}
	if m["msg"] != "hello" || m["k"].(float64) != 7 {
		t.Fatalf("line = %v", m)
	}

	buf.Reset()
	l, err = NewLogger("text", slog.LevelWarn, &buf)
	if err != nil {
		t.Fatal(err)
	}
	l.Info("dropped")
	l.Warn("kept")
	if s := buf.String(); strings.Contains(s, "dropped") || !strings.Contains(s, "kept") {
		t.Fatalf("level filtering broken: %q", s)
	}

	if _, err := NewLogger("yaml", slog.LevelInfo, &buf); err == nil {
		t.Fatal("bad format accepted")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "INFO": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "Error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestTraceIDs(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 25 || id[8] != '-' {
			t.Fatalf("malformed trace id %q", id)
		}
		if !strings.HasPrefix(id, tracePrefix) {
			t.Fatalf("id %q missing process prefix %q", id, tracePrefix)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
}

func TestRequestContextRoundTrip(t *testing.T) {
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("empty context returned %v", got)
	}
	// LoggerFrom on a bare context must be usable (and silent).
	LoggerFrom(context.Background()).Info("into the void")

	var buf bytes.Buffer
	base, err := NewLogger("json", slog.LevelDebug, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rq Request
	rq.Reset("trace-1", "ingest", base)
	ctx := NewContext(context.Background(), &rq)
	if FromContext(ctx) != &rq {
		t.Fatal("request scope did not round-trip")
	}
	LoggerFrom(ctx).Debug("handled")
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m["trace_id"] != "trace-1" || m["endpoint"] != "ingest" {
		t.Fatalf("request attrs missing: %v", m)
	}

	// Reset must clear the derived logger so pooled reuse can't leak the
	// previous request's attrs.
	rq.Reset("trace-2", "curves", base)
	buf.Reset()
	rq.Logger().Debug("second")
	if s := buf.String(); !strings.Contains(s, "trace-2") || strings.Contains(s, "trace-1") {
		t.Fatalf("stale derived logger after Reset: %q", s)
	}

	// A scope with a nil base logger falls back to discard, not panic.
	rq.Reset("trace-3", "check", nil)
	rq.Logger().Info("dropped")
}

func TestDurationSecondsAttr(t *testing.T) {
	a := DurationSeconds(1500 * time.Microsecond)
	if a.Key != "duration" || a.Value.String() != "0.001500s" {
		t.Fatalf("attr = %v=%v", a.Key, a.Value)
	}
}
