// Package obs is the zero-dependency observability layer of the wcmd
// service: lock-free log-bucketed latency histograms (Histogram),
// structured logging on log/slog with per-request trace IDs carried
// through context (Request, NewContext, LoggerFrom), and
// self-characterization (SelfStream) — the server feeds its own
// per-request handler cost into an internal/stream CurveStream, so the
// paper's workload model (γᵘ/γˡ, eq. 9 minimum frequency) is served for
// the service's own request workload at /debug/self.
//
// Everything on the request path is allocation-free in steady state:
// histograms are fixed atomic arrays, Request scopes are designed to be
// pooled by the caller, and SelfStream.Observe reuses the stream's
// pre-sized rings.
package obs
