package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCountBucketIndex(t *testing.T) {
	cases := []struct {
		n    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3},
		{9, 4}, {1024, 10}, {32768, 15}, {32769, CountNumBuckets},
		{math.MaxInt64, CountNumBuckets},
	}
	for _, c := range cases {
		if got := CountBucketIndex(c.n); got != c.want {
			t.Errorf("CountBucketIndex(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	// Every finite bucket's bound must cover its own index's values.
	for i := 0; i < CountNumBuckets; i++ {
		ub := int64(CountUpperBound(i))
		if got := CountBucketIndex(ub); got != i {
			t.Errorf("bound %d of bucket %d lands in bucket %d", ub, i, got)
		}
	}
	if !math.IsInf(CountUpperBound(CountNumBuckets), 1) {
		t.Error("overflow bucket bound is not +Inf")
	}
}

func TestCountHistObserveSnapshot(t *testing.T) {
	var h CountHist
	for _, n := range []int64{1, 1, 2, 7, 64, 100000, -3} {
		h.Observe(n)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("Count = %d, want 7", s.Count)
	}
	if s.Sum != 1+1+2+7+64+100000+0 {
		t.Fatalf("Sum = %d, want %d", s.Sum, 1+1+2+7+64+100000)
	}
	if s.Counts[0] != 3 { // 1, 1, and clamped -3
		t.Fatalf("bucket 0 = %d, want 3", s.Counts[0])
	}
	if s.Counts[CountNumBuckets] != 1 { // 100000 overflows
		t.Fatalf("+Inf bucket = %d, want 1", s.Counts[CountNumBuckets])
	}
	if got := s.CumulativeCount(CountNumBuckets); got != 7 {
		t.Fatalf("CumulativeCount(+Inf) = %d, want 7", got)
	}
	if mean := s.Mean(); mean != float64(s.Sum)/7 {
		t.Fatalf("Mean = %v", mean)
	}
	if (CountHistSnapshot{}).Mean() != 0 {
		t.Fatal("empty Mean != 0")
	}
}

func TestCountHistConcurrent(t *testing.T) {
	var h CountHist
	var wg sync.WaitGroup
	const g, per = 4, 10000
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for j := int64(0); j < per; j++ {
				h.Observe(base + j%17)
			}
		}(int64(i))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != g*per {
		t.Fatalf("Count = %d, want %d", s.Count, g*per)
	}
	var sum uint64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != g*per {
		t.Fatalf("bucket sum = %d, want %d", sum, g*per)
	}
}
