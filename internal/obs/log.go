package obs

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"wcm/internal/obs/trace"
)

// ---- logger construction ----------------------------------------------------

// NewLogger builds a slog.Logger writing to w in the requested format
// ("json" for machine-shipped structured lines, "text" for humans) at the
// given level.
func NewLogger(format string, level slog.Level, w io.Writer) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf(`obs: log format %q (want "json" or "text")`, format)
	}
}

// ParseLevel maps a flag string to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: log level %q (want debug|info|warn|error)", s)
}

// discardHandler drops every record. Implemented here (rather than relying
// on newer-stdlib discard handlers) so the package needs nothing beyond the
// module's Go baseline.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

var discardLogger = slog.New(discardHandler{})

// Discard returns a logger that drops everything — the default for servers
// constructed without an explicit logger (tests, benchmarks).
func Discard() *slog.Logger { return discardLogger }

// ---- trace IDs --------------------------------------------------------------

// Trace IDs are "<8-hex process prefix>-<16-hex counter>": unique within a
// process by the atomic counter, distinguishable across restarts by the
// random prefix, and cheap — no syscall or crypto on the request path.
var (
	tracePrefix = newTracePrefix()
	traceSeq    atomic.Uint64
)

func newTracePrefix() string {
	var b [4]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// No entropy source: fall back to the clock; uniqueness within the
		// process still holds via the counter.
		binary.LittleEndian.PutUint32(b[:], uint32(time.Now().UnixNano()))
	}
	return hex.EncodeToString(b[:])
}

// NewTraceID returns a fresh request trace ID. One string allocation.
func NewTraceID() string {
	var buf [25]byte // 8 prefix + '-' + 16 counter
	copy(buf[:8], tracePrefix)
	buf[8] = '-'
	seq := traceSeq.Add(1)
	const hexdig = "0123456789abcdef"
	for i := 0; i < 16; i++ {
		buf[9+i] = hexdig[(seq>>(60-4*i))&0xf]
	}
	return string(buf[:])
}

// ---- request scope ----------------------------------------------------------

// Request is the per-request observability scope: the trace ID and endpoint
// name plus a lazily derived request-scoped logger. Instances are meant to
// be pooled by the HTTP layer — Reset clears all state — so they must not
// be retained past the request (don't hand the context to goroutines that
// outlive the handler).
type Request struct {
	ID       string // trace ID (propagated X-Request-Id or generated)
	Endpoint string // route name the request resolved to

	// Trace is the request's span tree when tracing is enabled, nil
	// otherwise. Handlers reach it via TraceFrom; the HTTP layer owns its
	// lifecycle (StartRequest/Finish).
	Trace *trace.Active

	base    *slog.Logger // service logger
	derived *slog.Logger // base.With(trace/endpoint), built on first Logger()
}

// Reset re-initializes a (possibly pooled) scope for a new request.
func (r *Request) Reset(id, endpoint string, base *slog.Logger) {
	r.ID, r.Endpoint, r.base, r.derived = id, endpoint, base, nil
	r.Trace = nil
}

// Logger returns the request-scoped logger: the service logger with
// trace_id and endpoint attrs attached. Derivation (which allocates) is
// deferred until a handler actually logs, so the happy path pays nothing.
func (r *Request) Logger() *slog.Logger {
	if r.derived == nil {
		base := r.base
		if base == nil {
			base = discardLogger
		}
		r.derived = base.With(
			slog.String("trace_id", r.ID),
			slog.String("endpoint", r.Endpoint),
		)
	}
	return r.derived
}

type ctxKey struct{}

// NewContext attaches the request scope to ctx.
func NewContext(ctx context.Context, r *Request) context.Context {
	return context.WithValue(ctx, ctxKey{}, r)
}

// RequestContext is a poolable alternative to NewContext: a context carrying
// a request scope without the per-request context.WithValue allocation. The
// HTTP layer embeds one in its pooled per-request state, Resets it around
// each request, and hands &rc to http.Request.WithContext. FromContext and
// LoggerFrom resolve through it transparently. Like Request, it must not
// outlive the request it was Reset for.
type RequestContext struct {
	context.Context          // the request's base context
	Req             *Request // scope returned for lookups via FromContext
}

// Reset points the carrier at a new base context and scope. Call
// Reset(nil, nil) before pooling to drop references.
func (c *RequestContext) Reset(base context.Context, r *Request) {
	c.Context, c.Req = base, r
}

// Value returns the request scope for the package's key and defers every
// other lookup to the base context.
func (c *RequestContext) Value(key any) any {
	if _, ok := key.(ctxKey); ok {
		return c.Req
	}
	return c.Context.Value(key)
}

// FromContext returns the request scope, or nil when the context carries
// none (direct handler invocation in tests).
func FromContext(ctx context.Context) *Request {
	r, _ := ctx.Value(ctxKey{}).(*Request)
	return r
}

// TraceFrom returns the request's active trace, or nil when the context
// carries no scope or tracing is off. The nil return composes with the
// trace package's nil-safe methods, so handlers record spans
// unconditionally.
func TraceFrom(ctx context.Context) *trace.Active {
	if r := FromContext(ctx); r != nil {
		return r.Trace
	}
	return nil
}

// LoggerFrom returns the request-scoped logger from ctx, or a discarding
// logger when the context carries no scope — handlers can log
// unconditionally.
func LoggerFrom(ctx context.Context) *slog.Logger {
	if r := FromContext(ctx); r != nil {
		return r.Logger()
	}
	return discardLogger
}

// DurationSeconds renders d as seconds with millisecond precision — the
// one latency attr format used across the service's log lines.
func DurationSeconds(d time.Duration) slog.Attr {
	return slog.String("duration", strconv.FormatFloat(d.Seconds(), 'f', 6, 64)+"s")
}
