package server

// Multi-tenant QoS: tenant identity, per-tenant token-bucket admission,
// SLO-ordered shedding and stream quotas. See internal/qos for the
// primitives and DESIGN.md §16 for the admission order.
//
// Tenant resolution is bounded-cardinality by construction: a request
// names its tenant via the X-Wcm-Tenant header (or ?tenant= query param),
// and any name the registry does not know — including no name at all —
// resolves to the default tenant. Hostile clients therefore cannot mint
// metric label values, cache buckets or registry entries; they can only
// share the default tenant's budget.
//
// The untagged fast path stays allocation-free: one canonical-key header
// lookup, a RawQuery scan (no url.Values map), and the default tenant's
// nil bucket check.

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"wcm/internal/obs"
	"wcm/internal/qos"
)

// DefaultTenantName is the tenant untagged and unknown-tenant requests
// resolve to. Configuring a tenant with this name sets the default
// tenant's policy (rate, quota, SLO).
const DefaultTenantName = "default"

// tenantState is one tenant's runtime admission state. The counter
// quartet mirrors the wcmd_tenant_*_total metric families:
//
//	admitted  — requests that passed rate admission (they may still fail
//	            in the handler, or hit the tenant's stream quota)
//	throttled — requests rejected 429 by the tenant's own token bucket
//	shed      — requests turned away by SLO-ordered in-flight shedding
//	degraded  — throttled/shed reads answered 200 from the cached
//	            (possibly stale) snapshot path instead of being rejected
type tenantState struct {
	name   string
	slo    qos.SLO
	bucket *qos.TokenBucket // nil = unlimited rate
	rate   float64          // configured, for introspection
	burst  int

	maxStreams int64 // 0 = unlimited
	streams    atomic.Int64

	admitted  atomic.Uint64
	throttled atomic.Uint64
	shed      atomic.Uint64
	degraded  atomic.Uint64

	latency obs.Histogram
}

// reserveStream atomically claims one stream-quota slot; false when the
// tenant is at its cap. The CAS loop makes check-and-claim atomic across
// shards without a global lock.
func (t *tenantState) reserveStream() bool {
	if t == nil {
		return true
	}
	for {
		cur := t.streams.Load()
		if t.maxStreams > 0 && cur >= t.maxStreams {
			return false
		}
		if t.streams.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// releaseStream returns one quota slot (stream dropped or deleted).
func (t *tenantState) releaseStream() {
	if t != nil {
		t.streams.Add(-1)
	}
}

// reclaimStream re-claims a slot for an entry resurrected by
// ensureRegistered after a dropIfEmpty race. Unconditional: failing the
// re-registration would strand acknowledged samples, so a transient
// overshoot of the quota (bounded by the number of concurrently racing
// requests) is the lesser evil.
func (t *tenantState) reclaimStream() {
	if t != nil {
		t.streams.Add(1)
	}
}

// qosRegistry maps tenant names to their admission state. Immutable after
// New — lookups on the request path need no lock.
type qosRegistry struct {
	tenants map[string]*tenantState // nil when only the default tenant exists
	names   []string                // sorted, default included
	def     *tenantState
}

// newQoSRegistry builds the registry from Config. Always returns a usable
// registry: with no configured tenants it holds just the default tenant
// (unlimited, DefaultSLO), so the introspection surfaces and counters
// exist unconditionally.
func newQoSRegistry(tenants []qos.TenantConfig, defaultSLO string) (*qosRegistry, error) {
	defSLO := qos.Interactive
	if defaultSLO != "" {
		var err error
		if defSLO, err = qos.ParseSLO(defaultSLO); err != nil {
			return nil, fmt.Errorf("server: default slo: %w", err)
		}
	}
	r := &qosRegistry{}
	seen := make(map[string]bool, len(tenants))
	for _, tc := range tenants {
		if err := tc.Validate(); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		if seen[tc.Name] {
			return nil, fmt.Errorf("server: duplicate tenant %q", tc.Name)
		}
		seen[tc.Name] = true
		slo := defSLO
		if tc.SLO != "" {
			slo, _ = qos.ParseSLO(tc.SLO) // validated above
		}
		ts := &tenantState{
			name:       tc.Name,
			slo:        slo,
			bucket:     qos.NewTokenBucket(tc.RatePerSec, tc.Burst),
			rate:       tc.RatePerSec,
			burst:      tc.Burst,
			maxStreams: int64(tc.MaxStreams),
		}
		if ts.bucket == nil {
			ts.rate, ts.burst = 0, 0
		}
		if r.tenants == nil {
			r.tenants = make(map[string]*tenantState, len(tenants))
		}
		r.tenants[tc.Name] = ts
		if tc.Name == DefaultTenantName {
			r.def = ts
		}
	}
	if r.def == nil {
		r.def = &tenantState{name: DefaultTenantName, slo: defSLO}
		if r.tenants != nil {
			r.tenants[DefaultTenantName] = r.def
		}
	}
	if r.tenants != nil {
		r.names = make([]string, 0, len(r.tenants)+1)
		for name := range r.tenants {
			r.names = append(r.names, name)
		}
		if _, ok := r.tenants[DefaultTenantName]; !ok {
			r.names = append(r.names, DefaultTenantName)
		}
	} else {
		r.names = []string{DefaultTenantName}
	}
	sort.Strings(r.names)
	return r, nil
}

// lookup resolves a tenant name; unknown names land on the default tenant.
func (r *qosRegistry) lookup(name string) *tenantState {
	if name == "" || r.tenants == nil {
		return r.def
	}
	if ts := r.tenants[name]; ts != nil {
		return ts
	}
	return r.def
}

// state returns the tenantState listed under name (for introspection
// walks over r.names, where the default may not be in the map).
func (r *qosRegistry) state(name string) *tenantState {
	if r.tenants != nil {
		if ts := r.tenants[name]; ts != nil {
			return ts
		}
	}
	return r.def
}

// tenantQueryParam scans a raw query string for tenant=... without
// building the url.Values map (which allocates per call). Tenant names
// are restricted to [A-Za-z0-9_-], so no percent-decoding is needed — an
// escaped name simply fails to match and resolves to the default tenant.
func tenantQueryParam(raw string) string {
	const key = "tenant="
	for raw != "" {
		kv := raw
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			kv, raw = raw[:i], raw[i+1:]
		} else {
			raw = ""
		}
		if strings.HasPrefix(kv, key) {
			return kv[len(key):]
		}
	}
	return ""
}

// tenantFor resolves the request's tenant: X-Wcm-Tenant header first,
// ?tenant= query param second, default tenant otherwise.
func (s *Server) tenantFor(r *http.Request) *tenantState {
	name := r.Header.Get("X-Wcm-Tenant")
	if name == "" && r.URL.RawQuery != "" {
		name = tenantQueryParam(r.URL.RawQuery)
	}
	return s.qos.lookup(name)
}

// admitDecision is the outcome of request admission, attached to traces
// and resolved into tenant counters once the response status is known.
type admitDecision uint8

const (
	admitOK        admitDecision = iota
	admitThrottled               // tenant over its own rate budget
	admitShed                    // server in-flight pressure at this SLO's threshold
)

func (d admitDecision) String() string {
	switch d {
	case admitThrottled:
		return "throttled"
	case admitShed:
		return "shed"
	}
	return "ok"
}

// account resolves (decision, final status) into the tenant counter
// quartet. A throttled or shed request that still answered 200 was served
// by the degraded/cached path — that is the mixed-criticality degradation
// outcome, counted as degraded rather than rejected.
func (t *tenantState) account(d admitDecision, status int, lat time.Duration) {
	t.latency.Observe(lat)
	switch d {
	case admitOK:
		t.admitted.Add(1)
	case admitThrottled:
		if status == http.StatusOK {
			t.degraded.Add(1)
		} else {
			t.throttled.Add(1)
		}
	case admitShed:
		if status == http.StatusOK {
			t.degraded.Add(1)
		} else {
			t.shed.Add(1)
		}
	}
}

// errStreamQuota marks a getOrCreate rejection by the owning tenant's
// stream quota; handlers answer it 429 instead of 500.
var errStreamQuota = errors.New("stream quota exceeded")

// writeThrottled answers a request rejected by its tenant's token bucket:
// 429 with a Retry-After computed from the bucket's refill deficit
// (already converted to whole seconds by retrySecsFromNs), so a
// well-behaved client backs off exactly as long as the budget needs.
func writeThrottled(w http.ResponseWriter, tenant string, secs int) {
	w.Header().Set("Retry-After", retryAfterValue(secs))
	writeJSON(w, http.StatusTooManyRequests,
		errorResponse{"tenant " + tenant + " over rate limit"})
}

// ---- GET /v1/tenants --------------------------------------------------------

// tenantJSON is one tenant's introspection record.
type tenantJSON struct {
	Name       string  `json:"name"`
	SLO        string  `json:"slo"`
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	Burst      int     `json:"burst,omitempty"`
	MaxStreams int64   `json:"max_streams,omitempty"`
	Streams    int64   `json:"streams"`
	Admitted   uint64  `json:"admitted"`
	Throttled  uint64  `json:"throttled"`
	Shed       uint64  `json:"shed"`
	Degraded   uint64  `json:"degraded"`
}

type tenantsResponse struct {
	DefaultSLO string       `json:"default_slo"`
	Tenants    []tenantJSON `json:"tenants"`
}

// handleTenants serves the QoS introspection surface: every configured
// tenant (plus the default) with its policy and counters. classNone —
// like /metrics, it must answer exactly when the service is drowning.
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	resp := tenantsResponse{
		DefaultSLO: s.qos.def.slo.String(),
		Tenants:    make([]tenantJSON, 0, len(s.qos.names)),
	}
	for _, name := range s.qos.names {
		t := s.qos.state(name)
		resp.Tenants = append(resp.Tenants, tenantJSON{
			Name:       name,
			SLO:        t.slo.String(),
			RatePerSec: t.rate,
			Burst:      t.burst,
			MaxStreams: t.maxStreams,
			Streams:    t.streams.Load(),
			Admitted:   t.admitted.Load(),
			Throttled:  t.throttled.Load(),
			Shed:       t.shed.Load(),
			Degraded:   t.degraded.Load(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// tenantGaugesNow samples every tenant's counters for the /metrics scrape
// and the /v1/stats tenants block.
func (s *Server) tenantGaugesNow() []tenantGauges {
	out := make([]tenantGauges, 0, len(s.qos.names))
	for _, name := range s.qos.names {
		t := s.qos.state(name)
		out = append(out, tenantGauges{
			name:      name,
			slo:       t.slo.String(),
			admitted:  t.admitted.Load(),
			throttled: t.throttled.Load(),
			shed:      t.shed.Load(),
			degraded:  t.degraded.Load(),
			streams:   t.streams.Load(),
			latency:   t.latency.Snapshot(),
		})
	}
	return out
}
