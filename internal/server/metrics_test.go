package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"wcm/internal/obs"
	"wcm/internal/stream"
)

// ---- a small Prometheus text-format parser for validity checks --------------

type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseProm parses a text-format 0.0.4 exposition strictly enough to catch
// the mistakes hand-rolled writers make: samples without HELP/TYPE,
// duplicate TYPE lines, malformed label escaping, unparsable values.
func parseProm(t *testing.T, body string) (types map[string]string, samples []promSample) {
	t.Helper()
	types = make(map[string]string)
	help := make(map[string]bool)
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			help[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, typ := parts[0], parts[1]
			if _, dup := types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("line %d: unknown type %q", ln+1, typ)
			}
			if !help[name] {
				t.Fatalf("line %d: TYPE for %s before/without HELP", ln+1, name)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}
		samples = append(samples, parsePromSample(t, ln+1, line))
	}
	return types, samples
}

func parsePromSample(t *testing.T, ln int, line string) promSample {
	t.Helper()
	s := promSample{labels: make(map[string]string)}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("line %d: no value separator: %q", ln, line)
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		rest = rest[1:]
		for !strings.HasPrefix(rest, "}") {
			eq := strings.Index(rest, "=")
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				t.Fatalf("line %d: malformed label in %q", ln, line)
			}
			key := rest[:eq]
			rest = rest[eq+2:]
			var val strings.Builder
			for {
				if rest == "" {
					t.Fatalf("line %d: unterminated label value in %q", ln, line)
				}
				c := rest[0]
				if c == '"' {
					rest = rest[1:]
					break
				}
				if c == '\\' {
					if len(rest) < 2 {
						t.Fatalf("line %d: dangling escape in %q", ln, line)
					}
					switch rest[1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						t.Fatalf("line %d: bad escape \\%c in %q", ln, rest[1], line)
					}
					rest = rest[2:]
					continue
				}
				val.WriteByte(c)
				rest = rest[1:]
			}
			s.labels[key] = val.String()
			rest = strings.TrimPrefix(rest, ",")
		}
		rest = strings.TrimPrefix(rest, "}")
	}
	rest = strings.TrimSpace(rest)
	v, err := parsePromValue(rest)
	if err != nil {
		t.Fatalf("line %d: bad value %q: %v", ln, rest, err)
	}
	s.value = v
	return s
}

func parsePromValue(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// seriesKey identifies one histogram series: all labels except le.
func seriesKey(s promSample) string {
	keys := make([]string, 0, len(s.labels))
	for k := range s.labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, s.labels[k])
	}
	return b.String()
}

// TestPrometheusExpositionValid drives mixed traffic through the server and
// then checks the whole /metrics payload at the parser level: HELP/TYPE per
// family, parsable samples, and — for every histogram series — cumulative
// le-ordered buckets terminated by le="+Inf" whose value equals _count.
func TestPrometheusExpositionValid(t *testing.T) {
	s, err := New(Config{Stream: stream.Config{Window: 64, MaxK: 8}, SelfCurves: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(path, ct, body string) int {
		req, _ := http.NewRequest("POST", srv.URL+path, strings.NewReader(body))
		req.Header.Set("Content-Type", ct)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	get := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/v1/streams/a/ingest", "application/json",
		`{"t":[10,20,30],"demand":[5,7,2]}`); code != 200 {
		t.Fatalf("ingest: %d", code)
	}
	bin := AppendBinaryBatch(nil, []int64{40, 50}, []int64{9, 1})
	req, _ := http.NewRequest("POST", srv.URL+"/v1/streams/a/ingest", bytes.NewReader(bin))
	req.Header.Set("Content-Type", ContentTypeBinary)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != 200 {
		t.Fatalf("binary ingest: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}
	post("/v1/streams/a/ingest", "application/json", `{"bogus":true}`) // a 400
	get("/v1/streams/a/curves")                                        // miss
	get("/v1/streams/a/curves")                                        // hit
	get("/healthz")
	get("/v1/stats")
	get("/debug/self")

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body := string(raw)

	types, samples := parseProm(t, body)

	// Every sample belongs to an announced family (histogram samples via
	// their _bucket/_sum/_count suffix).
	family := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base, ok := strings.CutSuffix(name, suf)
			if ok && types[base] == "histogram" {
				return base
			}
		}
		return name
	}
	for _, sm := range samples {
		if _, ok := types[family(sm.name)]; !ok {
			t.Fatalf("sample %s has no HELP/TYPE", sm.name)
		}
	}

	// Histogram series: buckets appear in ascending le order, counts are
	// cumulative, the final bucket is le="+Inf" and matches _count.
	type histSeries struct {
		lastLe    float64
		lastCount float64
		infCount  float64
		hasInf    bool
		count     float64
		hasCount  bool
	}
	hists := make(map[string]*histSeries)
	get2 := func(k string) *histSeries {
		h := hists[k]
		if h == nil {
			h = &histSeries{lastLe: math.Inf(-1)}
			hists[k] = h
		}
		return h
	}
	nHistogramFamilies := 0
	for name, typ := range types {
		if typ == "histogram" {
			nHistogramFamilies++
			_ = name
		}
	}
	if nHistogramFamilies < 2 { // request + stage latency
		t.Fatalf("expected ≥2 histogram families, got %d", nHistogramFamilies)
	}
	for _, sm := range samples {
		base := family(sm.name)
		if types[base] != "histogram" {
			continue
		}
		key := base + "|" + seriesKey(sm)
		h := get2(key)
		switch {
		case strings.HasSuffix(sm.name, "_bucket"):
			le, err := parsePromValue(sm.labels["le"])
			if err != nil {
				t.Fatalf("series %s: bad le %q", key, sm.labels["le"])
			}
			if le <= h.lastLe {
				t.Fatalf("series %s: le not ascending (%v after %v)", key, le, h.lastLe)
			}
			if sm.value < h.lastCount {
				t.Fatalf("series %s: bucket counts not cumulative at le=%v", key, le)
			}
			h.lastLe, h.lastCount = le, sm.value
			if math.IsInf(le, 1) {
				h.hasInf, h.infCount = true, sm.value
			}
		case strings.HasSuffix(sm.name, "_count"):
			h.count, h.hasCount = sm.value, true
		}
	}
	for key, h := range hists {
		if !h.hasInf {
			t.Fatalf("series %s: no le=\"+Inf\" bucket", key)
		}
		if !math.IsInf(h.lastLe, 1) {
			t.Fatalf("series %s: +Inf is not the last bucket", key)
		}
		if !h.hasCount || h.count != h.infCount {
			t.Fatalf("series %s: _count %v != +Inf bucket %v", key, h.count, h.infCount)
		}
	}

	// Spot checks the parser can't express: the request-latency family saw
	// the ingest traffic, and build info carries a Go version.
	ingestKey := "wcmd_request_latency_seconds|endpoint=\"ingest\","
	if h := hists[ingestKey]; h == nil || h.infCount < 3 {
		t.Fatalf("ingest latency histogram missing or undercounted: %+v", hists[ingestKey])
	}
	var foundBuild bool
	for _, sm := range samples {
		if sm.name == "wcmd_build_info" {
			foundBuild = true
			if sm.value != 1 || !strings.HasPrefix(sm.labels["go_version"], "go") {
				t.Fatalf("build info: %+v", sm)
			}
		}
	}
	if !foundBuild {
		t.Fatal("wcmd_build_info missing")
	}

	// The per-endpoint request counters and histogram counts agree (the
	// /metrics request itself is observed only after its handler returns).
	requests := make(map[string]float64)
	for _, sm := range samples {
		if sm.name == "wcmd_requests_total" {
			requests[sm.labels["endpoint"]] = sm.value
		}
	}
	for ep, n := range requests {
		key := "wcmd_request_latency_seconds|endpoint=\"" + ep + "\","
		if h := hists[key]; h == nil || h.count != n {
			t.Fatalf("endpoint %s: requests %v vs histogram count %+v", ep, n, hists[key])
		}
	}
}

func TestEscapeLabel(t *testing.T) {
	in := "a\"b\\c\nd"
	want := `a\"b\\c\nd`
	if got := escapeLabel(in); got != want {
		t.Fatalf("escapeLabel(%q) = %q, want %q", in, got, want)
	}
	if got := escapeLabel("plain"); got != "plain" {
		t.Fatalf("plain value changed: %q", got)
	}
}

// TestTraceIDPropagation checks both halves of the trace-ID contract: a
// client-supplied X-Request-Id is echoed, and a missing one is generated.
func TestTraceIDPropagation(t *testing.T) {
	s, err := New(Config{Stream: stream.Config{Window: 32, MaxK: 4}})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	req, _ := http.NewRequest("GET", srv.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "client-id-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-id-1" {
		t.Fatalf("propagated id = %q", got)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); len(got) != 25 || got[8] != '-' {
		t.Fatalf("generated id = %q", got)
	}

	// Oversized client IDs are replaced, not echoed.
	req, _ = http.NewRequest("GET", srv.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", strings.Repeat("x", 200))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); len(got) > maxTraceIDLen {
		t.Fatalf("oversized id echoed back: %q", got)
	}
}

// TestSlowRequestLogged lowers the slow threshold to zero duration above
// zero so every request trips it, and checks the Warn line carries the
// trace ID and endpoint.
func TestSlowRequestLogged(t *testing.T) {
	var buf bytes.Buffer
	logger, err := obs.NewLogger("json", slog.LevelInfo, &buf)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Stream:      stream.Config{Window: 32, MaxK: 4},
		Logger:      logger,
		SlowRequest: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	req, _ := http.NewRequest("GET", srv.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "slow-trace")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("no JSON log line, got %q", buf.String())
	}
	if line["msg"] != "slow request" || line["trace_id"] != "slow-trace" ||
		line["endpoint"] != "healthz" || line["level"] != "WARN" {
		t.Fatalf("slow-request line = %v", line)
	}
}

// TestSlowRequestDisabled: a negative threshold logs nothing even for slow
// requests.
func TestSlowRequestDisabled(t *testing.T) {
	var buf bytes.Buffer
	logger, err := obs.NewLogger("json", slog.LevelInfo, &buf)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Stream:      stream.Config{Window: 32, MaxK: 4},
		Logger:      logger,
		SlowRequest: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if buf.Len() != 0 {
		t.Fatalf("unexpected log output: %q", buf.String())
	}
}

func TestHealthzBuildInfo(t *testing.T) {
	s, err := New(Config{Stream: stream.Config{Window: 32, MaxK: 4}})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || !strings.HasPrefix(h.GoVersion, "go") ||
		h.UptimeSeconds < 0 || h.Version == "" {
		t.Fatalf("healthz = %+v", h)
	}
}

func TestStatsEndpoint(t *testing.T) {
	s, err := New(Config{Stream: stream.Config{Window: 32, MaxK: 4}})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	for i := 0; i < 3; i++ {
		resp, err := http.Post(srv.URL+"/v1/streams/x/ingest", "application/json",
			strings.NewReader(fmt.Sprintf(`{"t":[%d],"demand":[4]}`, 10*(i+1))))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	ing, ok := st.Endpoints["ingest"]
	if !ok || ing.Count != 3 || ing.P50Seconds <= 0 || ing.P99Seconds < ing.P50Seconds {
		t.Fatalf("ingest stats = %+v (present=%v)", ing, ok)
	}
	if _, ok := st.Stages[stageDecode]; !ok {
		t.Fatalf("decode stage missing from %+v", st.Stages)
	}
	if _, ok := st.Endpoints["delete"]; ok {
		t.Fatal("untouched endpoint reported")
	}
}

func TestDebugSelf(t *testing.T) {
	// Disabled by default.
	s, err := New(Config{Stream: stream.Config{Window: 32, MaxK: 4}})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	resp, err := http.Get(srv.URL + "/debug/self")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	srv.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled self: %d", resp.StatusCode)
	}

	// Enabled: after some traffic the service characterizes itself.
	s, err = New(Config{Stream: stream.Config{Window: 32, MaxK: 4}, SelfCurves: true})
	if err != nil {
		t.Fatal(err)
	}
	srv = httptest.NewServer(s.Handler())
	defer srv.Close()
	for i := 0; i < 5; i++ {
		r, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	resp, err = http.Get(srv.URL + "/debug/self")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("self: %d", resp.StatusCode)
	}
	var sr selfResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Observed < 5 || sr.Total < 5 {
		t.Fatalf("self observed %d total %d", sr.Observed, sr.Total)
	}
	if len(sr.UpperUs) < 2 || sr.UpperUs[1] < 1 {
		t.Fatalf("γᵘ = %v", sr.UpperUs)
	}
	if len(sr.LowerUs) >= 2 && sr.LowerUs[1] > sr.UpperUs[1] {
		t.Fatalf("γˡ(1)=%d > γᵘ(1)=%d", sr.LowerUs[1], sr.UpperUs[1])
	}
}
