package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"wcm/internal/stream"
)

// TestConcurrentBinaryIngestCachedReads hammers ONE stream with binary
// ingest batches while reader goroutines hit the cached /curves and /check
// endpoints, under -race in CI. Every response a reader sees must be
// internally consistent — a snapshot of SOME committed state, never a torn
// one: γᵘ monotone non-decreasing in k, γˡ ≤ γᵘ pointwise, dmin ≤ dmax,
// and the response version never decreases within one reader (cache
// regressions would replay stale states).
func TestConcurrentBinaryIngestCachedReads(t *testing.T) {
	const (
		window   = 64
		maxK     = 16
		nBatches = 60
		batchLen = 9
		nReaders = 4
	)
	s, err := New(Config{Stream: stream.Config{Window: window, MaxK: maxK, ReextractEvery: 23}})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	rng := rand.New(rand.NewSource(2026))
	var now int64
	batches := make([][]byte, nBatches)
	for b := range batches {
		tsv := make([]int64, batchLen)
		dv := make([]int64, batchLen)
		for i := range tsv {
			now += int64(rng.Intn(20))
			tsv[i] = now
			dv[i] = int64(rng.Intn(300))
		}
		batches[b] = AppendBinaryBatch(nil, tsv, dv)
	}

	var done atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, nReaders+1)

	serve := func(method, path, contentType string, body []byte) (int, []byte) {
		req, err := http.NewRequest(method, path, bytes.NewReader(body))
		if err != nil {
			panic(err)
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		rec := &memRecorder{header: make(http.Header)}
		h.ServeHTTP(rec, req)
		return rec.status, rec.body.Bytes()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for b, body := range batches {
			code, raw := serve("POST", "/v1/streams/hot/ingest", ContentTypeBinary, body)
			if code != http.StatusOK {
				errc <- fmt.Errorf("ingest batch %d: %d %s", b, code, raw)
				return
			}
		}
	}()

	for rd := 0; rd < nReaders; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			lastVersion := int64(-1)
			for !done.Load() {
				code, raw := serve("GET", "/v1/streams/hot/curves", "", nil)
				if code == http.StatusNotFound || code == http.StatusConflict {
					continue // stream not created / not enough samples yet
				}
				if code != http.StatusOK {
					errc <- fmt.Errorf("reader %d curves: %d %s", rd, code, raw)
					return
				}
				var cr struct {
					Version int64   `json:"version"`
					Upper   []int64 `json:"upper"`
					Lower   []int64 `json:"lower"`
					DMin    []int64 `json:"dmin"`
					DMax    []int64 `json:"dmax"`
				}
				if err := json.Unmarshal(raw, &cr); err != nil {
					errc <- fmt.Errorf("reader %d: bad body %s", rd, raw)
					return
				}
				if cr.Version < lastVersion {
					errc <- fmt.Errorf("reader %d: version went back %d → %d", rd, lastVersion, cr.Version)
					return
				}
				lastVersion = cr.Version
				for k := 1; k < len(cr.Upper); k++ {
					if cr.Upper[k] < cr.Upper[k-1] {
						errc <- fmt.Errorf("reader %d: γᵘ not monotone at k=%d: %v", rd, k, cr.Upper)
						return
					}
				}
				for k := range cr.Upper {
					if k < len(cr.Lower) && cr.Lower[k] > cr.Upper[k] {
						errc <- fmt.Errorf("reader %d: γˡ(%d)=%d > γᵘ(%d)=%d", rd, k, cr.Lower[k], k, cr.Upper[k])
						return
					}
				}
				for k := range cr.DMin {
					if k < len(cr.DMax) && cr.DMin[k] > cr.DMax[k] {
						errc <- fmt.Errorf("reader %d: dmin(%d) > dmax(%d)", rd, k, k)
						return
					}
				}
				code, raw = serve("POST", "/v1/streams/hot/check", "application/json",
					[]byte(`{"freq_hz":1e8,"latency_ns":0,"buffer":2}`))
				if code != http.StatusOK && code != http.StatusConflict && code != http.StatusNotFound {
					errc <- fmt.Errorf("reader %d check: %d %s", rd, code, raw)
					return
				}
			}
		}(rd)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// memRecorder is a minimal in-memory ResponseWriter (httptest.NewRecorder
// without the extra bookkeeping) so the hammer loop stays cheap.
type memRecorder struct {
	header http.Header
	body   bytes.Buffer
	status int
}

func (r *memRecorder) Header() http.Header { return r.header }
func (r *memRecorder) WriteHeader(c int)   { r.status = c }
func (r *memRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.body.Write(p)
}

var _ io.Writer = (*memRecorder)(nil)
