package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wcm/internal/obs/trace"
	"wcm/internal/wal"
)

// tracedReq performs one request with extra headers and returns status,
// response headers and body — the propagation assertions are header-level.
func tracedReq(t *testing.T, method, url string, hdr map[string]string, body []byte) (int, http.Header, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, raw
}

// waitTrace polls the tracer for a stored trace — Finish runs after the
// response is written, so the client can observe the answer before the
// trace lands in the store.
func waitTrace(t *testing.T, s *Server, reqID string) *trace.Active {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if tr := s.tracer.Lookup(reqID); tr != nil {
			return tr
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("trace %q never stored", reqID)
	return nil
}

const sampleTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"

// TestTraceAsyncSpanTree is the tracing acceptance test: one traced
// binary-format ingest through the async pipeline with durability on must
// produce a single span tree — handler-side decode/update/render plus the
// worker-side queue_wait/apply/wal_append/wal_fsync recorded across the
// ring hop — all under one trace ID, with every span inside the root's
// bounds and the root duration exactly matching the ingest endpoint
// histogram.
func TestTraceAsyncSpanTree(t *testing.T) {
	cfg := Config{
		Shards:         4,
		Stream:         streamCfg,
		IngestRing:     16,
		CoalesceBudget: 8,
		TraceSample:    1,
	}
	cfg.WAL = openTestWAL(t, t.TempDir(), cfg, wal.PolicyBatch)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := AppendBinaryBatch(nil, []int64{0, 100, 200}, []int64{3, 5, 4})
	code, hdr, raw := tracedReq(t, "POST", ts.URL+"/v1/streams/cam/ingest", map[string]string{
		"Content-Type": ContentTypeBinary,
		"X-Request-Id": "e2e-1",
		"traceparent":  sampleTraceparent,
	}, body)
	if code != http.StatusOK {
		t.Fatalf("ingest: %d %s", code, raw)
	}
	if got := hdr.Get("X-Request-Id"); got != "e2e-1" {
		t.Fatalf("X-Request-Id echo = %q", got)
	}
	echo := hdr.Get("Traceparent")
	if !strings.HasPrefix(echo, "00-4bf92f3577b34da6a3ce929d0e0e4736-") {
		t.Fatalf("Traceparent echo %q does not carry the accepted trace-id", echo)
	}

	tr := waitTrace(t, s, "e2e-1")
	if tr.TraceIDHex() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("stored trace-id = %q", tr.TraceIDHex())
	}
	if !tr.Remote() {
		t.Fatal("trace not marked remote despite valid traceparent")
	}

	spans := tr.Spans()
	byName := map[string]*trace.Span{}
	for i := range spans {
		byName[spans[i].Name] = &spans[i]
	}
	root := byName["request"]
	if root == nil || root.ID != 1 {
		t.Fatalf("no root span: %+v", spans)
	}
	// The async hop: worker-side spans hang off the handler's update span,
	// in the same slab as the handler-side ones — one trace across the ring.
	update := byName["update"]
	if update == nil {
		t.Fatalf("no update span; spans = %+v", spans)
	}
	for _, name := range []string{"queue_wait", "apply", "wal_append", "wal_fsync"} {
		sp := byName[name]
		if sp == nil {
			t.Fatalf("worker span %q missing; spans = %+v", name, spans)
		}
		if sp.Parent != update.ID {
			t.Errorf("%s.Parent = %d, want update (%d)", name, sp.Parent, update.ID)
		}
	}
	for _, name := range []string{"decode", "update", "render"} {
		sp := byName[name]
		if sp == nil {
			t.Fatalf("handler span %q missing; spans = %+v", name, spans)
		}
		if sp.Parent != 1 {
			t.Errorf("%s.Parent = %d, want root", name, sp.Parent)
		}
	}
	if ap := byName["apply"]; ap.NAttr < 1 || ap.Attrs[0].Key != "coalesced" || ap.Attrs[0].Int < 1 {
		t.Errorf("apply attrs = %+v", ap.Attrs[:ap.NAttr])
	}

	// Timing consistency: every span closed, inside the root's bounds, and
	// the root duration agrees exactly with the endpoint histogram (both are
	// fed the same time.Since(start)).
	for i := range spans {
		sp := &spans[i]
		if sp.DurNs < 0 {
			t.Errorf("span %q left open", sp.Name)
			continue
		}
		if sp.StartNs < 0 || sp.StartNs+sp.DurNs > root.DurNs {
			t.Errorf("span %q [%d, +%d] outside root duration %d",
				sp.Name, sp.StartNs, sp.DurNs, root.DurNs)
		}
	}
	snap := s.metrics.endpoints["ingest"].latency.Snapshot()
	if snap.Count != 1 || snap.SumNs != root.DurNs {
		t.Errorf("histogram count=%d sum=%d, root DurNs=%d — trace and histogram disagree",
			snap.Count, snap.SumNs, root.DurNs)
	}

	// The HTTP surface renders the same tree.
	code, m := doJSON(t, "GET", ts.URL+"/debug/traces/e2e-1", "")
	if code != http.StatusOK {
		t.Fatalf("/debug/traces/e2e-1: %d %v", code, m)
	}
	if m["trace_id"] != "4bf92f3577b34da6a3ce929d0e0e4736" || m["remote_parent"] != true {
		t.Fatalf("trace JSON header fields: %v", m)
	}
	rootJSON := m["root"].(map[string]any)
	if rootJSON["name"] != "request" {
		t.Fatalf("root JSON = %v", rootJSON)
	}
	var updateJSON map[string]any
	for _, c := range rootJSON["children"].([]any) {
		if cm := c.(map[string]any); cm["name"] == "update" {
			updateJSON = cm
		}
	}
	if updateJSON == nil {
		t.Fatalf("update missing from JSON tree: %v", rootJSON)
	}
	workerNames := map[string]bool{}
	for _, c := range updateJSON["children"].([]any) {
		workerNames[c.(map[string]any)["name"].(string)] = true
	}
	for _, name := range []string{"queue_wait", "apply", "wal_append", "wal_fsync"} {
		if !workerNames[name] {
			t.Errorf("JSON tree: %s not under update: %v", name, workerNames)
		}
	}

	// And the index filters.
	code, m = doJSON(t, "GET", ts.URL+"/debug/traces?endpoint=ingest", "")
	if code != http.StatusOK || m["count"].(float64) < 1 {
		t.Fatalf("/debug/traces?endpoint=ingest: %d %v", code, m)
	}
	code, m = doJSON(t, "GET", ts.URL+"/debug/traces?endpoint=nosuch", "")
	if code != http.StatusOK || m["count"].(float64) != 0 {
		t.Fatalf("/debug/traces?endpoint=nosuch: %d %v", code, m)
	}
}

// TestTraceparentPropagation covers header handling: a valid incoming
// traceparent donates the trace-id; malformed and version-ff headers are
// ignored gracefully (fresh IDs, request still served); unknown future
// versions with trailing fields are accepted.
func TestTraceparentPropagation(t *testing.T) {
	s, err := New(Config{Stream: streamCfg, TraceSample: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, in    string
		wantAdopted bool
	}{
		{"valid", sampleTraceparent, true},
		{"future-version", "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-what", true},
		{"malformed", "not-a-traceparent", false},
		{"version-ff", "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		{"zero-trace-id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01", false},
		{"absent", "", false},
	}
	for i, c := range cases {
		hdr := map[string]string{"X-Request-Id": "tp-" + c.name}
		if c.in != "" {
			hdr["traceparent"] = c.in
		}
		code, rh, _ := tracedReq(t, "POST", ts.URL+"/v1/streams/tp/ingest", hdr,
			[]byte(fmt.Sprintf(`{"t":[%d],"demand":[1]}`, 1000+100*i)))
		if code != http.StatusOK {
			t.Fatalf("%s: ingest status %d", c.name, code)
		}
		echo := rh.Get("Traceparent")
		if len(echo) != 55 || !strings.HasPrefix(echo, "00-") {
			t.Fatalf("%s: echo %q not a version-00 traceparent", c.name, echo)
		}
		adopted := strings.HasPrefix(echo, "00-4bf92f3577b34da6a3ce929d0e0e4736-")
		if adopted != c.wantAdopted {
			t.Errorf("%s: trace-id adopted=%v, want %v (echo %q)", c.name, adopted, c.wantAdopted, echo)
		}
		if c.wantAdopted && strings.Contains(echo, "00f067aa0ba902b7") {
			t.Errorf("%s: echoed the caller's span-id instead of ours: %q", c.name, echo)
		}
	}
}

// TestTraceShedEcho saturates the ingest limiter and checks the overload
// answer: the 429 still carries X-Request-Id and Traceparent, and its trace
// is force-kept with the shed reason.
func TestTraceShedEcho(t *testing.T) {
	s, err := New(Config{
		Stream:            streamCfg,
		TraceSample:       1 << 20, // sampling alone would drop everything
		MaxInflightIngest: 1,
		Faults:            []Fault{{Point: "handler:ingest", Kind: FaultSleep, Dur: 300 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		doJSON(t, "POST", ts.URL+"/v1/streams/sh/ingest", `{"t":[0],"demand":[1]}`)
	}()
	for s.limIngest.Inflight() == 0 {
		time.Sleep(time.Millisecond)
	}

	code, hdr, _ := tracedReq(t, "POST", ts.URL+"/v1/streams/sh/ingest",
		map[string]string{"X-Request-Id": "shed-1", "traceparent": sampleTraceparent},
		[]byte(`{"t":[10],"demand":[1]}`))
	<-done
	if code != http.StatusTooManyRequests {
		t.Fatalf("second ingest = %d, want 429", code)
	}
	if hdr.Get("X-Request-Id") != "shed-1" {
		t.Errorf("shed response lost X-Request-Id: %q", hdr.Get("X-Request-Id"))
	}
	if !strings.HasPrefix(hdr.Get("Traceparent"), "00-4bf92f3577b34da6a3ce929d0e0e4736-") {
		t.Errorf("shed response Traceparent = %q", hdr.Get("Traceparent"))
	}
	tr := waitTrace(t, s, "shed-1")
	if tr.Keep()&trace.KeepShed == 0 {
		t.Errorf("shed trace kept for %q, want shed", tr.Keep())
	}
	if tr.Status() != http.StatusTooManyRequests {
		t.Errorf("shed trace status = %d", tr.Status())
	}
}

// TestTraceDegradedKept drives the lockhold degraded-read path and checks
// the fallback's trace is force-kept with the degraded reason.
func TestTraceDegradedKept(t *testing.T) {
	s, err := New(Config{
		Stream:         streamCfg,
		RequestTimeout: 40 * time.Millisecond,
		TraceSample:    1 << 20,
		Faults:         []Fault{{Point: "ingest:update", Kind: FaultLockHold, Dur: 300 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Seed stream + cache directly, then stale the cache, as in
	// TestLockHoldFault: the degraded path needs a stale cached answer
	// behind a held lock.
	e, _, err := s.getOrCreate("dg", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.st.Ingest([]int64{0, 100}, []int64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := rawGet(t, ts.URL+"/v1/streams/dg/curves"); code != http.StatusOK {
		t.Fatal("seed curves")
	}
	if _, err := e.st.Reextract(); err != nil {
		t.Fatal(err)
	}

	ingestDone := make(chan struct{})
	go func() {
		defer close(ingestDone)
		doJSON(t, "POST", ts.URL+"/v1/streams/dg/ingest", `{"t":[200],"demand":[3]}`)
	}()
	for {
		if _, err := e.st.SnapshotWithin(0); err != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}

	code, hdr, _ := tracedReq(t, "GET", ts.URL+"/v1/streams/dg/curves",
		map[string]string{"X-Request-Id": "deg-1"}, nil)
	<-ingestDone
	if code != http.StatusOK || hdr.Get("X-Wcm-Degraded") != "true" {
		t.Fatalf("degraded read: %d degraded=%q", code, hdr.Get("X-Wcm-Degraded"))
	}
	tr := waitTrace(t, s, "deg-1")
	if tr.Keep()&trace.KeepDegraded == 0 {
		t.Errorf("degraded trace kept for %q, want degraded", tr.Keep())
	}
}

// TestTracePanicKept injects a handler panic and checks the 500's trace is
// force-kept with the panic reason.
func TestTracePanicKept(t *testing.T) {
	s, err := New(Config{
		Stream:      streamCfg,
		TraceSample: 1 << 20,
		Faults:      []Fault{{Point: "handler:curves", Kind: FaultPanic}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := doJSON(t, "POST", ts.URL+"/v1/streams/pn/ingest", `{"t":[0],"demand":[1]}`); code != http.StatusOK {
		t.Fatal("seed ingest")
	}
	code, hdr, _ := tracedReq(t, "GET", ts.URL+"/v1/streams/pn/curves",
		map[string]string{"X-Request-Id": "panic-1"}, nil)
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking curves = %d", code)
	}
	if hdr.Get("Traceparent") == "" {
		t.Error("panic response lost Traceparent")
	}
	tr := waitTrace(t, s, "panic-1")
	if tr.Keep()&trace.KeepPanic == 0 || tr.Keep()&trace.KeepError == 0 {
		t.Errorf("panic trace kept for %q, want panic|error", tr.Keep())
	}
}

// TestDebugTracesNoShedNoSelf pins the observer-endpoint exemptions: with
// the read limiter saturated, ordinary reads shed 429 but /debug/traces
// still answers; and trace scrapes never feed the self-characterization
// stream while normal requests do.
func TestDebugTracesNoShedNoSelf(t *testing.T) {
	s, err := New(Config{
		Stream:          streamCfg,
		TraceSample:     1,
		SelfCurves:      true,
		MaxInflightRead: 1,
		Faults:          []Fault{{Point: "handler:curves", Kind: FaultSleep, Dur: 300 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := doJSON(t, "POST", ts.URL+"/v1/streams/ns/ingest", `{"t":[0],"demand":[1]}`); code != http.StatusOK {
		t.Fatal("seed ingest")
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		rawGet(t, ts.URL+"/v1/streams/ns/curves") // sleeps 300ms holding the read slot
	}()
	for s.limRead.Inflight() == 0 {
		time.Sleep(time.Millisecond)
	}

	// An ordinary read sheds...
	if code, _, _ := rawGet(t, ts.URL+"/v1/streams/ns/verdict"); code != http.StatusTooManyRequests {
		t.Fatalf("verdict behind saturated limiter = %d, want 429", code)
	}
	// ...but the trace endpoints are classNone and must not.
	if code, _, _ := rawGet(t, ts.URL+"/debug/traces"); code != http.StatusOK {
		t.Fatalf("/debug/traces behind saturated limiter = %d, want 200", code)
	}
	if code, _, _ := rawGet(t, ts.URL+"/debug/traces/absent"); code != http.StatusNotFound {
		t.Fatalf("/debug/traces/absent = %d, want plain 404, not shed", code)
	}
	<-done

	// Self-feed exemption: scraping traces leaves the self stream alone.
	before := s.self.Observed()
	for i := 0; i < 5; i++ {
		rawGet(t, ts.URL+"/debug/traces")
	}
	if got := s.self.Observed(); got != before {
		t.Errorf("self observed %d → %d across /debug/traces scrapes; trace reads fed the self curves", before, got)
	}
	if code, _, _ := rawGet(t, ts.URL+"/v1/streams/ns/verdict"); code != http.StatusOK {
		t.Fatal("verdict after limiter drained")
	}
	if got := s.self.Observed(); got != before+1 {
		t.Errorf("self observed = %d, want %d — ordinary reads must still feed", got, before+1)
	}
}

// TestTracingDisabled checks the off state: no Traceparent echo, and the
// debug endpoints answer 404 with a hint instead of panicking.
func TestTracingDisabled(t *testing.T) {
	ts := newTestServer(t, Config{Stream: streamCfg})
	code, hdr, _ := tracedReq(t, "POST", ts.URL+"/v1/streams/x/ingest",
		map[string]string{"traceparent": sampleTraceparent}, []byte(`{"t":[0],"demand":[1]}`))
	if code != http.StatusOK {
		t.Fatalf("ingest: %d", code)
	}
	if hdr.Get("Traceparent") != "" {
		t.Errorf("Traceparent echoed with tracing off: %q", hdr.Get("Traceparent"))
	}
	code, m := doJSON(t, "GET", ts.URL+"/debug/traces", "")
	if code != http.StatusNotFound || !strings.Contains(m["error"].(string), "trace-sample") {
		t.Fatalf("/debug/traces with tracing off: %d %v", code, m)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/debug/traces/x", ""); code != http.StatusNotFound {
		t.Fatalf("/debug/traces/x with tracing off: %d", code)
	}
}

// TestStatsMetricsParity cross-checks /v1/stats against /metrics: the WAL,
// panic, degraded and shed totals must agree exactly (scrapes do not move
// them), and the monotone trace counters must bracket the /metrics reading
// between two /v1/stats readings (every finished request moves them).
func TestStatsMetricsParity(t *testing.T) {
	cfg := Config{
		Shards:      4,
		Stream:      streamCfg,
		IngestRing:  16,
		TraceSample: 1,
		Faults:      []Fault{{Point: "handler:minfreq", Kind: FaultPanic}},
	}
	cfg.WAL = openTestWAL(t, t.TempDir(), cfg, wal.PolicyBatch)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 5; i++ {
		body := fmt.Sprintf(`{"t":[%d,%d],"demand":[2,3]}`, i*100, i*100+50)
		if code, _ := doJSON(t, "POST", ts.URL+"/v1/streams/par/ingest", body); code != http.StatusOK {
			t.Fatalf("ingest %d failed", i)
		}
	}
	doJSON(t, "GET", ts.URL+"/v1/streams/par/minfreq?freq_hz=1", "") // panics → 500

	stats := func() statsResponse {
		_, _, raw := rawGet(t, ts.URL+"/v1/stats")
		var sr statsResponse
		if err := json.Unmarshal(raw, &sr); err != nil {
			t.Fatalf("stats decode: %v", err)
		}
		return sr
	}
	s1 := stats()
	if s1.WAL == nil || s1.Trace == nil {
		t.Fatalf("stats missing wal/trace blocks: %+v", s1)
	}
	if s1.WAL.AppendsTotal == 0 || s1.WAL.FsyncsTotal == 0 {
		t.Fatalf("wal stats empty after 5 durable ingests: %+v", s1.WAL)
	}
	if s1.Panics != 1 {
		t.Fatalf("stats panics = %d, want 1", s1.Panics)
	}

	mv := func(series string) string { return metricValue(t, ts.URL, series) }
	for series, want := range map[string]uint64{
		"wcmd_wal_appends_total":        s1.WAL.AppendsTotal,
		"wcmd_wal_fsyncs_total":         s1.WAL.FsyncsTotal,
		"wcmd_wal_bytes_total":          s1.WAL.BytesTotal,
		"wcmd_panics_total":             s1.Panics,
		"wcmd_degraded_responses_total": s1.Degraded,
	} {
		if got := mv(series); got != fmt.Sprint(want) {
			t.Errorf("%s = %q, stats says %d", series, got, want)
		}
	}
	if got := mv(`wcmd_shed_total{class="ingest"}`); got != fmt.Sprint(s1.Limits["ingest"].Shed) {
		t.Errorf("ingest shed: metrics %q vs stats %d", got, s1.Limits["ingest"].Shed)
	}

	// Trace counters move with every finished request (the scrapes above
	// included), so bracket instead of exact-compare.
	keptMid := mv("wcmd_trace_kept_total")
	limitMid := mv("wcmd_trace_store_bytes_limit")
	s2 := stats()
	var mid uint64
	fmt.Sscan(keptMid, &mid)
	if s1.Trace.Kept > mid || mid > s2.Trace.Kept {
		t.Errorf("wcmd_trace_kept_total = %d outside stats bracket [%d, %d]",
			mid, s1.Trace.Kept, s2.Trace.Kept)
	}
	if limitMid != fmt.Sprint(s2.Trace.StoreBytesLimit) {
		t.Errorf("store limit: metrics %q vs stats %d", limitMid, s2.Trace.StoreBytesLimit)
	}
	if s2.Trace.StoreBytes <= 0 || s2.Trace.StoreBytes > s2.Trace.StoreBytesLimit {
		t.Errorf("store bytes %d outside (0, %d]", s2.Trace.StoreBytes, s2.Trace.StoreBytesLimit)
	}
	if mv("wcmd_trace_spans_count") == "" {
		t.Error("wcmd_trace_spans histogram missing from /metrics")
	}

	// /debug/self gains the per-stage demand breakdown.
	cfg2 := Config{Stream: streamCfg, SelfCurves: true, TraceSample: 1}
	ts2 := newTestServer(t, cfg2)
	doJSON(t, "POST", ts2.URL+"/v1/streams/q/ingest", `{"t":[0,100],"demand":[1,2]}`)
	doJSON(t, "GET", ts2.URL+"/v1/streams/q/curves", "")
	code, m := doJSON(t, "GET", ts2.URL+"/debug/self", "")
	if code != http.StatusOK {
		t.Fatalf("/debug/self: %d %v", code, m)
	}
	stages, ok := m["stages"].(map[string]any)
	if !ok {
		t.Fatalf("/debug/self has no stages block: %v", m)
	}
	for _, name := range []string{"decode", "update", "render"} {
		st, ok := stages[name].(map[string]any)
		if !ok {
			t.Fatalf("stage %q missing from /debug/self: %v", name, stages)
		}
		if st["count"].(float64) < 1 || st["mean_us"].(float64) < 0 {
			t.Errorf("stage %q = %v", name, st)
		}
	}
}

// TestTraceConcurrentScrapes races traced async ingest against trace-store
// scrapes and metric reads — the store's lock-free ring and the slab's CAS
// discipline have to hold up under the race detector.
func TestTraceConcurrentScrapes(t *testing.T) {
	s, err := New(Config{
		Shards:          4,
		Stream:          streamCfg,
		IngestRing:      16,
		CoalesceBudget:  8,
		TraceSample:     1,
		TraceStoreBytes: 128 << 10, // small: force eviction during the race
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const writers, batches = 4, 40
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			id := fmt.Sprintf("rc%d", g)
			base := int64(0)
			for i := 0; i < batches; i++ {
				n := 1 + rng.Intn(4)
				tsv := make([]int64, n)
				dsv := make([]int64, n)
				for j := range tsv {
					base += 1 + int64(rng.Intn(5))
					tsv[j] = base
					dsv[j] = int64(rng.Intn(6))
				}
				body := AppendBinaryBatch(nil, tsv, dsv)
				code, _, _ := tracedReq(t, "POST", ts.URL+"/v1/streams/"+id+"/ingest",
					map[string]string{
						"Content-Type": ContentTypeBinary,
						"X-Request-Id": fmt.Sprintf("rc-%d-%d", g, i),
						"traceparent":  sampleTraceparent,
					}, body)
				if code != http.StatusOK {
					t.Errorf("ingest %d/%d: %d", g, i, code)
					return
				}
			}
		}(g)
	}
	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for g := 0; g < 2; g++ {
		scrapers.Add(1)
		go func(g int) {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rawGet(t, ts.URL+"/debug/traces?endpoint=ingest&limit=10")
				rawGet(t, ts.URL+"/debug/traces/rc-0-0")
				if g == 0 {
					rawGet(t, ts.URL+"/metrics")
				} else {
					rawGet(t, ts.URL+"/v1/stats")
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	scrapers.Wait()

	if s.tracer.Kept() == 0 {
		t.Fatal("no traces kept")
	}
	if s.tracer.StoreBytes() > s.tracer.StoreLimit() {
		t.Fatalf("store bytes %d exceed limit %d", s.tracer.StoreBytes(), s.tracer.StoreLimit())
	}
}
