package server

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"wcm/internal/obs"
)

// Stage names for the hot-path timing spans. The ingest path is split at
// its three phase boundaries (decode → shard/stream update → render);
// the cached query paths record one span per outcome so hit and miss
// latencies are separable distributions, not one blurred histogram.
const (
	stageDecode    = "decode"     // body read + JSON/binary parse
	stageUpdate    = "update"     // shard lookup + stream lock + incremental update
	stageRender    = "render"     // response encode + write
	stageCacheHit  = "cache_hit"  // cached query replayed from the version-keyed cache
	stageCacheMiss = "cache_miss" // query computed from a fresh snapshot
	stageWALAppend = "wal_append" // one WAL record framed + written to the segment
	stageWALFsync  = "wal_fsync"  // one group-commit fsync of a shard's segment
)

var stageNames = []string{stageDecode, stageUpdate, stageRender, stageCacheHit, stageCacheMiss,
	stageWALAppend, stageWALFsync}

// metrics holds the service's counters and histograms. Per-endpoint and
// per-stage cells are plain atomics updated on the request path; gauges
// derived from stream state are computed at scrape time by the /metrics
// handler (see Server.handleMetrics), so the hot path never touches them.
//
// INVARIANT: the endpoints and stages maps are built once by newMetrics
// and never written afterwards — every route registers at mux
// construction, before the first request. Lookups on the request path and
// walks at scrape time therefore need no lock: a /metrics scrape can
// never block (or be blocked by) request handling. Adding a route without
// listing its name in newMetrics is a programming error that endpoint()
// turns into a startup panic, not a silent data race.
// The hot counters are grouped by the path that bumps them, with cache-line
// spacers between the groups: ingest-path counters share a line with each
// other (they are bumped together, by the same goroutine per batch) but not
// with the read-path counters, so a stream of ingests does not invalidate
// the line that concurrent query traffic is bumping, and vice versa — the
// same false-sharing repair as stream.Stream's version counter.
type metrics struct {
	start time.Time

	_       [64]byte      // ingest-path counters on their own cache line
	samples atomic.Uint64 // demand samples accepted
	batches atomic.Uint64 // ingest batches accepted
	// ingest batches whose result carried a fresh contract violation
	violatingBatches atomic.Uint64
	binaryBatches    atomic.Uint64 // ingest batches decoded from the binary format

	_             [64 - 4*8]byte // read-path counters on the next line
	cacheHits     atomic.Uint64  // query responses replayed from the version-keyed cache
	cacheMisses   atomic.Uint64  // query responses that had to be computed
	renders       atomic.Uint64  // responses actually rendered (≤ misses under singleflight)
	sfLeader      atomic.Uint64  // singleflight calls that led the render for their key
	sfShared      atomic.Uint64  // singleflight calls that piggybacked on a leader
	binaryQueries atomic.Uint64  // query requests that negotiated the binary response format
	epochResets   atomic.Uint64  // parameterized cache maps restarted at the entry cap

	_        [64 - 7*8]byte // cold/error counters off the hot read line
	panics   atomic.Uint64  // handler panics caught by the recovery barrier
	degraded atomic.Uint64  // responses served from a stale cache marked degraded

	// coalesce records batches-fused-per-worker-wakeup when the async
	// ingest pipeline is on (1 = no coalescing happened for that drain).
	coalesce obs.CountHist

	// batchStreams records streams-answered-per-/v1/query-request — the
	// read-side mirror of coalesce: how much per-request overhead each
	// batch amortizes.
	batchStreams obs.CountHist

	// traceSpans records spans-per-trace for every traced request (kept or
	// not) — the span-depth distribution of the tracing subsystem.
	traceSpans obs.CountHist

	build buildInfo

	endpoints map[string]*endpointStats // immutable after newMetrics
	epNames   []string                  // sorted keys of endpoints
	stages    map[string]*obs.Histogram // immutable after newMetrics
}

// endpointStats accumulates request-path cells for one route: request and
// error counters plus the full latency distribution. The histogram
// replaced the earlier sum/max pair — sum and count still fall out of it
// (the Prometheus _sum/_count series), and the distribution additionally
// answers p50/p95/p99.
type endpointStats struct {
	requests atomic.Uint64
	errors   atomic.Uint64 // responses with status ≥ 400
	latency  obs.Histogram
}

// buildInfo is captured once at startup from the runtime.
type buildInfo struct {
	goVersion string
	version   string // main module version ("(devel)" for tree builds)
	revision  string // vcs.revision, if stamped
}

func readBuildInfo() buildInfo {
	b := buildInfo{goVersion: runtime.Version(), version: "unknown", revision: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if bi.Main.Version != "" {
		b.version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			b.revision = s.Value
		}
	}
	return b
}

// newMetrics pre-registers the complete endpoint set. See the invariant on
// metrics: registration happens here and only here.
func newMetrics(endpointNames []string) *metrics {
	m := &metrics{
		start:     time.Now(),
		build:     readBuildInfo(),
		endpoints: make(map[string]*endpointStats, len(endpointNames)),
		stages:    make(map[string]*obs.Histogram, len(stageNames)),
	}
	for _, name := range endpointNames {
		m.endpoints[name] = &endpointStats{}
	}
	m.epNames = append(m.epNames, endpointNames...)
	sort.Strings(m.epNames)
	for _, name := range stageNames {
		m.stages[name] = &obs.Histogram{}
	}
	return m
}

// endpoint returns the stats cell for a pre-registered route. Unknown
// names panic: they mean a route was added without registering it in
// Server.routes, which would otherwise require request-path locking.
func (m *metrics) endpoint(name string) *endpointStats {
	ep := m.endpoints[name]
	if ep == nil {
		panic(fmt.Sprintf("server: endpoint %q not pre-registered in newMetrics", name))
	}
	return ep
}

// stage returns the histogram for a hot-path timing span.
func (m *metrics) stage(name string) *obs.Histogram {
	h := m.stages[name]
	if h == nil {
		panic(fmt.Sprintf("server: stage %q not pre-registered in newMetrics", name))
	}
	return h
}

func (ep *endpointStats) observe(d time.Duration, status int) {
	ep.requests.Add(1)
	if status >= 400 {
		ep.errors.Add(1)
	}
	ep.latency.Observe(d)
}

// gauges are scrape-time values aggregated over all live streams, plus the
// load-shedding readings sampled from the per-class limiters.
type gauges struct {
	streams    int64
	inWindow   int64
	reex       int64
	drift      int64
	violations int64

	shedIngest, shedRead         uint64 // requests turned away, cumulative
	limitIngest, limitRead       int64  // configured caps (0 = unlimited)
	inflightIngest, inflightRead int64  // currently executing requests

	// queueDepths samples each shard's ingest ring occupancy at scrape
	// time; nil when the async pipeline is off.
	queueDepths []int

	// wal carries the durability counters; nil when the server runs
	// without a write-ahead log.
	wal *walGauges

	// trace carries the tracing counters and store accounting; nil when
	// tracing is off.
	trace *traceGauges

	// tenants carries the per-tenant QoS counters, sampled per scrape.
	// Always non-empty (the default tenant exists unconditionally).
	tenants []tenantGauges
}

// tenantGauges is one tenant's QoS reading at scrape time: the admission
// counter quartet, the live stream count against the quota, and the
// request latency distribution. slo rides along as a second metric label
// so per-class aggregation needs no join.
type tenantGauges struct {
	name      string
	slo       string
	admitted  uint64
	throttled uint64
	shed      uint64
	degraded  uint64
	streams   int64
	latency   obs.HistSnapshot
}

// ---- Prometheus text exposition ---------------------------------------------

// escapeLabel escapes a label VALUE per the Prometheus text format:
// backslash, double quote and newline. Label names here are all literals.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// emittedBuckets is the subset of histogram bucket indices exported to
// Prometheus: factor-4 steps from 1µs to ~17s. The in-memory histograms
// keep full 2× resolution (quantile estimates use it); the exposition
// coarsens to keep scrape size proportionate. Cumulative counts stay
// exact at every emitted bound because lower unemitted buckets fold into
// the first emitted one, and +Inf always closes the series.
var emittedBuckets = func() []int {
	var idx []int
	for i := 10; i <= 34; i += 2 {
		idx = append(idx, i)
	}
	return idx
}()

// formatLe renders a bucket bound the way Prometheus clients do: shortest
// float64 round-trip representation.
func formatLe(s float64) string { return strconv.FormatFloat(s, 'g', -1, 64) }

// writeHistogramFamily emits one histogram metric family with a single
// variable label. rows maps label value → snapshot, emitted in name order.
func writeHistogramFamily(w io.Writer, family, help, label string, names []string,
	snap func(string) obs.HistSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", family, help, family)
	for _, name := range names {
		s := snap(name)
		lv := escapeLabel(name)
		for _, i := range emittedBuckets {
			fmt.Fprintf(w, "%s_bucket{%s=\"%s\",le=\"%s\"} %d\n",
				family, label, lv, formatLe(obs.UpperBoundSeconds(i)), s.CumulativeCount(i))
		}
		fmt.Fprintf(w, "%s_bucket{%s=\"%s\",le=\"+Inf\"} %d\n", family, label, lv, s.Count)
		fmt.Fprintf(w, "%s_sum{%s=\"%s\"} %g\n", family, label, lv, s.SumSeconds())
		fmt.Fprintf(w, "%s_count{%s=\"%s\"} %d\n", family, label, lv, s.Count)
	}
}

// quantiles reported in /metrics and /v1/stats.
var reportedQuantiles = []struct {
	label string
	q     float64
}{{"0.5", 0.50}, {"0.95", 0.95}, {"0.99", 0.99}}

// write emits all metrics in the Prometheus text exposition format
// (version 0.0.4) using only the standard library.
func (m *metrics) write(w io.Writer, g gauges) {
	emit := func(help, typ, name string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, typ, name, v)
	}
	emit("Demand samples accepted across all streams.", "counter",
		"wcmd_samples_ingested_total", m.samples.Load())
	emit("Ingest batches accepted.", "counter",
		"wcmd_ingest_batches_total", m.batches.Load())
	emit("Ingest batches that surfaced a contract violation.", "counter",
		"wcmd_violating_batches_total", m.violatingBatches.Load())
	emit("Ingest batches decoded from the binary wire format.", "counter",
		"wcmd_ingest_binary_batches_total", m.binaryBatches.Load())
	emit("Query responses replayed from the version-keyed snapshot cache.", "counter",
		"wcmd_query_cache_hits_total", m.cacheHits.Load())
	emit("Query responses computed because no cached answer matched.", "counter",
		"wcmd_query_cache_misses_total", m.cacheMisses.Load())
	emit("Query responses actually rendered (misses minus singleflight sharing).", "counter",
		"wcmd_query_renders_total", m.renders.Load())
	emit("Singleflight calls that led the render for their key.", "counter",
		"wcmd_query_singleflight_leader_total", m.sfLeader.Load())
	emit("Singleflight calls that piggybacked on a concurrent render.", "counter",
		"wcmd_query_singleflight_shared_total", m.sfShared.Load())
	emit("Query requests answered in the binary response format.", "counter",
		"wcmd_query_binary_total", m.binaryQueries.Load())
	emit("Parameterized query cache maps restarted at the entry cap.", "counter",
		"wcmd_query_cache_epoch_resets_total", m.epochResets.Load())
	emit("Live streams.", "gauge", "wcmd_streams", g.streams)
	emit("Samples currently inside sliding windows, summed over streams.", "gauge",
		"wcmd_samples_in_window", g.inWindow)
	emit("Full batch re-extractions run as correctness anchors.", "counter",
		"wcmd_reextractions_total", g.reex)
	emit("Anchor re-extractions that disagreed with the incremental state (expect 0).",
		"counter", "wcmd_reextraction_drift_total", g.drift)
	emit("Contract violations observed, summed over streams.", "counter",
		"wcmd_contract_violations_total", g.violations)
	emit("Handler panics caught by the recovery barrier.", "counter",
		"wcmd_panics_total", m.panics.Load())
	emit("Responses served from a stale cached snapshot, marked degraded.", "counter",
		"wcmd_degraded_responses_total", m.degraded.Load())
	emit("Seconds since the server started.", "gauge",
		"wcmd_uptime_seconds", fmt.Sprintf("%.3f", time.Since(m.start).Seconds()))

	fmt.Fprintf(w, "# HELP wcmd_shed_total Requests turned away by the in-flight limiter, by endpoint class.\n"+
		"# TYPE wcmd_shed_total counter\n"+
		"wcmd_shed_total{class=\"ingest\"} %d\nwcmd_shed_total{class=\"read\"} %d\n",
		g.shedIngest, g.shedRead)
	fmt.Fprintf(w, "# HELP wcmd_inflight_limit Configured in-flight request cap, by endpoint class (0 = unlimited).\n"+
		"# TYPE wcmd_inflight_limit gauge\n"+
		"wcmd_inflight_limit{class=\"ingest\"} %d\nwcmd_inflight_limit{class=\"read\"} %d\n",
		g.limitIngest, g.limitRead)
	fmt.Fprintf(w, "# HELP wcmd_inflight_requests Currently executing requests, by endpoint class.\n"+
		"# TYPE wcmd_inflight_requests gauge\n"+
		"wcmd_inflight_requests{class=\"ingest\"} %d\nwcmd_inflight_requests{class=\"read\"} %d\n",
		g.inflightIngest, g.inflightRead)

	if s := m.coalesce.Snapshot(); s.Count > 0 || g.queueDepths != nil {
		fmt.Fprintf(w, "# HELP wcmd_ingest_coalesce_batches Ingest batches fused per async worker wakeup (1 = no coalescing).\n"+
			"# TYPE wcmd_ingest_coalesce_batches histogram\n")
		for i := 0; i < obs.CountNumBuckets; i++ {
			fmt.Fprintf(w, "wcmd_ingest_coalesce_batches_bucket{le=\"%s\"} %d\n",
				formatLe(obs.CountUpperBound(i)), s.CumulativeCount(i))
		}
		fmt.Fprintf(w, "wcmd_ingest_coalesce_batches_bucket{le=\"+Inf\"} %d\n", s.Count)
		fmt.Fprintf(w, "wcmd_ingest_coalesce_batches_sum %d\n", s.Sum)
		fmt.Fprintf(w, "wcmd_ingest_coalesce_batches_count %d\n", s.Count)
	}
	if s := m.batchStreams.Snapshot(); s.Count > 0 {
		fmt.Fprintf(w, "# HELP wcmd_query_batch_streams Streams answered per /v1/query request.\n"+
			"# TYPE wcmd_query_batch_streams histogram\n")
		for i := 0; i < obs.CountNumBuckets; i++ {
			fmt.Fprintf(w, "wcmd_query_batch_streams_bucket{le=\"%s\"} %d\n",
				formatLe(obs.CountUpperBound(i)), s.CumulativeCount(i))
		}
		fmt.Fprintf(w, "wcmd_query_batch_streams_bucket{le=\"+Inf\"} %d\n", s.Count)
		fmt.Fprintf(w, "wcmd_query_batch_streams_sum %d\n", s.Sum)
		fmt.Fprintf(w, "wcmd_query_batch_streams_count %d\n", s.Count)
	}
	if g.queueDepths != nil {
		fmt.Fprintf(w, "# HELP wcmd_ingest_queue_depth Enqueued ingest jobs waiting in each shard's ring at scrape time.\n"+
			"# TYPE wcmd_ingest_queue_depth gauge\n")
		for i, d := range g.queueDepths {
			fmt.Fprintf(w, "wcmd_ingest_queue_depth{shard=\"%d\"} %d\n", i, d)
		}
	}

	if g.trace != nil {
		emit("Finished traces retained by tail-based sampling.", "counter",
			"wcmd_trace_kept_total", g.trace.kept)
		emit("Finished traces discarded (ordinary and not sampled).", "counter",
			"wcmd_trace_dropped_total", g.trace.dropped)
		emit("Traces kept by the 1-in-N sampler alone (no anomaly).", "counter",
			"wcmd_trace_sampled_total", g.trace.sampled)
		emit("Stored traces evicted to keep the store inside its byte cap.", "counter",
			"wcmd_trace_evicted_total", g.trace.evicted)
		emit("Spans dropped because a trace hit its span cap.", "counter",
			"wcmd_trace_truncated_spans_total", g.trace.truncated)
		emit("Bytes currently retained by the trace store.", "gauge",
			"wcmd_trace_store_bytes", g.trace.storeBytes)
		emit("Hard cap on trace store memory (oldest traces evicted).", "gauge",
			"wcmd_trace_store_bytes_limit", g.trace.storeLimit)
		if s := m.traceSpans.Snapshot(); s.Count > 0 {
			fmt.Fprintf(w, "# HELP wcmd_trace_spans Spans recorded per traced request.\n"+
				"# TYPE wcmd_trace_spans histogram\n")
			for i := 0; i < obs.CountNumBuckets; i++ {
				fmt.Fprintf(w, "wcmd_trace_spans_bucket{le=\"%s\"} %d\n",
					formatLe(obs.CountUpperBound(i)), s.CumulativeCount(i))
			}
			fmt.Fprintf(w, "wcmd_trace_spans_bucket{le=\"+Inf\"} %d\n", s.Count)
			fmt.Fprintf(w, "wcmd_trace_spans_sum %d\n", s.Sum)
			fmt.Fprintf(w, "wcmd_trace_spans_count %d\n", s.Count)
		}
	}

	if len(g.tenants) > 0 {
		tenantCounter := func(family, help string, v func(tenantGauges) uint64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", family, help, family)
			for _, t := range g.tenants {
				fmt.Fprintf(w, "%s{tenant=\"%s\",slo=\"%s\"} %d\n",
					family, escapeLabel(t.name), escapeLabel(t.slo), v(t))
			}
		}
		tenantCounter("wcmd_tenant_admitted_total",
			"Requests that passed tenant rate admission, by tenant and SLO class.",
			func(t tenantGauges) uint64 { return t.admitted })
		tenantCounter("wcmd_tenant_throttled_total",
			"Requests rejected by the tenant's token bucket, by tenant and SLO class.",
			func(t tenantGauges) uint64 { return t.throttled })
		tenantCounter("wcmd_tenant_shed_total",
			"Requests turned away by SLO-ordered in-flight shedding, by tenant and SLO class.",
			func(t tenantGauges) uint64 { return t.shed })
		tenantCounter("wcmd_tenant_degraded_total",
			"Throttled or shed reads still answered from the cached degraded path, by tenant and SLO class.",
			func(t tenantGauges) uint64 { return t.degraded })
		fmt.Fprintf(w, "# HELP wcmd_tenant_streams Live streams owned by each tenant.\n"+
			"# TYPE wcmd_tenant_streams gauge\n")
		for _, t := range g.tenants {
			fmt.Fprintf(w, "wcmd_tenant_streams{tenant=\"%s\",slo=\"%s\"} %d\n",
				escapeLabel(t.name), escapeLabel(t.slo), t.streams)
		}
		fmt.Fprintf(w, "# HELP wcmd_tenant_request_latency_seconds Handler latency distribution, by tenant and SLO class.\n"+
			"# TYPE wcmd_tenant_request_latency_seconds histogram\n")
		for _, t := range g.tenants {
			lt, ls := escapeLabel(t.name), escapeLabel(t.slo)
			for _, i := range emittedBuckets {
				fmt.Fprintf(w, "wcmd_tenant_request_latency_seconds_bucket{tenant=\"%s\",slo=\"%s\",le=\"%s\"} %d\n",
					lt, ls, formatLe(obs.UpperBoundSeconds(i)), t.latency.CumulativeCount(i))
			}
			fmt.Fprintf(w, "wcmd_tenant_request_latency_seconds_bucket{tenant=\"%s\",slo=\"%s\",le=\"+Inf\"} %d\n",
				lt, ls, t.latency.Count)
			fmt.Fprintf(w, "wcmd_tenant_request_latency_seconds_sum{tenant=\"%s\",slo=\"%s\"} %g\n",
				lt, ls, t.latency.SumSeconds())
			fmt.Fprintf(w, "wcmd_tenant_request_latency_seconds_count{tenant=\"%s\",slo=\"%s\"} %d\n",
				lt, ls, t.latency.Count)
		}
	}

	if g.wal != nil {
		emit("Bytes appended to the write-ahead log.", "counter",
			"wcmd_wal_bytes_total", g.wal.bytes)
		emit("Records appended to the write-ahead log.", "counter",
			"wcmd_wal_appends_total", g.wal.appends)
		emit("Group-commit fsyncs of WAL segments.", "counter",
			"wcmd_wal_fsyncs_total", g.wal.fsyncs)
		emit("Torn WAL tails truncated during recovery (expect 0 or 1 per crash).", "counter",
			"wcmd_wal_torn_tails_total", g.wal.torn)
		emit("Ingest batches replayed from the WAL at boot.", "counter",
			"wcmd_recovery_replayed_batches", g.wal.replayedBatches)
		emit("Demand samples replayed from the WAL at boot.", "counter",
			"wcmd_recovery_replayed_samples", g.wal.replayedSamples)
		emit("Streams restored from snapshots and WAL replay at boot.", "counter",
			"wcmd_recovery_streams", g.wal.recoveredStreams)
		clean := 0
		if g.wal.cleanStart {
			clean = 1
		}
		emit("Whether this boot found a clean-shutdown marker (1) or ran crash recovery (0).",
			"gauge", "wcmd_wal_clean_start", clean)
	}

	fmt.Fprintf(w, "# HELP wcmd_build_info Build metadata; the value is always 1.\n"+
		"# TYPE wcmd_build_info gauge\n"+
		"wcmd_build_info{go_version=\"%s\",version=\"%s\",revision=\"%s\"} 1\n",
		escapeLabel(m.build.goVersion), escapeLabel(m.build.version), escapeLabel(m.build.revision))

	fmt.Fprintf(w, "# HELP wcmd_requests_total Requests served, by endpoint.\n# TYPE wcmd_requests_total counter\n")
	for _, name := range m.epNames {
		fmt.Fprintf(w, "wcmd_requests_total{endpoint=\"%s\"} %d\n",
			escapeLabel(name), m.endpoints[name].requests.Load())
	}
	fmt.Fprintf(w, "# HELP wcmd_request_errors_total Responses with status >= 400, by endpoint.\n# TYPE wcmd_request_errors_total counter\n")
	for _, name := range m.epNames {
		fmt.Fprintf(w, "wcmd_request_errors_total{endpoint=\"%s\"} %d\n",
			escapeLabel(name), m.endpoints[name].errors.Load())
	}

	writeHistogramFamily(w, "wcmd_request_latency_seconds",
		"Handler latency distribution, by endpoint.", "endpoint", m.epNames,
		func(name string) obs.HistSnapshot { return m.endpoints[name].latency.Snapshot() })
	fmt.Fprintf(w, "# HELP wcmd_request_latency_quantile_seconds Estimated handler latency quantiles, by endpoint.\n"+
		"# TYPE wcmd_request_latency_quantile_seconds gauge\n")
	for _, name := range m.epNames {
		s := m.endpoints[name].latency.Snapshot()
		for _, rq := range reportedQuantiles {
			fmt.Fprintf(w, "wcmd_request_latency_quantile_seconds{endpoint=\"%s\",quantile=\"%s\"} %g\n",
				escapeLabel(name), rq.label, s.Quantile(rq.q))
		}
	}

	writeHistogramFamily(w, "wcmd_stage_latency_seconds",
		"Hot-path stage latency distribution (decode/update/render, cache hit/miss).",
		"stage", stageNames,
		func(name string) obs.HistSnapshot { return m.stages[name].Snapshot() })
}
