package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// metrics holds the service's counters. Per-endpoint stats are plain atomics
// updated on the request path; gauges derived from stream state are computed
// at scrape time by the /metrics handler (see Server.handleMetrics), so the
// hot path never touches them.
type metrics struct {
	start   time.Time
	samples atomic.Uint64 // demand samples accepted
	batches atomic.Uint64 // ingest batches accepted
	// ingest batches whose result carried a fresh contract violation
	violatingBatches atomic.Uint64
	binaryBatches    atomic.Uint64 // ingest batches decoded from the binary format
	cacheHits        atomic.Uint64 // query responses replayed from the version-keyed cache
	cacheMisses      atomic.Uint64 // query responses that had to be computed

	mu        sync.Mutex
	endpoints map[string]*endpointStats
}

// endpointStats accumulates request-path counters for one route.
type endpointStats struct {
	requests  atomic.Uint64
	errors    atomic.Uint64 // responses with status ≥ 400
	latencyNs atomic.Int64  // sum of handler latencies
	maxNs     atomic.Int64  // worst handler latency seen
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), endpoints: make(map[string]*endpointStats)}
}

// endpoint returns (registering if needed) the stats cell for a route. Called
// once per route at mux construction, so the map is effectively read-only
// afterwards.
func (m *metrics) endpoint(name string) *endpointStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	ep := m.endpoints[name]
	if ep == nil {
		ep = &endpointStats{}
		m.endpoints[name] = ep
	}
	return ep
}

func (ep *endpointStats) observe(d time.Duration, status int) {
	ep.requests.Add(1)
	if status >= 400 {
		ep.errors.Add(1)
	}
	ns := d.Nanoseconds()
	ep.latencyNs.Add(ns)
	for {
		cur := ep.maxNs.Load()
		if ns <= cur || ep.maxNs.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// gauges are scrape-time values aggregated over all live streams.
type gauges struct {
	streams    int64
	inWindow   int64
	reex       int64
	drift      int64
	violations int64
}

// write emits all metrics in the Prometheus text exposition format
// (version 0.0.4) using only the standard library.
func (m *metrics) write(w io.Writer, g gauges) {
	emit := func(help, typ, name string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, typ, name, v)
	}
	emit("Demand samples accepted across all streams.", "counter",
		"wcmd_samples_ingested_total", m.samples.Load())
	emit("Ingest batches accepted.", "counter",
		"wcmd_ingest_batches_total", m.batches.Load())
	emit("Ingest batches that surfaced a contract violation.", "counter",
		"wcmd_violating_batches_total", m.violatingBatches.Load())
	emit("Ingest batches decoded from the binary wire format.", "counter",
		"wcmd_ingest_binary_batches_total", m.binaryBatches.Load())
	emit("Query responses replayed from the version-keyed snapshot cache.", "counter",
		"wcmd_query_cache_hits_total", m.cacheHits.Load())
	emit("Query responses computed because no cached answer matched.", "counter",
		"wcmd_query_cache_misses_total", m.cacheMisses.Load())
	emit("Live streams.", "gauge", "wcmd_streams", g.streams)
	emit("Samples currently inside sliding windows, summed over streams.", "gauge",
		"wcmd_samples_in_window", g.inWindow)
	emit("Full batch re-extractions run as correctness anchors.", "counter",
		"wcmd_reextractions_total", g.reex)
	emit("Anchor re-extractions that disagreed with the incremental state (expect 0).",
		"counter", "wcmd_reextraction_drift_total", g.drift)
	emit("Contract violations observed, summed over streams.", "counter",
		"wcmd_contract_violations_total", g.violations)
	emit("Seconds since the server started.", "gauge",
		"wcmd_uptime_seconds", fmt.Sprintf("%.3f", time.Since(m.start).Seconds()))

	names := make([]string, 0, len(m.endpoints))
	m.mu.Lock()
	for name := range m.endpoints {
		names = append(names, name)
	}
	m.mu.Unlock()
	sort.Strings(names)

	fmt.Fprintf(w, "# HELP wcmd_requests_total Requests served, by endpoint.\n# TYPE wcmd_requests_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "wcmd_requests_total{endpoint=%q} %d\n", name, m.endpoints[name].requests.Load())
	}
	fmt.Fprintf(w, "# HELP wcmd_request_errors_total Responses with status >= 400, by endpoint.\n# TYPE wcmd_request_errors_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "wcmd_request_errors_total{endpoint=%q} %d\n", name, m.endpoints[name].errors.Load())
	}
	fmt.Fprintf(w, "# HELP wcmd_request_latency_ns_total Summed handler latency in nanoseconds, by endpoint.\n# TYPE wcmd_request_latency_ns_total counter\n")
	for _, name := range names {
		fmt.Fprintf(w, "wcmd_request_latency_ns_total{endpoint=%q} %d\n", name, m.endpoints[name].latencyNs.Load())
	}
	fmt.Fprintf(w, "# HELP wcmd_request_latency_ns_max Worst handler latency in nanoseconds, by endpoint.\n# TYPE wcmd_request_latency_ns_max gauge\n")
	for _, name := range names {
		fmt.Fprintf(w, "wcmd_request_latency_ns_max{endpoint=%q} %d\n", name, m.endpoints[name].maxNs.Load())
	}
}
