package server

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"wcm/internal/stream"
)

// asyncTestConfig builds a server config with the async ingest pipeline on,
// sized small enough that coalescing and ring-full paths are reachable.
func asyncTestConfig(sc stream.Config) Config {
	return Config{
		Shards:         4,
		Stream:         sc,
		IngestRing:     16,
		CoalesceBudget: 8,
	}
}

// rawReq performs one request and returns status plus the exact body bytes.
func rawReq(t *testing.T, method, url, contentType string, body []byte) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestAsyncIngestDifferential drives a synchronous server and an async-
// pipeline server through the same deterministic request schedule — valid
// batches, malformed batches, contract violations, binary-format bodies,
// multiple streams — and requires every response, and every final query
// answer, to be byte-identical. This is the end-to-end counterpart of the
// stream-level IngestBatches differential: it proves the enqueue → worker →
// coalesced-apply → render path preserves the synchronous API exactly.
func TestAsyncIngestDifferential(t *testing.T) {
	sc := stream.Config{Window: 64, MaxK: 16, ReextractEvery: 13}
	syncTS := newTestServer(t, Config{Shards: 4, Stream: sc})
	asyncSrv, err := New(asyncTestConfig(sc))
	if err != nil {
		t.Fatal(err)
	}
	defer asyncSrv.Close()
	asyncTS := httptest.NewServer(asyncSrv.Handler())
	defer asyncTS.Close()

	rng := rand.New(rand.NewSource(7))
	ids := []string{"alpha", "beta", "gamma"}
	lastT := map[string]int64{}

	type step struct {
		method, path, ct string
		body             []byte
	}
	var steps []step
	// A tight contract on beta so violating batches exercise the violation
	// response shape through the async path.
	steps = append(steps, step{"POST", "/v1/streams/beta/contract", "",
		[]byte(`{"upper":[0,5,9],"lower":[0,0,0],"window":8}`)})
	for i := 0; i < 120; i++ {
		id := ids[rng.Intn(len(ids))]
		n := 1 + rng.Intn(6)
		ts := make([]int64, n)
		ds := make([]int64, n)
		for j := range ts {
			lastT[id] += 1 + int64(rng.Intn(5))
			ts[j] = lastT[id]
			ds[j] = int64(rng.Intn(8))
		}
		switch i % 10 {
		case 3: // timestamp regression → 400
			ts[n-1] = ts[0] - 1
		case 6: // negative demand → 400
			ds[0] = -4
		case 9: // column length mismatch → 400
			ds = ds[:0]
		}
		st := step{method: "POST", path: "/v1/streams/" + id + "/ingest"}
		if i%4 == 0 {
			st.ct = ContentTypeBinary
			st.body = AppendBinaryBatch(nil, ts, ds)
			if len(ds) == 0 { // binary format can't express a mismatch; corrupt instead
				st.body = st.body[:len(st.body)-3]
			}
		} else {
			st.body = []byte(fmt.Sprintf(`{"t":%s,"demand":%s}`, jsonInts(ts), jsonInts(ds)))
		}
		steps = append(steps, st)
	}

	for i, st := range steps {
		ss, sb := rawReq(t, st.method, syncTS.URL+st.path, st.ct, st.body)
		as, ab := rawReq(t, st.method, asyncTS.URL+st.path, st.ct, st.body)
		if ss != as || !bytes.Equal(sb, ab) {
			t.Fatalf("step %d %s: sync %d %q, async %d %q", i, st.path, ss, sb, as, ab)
		}
	}
	for _, id := range ids {
		for _, q := range []string{"/curves", "/verdict"} {
			ss, sb := rawReq(t, "GET", syncTS.URL+"/v1/streams/"+id+q, "", nil)
			as, ab := rawReq(t, "GET", asyncTS.URL+"/v1/streams/"+id+q, "", nil)
			if ss != as || !bytes.Equal(sb, ab) {
				t.Fatalf("%s%s: sync %d %q, async %d %q", id, q, ss, sb, as, ab)
			}
		}
	}
}

// TestAsyncConcurrentIngest hammers the pipeline from many goroutines —
// several streams per shard so one worker wakeup sees multiple groups, and
// enough concurrency that batches genuinely coalesce — then checks global
// consistency: every accepted sample is visible in its stream's total, and
// the worker-side metrics agree with the responses the clients saw.
func TestAsyncConcurrentIngest(t *testing.T) {
	sc := stream.Config{Window: 64, MaxK: 8, ReextractEvery: 17}
	srv, err := New(asyncTestConfig(sc))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const goroutines = 8
	const batches = 30
	var accepted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("s%d", g) // one stream per goroutine: order stays deterministic
			for i := 0; i < batches; i++ {
				base := int64(i * 4)
				body := fmt.Sprintf(`{"t":[%d,%d,%d],"demand":[1,2,3]}`, base+1, base+2, base+3)
				resp, err := http.Post(ts.URL+"/v1/streams/"+id+"/ingest", "application/json", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("stream %s batch %d: status %d", id, i, resp.StatusCode)
					return
				}
				accepted.Add(3)
			}
		}(g)
	}
	wg.Wait()

	var total int64
	for g := 0; g < goroutines; g++ {
		status, m := doJSON(t, "GET", ts.URL+fmt.Sprintf("/v1/streams/s%d/verdict", g), "")
		if status != http.StatusOK {
			t.Fatalf("verdict s%d: status %d", g, status)
		}
		total += int64(m["total"].(float64))
	}
	if total != accepted.Load() {
		t.Fatalf("streams hold %d samples, clients were acked %d", total, accepted.Load())
	}
	if got := srv.metrics.samples.Load(); int64(got) != accepted.Load() {
		t.Fatalf("samples counter %d, acked %d", got, accepted.Load())
	}
	if srv.metrics.coalesce.Count() == 0 {
		t.Fatal("coalesce histogram saw no drains")
	}
}

// TestShutdownDrainsInflight closes the server while ingests are in flight
// and verifies the drain contract: every batch a client got a 200 for is
// present in stream state afterwards, no handler hangs, and post-Close
// ingests still succeed via the synchronous fallback.
func TestShutdownDrainsInflight(t *testing.T) {
	sc := stream.Config{Window: 64, MaxK: 8}
	srv, err := New(asyncTestConfig(sc))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const goroutines = 6
	var acked [goroutines]int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			id := fmt.Sprintf("d%d", g)
			for i := 0; ; i++ {
				base := int64(i * 3)
				body := fmt.Sprintf(`{"t":[%d,%d],"demand":[1,1]}`, base+1, base+2)
				resp, err := http.Post(ts.URL+"/v1/streams/"+id+"/ingest", "application/json", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("stream %s batch %d: status %d", id, i, resp.StatusCode)
					return
				}
				acked[g] += 2
				if i >= 40 { // enough iterations that Close lands mid-traffic
					return
				}
			}
		}(g)
	}
	close(start)
	srv.Close() // races the in-flight ingests on purpose
	wg.Wait()

	for g := 0; g < goroutines; g++ {
		status, m := doJSON(t, "GET", ts.URL+fmt.Sprintf("/v1/streams/d%d/verdict", g), "")
		if status != http.StatusOK {
			t.Fatalf("verdict d%d: status %d", g, status)
		}
		if total := int64(m["total"].(float64)); total != acked[g] {
			t.Fatalf("stream d%d holds %d samples, client was acked %d", g, total, acked[g])
		}
	}

	// The pipeline is gone; ingest must keep working synchronously.
	status, m := doJSON(t, "POST", ts.URL+"/v1/streams/late/ingest", `{"t":[1,2],"demand":[5,5]}`)
	if status != http.StatusOK || m["accepted"].(float64) != 2 {
		t.Fatalf("post-Close ingest: status %d, body %v", status, m)
	}
	srv.Close() // idempotent
}

// TestAsyncMetricsExposition checks the pipeline's scrape-time surface:
// the coalesce histogram and the per-shard queue-depth gauge appear when
// the pipeline is on, and neither leaks into a synchronous server's scrape.
func TestAsyncMetricsExposition(t *testing.T) {
	sc := stream.Config{Window: 32, MaxK: 8}
	srv, err := New(asyncTestConfig(sc))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, _ := doJSON(t, "POST", ts.URL+"/v1/streams/m/ingest", `{"t":[1,2,3],"demand":[4,5,6]}`)
	if status != http.StatusOK {
		t.Fatalf("ingest: status %d", status)
	}
	body := string(getBody(t, ts.URL+"/metrics"))
	for _, want := range []string{
		"wcmd_ingest_coalesce_batches_count 1",
		`wcmd_ingest_coalesce_batches_bucket{le="1"} 1`,
		`wcmd_ingest_queue_depth{shard="0"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("async /metrics missing %q", want)
		}
	}

	syncTS := newTestServer(t, Config{Stream: sc})
	body = string(getBody(t, syncTS.URL+"/metrics"))
	if strings.Contains(body, "wcmd_ingest_queue_depth") {
		t.Error("sync /metrics exposes queue depth")
	}
}

// TestAsyncConfigValidation: negative pipeline knobs must fail at startup.
func TestAsyncConfigValidation(t *testing.T) {
	for _, cfg := range []Config{{IngestRing: -1}, {CoalesceBudget: -1}} {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	// CoalesceBudget without IngestRing is inert but legal.
	if _, err := New(Config{CoalesceBudget: 4}); err != nil {
		t.Fatal(err)
	}
}
