package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestPprofGating: the profiling endpoints exist only when explicitly
// enabled — the default mux must not expose them.
func TestPprofGating(t *testing.T) {
	for _, tc := range []struct {
		enable bool
		want   int
	}{
		{enable: false, want: http.StatusNotFound},
		{enable: true, want: http.StatusOK},
	} {
		s, err := New(Config{EnablePprof: tc.enable})
		if err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest("GET", "/debug/pprof/", nil)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != tc.want {
			t.Fatalf("EnablePprof=%v: GET /debug/pprof/ = %d, want %d", tc.enable, rec.Code, tc.want)
		}
		// The service endpoints are untouched either way.
		req = httptest.NewRequest("GET", "/healthz", nil)
		rec = httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("EnablePprof=%v: /healthz = %d", tc.enable, rec.Code)
		}
	}
}
