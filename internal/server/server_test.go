package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"wcm/internal/kernel"
	"wcm/internal/stream"
)

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func doJSON(t *testing.T, method, url string, body string) (int, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("%s %s: non-JSON body %q", method, url, raw)
		}
	}
	return resp.StatusCode, m
}

func TestNewValidatesConfig(t *testing.T) {
	for _, cfg := range []Config{
		{Shards: -3},
		{MaxBodyBytes: -1},
		{Stream: stream.Config{Window: 1}},
	} {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.shards) != DefaultShards || s.cfg.MaxBodyBytes != DefaultMaxBodyBytes {
		t.Fatalf("defaults not applied: %d shards, %d bytes", len(s.shards), s.cfg.MaxBodyBytes)
	}
}

// TestEndpointFlow drives the full API surface of one stream: ingest →
// curves → check → minfreq → contract → verdict → list → delete.
func TestEndpointFlow(t *testing.T) {
	ts := newTestServer(t, Config{Stream: stream.Config{Window: 64, MaxK: 16}})

	// Ingest: period 100ns, demands 5/7/6/9 cycles.
	code, m := doJSON(t, "POST", ts.URL+"/v1/streams/cam/ingest",
		`{"t":[0,100,200,300],"demand":[5,7,6,9]}`)
	if code != http.StatusOK {
		t.Fatalf("ingest: %d %v", code, m)
	}
	if m["accepted"].(float64) != 4 || m["total"].(float64) != 4 || m["drift"].(float64) != 0 {
		t.Fatalf("ingest response %v", m)
	}

	// Curves: γᵘ(2) = 7+6... actually max over windows of len 2: max(12,13,15)=15.
	code, m = doJSON(t, "GET", ts.URL+"/v1/streams/cam/curves", "")
	if code != http.StatusOK {
		t.Fatalf("curves: %d %v", code, m)
	}
	upper := m["upper"].([]any)
	if len(upper) != 5 || upper[1].(float64) != 9 || upper[2].(float64) != 15 {
		t.Fatalf("upper = %v", upper)
	}
	if m["in_window"].(float64) != 4 {
		t.Fatalf("in_window = %v", m["in_window"])
	}
	dmin := m["dmin"].([]any)
	if len(dmin) != 4 || dmin[1].(float64) != 100 || dmin[3].(float64) != 300 {
		t.Fatalf("dmin = %v", dmin)
	}

	// Check (eq. 8): worst density is ~9 cycles / 100 ns ⇒ 0.15 GHz plenty,
	// 1e-3 Hz hopeless.
	code, m = doJSON(t, "POST", ts.URL+"/v1/streams/cam/check",
		`{"freq_hz":150000000,"latency_ns":0,"buffer":1}`)
	if code != http.StatusOK || m["ok"] != true {
		t.Fatalf("check fast: %d %v", code, m)
	}
	code, m = doJSON(t, "POST", ts.URL+"/v1/streams/cam/check",
		`{"freq_hz":0.001,"buffer":0}`)
	if code != http.StatusOK || m["ok"] != false {
		t.Fatalf("check slow: %d %v", code, m)
	}

	// MinFreq (eq. 9/10): γ-based bound never exceeds WCET-based.
	code, m = doJSON(t, "GET", ts.URL+"/v1/streams/cam/minfreq?b=1", "")
	if code != http.StatusOK {
		t.Fatalf("minfreq: %d %v", code, m)
	}
	if m["gamma_hz"].(float64) <= 0 || m["gamma_hz"].(float64) > m["wcet_hz"].(float64) {
		t.Fatalf("minfreq response %v", m)
	}
	if m["buffer"].(float64) != 1 {
		t.Fatalf("buffer echo %v", m["buffer"])
	}

	// Contract + verdict: generous bounds stay admitted...
	code, m = doJSON(t, "POST", ts.URL+"/v1/streams/cam/contract",
		`{"upper":[0,100,200],"lower":[0,0,0]}`)
	if code != http.StatusOK || m["window"].(float64) != 2 {
		t.Fatalf("contract: %d %v", code, m)
	}
	code, m = doJSON(t, "POST", ts.URL+"/v1/streams/cam/ingest",
		`{"t":[400,500],"demand":[8,8]}`)
	if code != http.StatusOK || m["violation"] != nil {
		t.Fatalf("healthy ingest: %d %v", code, m)
	}
	code, m = doJSON(t, "GET", ts.URL+"/v1/streams/cam/verdict", "")
	if code != http.StatusOK || m["admitted"] != true || m["contract_set"] != true {
		t.Fatalf("verdict healthy: %d %v", code, m)
	}
	// ...and a burst beyond γᵘ(1)=100 flips the verdict.
	code, m = doJSON(t, "POST", ts.URL+"/v1/streams/cam/ingest",
		`{"t":[600],"demand":[1000]}`)
	if code != http.StatusOK || m["violation"] == nil {
		t.Fatalf("violating ingest: %d %v", code, m)
	}
	code, m = doJSON(t, "GET", ts.URL+"/v1/streams/cam/verdict", "")
	if code != http.StatusOK || m["admitted"] != false {
		t.Fatalf("verdict violated: %d %v", code, m)
	}
	fv := m["first_violation"].(map[string]any)
	if fv["upper"] != true || fv["sum"].(float64) != 1000 {
		t.Fatalf("first_violation = %v", fv)
	}

	// List and delete.
	code, m = doJSON(t, "GET", ts.URL+"/v1/streams", "")
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	streams := m["streams"].([]any)
	if len(streams) != 1 || streams[0].(map[string]any)["id"] != "cam" {
		t.Fatalf("list = %v", streams)
	}
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/streams/cam", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	code, _ = doJSON(t, "GET", ts.URL+"/v1/streams/cam/curves", "")
	if code != http.StatusNotFound {
		t.Fatalf("curves after delete: %d", code)
	}
}

func TestErrorPaths(t *testing.T) {
	ts := newTestServer(t, Config{
		MaxBodyBytes: 128,
		Stream:       stream.Config{Window: 16, MaxK: 4},
	})

	// 404: unknown stream for every read endpoint; delete of a ghost.
	for _, url := range []string{
		ts.URL + "/v1/streams/ghost/curves",
		ts.URL + "/v1/streams/ghost/minfreq",
		ts.URL + "/v1/streams/ghost/verdict",
	} {
		if code, _ := doJSON(t, "GET", url, ""); code != http.StatusNotFound {
			t.Fatalf("%s: %d", url, code)
		}
	}
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/streams/ghost", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delete ghost: %d", resp.StatusCode)
	}

	// 400: malformed JSON, unknown fields, mismatched arrays, bad batches.
	for _, body := range []string{
		`{not json`,
		`{"t":[1],"demand":[1],"extra":true}`,
		`{"t":[1],"demand":[1]} trailing`,
		`{"t":[],"demand":[]}`,
		`{"t":[1,2],"demand":[1]}`,
		`{"t":[5,3],"demand":[1,1]}`,
		`{"t":[1],"demand":[-4]}`,
	} {
		code, m := doJSON(t, "POST", ts.URL+"/v1/streams/s/ingest", body)
		if code != http.StatusBadRequest {
			t.Fatalf("body %q: %d %v", body, code, m)
		}
		if m["error"] == "" {
			t.Fatalf("body %q: no error message", body)
		}
	}
	// A rejected batch must not have created state.
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/streams/s/verdict", ""); code != http.StatusNotFound {
		t.Fatalf("stream created by rejected ingest: %d", code)
	}

	// 400: bad check/minfreq/contract parameters.
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/streams/s/check", `{"freq_hz":-1}`); code != http.StatusBadRequest {
		t.Fatalf("check bad freq: %d", code)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/streams/s/minfreq?b=nope", ""); code != http.StatusBadRequest {
		t.Fatalf("minfreq bad b: %d", code)
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/streams/s/contract", `{"upper":[5,1],"lower":[0]}`); code != http.StatusBadRequest {
		t.Fatalf("contract non-monotone upper: %d", code)
	}

	// 409: analyses on a stream with too little data.
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/streams/one/ingest", `{"t":[10],"demand":[3]}`); code != http.StatusOK {
		t.Fatalf("single-sample ingest: %d", code)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/streams/one/minfreq", ""); code != http.StatusConflict {
		t.Fatalf("minfreq on 1 sample: %d", code)
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/streams/one/check", `{"freq_hz":1e9}`); code != http.StatusConflict {
		t.Fatalf("check on 1 sample: %d", code)
	}

	// 413: body over the limit.
	big := fmt.Sprintf(`{"t":[%s1],"demand":[1]}`, strings.Repeat("1,", 200))
	code, m := doJSON(t, "POST", ts.URL+"/v1/streams/s/ingest", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d %v", code, m)
	}
}

// TestConcurrentIngestDifferential hammers many streams from many goroutines
// across shard counts, then pins every stream's served curves against a
// fresh batch extraction through internal/kernel — the service-level version
// of the stream package's differential test. Run with -race.
func TestConcurrentIngestDifferential(t *testing.T) {
	for _, shards := range []int{1, 3, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			const (
				nStreams = 8
				nBatches = 20
				batchLen = 7
				window   = 32
				maxK     = 8
			)
			ts := newTestServer(t, Config{
				Shards: shards,
				Stream: stream.Config{Window: window, MaxK: maxK, ReextractEvery: 13},
			})

			// Per-stream reference traces, generated up front.
			traces := make([][2][]int64, nStreams)
			for i := range traces {
				rng := rand.New(rand.NewSource(int64(1000*shards + i)))
				n := nBatches * batchLen
				tsv := make([]int64, n)
				dv := make([]int64, n)
				var now int64
				for j := 0; j < n; j++ {
					now += int64(rng.Intn(40))
					tsv[j] = now
					dv[j] = int64(rng.Intn(500))
				}
				traces[i] = [2][]int64{tsv, dv}
			}

			var wg sync.WaitGroup
			errc := make(chan error, nStreams)
			for i := 0; i < nStreams; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					tsv, dv := traces[i][0], traces[i][1]
					for b := 0; b < nBatches; b++ {
						lo, hi := b*batchLen, (b+1)*batchLen
						body, _ := json.Marshal(map[string][]int64{
							"t": tsv[lo:hi], "demand": dv[lo:hi],
						})
						resp, err := http.Post(
							fmt.Sprintf("%s/v1/streams/s%d/ingest", ts.URL, i),
							"application/json", bytes.NewReader(body))
						if err != nil {
							errc <- err
							return
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							errc <- fmt.Errorf("stream %d batch %d: status %d", i, b, resp.StatusCode)
							return
						}
					}
				}(i)
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}

			// Differential: served curves must equal a batch re-extraction of
			// each stream's window.
			for i := 0; i < nStreams; i++ {
				code, m := doJSON(t, "GET", fmt.Sprintf("%s/v1/streams/s%d/curves", ts.URL, i), "")
				if code != http.StatusOK {
					t.Fatalf("stream %d curves: %d", i, code)
				}
				tsv, dv := traces[i][0], traces[i][1]
				tail := dv[len(dv)-window:]
				prefix := make([]int64, window+1)
				for j, v := range tail {
					prefix[j+1] = prefix[j] + v
				}
				wantUp, wantLo, err := kernel.Extract(prefix, maxK, kernel.Options{})
				if err != nil {
					t.Fatal(err)
				}
				wantDmax, wantDmin, err := kernel.Extract(tsv[len(tsv)-window:], maxK-1, kernel.Options{})
				if err != nil {
					t.Fatal(err)
				}
				gotUp := m["upper"].([]any)
				gotLo := m["lower"].([]any)
				for k := 0; k <= maxK; k++ {
					if int64(gotUp[k].(float64)) != wantUp[k] || int64(gotLo[k].(float64)) != wantLo[k] {
						t.Fatalf("stream %d k=%d: served (%v,%v), want (%d,%d)",
							i, k, gotUp[k], gotLo[k], wantUp[k], wantLo[k])
					}
				}
				gotDmin := m["dmin"].([]any)
				gotDmax := m["dmax"].([]any)
				for k := 1; k < maxK; k++ {
					if int64(gotDmin[k].(float64)) != wantDmin[k] || int64(gotDmax[k].(float64)) != wantDmax[k] {
						t.Fatalf("stream %d span k=%d: served (%v,%v), want (%d,%d)",
							i, k+1, gotDmin[k], gotDmax[k], wantDmin[k], wantDmax[k])
					}
				}
			}

			// Metrics must reflect the ingested volume and zero drift.
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			text := string(raw)
			wantSamples := fmt.Sprintf("wcmd_samples_ingested_total %d", nStreams*nBatches*batchLen)
			for _, want := range []string{
				wantSamples,
				fmt.Sprintf("wcmd_streams %d", nStreams),
				"wcmd_reextraction_drift_total 0",
				`wcmd_requests_total{endpoint="ingest"}`,
			} {
				if !strings.Contains(text, want) {
					t.Fatalf("metrics missing %q:\n%s", want, text)
				}
			}
		})
	}
}

func TestMetricsEndpointCounters(t *testing.T) {
	ts := newTestServer(t, Config{Stream: stream.Config{Window: 8, MaxK: 2}})
	doJSON(t, "POST", ts.URL+"/v1/streams/a/ingest", `{"t":[1,2],"demand":[3,4]}`)
	doJSON(t, "POST", ts.URL+"/v1/streams/a/ingest", `{bad`)
	doJSON(t, "GET", ts.URL+"/v1/streams/nope/curves", "")

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, want := range []string{
		"wcmd_samples_ingested_total 2",
		"wcmd_ingest_batches_total 1",
		`wcmd_requests_total{endpoint="ingest"} 2`,
		`wcmd_request_errors_total{endpoint="ingest"} 1`,
		`wcmd_request_errors_total{endpoint="curves"} 1`,
		"wcmd_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}
