package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"wcm/internal/stream"
)

// maxCachedQueries caps the per-stream, per-tenant parameterized result
// maps (/check and /minfreq keys). A stream version rarely sees more than
// a handful of distinct query parameters; the cap only guards against a
// client sweeping parameters faster than the stream ingests. On overflow
// the tenant's bucket starts a fresh epoch rather than evicting — simpler,
// and the whole map dies at the next version bump anyway. The cap is
// scoped per tenant bucket on purpose: one tenant spinning distinct
// parameters resets only its own bucket and can never evict another
// tenant's cached entries. Epoch resets are counted
// (wcmd_query_cache_epoch_resets_total) so an operator can see a
// parameter sweep happening.
const maxCachedQueries = 256

// cachedResp is one fully rendered HTTP answer: status plus the exact body
// bytes, stamped with the stream version it was computed at and the wire
// format of the body. Hits replay the bytes, so a cached response is
// bit-identical to the miss that populated it by construction.
type cachedResp struct {
	status  int
	body    []byte
	version int64
	binary  bool // body is the columnar query encoding, not JSON
}

// checkKey identifies a /check query. All fields are comparable, so the
// struct is directly usable as a map key.
type checkKey struct {
	freqHz    float64
	latencyNs int64
	buffer    int
}

// respSlot is a single-answer cache cell: one atomic pointer to the most
// recently rendered response for an unparameterized (endpoint, format)
// pair. A hit is one atomic load plus a version compare — no state clone,
// no map, no lock. Publishing never clones anything: the slot either
// advances to a newer version or keeps what it has (a CAS loop drops stale
// results that lost a race against a fresher render).
type respSlot struct {
	p atomic.Pointer[cachedResp]
}

// get returns the cached answer iff it was rendered at version.
func (s *respSlot) get(version int64) *cachedResp {
	if r := s.p.Load(); r != nil && r.version == version {
		return r
	}
	return nil
}

// last returns whatever the slot holds, any version — the degraded-read
// fallback, which explicitly serves stale answers.
func (s *respSlot) last() *cachedResp { return s.p.Load() }

// put installs r unless the slot already holds a newer version.
func (s *respSlot) put(r *cachedResp) {
	for {
		old := s.p.Load()
		if old != nil && old.version > r.version {
			return
		}
		if s.p.CompareAndSwap(old, r) {
			return
		}
	}
}

// paramMap is an immutable-after-publish two-level map of parameterized
// answers at one version: tenant name → key → answer. Readers obtain it
// with a single atomic load and may look up any key without
// synchronization; writers never mutate a published map — they clone the
// outer map (inner maps are shared by reference, being immutable too),
// extend the one tenant bucket they touch and compare-and-swap. Unlike
// the old whole-cache clone-on-miss, only these small capped maps are
// ever copied, and only when a genuinely new parameter shows up at an
// unchanged version.
type paramMap[K comparable] struct {
	version int64
	m       map[string]map[K]*cachedResp
}

// paramCache is the per-(endpoint, format) parameterized answer cache.
// The zero value is ready to use.
type paramCache[K comparable] struct {
	p atomic.Pointer[paramMap[K]]
}

// get returns tenant's answer for k iff the published map is at version.
func (c *paramCache[K]) get(version int64, tenant string, k K) *cachedResp {
	if pm := c.p.Load(); pm != nil && pm.version == version {
		return pm.m[tenant][k]
	}
	return nil
}

// getAny returns an answer for k at whatever version is published — the
// degraded-read fallback. The tenant's own bucket is preferred; failing
// that, any tenant's entry serves: cached bodies are functions of the
// stream alone, so cross-tenant reuse of stale bytes is sound.
func (c *paramCache[K]) getAny(tenant string, k K) *cachedResp {
	pm := c.p.Load()
	if pm == nil {
		return nil
	}
	if r := pm.m[tenant][k]; r != nil {
		return r
	}
	for _, bucket := range pm.m {
		if r := bucket[k]; r != nil {
			return r
		}
	}
	return nil
}

// put records tenant's answer for k at version. reset reports that the
// tenant's bucket hit the cap and a fresh epoch replaced it (the caller
// counts those); other tenants' buckets are never touched by a reset.
// A stale version (older than the published map) is dropped.
func (c *paramCache[K]) put(version int64, tenant string, k K, r *cachedResp) (reset bool) {
	for {
		old := c.p.Load()
		if old != nil && old.version > version {
			return reset
		}
		next := &paramMap[K]{version: version}
		if old != nil && old.version == version {
			bucket := old.m[tenant]
			next.m = make(map[string]map[K]*cachedResp, len(old.m)+1)
			for ot, ob := range old.m {
				next.m[ot] = ob
			}
			if len(bucket) >= maxCachedQueries {
				reset = true
				next.m[tenant] = map[K]*cachedResp{k: r}
			} else {
				nb := make(map[K]*cachedResp, len(bucket)+1)
				for ok, ov := range bucket {
					nb[ok] = ov
				}
				nb[k] = r
				next.m[tenant] = nb
			}
		} else {
			next.m = map[string]map[K]*cachedResp{tenant: {k: r}}
		}
		if c.p.CompareAndSwap(old, next) {
			return reset
		}
	}
}

// cachedSnap pins the stream.Snapshot taken at one version so every
// parameterized miss at that version (a /check with a new key, a /minfreq
// with a new b) reuses it instead of taking the stream lock again.
// Snapshot contents are built fresh per capture and never mutated
// afterwards, so sharing is safe.
type cachedSnap struct {
	version int64
	snap    stream.Snapshot
}

type snapSlot struct {
	p atomic.Pointer[cachedSnap]
}

func (s *snapSlot) get(version int64) (stream.Snapshot, bool) {
	if cs := s.p.Load(); cs != nil && cs.version == version {
		return cs.snap, true
	}
	return stream.Snapshot{}, false
}

func (s *snapSlot) put(version int64, snap stream.Snapshot) {
	next := &cachedSnap{version: version, snap: snap}
	for {
		old := s.p.Load()
		if old != nil && old.version >= version {
			return
		}
		if s.p.CompareAndSwap(old, next) {
			return
		}
	}
}

// ---- singleflight ----------------------------------------------------------

// Endpoint ordinals for flight keys.
const (
	epCurves uint8 = iota
	epCheck
	epMinFreq
	epVerdict
)

// flightKey names one render: which endpoint, which wire format, which
// query parameters, at which stream generation. The version is part of the
// key on purpose — a reader that observed version 6 must not piggyback on a
// render started for version 5.
type flightKey struct {
	ep      uint8
	binary  bool
	version int64
	ck      checkKey // zero unless ep == epCheck
	b       int      // zero unless ep == epMinFreq
}

// flightCall is one in-progress render. done closes when resp/err are set;
// followers block on it (bounded by their request context).
type flightCall struct {
	done chan struct{}
	resp *cachedResp
	err  error
}

// flightGroup deduplicates concurrent renders of the same flightKey: the
// first goroutine in becomes the leader and renders, later arrivals wait
// for its result. The map only ever holds in-progress calls, so the mutex
// is uncontended except during an actual miss storm — hits never touch it.
type flightGroup struct {
	mu sync.Mutex
	m  map[flightKey]*flightCall
}

// errRenderAborted is what followers see when the leader panicked before
// producing a result (the panic itself propagates on the leader's request).
var errRenderAborted = errors.New("concurrent render aborted")

// do runs render under singleflight for key. Exactly one caller (the
// leader) executes render; concurrent callers with the same key wait for
// the leader's result until ctx expires, then fail with stream.ErrBusy so
// the caller's degraded-read fallback takes over. led reports whether this
// call was the leader (for metrics).
func (g *flightGroup) do(ctx context.Context, key flightKey, render func() (*cachedResp, error)) (resp *cachedResp, led bool, err error) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			if c.resp == nil && c.err == nil {
				return nil, false, errRenderAborted
			}
			return c.resp, false, c.err
		case <-ctx.Done():
			return nil, false, stream.ErrBusy
		}
	}
	if g.m == nil {
		g.m = make(map[flightKey]*flightCall)
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()
	defer func() {
		// Publish-then-release even on panic: followers must never be
		// stranded on done, and the flight must leave the map so the next
		// request can retry rather than join a dead call.
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.resp, c.err = render()
	return c.resp, true, c.err
}

// ---- per-stream cache ------------------------------------------------------

// queryCache is the per-stream version-keyed response cache. The zero value
// is ready to use.
//
// Invalidation needs no explicit step: stream.Stream bumps its version
// (atomically, under the stream lock, before the mutating call returns) on
// every ingest batch, contract change and forced re-extraction, and every
// lookup compares the cached answer's version against Stream.Version().
// An answer rendered at an older version simply stops matching; the next
// miss renders a successor into its slot. Hits are one atomic load (plus a
// map lookup for parameterized endpoints) — no locks, no stream access,
// and unlike the previous design a miss never clones cache state: each
// endpoint/format pair owns an independent slot.
type queryCache struct {
	snap snapSlot

	curves    respSlot // GET /curves, JSON
	curvesBin respSlot // GET /curves, binary
	verdict   respSlot // GET /verdict (JSON only)

	check      paramCache[checkKey] // POST /check, JSON
	checkBin   paramCache[checkKey] // POST /check, binary
	minfreq    paramCache[int]      // GET /minfreq, JSON; key: buffer b
	minfreqBin paramCache[int]      // GET /minfreq, binary

	flights flightGroup
}

func (c *queryCache) curvesSlot(binary bool) *respSlot {
	if binary {
		return &c.curvesBin
	}
	return &c.curves
}

func (c *queryCache) checkCache(binary bool) *paramCache[checkKey] {
	if binary {
		return &c.checkBin
	}
	return &c.check
}

func (c *queryCache) minfreqCache(binary bool) *paramCache[int] {
	if binary {
		return &c.minfreqBin
	}
	return &c.minfreq
}
