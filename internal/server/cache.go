package server

import (
	"sync/atomic"

	"wcm/internal/stream"
)

// maxCachedQueries caps the per-stream parameterized result maps (/check and
// /minfreq keys). A stream version rarely sees more than a handful of
// distinct query parameters; the cap only guards against a client sweeping
// parameters faster than the stream ingests. On overflow the map starts a
// fresh epoch rather than evicting — simpler, and the whole state dies at
// the next version bump anyway.
const maxCachedQueries = 256

// cachedResp is one fully rendered HTTP answer: status plus the exact JSON
// body bytes. Hits replay the bytes, so a cached response is bit-identical
// to the miss that populated it by construction.
type cachedResp struct {
	status int
	body   []byte
}

// checkKey identifies a /check query. All fields are comparable, so the
// struct is directly usable as a map key.
type checkKey struct {
	freqHz    float64
	latencyNs int64
	buffer    int
}

// cacheState is an immutable-after-publish snapshot of everything computed
// at one stream version. Readers obtain it with a single atomic load and
// may use any field without synchronization; writers never mutate a
// published state — they clone, extend and compare-and-swap (copy-on-write).
type cacheState struct {
	version int64

	// snap is the stream.Snapshot taken at version, shared by every query
	// computed from it (valid iff snapOK). Snapshot contents are built
	// fresh per capture and never mutated afterwards, so sharing is safe.
	snap   stream.Snapshot
	snapOK bool

	curves  *cachedResp // /curves rendered at version
	verdict *cachedResp // /verdict rendered at version
	check   map[checkKey]*cachedResp
	minfreq map[int]*cachedResp // key: buffer b
}

// queryCache is the per-stream version-keyed response cache. The zero value
// is ready to use.
//
// Invalidation needs no explicit step: stream.Stream bumps its version
// (atomically, under the stream lock, before the mutating call returns) on
// every ingest batch, contract change and forced re-extraction, and every
// lookup compares the published state's version against Stream.Version().
// A state built at an older version simply stops matching; the next miss
// publishes a successor. Reads on the hit path are one atomic load plus a
// map lookup — no locks, no stream access.
type queryCache struct {
	p atomic.Pointer[cacheState]
}

// load returns the current state (nil if nothing was published yet).
func (c *queryCache) load() *cacheState { return c.p.Load() }

// publish installs the result of fill into the state for version. If the
// published state is for the same version it is cloned and extended; if it
// is older (or absent) a fresh state replaces it; if it is NEWER the result
// is stale — a mutation overtook this query — and is dropped. The CAS loop
// makes concurrent misses at the same version merge instead of clobbering
// each other.
func (c *queryCache) publish(version int64, fill func(*cacheState)) {
	for {
		old := c.p.Load()
		if old != nil && old.version > version {
			return
		}
		var next *cacheState
		if old != nil && old.version == version {
			next = old.clone()
		} else {
			next = &cacheState{version: version}
		}
		fill(next)
		if c.p.CompareAndSwap(old, next) {
			return
		}
	}
}

// clone deep-copies the maps (published states are immutable, so sharing
// them with a state about to be extended would race with readers).
func (cs *cacheState) clone() *cacheState {
	next := &cacheState{
		version: cs.version,
		snap:    cs.snap,
		snapOK:  cs.snapOK,
		curves:  cs.curves,
		verdict: cs.verdict,
	}
	if cs.check != nil {
		next.check = make(map[checkKey]*cachedResp, len(cs.check)+1)
		for k, v := range cs.check {
			next.check[k] = v
		}
	}
	if cs.minfreq != nil {
		next.minfreq = make(map[int]*cachedResp, len(cs.minfreq)+1)
		for k, v := range cs.minfreq {
			next.minfreq[k] = v
		}
	}
	return next
}

// setCheck records a /check answer, starting a fresh epoch at the cap.
func (cs *cacheState) setCheck(k checkKey, r *cachedResp) {
	if cs.check == nil || len(cs.check) >= maxCachedQueries {
		cs.check = make(map[checkKey]*cachedResp, 4)
	}
	cs.check[k] = r
}

// setMinFreq records a /minfreq answer, starting a fresh epoch at the cap.
func (cs *cacheState) setMinFreq(b int, r *cachedResp) {
	if cs.minfreq == nil || len(cs.minfreq) >= maxCachedQueries {
		cs.minfreq = make(map[int]*cachedResp, 4)
	}
	cs.minfreq[b] = r
}
