package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"wcm/internal/stream"
)

// streamCfg is the stream shape shared by the resilience tests.
var streamCfg = stream.Config{Window: 64, MaxK: 16}

// rawGet fetches url and returns status, headers and exact body bytes —
// the degraded-read assertions are byte-level, so doJSON is too lossy.
func rawGet(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

// metricValue scrapes /metrics and returns the value line for a series
// (exact name including labels), or "" when absent.
func metricValue(t *testing.T, baseURL, series string) string {
	t.Helper()
	_, _, body := rawGet(t, baseURL+"/metrics")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, series+" ") {
			return strings.TrimPrefix(line, series+" ")
		}
	}
	return ""
}

func TestParseFaults(t *testing.T) {
	fs, err := ParseFaults("panic:handler:curves, sleep:handler:ingest:250ms,lockhold:ingest:update:1s")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Point: "handler:curves", Kind: FaultPanic},
		{Point: "handler:ingest", Kind: FaultSleep, Dur: 250 * time.Millisecond},
		{Point: "ingest:update", Kind: FaultLockHold, Dur: time.Second},
	}
	if len(fs) != len(want) {
		t.Fatalf("ParseFaults: got %v", fs)
	}
	for i := range want {
		if fs[i] != want[i] {
			t.Fatalf("fault %d = %+v, want %+v", i, fs[i], want[i])
		}
	}
	for _, bad := range []string{
		"bogus:handler:curves", // unknown kind
		"sleep:handler:curves", // sleep without a duration
		"panic",                // no point
	} {
		if _, err := ParseFaults(bad); err == nil {
			t.Fatalf("ParseFaults(%q) accepted", bad)
		}
	}
	// Empty specs are a no-op, not an error.
	if fs, err := ParseFaults(" , "); err != nil || fs != nil {
		t.Fatalf("ParseFaults(blank) = %v, %v", fs, err)
	}
	// Duplicate points are rejected at server construction.
	dup := []Fault{{Point: "handler:curves", Kind: FaultPanic}, {Point: "handler:curves", Kind: FaultPanic}}
	if _, err := New(Config{Faults: dup}); err == nil {
		t.Fatal("duplicate fault points accepted")
	}
}

// TestPanicRecovery injects a panic into the curves handler and checks the
// full recovery contract: every hit answers a clean 500 JSON error, the
// server stays alive for other endpoints, and wcmd_panics_total counts
// exactly the injected panics.
func TestPanicRecovery(t *testing.T) {
	s, err := New(Config{
		Stream: streamCfg,
		Faults: []Fault{{Point: "handler:curves", Kind: FaultPanic}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := doJSON(t, "POST", ts.URL+"/v1/streams/p/ingest", `{"t":[0,100],"demand":[1,2]}`); code != http.StatusOK {
		t.Fatalf("ingest: %d", code)
	}
	const hits = 3
	for i := 0; i < hits; i++ {
		code, m := doJSON(t, "GET", ts.URL+"/v1/streams/p/curves", "")
		if code != http.StatusInternalServerError || m["error"] != "internal server error" {
			t.Fatalf("panicking curves: %d %v", code, m)
		}
	}
	// The server keeps serving everything else.
	if code, _ := doJSON(t, "GET", ts.URL+"/healthz", ""); code != http.StatusOK {
		t.Fatalf("healthz after panics: %d", code)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/streams/p/verdict", ""); code != http.StatusOK {
		t.Fatalf("verdict after panics: %d", code)
	}
	if got := metricValue(t, ts.URL, "wcmd_panics_total"); got != fmt.Sprint(hits) {
		t.Fatalf("wcmd_panics_total = %q, want %d", got, hits)
	}
	code, m := doJSON(t, "GET", ts.URL+"/v1/stats", "")
	if code != http.StatusOK || m["panics"].(float64) != hits {
		t.Fatalf("/v1/stats panics = %v", m["panics"])
	}
	// The 500s land in the error counters too.
	if got := metricValue(t, ts.URL, `wcmd_request_errors_total{endpoint="curves"}`); got != fmt.Sprint(hits) {
		t.Fatalf(`request_errors_total{curves} = %q`, got)
	}
}

// TestRequestDeadline pins the per-request deadline on the mutating path:
// a handler stalled past Config.RequestTimeout (sleep fault) refuses to
// start the stream update and answers 503 with Retry-After.
func TestRequestDeadline(t *testing.T) {
	s, err := New(Config{
		Stream:         streamCfg,
		RequestTimeout: 30 * time.Millisecond,
		Faults:         []Fault{{Point: "handler:ingest", Kind: FaultSleep, Dur: 120 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, _ := http.NewRequest("POST", ts.URL+"/v1/streams/d/ingest",
		strings.NewReader(`{"t":[0],"demand":[1]}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stalled ingest: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	// The refused update left no stream behind.
	if code, m := doJSON(t, "GET", ts.URL+"/v1/streams/d/curves", ""); code != http.StatusNotFound {
		t.Fatalf("ghost stream after refused ingest: %d %v", code, m)
	}
}

// TestDegradedRead drives the full degradation path: a stream whose lock
// is held past the request deadline serves the last cached snapshot,
// byte-identical to the last good answer except for the "degraded":true
// marker, and a query with nothing cached answers 503.
func TestDegradedRead(t *testing.T) {
	s, err := New(Config{Stream: streamCfg, RequestTimeout: 40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := doJSON(t, "POST", ts.URL+"/v1/streams/g/ingest", `{"t":[0,100,200],"demand":[3,5,4]}`); code != http.StatusOK {
		t.Fatalf("ingest: %d", code)
	}
	// Populate the caches.
	code, _, good := rawGet(t, ts.URL+"/v1/streams/g/curves")
	if code != http.StatusOK {
		t.Fatalf("curves: %d", code)
	}
	if code, _, _ := rawGet(t, ts.URL+"/v1/streams/g/verdict"); code != http.StatusOK {
		t.Fatalf("verdict: %d", code)
	}
	// Bump the stream version so the cache goes stale (fresh cache hits
	// never need the lock and would mask the degradation path).
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/streams/g/contract",
		`{"upper":[0,100,200],"lower":[0,0,0]}`); code != http.StatusOK {
		t.Fatalf("contract: %d", code)
	}

	e := s.get("g")
	if e == nil {
		t.Fatal("stream entry missing")
	}
	held := make(chan struct{})
	done := make(chan struct{})
	go func() {
		close(held)
		e.st.HoldLock(400 * time.Millisecond)
		close(done)
	}()
	<-held
	// Wait until the holder actually owns the lock: SnapshotWithin(0) is a
	// single TryLock probe.
	for {
		if _, err := e.st.SnapshotWithin(0); err != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}

	code, hdr, body := rawGet(t, ts.URL+"/v1/streams/g/curves")
	if code != http.StatusOK {
		t.Fatalf("degraded curves: %d %s", code, body)
	}
	if hdr.Get("X-Wcm-Degraded") != "true" {
		t.Fatal("degraded response missing X-Wcm-Degraded header")
	}
	want := string(good[:len(good)-2]) + `,"degraded":true}` + "\n"
	if string(body) != want {
		t.Fatalf("degraded body not the cached snapshot:\n got %q\nwant %q", body, want)
	}
	// A parameterized query with no cached answer cannot degrade: 503.
	code, hdr, _ = rawGet(t, ts.URL+"/v1/streams/g/minfreq?b=7")
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("uncached minfreq under contention: %d", code)
	}

	<-done
	// Lock free again: fresh answers resume, no degraded marker.
	code, hdr, fresh := rawGet(t, ts.URL+"/v1/streams/g/curves")
	if code != http.StatusOK || hdr.Get("X-Wcm-Degraded") != "" {
		t.Fatalf("fresh curves after hold: %d degraded=%q", code, hdr.Get("X-Wcm-Degraded"))
	}
	if strings.Contains(string(fresh), `"degraded"`) {
		t.Fatalf("fresh body still marked degraded: %s", fresh)
	}
	if got := metricValue(t, ts.URL, "wcmd_degraded_responses_total"); got != "1" {
		t.Fatalf("wcmd_degraded_responses_total = %q, want 1", got)
	}
}

// TestSheddingIngest fills the ingest in-flight budget with a request whose
// body never arrives and checks that the next ingest is shed with 429 +
// Retry-After while reads and observability endpoints keep working.
func TestSheddingIngest(t *testing.T) {
	s, err := New(Config{Stream: streamCfg, MaxInflightIngest: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := doJSON(t, "POST", ts.URL+"/v1/streams/sh/ingest", `{"t":[0],"demand":[1]}`); code != http.StatusOK {
		t.Fatalf("seed ingest: %d", code)
	}

	pr, pw := io.Pipe()
	blockedDone := make(chan int, 1)
	go func() {
		req, _ := http.NewRequest("POST", ts.URL+"/v1/streams/sh/ingest", pr)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			blockedDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		blockedDone <- resp.StatusCode
	}()
	for s.limIngest.Inflight() == 0 {
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/v1/streams/sh/ingest", "application/json",
		strings.NewReader(`{"t":[100],"demand":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget ingest: %d %s", resp.StatusCode, body)
	}
	// First shed in the pressure window: the hint is exactly the floor.
	if resp.Header.Get("Retry-After") != strconv.Itoa(retryAfterFloorSeconds) {
		t.Fatalf("shed Retry-After = %q", resp.Header.Get("Retry-After"))
	}
	if !strings.Contains(string(body), "overloaded") {
		t.Fatalf("shed body: %s", body)
	}
	// Reads and observability are a separate budget: both still answer.
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/streams/sh/curves", ""); code != http.StatusOK {
		t.Fatalf("read while ingest saturated: %d", code)
	}
	if got := metricValue(t, ts.URL, `wcmd_shed_total{class="ingest"}`); got != "1" {
		t.Fatalf(`wcmd_shed_total{ingest} = %q, want 1`, got)
	}
	if got := metricValue(t, ts.URL, `wcmd_inflight_limit{class="ingest"}`); got != "1" {
		t.Fatalf(`wcmd_inflight_limit{ingest} = %q, want 1`, got)
	}

	// Complete the parked request; it was admitted, so it must succeed.
	if _, err := pw.Write([]byte(`{"t":[200],"demand":[1]}`)); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if code := <-blockedDone; code != http.StatusOK {
		t.Fatalf("parked ingest finished with %d", code)
	}
	if s.limIngest.Inflight() != 0 {
		t.Fatalf("in-flight not released: %d", s.limIngest.Inflight())
	}
}

// TestSheddingReadDegrades saturates the read budget and checks the tiered
// fallback: fresh cache → normal answer, stale cache → degraded answer,
// nothing cached → 429.
func TestSheddingReadDegrades(t *testing.T) {
	s, err := New(Config{Stream: streamCfg, MaxInflightRead: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := doJSON(t, "POST", ts.URL+"/v1/streams/rd/ingest", `{"t":[0,100],"demand":[2,3]}`); code != http.StatusOK {
		t.Fatalf("ingest: %d", code)
	}
	code, _, good := rawGet(t, ts.URL+"/v1/streams/rd/curves")
	if code != http.StatusOK {
		t.Fatalf("curves: %d", code)
	}

	// Saturate the read class with a /check whose body never arrives.
	pr, pw := io.Pipe()
	blockedDone := make(chan struct{})
	go func() {
		defer close(blockedDone)
		req, _ := http.NewRequest("POST", ts.URL+"/v1/streams/rd/check", pr)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	}()
	for s.limRead.Inflight() == 0 {
		time.Sleep(time.Millisecond)
	}

	// Fresh cache: the shed read is served normally from it.
	code, hdr, body := rawGet(t, ts.URL+"/v1/streams/rd/curves")
	if code != http.StatusOK || hdr.Get("X-Wcm-Degraded") != "" || string(body) != string(good) {
		t.Fatalf("shed read with fresh cache: %d degraded=%q", code, hdr.Get("X-Wcm-Degraded"))
	}

	// Stale cache (contract bump is ingest class, not blocked): degraded.
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/streams/rd/contract",
		`{"upper":[0,100,200],"lower":[0,0,0]}`); code != http.StatusOK {
		t.Fatalf("contract: %d", code)
	}
	code, hdr, body = rawGet(t, ts.URL+"/v1/streams/rd/curves")
	if code != http.StatusOK || hdr.Get("X-Wcm-Degraded") != "true" {
		t.Fatalf("shed read with stale cache: %d degraded=%q %s", code, hdr.Get("X-Wcm-Degraded"), body)
	}
	if want := string(good[:len(good)-2]) + `,"degraded":true}` + "\n"; string(body) != want {
		t.Fatalf("degraded shed body:\n got %q\nwant %q", body, want)
	}

	// Nothing cached (unknown stream): plain shed. The hint grows with
	// shed pressure (this is the third shed in the window on a 1-slot
	// limiter), so only its clamp range is asserted here — the exact
	// proportionality is pinned down by TestRetryAfterProportional.
	code, hdr, _ = rawGet(t, ts.URL+"/v1/streams/nope/curves")
	if code != http.StatusTooManyRequests {
		t.Fatalf("shed read with no cache: %d", code)
	}
	if secs, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil ||
		secs < retryAfterFloorSeconds || secs > maxRetryAfterSeconds {
		t.Fatalf("shed Retry-After = %q, want integer in [%d,%d]",
			hdr.Get("Retry-After"), retryAfterFloorSeconds, maxRetryAfterSeconds)
	}

	pw.Close() // unblock; the parked /check fails decode, that's fine
	<-blockedDone
	if s.limRead.Inflight() != 0 {
		t.Fatalf("in-flight not released: %d", s.limRead.Inflight())
	}
}

// TestLockHoldFault checks the lockhold fault end to end: a faulted ingest
// holds its stream's lock, and a concurrent deadline-bounded read degrades
// instead of queueing behind it.
func TestLockHoldFault(t *testing.T) {
	s, err := New(Config{
		Stream:         streamCfg,
		RequestTimeout: 40 * time.Millisecond,
		Faults:         []Fault{{Point: "ingest:update", Kind: FaultLockHold, Dur: 300 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Seed the stream and its cache through direct handler state (the HTTP
	// ingest path would trip the fault): version 1, cached curves.
	e, _, err := s.getOrCreate("lh", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.st.Ingest([]int64{0, 100}, []int64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := rawGet(t, ts.URL+"/v1/streams/lh/curves"); code != http.StatusOK {
		t.Fatal("seed curves")
	}
	// Stale the cache first (the lockhold fires before the ingest's own
	// version bump, so a fresh cache would be served normally — which is
	// itself correct — and never exercise the contended-lock path).
	if _, err := e.st.Reextract(); err != nil {
		t.Fatal(err)
	}

	// The faulted ingest now holds the lock for 300ms before updating.
	ingestDone := make(chan struct{})
	go func() {
		defer close(ingestDone)
		doJSON(t, "POST", ts.URL+"/v1/streams/lh/ingest", `{"t":[200],"demand":[3]}`)
	}()
	// Wait for the hold-up to be in force.
	for {
		if _, err := e.st.SnapshotWithin(0); err != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}

	code, hdr, _ := rawGet(t, ts.URL+"/v1/streams/lh/curves")
	if code != http.StatusOK || hdr.Get("X-Wcm-Degraded") != "true" {
		t.Fatalf("read behind lockhold: %d degraded=%q", code, hdr.Get("X-Wcm-Degraded"))
	}
	<-ingestDone
}

// TestDropIfEmptyIngestRace races dropIfEmpty against a writer that
// fetched the same entry: whenever the writer's ingest succeeds, the
// stream must remain reachable with the sample in it — the tombstone +
// ensureRegistered protocol may not strand samples in an orphaned stream.
func TestDropIfEmptyIngestRace(t *testing.T) {
	s, err := New(Config{Stream: streamCfg})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 300; round++ {
		id := fmt.Sprintf("race-%d", round)
		e, created, err := s.getOrCreate(id, nil)
		if err != nil || !created {
			t.Fatalf("round %d: getOrCreate: created=%v err=%v", round, created, err)
		}
		start := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			<-start
			s.dropIfEmpty(id, e)
		}()
		var ingErr, regErr error
		go func() {
			defer wg.Done()
			<-start
			if _, ingErr = e.st.Ingest([]int64{0}, []int64{1}); ingErr == nil {
				regErr = s.ensureRegistered(id, e)
			}
		}()
		close(start)
		wg.Wait()
		if ingErr != nil {
			t.Fatalf("round %d: ingest: %v", round, ingErr)
		}
		if regErr != nil {
			t.Fatalf("round %d: ensureRegistered: %v", round, regErr)
		}
		got := s.get(id)
		if got == nil {
			t.Fatalf("round %d: stream vanished after acknowledged ingest", round)
		}
		if total := got.st.Stats().Total; total != 1 {
			t.Fatalf("round %d: registered stream total = %d, want 1", round, total)
		}
	}
}

// TestDeleteTombstoneWins pins the other half of the protocol: a writer
// losing the race to an explicit DELETE does not resurrect the stream.
func TestDeleteTombstoneWins(t *testing.T) {
	s, err := New(Config{Stream: streamCfg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := doJSON(t, "POST", ts.URL+"/v1/streams/del/ingest", `{"t":[0],"demand":[1]}`); code != http.StatusOK {
		t.Fatal("seed ingest")
	}
	e := s.get("del")
	if code, _ := doJSON(t, "DELETE", ts.URL+"/v1/streams/del", ""); code != http.StatusNoContent {
		t.Fatal("delete")
	}
	// A late writer that still holds the entry: mutation is accepted on
	// the detached stream, but ensureRegistered must NOT re-register it.
	if _, err := e.st.Ingest([]int64{100}, []int64{1}); err != nil {
		t.Fatal(err)
	}
	if err := s.ensureRegistered("del", e); err != nil {
		t.Fatalf("ensureRegistered after delete: %v", err)
	}
	if s.get("del") != nil {
		t.Fatal("deleted stream resurrected by late writer")
	}
}

// TestDegradedBody pins the splice helper's edge cases.
func TestDegradedBody(t *testing.T) {
	if b := degradedBody(nil); b != nil {
		t.Fatalf("nil resp: %q", b)
	}
	if b := degradedBody(&cachedResp{status: 409, body: []byte("{\"error\":\"x\"}\n")}); b != nil {
		t.Fatalf("error resp degraded: %q", b)
	}
	if b := degradedBody(&cachedResp{status: 200, body: []byte("x")}); b != nil {
		t.Fatalf("malformed body degraded: %q", b)
	}
	got := degradedBody(&cachedResp{status: 200, body: []byte("{\"version\":3}\n")})
	if string(got) != "{\"version\":3,\"degraded\":true}\n" {
		t.Fatalf("splice: %q", got)
	}
}
