package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"wcm/internal/stream"
)

// postBody POSTs a JSON body and returns status + raw response bytes.
func postBody(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func getRaw(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestCachedQueriesBitIdenticalToUncached is the differential proof the
// snapshot cache demands: after every mutation it queries a CACHING server
// twice (miss, then hit) and a freshly built REFERENCE server that replayed
// the identical batch history but is queried exactly once — so every
// reference answer is an uncached recomputation — and requires all three
// bodies byte-identical, status included. Covers /curves, /check, /minfreq,
// /verdict, and the 409 error answers of a 1-sample stream.
func TestCachedQueriesBitIdenticalToUncached(t *testing.T) {
	const window, maxK = 48, 12
	cfg := Config{Stream: stream.Config{Window: window, MaxK: maxK, ReextractEvery: 17}}
	cached := newTestServer(t, cfg)
	const checkBody = `{"freq_hz":1000000,"latency_ns":10,"buffer":3}`

	rng := rand.New(rand.NewSource(99))
	var now int64
	var history []string // ingest bodies, in order

	ingest := func(t *testing.T, base, body string) {
		t.Helper()
		if code, raw := postBody(t, base+"/v1/streams/s/ingest", body); code != http.StatusOK {
			t.Fatalf("ingest: %d %s", code, raw)
		}
	}

	for batch := 0; batch < 6; batch++ {
		// First batch is a single sample so the 409 (too-few-samples) answers
		// of /check and /minfreq go through the cache round too.
		n := 1
		if batch > 0 {
			n = 2 + rng.Intn(2*window/3)
		}
		tsv := make([]int64, n)
		dv := make([]int64, n)
		for i := range tsv {
			now += int64(rng.Intn(30))
			tsv[i] = now
			dv[i] = int64(rng.Intn(400))
		}
		body := fmt.Sprintf(`{"t":%s,"demand":%s}`, jsonInts(tsv), jsonInts(dv))
		history = append(history, body)
		ingest(t, cached.URL, body)

		ref := newTestServer(t, cfg)
		for _, b := range history {
			ingest(t, ref.URL, b)
		}

		for _, q := range [][2]string{
			{"GET", "/v1/streams/s/curves"},
			{"GET", "/v1/streams/s/minfreq?b=2"},
			{"GET", "/v1/streams/s/verdict"},
			{"POST", "/v1/streams/s/check"},
		} {
			var miss, hit, fresh []byte
			var mc, hc, fc int
			if q[0] == "GET" {
				mc, miss = getRaw(t, cached.URL+q[1])
				hc, hit = getRaw(t, cached.URL+q[1])
				fc, fresh = getRaw(t, ref.URL+q[1])
			} else {
				mc, miss = postBody(t, cached.URL+q[1], checkBody)
				hc, hit = postBody(t, cached.URL+q[1], checkBody)
				fc, fresh = postBody(t, ref.URL+q[1], checkBody)
			}
			if mc != hc || mc != fc {
				t.Fatalf("batch %d %s: statuses miss=%d hit=%d fresh=%d", batch, q[1], mc, hc, fc)
			}
			if !bytes.Equal(miss, hit) {
				t.Fatalf("batch %d %s: hit differs from miss:\n%s\n%s", batch, q[1], miss, hit)
			}
			if !bytes.Equal(miss, fresh) {
				t.Fatalf("batch %d %s: cached differs from uncached recomputation:\n%s\n%s",
					batch, q[1], miss, fresh)
			}
		}
	}
}

// TestCacheHitAndInvalidation pins the cache mechanics observably: repeated
// queries at one version are hits (counter moves, stream lock untouched),
// any mutation — ingest or contract — invalidates, and the version field in
// responses never decreases.
func TestCacheHitAndInvalidation(t *testing.T) {
	ts := newTestServer(t, Config{Stream: stream.Config{Window: 32, MaxK: 8}})
	hits := func() string {
		_, raw := getRaw(t, ts.URL+"/metrics")
		for _, line := range strings.Split(string(raw), "\n") {
			if strings.HasPrefix(line, "wcmd_query_cache_hits_total ") {
				return strings.TrimPrefix(line, "wcmd_query_cache_hits_total ")
			}
		}
		t.Fatal("hit counter not exported")
		return ""
	}

	if code, raw := postBody(t, ts.URL+"/v1/streams/s/ingest",
		`{"t":[0,10,20,30],"demand":[4,9,2,7]}`); code != http.StatusOK {
		t.Fatalf("ingest: %d %s", code, raw)
	}

	_, first := getRaw(t, ts.URL+"/v1/streams/s/curves")
	h0 := hits()
	_, second := getRaw(t, ts.URL+"/v1/streams/s/curves")
	if h1 := hits(); h1 == h0 {
		t.Fatalf("second /curves was not a cache hit (hits %s → %s)", h0, h1)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("cache hit changed the body:\n%s\n%s", first, second)
	}
	v1 := versionOf(t, first)

	// Ingest invalidates: new body, higher version.
	if code, _ := postBody(t, ts.URL+"/v1/streams/s/ingest", `{"t":[40],"demand":[100]}`); code != http.StatusOK {
		t.Fatal("second ingest failed")
	}
	_, third := getRaw(t, ts.URL+"/v1/streams/s/curves")
	if bytes.Equal(second, third) {
		t.Fatal("ingest did not invalidate the cached /curves answer")
	}
	v2 := versionOf(t, third)
	if v2 <= v1 {
		t.Fatalf("version did not advance: %d then %d", v1, v2)
	}

	// SetContract invalidates /verdict.
	_, verdictBefore := getRaw(t, ts.URL+"/v1/streams/s/verdict")
	if code, _ := postBody(t, ts.URL+"/v1/streams/s/contract",
		`{"upper":[0,1000,2000],"lower":[0,0,0]}`); code != http.StatusOK {
		t.Fatal("contract failed")
	}
	_, verdictAfter := getRaw(t, ts.URL+"/v1/streams/s/verdict")
	if bytes.Equal(verdictBefore, verdictAfter) {
		t.Fatal("contract did not invalidate the cached /verdict answer")
	}
	if versionOf(t, verdictAfter) <= versionOf(t, verdictBefore) {
		t.Fatal("verdict version did not advance across SetContract")
	}
}

// versionOf extracts the "version" field from a JSON response body.
func versionOf(t *testing.T, body []byte) int64 {
	t.Helper()
	var m struct {
		Version int64 `json:"version"`
	}
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("bad JSON %s: %v", body, err)
	}
	return m.Version
}
