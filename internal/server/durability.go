package server

import (
	"context"
	"fmt"
	"log/slog"
	"sync/atomic"
	"time"

	"wcm/internal/stream"
	"wcm/internal/wal"
)

// Durability wiring: how the serving layer drives internal/wal.
//
// Log-after-apply, before-ack: an ingest batch is applied to the in-memory
// stream first (the apply can still reject it — nothing invalid reaches the
// log), then appended to the shard's WAL tagged with the stream version the
// apply produced, then made durable per the fsync policy, and only then
// acknowledged. A crash loses at most batches that were never acked.
//
// Ordering against DELETE: ingest records are appended under the registry
// shard's read lock after re-checking the entry is not tombstoned deleted;
// the tombstone itself is appended under the shard's write lock. So no
// record for a stream's old incarnation can land after that stream's
// tombstone — the invariant recovery's LSN resolution relies on.
//
// Checkpoints: a background loop (Config.SnapshotInterval) rotates each
// shard's segment chain, snapshots every live stream at the rotation
// boundary, removes snapshots of dead streams, and deletes the covered
// segments. Server.Close runs a final checkpoint so a clean restart
// replays (nearly) nothing.
//
// Recovery runs inside New, before the caller can bind a listener: decode
// and restore each snapshot, replay the surviving WAL batches through the
// same IngestBatches path live traffic uses, and install the entries in
// the registry. Any decode or replay failure fails New loudly — serving
// with silently dropped acknowledged data is worse than not starting.

// recoveryStats counts what boot-time replay restored, for /healthz and
// /metrics. Written once during New; read-only afterwards (atomics only
// because /metrics may be scraped while a test pokes at recovery).
type recoveryStats struct {
	streams atomic.Uint64
	batches atomic.Uint64
	samples atomic.Uint64
}

// attachWAL validates and wires a wal.Manager into the server being built,
// then runs recovery. Called from New.
func (s *Server) attachWAL(m *wal.Manager) error {
	if m.Shards() != len(s.shards) {
		return fmt.Errorf("server: wal has %d shards, server has %d — the data directory was written under a different -shards",
			m.Shards(), len(s.shards))
	}
	s.wal = m
	s.walShards = make([]*wal.ShardLog, len(s.shards))
	for i := range s.walShards {
		s.walShards[i] = m.Shard(i)
	}
	m.SetObs(s.metrics.stage(stageWALAppend), s.metrics.stage(stageWALFsync))
	s.recovering.Store(true)
	defer s.recovering.Store(false)
	return s.recoverFromWAL()
}

// recoverFromWAL replays the Open-time scan results into the registry.
func (s *Server) recoverFromWAL() error {
	for i := range s.shards {
		for _, sr := range s.wal.Recovery(i) {
			if int(s.shardIndex(sr.ID)) != i {
				return fmt.Errorf("server: recovered stream %q in wal shard %d, hashes to %d — data directory damaged",
					sr.ID, i, s.shardIndex(sr.ID))
			}
			st, err := s.recoverStream(sr)
			if err != nil {
				return err
			}
			sh := s.shards[i]
			sh.mu.Lock()
			sh.streams[sr.ID] = &entry{st: st}
			sh.mu.Unlock()
			s.recovered.streams.Add(1)
		}
	}
	if n := s.recovered.streams.Load(); n > 0 || !s.wal.CleanStart() {
		s.logger.LogAttrs(context.Background(), slog.LevelInfo, "wal recovery complete",
			slog.Uint64("streams", n),
			slog.Uint64("batches", s.recovered.batches.Load()),
			slog.Uint64("samples", s.recovered.samples.Load()),
			slog.Uint64("torn_tails", s.wal.TornTails()),
			slog.Bool("clean_start", s.wal.CleanStart()))
	}
	return nil
}

// recoverStream rebuilds one stream: restore its snapshot (or start empty)
// and replay the surviving WAL batches through the normal ingest path.
func (s *Server) recoverStream(sr wal.StreamRecovery) (*stream.Stream, error) {
	var st *stream.Stream
	var err error
	if sr.SnapshotState != nil {
		state, derr := stream.DecodeState(sr.SnapshotState)
		if derr != nil {
			return nil, fmt.Errorf("server: stream %q snapshot: %w", sr.ID, derr)
		}
		st, err = stream.Restore(s.cfg.Stream, state)
	} else {
		st, err = stream.New(s.cfg.Stream)
	}
	if err != nil {
		return nil, fmt.Errorf("server: stream %q: %w", sr.ID, err)
	}
	if len(sr.Batches) == 0 {
		return st, nil
	}
	batches := make([]stream.Batch, len(sr.Batches))
	results := make([]stream.BatchResult, len(sr.Batches))
	for j, b := range sr.Batches {
		batches[j] = stream.Batch{Ts: b.Ts, Demands: b.Demands}
	}
	st.IngestBatches(batches, results)
	for j := range results {
		if results[j].Err != nil {
			// Every logged batch was once accepted by a stream in this exact
			// state; a rejection here means the directory is inconsistent.
			return nil, fmt.Errorf("server: stream %q replay batch v%d: %w",
				sr.ID, sr.Batches[j].Version, results[j].Err)
		}
		s.recovered.samples.Add(uint64(results[j].Res.Accepted))
	}
	s.recovered.batches.Add(uint64(len(sr.Batches)))
	return st, nil
}

// walLogSync is the synchronous ingest tail's durability step: append the
// applied batch and commit under the fsync policy, before the handler
// acknowledges. The append re-checks the DELETE tombstone under the shard
// read lock (see the file comment); a batch that lost that race is simply
// not logged — the stream it mutated is already unreachable.
func (s *Server) walLogSync(id string, e *entry, res stream.IngestResult, ts, ds []int64) error {
	idx := s.shardIndex(id)
	l := s.walShards[idx]
	sh := s.shards[idx]
	sh.mu.RLock()
	var err error
	if e.state.Load() != entryDeleted {
		err = l.AppendIngest(id, res.Version, ts, ds)
	}
	sh.mu.RUnlock()
	if err != nil {
		return err
	}
	return l.Commit()
}

// walLogGroup appends one coalesced group's successful batches, all under a
// single shard-read-lock acquisition and — via AppendIngestGroup — a single
// encode-and-write. An append failure marks every still-successful job of
// the group failed (500): the write is all-or-nothing from the group's
// perspective (a partial write is a torn tail recovery refuses to trust),
// and an applied-but-unlogged batch must not be acknowledged. Failures are
// logged per job through the originating request's logger (trace_id
// attached); traced jobs get a wal_append span covering the group write.
func (s *Server) walLogGroup(p *ingestPipe, e *entry, group []*ingestJob, traced bool) {
	l := s.walShards[p.idx]
	sh := s.shards[p.idx]
	p.recs = p.recs[:0]
	sh.mu.RLock()
	if e.state.Load() != entryDeleted {
		for _, job := range group {
			if job.err == nil {
				p.recs = append(p.recs, wal.IngestRec{
					ID: job.id, Version: job.res.Version, Ts: job.ts, Ds: job.ds})
			}
		}
		if len(p.recs) > 0 {
			var t0 time.Time
			if traced {
				t0 = time.Now()
			}
			err := l.AppendIngestGroup(p.recs)
			if traced {
				t1 := time.Now()
				for _, job := range group {
					if job.tr != nil && job.err == nil {
						job.tr.RecordAt("wal_append", job.parent, t0, t1)
					}
				}
			}
			if err != nil {
				for _, job := range group {
					if job.err == nil {
						job.logger(s.logger).LogAttrs(context.Background(), slog.LevelError,
							"wal append failed", slog.String("error", err.Error()))
						job.err = fmt.Errorf("wal append failed: %w", err)
						job.errCode = 500
					}
				}
			}
		}
	}
	sh.mu.RUnlock()
	// Drop the aliased job buffers: recs is worker-owned scratch that
	// outlives the drain, the ts/ds columns belong to handler pools.
	for i := range p.recs {
		p.recs[i] = wal.IngestRec{}
	}
	p.recs = p.recs[:0]
}

// failPending marks every still-pending job of a wakeup failed after a
// group-commit fsync error, logging each through its request's logger so
// the lines carry the originating trace IDs.
func (s *Server) failPending(pending []*ingestJob, err error) {
	for _, job := range pending {
		if job.err == nil {
			job.logger(s.logger).LogAttrs(context.Background(), slog.LevelError,
				"wal commit failed", slog.String("error", err.Error()))
			job.err = fmt.Errorf("wal commit failed: %w", err)
			job.errCode = 500
		}
	}
}

// ---- checkpoints ------------------------------------------------------------

// checkpointShard snapshots every live stream of shard i at a fresh
// rotation boundary and truncates the covered WAL segments. Correctness
// invariant: every record in a segment below the rotation index was
// appended — hence applied — before the rotation, so its version is ≤ the
// version ExportState captures afterwards; deleting those segments loses
// nothing a snapshot doesn't carry. A DELETE racing this lands its
// tombstone at or after the rotation segment, which invalidates the
// just-written snapshot at recovery (see wal's snapshot rules).
func (s *Server) checkpointShard(i int) error {
	l := s.walShards[i]
	newSeg, err := l.Rotate()
	if err != nil {
		return err
	}
	sh := s.shards[i]
	type item struct {
		id string
		e  *entry
	}
	sh.mu.RLock()
	items := make([]item, 0, len(sh.streams))
	for id, e := range sh.streams {
		items = append(items, item{id, e})
	}
	sh.mu.RUnlock()

	live := make(map[string]bool, len(items))
	for _, it := range items {
		if it.e.state.Load() != entryLive {
			continue
		}
		st := it.e.st.ExportState()
		if st.Version == 0 {
			continue // never mutated; nothing worth a snapshot
		}
		blob := st.AppendBinary(nil)
		if err := l.WriteSnapshot(it.id, newSeg, st.Version, blob); err != nil {
			return err
		}
		live[it.id] = true
	}
	if err := l.CleanSnapshots(func(id string) bool { return live[id] }); err != nil {
		return err
	}
	return l.RemoveSegmentsBefore(newSeg)
}

// checkpointAll checkpoints every shard, logging failures rather than
// stopping: a full disk must not take the serving path down, only stall
// WAL truncation.
func (s *Server) checkpointAll() {
	for i := range s.shards {
		if err := s.checkpointShard(i); err != nil {
			s.logger.LogAttrs(context.Background(), slog.LevelError, "checkpoint failed",
				slog.Int("shard", i), slog.String("error", err.Error()))
		}
	}
}

// checkpointLoop runs periodic checkpoints until Close stops it.
func (s *Server) checkpointLoop(interval time.Duration) {
	defer close(s.ckDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.checkpointAll()
		case <-s.ckStop:
			return
		}
	}
}

// walGauges carries the scrape-time durability readings into the metrics
// writer; nil when the server runs without a WAL.
type walGauges struct {
	bytes, appends, fsyncs, torn     uint64
	replayedBatches, replayedSamples uint64
	recoveredStreams                 uint64
	cleanStart                       bool
}

func (s *Server) walGaugesNow() *walGauges {
	if s.wal == nil {
		return nil
	}
	return &walGauges{
		bytes:            s.wal.BytesAppended(),
		appends:          s.wal.Appends(),
		fsyncs:           s.wal.Fsyncs(),
		torn:             s.wal.TornTails(),
		replayedBatches:  s.recovered.batches.Load(),
		replayedSamples:  s.recovered.samples.Load(),
		recoveredStreams: s.recovered.streams.Load(),
		cleanStart:       s.wal.CleanStart(),
	}
}

// durabilityJSON is /healthz's durability object.
type durabilityJSON struct {
	Enabled          bool   `json:"enabled"`
	Fsync            string `json:"fsync,omitempty"`
	CleanStart       bool   `json:"clean_start"`
	RecoveredStreams uint64 `json:"recovered_streams"`
	ReplayedBatches  uint64 `json:"replayed_batches"`
	TornTails        uint64 `json:"torn_tails"`
}

func (s *Server) durabilityStatus() *durabilityJSON {
	if s.wal == nil {
		return nil
	}
	return &durabilityJSON{
		Enabled:          true,
		Fsync:            s.wal.Policy().String(),
		CleanStart:       s.wal.CleanStart(),
		RecoveredStreams: s.recovered.streams.Load(),
		ReplayedBatches:  s.recovered.batches.Load(),
		TornTails:        s.wal.TornTails(),
	}
}

// Recovering reports whether boot-time WAL replay is still in progress.
// /healthz answers 503 while it is, so an orchestrator's readiness probe
// holds traffic until every acknowledged batch is back.
func (s *Server) Recovering() bool { return s.recovering.Load() }
