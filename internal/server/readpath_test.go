package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"testing"

	"wcm/internal/stream"
	"wcm/internal/wirefmt"
)

// TestUncachedServerBitIdentical proves the hand-rolled renderers against
// encoding/json through the full HTTP surface: a caching server (pooled
// byte-appending renderers) and a Config.DisableQueryCache server (every
// read re-renders via json.Marshal) replay the same batch history and must
// answer every query byte-identically — curves, check, minfreq, verdict,
// and the 409 answers of a 1-sample stream.
func TestUncachedServerBitIdentical(t *testing.T) {
	scfg := stream.Config{Window: 48, MaxK: 12, ReextractEvery: 17}
	cached := newTestServer(t, Config{Stream: scfg})
	uncached := newTestServer(t, Config{Stream: scfg, DisableQueryCache: true})
	const checkBody = `{"freq_hz":1000000,"latency_ns":10,"buffer":3}`

	rng := rand.New(rand.NewSource(7))
	var now int64
	for batch := 0; batch < 6; batch++ {
		n := 1
		if batch > 0 {
			n = 2 + rng.Intn(32)
		}
		tsv := make([]int64, n)
		dv := make([]int64, n)
		for i := range tsv {
			now += int64(rng.Intn(30))
			tsv[i] = now
			dv[i] = int64(rng.Intn(400))
		}
		body := fmt.Sprintf(`{"t":%s,"demand":%s}`, jsonInts(tsv), jsonInts(dv))
		for _, base := range []string{cached.URL, uncached.URL} {
			if code, raw := postBody(t, base+"/v1/streams/s/ingest", body); code != http.StatusOK {
				t.Fatalf("ingest: %d %s", code, raw)
			}
		}
		for _, q := range [][2]string{
			{"GET", "/v1/streams/s/curves"},
			{"GET", "/v1/streams/s/minfreq?b=2"},
			{"GET", "/v1/streams/s/verdict"},
			{"POST", "/v1/streams/s/check"},
		} {
			var cc, uc int
			var cb, ub []byte
			if q[0] == "GET" {
				cc, cb = getRaw(t, cached.URL+q[1])
				uc, ub = getRaw(t, uncached.URL+q[1])
			} else {
				cc, cb = postBody(t, cached.URL+q[1], checkBody)
				uc, ub = postBody(t, uncached.URL+q[1], checkBody)
			}
			if cc != uc {
				t.Fatalf("batch %d %s: status cached=%d uncached=%d", batch, q[1], cc, uc)
			}
			if !bytes.Equal(cb, ub) {
				t.Fatalf("batch %d %s: cached renderer differs from encoding/json:\ncached:   %s\nuncached: %s",
					batch, q[1], cb, ub)
			}
		}
	}
}

// queryBinary fires a request with the binary Accept header and returns the
// status, Content-Type and body.
func queryBinary(t *testing.T, method, url, body string) (int, string, []byte) {
	t.Helper()
	var rd *strings.Reader
	if body != "" {
		rd = strings.NewReader(body)
	} else {
		rd = strings.NewReader("")
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", ContentTypeQueryBinary)
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), raw
}

// TestBinaryQueriesMatchJSON decodes the columnar binary answers of
// /curves, /check and /minfreq and requires them value-identical to the
// JSON answers at the same stream version.
func TestBinaryQueriesMatchJSON(t *testing.T) {
	ts := newTestServer(t, Config{Stream: stream.Config{Window: 64, MaxK: 16}})
	if code, raw := postBody(t, ts.URL+"/v1/streams/s/ingest",
		`{"t":[0,7,9,21,30,44,45,60],"demand":[5,12,3,40,7,22,9,31]}`); code != http.StatusOK {
		t.Fatalf("ingest: %d %s", code, raw)
	}

	// curves
	_, jraw := getRaw(t, ts.URL+"/v1/streams/s/curves")
	var jc struct {
		Version  int64   `json:"version"`
		Total    int64   `json:"total"`
		InWindow int     `json:"in_window"`
		Upper    []int64 `json:"upper"`
		Lower    []int64 `json:"lower"`
		DMin     []int64 `json:"dmin"`
		DMax     []int64 `json:"dmax"`
	}
	if err := json.Unmarshal(jraw, &jc); err != nil {
		t.Fatalf("curves JSON: %v", err)
	}
	code, ct, braw := queryBinary(t, "GET", ts.URL+"/v1/streams/s/curves", "")
	if code != http.StatusOK || ct != ContentTypeQueryBinary {
		t.Fatalf("binary curves: status %d content-type %q", code, ct)
	}
	bc, err := wirefmt.DecodeCurves(braw)
	if err != nil {
		t.Fatalf("DecodeCurves: %v", err)
	}
	if bc.Version != jc.Version || bc.Total != jc.Total || int(bc.InWindow) != jc.InWindow {
		t.Fatalf("binary curves header mismatch: %+v vs %+v", bc, jc)
	}
	for _, cols := range [][2][]int64{
		{bc.Upper, jc.Upper}, {bc.Lower, jc.Lower}, {bc.DMin, jc.DMin}, {bc.DMax, jc.DMax},
	} {
		if len(cols[0]) != len(cols[1]) {
			t.Fatalf("column length mismatch: %d vs %d", len(cols[0]), len(cols[1]))
		}
		for i := range cols[0] {
			if cols[0][i] != cols[1][i] {
				t.Fatalf("column value mismatch at %d: %d vs %d", i, cols[0][i], cols[1][i])
			}
		}
	}

	// check
	const checkBody = `{"freq_hz":1000000,"latency_ns":10,"buffer":3}`
	_, jraw = postBody(t, ts.URL+"/v1/streams/s/check", checkBody)
	var jk struct {
		Version int64 `json:"version"`
		OK      bool  `json:"ok"`
	}
	if err := json.Unmarshal(jraw, &jk); err != nil {
		t.Fatalf("check JSON: %v", err)
	}
	code, _, braw = queryBinary(t, "POST", ts.URL+"/v1/streams/s/check", checkBody)
	if code != http.StatusOK {
		t.Fatalf("binary check: status %d", code)
	}
	bk, err := wirefmt.DecodeCheck(braw)
	if err != nil {
		t.Fatalf("DecodeCheck: %v", err)
	}
	if bk.Version != jk.Version || bk.OK != jk.OK {
		t.Fatalf("binary check mismatch: %+v vs %+v", bk, jk)
	}

	// minfreq
	_, jraw = getRaw(t, ts.URL+"/v1/streams/s/minfreq?b=2")
	var jm minFreqResponse
	if err := json.Unmarshal(jraw, &jm); err != nil {
		t.Fatalf("minfreq JSON: %v", err)
	}
	code, _, braw = queryBinary(t, "GET", ts.URL+"/v1/streams/s/minfreq?b=2", "")
	if code != http.StatusOK {
		t.Fatalf("binary minfreq: status %d", code)
	}
	bm, err := wirefmt.DecodeMinFreq(braw)
	if err != nil {
		t.Fatalf("DecodeMinFreq: %v", err)
	}
	if bm.Version != jm.Version || bm.GammaHz != jm.GammaHz ||
		int(bm.GammaAtK) != jm.GammaAtK || bm.GammaAtSpanNs != jm.GammaAtSpanNs ||
		bm.WCETHz != jm.WCETHz || int(bm.WCETAtK) != jm.WCETAtK ||
		bm.Saving != jm.Saving || int(bm.Buffer) != jm.Buffer {
		t.Fatalf("binary minfreq mismatch: %+v vs %+v", bm, jm)
	}

	// Errors stay JSON even with the binary Accept header.
	code, ct, braw = queryBinary(t, "GET", ts.URL+"/v1/streams/nope/curves", "")
	if code != http.StatusNotFound || !strings.Contains(ct, "application/json") {
		t.Fatalf("binary-accept error answer: status %d content-type %q body %s", code, ct, braw)
	}
}

// TestBatchQueryMatchesIndividual requires every sub-object of a /v1/query
// answer to be byte-identical to the corresponding single-stream endpoint's
// body, in request order, with unknown ids answered inline.
func TestBatchQueryMatchesIndividual(t *testing.T) {
	ts := newTestServer(t, Config{Stream: stream.Config{Window: 64, MaxK: 16}})
	ingest := func(id, body string) {
		t.Helper()
		if code, raw := postBody(t, ts.URL+"/v1/streams/"+id+"/ingest", body); code != http.StatusOK {
			t.Fatalf("ingest %s: %d %s", id, code, raw)
		}
	}
	ingest("a", `{"t":[0,5,9,14],"demand":[3,8,1,12]}`)
	ingest("b", `{"t":[2,4],"demand":[100,7]}`)

	const checkBody = `{"freq_hz":1000000,"latency_ns":10,"buffer":3}`
	code, raw := postBody(t, ts.URL+"/v1/query",
		`{"ids":["a","ghost","b"],"curves":true,"verdict":true,"minfreq_b":2,"check":`+checkBody+`}`)
	if code != http.StatusOK {
		t.Fatalf("batch: %d %s", code, raw)
	}
	var env struct {
		Streams []struct {
			ID      string          `json:"id"`
			Error   string          `json:"error"`
			Curves  json.RawMessage `json:"curves"`
			Check   json.RawMessage `json:"check"`
			MinFreq json.RawMessage `json:"minfreq"`
			Verdict json.RawMessage `json:"verdict"`
		} `json:"streams"`
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("batch envelope: %v\n%s", err, raw)
	}
	if got := []string{env.Streams[0].ID, env.Streams[1].ID, env.Streams[2].ID}; got[0] != "a" || got[1] != "ghost" || got[2] != "b" {
		t.Fatalf("request order not preserved: %v", got)
	}
	if env.Streams[1].Error != "unknown stream" || env.Streams[1].Curves != nil {
		t.Fatalf("unknown id not answered inline: %+v", env.Streams[1])
	}

	for _, i := range []int{0, 2} {
		id := env.Streams[i].ID
		_, curves := getRaw(t, ts.URL+"/v1/streams/"+id+"/curves")
		_, verdict := getRaw(t, ts.URL+"/v1/streams/"+id+"/verdict")
		_, minfreq := getRaw(t, ts.URL+"/v1/streams/"+id+"/minfreq?b=2")
		_, check := postBody(t, ts.URL+"/v1/streams/"+id+"/check", checkBody)
		for _, pair := range []struct {
			name string
			sub  json.RawMessage
			full []byte
		}{
			{"curves", env.Streams[i].Curves, curves},
			{"verdict", env.Streams[i].Verdict, verdict},
			{"minfreq", env.Streams[i].MinFreq, minfreq},
			{"check", env.Streams[i].Check, check},
		} {
			want := bytes.TrimSuffix(pair.full, []byte("\n"))
			if !bytes.Equal(pair.sub, want) {
				t.Fatalf("stream %s %s: batch sub-object differs:\nbatch:      %s\nindividual: %s",
					id, pair.name, pair.sub, want)
			}
		}
	}

	// "b" has 2 samples: its check/minfreq answers are the 409 error objects,
	// spliced verbatim — already compared above. Validation errors:
	for _, bad := range []string{
		`{"ids":[]}`,
		`{"ids":["a"]}`,
		`{"curves":true}`,
		`{"ids":["a"],"minfreq_b":-1}`,
		`{"ids":["a"],"check":{"freq_hz":0}}`,
	} {
		if code, _ := postBody(t, ts.URL+"/v1/query", bad); code != http.StatusBadRequest {
			t.Fatalf("batch %s: want 400, got %d", bad, code)
		}
	}
	tooMany := `{"ids":[` + strings.Repeat(`"x",`, maxBatchStreams) + `"x"],"curves":true}`
	if code, _ := postBody(t, ts.URL+"/v1/query", tooMany); code != http.StatusBadRequest {
		t.Fatalf("oversized batch: want 400, got %d", code)
	}
}

// TestMissStormSingleRender is the singleflight contract: N concurrent
// requests for one uncached (key, version) trigger exactly ONE render; the
// other N-1 wait for the leader and replay its bytes.
func TestMissStormSingleRender(t *testing.T) {
	s, err := New(Config{Stream: stream.Config{Window: 64, MaxK: 16}})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	seedStream(t, h, "s")

	const storm = 32
	renders0 := s.metrics.renders.Load()
	bodies := make([][]byte, storm)
	var wg sync.WaitGroup
	var start sync.WaitGroup
	start.Add(1)
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest("GET", "/v1/streams/s/curves", nil)
			rw := httptest.NewRecorder()
			start.Wait()
			h.ServeHTTP(rw, req)
			if rw.Code != http.StatusOK {
				t.Errorf("request %d: status %d", i, rw.Code)
			}
			bodies[i] = rw.Body.Bytes()
		}(i)
	}
	start.Done()
	wg.Wait()
	if d := s.metrics.renders.Load() - renders0; d != 1 {
		t.Fatalf("storm of %d concurrent misses rendered %d times, want exactly 1", storm, d)
	}
	for i := 1; i < storm; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("storm responses diverge:\n%s\n%s", bodies[0], bodies[i])
		}
	}
	// A second storm at the same version renders nothing at all.
	for i := 0; i < storm; i++ {
		req := httptest.NewRequest("GET", "/v1/streams/s/curves", nil)
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != http.StatusOK {
			t.Fatalf("post-storm hit: status %d", rw.Code)
		}
	}
	if d := s.metrics.renders.Load() - renders0; d != 1 {
		t.Fatalf("cache hits re-rendered: %d renders total, want 1", d)
	}
}

// TestCheckCacheEpochReset drives more distinct check keys through one
// version than the per-version map cap and requires the epoch-reset counter
// to move — the bounded-map guarantee — while answers stay correct.
func TestCheckCacheEpochReset(t *testing.T) {
	ts := newTestServer(t, Config{Stream: stream.Config{Window: 64, MaxK: 16}})
	if code, raw := postBody(t, ts.URL+"/v1/streams/s/ingest",
		`{"t":[0,7,9,21],"demand":[5,12,3,40]}`); code != http.StatusOK {
		t.Fatalf("ingest: %d %s", code, raw)
	}
	for i := 0; i < maxCachedQueries+8; i++ {
		body := fmt.Sprintf(`{"freq_hz":%d,"latency_ns":10,"buffer":3}`, 1_000_000+i)
		if code, raw := postBody(t, ts.URL+"/v1/streams/s/check", body); code != http.StatusOK {
			t.Fatalf("check %d: %d %s", i, code, raw)
		}
	}
	_, metrics := getRaw(t, ts.URL+"/metrics")
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, "wcmd_query_cache_epoch_resets_total ") {
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "wcmd_query_cache_epoch_resets_total ")))
			if err != nil || n < 1 {
				t.Fatalf("epoch reset counter: %q (err %v)", line, err)
			}
			return
		}
	}
	t.Fatal("wcmd_query_cache_epoch_resets_total not exported")
}

// TestParseCheckBodyDifferential: whenever the fast integer-grammar parser
// accepts a body, the encoding/json fallback must accept it too and produce
// the same values — the fast path may reject (and fall back), never disagree.
func TestParseCheckBodyDifferential(t *testing.T) {
	corpus := []string{
		`{"freq_hz":1000000,"latency_ns":10,"buffer":3}`,
		`{"buffer":3,"freq_hz":1000000,"latency_ns":10}`,
		` { "freq_hz" : 1 , "latency_ns" : 0 , "buffer" : 0 } `,
		"\t{\n\"freq_hz\":5,\"latency_ns\":6,\"buffer\":7}\n",
		`{"freq_hz":-4,"latency_ns":-1,"buffer":-9}`,
		`{"freq_hz":9007199254740992,"latency_ns":0,"buffer":0}`,
		`{"freq_hz":9007199254740993,"latency_ns":0,"buffer":0}`,
		`{"freq_hz":1.5,"latency_ns":10,"buffer":3}`,
		`{"freq_hz":1e6,"latency_ns":10,"buffer":3}`,
		`{"freq_hz":01,"latency_ns":10,"buffer":3}`,
		`{"freq_hz":1000000,"latency_ns":10}`,
		`{"freq_hz":1000000,"latency_ns":10,"buffer":3,"extra":1}`,
		`{"freq_hz":1000000,"latency_ns":10,"buffer":3}x`,
		`{"freq_hz":1000000,"freq_hz":2,"latency_ns":10,"buffer":3}`,
		`{"freq_hz":1,"latency_ns":10,"buffer":3}`,
		`{}`,
		`{"freq_hz":}`,
		`[1,2,3]`,
		``,
		`{"freq_hz": 0, "latency_ns": 0, "buffer": 0}`,
		`{"freq_hz":123456789,"latency_ns":987654321,"buffer":42}`,
	}
	for _, body := range corpus {
		var fast checkRequest
		ok := parseCheckBody([]byte(body), &fast)
		if !ok {
			continue // fast path declined; the fallback owns this body
		}
		var slow checkRequest
		if err := decodeJSON(strings.NewReader(body), &slow); err != nil {
			t.Fatalf("fast parser accepted %q but encoding/json rejects it: %v", body, err)
		}
		if fast != slow {
			t.Fatalf("parser disagreement on %q: fast %+v, slow %+v", body, fast, slow)
		}
	}
}

// TestMinfreqBDifferential: the manual RawQuery parse must agree with the
// url.Values reference semantics on every query shape.
func TestMinfreqBDifferential(t *testing.T) {
	ref := func(rawQuery string) (int, bool) {
		v, err := url.ParseQuery(rawQuery)
		if err != nil {
			v = url.Values{}
		}
		s := v.Get("b")
		if s == "" {
			return 1, true
		}
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return 0, false
		}
		return n, true
	}
	corpus := []string{
		"", "b=2", "b=0", "b=1", "b=-1", "b=abc", "b=", "b=2&x=1", "x=1&b=3",
		"b=00", "b=007", "b=2147483647", "b=2147483648", "b=99999999999999999999",
		"b=%32", "b=+2", "b=2&b=3", "a=b", "b=1.5", "b=0x10",
	}
	for _, q := range corpus {
		r := httptest.NewRequest("GET", "/v1/streams/s/minfreq", nil)
		r.URL.RawQuery = q
		gotB, gotOK := minfreqB(r)
		wantB, wantOK := ref(q)
		if gotOK != wantOK || (gotOK && gotB != wantB) {
			t.Fatalf("minfreqB(%q) = (%d, %v), reference (%d, %v)", q, gotB, gotOK, wantB, wantOK)
		}
	}
}

// TestAppendJSONPrimitivesMatchEncodingJSON pins the byte-level contract of
// the hand renderers' building blocks against encoding/json, including the
// exponent-format boundaries of the float encoder and the full escape table
// of the string encoder.
func TestAppendJSONPrimitivesMatchEncodingJSON(t *testing.T) {
	floats := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, 1.0 / 3.0, 1e-5, 1e-6, 9.999999e-7, 1e-7,
		1e20, 1e21, 9.99e20, 1.000001e21, 123456.789, -2.5e-8, 3.141592653589793,
		math.MaxFloat64, math.SmallestNonzeroFloat64, 1e8, 2.5e9,
	}
	for _, f := range floats {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendJSONFloat(nil, f); !bytes.Equal(got, want) {
			t.Fatalf("appendJSONFloat(%g) = %s, encoding/json says %s", f, got, want)
		}
	}
	strs := []string{
		"", "plain", `quote"back\slash`, "tab\tnewline\ncr\r", "\x00\x01\x1f",
		"<script>&amp;</script>", "  ", "héllo wörld", "日本語",
		string([]byte{0xff, 0xfe}), "emoji \U0001F600", "del\x7f",
		"line sep para",
	}
	for _, s := range strs {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendJSONString(nil, s); !bytes.Equal(got, want) {
			t.Fatalf("appendJSONString(%q) = %s, encoding/json says %s", s, got, want)
		}
	}
}
