// Package server exposes the streaming workload-curve maintainer of
// internal/stream as an HTTP service — the first piece of the repository
// that serves traffic instead of batch-analyzing files.
//
// Streams are partitioned across fixed shards by FNV-1a hash of the stream
// id; each shard guards only its id→stream map with its own RWMutex — held
// for map access only, never across stream work — and every stream
// serializes its own state behind its own lock, so ingestion into different
// streams never contends. The endpoints:
//
//	POST   /v1/streams/{id}/ingest    {"t":[...], "demand":[...]} — or the
//	                                  columnar binary format (Content-Type
//	                                  application/x-wcm-ingest, see
//	                                  ContentTypeBinary) for the
//	                                  zero-allocation fast path
//	GET    /v1/streams/{id}/curves    γᵘ/γˡ and span tables of the window
//	POST   /v1/streams/{id}/check     eq. (8)  {"freq_hz":F, "latency_ns":L, "buffer":b}
//	GET    /v1/streams/{id}/minfreq?b=N   eq. (9) and eq. (10) side by side
//	POST   /v1/streams/{id}/contract  {"upper":[...], "lower":[...], "window":W}
//	GET    /v1/streams/{id}/verdict   online-monitor verdict (Admits-style)
//	GET    /v1/streams                list streams
//	DELETE /v1/streams/{id}           drop a stream
//	GET    /v1/stats                  JSON latency stats (p50/p95/p99 per endpoint)
//	GET    /healthz                   liveness + build info + uptime
//	GET    /metrics                   Prometheus text exposition
//	GET    /debug/self                the service's own workload curves (-self-curves)
//	GET    /debug/traces              recent kept traces (Config.TraceSample > 0)
//	GET    /debug/traces/{id}         one trace's full span tree as JSON
//
// Observability (see internal/obs): every instrumented request carries a
// trace ID — the client's X-Request-Id when present, generated otherwise —
// echoed on the response and attached to a request-scoped slog.Logger that
// handlers reach via obs.LoggerFrom(r.Context()). Latency lands in
// lock-free log-bucketed histograms per endpoint and per hot-path stage
// (decode/update/render, cache hit/miss), exported as Prometheus
// histograms with p50/p95/p99 estimates. Requests slower than
// Config.SlowRequest are logged at Warn with their trace ID. With
// Config.SelfCurves the server additionally feeds each request's measured
// cost into a built-in CurveStream and serves its own γᵘ/γˡ — the paper's
// workload characterization applied to the service itself — at /debug/self.
//
// Query responses (/curves, /check, /minfreq, /verdict) are memoized in a
// per-stream version-keyed cache (see queryCache): each stream carries a
// monotonically increasing version bumped on every mutation, and a repeated
// query at an unchanged version replays the previously rendered bytes after
// one atomic load — read-heavy traffic between ingest batches never takes a
// stream lock or re-walks curves. Responses carry the version they were
// computed at.
//
// Request bodies are size-limited (Config.MaxBodyBytes); unknown JSON
// fields are rejected so client typos fail loudly.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"wcm/internal/core"
	"wcm/internal/curve"
	"wcm/internal/obs"
	"wcm/internal/obs/trace"
	"wcm/internal/qos"
	"wcm/internal/stream"
	"wcm/internal/wal"
)

// Defaults for zero-valued Config fields.
const (
	DefaultShards       = 16
	DefaultMaxBodyBytes = 1 << 20
	DefaultSlowRequest  = 250 * time.Millisecond
	// Default in-flight caps per endpoint class. They bound goroutine and
	// memory blow-up under overload, not steady-state throughput: a healthy
	// deployment runs far below them, and a flood past them is answered
	// with immediate 429s (or degraded cached reads) instead of an
	// ever-growing convoy on the stream locks.
	DefaultMaxInflightIngest = 256
	DefaultMaxInflightRead   = 1024
	// DefaultTraceSample is the 1-in-N keep rate wcmd uses for ordinary
	// traces when tracing is enabled (anomalous traces are always kept).
	DefaultTraceSample = trace.DefaultSampleN
)

// Config parameterizes a Server. The zero value picks service defaults.
type Config struct {
	// Shards is the number of stream-map partitions. Default 16.
	Shards int
	// MaxBodyBytes caps every request body. Default 1 MiB.
	MaxBodyBytes int64
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: the profiles expose internals (goroutine stacks, heap
	// contents) that an operator must opt into serving.
	EnablePprof bool
	// Stream configures streams auto-created on first ingest.
	Stream stream.Config
	// Logger receives the service's structured log lines. nil discards
	// them (tests, benchmarks without -v).
	Logger *slog.Logger
	// SlowRequest is the latency above which a request is logged at Warn
	// with its trace ID. 0 picks DefaultSlowRequest; negative disables
	// slow-request logging.
	SlowRequest time.Duration
	// SelfCurves feeds each request's measured cost into a built-in
	// CurveStream and serves the service's own γᵘ/γˡ at /debug/self.
	SelfCurves bool
	// RequestTimeout bounds each request's handler execution: the request
	// context carries the deadline, the ingest path refuses to start a
	// stream update past it, and query paths stop waiting for a contended
	// stream lock at it (serving a degraded cached answer instead, when
	// one exists). ≤ 0 disables per-request deadlines — the zero value
	// stays deadline-free so embedded uses (tests, benchmarks) measure
	// the bare handlers; wcmd sets its own default via -request-timeout.
	RequestTimeout time.Duration
	// MaxInflightIngest caps concurrently executing mutating requests
	// (ingest, contract, delete); excess requests are shed with 429 and
	// Retry-After. 0 picks DefaultMaxInflightIngest; negative disables.
	MaxInflightIngest int
	// MaxInflightRead caps concurrently executing read requests (curves,
	// check, minfreq, verdict, list); excess requests are served from the
	// last cached snapshot marked "degraded":true when possible, shed with
	// 429 otherwise. 0 picks DefaultMaxInflightRead; negative disables.
	// Observability endpoints (healthz, metrics, stats, self) are never
	// shed.
	MaxInflightRead int
	// Faults injects failures at named points for resilience testing (see
	// Fault). Empty in production; wcmd only exposes -inject-fault behind
	// the faultinject build tag.
	Faults []Fault
	// IngestRing enables the async ingest pipeline: each registry shard
	// gets an SPSC ring of this capacity (rounded up to a power of two)
	// and a dedicated worker goroutine that drains it, coalescing batches
	// that arrived concurrently into single fused stream updates (see
	// async.go). 0 keeps ingest synchronous — the right default for
	// embedded uses (tests, libraries) that never call Server.Close;
	// wcmd turns it on via -ingest-ring. Negative is invalid.
	IngestRing int
	// CoalesceBudget caps how many queued jobs one worker wakeup drains
	// and fuses (only meaningful with IngestRing > 0). 0 picks
	// DefaultCoalesceBudget; negative is invalid.
	CoalesceBudget int
	// WAL enables durability: every acknowledged ingest batch is appended
	// to this write-ahead log before the response goes out, and New
	// replays the log's recovery state into the registry before returning
	// (see durability.go). The manager must have been Opened with
	// Shards == Config.Shards and the same stream config; its lifecycle
	// belongs to the server once attached — Server.Close checkpoints and
	// closes it. nil keeps the server purely in-memory (the default, and
	// the zero-overhead path: no WAL branch is taken anywhere hot).
	WAL *wal.Manager
	// SnapshotInterval is the period of the background checkpoint loop
	// (snapshot every live stream, truncate the WAL). 0 disables periodic
	// checkpoints — Close still runs a final one. Only meaningful with
	// WAL set.
	SnapshotInterval time.Duration
	// TraceSample enables end-to-end request tracing: every request records
	// a span tree (decode → enqueue → queue wait → apply → WAL append/fsync
	// → render, stitched across the async hop), and at completion tail-based
	// retention keeps slow/errored/shed/degraded/panicking traces always and
	// 1 in TraceSample ordinary ones. Kept traces are served at
	// /debug/traces. 0 disables tracing entirely (the default — embedded
	// uses pay nothing); negative is invalid.
	TraceSample int
	// TraceStoreBytes hard-caps the in-memory trace store (oldest evicted).
	// 0 picks the trace package default (4 MiB). Only meaningful with
	// TraceSample > 0.
	TraceStoreBytes int64
	// DisableQueryCache turns the version-keyed query cache off: every
	// read takes a fresh snapshot and renders from scratch (json.Marshal,
	// no singleflight, no memoization). It exists for benchmarks — an
	// honest cached-vs-uncached comparison must run both sides through the
	// same handler stack — and for debugging cache suspicion in the field.
	DisableQueryCache bool
	// Tenants declares the multi-tenant QoS policies: per-tenant token
	// buckets, SLO classes and stream quotas (see internal/qos and
	// qos.go). Requests name their tenant via the X-Wcm-Tenant header or
	// ?tenant= query param; untagged and unknown-tenant requests resolve
	// to the default tenant (name "default" — configure a tenant with
	// that name to give the default traffic a policy). Empty leaves every
	// request on an unlimited default tenant.
	Tenants []qos.TenantConfig
	// DefaultSLO is the SLO class for tenants that declare none and for
	// the default tenant: "interactive" (the default), "batch" or
	// "besteffort".
	DefaultSLO string
}

// Server is the wcmd HTTP service: a sharded registry of streams plus the
// request handlers and metrics.
type Server struct {
	cfg     Config
	shards  []*shard
	mux     *http.ServeMux
	metrics *metrics

	logger *slog.Logger
	slow   time.Duration // 0 = slow-request logging disabled
	self   *obs.SelfStream
	tracer *trace.Tracer // nil = tracing off
	scopes sync.Pool     // *reqScope

	// bareCtx skips the per-request context wrap (one http.Request copy
	// per request) when nothing could observe it: no request deadline and
	// a discarding logger. See instrument.
	bareCtx bool

	limIngest *inflightLimiter // nil = unlimited
	limRead   *inflightLimiter // nil = unlimited
	faults    map[string]Fault // nil = no fault injection
	qos       *qosRegistry     // never nil; holds at least the default tenant

	// Async ingest pipeline (nil/zero when Config.IngestRing == 0).
	pipes   []*ingestPipe // one per shard, index-aligned with shards
	workers sync.WaitGroup
	closing atomic.Bool

	// Durability (nil/zero when Config.WAL == nil; see durability.go).
	wal        *wal.Manager
	walShards  []*wal.ShardLog // index-aligned with shards
	recovering atomic.Bool
	recovered  recoveryStats
	ckStop     chan struct{} // closes the checkpoint loop
	ckDone     chan struct{} // checkpoint loop exited

	// Hot-path stage histograms, resolved once so handlers skip the
	// stage-name map lookup per request.
	stDecode, stUpdate, stRender *obs.Histogram
	stCacheHit, stCacheMiss      *obs.Histogram
}

// Entry registry states (see entry.state). An entry starts live; leaving
// the registry tombstones it, and the tombstone kind decides what a
// racing late writer does: re-register (droppedEmpty — the removal was
// only garbage collection of a ghost) or let go (deleted — the user asked
// for the stream to die, so losing the race to a DELETE is a legal
// ordering).
const (
	entryLive int32 = iota
	entryDroppedEmpty
	entryDeleted
)

// entry pairs a stream with its version-keyed query cache and its
// registry-membership state. state only transitions away from entryLive
// under the owning shard's write lock, so writers that observe a
// tombstone after mutating the stream can resolve the race under that
// same lock (see ensureRegistered).
type entry struct {
	st    *stream.Stream
	cache queryCache
	state atomic.Int32
	// owner is the tenant whose stream quota this entry occupies — the
	// tenant that created it. nil for entries restored by WAL recovery
	// (the creating request's identity is not in the log) and for
	// servers without quotas; such entries count against no one.
	owner *tenantState
}

type shard struct {
	mu      sync.RWMutex
	streams map[string]*entry
}

// New builds a server. The stream defaults are validated eagerly so a bad
// flag fails at startup, not on first ingest.
func New(cfg Config) (*Server, error) {
	if cfg.Shards == 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("server: shards=%d", cfg.Shards)
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxBodyBytes < 1 {
		return nil, fmt.Errorf("server: max body bytes=%d", cfg.MaxBodyBytes)
	}
	if _, err := stream.New(cfg.Stream); err != nil {
		return nil, fmt.Errorf("server: stream defaults: %w", err)
	}
	if cfg.MaxInflightIngest == 0 {
		cfg.MaxInflightIngest = DefaultMaxInflightIngest
	}
	if cfg.MaxInflightRead == 0 {
		cfg.MaxInflightRead = DefaultMaxInflightRead
	}
	faults, err := buildFaults(cfg.Faults)
	if err != nil {
		return nil, err
	}
	qreg, err := newQoSRegistry(cfg.Tenants, cfg.DefaultSLO)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		shards:    make([]*shard, cfg.Shards),
		mux:       http.NewServeMux(),
		metrics:   newMetrics(endpointNames),
		logger:    cfg.Logger,
		limIngest: newLimiter(cfg.MaxInflightIngest),
		limRead:   newLimiter(cfg.MaxInflightRead),
		faults:    faults,
		qos:       qreg,
	}
	if s.logger == nil {
		s.logger = obs.Discard()
	}
	switch {
	case cfg.SlowRequest == 0:
		s.slow = DefaultSlowRequest
	case cfg.SlowRequest > 0:
		s.slow = cfg.SlowRequest
	}
	if cfg.SelfCurves {
		self, err := obs.NewSelf(stream.Config{})
		if err != nil {
			return nil, fmt.Errorf("server: self stream: %w", err)
		}
		s.self = self
	}
	if cfg.TraceSample < 0 {
		return nil, fmt.Errorf("server: trace sample=%d", cfg.TraceSample)
	}
	if cfg.TraceSample > 0 {
		s.tracer = trace.New(trace.Config{
			SampleN:    cfg.TraceSample,
			StoreBytes: cfg.TraceStoreBytes,
		})
	}
	s.scopes.New = func() any { return new(reqScope) }
	// Tracing needs the request scope reachable from handler and worker
	// contexts, so it forces the context wrap even with no deadline/logger.
	s.bareCtx = cfg.RequestTimeout <= 0 && s.logger == obs.Discard() && s.tracer == nil
	s.stDecode = s.metrics.stage(stageDecode)
	s.stUpdate = s.metrics.stage(stageUpdate)
	s.stRender = s.metrics.stage(stageRender)
	s.stCacheHit = s.metrics.stage(stageCacheHit)
	s.stCacheMiss = s.metrics.stage(stageCacheMiss)
	for i := range s.shards {
		s.shards[i] = &shard{streams: make(map[string]*entry)}
	}
	if cfg.IngestRing < 0 || cfg.CoalesceBudget < 0 {
		return nil, fmt.Errorf("server: ingest ring=%d coalesce=%d", cfg.IngestRing, cfg.CoalesceBudget)
	}
	if cfg.IngestRing > 0 {
		budget := cfg.CoalesceBudget
		if budget == 0 {
			budget = DefaultCoalesceBudget
		}
		if err := s.startPipeline(cfg.IngestRing, budget); err != nil {
			return nil, err
		}
	}
	if cfg.WAL != nil {
		if err := s.attachWAL(cfg.WAL); err != nil {
			return nil, err
		}
		if cfg.SnapshotInterval > 0 {
			s.ckStop = make(chan struct{})
			s.ckDone = make(chan struct{})
			go s.checkpointLoop(cfg.SnapshotInterval)
		}
	}
	s.routes()
	return s, nil
}

// endpointNames lists every instrumented route, pre-registering its metrics
// cell in newMetrics. Adding a route means adding its name here — endpoint()
// panics at startup otherwise (see the invariant on metrics).
var endpointNames = []string{
	"ingest", "curves", "check", "minfreq", "contract", "verdict",
	"list", "delete", "stats", "healthz", "metrics", "self", "query",
	"traces", "trace", "tenants",
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/streams/{id}/ingest", s.instrument("ingest", classIngest, s.handleIngest, nil))
	s.mux.HandleFunc("GET /v1/streams/{id}/curves", s.instrument("curves", classRead, s.handleCurves, s.shedCurves))
	s.mux.HandleFunc("POST /v1/streams/{id}/check", s.instrument("check", classRead, s.handleCheck, s.shedCheck))
	s.mux.HandleFunc("GET /v1/streams/{id}/minfreq", s.instrument("minfreq", classRead, s.handleMinFreq, s.shedMinFreq))
	s.mux.HandleFunc("POST /v1/streams/{id}/contract", s.instrument("contract", classIngest, s.handleContract, nil))
	s.mux.HandleFunc("GET /v1/streams/{id}/verdict", s.instrument("verdict", classRead, s.handleVerdict, s.shedVerdict))
	s.mux.HandleFunc("POST /v1/query", s.instrument("query", classRead, s.handleBatchQuery, nil))
	s.mux.HandleFunc("GET /v1/streams", s.instrument("list", classRead, s.handleList, nil))
	s.mux.HandleFunc("DELETE /v1/streams/{id}", s.instrument("delete", classIngest, s.handleDelete, nil))
	s.mux.HandleFunc("GET /v1/stats", s.instrument("stats", classNone, s.handleStats, nil))
	// classNone: the QoS introspection surface must answer exactly when
	// tenants are being throttled or shed (mirrors /metrics).
	s.mux.HandleFunc("GET /v1/tenants", s.instrument("tenants", classNone, s.handleTenants, nil))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", classNone, s.handleHealthz, nil))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", classNone, s.handleMetrics, nil))
	s.mux.HandleFunc("GET /debug/self", s.instrument("self", classNone, s.handleSelf, nil))
	// classNone: the trace store is the tool for diagnosing overload, so
	// scraping it must never shed (mirrors healthz/metrics).
	s.mux.HandleFunc("GET /debug/traces", s.instrument("traces", classNone, s.handleTraces, nil))
	s.mux.HandleFunc("GET /debug/traces/{id}", s.instrument("trace", classNone, s.handleTraceByID, nil))
	if s.cfg.EnablePprof {
		// Mounted on the service mux (not http.DefaultServeMux) so only
		// this handler serves them, and only when opted in.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// Handler returns the service's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// shardIndex maps a stream id to its registry shard — and, when the async
// ingest pipeline is on, to the dedicated ingest worker for that shard.
// Inline FNV-1a: byte-for-byte the sequence hash/fnv.New32a produces —
// existing WAL directories partition records by this value, so the mapping
// must never change — without the per-call hasher allocation the interface
// path costs.
func (s *Server) shardIndex(id string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return h % uint32(len(s.shards))
}

func (s *Server) shardFor(id string) *shard {
	return s.shards[s.shardIndex(id)]
}

// get returns the entry for id, or nil.
func (s *Server) get(id string) *entry {
	sh := s.shardFor(id)
	sh.mu.RLock()
	e := sh.streams[id]
	sh.mu.RUnlock()
	return e
}

// getOrCreate returns the entry for id, creating it with the server's
// stream defaults on first use. created reports whether this call made it;
// callers that then fail before any state lands may dropIfEmpty the stream
// so rejected requests don't register ghosts.
//
// Creation is where per-tenant stream quotas bite: the requesting tenant
// (owner; nil skips quota accounting, as for WAL recovery and tests) must
// reserve a quota slot before the entry is registered. The slot is
// reserved with a CAS on the tenant's counter, so concurrent creates
// across shards cannot oversubscribe the quota.
func (s *Server) getOrCreate(id string, owner *tenantState) (e *entry, created bool, err error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	e = sh.streams[id]
	sh.mu.RUnlock()
	if e != nil {
		return e, false, nil
	}
	if !owner.reserveStream() {
		return nil, false, fmt.Errorf("tenant %q %w (max %d)", owner.name, errStreamQuota, owner.maxStreams)
	}
	st, err := stream.New(s.cfg.Stream) // built outside the shard lock
	if err != nil {
		owner.releaseStream()
		return nil, false, err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e := sh.streams[id]; e != nil {
		owner.releaseStream() // lost the creation race; no entry to own
		return e, false, nil
	}
	e = &entry{st: st, owner: owner}
	sh.streams[id] = e
	return e, true, nil
}

// dropIfEmpty removes a just-created stream that was never mutated, so a
// rejected first request doesn't register a ghost. The version check (not
// just Total) also protects entries that carry only a contract.
//
// The removed entry is tombstoned entryDroppedEmpty rather than silently
// forgotten: a concurrent request may have fetched the same entry via
// get()/getOrCreate() before the delete and mutated it right after the
// version check here — without the tombstone those samples would land in
// an orphaned stream invisible to every later read. Such late writers
// detect the tombstone after their mutation and re-register through
// ensureRegistered.
func (s *Server) dropIfEmpty(id string, e *entry) {
	if e.st.Version() != 0 {
		return
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	if cur, ok := sh.streams[id]; ok && cur == e && cur.st.Version() == 0 {
		e.state.Store(entryDroppedEmpty)
		delete(sh.streams, id)
		e.owner.releaseStream()
	}
	sh.mu.Unlock()
}

// ensureRegistered resolves the dropIfEmpty race for a writer that just
// mutated e: if a concurrent dropIfEmpty tombstoned the entry between
// this request's lookup and its mutation, re-register it so the mutation
// stays reachable. Returns an error when re-registration is impossible
// (a different stream now owns the id) — the caller fails the request
// loudly instead of acknowledging samples no read can see. A deleted
// tombstone is left alone: the mutation simply serialized before the
// user's DELETE.
func (s *Server) ensureRegistered(id string, e *entry) error {
	if e.state.Load() != entryDroppedEmpty {
		return nil
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e.state.Load() != entryDroppedEmpty {
		return nil
	}
	if cur, ok := sh.streams[id]; ok && cur != e {
		return fmt.Errorf("stream %q was dropped and re-created concurrently; retry", id)
	}
	sh.streams[id] = e
	e.state.Store(entryLive)
	e.owner.reclaimStream()
	return nil
}

// ---- request/response shapes ---------------------------------------------

type errorResponse struct {
	Error string `json:"error"`
}

type ingestRequest struct {
	T      []int64 `json:"t"`
	Demand []int64 `json:"demand"`
}

type violationJSON struct {
	Start int   `json:"start"`
	Len   int   `json:"len"`
	Sum   int64 `json:"sum"`
	Bound int64 `json:"bound"`
	Upper bool  `json:"upper"`
}

func violationFrom(v *core.Violation) *violationJSON {
	if v == nil {
		return nil
	}
	return &violationJSON{Start: v.Start, Len: v.Len, Sum: v.Sum, Bound: v.Bound, Upper: v.Upper}
}

type ingestResponse struct {
	Accepted   int            `json:"accepted"`
	Total      int64          `json:"total"`
	Violation  *violationJSON `json:"violation,omitempty"`
	Violations int64          `json:"violations"`
	Drift      int64          `json:"drift"`
}

type curvesResponse struct {
	Version  int64   `json:"version"`
	Total    int64   `json:"total"`
	InWindow int     `json:"in_window"`
	Upper    []int64 `json:"upper"`
	Lower    []int64 `json:"lower"`
	DMin     []int64 `json:"dmin"`
	DMax     []int64 `json:"dmax"`
}

type checkRequest struct {
	FreqHz    float64 `json:"freq_hz"`
	LatencyNs int64   `json:"latency_ns"`
	Buffer    int     `json:"buffer"`
}

type checkResponse struct {
	Version int64 `json:"version"`
	OK      bool  `json:"ok"`
}

type minFreqResponse struct {
	Version       int64   `json:"version"`
	GammaHz       float64 `json:"gamma_hz"`
	GammaAtK      int     `json:"gamma_at_k"`
	GammaAtSpanNs int64   `json:"gamma_at_span_ns"`
	WCETHz        float64 `json:"wcet_hz"`
	WCETAtK       int     `json:"wcet_at_k"`
	Saving        float64 `json:"saving"`
	Buffer        int     `json:"buffer"`
}

type contractRequest struct {
	Upper  []int64 `json:"upper"`
	Lower  []int64 `json:"lower"`
	Window int     `json:"window"`
}

type verdictResponse struct {
	Version        int64          `json:"version"`
	Admitted       bool           `json:"admitted"`
	ContractSet    bool           `json:"contract_set"`
	Total          int64          `json:"total"`
	Violations     int64          `json:"violations"`
	FirstViolation *violationJSON `json:"first_violation,omitempty"`
	Drift          int64          `json:"drift"`
}

type streamInfo struct {
	ID       string `json:"id"`
	Total    int64  `json:"total"`
	InWindow int    `json:"in_window"`
}

// ---- decoding -------------------------------------------------------------

// decodeJSON strictly decodes one JSON object from r into dst.
func decodeJSON(r io.Reader, dst any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return err
	}
	// Trailing garbage after the object is a client bug; reject it.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return errors.New("trailing data after JSON object")
	}
	return nil
}

// decodeIngestInto parses and structurally validates a JSON ingest batch,
// reusing req's slice capacity (encoding/json appends into the arrays it is
// handed), so a pooled req decodes without per-request column allocations.
func decodeIngestInto(r io.Reader, req *ingestRequest) error {
	req.T, req.Demand = req.T[:0], req.Demand[:0]
	if err := decodeJSON(r, req); err != nil {
		return err
	}
	if len(req.T) == 0 || len(req.Demand) == 0 {
		return errors.New(`"t" and "demand" must both be non-empty`)
	}
	if len(req.T) != len(req.Demand) {
		return fmt.Errorf(`"t" has %d entries, "demand" has %d`, len(req.T), len(req.Demand))
	}
	return nil
}

// decodeIngest parses one JSON ingest batch. Exposed for the fuzz harness:
// it must never panic, whatever bytes arrive.
func decodeIngest(r io.Reader) (ingestRequest, error) {
	var req ingestRequest
	if err := decodeIngestInto(r, &req); err != nil {
		return ingestRequest{}, err
	}
	return req, nil
}

// ---- ingest fast path ------------------------------------------------------

// ingestScratch holds every per-request buffer of the ingest path. One
// instance cycles through scratchPool per request, so the steady state
// allocates neither decode columns nor response bytes.
type ingestScratch struct {
	body []byte        // raw request body
	t, d []int64       // binary-decoded columns
	req  ingestRequest // JSON decode target (column capacity reused)
	out  []byte        // rendered response
}

var scratchPool = sync.Pool{New: func() any {
	return &ingestScratch{body: make([]byte, 0, 4096)}
}}

// readBody reads r to EOF into buf (append semantics — pass a length-0
// pooled buffer).
func readBody(r io.Reader, buf []byte) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// appendIngestResponse renders the violation-free ingest response exactly as
// encoding/json would (field order, omitted nil violation, trailing newline)
// without reflection or allocation.
func appendIngestResponse(dst []byte, res stream.IngestResult) []byte {
	dst = append(dst, `{"accepted":`...)
	dst = strconv.AppendInt(dst, int64(res.Accepted), 10)
	dst = append(dst, `,"total":`...)
	dst = strconv.AppendInt(dst, res.Total, 10)
	dst = append(dst, `,"violations":`...)
	dst = strconv.AppendInt(dst, res.Violations, 10)
	dst = append(dst, `,"drift":`...)
	dst = strconv.AppendInt(dst, res.Drift, 10)
	dst = append(dst, '}', '\n')
	return dst
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	sc := scratchPool.Get().(*ingestScratch)
	defer scratchPool.Put(sc)

	// Stage spans: tDecoded and tUpdated mark the decode→update→render
	// phase boundaries so /metrics separates wire-format cost from
	// curve-maintenance cost from response rendering.
	tStart := time.Now()
	var ts, ds []int64
	var err error
	sc.body, err = readBody(r.Body, sc.body[:0])
	if err == nil {
		if r.Header.Get("Content-Type") == ContentTypeBinary {
			sc.t, sc.d, err = decodeBinaryBatch(sc.body, sc.t[:0], sc.d[:0])
			ts, ds = sc.t, sc.d
			if err == nil {
				s.metrics.binaryBatches.Add(1)
			}
		} else {
			err = unmarshalIngest(sc.body, &sc.req)
			ts, ds = sc.req.T, sc.req.Demand
		}
	}
	tDecoded := time.Now()
	s.stDecode.Observe(tDecoded.Sub(tStart))
	tr := obs.TraceFrom(r.Context())
	tr.RecordAt("decode", tr.Root(), tStart, tDecoded)
	if err != nil {
		writeDecodeError(w, err)
		return
	}

	// A request already past its deadline must not start a stream update:
	// the client has given up, and the work would only grow the convoy.
	if r.Context().Err() != nil {
		writeBusy(w, "request deadline exceeded before stream update", retryAfterFloorSeconds)
		return
	}

	id := r.PathValue("id")
	e, created, err := s.getOrCreate(id, s.tenantFor(r))
	if err != nil {
		writeCreateError(w, err)
		return
	}
	if s.faults != nil {
		s.fire("ingest:update", e)
	}
	if s.pipes != nil && s.ingestAsync(w, r, sc, tDecoded, id, e, created, ts, ds) {
		return
	}
	res, err := e.st.Ingest(ts, ds)
	tUpdated := time.Now()
	s.stUpdate.Observe(tUpdated.Sub(tDecoded))
	tr.RecordAt("update", tr.Root(), tDecoded, tUpdated)
	if err != nil {
		if created {
			s.dropIfEmpty(id, e)
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	if err := s.ensureRegistered(id, e); err != nil {
		writeJSON(w, http.StatusConflict, errorResponse{err.Error()})
		return
	}
	if s.wal != nil {
		// Durability before acknowledgement: the batch is applied, now it
		// must survive a crash before the client is told it was accepted.
		t0 := time.Now()
		werr := s.walLogSync(id, e, res, ts, ds)
		tr.RecordAt("wal_commit", tr.Root(), t0, time.Now())
		if werr != nil {
			writeJSON(w, http.StatusInternalServerError,
				errorResponse{fmt.Sprintf("wal append failed: %v", werr)})
			return
		}
	}
	s.metrics.samples.Add(uint64(res.Accepted))
	s.metrics.batches.Add(1)
	if res.Violation != nil {
		s.metrics.violatingBatches.Add(1)
		writeJSON(w, http.StatusOK, ingestResponse{
			Accepted:   res.Accepted,
			Total:      res.Total,
			Violation:  violationFrom(res.Violation),
			Violations: res.Violations,
			Drift:      res.Drift,
		})
		s.observeRender(tr, tUpdated)
		return
	}
	sc.out = appendIngestResponse(sc.out[:0], res)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(sc.out) //nolint:errcheck // client gone; nothing to do
	s.observeRender(tr, tUpdated)
}

// unmarshalIngest strictly decodes a JSON ingest body from pre-read bytes
// into a pooled request. A small shim so handleIngest and the fuzz-visible
// decodeIngestInto share one validation path.
func unmarshalIngest(body []byte, req *ingestRequest) error {
	return decodeIngestInto(bytesReader(body), req)
}

// bytesReader adapts a byte slice to io.Reader without the bytes.Reader
// indirection escaping to the heap per request.
func bytesReader(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct{ b []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// ---- cached query handlers -------------------------------------------------

// renderJSON marshals v the same way writeJSON does (json.Encoder semantics,
// trailing newline) into a reusable cached response. It remains the renderer
// for error answers, /verdict and the DisableQueryCache path; the hot OK
// paths use the hand renderers in render.go, which are held byte-identical
// to this one by TestRenderersMatchEncodingJSON.
func renderJSON(status int, v any) *cachedResp {
	body, err := json.Marshal(v)
	if err != nil { // unreachable for the response types used here
		return &cachedResp{status: http.StatusInternalServerError,
			body: []byte(`{"error":"encoding failure"}` + "\n")}
	}
	return &cachedResp{status: status, body: append(body, '\n')}
}

func writeCached(w http.ResponseWriter, resp *cachedResp) {
	ct := "application/json"
	if resp.binary {
		ct = ContentTypeQueryBinary
	}
	setHeaderValue(w.Header(), "Content-Type", ct)
	w.WriteHeader(resp.status)
	w.Write(resp.body) //nolint:errcheck // client gone; nothing to do
}

// freshSnapshot takes a snapshot honoring the request deadline: when ctx
// carries one the stream lock is only waited for until then — past it the
// call fails with stream.ErrBusy and the caller degrades (see busyFallback).
func freshSnapshot(ctx context.Context, e *entry) (stream.Snapshot, error) {
	if dl, ok := ctx.Deadline(); ok {
		return e.st.SnapshotWithin(time.Until(dl))
	}
	return e.st.Snapshot()
}

// snapshotFor returns a stream.Snapshot for e, reusing the cached one when
// the stream version is unchanged so parameterized query misses (/check with
// a new key at an old version) skip the stream lock too.
func snapshotFor(ctx context.Context, e *entry) (stream.Snapshot, error) {
	if snap, ok := e.cache.snap.get(e.st.Version()); ok {
		return snap, nil
	}
	snap, err := freshSnapshot(ctx, e)
	if err != nil {
		return stream.Snapshot{}, err
	}
	e.cache.snap.put(snap.Version, snap)
	return snap, nil
}

// statsFor mirrors freshSnapshot for the /verdict stats read.
func statsFor(ctx context.Context, e *entry) (stream.Stats, error) {
	if dl, ok := ctx.Deadline(); ok {
		return e.st.StatsWithin(time.Until(dl))
	}
	return e.st.Stats(), nil
}

// ---- query resolvers -------------------------------------------------------
//
// Each resolver answers one endpoint from the per-stream cache: a fresh
// cached response is a hit (one atomic load); otherwise exactly one
// goroutine per (endpoint, format, parameters, stream generation) renders
// under singleflight while concurrent readers of the same key wait for its
// result — bounded by their request deadline, past which they fall out with
// stream.ErrBusy into the degraded-read path. With DisableQueryCache every
// call renders from scratch (the honest uncached baseline for benchmarks).

// observeFlight counts singleflight outcomes: a led flight performed (at
// most) the one render for its (key, generation); shared flights
// piggybacked on a leader.
func (s *Server) observeFlight(ctx context.Context, led bool) {
	if led {
		s.metrics.sfLeader.Add(1)
	} else {
		s.metrics.sfShared.Add(1)
	}
	if tr := obs.TraceFrom(ctx); tr != nil {
		// Marker span: the role decides whether this request paid for the
		// render or piggybacked; the duration lives in the resolve span.
		role := "follower"
		if led {
			role = "leader"
		}
		now := time.Now()
		tr.RecordAt("singleflight", tr.Root(), now, now).Str("role", role)
	}
}

func (s *Server) resolveCurves(ctx context.Context, e *entry, binary bool) (resp *cachedResp, hit bool, err error) {
	if s.cfg.DisableQueryCache {
		snap, err := freshSnapshot(ctx, e)
		if err != nil {
			return nil, false, err
		}
		if binary {
			return renderCurvesResp(snap, true), false, nil
		}
		return renderJSON(http.StatusOK, curvesResponse{
			Version:  snap.Version,
			Total:    snap.Total,
			InWindow: snap.InWindow,
			Upper:    snap.Workload.Upper.Values(),
			Lower:    snap.Workload.Lower.Values(),
			DMin:     snap.Spans,
			DMax:     snap.MaxSpans,
		}), false, nil
	}
	slot := e.cache.curvesSlot(binary)
	v := e.st.Version()
	if resp := slot.get(v); resp != nil {
		return resp, true, nil
	}
	resp, led, err := e.cache.flights.do(ctx, flightKey{ep: epCurves, binary: binary, version: v},
		func() (*cachedResp, error) {
			if resp := slot.get(v); resp != nil {
				return resp, nil // a previous leader published while we queued
			}
			snap, err := snapshotFor(ctx, e)
			if err != nil {
				return nil, err
			}
			s.metrics.renders.Add(1)
			resp := renderCurvesResp(snap, binary)
			slot.put(resp)
			return resp, nil
		})
	s.observeFlight(ctx, led)
	return resp, false, err
}

// renderCheck computes eq. (8) on snap and renders the answer; computation
// errors keep their 409 JSON shape whatever format was negotiated.
func renderCheck(snap stream.Snapshot, req checkRequest, binary bool) *cachedResp {
	ok, err := snap.CheckService(req.FreqHz, req.LatencyNs, req.Buffer)
	if err != nil {
		resp := renderJSON(http.StatusConflict, errorResponse{err.Error()})
		resp.version = snap.Version
		return resp
	}
	return renderCheckResp(snap.Version, ok, binary)
}

func (s *Server) resolveCheck(ctx context.Context, e *entry, req checkRequest, binary bool, tenant string) (resp *cachedResp, hit bool, err error) {
	if s.cfg.DisableQueryCache {
		snap, err := freshSnapshot(ctx, e)
		if err != nil {
			return nil, false, err
		}
		if binary {
			return renderCheck(snap, req, true), false, nil
		}
		ok, cerr := snap.CheckService(req.FreqHz, req.LatencyNs, req.Buffer)
		if cerr != nil {
			return renderJSON(http.StatusConflict, errorResponse{cerr.Error()}), false, nil
		}
		return renderJSON(http.StatusOK, checkResponse{Version: snap.Version, OK: ok}), false, nil
	}
	key := checkKey{freqHz: req.FreqHz, latencyNs: req.LatencyNs, buffer: req.Buffer}
	pc := e.cache.checkCache(binary)
	v := e.st.Version()
	if resp := pc.get(v, tenant, key); resp != nil {
		return resp, true, nil
	}
	resp, led, err := e.cache.flights.do(ctx, flightKey{ep: epCheck, binary: binary, version: v, ck: key},
		func() (*cachedResp, error) {
			if resp := pc.get(v, tenant, key); resp != nil {
				return resp, nil
			}
			snap, err := snapshotFor(ctx, e)
			if err != nil {
				return nil, err
			}
			s.metrics.renders.Add(1)
			resp := renderCheck(snap, req, binary)
			if pc.put(snap.Version, tenant, key, resp) {
				s.metrics.epochResets.Add(1)
			}
			return resp, nil
		})
	s.observeFlight(ctx, led)
	return resp, false, err
}

// renderMinFreq computes eq. (9)/(10) on snap and renders the answer.
func renderMinFreq(snap stream.Snapshot, b int, binary bool) *cachedResp {
	cmp, err := snap.MinFrequency(b)
	if err != nil {
		resp := renderJSON(http.StatusConflict, errorResponse{err.Error()})
		resp.version = snap.Version
		return resp
	}
	return renderMinFreqResp(minFreqResponse{
		Version:       snap.Version,
		GammaHz:       cmp.Gamma.Hz,
		GammaAtK:      cmp.Gamma.AtK,
		GammaAtSpanNs: cmp.Gamma.AtSpanNs,
		WCETHz:        cmp.WCET.Hz,
		WCETAtK:       cmp.WCET.AtK,
		Saving:        cmp.Saving,
		Buffer:        b,
	}, binary)
}

func (s *Server) resolveMinFreq(ctx context.Context, e *entry, b int, binary bool, tenant string) (resp *cachedResp, hit bool, err error) {
	if s.cfg.DisableQueryCache {
		snap, err := freshSnapshot(ctx, e)
		if err != nil {
			return nil, false, err
		}
		if binary {
			return renderMinFreq(snap, b, true), false, nil
		}
		cmp, merr := snap.MinFrequency(b)
		if merr != nil {
			return renderJSON(http.StatusConflict, errorResponse{merr.Error()}), false, nil
		}
		return renderJSON(http.StatusOK, minFreqResponse{
			Version:       snap.Version,
			GammaHz:       cmp.Gamma.Hz,
			GammaAtK:      cmp.Gamma.AtK,
			GammaAtSpanNs: cmp.Gamma.AtSpanNs,
			WCETHz:        cmp.WCET.Hz,
			WCETAtK:       cmp.WCET.AtK,
			Saving:        cmp.Saving,
			Buffer:        b,
		}), false, nil
	}
	pc := e.cache.minfreqCache(binary)
	v := e.st.Version()
	if resp := pc.get(v, tenant, b); resp != nil {
		return resp, true, nil
	}
	resp, led, err := e.cache.flights.do(ctx, flightKey{ep: epMinFreq, binary: binary, version: v, b: b},
		func() (*cachedResp, error) {
			if resp := pc.get(v, tenant, b); resp != nil {
				return resp, nil
			}
			snap, err := snapshotFor(ctx, e)
			if err != nil {
				return nil, err
			}
			s.metrics.renders.Add(1)
			resp := renderMinFreq(snap, b, binary)
			if pc.put(snap.Version, tenant, b, resp) {
				s.metrics.epochResets.Add(1)
			}
			return resp, nil
		})
	s.observeFlight(ctx, led)
	return resp, false, err
}

// renderVerdict renders the /verdict answer (JSON only).
func renderVerdict(stats stream.Stats) *cachedResp {
	resp := renderJSON(http.StatusOK, verdictResponse{
		Version:        stats.Version,
		Admitted:       stats.Violations == 0,
		ContractSet:    stats.ContractSet,
		Total:          stats.Total,
		Violations:     stats.Violations,
		FirstViolation: violationFrom(stats.FirstViolation),
		Drift:          stats.Drift,
	})
	resp.version = stats.Version
	return resp
}

func (s *Server) resolveVerdict(ctx context.Context, e *entry) (resp *cachedResp, hit bool, err error) {
	if s.cfg.DisableQueryCache {
		stats, err := statsFor(ctx, e)
		if err != nil {
			return nil, false, err
		}
		return renderVerdict(stats), false, nil
	}
	v := e.st.Version()
	if resp := e.cache.verdict.get(v); resp != nil {
		return resp, true, nil
	}
	resp, led, err := e.cache.flights.do(ctx, flightKey{ep: epVerdict, version: v},
		func() (*cachedResp, error) {
			if resp := e.cache.verdict.get(v); resp != nil {
				return resp, nil
			}
			stats, err := statsFor(ctx, e)
			if err != nil {
				return nil, err
			}
			s.metrics.renders.Add(1)
			resp := renderVerdict(stats)
			e.cache.verdict.put(resp)
			return resp, nil
		})
	s.observeFlight(ctx, led)
	return resp, false, err
}

// ---- degraded reads --------------------------------------------------------

// degradedSuffix closes a degraded response body: cached bodies are JSON
// objects rendered by renderJSON and always end "}\n", so splicing the
// marker before the brace keeps every other byte identical to the last
// good answer.
var degradedSuffix = []byte(",\"degraded\":true}\n")

// degradedBody returns resp's body with "degraded":true spliced into the
// object, or nil when resp is unusable as a degraded answer (error status,
// or not shaped like a rendered object).
func degradedBody(resp *cachedResp) []byte {
	if resp == nil || resp.status != http.StatusOK {
		return nil
	}
	b := resp.body
	if len(b) < 2 || b[len(b)-2] != '}' || b[len(b)-1] != '\n' {
		return nil
	}
	out := make([]byte, 0, len(b)-2+len(degradedSuffix))
	out = append(out, b[:len(b)-2]...)
	return append(out, degradedSuffix...)
}

// serveDegraded writes a stale-but-valid cached answer marked degraded,
// with the X-Wcm-Degraded header for clients that route on headers, and
// logs how stale the data is.
func (s *Server) serveDegraded(w http.ResponseWriter, r *http.Request, e *entry, body []byte, binary bool) {
	s.metrics.degraded.Add(1)
	obs.TraceFrom(r.Context()).Mark(trace.KeepDegraded)
	w.Header().Set("X-Wcm-Degraded", "true")
	ct := "application/json"
	if binary {
		ct = ContentTypeQueryBinary
	}
	w.Header().Set("Content-Type", ct)
	w.WriteHeader(http.StatusOK)
	w.Write(body) //nolint:errcheck // client gone; nothing to do
	var age time.Duration
	if lm := e.st.LastMutation(); !lm.IsZero() {
		age = time.Since(lm)
	}
	obs.LoggerFrom(r.Context()).LogAttrs(r.Context(), slog.LevelWarn, "degraded response",
		slog.String("path", r.URL.Path), slog.Float64("staleness_seconds", age.Seconds()))
}

// serveStale serves resp as an explicitly degraded answer when usable (a
// rendered 200). JSON bodies get "degraded":true spliced in; binary bodies
// are served unmodified — the X-Wcm-Degraded header is the only staleness
// marker the columnar encoding carries.
func (s *Server) serveStale(w http.ResponseWriter, r *http.Request, e *entry, resp *cachedResp) bool {
	if resp == nil || resp.status != http.StatusOK {
		return false
	}
	if resp.binary {
		s.serveDegraded(w, r, e, resp.body, true)
		return true
	}
	body := degradedBody(resp)
	if body == nil {
		return false
	}
	s.serveDegraded(w, r, e, body, false)
	return true
}

// writeBusy is the answer of last resort on a read or ingest path that ran
// out of deadline budget with nothing cached to fall back on: 503 with a
// Retry-After hint (seconds, clamped like every other hint).
func writeBusy(w http.ResponseWriter, msg string, hint int) {
	w.Header().Set("Retry-After", retryAfterValue(hint))
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{msg})
}

// busyFallback resolves a snapshot/stats failure on a read path: ErrBusy
// (lock contended past the request deadline, or a singleflight wait that
// outlived the deadline) degrades to the last cached answer when one
// exists — 503 otherwise — and every other error keeps its 409 shape from
// before the resilience layer.
func (s *Server) busyFallback(w http.ResponseWriter, r *http.Request, e *entry, err error, last *cachedResp) {
	if !errors.Is(err, stream.ErrBusy) {
		writeJSON(w, http.StatusConflict, errorResponse{err.Error()})
		return
	}
	if s.serveStale(w, r, e, last) {
		return
	}
	// Deadline contention, not queue pressure: the floor hint is honest.
	writeBusy(w, "stream busy past request deadline; no cached answer", retryAfterFloorSeconds)
}

// shedFunc is a shed/throttle fallback handler: it answers a request that
// was refused admission, carrying the Retry-After hint (seconds) computed
// from the pressure that refused it.
type shedFunc func(w http.ResponseWriter, r *http.Request, hint int)

// degradeOr is the shed fallback core for read endpoints: a fresh cached
// answer (stream version unchanged) is served normally — a shed read that
// costs one atomic load is not worth turning away — a stale one is served
// marked degraded, and with nothing cached the request is shed with 429.
func (s *Server) degradeOr(w http.ResponseWriter, r *http.Request, e *entry, resp *cachedResp, hint int) {
	if resp == nil {
		writeShed(w, "read", hint)
		return
	}
	if resp.version == e.st.Version() {
		writeCached(w, resp)
		return
	}
	if s.serveStale(w, r, e, resp) {
		return
	}
	writeShed(w, "read", hint)
}

// shedCurves — shed fallback for GET /curves (see degradeOr).
func (s *Server) shedCurves(w http.ResponseWriter, r *http.Request, hint int) {
	e := s.get(r.PathValue("id"))
	if e == nil {
		writeShed(w, "read", hint)
		return
	}
	s.degradeOr(w, r, e, e.cache.curvesSlot(acceptsBinary(r)).last(), hint)
}

// shedVerdict — shed fallback for GET /verdict.
func (s *Server) shedVerdict(w http.ResponseWriter, r *http.Request, hint int) {
	e := s.get(r.PathValue("id"))
	if e == nil {
		writeShed(w, "read", hint)
		return
	}
	s.degradeOr(w, r, e, e.cache.verdict.last(), hint)
}

// shedCheck — shed fallback for POST /check. The body still has to be
// decoded (the cache is keyed by the query parameters), but the stream
// lock is never touched.
func (s *Server) shedCheck(w http.ResponseWriter, r *http.Request, hint int) {
	sc := queryScratchPool.Get().(*queryScratch)
	defer queryScratchPool.Put(sc)
	req := &sc.req
	if err := decodeCheckRequest(r, sc, req); err != nil {
		writeDecodeError(w, err)
		return
	}
	e := s.get(r.PathValue("id"))
	if e == nil {
		writeShed(w, "read", hint)
		return
	}
	key := checkKey{freqHz: req.FreqHz, latencyNs: req.LatencyNs, buffer: req.Buffer}
	s.degradeOr(w, r, e, e.cache.checkCache(acceptsBinary(r)).getAny(s.tenantFor(r).name, key), hint)
}

// shedMinFreq — shed fallback for GET /minfreq.
func (s *Server) shedMinFreq(w http.ResponseWriter, r *http.Request, hint int) {
	b, ok := minfreqB(r)
	if !ok {
		writeJSON(w, http.StatusBadRequest, errorResponse{"b must be a non-negative integer"})
		return
	}
	e := s.get(r.PathValue("id"))
	if e == nil {
		writeShed(w, "read", hint)
		return
	}
	s.degradeOr(w, r, e, e.cache.minfreqCache(acceptsBinary(r)).getAny(s.tenantFor(r).name, b), hint)
}

// observeCacheHit / observeCacheMiss close a cached-query stage span that
// opened at start, alongside the hit/miss counters, and record the resolve
// span (with its hit/miss outcome) on a traced request.
func (s *Server) observeCacheHit(ctx context.Context, start time.Time) {
	s.metrics.cacheHits.Add(1)
	end := time.Now()
	s.stCacheHit.Observe(end.Sub(start))
	if tr := obs.TraceFrom(ctx); tr != nil {
		tr.RecordAt("resolve", tr.Root(), start, end).Str("outcome", "hit")
	}
}

func (s *Server) observeCacheMiss(ctx context.Context, start time.Time) {
	s.metrics.cacheMisses.Add(1)
	end := time.Now()
	s.stCacheMiss.Observe(end.Sub(start))
	if tr := obs.TraceFrom(ctx); tr != nil {
		tr.RecordAt("resolve", tr.Root(), start, end).Str("outcome", "miss")
	}
}

func (s *Server) handleCurves(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	e := s.get(r.PathValue("id"))
	if e == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{"unknown stream"})
		return
	}
	binary := acceptsBinary(r)
	if binary {
		s.metrics.binaryQueries.Add(1)
	}
	resp, hit, err := s.resolveCurves(r.Context(), e, binary)
	if err != nil {
		s.observeCacheMiss(r.Context(), start)
		s.busyFallback(w, r, e, err, e.cache.curvesSlot(binary).last())
		return
	}
	writeCached(w, resp)
	if hit {
		s.observeCacheHit(r.Context(), start)
	} else {
		s.observeCacheMiss(r.Context(), start)
	}
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	sc := queryScratchPool.Get().(*queryScratch)
	defer queryScratchPool.Put(sc)
	req := &sc.req
	if err := decodeCheckRequest(r, sc, req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if req.FreqHz <= 0 || req.LatencyNs < 0 || req.Buffer < 0 {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{"need freq_hz > 0, latency_ns ≥ 0, buffer ≥ 0"})
		return
	}
	e := s.get(r.PathValue("id"))
	if e == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{"unknown stream"})
		return
	}
	start := time.Now()
	binary := acceptsBinary(r)
	if binary {
		s.metrics.binaryQueries.Add(1)
	}
	tenant := s.tenantFor(r).name
	resp, hit, err := s.resolveCheck(r.Context(), e, *req, binary, tenant)
	if err != nil {
		s.observeCacheMiss(r.Context(), start)
		key := checkKey{freqHz: req.FreqHz, latencyNs: req.LatencyNs, buffer: req.Buffer}
		s.busyFallback(w, r, e, err, e.cache.checkCache(binary).getAny(tenant, key))
		return
	}
	writeCached(w, resp)
	if hit {
		s.observeCacheHit(r.Context(), start)
	} else {
		s.observeCacheMiss(r.Context(), start)
	}
}

func (s *Server) handleMinFreq(w http.ResponseWriter, r *http.Request) {
	b, okB := minfreqB(r)
	if !okB {
		writeJSON(w, http.StatusBadRequest, errorResponse{"b must be a non-negative integer"})
		return
	}
	e := s.get(r.PathValue("id"))
	if e == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{"unknown stream"})
		return
	}
	start := time.Now()
	binary := acceptsBinary(r)
	if binary {
		s.metrics.binaryQueries.Add(1)
	}
	tenant := s.tenantFor(r).name
	resp, hit, err := s.resolveMinFreq(r.Context(), e, b, binary, tenant)
	if err != nil {
		s.observeCacheMiss(r.Context(), start)
		s.busyFallback(w, r, e, err, e.cache.minfreqCache(binary).getAny(tenant, b))
		return
	}
	writeCached(w, resp)
	if hit {
		s.observeCacheHit(r.Context(), start)
	} else {
		s.observeCacheMiss(r.Context(), start)
	}
}

func (s *Server) handleContract(w http.ResponseWriter, r *http.Request) {
	var req contractRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	up, err := curve.NewFinite(req.Upper)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("upper: %v", err)})
		return
	}
	lo, err := curve.NewFinite(req.Lower)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("lower: %v", err)})
		return
	}
	window := req.Window
	if window == 0 {
		window = up.MaxK()
	}
	if r.Context().Err() != nil {
		writeBusy(w, "request deadline exceeded before contract update", retryAfterFloorSeconds)
		return
	}
	id := r.PathValue("id")
	e, created, err := s.getOrCreate(id, s.tenantFor(r))
	if err != nil {
		writeCreateError(w, err)
		return
	}
	if err := e.st.SetContract(core.Workload{Upper: up, Lower: lo}, window); err != nil {
		if created {
			s.dropIfEmpty(id, e)
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	if err := s.ensureRegistered(id, e); err != nil {
		writeJSON(w, http.StatusConflict, errorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"window": window})
}

func (s *Server) handleVerdict(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	e := s.get(r.PathValue("id"))
	if e == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{"unknown stream"})
		return
	}
	resp, hit, err := s.resolveVerdict(r.Context(), e)
	if err != nil {
		s.observeCacheMiss(r.Context(), start)
		s.busyFallback(w, r, e, err, e.cache.verdict.last())
		return
	}
	writeCached(w, resp)
	if hit {
		s.observeCacheHit(r.Context(), start)
	} else {
		s.observeCacheMiss(r.Context(), start)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	// Collect entries under the shard locks, query stream stats after
	// releasing them: Stats takes each stream's own lock, and holding the
	// shard lock across that would stall ingests into sibling streams.
	type idEntry struct {
		id string
		e  *entry
	}
	var entries []idEntry
	for _, sh := range s.shards {
		sh.mu.RLock()
		for id, e := range sh.streams {
			entries = append(entries, idEntry{id, e})
		}
		sh.mu.RUnlock()
	}
	infos := make([]streamInfo, 0, len(entries))
	for _, it := range entries {
		stats := it.e.st.Stats()
		infos = append(infos, streamInfo{ID: it.id, Total: stats.Total, InWindow: stats.InWindow})
	}
	writeJSON(w, http.StatusOK, map[string]any{"streams": infos})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	idx := s.shardIndex(id)
	sh := s.shards[idx]
	var walErr error
	sh.mu.Lock()
	e, ok := sh.streams[id]
	if ok {
		e.state.Store(entryDeleted)
		delete(sh.streams, id)
		e.owner.releaseStream()
		if s.wal != nil {
			// Under the shard write lock: every ingest append happens under
			// the read lock with a not-deleted check, so no record for this
			// incarnation can follow the tombstone.
			walErr = s.walShards[idx].AppendTombstone(id)
		}
	}
	sh.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{"unknown stream"})
		return
	}
	if s.wal != nil {
		if walErr == nil {
			walErr = s.walShards[idx].Commit()
		}
		if walErr != nil {
			// The in-memory delete already happened; surface that durability
			// did not — a recovery could resurrect this stream.
			writeJSON(w, http.StatusInternalServerError,
				errorResponse{fmt.Sprintf("stream deleted but wal tombstone failed: %v", walErr)})
			return
		}
		if err := s.walShards[idx].RemoveSnapshot(id); err != nil {
			writeJSON(w, http.StatusInternalServerError,
				errorResponse{fmt.Sprintf("stream deleted but snapshot removal failed: %v", err)})
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// ---- observability endpoints ------------------------------------------------

type healthResponse struct {
	Status        string          `json:"status"`
	UptimeSeconds float64         `json:"uptime_seconds"`
	GoVersion     string          `json:"go_version"`
	Version       string          `json:"version"`
	Revision      string          `json:"revision"`
	Durability    *durabilityJSON `json:"durability,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	b := s.metrics.build
	resp := healthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.metrics.start).Seconds(),
		GoVersion:     b.goVersion,
		Version:       b.version,
		Revision:      b.revision,
		Durability:    s.durabilityStatus(),
	}
	status := http.StatusOK
	if s.Recovering() {
		// Readiness, not liveness: hold traffic until WAL replay has every
		// acknowledged batch back.
		resp.Status = "recovering"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// latencyStatsJSON summarizes one histogram for /v1/stats. Requests/Errors
// are zero for stage rows (stages count spans, not requests).
type latencyStatsJSON struct {
	Count       uint64  `json:"count"`
	Errors      uint64  `json:"errors,omitempty"`
	MeanSeconds float64 `json:"mean_seconds"`
	P50Seconds  float64 `json:"p50_seconds"`
	P95Seconds  float64 `json:"p95_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
}

func latencyStatsFrom(snap obs.HistSnapshot, errors uint64) latencyStatsJSON {
	out := latencyStatsJSON{
		Count:      snap.Count,
		Errors:     errors,
		P50Seconds: snap.Quantile(0.50),
		P95Seconds: snap.Quantile(0.95),
		P99Seconds: snap.Quantile(0.99),
	}
	if snap.Count > 0 {
		out.MeanSeconds = snap.SumSeconds() / float64(snap.Count)
	}
	return out
}

// classLimitJSON reports one endpoint class's load-shedding state.
type classLimitJSON struct {
	Limit    int64  `json:"limit"` // 0 = unlimited
	Inflight int64  `json:"inflight"`
	Shed     uint64 `json:"shed"`
}

// walStatsJSON mirrors the wcmd_wal_* / wcmd_recovery_* Prometheus series
// in the JSON stats payload, so both surfaces report the same durability
// totals (asserted by TestStatsMetricsParity).
type walStatsJSON struct {
	BytesTotal       uint64 `json:"bytes_total"`
	AppendsTotal     uint64 `json:"appends_total"`
	FsyncsTotal      uint64 `json:"fsyncs_total"`
	TornTails        uint64 `json:"torn_tails"`
	ReplayedBatches  uint64 `json:"replayed_batches"`
	ReplayedSamples  uint64 `json:"replayed_samples"`
	RecoveredStreams uint64 `json:"recovered_streams"`
	CleanStart       bool   `json:"clean_start"`
}

// traceStatsJSON mirrors the wcmd_trace_* series.
type traceStatsJSON struct {
	Kept            uint64 `json:"kept"`
	Dropped         uint64 `json:"dropped"`
	Sampled         uint64 `json:"sampled"`
	Evicted         uint64 `json:"evicted"`
	TruncatedSpans  uint64 `json:"truncated_spans"`
	StoreBytes      int64  `json:"store_bytes"`
	StoreBytesLimit int64  `json:"store_bytes_limit"`
}

// tenantStatsJSON is one tenant's QoS block in /v1/stats: the same
// counters as /v1/tenants plus the latency summary.
type tenantStatsJSON struct {
	SLO       string           `json:"slo"`
	Streams   int64            `json:"streams"`
	Admitted  uint64           `json:"admitted"`
	Throttled uint64           `json:"throttled"`
	Shed      uint64           `json:"shed"`
	Degraded  uint64           `json:"degraded"`
	Latency   latencyStatsJSON `json:"latency"`
}

type statsResponse struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	Panics        uint64                      `json:"panics"`
	Degraded      uint64                      `json:"degraded"`
	Limits        map[string]classLimitJSON   `json:"limits"`
	WAL           *walStatsJSON               `json:"wal,omitempty"`
	Trace         *traceStatsJSON             `json:"trace,omitempty"`
	Tenants       map[string]tenantStatsJSON  `json:"tenants"`
	Endpoints     map[string]latencyStatsJSON `json:"endpoints"`
	Stages        map[string]latencyStatsJSON `json:"stages"`
}

// handleStats serves the histogram summaries as JSON — the same data the
// Prometheus exposition carries, for humans with curl and no scraper.
// Endpoints and stages that have seen no traffic are omitted.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		UptimeSeconds: time.Since(s.metrics.start).Seconds(),
		Panics:        s.metrics.panics.Load(),
		Degraded:      s.metrics.degraded.Load(),
		Limits: map[string]classLimitJSON{
			"ingest": {Limit: s.limIngest.Limit(), Inflight: s.limIngest.Inflight(), Shed: s.limIngest.Shed()},
			"read":   {Limit: s.limRead.Limit(), Inflight: s.limRead.Inflight(), Shed: s.limRead.Shed()},
		},
		Endpoints: make(map[string]latencyStatsJSON),
		Stages:    make(map[string]latencyStatsJSON),
	}
	if wg := s.walGaugesNow(); wg != nil {
		resp.WAL = &walStatsJSON{
			BytesTotal:       wg.bytes,
			AppendsTotal:     wg.appends,
			FsyncsTotal:      wg.fsyncs,
			TornTails:        wg.torn,
			ReplayedBatches:  wg.replayedBatches,
			ReplayedSamples:  wg.replayedSamples,
			RecoveredStreams: wg.recoveredStreams,
			CleanStart:       wg.cleanStart,
		}
	}
	if tg := s.traceGaugesNow(); tg != nil {
		resp.Trace = &traceStatsJSON{
			Kept:            tg.kept,
			Dropped:         tg.dropped,
			Sampled:         tg.sampled,
			Evicted:         tg.evicted,
			TruncatedSpans:  tg.truncated,
			StoreBytes:      tg.storeBytes,
			StoreBytesLimit: tg.storeLimit,
		}
	}
	resp.Tenants = make(map[string]tenantStatsJSON, len(s.qos.names))
	for _, tg := range s.tenantGaugesNow() {
		resp.Tenants[tg.name] = tenantStatsJSON{
			SLO:       tg.slo,
			Streams:   tg.streams,
			Admitted:  tg.admitted,
			Throttled: tg.throttled,
			Shed:      tg.shed,
			Degraded:  tg.degraded,
			Latency:   latencyStatsFrom(tg.latency, 0),
		}
	}
	for _, name := range s.metrics.epNames {
		ep := s.metrics.endpoints[name]
		if ep.requests.Load() == 0 {
			continue
		}
		resp.Endpoints[name] = latencyStatsFrom(ep.latency.Snapshot(), ep.errors.Load())
	}
	for _, name := range stageNames {
		h := s.metrics.stages[name]
		if h.Count() == 0 {
			continue
		}
		resp.Stages[name] = latencyStatsFrom(h.Snapshot(), 0)
	}
	writeJSON(w, http.StatusOK, resp)
}

// selfResponse is the service's own workload characterization: the curves
// of paper Definition 1 extracted from the per-request handler costs.
// Demand units are µs of handler time, so gamma_hz ≈ 1e6 corresponds to one
// fully-busy worker; saving is the eq. (9) vs eq. (10) frequency ratio.
type selfResponse struct {
	Observed uint64  `json:"observed"` // requests fed into the self stream
	Total    int64   `json:"total"`
	InWindow int     `json:"in_window"`
	UpperUs  []int64 `json:"upper_us"` // γᵘ(k), µs, index = k
	LowerUs  []int64 `json:"lower_us"` // γˡ(k), µs, index = k
	GammaHz  float64 `json:"gamma_hz"` // eq. (9) minimum frequency
	WCETHz   float64 `json:"wcet_hz"`  // eq. (10) WCET-based bound
	Saving   float64 `json:"saving"`
	Buffer   int     `json:"buffer"`

	// Stages breaks the demand down by pipeline stage — where the cycles
	// the curves above characterize are actually spent. Fed from the same
	// stage timestamps the trace spans record; stages with no traffic are
	// omitted.
	Stages map[string]selfStageJSON `json:"stages,omitempty"`
}

// selfStageJSON is one pipeline stage's contribution to the self demand.
type selfStageJSON struct {
	Count   uint64  `json:"count"`
	TotalUs float64 `json:"total_us"`
	MeanUs  float64 `json:"mean_us"`
}

// handleSelf serves the self-characterization stream: the server applies
// the paper's workload model to its own request costs. 404 unless the
// server was built with Config.SelfCurves; 409 until a request has been
// observed. Accepts ?b=N like /minfreq (default 1).
func (s *Server) handleSelf(w http.ResponseWriter, r *http.Request) {
	if s.self == nil {
		writeJSON(w, http.StatusNotFound,
			errorResponse{"self-characterization disabled; start with -self-curves"})
		return
	}
	b := 1
	if q := r.URL.Query().Get("b"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{"b must be a non-negative integer"})
			return
		}
		b = v
	}
	snap, err := s.self.Stream().Snapshot()
	if err != nil {
		writeJSON(w, http.StatusConflict, errorResponse{err.Error()})
		return
	}
	resp := selfResponse{
		Observed: s.self.Observed(),
		Total:    snap.Total,
		InWindow: snap.InWindow,
		UpperUs:  snap.Workload.Upper.Values(),
		LowerUs:  snap.Workload.Lower.Values(),
		Buffer:   b,
	}
	// A min-frequency failure (degenerate window) still leaves the curves
	// worth serving; the frequency fields just stay zero.
	if cmp, err := snap.MinFrequency(b); err == nil {
		resp.GammaHz = cmp.Gamma.Hz
		resp.WCETHz = cmp.WCET.Hz
		resp.Saving = cmp.Saving
	}
	for _, name := range stageNames {
		hs := s.metrics.stages[name].Snapshot()
		if hs.Count == 0 {
			continue
		}
		if resp.Stages == nil {
			resp.Stages = make(map[string]selfStageJSON)
		}
		total := hs.SumSeconds() * 1e6
		resp.Stages[name] = selfStageJSON{
			Count:   hs.Count,
			TotalUs: total,
			MeanUs:  total / float64(hs.Count),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---- plumbing --------------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// writeCreateError maps getOrCreate failures: a tenant stream-quota
// rejection is the client's standing, not a server fault — 429, no
// Retry-After (quota slots free only when the tenant deletes streams);
// anything else stays a 500.
func writeCreateError(w http.ResponseWriter, err error) {
	if errors.Is(err, errStreamQuota) {
		writeJSON(w, http.StatusTooManyRequests, errorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
}

// writeDecodeError maps body-decoding failures to 413 (body too large) or
// 400 (malformed input).
func writeDecodeError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorResponse{fmt.Sprintf("body exceeds %d bytes", tooBig.Limit)})
		return
	}
	writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
}

// statusRecorder captures the response code for metrics, and whether any
// part of the response reached the wire — the recovery path may still send
// a clean 500 only while nothing has been written.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(p)
}

// reqScope bundles every per-request observability cell — status recorder,
// obs.Request scope and its context carrier — so instrument recycles all of
// them through one pool Get/Put. Handlers must not retain w or r.Context()
// past their return (none do; the contract is stated on obs.Request too).
type reqScope struct {
	rec statusRecorder
	req obs.Request
	ctx obs.RequestContext
}

// maxTraceIDLen bounds accepted client X-Request-Id values; longer ones are
// replaced so a hostile client can't bloat every log line.
const maxTraceIDLen = 64

// traceIDOK reports whether a client-supplied X-Request-Id is safe to echo
// and log: non-empty, bounded, and printable ASCII only. CR/LF would split
// log lines and (for paranoid clients of the echoed header) open header
// injection; control bytes and non-ASCII would corrupt the text /metrics
// and log streams. Anything unacceptable is replaced wholesale — there is
// no value in sanitizing a hostile ID char by char.
func traceIDOK(id string) bool {
	if id == "" || len(id) > maxTraceIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		if c := id[i]; c < 0x20 || c > 0x7e {
			return false
		}
	}
	return true
}

// instrument wraps a handler with the body-size limit, the resilience
// envelope and the per-request observability envelope.
//
// Resilience: the endpoint class picks an in-flight limiter — when it
// sheds, the shed fallback runs instead of h (or a plain 429 when the
// endpoint has none); Config.RequestTimeout > 0 attaches a deadline to the
// request context; the handler runs inside a recover barrier (see
// serveRecovered) so a panic answers 500 instead of killing the
// connection's goroutine state. Shed and recovered requests flow through
// the same accounting below, so the histogram-totals == request-counter
// invariants hold for them too.
//
// QoS: shed-able requests (classIngest, classRead) resolve their tenant
// and pass two admission gates in order — the tenant's own token bucket
// (reject ⇒ throttled, Retry-After from the refill deficit), then the
// class limiter at the tenant's SLO threshold (reject ⇒ shed, Retry-After
// from shed pressure). Rejected reads run the shed fallback, which may
// still answer 200 from cache — counted as degraded, the
// mixed-criticality outcome. classNone endpoints skip all of it: the
// observability plane must answer even for a throttled tenant.
//
// Observability: trace-ID propagation (client X-Request-Id kept when it
// passes traceIDOK, otherwise generated; always echoed on the response), a
// request-scoped logger reachable via obs.LoggerFrom(r.Context()),
// per-endpoint and per-tenant request/error/latency accounting,
// self-characterization feed, and slow-request logging. When the declared
// Content-Length already fits the limit the MaxBytesReader wrapper is
// skipped — net/http bounds body reads by the declared length, so the
// limit cannot be exceeded and the per-request wrapper allocation is pure
// overhead.
func (s *Server) instrument(name string, class epClass, h http.HandlerFunc, shed shedFunc) http.HandlerFunc {
	ep := s.metrics.endpoint(name)
	point := "handler:" + name // fault point, concatenated once
	var lim *inflightLimiter
	className := "read"
	switch class {
	case classIngest:
		lim, className = s.limIngest, "ingest"
	case classRead:
		lim = s.limRead
	}
	if shed == nil {
		cn := className
		shed = func(w http.ResponseWriter, r *http.Request, hint int) { writeShed(w, cn, hint) }
	}
	// The trace endpoints themselves stay out of the self-curves feed:
	// scraping the trace store is observer traffic, and letting it into the
	// service's own demand curves would make /debug/self describe the
	// debugging session instead of the workload (healthz/metrics get no such
	// carve-out because their cost IS steady-state serving work).
	feedSelf := name != "traces" && name != "trace"
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if r.Body != nil && (r.ContentLength < 0 || r.ContentLength > s.cfg.MaxBodyBytes) {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		id := r.Header.Get("X-Request-Id")
		if !traceIDOK(id) {
			id = obs.NewTraceID()
		}
		setHeaderValue(w.Header(), "X-Request-Id", id)
		var ten *tenantState
		decision := admitOK
		if class != classNone {
			ten = s.tenantFor(r)
		}
		var tr *trace.Active
		if s.tracer != nil {
			tr = s.tracer.StartRequest(name, id, r.Header.Get("traceparent"), start)
			// Echo W3C trace context on every response — including shed,
			// degraded and panic answers, whose headers are already set here.
			setHeaderValue(w.Header(), "Traceparent", tr.Traceparent())
			if ten != nil {
				tr.Root().Str("tenant", ten.name).Str("slo", ten.slo.String())
			}
		}

		handler := h
		if ten != nil {
			// Admission, in order: the tenant's own rate budget first — a
			// throttled tenant must not consume an in-flight slot — then the
			// class limiter at the tenant's SLO threshold.
			var hint int
			if ten.bucket != nil {
				if ok, deficit := ten.bucket.Take(start.UnixNano()); !ok {
					decision, hint = admitThrottled, retrySecsFromNs(deficit)
				}
			}
			if decision == admitOK {
				if lim.acquireFor(ten.slo) {
					defer lim.release() // deferred: must pair even when h panics
				} else {
					decision, hint = admitShed, lim.shedHint()
				}
			}
			switch {
			case decision == admitThrottled && class == classIngest:
				// Mutations have no degraded answer; reject outright.
				tn, secs := ten.name, hint
				handler = func(w http.ResponseWriter, _ *http.Request) {
					writeThrottled(w, tn, secs)
				}
			case decision != admitOK:
				// Reads fall back to the degraded cached path whether
				// throttled or shed — serving stale bytes costs the server
				// almost nothing and keeps low-criticality readers alive.
				sf, secs := shed, hint
				handler = func(w http.ResponseWriter, r *http.Request) { sf(w, r, secs) }
			}
			if tr != nil && decision != admitOK {
				tr.Root().Str("admission", decision.String())
				tr.Mark(trace.KeepDegraded)
			}
		}

		sc := s.scopes.Get().(*reqScope)
		sc.rec.ResponseWriter, sc.rec.status, sc.rec.wrote = w, http.StatusOK, false
		sc.req.Reset(id, name, s.logger)
		sc.req.Trace = tr
		if !s.bareCtx {
			// The context wrap copies the request (WithContext allocates a
			// fresh http.Request). With no deadline to attach and a logger
			// that discards everything, nothing can observe the wrap —
			// obs.LoggerFrom falls back to the same discarding logger — so
			// the bare-context fast path skips it entirely.
			ctx := r.Context()
			if s.cfg.RequestTimeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
				defer cancel()
			}
			sc.ctx.Reset(ctx, &sc.req)
			r = r.WithContext(&sc.ctx)
		}

		s.serveRecovered(name, point, handler, &sc.rec, r, &sc.req)
		d := time.Since(start)

		status := sc.rec.status
		ep.observe(d, status)
		if ten != nil {
			ten.account(decision, status, d)
		}
		if s.self != nil && feedSelf {
			s.self.Observe(d)
		}
		slow := s.slow > 0 && d >= s.slow
		if tr != nil {
			s.metrics.traceSpans.Observe(int64(tr.SpanCount()))
			sc.req.Trace = nil // Finish may pool the trace; drop the alias first
			s.tracer.Finish(tr, status, d, slow)
		}
		switch {
		case slow:
			sc.req.Logger().LogAttrs(r.Context(), slog.LevelWarn, "slow request",
				slog.String("method", r.Method), slog.String("path", r.URL.Path),
				slog.Int("status", status), obs.DurationSeconds(d))
		case s.logger.Enabled(r.Context(), slog.LevelDebug):
			// Access log at Debug — the Enabled check keeps the hot path
			// free of the logger derivation unless someone is listening.
			sc.req.Logger().LogAttrs(r.Context(), slog.LevelDebug, "request",
				slog.String("method", r.Method), slog.String("path", r.URL.Path),
				slog.Int("status", status), obs.DurationSeconds(d))
		}

		sc.rec.ResponseWriter = nil
		sc.req.Reset("", "", nil)
		sc.ctx.Reset(nil, nil)
		s.scopes.Put(sc)
	}
}

// serveRecovered runs h inside the panic barrier: a handler panic is
// logged at Error with the request's trace ID, the panic value and the
// stack, counted in wcmd_panics_total, and answered with a clean 500 when
// nothing has reached the wire yet (when headers are already out the
// connection is past saving — the status is recorded as 500 for metrics
// and net/http closes the stream). http.ErrAbortHandler is re-raised: it
// is the sanctioned way to abort a connection, not a defect.
func (s *Server) serveRecovered(name, point string, h http.HandlerFunc, rec *statusRecorder, r *http.Request, req *obs.Request) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		if p == http.ErrAbortHandler { //nolint:errorlint // sentinel identity per net/http contract
			panic(p)
		}
		s.metrics.panics.Add(1)
		req.Trace.Mark(trace.KeepPanic)
		req.Logger().LogAttrs(r.Context(), slog.LevelError, "handler panic",
			slog.String("endpoint", name),
			slog.String("panic", fmt.Sprint(p)),
			slog.String("stack", string(debug.Stack())))
		if !rec.wrote {
			writeJSON(rec, http.StatusInternalServerError, errorResponse{"internal server error"})
		} else {
			rec.status = http.StatusInternalServerError
		}
	}()
	if s.faults != nil {
		s.fire(point, nil)
	}
	h(rec, r)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var entries []*entry
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, e := range sh.streams {
			entries = append(entries, e)
		}
		sh.mu.RUnlock()
	}
	var streams, inWindow, reex, drift, violations int64
	for _, e := range entries {
		stats := e.st.Stats()
		streams++
		inWindow += int64(stats.InWindow)
		reex += stats.Reextractions
		drift += stats.Drift
		violations += stats.Violations
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, gauges{
		streams:    streams,
		inWindow:   inWindow,
		reex:       reex,
		drift:      drift,
		violations: violations,

		shedIngest:     s.limIngest.Shed(),
		shedRead:       s.limRead.Shed(),
		limitIngest:    s.limIngest.Limit(),
		limitRead:      s.limRead.Limit(),
		inflightIngest: s.limIngest.Inflight(),
		inflightRead:   s.limRead.Inflight(),

		queueDepths: s.asyncDepths(),
		wal:         s.walGaugesNow(),
		trace:       s.traceGaugesNow(),
		tenants:     s.tenantGaugesNow(),
	})
}
