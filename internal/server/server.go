// Package server exposes the streaming workload-curve maintainer of
// internal/stream as an HTTP/JSON service — the first piece of the
// repository that serves traffic instead of batch-analyzing files.
//
// Streams are partitioned across fixed shards by FNV-1a hash of the stream
// id; each shard guards only its id→stream map with its own RWMutex, and
// every stream serializes its own state behind its own lock, so ingestion
// into different streams never contends. The endpoints (all JSON):
//
//	POST   /v1/streams/{id}/ingest    {"t":[...], "demand":[...]}
//	GET    /v1/streams/{id}/curves    γᵘ/γˡ and span tables of the window
//	POST   /v1/streams/{id}/check     eq. (8)  {"freq_hz":F, "latency_ns":L, "buffer":b}
//	GET    /v1/streams/{id}/minfreq?b=N   eq. (9) and eq. (10) side by side
//	POST   /v1/streams/{id}/contract  {"upper":[...], "lower":[...], "window":W}
//	GET    /v1/streams/{id}/verdict   online-monitor verdict (Admits-style)
//	GET    /v1/streams                list streams
//	DELETE /v1/streams/{id}           drop a stream
//	GET    /healthz                   liveness
//	GET    /metrics                   Prometheus text exposition
//
// Request bodies are size-limited (Config.MaxBodyBytes); unknown JSON
// fields are rejected so client typos fail loudly.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"wcm/internal/core"
	"wcm/internal/curve"
	"wcm/internal/stream"
)

// Defaults for zero-valued Config fields.
const (
	DefaultShards       = 16
	DefaultMaxBodyBytes = 1 << 20
)

// Config parameterizes a Server. The zero value picks service defaults.
type Config struct {
	// Shards is the number of stream-map partitions. Default 16.
	Shards int
	// MaxBodyBytes caps every request body. Default 1 MiB.
	MaxBodyBytes int64
	// Stream configures streams auto-created on first ingest.
	Stream stream.Config
}

// Server is the wcmd HTTP service: a sharded registry of streams plus the
// request handlers and metrics.
type Server struct {
	cfg     Config
	shards  []*shard
	mux     *http.ServeMux
	metrics *metrics
}

type shard struct {
	mu      sync.RWMutex
	streams map[string]*stream.Stream
}

// New builds a server. The stream defaults are validated eagerly so a bad
// flag fails at startup, not on first ingest.
func New(cfg Config) (*Server, error) {
	if cfg.Shards == 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("server: shards=%d", cfg.Shards)
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxBodyBytes < 1 {
		return nil, fmt.Errorf("server: max body bytes=%d", cfg.MaxBodyBytes)
	}
	if _, err := stream.New(cfg.Stream); err != nil {
		return nil, fmt.Errorf("server: stream defaults: %w", err)
	}
	s := &Server{
		cfg:     cfg,
		shards:  make([]*shard, cfg.Shards),
		mux:     http.NewServeMux(),
		metrics: newMetrics(),
	}
	for i := range s.shards {
		s.shards[i] = &shard{streams: make(map[string]*stream.Stream)}
	}
	s.routes()
	return s, nil
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/streams/{id}/ingest", s.instrument("ingest", s.handleIngest))
	s.mux.HandleFunc("GET /v1/streams/{id}/curves", s.instrument("curves", s.handleCurves))
	s.mux.HandleFunc("POST /v1/streams/{id}/check", s.instrument("check", s.handleCheck))
	s.mux.HandleFunc("GET /v1/streams/{id}/minfreq", s.instrument("minfreq", s.handleMinFreq))
	s.mux.HandleFunc("POST /v1/streams/{id}/contract", s.instrument("contract", s.handleContract))
	s.mux.HandleFunc("GET /v1/streams/{id}/verdict", s.instrument("verdict", s.handleVerdict))
	s.mux.HandleFunc("GET /v1/streams", s.instrument("list", s.handleList))
	s.mux.HandleFunc("DELETE /v1/streams/{id}", s.instrument("delete", s.handleDelete))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// Handler returns the service's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) shardFor(id string) *shard {
	h := fnv.New32a()
	io.WriteString(h, id)
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// get returns the stream for id, or nil.
func (s *Server) get(id string) *stream.Stream {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.streams[id]
}

// getOrCreate returns the stream for id, creating it with the server's
// stream defaults on first use. created reports whether this call made it;
// callers that then fail before any state lands may dropIfEmpty the stream
// so rejected requests don't register ghosts.
func (s *Server) getOrCreate(id string) (st *stream.Stream, created bool, err error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	st = sh.streams[id]
	sh.mu.RUnlock()
	if st != nil {
		return st, false, nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if st := sh.streams[id]; st != nil {
		return st, false, nil
	}
	st, err = stream.New(s.cfg.Stream)
	if err != nil {
		return nil, false, err
	}
	sh.streams[id] = st
	return st, true, nil
}

// dropIfEmpty removes a just-created stream that never accepted a sample.
func (s *Server) dropIfEmpty(id string, st *stream.Stream) {
	if st.Stats().Total != 0 {
		return
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	if cur, ok := sh.streams[id]; ok && cur == st && cur.Stats().Total == 0 {
		delete(sh.streams, id)
	}
	sh.mu.Unlock()
}

// ---- request/response shapes ---------------------------------------------

type errorResponse struct {
	Error string `json:"error"`
}

type ingestRequest struct {
	T      []int64 `json:"t"`
	Demand []int64 `json:"demand"`
}

type violationJSON struct {
	Start int   `json:"start"`
	Len   int   `json:"len"`
	Sum   int64 `json:"sum"`
	Bound int64 `json:"bound"`
	Upper bool  `json:"upper"`
}

func violationFrom(v *core.Violation) *violationJSON {
	if v == nil {
		return nil
	}
	return &violationJSON{Start: v.Start, Len: v.Len, Sum: v.Sum, Bound: v.Bound, Upper: v.Upper}
}

type ingestResponse struct {
	Accepted   int            `json:"accepted"`
	Total      int64          `json:"total"`
	Violation  *violationJSON `json:"violation,omitempty"`
	Violations int64          `json:"violations"`
	Drift      int64          `json:"drift"`
}

type curvesResponse struct {
	Total    int64   `json:"total"`
	InWindow int     `json:"in_window"`
	Upper    []int64 `json:"upper"`
	Lower    []int64 `json:"lower"`
	DMin     []int64 `json:"dmin"`
	DMax     []int64 `json:"dmax"`
}

type checkRequest struct {
	FreqHz    float64 `json:"freq_hz"`
	LatencyNs int64   `json:"latency_ns"`
	Buffer    int     `json:"buffer"`
}

type checkResponse struct {
	OK bool `json:"ok"`
}

type minFreqResponse struct {
	GammaHz       float64 `json:"gamma_hz"`
	GammaAtK      int     `json:"gamma_at_k"`
	GammaAtSpanNs int64   `json:"gamma_at_span_ns"`
	WCETHz        float64 `json:"wcet_hz"`
	WCETAtK       int     `json:"wcet_at_k"`
	Saving        float64 `json:"saving"`
	Buffer        int     `json:"buffer"`
}

type contractRequest struct {
	Upper  []int64 `json:"upper"`
	Lower  []int64 `json:"lower"`
	Window int     `json:"window"`
}

type verdictResponse struct {
	Admitted       bool           `json:"admitted"`
	ContractSet    bool           `json:"contract_set"`
	Total          int64          `json:"total"`
	Violations     int64          `json:"violations"`
	FirstViolation *violationJSON `json:"first_violation,omitempty"`
	Drift          int64          `json:"drift"`
}

type streamInfo struct {
	ID       string `json:"id"`
	Total    int64  `json:"total"`
	InWindow int    `json:"in_window"`
}

// ---- decoding -------------------------------------------------------------

// decodeJSON strictly decodes one JSON object from r into dst.
func decodeJSON(r io.Reader, dst any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return err
	}
	// Trailing garbage after the object is a client bug; reject it.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return errors.New("trailing data after JSON object")
	}
	return nil
}

// decodeIngest parses and structurally validates an ingest batch. Exposed
// for the fuzz harness: it must never panic, whatever bytes arrive.
func decodeIngest(r io.Reader) (ingestRequest, error) {
	var req ingestRequest
	if err := decodeJSON(r, &req); err != nil {
		return ingestRequest{}, err
	}
	if len(req.T) == 0 || len(req.Demand) == 0 {
		return ingestRequest{}, errors.New(`"t" and "demand" must both be non-empty`)
	}
	if len(req.T) != len(req.Demand) {
		return ingestRequest{}, fmt.Errorf(`"t" has %d entries, "demand" has %d`, len(req.T), len(req.Demand))
	}
	return req, nil
}

// ---- handlers --------------------------------------------------------------

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	req, err := decodeIngest(r.Body)
	if err != nil {
		writeDecodeError(w, err)
		return
	}
	id := r.PathValue("id")
	st, created, err := s.getOrCreate(id)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
		return
	}
	res, err := st.Ingest(req.T, req.Demand)
	if err != nil {
		if created {
			s.dropIfEmpty(id, st)
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	s.metrics.samples.Add(uint64(res.Accepted))
	s.metrics.batches.Add(1)
	if res.Violation != nil {
		s.metrics.violatingBatches.Add(1)
	}
	writeJSON(w, http.StatusOK, ingestResponse{
		Accepted:   res.Accepted,
		Total:      res.Total,
		Violation:  violationFrom(res.Violation),
		Violations: res.Violations,
		Drift:      res.Drift,
	})
}

func (s *Server) handleCurves(w http.ResponseWriter, r *http.Request) {
	st := s.get(r.PathValue("id"))
	if st == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{"unknown stream"})
		return
	}
	snap, err := st.Snapshot()
	if err != nil {
		writeJSON(w, http.StatusConflict, errorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, curvesResponse{
		Total:    snap.Total,
		InWindow: snap.InWindow,
		Upper:    snap.Workload.Upper.Values(),
		Lower:    snap.Workload.Lower.Values(),
		DMin:     snap.Spans,
		DMax:     snap.MaxSpans,
	})
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req checkRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if req.FreqHz <= 0 || req.LatencyNs < 0 || req.Buffer < 0 {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{"need freq_hz > 0, latency_ns ≥ 0, buffer ≥ 0"})
		return
	}
	st := s.get(r.PathValue("id"))
	if st == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{"unknown stream"})
		return
	}
	ok, err := st.CheckService(req.FreqHz, req.LatencyNs, req.Buffer)
	if err != nil {
		writeJSON(w, http.StatusConflict, errorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, checkResponse{OK: ok})
}

func (s *Server) handleMinFreq(w http.ResponseWriter, r *http.Request) {
	b := 1
	if q := r.URL.Query().Get("b"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{"b must be a non-negative integer"})
			return
		}
		b = v
	}
	st := s.get(r.PathValue("id"))
	if st == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{"unknown stream"})
		return
	}
	cmp, err := st.MinFrequency(b)
	if err != nil {
		writeJSON(w, http.StatusConflict, errorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, minFreqResponse{
		GammaHz:       cmp.Gamma.Hz,
		GammaAtK:      cmp.Gamma.AtK,
		GammaAtSpanNs: cmp.Gamma.AtSpanNs,
		WCETHz:        cmp.WCET.Hz,
		WCETAtK:       cmp.WCET.AtK,
		Saving:        cmp.Saving,
		Buffer:        b,
	})
}

func (s *Server) handleContract(w http.ResponseWriter, r *http.Request) {
	var req contractRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	up, err := curve.NewFinite(req.Upper)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("upper: %v", err)})
		return
	}
	lo, err := curve.NewFinite(req.Lower)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf("lower: %v", err)})
		return
	}
	window := req.Window
	if window == 0 {
		window = up.MaxK()
	}
	id := r.PathValue("id")
	st, created, err := s.getOrCreate(id)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
		return
	}
	if err := st.SetContract(core.Workload{Upper: up, Lower: lo}, window); err != nil {
		if created {
			s.dropIfEmpty(id, st)
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"window": window})
}

func (s *Server) handleVerdict(w http.ResponseWriter, r *http.Request) {
	st := s.get(r.PathValue("id"))
	if st == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{"unknown stream"})
		return
	}
	stats := st.Stats()
	writeJSON(w, http.StatusOK, verdictResponse{
		Admitted:       stats.Violations == 0,
		ContractSet:    stats.ContractSet,
		Total:          stats.Total,
		Violations:     stats.Violations,
		FirstViolation: violationFrom(stats.FirstViolation),
		Drift:          stats.Drift,
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	var infos []streamInfo
	for _, sh := range s.shards {
		sh.mu.RLock()
		for id, st := range sh.streams {
			stats := st.Stats()
			infos = append(infos, streamInfo{ID: id, Total: stats.Total, InWindow: stats.InWindow})
		}
		sh.mu.RUnlock()
	}
	if infos == nil {
		infos = []streamInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"streams": infos})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sh := s.shardFor(id)
	sh.mu.Lock()
	_, ok := sh.streams[id]
	delete(sh.streams, id)
	sh.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{"unknown stream"})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ---- plumbing --------------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// writeDecodeError maps body-decoding failures to 413 (body too large) or
// 400 (malformed JSON).
func writeDecodeError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorResponse{fmt.Sprintf("body exceeds %d bytes", tooBig.Limit)})
		return
	}
	writeJSON(w, http.StatusBadRequest, errorResponse{err.Error()})
}

// statusRecorder captures the response code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the body-size limit and per-endpoint
// request/error/latency accounting.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	ep := s.metrics.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(rec, r)
		ep.observe(time.Since(start), rec.status)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var streams, inWindow, reex, drift, violations int64
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, st := range sh.streams {
			stats := st.Stats()
			streams++
			inWindow += int64(stats.InWindow)
			reex += stats.Reextractions
			drift += stats.Drift
			violations += stats.Violations
		}
		sh.mu.RUnlock()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w, gauges{
		streams:    streams,
		inWindow:   inWindow,
		reex:       reex,
		drift:      drift,
		violations: violations,
	})
}
