package server

import (
	"wcm/internal/wirefmt"
)

// ContentTypeBinary selects the columnar binary ingest format on
// POST /v1/streams/{id}/ingest. The wire layout lives in internal/wirefmt
// (it is shared with the WAL record payloads of internal/wal): all
// little-endian,
//
//	uint32  n        number of samples, ≥ 1
//	int64×n t        timestamps, ingest order
//	int64×n demand   per-activation cycle demands
//
// — exactly 4+16·n bytes, nothing else.
const ContentTypeBinary = "application/x-wcm-ingest"

// ContentTypeQueryBinary selects the columnar binary query response format
// on GET /curves, POST /check and GET /minfreq, negotiated via the Accept
// header. The wire layout (kind-tagged, little-endian, columnar) lives in
// internal/wirefmt (AppendCurves/AppendCheck/AppendMinFreq and the matching
// decoders). Error responses are always JSON regardless of Accept — the
// non-200 status is the discriminator.
const ContentTypeQueryBinary = "application/x-wcm-curves"

// binaryHeaderLen is the length prefix, binarySampleLen one (t, demand) pair.
const (
	binaryHeaderLen = wirefmt.HeaderLen
	binarySampleLen = wirefmt.SampleLen
)

// AppendBinaryBatch appends the binary ingest encoding of the batch to dst
// and returns the extended slice. len(t) must equal len(d) and be ≥ 1 —
// the encoder is for clients (and benchmarks), which control their batches,
// so it panics on misuse instead of returning an error.
func AppendBinaryBatch(dst []byte, t, d []int64) []byte {
	return wirefmt.AppendBatch(dst, t, d)
}

// decodeBinaryBatch decodes one binary ingest body into t and d, appending
// to the passed slices (pass length-0 slices with retained capacity for a
// zero-allocation steady state). It must never panic, whatever bytes
// arrive — the fuzz harness feeds it arbitrary input.
func decodeBinaryBatch(body []byte, t, d []int64) (ts, ds []int64, err error) {
	return wirefmt.DecodeBatch(body, t, d)
}
