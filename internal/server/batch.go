package server

import (
	"errors"
	"net/http"
	"sort"

	"wcm/internal/stream"
)

// POST /v1/query — multi-stream batch reads. Dashboards and admission
// controllers fan out over hundreds of streams; issuing one HTTP request
// per stream pays the whole per-request envelope (headers, routing,
// instrumentation) per data point. The batch endpoint answers any mix of
// curves/check/minfreq/verdict for many streams in one request: entries are
// resolved in one shard-ordered pass through the same per-stream cache and
// singleflight as the individual endpoints, and the response is assembled
// by splicing the cached pre-rendered JSON bodies into one shared buffer —
// no re-marshaling, byte-identical sub-objects.
//
// Request:
//
//	{"ids":["a","b"], "curves":true, "verdict":true,
//	 "check":{"freq_hz":1e8,"latency_ns":10,"buffer":2}, "minfreq_b":2}
//
// Response: 200 with one object per id, in request order, carrying only the
// requested fields:
//
//	{"streams":[{"id":"a","curves":{...},"check":{...},
//	             "minfreq":{...},"verdict":{...}}, ...]}
//
// Failures stay per-stream, never whole-request: an unknown id yields
// {"id":...,"error":"unknown stream"}, a sub-query that failed to compute
// carries that endpoint's usual {"error":...} object in its field, and a
// stream whose lock was contended past the deadline falls back to its last
// cached answer with "degraded":true spliced in, exactly like the
// single-stream degraded-read path (the X-Wcm-Degraded header is not set —
// it cannot name which streams are stale).

// maxBatchStreams caps ids per /v1/query request: past this the request
// envelope amortization has long flattened out and the only thing growing
// is worst-case response latency.
const maxBatchStreams = 1024

type batchQueryRequest struct {
	IDs      []string      `json:"ids"`
	Curves   bool          `json:"curves"`
	Verdict  bool          `json:"verdict"`
	Check    *checkRequest `json:"check"`
	MinFreqB *int          `json:"minfreq_b"`
}

// batchAnswer holds one stream's resolved sub-objects (spliced JSON object
// bytes, no trailing newline). missing marks an unknown id.
type batchAnswer struct {
	missing                         bool
	curves, check, minfreq, verdict []byte
}

func trimNL(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		return b[:n-1]
	}
	return b
}

// batchSub folds one sub-query resolution into splice-ready bytes, applying
// the same hit/miss accounting and degraded fallback as the single-stream
// handlers.
func (s *Server) batchSub(resp *cachedResp, hit bool, err error, last *cachedResp) []byte {
	if err == nil {
		if hit {
			s.metrics.cacheHits.Add(1)
		} else {
			s.metrics.cacheMisses.Add(1)
		}
		return trimNL(resp.body)
	}
	s.metrics.cacheMisses.Add(1)
	if errors.Is(err, stream.ErrBusy) && last != nil {
		if body := degradedBody(last); body != nil {
			s.metrics.degraded.Add(1)
			return trimNL(body)
		}
	}
	return append(appendJSONString([]byte(`{"error":`), err.Error()), '}')
}

func (s *Server) handleBatchQuery(w http.ResponseWriter, r *http.Request) {
	var req batchQueryRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if len(req.IDs) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{`"ids" must be non-empty`})
		return
	}
	if len(req.IDs) > maxBatchStreams {
		writeJSON(w, http.StatusBadRequest, errorResponse{"too many ids (max 1024)"})
		return
	}
	if !req.Curves && !req.Verdict && req.Check == nil && req.MinFreqB == nil {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{`nothing requested: set "curves", "verdict", "check" or "minfreq_b"`})
		return
	}
	if req.Check != nil &&
		(req.Check.FreqHz <= 0 || req.Check.LatencyNs < 0 || req.Check.Buffer < 0) {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{"check: need freq_hz > 0, latency_ns ≥ 0, buffer ≥ 0"})
		return
	}
	if req.MinFreqB != nil && *req.MinFreqB < 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{"minfreq_b must be non-negative"})
		return
	}
	s.metrics.batchStreams.Observe(int64(len(req.IDs)))

	// Resolve in shard order — consecutive streams of one shard touch the
	// same registry lock and likely the same cache lines — but remember
	// each id's request position so the response preserves request order.
	// Duplicate ids resolve once: dup[i] names the first occurrence whose
	// answer position i copies after the resolution pass (the sub-objects
	// are immutable spliced bytes, so sharing them is free).
	shards := make([]uint32, len(req.IDs))
	order := make([]int, len(req.IDs))
	dup := make([]int, len(req.IDs))
	firstAt := make(map[string]int, len(req.IDs))
	for i, id := range req.IDs {
		shards[i] = s.shardIndex(id)
		order[i] = i
		if j, seen := firstAt[id]; seen {
			dup[i] = j
		} else {
			firstAt[id] = i
			dup[i] = i
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return shards[order[a]] < shards[order[b]] })

	ctx := r.Context()
	tenant := s.tenantFor(r).name
	answers := make([]batchAnswer, len(req.IDs))
	for _, i := range order {
		if dup[i] != i {
			continue // a duplicate; copies its first occurrence's answer below
		}
		e := s.get(req.IDs[i])
		if e == nil {
			answers[i].missing = true
			continue
		}
		a := &answers[i]
		if req.Curves {
			resp, hit, err := s.resolveCurves(ctx, e, false)
			a.curves = s.batchSub(resp, hit, err, e.cache.curves.last())
		}
		if req.Check != nil {
			resp, hit, err := s.resolveCheck(ctx, e, *req.Check, false, tenant)
			key := checkKey{freqHz: req.Check.FreqHz, latencyNs: req.Check.LatencyNs, buffer: req.Check.Buffer}
			a.check = s.batchSub(resp, hit, err, e.cache.check.getAny(tenant, key))
		}
		if req.MinFreqB != nil {
			resp, hit, err := s.resolveMinFreq(ctx, e, *req.MinFreqB, false, tenant)
			a.minfreq = s.batchSub(resp, hit, err, e.cache.minfreq.getAny(tenant, *req.MinFreqB))
		}
		if req.Verdict {
			resp, hit, err := s.resolveVerdict(ctx, e)
			a.verdict = s.batchSub(resp, hit, err, e.cache.verdict.last())
		}
	}
	for i := range answers {
		if dup[i] != i {
			answers[i] = answers[dup[i]]
		}
	}

	// Splice everything into one shared render buffer.
	buf := renderPool.Get().(*[]byte)
	b := (*buf)[:0]
	b = append(b, `{"streams":[`...)
	for i := range answers {
		if i > 0 {
			b = append(b, ',')
		}
		a := &answers[i]
		b = append(b, `{"id":`...)
		b = appendJSONString(b, req.IDs[i])
		if a.missing {
			b = append(b, `,"error":"unknown stream"}`...)
			continue
		}
		if a.curves != nil {
			b = append(b, `,"curves":`...)
			b = append(b, a.curves...)
		}
		if a.check != nil {
			b = append(b, `,"check":`...)
			b = append(b, a.check...)
		}
		if a.minfreq != nil {
			b = append(b, `,"minfreq":`...)
			b = append(b, a.minfreq...)
		}
		if a.verdict != nil {
			b = append(b, `,"verdict":`...)
			b = append(b, a.verdict...)
		}
		b = append(b, '}')
	}
	b = append(b, ']', '}', '\n')

	setHeaderValue(w.Header(), "Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(b) //nolint:errcheck // client gone; nothing to do
	*buf = b[:0]
	renderPool.Put(buf)
}
