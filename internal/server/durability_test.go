package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"wcm/internal/stream"
	"wcm/internal/wal"
)

// openTestWAL opens a wal.Manager over dir with a config matching cfg.
func openTestWAL(t *testing.T, dir string, cfg Config, pol wal.Policy) *wal.Manager {
	t.Helper()
	m, err := wal.Open(wal.Options{
		Dir:          dir,
		Shards:       cfg.Shards,
		SegmentBytes: 8192, // small, so crash tests cross segment boundaries
		Policy:       pol,
		Stream:       cfg.Stream,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// ackedBatch is one batch a durable server acknowledged; the differential
// reference replays exactly these.
type ackedBatch struct {
	id     string
	ts, ds []int64
}

// TestCrashRecoveryDifferential is the durability contract end to end:
// drive a durable server with a randomized concurrent ingest-only workload
// (one goroutine per stream, so each stream's batch order is well defined),
// checkpoint part-way, then CRASH — abandon the server without Close, the
// process-death simulation (every acked record reached the segment file via
// the direct write; only Close-time flushes are lost, and there are none).
// A fresh manager over the same directory must recover a server whose
// /v1/curves, /v1/check and /v1/minfreq answers are byte-identical to a
// never-crashed in-memory server fed the same acked batches.
func TestCrashRecoveryDifferential(t *testing.T) {
	for _, tc := range []struct {
		name string
		pol  wal.Policy
		ring int
	}{
		{"sync-batch", wal.PolicyBatch, 0},
		{"sync-always", wal.PolicyAlways, 0},
		{"async-batch", wal.PolicyBatch, 16},
		{"async-always", wal.PolicyAlways, 16},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := Config{
				Shards:     4,
				Stream:     stream.Config{Window: 64, MaxK: 16, ReextractEvery: 13},
				IngestRing: tc.ring,
			}
			cfg.WAL = openTestWAL(t, dir, cfg, tc.pol)
			srv, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())

			ids := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
			acked := make([][]ackedBatch, len(ids))
			var wg sync.WaitGroup
			for w, id := range ids {
				wg.Add(1)
				go func(w int, id string) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w) + 11))
					var lastT int64
					for i := 0; i < 60; i++ {
						n := 1 + rng.Intn(5)
						bts := make([]int64, n)
						bds := make([]int64, n)
						for j := range bts {
							lastT += 1 + int64(rng.Intn(7))
							bts[j] = lastT
							bds[j] = int64(rng.Intn(9))
						}
						body := fmt.Sprintf(`{"t":%s,"demand":%s}`, jsonInts(bts), jsonInts(bds))
						st, raw := rawReq(t, "POST", ts.URL+"/v1/streams/"+id+"/ingest", "", []byte(body))
						if st != http.StatusOK {
							t.Errorf("%s batch %d: status %d body %s", id, i, st, raw)
							return
						}
						acked[w] = append(acked[w], ackedBatch{id, bts, bds})
						if w == 0 && i == 30 {
							// Mid-run checkpoint: recovery must compose a
							// snapshot with the WAL tail written after it.
							if err := srv.checkpointShard(int(srv.shardIndex(id))); err != nil {
								t.Errorf("checkpoint: %v", err)
							}
						}
					}
				}(w, id)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			// CRASH: no srv.Close(), no wal Close — just stop talking to it.
			ts.Close()

			recM, err := wal.Open(wal.Options{
				Dir: dir, Shards: cfg.Shards, SegmentBytes: 8192, Policy: tc.pol, Stream: cfg.Stream,
			})
			if err != nil {
				t.Fatalf("reopen wal: %v", err)
			}
			if recM.CleanStart() {
				t.Fatal("crash recovery reported a clean start")
			}
			recCfg := cfg
			recCfg.WAL = recM
			rec, err := New(recCfg)
			if err != nil {
				t.Fatalf("recover server: %v", err)
			}
			defer rec.Close()
			recTS := httptest.NewServer(rec.Handler())
			defer recTS.Close()

			// Reference: plain in-memory server fed the same acked batches,
			// per stream in ack order.
			refTS := newTestServer(t, Config{Shards: 4, Stream: cfg.Stream})
			for _, perStream := range acked {
				for _, b := range perStream {
					body := fmt.Sprintf(`{"t":%s,"demand":%s}`, jsonInts(b.ts), jsonInts(b.ds))
					if st, raw := rawReq(t, "POST", refTS.URL+"/v1/streams/"+b.id+"/ingest", "", []byte(body)); st != http.StatusOK {
						t.Fatalf("reference ingest: status %d body %s", st, raw)
					}
				}
			}

			for _, id := range ids {
				for _, q := range []struct{ method, path, body string }{
					{"GET", "/v1/streams/" + id + "/curves", ""},
					{"GET", "/v1/streams/" + id + "/minfreq", ""},
					{"POST", "/v1/streams/" + id + "/check", `{"freq_hz":2e9,"latency_ns":500}`},
				} {
					var b []byte
					if q.body != "" {
						b = []byte(q.body)
					}
					ws, wb := rawReq(t, q.method, refTS.URL+q.path, "", b)
					gs, gb := rawReq(t, q.method, recTS.URL+q.path, "", b)
					if ws != gs || string(wb) != string(gb) {
						t.Fatalf("%s %s diverges after recovery:\n want %d %s\n  got %d %s",
							q.method, q.path, ws, wb, gs, gb)
					}
				}
			}
		})
	}
}

// TestDeleteCrashRecover proves tombstone durability: a deleted stream must
// not resurrect after a crash, and a recreated stream of the same name must
// come back with only its post-recreate batches.
func TestDeleteCrashRecover(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 2, Stream: stream.Config{Window: 32, MaxK: 8}}
	cfg.WAL = openTestWAL(t, dir, cfg, wal.PolicyBatch)
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	ing := func(id string, tsv, d int64) {
		t.Helper()
		body := fmt.Sprintf(`{"t":[%d],"demand":[%d]}`, tsv, d)
		if st, raw := rawReq(t, "POST", ts.URL+"/v1/streams/"+id+"/ingest", "", []byte(body)); st != http.StatusOK {
			t.Fatalf("ingest %s: %d %s", id, st, raw)
		}
	}
	ing("doomed", 10, 5)
	ing("doomed", 20, 7)
	ing("keeper", 10, 3)
	// Snapshot both, so the tombstone must also kill a snapshot.
	for i := 0; i < cfg.Shards; i++ {
		if err := srv.checkpointShard(i); err != nil {
			t.Fatal(err)
		}
	}
	ing("doomed", 30, 9)
	if st, raw := rawReq(t, "DELETE", ts.URL+"/v1/streams/doomed", "", nil); st != http.StatusNoContent {
		t.Fatalf("delete: %d %s", st, raw)
	}
	// Recreate under the same name: only this incarnation may survive.
	ing("doomed", 100, 1)
	ts.Close() // crash: no Close

	recM := openTestWAL(t, dir, cfg, wal.PolicyBatch)
	recCfg := cfg
	recCfg.WAL = recM
	rec, err := New(recCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	recTS := httptest.NewServer(rec.Handler())
	defer recTS.Close()

	_, raw := rawReq(t, "GET", recTS.URL+"/v1/streams/doomed/curves", "", nil)
	if strings.Contains(string(raw), `"total":4`) || !strings.Contains(string(raw), `"total":1`) {
		t.Fatalf("deleted stream resurrected old samples: %s", raw)
	}
	if st, raw := rawReq(t, "GET", recTS.URL+"/v1/streams/keeper/curves", "", nil); st != http.StatusOK || !strings.Contains(string(raw), `"total":1`) {
		t.Fatalf("keeper lost after recovery: %d %s", st, raw)
	}
}

// TestCleanShutdownRestart exercises the graceful path: Close checkpoints
// and writes the clean marker; the restart reports clean_start and replays
// from snapshots alone.
func TestCleanShutdownRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 2, Stream: stream.Config{Window: 32, MaxK: 8}}
	cfg.WAL = openTestWAL(t, dir, cfg, wal.PolicyBatch)
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	if st, _ := rawReq(t, "POST", ts.URL+"/v1/streams/s/ingest", "", []byte(`{"t":[5,6],"demand":[2,3]}`)); st != http.StatusOK {
		t.Fatal("ingest failed")
	}
	ts.Close()
	srv.Close()

	recM := openTestWAL(t, dir, cfg, wal.PolicyBatch)
	if !recM.CleanStart() {
		t.Fatal("restart after Close did not see the clean marker")
	}
	recCfg := cfg
	recCfg.WAL = recM
	rec, err := New(recCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	recTS := httptest.NewServer(rec.Handler())
	defer recTS.Close()
	if st, raw := rawReq(t, "GET", recTS.URL+"/v1/streams/s/curves", "", nil); st != http.StatusOK || !strings.Contains(string(raw), `"total":2`) {
		t.Fatalf("clean restart lost data: %d %s", st, raw)
	}
	// The final checkpoint covered everything: nothing replayed from the log.
	if got := rec.recovered.batches.Load(); got != 0 {
		t.Fatalf("clean restart replayed %d batches from the WAL, want 0 (snapshots cover all)", got)
	}
	if rec.recovered.streams.Load() != 1 {
		t.Fatalf("recovered %d streams, want 1", rec.recovered.streams.Load())
	}
}

// TestHealthzDurability covers the /healthz durability object and the 503
// answered while recovery is in progress.
func TestHealthzDurability(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 2, Stream: stream.Config{Window: 32, MaxK: 8}}
	cfg.WAL = openTestWAL(t, dir, cfg, wal.PolicyAlways)
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	req := httptest.NewRequest("GET", "/healthz", nil)
	recdr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(recdr, req)
	body := recdr.Body.String()
	if recdr.Code != http.StatusOK {
		t.Fatalf("healthz: %d %s", recdr.Code, body)
	}
	for _, want := range []string{`"durability"`, `"enabled":true`, `"fsync":"always"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("healthz missing %s: %s", want, body)
		}
	}

	srv.recovering.Store(true)
	recdr = httptest.NewRecorder()
	srv.Handler().ServeHTTP(recdr, httptest.NewRequest("GET", "/healthz", nil))
	if recdr.Code != http.StatusServiceUnavailable || !strings.Contains(recdr.Body.String(), "recovering") {
		t.Fatalf("recovering healthz: %d %s, want 503 recovering", recdr.Code, recdr.Body.String())
	}
	srv.recovering.Store(false)
}

// TestWALMetricsExposed asserts the durability metric families appear in
// /metrics, with the fsync counter live under policy "always".
func TestWALMetricsExposed(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 2, Stream: stream.Config{Window: 32, MaxK: 8}}
	cfg.WAL = openTestWAL(t, dir, cfg, wal.PolicyAlways)
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if st, _ := rawReq(t, "POST", ts.URL+"/v1/streams/m/ingest", "", []byte(`{"t":[1],"demand":[2]}`)); st != http.StatusOK {
		t.Fatal("ingest failed")
	}
	_, raw := rawReq(t, "GET", ts.URL+"/metrics", "", nil)
	body := string(raw)
	for _, want := range []string{
		"wcmd_wal_bytes_total", "wcmd_wal_appends_total 1", "wcmd_wal_fsyncs_total",
		"wcmd_wal_torn_tails_total 0", "wcmd_recovery_replayed_batches 0",
		"wcmd_recovery_streams 0", "wcmd_wal_clean_start 0",
		`wcmd_stage_latency_seconds_count{stage="wal_append"} 1`,
		`wcmd_stage_latency_seconds_count{stage="wal_fsync"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
	if strings.Contains(body, "wcmd_wal_fsyncs_total 0\n") {
		t.Fatal("policy always performed no fsync")
	}

	// A WAL-less server must emit none of the durability families.
	plain := newTestServer(t, Config{Shards: 2, Stream: cfg.Stream})
	_, raw = rawReq(t, "GET", plain.URL+"/metrics", "", nil)
	if strings.Contains(string(raw), "wcmd_wal_") {
		t.Fatal("in-memory server exposes wal metrics")
	}
}

// TestWALShardMismatchRefused: a data directory written under a different
// -shards must be refused, not silently rehashed.
func TestWALShardMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 4, Stream: stream.Config{Window: 32, MaxK: 8}}
	m := openTestWAL(t, dir, cfg, wal.PolicyBatch)
	bad := Config{Shards: 2, Stream: cfg.Stream, WAL: m}
	if _, err := New(bad); err == nil || !strings.Contains(err.Error(), "shards") {
		t.Fatalf("New accepted a wal with mismatched shard count: %v", err)
	}
	m.Close()
}
