package server

import (
	"bytes"
	"net/http"
	"testing"
)

// nullWriter mirrors benchjson's reusable no-op ResponseWriter.
type nullWriter struct {
	h      http.Header
	status int
}

func (w *nullWriter) Header() http.Header         { return w.h }
func (w *nullWriter) WriteHeader(c int)           { w.status = c }
func (w *nullWriter) Write(p []byte) (int, error) { return len(p), nil }

type rb struct{ *bytes.Reader }

func (rb) Close() error { return nil }

func BenchmarkQueryCheckHit(b *testing.B) {
	s, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()
	seedStream(b, h, "q")
	body := []byte(`{"freq_hz":100000000,"latency_ns":10,"buffer":2}`)
	br := bytes.NewReader(nil)
	req, _ := http.NewRequest("POST", "/v1/streams/q/check", rb{br})
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "bench")
	rw := &nullWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Reset(body)
		req.ContentLength = int64(len(body))
		rw.status = 0
		h.ServeHTTP(rw, req)
		if rw.status != 200 {
			b.Fatalf("status %d", rw.status)
		}
	}
}

func seedStream(tb testing.TB, h http.Handler, id string) {
	tb.Helper()
	body := []byte(`{"t":[1,2,3,4,5,6,7,8],"demand":[10,20,30,40,50,60,70,80]}`)
	req, _ := http.NewRequest("POST", "/v1/streams/"+id+"/ingest", rb{bytes.NewReader(body)})
	req.Header.Set("Content-Type", "application/json")
	req.ContentLength = int64(len(body))
	rw := &nullWriter{h: make(http.Header)}
	h.ServeHTTP(rw, req)
	if rw.status != 200 {
		tb.Fatalf("seed status %d", rw.status)
	}
}
