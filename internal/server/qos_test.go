package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"wcm/internal/qos"
)

// doAs issues a request tagged with a tenant header and returns status,
// headers and body.
func doAs(t *testing.T, tenant, method, url, body string) (int, http.Header, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Wcm-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, raw
}

// tenantRecord fetches one tenant's row from /v1/tenants.
func tenantRecord(t *testing.T, baseURL, name string) tenantJSON {
	t.Helper()
	_, _, body := rawGet(t, baseURL+"/v1/tenants")
	var resp tenantsResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("/v1/tenants: %v in %s", err, body)
	}
	for _, rec := range resp.Tenants {
		if rec.Name == name {
			return rec
		}
	}
	t.Fatalf("tenant %q not in /v1/tenants: %s", name, body)
	return tenantJSON{}
}

// TestTenantRateIsolation is the e2e QoS isolation check for the token
// bucket: a rate-limited tenant blowing through its budget gets throttled
// with a deficit-derived Retry-After while an unlimited tenant and
// untagged traffic on the same server stay entirely unaffected.
func TestTenantRateIsolation(t *testing.T) {
	s, err := New(Config{Stream: streamCfg, Tenants: []qos.TenantConfig{
		{Name: "lim", RatePerSec: 1, Burst: 2},
		{Name: "free"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var throttled int
	for i := 0; i < 5; i++ {
		code, hdr, body := doAs(t, "lim", "POST", ts.URL+"/v1/streams/iso/ingest",
			fmt.Sprintf(`{"t":[%d],"demand":[1]}`, 100*(i+1)))
		switch code {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			throttled++
			if !strings.Contains(string(body), "over rate limit") {
				t.Fatalf("throttle body: %s", body)
			}
			if secs, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || secs < 1 {
				t.Fatalf("throttle Retry-After = %q", hdr.Get("Retry-After"))
			}
		default:
			t.Fatalf("ingest %d: status %d %s", i, code, body)
		}
	}
	if throttled != 3 { // burst 2 admits the first two instantly
		t.Fatalf("throttled %d of 5, want 3", throttled)
	}

	// The other tenant and untagged traffic never notice.
	for i := 0; i < 5; i++ {
		body := fmt.Sprintf(`{"t":[%d],"demand":[1]}`, 1000+100*i)
		if code, _, resp := doAs(t, "free", "POST", ts.URL+"/v1/streams/iso/ingest", body); code != http.StatusOK {
			t.Fatalf("free ingest: %d %s", code, resp)
		}
		if code, _ := doJSON(t, "GET", ts.URL+"/v1/streams/iso/curves", ""); code != http.StatusOK {
			t.Fatalf("untagged read: %d", code)
		}
	}

	lim := tenantRecord(t, ts.URL, "lim")
	if lim.Throttled != 3 || lim.Admitted != 2 {
		t.Fatalf("lim counters: %+v", lim)
	}
	free := tenantRecord(t, ts.URL, "free")
	if free.Throttled != 0 || free.Admitted != 5 {
		t.Fatalf("free counters: %+v", free)
	}
	if got := metricValue(t, ts.URL, `wcmd_tenant_throttled_total{tenant="lim",slo="interactive"}`); got != "3" {
		t.Fatalf("wcmd_tenant_throttled_total{lim} = %q", got)
	}
}

// TestTenantThrottledReadDegrades checks mixed-criticality degradation: a
// read rejected by the tenant's token bucket is still answered 200 from
// the cached path and counted degraded, not throttled.
func TestTenantThrottledReadDegrades(t *testing.T) {
	s, err := New(Config{Stream: streamCfg, Tenants: []qos.TenantConfig{
		{Name: "ro", SLO: "batch", RatePerSec: 1, Burst: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := doJSON(t, "POST", ts.URL+"/v1/streams/dg/ingest", `{"t":[0,100],"demand":[2,3]}`); code != http.StatusOK {
		t.Fatalf("ingest: %d", code)
	}
	code, _, good := rawGet(t, ts.URL+"/v1/streams/dg/curves") // untagged warms the slot
	if code != http.StatusOK {
		t.Fatalf("warm read: %d", code)
	}

	// First tagged read spends ro's only token; the second is throttled and
	// must ride the cached answer instead of bouncing.
	if code, _, _ := doAs(t, "ro", "GET", ts.URL+"/v1/streams/dg/curves", ""); code != http.StatusOK {
		t.Fatalf("ro read 1: %d", code)
	}
	code, hdr, body := doAs(t, "ro", "GET", ts.URL+"/v1/streams/dg/curves", "")
	if code != http.StatusOK || string(body) != string(good) {
		t.Fatalf("throttled read: %d %s", code, body)
	}
	if hdr.Get("X-Wcm-Degraded") != "" {
		t.Fatalf("fresh cached answer marked degraded") // version unchanged ⇒ normal serve
	}
	ro := tenantRecord(t, ts.URL, "ro")
	if ro.Admitted != 1 || ro.Degraded != 1 || ro.Throttled != 0 {
		t.Fatalf("ro counters after degraded read: %+v", ro)
	}
	if ro.SLO != "batch" {
		t.Fatalf("ro slo = %q", ro.SLO)
	}
}

// TestSLOShedOrder saturates half the read budget and checks the ordered
// thresholds: besteffort is shed at limit/2 while batch and interactive
// are still admitted.
func TestSLOShedOrder(t *testing.T) {
	s, err := New(Config{Stream: streamCfg, MaxInflightRead: 8, Tenants: []qos.TenantConfig{
		{Name: "be", SLO: "besteffort"},
		{Name: "ba", SLO: "batch"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Park 4 interactive reads on /check bodies that never finish: the
	// read level sits exactly at the besteffort threshold (8/2).
	const parked = 4
	writers := make([]*io.PipeWriter, parked)
	done := make(chan struct{}, parked)
	for i := range writers {
		pr, pw := io.Pipe()
		writers[i] = pw
		go func() {
			req, _ := http.NewRequest("POST", ts.URL+"/v1/streams/x/check", pr)
			if resp, err := http.DefaultClient.Do(req); err == nil {
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
			done <- struct{}{}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.limRead.Inflight() < parked {
		if time.Now().After(deadline) {
			t.Fatal("parked reads never occupied the limiter")
		}
		time.Sleep(time.Millisecond)
	}

	if code, _, body := doAs(t, "be", "GET", ts.URL+"/v1/streams/nope/curves", ""); code != http.StatusTooManyRequests {
		t.Fatalf("besteffort at limit/2: %d %s, want shed", code, body)
	}
	// Batch (threshold 6) and interactive (threshold 8) still get through —
	// through to a 404, which proves the handler ran.
	if code, _, _ := doAs(t, "ba", "GET", ts.URL+"/v1/streams/nope/curves", ""); code != http.StatusNotFound {
		t.Fatalf("batch at limit/2 not admitted")
	}
	if code, _, _ := doAs(t, "", "GET", ts.URL+"/v1/streams/nope/curves", ""); code != http.StatusNotFound {
		t.Fatalf("interactive at limit/2 not admitted")
	}

	be := tenantRecord(t, ts.URL, "be")
	if be.Shed != 1 {
		t.Fatalf("be.shed = %d, want 1", be.Shed)
	}
	for _, pw := range writers {
		pw.Close()
	}
	for i := 0; i < parked; i++ {
		<-done
	}
}

// TestTenantStreamQuota checks creation-time quota enforcement and that
// delete returns the slot.
func TestTenantStreamQuota(t *testing.T) {
	s, err := New(Config{Stream: streamCfg, Tenants: []qos.TenantConfig{
		{Name: "q", MaxStreams: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	mk := func(id string) (int, []byte) {
		code, _, body := doAs(t, "q", "POST", ts.URL+"/v1/streams/"+id+"/ingest", `{"t":[100],"demand":[1]}`)
		return code, body
	}
	for _, id := range []string{"q-1", "q-2"} {
		if code, body := mk(id); code != http.StatusOK {
			t.Fatalf("create %s: %d %s", id, code, body)
		}
	}
	code, body := mk("q-3")
	if code != http.StatusTooManyRequests || !strings.Contains(string(body), "stream quota exceeded") {
		t.Fatalf("over-quota create: %d %s", code, body)
	}
	if rec := tenantRecord(t, ts.URL, "q"); rec.Streams != 2 || rec.MaxStreams != 2 {
		t.Fatalf("q streams: %+v", rec)
	}
	// Existing streams stay writable over the quota; only creation is gated.
	if code, _, _ := doAs(t, "q", "POST", ts.URL+"/v1/streams/q-1/ingest", `{"t":[200],"demand":[1]}`); code != http.StatusOK {
		t.Fatalf("write to existing stream blocked by quota")
	}
	// Untagged traffic lands on the (unlimited) default tenant.
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/streams/other/ingest", `{"t":[100],"demand":[1]}`); code != http.StatusOK {
		t.Fatalf("default-tenant create gated")
	}

	if code, _ := doJSON(t, "DELETE", ts.URL+"/v1/streams/q-1", ""); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	if code, body := mk("q-3"); code != http.StatusOK {
		t.Fatalf("create after delete freed a slot: %d %s", code, body)
	}
	if rec := tenantRecord(t, ts.URL, "q"); rec.Streams != 2 {
		t.Fatalf("q streams after delete+create: %+v", rec)
	}
}

// TestRetryAfterProportional pins the hint arithmetic: shed hints grow
// with windowed pressure per unit of capacity, deficit hints round the
// token-refill gap up to whole seconds, and both clamp to [floor, max].
func TestRetryAfterProportional(t *testing.T) {
	l := newLimiter(2)
	now := time.Now().UnixNano()
	if got := l.shedHint(); got != retryAfterFloorSeconds {
		t.Fatalf("idle shedHint = %d", got)
	}
	l.noteShed(now)
	if got := l.shedHint(); got != retryAfterFloorSeconds {
		t.Fatalf("first-shed hint = %d, want the floor", got)
	}
	for i := 0; i < 6; i++ {
		l.noteShed(now)
	}
	// 7 sheds in the window, 6 prior, capacity 2 ⇒ 1 + 6/2.
	if got := l.shedHint(); got != retryAfterFloorSeconds+3 {
		t.Fatalf("pressured hint = %d, want %d", got, retryAfterFloorSeconds+3)
	}
	// A new window forgets old pressure.
	l.noteShed(now + 2*int64(time.Second))
	if got := l.shedHint(); got != retryAfterFloorSeconds {
		t.Fatalf("hint after window reset = %d", got)
	}

	for _, tc := range []struct {
		deficitNs int64
		want      int
	}{
		{1, 1},
		{int64(time.Second), 1},
		{int64(time.Second) + 1, 2},
		{int64(90 * time.Second), 90}, // clamped only at render time
	} {
		if got := retrySecsFromNs(tc.deficitNs); got != tc.want {
			t.Errorf("retrySecsFromNs(%d) = %d, want %d", tc.deficitNs, got, tc.want)
		}
	}
	if got := retryAfterValue(90); got != strconv.Itoa(maxRetryAfterSeconds) {
		t.Errorf("retryAfterValue(90) = %q", got)
	}
	if got := retryAfterValue(0); got != strconv.Itoa(retryAfterFloorSeconds) {
		t.Errorf("retryAfterValue(0) = %q", got)
	}
}

// TestRequestIDCharset is the regression test for the X-Request-Id
// sanitization bugfix: IDs with bytes outside printable ASCII are replaced
// with a generated ID before being echoed or logged, never reflected.
func TestRequestIDCharset(t *testing.T) {
	for _, tc := range []struct {
		id string
		ok bool
	}{
		{"client-id-1", true},
		{"trace_0042/retry.7", true},
		{"", false},
		{strings.Repeat("x", maxTraceIDLen), true},
		{strings.Repeat("x", maxTraceIDLen+1), false},
		{"evil\r\nSet-Cookie: x=1", false},
		{"tab\there", false},
		{"nul\x00", false},
		{"del\x7f", false},
		{"caf\xc3\xa9", false}, // non-ASCII
	} {
		if got := traceIDOK(tc.id); got != tc.ok {
			t.Errorf("traceIDOK(%q) = %v, want %v", tc.id, got, tc.ok)
		}
	}

	// End to end: a hostile-but-transmittable ID (net/http refuses to send
	// CR/LF itself, so use high bytes) comes back replaced by a generated
	// ID, in the standard generated shape.
	s, err := New(Config{Stream: streamCfg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "caf\xc3\xa9-id")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := resp.Header.Get("X-Request-Id")
	if got == "caf\xc3\xa9-id" {
		t.Fatalf("hostile id reflected: %q", got)
	}
	if len(got) != 25 || got[8] != '-' {
		t.Fatalf("replacement id = %q, want generated shape", got)
	}
}

// TestBatchQueryDedup is the regression test for duplicate ids in
// /v1/query: each unique id is resolved exactly once, and every position
// still gets its answer.
func TestBatchQueryDedup(t *testing.T) {
	s, err := New(Config{Stream: streamCfg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/streams/d/ingest", `{"t":[0,100],"demand":[2,3]}`); code != http.StatusOK {
		t.Fatalf("ingest: %d", code)
	}

	before := s.metrics.renders.Load()
	code, _, body := doAs(t, "", "POST", ts.URL+"/v1/query",
		`{"ids":["d","nope","d","d","nope"],"curves":true,"verdict":true}`)
	if code != http.StatusOK {
		t.Fatalf("batch: %d %s", code, body)
	}
	// 5 positions, 2 unique ids, one of them unknown: exactly one stream
	// resolved ⇒ 2 renders (curves + verdict), not 6.
	if got := s.metrics.renders.Load() - before; got != 2 {
		t.Fatalf("renders for deduped batch = %d, want 2", got)
	}
	var resp struct {
		Streams []struct {
			ID      string          `json:"id"`
			Error   string          `json:"error"`
			Curves  json.RawMessage `json:"curves"`
			Verdict json.RawMessage `json:"verdict"`
		} `json:"streams"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("batch response: %v in %s", err, body)
	}
	if len(resp.Streams) != 5 {
		t.Fatalf("batch answered %d positions, want 5", len(resp.Streams))
	}
	for i, want := range []string{"d", "nope", "d", "d", "nope"} {
		if resp.Streams[i].ID != want {
			t.Fatalf("position %d id = %q, want %q", i, resp.Streams[i].ID, want)
		}
	}
	for _, i := range []int{2, 3} { // duplicates share the first answer's bytes
		if string(resp.Streams[i].Curves) != string(resp.Streams[0].Curves) {
			t.Fatalf("duplicate position %d diverged from first occurrence", i)
		}
	}
	for _, i := range []int{1, 4} {
		if resp.Streams[i].Error != "unknown stream" {
			t.Fatalf("unknown position %d: %+v", i, resp.Streams[i])
		}
	}
}

// TestParamCacheTenantChurn is the regression test for the per-tenant
// epoch reset: one tenant sweeping parameters past the cap restarts only
// its own bucket and can never evict another tenant's cached answers.
func TestParamCacheTenantChurn(t *testing.T) {
	var pc paramCache[int]
	keep := &cachedResp{status: 200, body: []byte("A"), version: 7}
	pc.put(7, "a", 1, keep)

	resets := 0
	for k := 0; k < maxCachedQueries+40; k++ {
		if pc.put(7, "b", k, &cachedResp{status: 200, version: 7}) {
			resets++
		}
	}
	if resets == 0 {
		t.Fatal("b's sweep never hit the per-tenant cap")
	}
	if got := pc.get(7, "a", 1); got != keep {
		t.Fatalf("a's entry evicted by b's churn: %v", got)
	}
	// And a's own sweep does reset a's bucket (the cap still works).
	for k := 10; k < maxCachedQueries+11; k++ {
		pc.put(7, "a", k, &cachedResp{status: 200, version: 7})
	}
	if pc.get(7, "a", 1) != nil {
		t.Fatal("a's bucket never reset at its own cap")
	}
	// getAny falls back across tenants for the degraded path: a tenant
	// with no bucket of its own can ride any tenant's cached bytes.
	if pc.getAny("c", maxCachedQueries+20) == nil { // lives in b's post-reset epoch
		t.Fatal("getAny found nothing for an unseen tenant")
	}
}

// TestTenantSurfaces covers the introspection wiring: /v1/tenants,
// the /v1/stats tenants block and the wcmd_tenant_* metric families all
// report the same default-tenant traffic.
func TestTenantSurfaces(t *testing.T) {
	s, err := New(Config{Stream: streamCfg, DefaultSLO: "batch", Tenants: []qos.TenantConfig{
		{Name: "acme", SLO: "interactive", RatePerSec: 100, Burst: 10, MaxStreams: 5},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/streams/sf/ingest", `{"t":[100],"demand":[1]}`); code != http.StatusOK {
		t.Fatal("ingest failed")
	}

	_, _, body := rawGet(t, ts.URL+"/v1/tenants")
	var tl tenantsResponse
	if err := json.Unmarshal(body, &tl); err != nil {
		t.Fatal(err)
	}
	if tl.DefaultSLO != "batch" || len(tl.Tenants) != 2 {
		t.Fatalf("/v1/tenants: %s", body)
	}
	def := tenantRecord(t, ts.URL, "default")
	if def.SLO != "batch" || def.Admitted == 0 || def.Streams != 1 {
		t.Fatalf("default record: %+v", def)
	}
	acme := tenantRecord(t, ts.URL, "acme")
	if acme.SLO != "interactive" || acme.RatePerSec != 100 || acme.MaxStreams != 5 {
		t.Fatalf("acme record: %+v", acme)
	}

	_, stats := doJSON2(t, ts.URL+"/v1/stats")
	tenants, ok := stats["tenants"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing tenants block: %v", stats)
	}
	defStats, ok := tenants["default"].(map[string]any)
	if !ok || defStats["slo"] != "batch" {
		t.Fatalf("stats default tenant: %v", tenants)
	}

	if got := metricValue(t, ts.URL, `wcmd_tenant_streams{tenant="default",slo="batch"}`); got != "1" {
		t.Fatalf("wcmd_tenant_streams = %q", got)
	}
	if got := metricValue(t, ts.URL, `wcmd_tenant_admitted_total{tenant="acme",slo="interactive"}`); got != "0" {
		t.Fatalf("wcmd_tenant_admitted_total{acme} = %q", got)
	}
	if got := metricValue(t, ts.URL, `wcmd_tenant_request_latency_seconds_count{tenant="default",slo="batch"}`); got == "" || got == "0" {
		t.Fatalf("tenant latency histogram empty: %q", got)
	}
}

// doJSON2 fetches a URL and decodes the JSON object response.
func doJSON2(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	code, _, body := rawGet(t, url)
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return code, m
}

// TestTenantQueryParam covers the alloc-free ?tenant= scan and unknown
// tenants collapsing onto the default.
func TestTenantQueryParam(t *testing.T) {
	for raw, want := range map[string]string{
		"tenant=acme":         "acme",
		"b=2&tenant=x":        "x",
		"tenant=a&tenant=b":   "a",
		"b=2":                 "",
		"":                    "",
		"nottenant=1&b=2":     "",
		"tenant=":             "",
		"xtenant=zz&tenant=y": "y",
	} {
		if got := tenantQueryParam(raw); got != want {
			t.Errorf("tenantQueryParam(%q) = %q, want %q", raw, got, want)
		}
	}

	s, err := New(Config{Stream: streamCfg, Tenants: []qos.TenantConfig{
		{Name: "qp", RatePerSec: 1, Burst: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// The query param tags the request like the header does.
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/streams/qp/ingest?tenant=qp", `{"t":[100],"demand":[1]}`); code != http.StatusOK {
		t.Fatal("first tagged ingest rejected")
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/streams/qp/ingest?tenant=qp", `{"t":[200],"demand":[1]}`); code != http.StatusTooManyRequests {
		t.Fatal("second tagged ingest not throttled")
	}
	// An unknown tenant name shares the default budget, not qp's.
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/streams/qp/ingest?tenant=ghost", `{"t":[300],"demand":[1]}`); code != http.StatusOK {
		t.Fatal("unknown tenant throttled by qp's bucket")
	}
}
