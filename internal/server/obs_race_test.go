package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"testing"

	"wcm/internal/stream"
)

// TestObservabilityUnderConcurrency runs binary ingest writers, /metrics
// scrapers and /debug/self readers against one server at once — the
// lock-free histogram cells, the immutable endpoint map and the
// self-characterization stream all get hit from every side under -race.
// After the hammer quiesces, one final scrape must show every endpoint's
// histogram total exactly equal to its request counter, and the self
// stream must have absorbed every single request (timestamp clamping means
// racing completions are never dropped).
func TestObservabilityUnderConcurrency(t *testing.T) {
	const nWriters = 4
	s, err := New(Config{
		Stream:     stream.Config{Window: 64, MaxK: 8, ReextractEvery: 31},
		SelfCurves: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	serve := func(method, path, contentType string, body []byte) (int, []byte) {
		req, err := http.NewRequest(method, path, bytes.NewReader(body))
		if err != nil {
			panic(err)
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		rec := &memRecorder{header: make(http.Header)}
		h.ServeHTTP(rec, req)
		return rec.status, rec.body.Bytes()
	}

	const nBatches = 50
	var done atomic.Bool
	var writers, readers sync.WaitGroup
	errc := make(chan error, nWriters+4)

	// Writers: each owns a stream so timestamps stay monotone per stream.
	for wr := 0; wr < nWriters; wr++ {
		writers.Add(1)
		go func(wr int) {
			defer writers.Done()
			var now int64
			for b := 0; b < nBatches; b++ {
				ts := make([]int64, 8)
				dv := make([]int64, 8)
				for i := range ts {
					now += int64(1 + (b+i)%17)
					ts[i] = now
					dv[i] = int64((wr*31 + b*7 + i) % 200)
				}
				body := AppendBinaryBatch(nil, ts, dv)
				code, raw := serve("POST",
					fmt.Sprintf("/v1/streams/w%d/ingest", wr), ContentTypeBinary, body)
				if code != http.StatusOK {
					errc <- fmt.Errorf("writer %d batch %d: %d %s", wr, b, code, raw)
					return
				}
			}
		}(wr)
	}

	// Scrapers: the exposition must stay parseable while cells are updated.
	for sc := 0; sc < 2; sc++ {
		readers.Add(1)
		go func(sc int) {
			defer readers.Done()
			for !done.Load() {
				code, raw := serve("GET", "/metrics", "", nil)
				if code != http.StatusOK {
					errc <- fmt.Errorf("scraper %d: %d", sc, code)
					return
				}
				if !bytes.Contains(raw, []byte("wcmd_request_latency_seconds_bucket")) {
					errc <- fmt.Errorf("scraper %d: histogram family missing", sc)
					return
				}
			}
		}(sc)
	}

	// Self readers: curves of the service's own workload, mid-flight.
	for rd := 0; rd < 2; rd++ {
		readers.Add(1)
		go func(rd int) {
			defer readers.Done()
			for !done.Load() {
				code, raw := serve("GET", "/debug/self", "", nil)
				if code == http.StatusConflict {
					continue // nothing observed yet
				}
				if code != http.StatusOK {
					errc <- fmt.Errorf("self reader %d: %d %s", rd, code, raw)
					return
				}
				var sr selfResponse
				if err := json.Unmarshal(raw, &sr); err != nil {
					errc <- fmt.Errorf("self reader %d: bad body %s", rd, raw)
					return
				}
				for k := 1; k < len(sr.UpperUs); k++ {
					if sr.UpperUs[k] < sr.UpperUs[k-1] {
						errc <- fmt.Errorf("self reader %d: γᵘ not monotone: %v", rd, sr.UpperUs)
						return
					}
				}
			}
		}(rd)
	}

	writers.Wait()
	done.Store(true)
	readers.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Quiescent check: histogram totals equal request counters, for every
	// endpoint, in the same scrape.
	code, raw := serve("GET", "/metrics", "", nil)
	if code != http.StatusOK {
		t.Fatalf("final scrape: %d", code)
	}
	requests := make(map[string]uint64)
	histCounts := make(map[string]uint64)
	for _, line := range strings.Split(string(raw), "\n") {
		var ep string
		var v uint64
		if n, _ := fmt.Sscanf(line, "wcmd_requests_total{endpoint=%q} %d", &ep, &v); n == 2 {
			requests[ep] = v
		}
		if n, _ := fmt.Sscanf(line, "wcmd_request_latency_seconds_count{endpoint=%q} %d", &ep, &v); n == 2 {
			histCounts[ep] = v
		}
	}
	if requests["ingest"] != nWriters*nBatches {
		t.Fatalf("ingest requests = %d, want %d", requests["ingest"], nWriters*nBatches)
	}
	if len(requests) == 0 || len(requests) != len(histCounts) {
		t.Fatalf("parsed %d request counters, %d histogram counts", len(requests), len(histCounts))
	}
	var totalRequests uint64
	for ep, n := range requests {
		if histCounts[ep] != n {
			t.Fatalf("endpoint %s: requests %d != histogram count %d", ep, n, histCounts[ep])
		}
		totalRequests += n
	}

	// The self stream saw exactly one observation per handled request
	// (the final scrape above is still in flight, so it is excluded).
	code, raw = serve("GET", "/debug/self", "", nil)
	if code != http.StatusOK {
		t.Fatalf("final self: %d %s", code, raw)
	}
	var sr selfResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	// totalRequests counts everything observed before the final scrape;
	// the final scrape itself was observed after its counters were
	// rendered, so by the time /debug/self ran the stream had absorbed
	// totalRequests + 1 requests.
	if sr.Observed != totalRequests+1 {
		t.Fatalf("self observed %d requests, counters say %d+1", sr.Observed, totalRequests)
	}
}
