package server

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sync"
	"time"

	"wcm/internal/obs"
	"wcm/internal/obs/trace"
	"wcm/internal/ringbuf"
	"wcm/internal/stream"
	"wcm/internal/wal"
)

// The async ingest pipeline (Config.IngestRing > 0) restructures the ingest
// hot path so HTTP handlers only ENQUEUE: each registry shard owns an SPSC
// ring of ingest jobs and one dedicated worker goroutine that drains it,
// groups the drained jobs by stream, and applies each group through ONE
// stream.IngestBatches call — one stream-lock acquisition and one fused
// extrema scan for every request that arrived while the previous batch was
// being applied (cross-request coalescing). The handler parks on a 1-slot
// completion channel and then renders exactly what the synchronous path
// would have: per-job results come from IngestBatches, which reproduces
// sequential Ingest semantics batch for batch, so responses — status,
// counts, violation attribution, error text — are byte-identical (see
// TestAsyncIngestDifferential).
//
// Why this beats handlers calling Stream.Ingest directly under concurrency:
// with N handlers racing one stream, the mutex hands the stream state's
// cache lines from core to core on every batch, and each handoff pays the
// wakeup + cold-cache toll while later arrivals convoy. Here the stream is
// touched by ONE goroutine; concurrent arrivals meet only at the ring's
// producer mutex, held for two atomics (not the whole curve update), and
// their batches ride a single coalesced scan. Backpressure is explicit: a
// full ring sheds with 503 at the handler's deadline instead of growing an
// invisible mutex queue.
//
// Shutdown: Server.Close closes every ring (new pushes fail fast onto the
// synchronous fallback path) and waits for the workers to drain what was
// already enqueued — a handler that got TryPush to succeed WILL see its job
// completed, so no acknowledged-enqueued batch is ever lost (see
// TestShutdownDrainsInflight).

// DefaultCoalesceBudget caps how many queued jobs one worker wakeup drains
// and fuses. It bounds the latency a coalesced early arrival can absorb
// waiting for its group to apply, and the scratch the worker pins.
const DefaultCoalesceBudget = 64

// ingestJob carries one enqueued ingest request through a shard's ring.
// The ts/ds columns alias the handler's pooled decode scratch: the handler
// always blocks until done fires, so the worker's reads cannot race a
// scratch reuse. Jobs cycle through jobPool; done is allocated once per
// job and reused (capacity 1, always drained by the owning handler).
type ingestJob struct {
	e       *entry
	id      string
	created bool
	ts, ds  []int64

	// Request context carried across the async hop. scope is the
	// originating request's observability scope — worker-side log lines go
	// through it so they keep the request's trace_id/endpoint attribution.
	// tr/parent/enq stitch worker-side spans (queue wait, apply, WAL
	// append/fsync) into the request's trace under the handler's update
	// span; all nil/zero when the request is untraced. The handler always
	// parks on done until the worker finishes, so every worker-side use of
	// these fields happens-before the scope and trace are recycled.
	scope  *obs.Request
	tr     *trace.Active
	parent trace.SpanRef
	enq    time.Time

	res     stream.IngestResult
	err     error // stream rejection → 400 (same shape as the sync path)
	errCode int   // overrides the 400 for err: 409 (registry race), 500 (worker panic)

	done chan struct{}
}

// logger returns the originating request's logger (trace_id and endpoint
// attached) for worker-side log lines, falling back to the service logger
// for jobs that carried no scope.
func (j *ingestJob) logger(fallback *slog.Logger) *slog.Logger {
	if j.scope != nil {
		return j.scope.Logger()
	}
	return fallback
}

var jobPool = sync.Pool{New: func() any {
	return &ingestJob{done: make(chan struct{}, 1)}
}}

// ingestPipe is one registry shard's half of the pipeline: the SPSC ring,
// the producer-side mutex that lets any number of handlers act as the
// single producer (held for two atomics — this is the lock-handoff fix:
// contention moved off the stream mutex onto a critical section that does
// no stream work), and the 1-slot wake signal for the worker.
type ingestPipe struct {
	idx    int // shard index, = position in Server.pipes/shards/walShards
	ring   *ringbuf.SPSC[*ingestJob]
	pushMu sync.Mutex
	wake   chan struct{}

	// Worker-owned scratch, sized to the coalesce budget once.
	jobs    []*ingestJob
	group   []*ingestJob
	batches []stream.Batch
	results []stream.BatchResult

	// pending collects jobs whose WAL records await the wakeup-wide group
	// commit (fsync policy "batch"): applied and appended, not yet durable,
	// their handlers still parked. Worker-owned.
	pending []*ingestJob

	// recs is walLogGroup's reusable record scratch, so a group append
	// allocates nothing in steady state. Worker-owned.
	recs []wal.IngestRec
}

// startPipeline builds the per-shard pipes and spawns their workers.
// Called from New when cfg.IngestRing > 0.
func (s *Server) startPipeline(ringCap, budget int) error {
	s.pipes = make([]*ingestPipe, len(s.shards))
	for i := range s.pipes {
		ring, err := ringbuf.New[*ingestJob](ringCap)
		if err != nil {
			return fmt.Errorf("server: ingest ring: %w", err)
		}
		p := &ingestPipe{
			idx:     i,
			ring:    ring,
			wake:    make(chan struct{}, 1),
			jobs:    make([]*ingestJob, budget),
			group:   make([]*ingestJob, 0, budget),
			batches: make([]stream.Batch, 0, budget),
			results: make([]stream.BatchResult, budget),
			pending: make([]*ingestJob, 0, budget),
			recs:    make([]wal.IngestRec, 0, budget),
		}
		s.pipes[i] = p
		s.workers.Add(1)
		go s.ingestWorker(p)
	}
	return nil
}

// Close shuts the server's background machinery down: the async rings stop
// accepting work (handlers fall back to synchronous ingest) and workers
// drain and complete every job already acknowledged into a ring; then, with
// durability on, the checkpoint loop stops, a final checkpoint snapshots
// every stream, and the WAL closes with its clean-shutdown marker — so a
// restart replays (nearly) nothing. Safe to call multiple times and on
// servers with neither subsystem. The HTTP layer should stop accepting
// requests first (http.Server.Shutdown) — wcmd does — but even without
// that, post-Close ingests stay correct via the fallback (they answer 500
// once the WAL is closed, rather than acknowledging non-durable data).
func (s *Server) Close() {
	if !s.closing.CompareAndSwap(false, true) {
		return
	}
	if s.pipes != nil {
		for _, p := range s.pipes {
			p.ring.Close()
			select {
			case p.wake <- struct{}{}:
			default:
			}
		}
		s.workers.Wait()
	}
	if s.wal != nil {
		if s.ckStop != nil {
			close(s.ckStop)
			<-s.ckDone
		}
		s.checkpointAll()
		if err := s.wal.Close(); err != nil {
			s.logger.LogAttrs(context.Background(), slog.LevelError, "wal close failed",
				slog.String("error", err.Error()))
		}
	}
}

// enqueueIngest hands a job to the shard's worker and reports whether it
// was accepted. A full ring is retried with a growing sleep until the
// request deadline (mirroring stream.lockWithin's pacing); a closed ring
// or an exhausted deadline reports false and the caller falls back or
// sheds. On true, the caller MUST wait for job.done.
func (s *Server) enqueueIngest(p *ingestPipe, job *ingestJob, r *http.Request) (accepted, closed bool) {
	pause := 50 * time.Microsecond
	for {
		p.pushMu.Lock()
		ok := p.ring.TryPush(job)
		p.pushMu.Unlock()
		if ok {
			select {
			case p.wake <- struct{}{}:
			default: // worker already signaled
			}
			return true, false
		}
		if p.ring.Closed() {
			return false, true
		}
		// Ring full: the shard's worker is saturated. Sleep-poll toward the
		// request deadline; with no deadline configured, keep trying (the
		// worker always makes progress — its panics are recovered).
		if dl, ok := r.Context().Deadline(); ok {
			rem := time.Until(dl)
			if rem <= 0 {
				return false, false
			}
			if pause > rem {
				pause = rem
			}
		}
		time.Sleep(pause)
		if pause < 2*time.Millisecond {
			pause *= 2
		}
	}
}

// ingestWorker is one shard's dedicated consumer: drain up to the coalesce
// budget, group by stream, apply each group through one IngestBatches call,
// complete the jobs. Exits when the ring is closed and drained.
func (s *Server) ingestWorker(p *ingestPipe) {
	defer s.workers.Done()
	for {
		n := p.ring.PopBatch(p.jobs)
		if n == 0 {
			if p.ring.Closed() {
				if p.ring.Len() == 0 {
					return
				}
				continue // closed with a late push in flight: drain it
			}
			<-p.wake
			continue
		}
		s.metrics.coalesce.Observe(int64(n))
		jobs := p.jobs[:n]
		// One timestamp per drain, taken only when some job is traced —
		// untraced drains never touch the clock for tracing.
		var tPop time.Time
		for i := 0; i < n; i++ {
			if jobs[i] != nil && jobs[i].tr != nil {
				tPop = time.Now()
				break
			}
		}
		for i := 0; i < n; i++ {
			if jobs[i] == nil {
				continue
			}
			// Stable partition: collect every job for this stream in drain
			// order. Within a stream, arrival order is preserved; across
			// streams, reordering is invisible (different locks anyway).
			lead := jobs[i]
			p.group, p.batches = p.group[:0], p.batches[:0]
			for k := i; k < n; k++ {
				if jobs[k] != nil && jobs[k].e == lead.e {
					p.group = append(p.group, jobs[k])
					p.batches = append(p.batches, stream.Batch{Ts: jobs[k].ts, Demands: jobs[k].ds})
					jobs[k] = nil
				}
			}
			s.applyGroup(p, lead.e, p.group, p.batches, p.results[:len(p.group)], tPop)
		}
		// Wakeup-wide group commit (fsync policy "batch"): every group of
		// this drain is applied and appended; one fsync makes them all
		// durable before ANY of their handlers is released.
		if len(p.pending) > 0 {
			t0 := tPop
			if !t0.IsZero() {
				t0 = time.Now()
			}
			err := s.walShards[p.idx].Commit()
			if !t0.IsZero() {
				t1 := time.Now()
				for _, job := range p.pending {
					if job.tr != nil {
						job.tr.RecordAt("wal_fsync", job.parent, t0, t1)
					}
				}
			}
			if err != nil {
				s.failPending(p.pending, err)
			}
			for _, job := range p.pending {
				job.done <- struct{}{}
			}
			p.pending = p.pending[:0]
		}
	}
}

// applyGroup runs one stream's coalesced batches and completes their jobs:
// per-job registry fixups (the same dropIfEmpty/ensureRegistered dance the
// sync handler does), metrics, WAL logging, completion signal. A panic
// inside the stream update is caught here — job owners are parked on done
// and MUST be released — answered as 500s on every job of the group,
// mirroring the handler-side recovery barrier (nothing was appended to the
// WAL for a panicked group: the append comes after a successful apply).
//
// With durability on, successful jobs are appended to the shard's WAL
// before their handlers are released; whether this group fsyncs now or
// rides the wakeup-wide commit depends on the policy — "always" commits
// per group, "batch" defers the jobs onto p.pending for one commit per
// drain, "none" never waits for the disk.
func (s *Server) applyGroup(p *ingestPipe, e *entry, group []*ingestJob, batches []stream.Batch, results []stream.BatchResult, tPop time.Time) {
	// Worker-side trace spans: queue wait ends at the drain timestamp, the
	// apply span covers the fused IngestBatches call. Zero clock reads when
	// no job of the group is traced.
	traced := false
	for _, job := range group {
		if job.tr != nil {
			traced = true
			break
		}
	}
	var tApply time.Time
	if traced {
		tApply = time.Now()
		for _, job := range group {
			if job.tr != nil {
				job.tr.RecordAt("queue_wait", job.parent, job.enq, tPop)
			}
		}
	}
	panicked := func() (p any) {
		defer func() { p = recover() }()
		e.st.IngestBatches(batches, results)
		return nil
	}()
	if panicked != nil {
		s.metrics.panics.Add(1)
		// One Error line per affected request, through each request's own
		// logger, so every worker-side line carries the originating
		// trace_id — a grouped apply fails a whole coalesced group at once.
		stack := string(debug.Stack())
		for _, job := range group {
			job.logger(s.logger).LogAttrs(context.Background(), slog.LevelError, "ingest worker panic",
				slog.String("panic", fmt.Sprint(panicked)),
				slog.String("stack", stack))
			job.tr.Mark(trace.KeepPanic)
			job.err = fmt.Errorf("internal error applying ingest batch")
			job.errCode = http.StatusInternalServerError
			job.done <- struct{}{}
		}
		return
	}
	if traced {
		tApplied := time.Now()
		for _, job := range group {
			if job.tr != nil {
				job.tr.RecordAt("apply", job.parent, tApply, tApplied).
					Int("coalesced", int64(len(group)))
			}
		}
	}
	for gi, job := range group {
		job.res, job.err = results[gi].Res, results[gi].Err
		if job.err != nil {
			if job.created {
				s.dropIfEmpty(job.id, job.e)
			}
		} else {
			if err := s.ensureRegistered(job.id, job.e); err != nil {
				job.err, job.errCode = err, http.StatusConflict
			} else {
				s.metrics.samples.Add(uint64(job.res.Accepted))
				s.metrics.batches.Add(1)
				if job.res.Violation != nil {
					s.metrics.violatingBatches.Add(1)
				}
			}
		}
	}
	if s.wal == nil {
		for _, job := range group {
			job.done <- struct{}{}
		}
		return
	}
	s.walLogGroup(p, e, group, traced)
	switch s.wal.Policy() {
	case wal.PolicyAlways:
		var t0 time.Time
		if traced {
			t0 = time.Now()
		}
		err := s.walShards[p.idx].Commit()
		if traced {
			t1 := time.Now()
			for _, job := range group {
				if job.tr != nil && job.err == nil {
					job.tr.RecordAt("wal_fsync", job.parent, t0, t1)
				}
			}
		}
		if err != nil {
			s.failPending(group, err)
		}
		for _, job := range group {
			job.done <- struct{}{}
		}
	case wal.PolicyBatch:
		// Failed jobs have nothing awaiting durability; release them now.
		// Successful ones park until the wakeup-wide commit in ingestWorker.
		for _, job := range group {
			if job.err != nil {
				job.done <- struct{}{}
			} else {
				p.pending = append(p.pending, job)
			}
		}
	default: // wal.PolicyNone
		for _, job := range group {
			job.done <- struct{}{}
		}
	}
}

// ingestAsync is handleIngest's enqueue-and-wait tail: everything after
// decode when the pipeline is on. It writes the full response — the same
// bytes the synchronous tail would have produced — and reports true.
// Returns false (nothing written) only when the pipeline could not take the
// job (closed ring — shutdown race): the caller then runs the synchronous
// path. tDecoded closes the decode stage span, as in the sync tail; the
// update span here covers enqueue + queue wait + coalesced apply, which is
// exactly the time the stream update takes from this request's view.
func (s *Server) ingestAsync(w http.ResponseWriter, r *http.Request, sc *ingestScratch, tDecoded time.Time, id string, e *entry, created bool, ts, ds []int64) bool {
	job := jobPool.Get().(*ingestJob)
	job.e, job.id, job.created = e, id, created
	job.ts, job.ds = ts, ds
	job.res, job.err, job.errCode = stream.IngestResult{}, nil, 0
	// Hand the request's observability scope and span context across the
	// hop. The update span opens here and closes when the handler resumes,
	// so it brackets the worker-side queue_wait/apply/WAL children.
	job.scope = obs.FromContext(r.Context())
	tr := obs.TraceFrom(r.Context())
	var upd trace.SpanRef
	if tr != nil {
		upd = tr.StartAt("update", tr.Root(), tDecoded)
		job.tr, job.parent, job.enq = tr, upd, tDecoded
	}

	p := s.pipes[s.shardIndex(id)]
	accepted, ringClosed := s.enqueueIngest(p, job, r)
	if !accepted {
		job.e, job.ts, job.ds = nil, nil, nil
		job.scope, job.tr, job.parent = nil, nil, trace.SpanRef{}
		jobPool.Put(job)
		if ringClosed {
			return false // shutting down: caller ingests synchronously
		}
		upd.EndAt(time.Now())
		if created {
			s.dropIfEmpty(id, e)
		}
		// Hint proportional to the backlog still queued: a ring that is
		// still full after the deadline's worth of retries earns a longer
		// backoff than one that drained while we waited.
		writeBusy(w, "ingest queue full past request deadline",
			retryAfterFloorSeconds+p.ring.Len()/p.ring.Cap())
		return true
	}
	<-job.done // unconditional: the worker reads buffers this handler owns

	res, err, code := job.res, job.err, job.errCode
	job.e, job.ts, job.ds = nil, nil, nil
	job.scope, job.tr, job.parent = nil, nil, trace.SpanRef{}
	jobPool.Put(job)

	tUpdated := time.Now()
	s.stUpdate.Observe(tUpdated.Sub(tDecoded))
	upd.EndAt(tUpdated)
	if err != nil {
		if code == 0 {
			code = http.StatusBadRequest
		}
		writeJSON(w, code, errorResponse{err.Error()})
		return true
	}
	// Metrics were counted by the worker; only rendering remains.
	if res.Violation != nil {
		writeJSON(w, http.StatusOK, ingestResponse{
			Accepted:   res.Accepted,
			Total:      res.Total,
			Violation:  violationFrom(res.Violation),
			Violations: res.Violations,
			Drift:      res.Drift,
		})
		s.observeRender(tr, tUpdated)
		return true
	}
	sc.out = appendIngestResponse(sc.out[:0], res)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(sc.out) //nolint:errcheck // client gone; nothing to do
	s.observeRender(tr, tUpdated)
	return true
}

// observeRender closes the ingest render stage span and, on a traced
// request, records it as a span too.
func (s *Server) observeRender(tr *trace.Active, tUpdated time.Time) {
	end := time.Now()
	s.stRender.Observe(end.Sub(tUpdated))
	if tr != nil {
		tr.RecordAt("render", tr.Root(), tUpdated, end)
	}
}

// asyncDepths samples every shard ring's occupancy at scrape time — the
// per-shard queue-depth gauge. Returns nil when the pipeline is off.
func (s *Server) asyncDepths() []int {
	if s.pipes == nil {
		return nil
	}
	depths := make([]int, len(s.pipes))
	for i, p := range s.pipes {
		depths[i] = p.ring.Len()
	}
	return depths
}
