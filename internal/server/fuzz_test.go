package server

import (
	"bytes"
	"testing"
)

// FuzzBinaryIngest throws arbitrary bytes at the binary batch decoder. It
// must never panic, and anything it accepts must round-trip through the
// encoder to the identical bytes (the format has exactly one encoding per
// batch — no trailing slack, no alternative count).
func FuzzBinaryIngest(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})
	f.Add(AppendBinaryBatch(nil, []int64{0, 100}, []int64{5, 7}))
	f.Add(AppendBinaryBatch(nil, []int64{-1}, []int64{1 << 62}))
	f.Add(append(AppendBinaryBatch(nil, []int64{1}, []int64{2}), 0xff))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		ts, ds, err := decodeBinaryBatch(data, nil, nil)
		if err != nil {
			return
		}
		if len(ts) == 0 || len(ts) != len(ds) {
			t.Fatalf("accepted structurally invalid batch: t=%d d=%d", len(ts), len(ds))
		}
		if enc := AppendBinaryBatch(nil, ts, ds); !bytes.Equal(enc, data) {
			t.Fatalf("round trip changed bytes: %x → %x", data, enc)
		}
	})
}

// FuzzIngest throws arbitrary bytes at the ingest batch decoder. The decoder
// must never panic, and anything it accepts must be structurally sound (the
// invariants the handler relies on before touching stream state).
func FuzzIngest(f *testing.F) {
	f.Add([]byte(`{"t":[0,100,200],"demand":[5,7,6]}`))
	f.Add([]byte(`{"t":[],"demand":[]}`))
	f.Add([]byte(`{"t":[1],"demand":[1,2]}`))
	f.Add([]byte(`{"t":[9223372036854775807],"demand":[-1]}`))
	f.Add([]byte(`{"t":[1],"demand":[1],"unknown":true}`))
	f.Add([]byte(`{"t":[1],"demand":[1]}{"t":[2],"demand":[2]}`))
	f.Add([]byte(`nonsense`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("{\"t\":[1e999],\"demand\":[0]}"))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeIngest(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(req.T) == 0 || len(req.T) != len(req.Demand) {
			t.Fatalf("accepted structurally invalid batch: t=%d demand=%d from %q",
				len(req.T), len(req.Demand), data)
		}
	})
}
