package server

import (
	"bytes"
	"testing"
)

// FuzzIngest throws arbitrary bytes at the ingest batch decoder. The decoder
// must never panic, and anything it accepts must be structurally sound (the
// invariants the handler relies on before touching stream state).
func FuzzIngest(f *testing.F) {
	f.Add([]byte(`{"t":[0,100,200],"demand":[5,7,6]}`))
	f.Add([]byte(`{"t":[],"demand":[]}`))
	f.Add([]byte(`{"t":[1],"demand":[1,2]}`))
	f.Add([]byte(`{"t":[9223372036854775807],"demand":[-1]}`))
	f.Add([]byte(`{"t":[1],"demand":[1],"unknown":true}`))
	f.Add([]byte(`{"t":[1],"demand":[1]}{"t":[2],"demand":[2]}`))
	f.Add([]byte(`nonsense`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("{\"t\":[1e999],\"demand\":[0]}"))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeIngest(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(req.T) == 0 || len(req.T) != len(req.Demand) {
			t.Fatalf("accepted structurally invalid batch: t=%d demand=%d from %q",
				len(req.T), len(req.Demand), data)
		}
	})
}
