package server

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"testing"

	"wcm/internal/stream"
)

func TestBinaryBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		ts := make([]int64, n)
		ds := make([]int64, n)
		for i := range ts {
			ts[i] = rng.Int63() - rng.Int63()
			ds[i] = rng.Int63() - rng.Int63()
		}
		enc := AppendBinaryBatch(nil, ts, ds)
		if len(enc) != binaryHeaderLen+binarySampleLen*n {
			t.Fatalf("n=%d: encoded %d bytes", n, len(enc))
		}
		gotT, gotD, err := decodeBinaryBatch(enc, nil, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range ts {
			if gotT[i] != ts[i] || gotD[i] != ds[i] {
				t.Fatalf("n=%d i=%d: (%d,%d) want (%d,%d)", n, i, gotT[i], gotD[i], ts[i], ds[i])
			}
		}
	}
}

func TestBinaryBatchDecodeErrors(t *testing.T) {
	valid := AppendBinaryBatch(nil, []int64{1, 2}, []int64{3, 4})
	cases := map[string][]byte{
		"empty":        {},
		"short header": {1, 0},
		"zero count":   binary.LittleEndian.AppendUint32(nil, 0),
		"truncated":    valid[:len(valid)-1],
		"trailing":     append(append([]byte{}, valid...), 0),
		"count beyond": binary.LittleEndian.AppendUint32(nil, 1<<30),
	}
	for name, body := range cases {
		if _, _, err := decodeBinaryBatch(body, nil, nil); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

// TestBinaryIngestHTTP ingests the same trace once through JSON and once
// through the binary format into two streams of one server, and requires
// byte-identical /curves bodies — the binary path must be a pure encoding
// change.
func TestBinaryIngestHTTP(t *testing.T) {
	ts := newTestServer(t, Config{Stream: stream.Config{Window: 64, MaxK: 16}})
	rng := rand.New(rand.NewSource(7))
	var now int64
	tsv := make([]int64, 100)
	dv := make([]int64, 100)
	for i := range tsv {
		now += int64(rng.Intn(50))
		tsv[i] = now
		dv[i] = int64(rng.Intn(1000))
	}

	for lo := 0; lo < len(tsv); lo += 25 {
		hi := lo + 25
		body := AppendBinaryBatch(nil, tsv[lo:hi], dv[lo:hi])
		resp, err := http.Post(ts.URL+"/v1/streams/bin/ingest", ContentTypeBinary, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("binary ingest [%d:%d]: %d %s", lo, hi, resp.StatusCode, raw)
		}

		jbody := fmt.Sprintf(`{"t":%s,"demand":%s}`, jsonInts(tsv[lo:hi]), jsonInts(dv[lo:hi]))
		code, m := doJSON(t, "POST", ts.URL+"/v1/streams/json/ingest", jbody)
		if code != http.StatusOK {
			t.Fatalf("json ingest [%d:%d]: %d %v", lo, hi, code, m)
		}
	}

	binCurves := getBody(t, ts.URL+"/v1/streams/bin/curves")
	jsonCurves := getBody(t, ts.URL+"/v1/streams/json/curves")
	if !bytes.Equal(binCurves, jsonCurves) {
		t.Fatalf("curves diverge:\nbinary: %s\njson:   %s", binCurves, jsonCurves)
	}

	// The binary batch counter saw exactly the binary batches.
	metricsText := string(getBody(t, ts.URL+"/metrics"))
	if want := "wcmd_ingest_binary_batches_total 4"; !bytes.Contains([]byte(metricsText), []byte(want)) {
		t.Fatalf("metrics missing %q:\n%s", want, metricsText)
	}
}

func TestBinaryIngestHTTPErrors(t *testing.T) {
	ts := newTestServer(t, Config{Stream: stream.Config{Window: 16, MaxK: 4}})
	// Structurally broken body → 400, and no ghost stream appears.
	resp, err := http.Post(ts.URL+"/v1/streams/g/ingest", ContentTypeBinary, bytes.NewReader([]byte{9, 9}))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("broken binary body: %d", resp.StatusCode)
	}
	// Valid encoding, invalid samples (negative demand) → 400 from the stream.
	bad := AppendBinaryBatch(nil, []int64{1}, []int64{-5})
	resp, err = http.Post(ts.URL+"/v1/streams/g/ingest", ContentTypeBinary, bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative demand: %d", resp.StatusCode)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/streams/g/verdict", ""); code != http.StatusNotFound {
		t.Fatalf("stream created by rejected binary ingest: %d", code)
	}
}

func jsonInts(vs []int64) string {
	var b bytes.Buffer
	b.WriteByte('[')
	for i, v := range vs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte(']')
	return b.String()
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, raw)
	}
	return raw
}
