package server

import (
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"unicode/utf8"

	"wcm/internal/stream"
	"wcm/internal/wirefmt"
)

// Response rendering for the cached query path. Misses render into pooled
// scratch buffers and copy into an exact-size cached body — two allocations
// per miss (body + cachedResp), zero per hit — instead of the json.Marshal
// reflection walk and its garbage. The hand-rolled JSON renderers are
// byte-for-byte identical to renderJSON (encoding/json field order, float
// formatting, trailing newline); TestRenderersMatchEncodingJSON holds them
// to that.

// renderPool recycles render scratch buffers across misses.
var renderPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 1024)
	return &b
}}

// finishResp copies the rendered bytes in b into an exact-size cached body
// and returns buf's backing array to the pool. b must be the (possibly
// grown) slice that started as (*buf)[:0].
func finishResp(status int, buf *[]byte, b []byte, version int64, binary bool) *cachedResp {
	body := make([]byte, len(b))
	copy(body, b)
	*buf = b[:0]
	renderPool.Put(buf)
	return &cachedResp{status: status, body: body, version: version, binary: binary}
}

// jsonFloatOK reports whether encoding/json could encode f at all; NaN and
// ±Inf make json.Marshal fail, which renderJSON maps to a 500 — callers
// fall back to it so that (unreachable in practice) behavior is preserved.
func jsonFloatOK(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// appendJSONFloat appends f exactly as encoding/json renders a float64:
// shortest round-trip form, 'f' format unless the magnitude calls for
// exponent form, with Go's two-digit exponent padding stripped back to
// JSON's ("e-09" → "e-9"). f must satisfy jsonFloatOK.
func appendJSONFloat(dst []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// appendJSONInt64s appends a []int64 as encoding/json does: null for a nil
// slice, [] for an empty one.
func appendJSONInt64s(dst []byte, vs []int64) []byte {
	if vs == nil {
		return append(dst, "null"...)
	}
	dst = append(dst, '[')
	for i, v := range vs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, v, 10)
	}
	return append(dst, ']')
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as an encoding/json string literal, including
// the HTML-safe escaping of <, > and & that json.Marshal applies by
// default, U+FFFD replacement of invalid UTF-8, and the U+2028/U+2029
// escapes.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// ---- response renderers ----------------------------------------------------

// renderCurvesResp renders a /curves answer from snap in the requested
// format into a pooled buffer.
func renderCurvesResp(snap stream.Snapshot, binary bool) *cachedResp {
	buf := renderPool.Get().(*[]byte)
	b := (*buf)[:0]
	upper := snap.Workload.Upper.Values()
	lower := snap.Workload.Lower.Values()
	if binary {
		b = wirefmt.AppendCurves(b, wirefmt.Curves{
			Version:  snap.Version,
			Total:    snap.Total,
			InWindow: snap.InWindow,
			Upper:    upper,
			Lower:    lower,
			DMin:     snap.Spans,
			DMax:     snap.MaxSpans,
		})
		return finishResp(http.StatusOK, buf, b, snap.Version, true)
	}
	b = append(b, `{"version":`...)
	b = strconv.AppendInt(b, snap.Version, 10)
	b = append(b, `,"total":`...)
	b = strconv.AppendInt(b, snap.Total, 10)
	b = append(b, `,"in_window":`...)
	b = strconv.AppendInt(b, int64(snap.InWindow), 10)
	b = append(b, `,"upper":`...)
	b = appendJSONInt64s(b, upper)
	b = append(b, `,"lower":`...)
	b = appendJSONInt64s(b, lower)
	b = append(b, `,"dmin":`...)
	b = appendJSONInt64s(b, snap.Spans)
	b = append(b, `,"dmax":`...)
	b = appendJSONInt64s(b, snap.MaxSpans)
	b = append(b, '}', '\n')
	return finishResp(http.StatusOK, buf, b, snap.Version, false)
}

// renderCheckResp renders a /check answer in the requested format.
func renderCheckResp(version int64, ok, binary bool) *cachedResp {
	buf := renderPool.Get().(*[]byte)
	b := (*buf)[:0]
	if binary {
		b = wirefmt.AppendCheck(b, version, ok)
		return finishResp(http.StatusOK, buf, b, version, true)
	}
	b = append(b, `{"version":`...)
	b = strconv.AppendInt(b, version, 10)
	if ok {
		b = append(b, `,"ok":true}`...)
	} else {
		b = append(b, `,"ok":false}`...)
	}
	b = append(b, '\n')
	return finishResp(http.StatusOK, buf, b, version, false)
}

// renderMinFreqResp renders a /minfreq answer in the requested format.
// Non-finite floats (unreachable for real curve data) fall back to
// renderJSON so the behavior matches encoding/json exactly.
func renderMinFreqResp(m minFreqResponse, binary bool) *cachedResp {
	if binary {
		buf := renderPool.Get().(*[]byte)
		b := wirefmt.AppendMinFreq((*buf)[:0], wirefmt.MinFreq{
			Version:       m.Version,
			GammaHz:       m.GammaHz,
			GammaAtK:      m.GammaAtK,
			GammaAtSpanNs: m.GammaAtSpanNs,
			WCETHz:        m.WCETHz,
			WCETAtK:       m.WCETAtK,
			Saving:        m.Saving,
			Buffer:        m.Buffer,
		})
		return finishResp(http.StatusOK, buf, b, m.Version, true)
	}
	if !jsonFloatOK(m.GammaHz) || !jsonFloatOK(m.WCETHz) || !jsonFloatOK(m.Saving) {
		resp := renderJSON(http.StatusOK, m)
		resp.version = m.Version
		return resp
	}
	buf := renderPool.Get().(*[]byte)
	b := (*buf)[:0]
	b = append(b, `{"version":`...)
	b = strconv.AppendInt(b, m.Version, 10)
	b = append(b, `,"gamma_hz":`...)
	b = appendJSONFloat(b, m.GammaHz)
	b = append(b, `,"gamma_at_k":`...)
	b = strconv.AppendInt(b, int64(m.GammaAtK), 10)
	b = append(b, `,"gamma_at_span_ns":`...)
	b = strconv.AppendInt(b, m.GammaAtSpanNs, 10)
	b = append(b, `,"wcet_hz":`...)
	b = appendJSONFloat(b, m.WCETHz)
	b = append(b, `,"wcet_at_k":`...)
	b = strconv.AppendInt(b, int64(m.WCETAtK), 10)
	b = append(b, `,"saving":`...)
	b = appendJSONFloat(b, m.Saving)
	b = append(b, `,"buffer":`...)
	b = strconv.AppendInt(b, int64(m.Buffer), 10)
	b = append(b, '}', '\n')
	return finishResp(http.StatusOK, buf, b, m.Version, false)
}

// ---- fast request parsing --------------------------------------------------

// queryScratch holds the pooled per-request buffers of the query read path.
type queryScratch struct {
	body []byte
	// req lives here so taking its address (the decodeJSON fallback needs
	// one) never forces a fresh heap escape on the hit path.
	req checkRequest
}

var queryScratchPool = sync.Pool{New: func() any {
	return &queryScratch{body: make([]byte, 0, 256)}
}}

func isJSONSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

// parseCheckBody parses the common shape of a /check body —
// {"freq_hz":N,"latency_ns":N,"buffer":N}, any field order, integer values
// only — without an encoding/json Decoder or any allocation. It accepts a
// strict subset of what decodeJSON accepts (integer mantissas up to 2^53,
// which convert to float64 exactly); anything else — floats with a point or
// exponent, unknown fields, malformed bytes — returns false and the caller
// falls back to decodeJSON, preserving its exact semantics and error text.
func parseCheckBody(b []byte, req *checkRequest) bool {
	i, n := 0, len(b)
	skip := func() {
		for i < n && isJSONSpace(b[i]) {
			i++
		}
	}
	skip()
	if i >= n || b[i] != '{' {
		return false
	}
	i++
	skip()
	if i < n && b[i] == '}' {
		i++
	} else {
		for {
			// "key":
			if i >= n || b[i] != '"' {
				return false
			}
			start := i + 1
			i = start
			for i < n && b[i] != '"' {
				if b[i] == '\\' {
					return false
				}
				i++
			}
			if i >= n {
				return false
			}
			key := b[start:i]
			i++
			skip()
			if i >= n || b[i] != ':' {
				return false
			}
			i++
			skip()
			// integer value
			neg := false
			if i < n && b[i] == '-' {
				neg = true
				i++
			}
			vs := i
			var v int64
			for i < n && b[i] >= '0' && b[i] <= '9' {
				v = v*10 + int64(b[i]-'0')
				if v > 1<<53 {
					return false
				}
				i++
			}
			if i == vs {
				return false
			}
			// Reject leading zeros ("01") and anything that continues the
			// number ('.', 'e', 'E') — the strict decoder must judge those.
			if i-vs > 1 && b[vs] == '0' {
				return false
			}
			if i < n && (b[i] == '.' || b[i] == 'e' || b[i] == 'E') {
				return false
			}
			if neg {
				v = -v
			}
			switch string(key) { // compiles to an allocation-free comparison
			case "freq_hz":
				req.FreqHz = float64(v)
			case "latency_ns":
				req.LatencyNs = v
			case "buffer":
				req.Buffer = int(v)
			default:
				return false
			}
			skip()
			if i < n && b[i] == ',' {
				i++
				skip()
				continue
			}
			if i < n && b[i] == '}' {
				i++
				break
			}
			return false
		}
	}
	skip()
	return i == n
}

// decodeCheckRequest reads and parses a /check body through the pooled fast
// path, falling back to the strict JSON decoder for anything unusual.
func decodeCheckRequest(r *http.Request, sc *queryScratch, req *checkRequest) error {
	var err error
	sc.body, err = readBody(r.Body, sc.body[:0])
	if err != nil {
		return err
	}
	if parseCheckBody(sc.body, req) {
		return nil
	}
	*req = checkRequest{}
	return decodeJSON(bytesReader(sc.body), req)
}

// minfreqB extracts the ?b= query parameter (default 1). ok=false means the
// value is invalid and the caller must answer 400. The common "b=N" form is
// parsed in place; anything more elaborate (multiple params, escapes) goes
// through net/url.
func minfreqB(r *http.Request) (b int, ok bool) {
	q := r.URL.RawQuery
	if q == "" {
		return 1, true
	}
	if len(q) > 2 && q[0] == 'b' && q[1] == '=' {
		v := 0
		fast := true
		for i := 2; i < len(q); i++ {
			c := q[i]
			if c < '0' || c > '9' || v > 1<<31 {
				fast = false
				break
			}
			v = v*10 + int(c-'0')
		}
		if fast {
			return v, true
		}
	}
	qs := r.URL.Query().Get("b")
	if qs == "" {
		return 1, true
	}
	v, err := strconv.Atoi(qs)
	if err != nil || v < 0 {
		return 0, false
	}
	return v, true
}

// acceptsBinary reports whether the request negotiated the binary query
// response encoding. Exact match covers governor-style pollers; the
// Contains fallback tolerates composite Accept values without allocating.
func acceptsBinary(r *http.Request) bool {
	a := r.Header.Get("Accept")
	if a == "" {
		return false
	}
	return a == ContentTypeQueryBinary || strings.Contains(a, ContentTypeQueryBinary)
}

// setHeaderValue is Header().Set without the per-call []string allocation
// when the map already holds a single-value slice for key (reused response
// recorders in benchmarks and tests). key must already be in canonical
// form. On a fresh header map it allocates exactly what Set would.
func setHeaderValue(h http.Header, key, value string) {
	if vs, ok := h[key]; ok && len(vs) == 1 {
		vs[0] = value
		return
	}
	h[key] = []string{value}
}
