package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"wcm/internal/stream"
)

// postRaw sends body with contentType and returns status + exact body.
func postRaw(t *testing.T, url, contentType string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// wantJSONError asserts the canonical error shape: a JSON object whose
// only key is a non-empty "error" string.
func wantJSONError(t *testing.T, label string, raw []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("%s: non-JSON error body %q", label, raw)
	}
	msg, ok := m["error"].(string)
	if !ok || msg == "" || len(m) != 1 {
		t.Fatalf("%s: error shape %q", label, raw)
	}
	return msg
}

// TestContractErrorPaths pins the /contract failure surface: decode
// failures, invalid curves, invalid windows — each a 400 with the JSON
// error shape, none leaving a ghost stream, all counted as errors.
func TestContractErrorPaths(t *testing.T) {
	s, err := New(Config{Stream: stream.Config{Window: 16, MaxK: 4}})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServerFrom(t, s)

	cases := []struct {
		label, body string
	}{
		{"malformed JSON", `{nope`},
		{"unknown field", `{"upper":[0,1],"lower":[0,0],"bogus":1}`},
		{"trailing data", `{"upper":[0,1],"lower":[0,0]} x`},
		{"non-monotone upper", `{"upper":[5,1],"lower":[0,0]}`},
		{"non-monotone lower", `{"upper":[0,9],"lower":[4,1]}`},
		{"negative window", `{"upper":[0,1],"lower":[0,0],"window":-3}`},
	}
	for _, tc := range cases {
		code, raw := postRaw(t, ts.URL+"/v1/streams/c/contract", "application/json", []byte(tc.body))
		if code != http.StatusBadRequest {
			t.Fatalf("%s: %d %s", tc.label, code, raw)
		}
		wantJSONError(t, tc.label, raw)
	}
	// None of the rejections registered a stream.
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/streams/c/verdict", ""); code != http.StatusNotFound {
		t.Fatalf("ghost stream after rejected contracts: %d", code)
	}
	if got := metricValue(t, ts.URL, `wcmd_request_errors_total{endpoint="contract"}`); got != strconv.Itoa(len(cases)) {
		t.Fatalf(`request_errors_total{contract} = %q, want %d`, got, len(cases))
	}
}

// TestDeleteErrorPaths pins /delete semantics: 404 JSON error on unknown
// or already-deleted streams, 204 on success, and a clean slate afterwards
// (recreate works, analyses on the new stream see none of the old state).
func TestDeleteErrorPaths(t *testing.T) {
	s, err := New(Config{Stream: stream.Config{Window: 16, MaxK: 4}})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServerFrom(t, s)

	del := func() (int, []byte) {
		t.Helper()
		req, err := http.NewRequest("DELETE", ts.URL+"/v1/streams/dd", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, raw
	}

	code, raw := del()
	if code != http.StatusNotFound {
		t.Fatalf("delete unknown: %d", code)
	}
	wantJSONError(t, "delete unknown", raw)

	if code, _ := doJSON(t, "POST", ts.URL+"/v1/streams/dd/ingest", `{"t":[0,100],"demand":[9,9]}`); code != http.StatusOK {
		t.Fatal("seed ingest")
	}
	if code, raw := del(); code != http.StatusNoContent || len(raw) != 0 {
		t.Fatalf("delete live: %d %q", code, raw)
	}
	// Second delete: the stream is gone, so 404 again — DELETE is not
	// idempotent-silent here; the client learns the name is free.
	code, raw = del()
	if code != http.StatusNotFound {
		t.Fatalf("delete deleted: %d", code)
	}
	wantJSONError(t, "delete deleted", raw)

	// The name is reusable and the new stream starts from nothing.
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/streams/dd/ingest", `{"t":[0],"demand":[1]}`); code != http.StatusOK {
		t.Fatal("re-ingest after delete")
	}
	code, m := doJSON(t, "GET", ts.URL+"/v1/streams/dd/verdict", "")
	if code != http.StatusOK || m["total"].(float64) != 1 {
		t.Fatalf("recreated stream total = %v", m["total"])
	}
}

// TestBinaryIngestDecodeErrorPaths drives the binary decode failure modes
// end to end — truncated column, count/length mismatch, oversize body —
// asserting status codes, the JSON error shape, and that the error and
// batch counters move correctly (rejected bodies are not counted as binary
// batches).
func TestBinaryIngestDecodeErrorPaths(t *testing.T) {
	s, err := New(Config{MaxBodyBytes: 256, Stream: stream.Config{Window: 64, MaxK: 8}})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServerFrom(t, s)
	url := ts.URL + "/v1/streams/be/ingest"

	valid := AppendBinaryBatch(nil, []int64{1, 2, 3}, []int64{4, 5, 6})

	// Truncated mid-column: the demand column loses its last 8 bytes.
	code, raw := postRaw(t, url, ContentTypeBinary, valid[:len(valid)-8])
	if code != http.StatusBadRequest {
		t.Fatalf("truncated column: %d %s", code, raw)
	}
	wantJSONError(t, "truncated column", raw)

	// Count prefix promises more samples than the body carries.
	mismatched := append([]byte{}, valid...)
	binary.LittleEndian.PutUint32(mismatched[:4], 4)
	code, raw = postRaw(t, url, ContentTypeBinary, mismatched)
	if code != http.StatusBadRequest {
		t.Fatalf("count mismatch: %d %s", code, raw)
	}
	msg := wantJSONError(t, "count mismatch", raw)
	if want := fmt.Sprintf("count %d", 4); !bytes.Contains([]byte(msg), []byte(want)) {
		t.Fatalf("count mismatch message %q", msg)
	}

	// Body over MaxBodyBytes: 413, not 400 — the client should shrink its
	// batches, not re-encode them.
	nBig := 20 // 4+16·20 = 324 > 256
	big := AppendBinaryBatch(nil, make([]int64, nBig), make([]int64, nBig))
	for i := range nBig {
		binary.LittleEndian.PutUint64(big[4+8*i:], uint64(i))
	}
	code, raw = postRaw(t, url, ContentTypeBinary, big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body: %d %s", code, raw)
	}
	wantJSONError(t, "oversize body", raw)

	// No ghost stream, three counted errors, zero accepted binary batches.
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/streams/be/verdict", ""); code != http.StatusNotFound {
		t.Fatalf("ghost stream after rejected binary ingests: %d", code)
	}
	if got := metricValue(t, ts.URL, `wcmd_request_errors_total{endpoint="ingest"}`); got != "3" {
		t.Fatalf(`request_errors_total{ingest} = %q, want 3`, got)
	}
	if got := metricValue(t, ts.URL, "wcmd_ingest_binary_batches_total"); got != "0" {
		t.Fatalf("binary_batches_total = %q, want 0", got)
	}

	// A valid batch still lands after the rejections.
	code, raw = postRaw(t, url, ContentTypeBinary, valid)
	if code != http.StatusOK {
		t.Fatalf("valid batch after rejections: %d %s", code, raw)
	}
	if got := metricValue(t, ts.URL, "wcmd_ingest_binary_batches_total"); got != "1" {
		t.Fatalf("binary_batches_total = %q, want 1", got)
	}
}

// newTestServerFrom wraps an already-built *Server in an httptest.Server
// (newTestServer hides the *Server; these tests also poke its internals).
func newTestServerFrom(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}
