package server

import (
	"net/http"
	"strconv"
	"time"

	"wcm/internal/obs/trace"
)

// /debug/traces — the serving side of the tracing subsystem. Both
// endpoints are classNone (never shed, like healthz/metrics: the trace
// store exists to diagnose overload) and excluded from the self-curves
// feed (see instrument). Rendering walks an immutable snapshot of the
// store — finished traces never mutate — so scrapes run lock-free against
// live traffic.

// traceGauges carries the scrape-time tracing readings into the metrics
// writer; nil when tracing is off.
type traceGauges struct {
	kept, dropped, sampled uint64
	evicted, truncated     uint64
	storeBytes, storeLimit int64
}

func (s *Server) traceGaugesNow() *traceGauges {
	if s.tracer == nil {
		return nil
	}
	return &traceGauges{
		kept:       s.tracer.Kept(),
		dropped:    s.tracer.Dropped(),
		sampled:    s.tracer.Sampled(),
		evicted:    s.tracer.Evicted(),
		truncated:  s.tracer.TruncatedSpans(),
		storeBytes: s.tracer.StoreBytes(),
		storeLimit: s.tracer.StoreLimit(),
	}
}

// traceSummaryJSON is one /debug/traces index row.
type traceSummaryJSON struct {
	ID          string  `json:"id"`       // X-Request-Id
	TraceID     string  `json:"trace_id"` // W3C 32-hex trace-id
	Endpoint    string  `json:"endpoint"`
	Status      int     `json:"status"`
	Kept        string  `json:"kept"` // why retention kept it ("slow,error", ...)
	StartUnixNs int64   `json:"start_unix_ns"`
	DurationUs  float64 `json:"duration_us"`
	Spans       int     `json:"spans"`
}

type tracesResponse struct {
	Count  int                `json:"count"`
	Traces []traceSummaryJSON `json:"traces"`
}

// spanJSON is one node of the rendered span tree.
type spanJSON struct {
	Name       string         `json:"name"`
	ID         int32          `json:"id"`
	StartUs    float64        `json:"start_us"` // offset from trace start
	DurationUs float64        `json:"duration_us"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*spanJSON    `json:"children,omitempty"`
}

type traceResponse struct {
	ID           string    `json:"id"`
	TraceID      string    `json:"trace_id"`
	Traceparent  string    `json:"traceparent"`
	RemoteParent bool      `json:"remote_parent"` // trace-id accepted from the caller
	Endpoint     string    `json:"endpoint"`
	Status       int       `json:"status"`
	Kept         string    `json:"kept"`
	StartUnixNs  int64     `json:"start_unix_ns"`
	DurationUs   float64   `json:"duration_us"`
	DroppedSpans int       `json:"dropped_spans,omitempty"`
	Root         *spanJSON `json:"root"`
}

func durUs(ns int64) float64 { return float64(ns) / 1e3 }

// spanTree links the trace's flat span slab into a tree. Spans whose
// parent was never recorded (slab overflow truncated it) hang off the
// root rather than vanish.
func spanTree(spans []trace.Span) *spanJSON {
	nodes := make([]*spanJSON, len(spans))
	for i := range spans {
		sp := &spans[i]
		n := &spanJSON{
			Name:       sp.Name,
			ID:         sp.ID,
			StartUs:    durUs(sp.StartNs),
			DurationUs: durUs(sp.DurNs),
		}
		if sp.NAttr > 0 {
			n.Attrs = make(map[string]any, sp.NAttr)
			for a := int32(0); a < sp.NAttr; a++ {
				at := &sp.Attrs[a]
				if at.IsStr {
					n.Attrs[at.Key] = at.Str
				} else {
					n.Attrs[at.Key] = at.Int
				}
			}
		}
		nodes[i] = n
	}
	if len(nodes) == 0 {
		return nil
	}
	root := nodes[0]
	for i := 1; i < len(nodes); i++ {
		parent := spans[i].Parent
		if parent < 1 || int(parent) > len(nodes) || int(parent) == i+1 {
			parent = 1
		}
		p := nodes[parent-1]
		p.Children = append(p.Children, nodes[i])
	}
	return root
}

func traceSummary(t *trace.Active) traceSummaryJSON {
	return traceSummaryJSON{
		ID:          t.ReqID(),
		TraceID:     t.TraceIDHex(),
		Endpoint:    t.Endpoint(),
		Status:      t.Status(),
		Kept:        t.Keep().String(),
		StartUnixNs: t.Start().UnixNano(),
		DurationUs:  durUs(t.Duration().Nanoseconds()),
		Spans:       t.SpanCount(),
	}
}

// handleTraces serves the recent-trace index, filterable with
// ?endpoint=NAME, ?status=N and ?min_duration=DUR (Go duration syntax),
// newest first, capped with ?limit=N (default 100).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeJSON(w, http.StatusNotFound,
			errorResponse{"tracing disabled; start with -trace-sample"})
		return
	}
	q := r.URL.Query()
	endpoint := q.Get("endpoint")
	var status int
	if v := q.Get("status"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{"status must be an integer"})
			return
		}
		status = n
	}
	var minDur time.Duration
	if v := q.Get("min_duration"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			writeJSON(w, http.StatusBadRequest,
				errorResponse{`min_duration must be a duration ("50ms")`})
			return
		}
		minDur = d
	}
	limit := 100
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeJSON(w, http.StatusBadRequest, errorResponse{"limit must be a positive integer"})
			return
		}
		limit = n
	}
	resp := tracesResponse{Traces: []traceSummaryJSON{}}
	for _, t := range s.tracer.Traces() {
		if endpoint != "" && t.Endpoint() != endpoint {
			continue
		}
		if status != 0 && t.Status() != status {
			continue
		}
		if minDur > 0 && t.Duration() < minDur {
			continue
		}
		if len(resp.Traces) < limit {
			resp.Traces = append(resp.Traces, traceSummary(t))
		}
		resp.Count++
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTraceByID serves one trace's full span tree. The id is the
// X-Request-Id the trace was recorded under; the 32-hex W3C trace-id is
// accepted too.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeJSON(w, http.StatusNotFound,
			errorResponse{"tracing disabled; start with -trace-sample"})
		return
	}
	id := r.PathValue("id")
	t := s.tracer.Lookup(id)
	if t == nil {
		for _, cand := range s.tracer.Traces() {
			if cand.TraceIDHex() == id {
				t = cand
				break
			}
		}
	}
	if t == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{"no stored trace with that id"})
		return
	}
	writeJSON(w, http.StatusOK, traceResponse{
		ID:           t.ReqID(),
		TraceID:      t.TraceIDHex(),
		Traceparent:  t.Traceparent(),
		RemoteParent: t.Remote(),
		Endpoint:     t.Endpoint(),
		Status:       t.Status(),
		Kept:         t.Keep().String(),
		StartUnixNs:  t.Start().UnixNano(),
		DurationUs:   durUs(t.Duration().Nanoseconds()),
		DroppedSpans: t.DroppedSpans(),
		Root:         spanTree(t.Spans()),
	})
}
