package server

import (
	"net/http"
	"sync/atomic"
)

// Endpoint classes for load shedding. Mutating endpoints (ingest,
// contract, delete) and read endpoints (curves, check, minfreq, verdict,
// list) are limited independently, so a flood of expensive ingests cannot
// starve cheap reads and vice versa. Observability endpoints (healthz,
// metrics, stats, self) are never shed: when the service is drowning is
// exactly when an operator needs them.
type epClass int

const (
	classNone epClass = iota // never shed
	classIngest
	classRead
)

// inflightLimiter is a bounded in-flight-request counter for one endpoint
// class: pure atomics, no queue. acquire optimistically increments and
// backs out over the limit, so admission costs one atomic add on the
// happy path and overload never blocks — excess requests are shed
// immediately with 429 (reads may instead fall back to a degraded cached
// answer; see the shed handlers in server.go).
// cur is bumped twice by every admitted request (acquire/release) from
// whichever core the handler runs on, so it gets a cache line to itself:
// without the spacers, cur and shed of the two limiters allocated together
// could land on one line and every ingest admission would invalidate the
// read path's admission line.
type inflightLimiter struct {
	max  int64
	_    [64 - 8]byte
	cur  atomic.Int64
	_    [64 - 8]byte
	shed atomic.Uint64
}

// newLimiter builds a limiter admitting at most max concurrent requests.
// max ≤ 0 means unlimited (nil limiter).
func newLimiter(max int) *inflightLimiter {
	if max <= 0 {
		return nil
	}
	return &inflightLimiter{max: int64(max)}
}

// acquire reports whether the request is admitted. Each admitted request
// must be paired with exactly one release.
func (l *inflightLimiter) acquire() bool {
	if l == nil {
		return true
	}
	if l.cur.Add(1) > l.max {
		l.cur.Add(-1)
		l.shed.Add(1)
		return false
	}
	return true
}

func (l *inflightLimiter) release() {
	if l != nil {
		l.cur.Add(-1)
	}
}

// Shed returns the number of requests turned away so far.
func (l *inflightLimiter) Shed() uint64 {
	if l == nil {
		return 0
	}
	return l.shed.Load()
}

// Limit returns the configured cap (0 = unlimited).
func (l *inflightLimiter) Limit() int64 {
	if l == nil {
		return 0
	}
	return l.max
}

// Inflight returns the current in-flight count.
func (l *inflightLimiter) Inflight() int64 {
	if l == nil {
		return 0
	}
	return l.cur.Load()
}

// retryAfterSeconds is the Retry-After hint attached to every shed
// response: in-flight overload clears in milliseconds once clients pause,
// so the smallest representable backoff is the honest one.
const retryAfterSeconds = "1"

// writeShed emits the 429 overload answer with its Retry-After hint.
func writeShed(w http.ResponseWriter, class string) {
	w.Header().Set("Retry-After", retryAfterSeconds)
	writeJSON(w, http.StatusTooManyRequests,
		errorResponse{"overloaded: too many in-flight " + class + " requests"})
}
