package server

import (
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"wcm/internal/qos"
)

// Endpoint classes for load shedding. Mutating endpoints (ingest,
// contract, delete) and read endpoints (curves, check, minfreq, verdict,
// list) are limited independently, so a flood of expensive ingests cannot
// starve cheap reads and vice versa. Observability endpoints (healthz,
// metrics, stats, self) are never shed: when the service is drowning is
// exactly when an operator needs them.
type epClass int

const (
	classNone epClass = iota // never shed
	classIngest
	classRead
)

// inflightLimiter is a bounded in-flight-request counter for one endpoint
// class: pure atomics, no queue. acquire optimistically increments and
// backs out over the limit, so admission costs one atomic add on the
// happy path and overload never blocks — excess requests are shed
// immediately with 429 (reads may instead fall back to a degraded cached
// answer; see the shed handlers in server.go).
// cur is bumped twice by every admitted request (acquire/release) from
// whichever core the handler runs on, so it gets a cache line to itself:
// without the spacers, cur and shed of the two limiters allocated together
// could land on one line and every ingest admission would invalidate the
// read path's admission line.
type inflightLimiter struct {
	max  int64
	_    [64 - 8]byte
	cur  atomic.Int64
	_    [64 - 8]byte
	shed atomic.Uint64

	// Shedding-pressure window for proportional Retry-After hints: sheds
	// are counted per wall-clock second (winStart names the second,
	// winCount accumulates within it). Both are updated only on the shed
	// path, so the admit path never touches this line.
	winStart atomic.Int64
	winCount atomic.Uint64
}

// newLimiter builds a limiter admitting at most max concurrent requests.
// max ≤ 0 means unlimited (nil limiter).
func newLimiter(max int) *inflightLimiter {
	if max <= 0 {
		return nil
	}
	return &inflightLimiter{max: int64(max)}
}

// acquire reports whether the request is admitted. Each admitted request
// must be paired with exactly one release.
func (l *inflightLimiter) acquire() bool {
	return l.acquireFor(qos.Interactive)
}

// acquireFor admits by SLO class with ordered thresholds on the shared
// in-flight counter: besteffort requests are admitted only while the
// level is below half the cap, batch below three quarters, interactive up
// to the full cap. Under overload the classes therefore shed in strict
// order — besteffort first, then batch, and interactive only at the hard
// ceiling — while an idle server treats all three identically. Each
// admitted request must be paired with exactly one release.
func (l *inflightLimiter) acquireFor(slo qos.SLO) bool {
	if l == nil {
		return true
	}
	limit := l.max
	switch slo {
	case qos.BestEffort:
		limit = l.max / 2
	case qos.Batch:
		limit = l.max - l.max/4
	}
	if limit < 1 {
		limit = 1 // a cap of 1 admits every class equally rather than none
	}
	if l.cur.Add(1) > limit {
		l.cur.Add(-1)
		l.shed.Add(1)
		l.noteShed(time.Now().UnixNano())
		return false
	}
	return true
}

// noteShed folds one shed into the pressure window. The reset race
// (two goroutines observing an expired window) at worst loses a few
// counts — the hint stays order-of-magnitude right, which is all a
// Retry-After needs.
func (l *inflightLimiter) noteShed(nowNs int64) {
	start := l.winStart.Load()
	if nowNs-start > int64(time.Second) {
		if l.winStart.CompareAndSwap(start, nowNs) {
			l.winCount.Store(1)
			return
		}
	}
	l.winCount.Add(1)
}

func (l *inflightLimiter) release() {
	if l != nil {
		l.cur.Add(-1)
	}
}

// Shed returns the number of requests turned away so far.
func (l *inflightLimiter) Shed() uint64 {
	if l == nil {
		return 0
	}
	return l.shed.Load()
}

// Limit returns the configured cap (0 = unlimited).
func (l *inflightLimiter) Limit() int64 {
	if l == nil {
		return 0
	}
	return l.max
}

// Inflight returns the current in-flight count.
func (l *inflightLimiter) Inflight() int64 {
	if l == nil {
		return 0
	}
	return l.cur.Load()
}

// retryAfterFloorSeconds is the minimum Retry-After attached to any shed,
// throttle or busy response: in-flight overload can clear in milliseconds
// once clients pause, so the smallest representable backoff is the floor.
// Actual hints scale up from it with observed pressure (shedHint) or the
// token-refill deficit (retrySecsFromNs), capped at
// maxRetryAfterSeconds — an unbounded hint would tell clients to go away
// longer than any overload plausibly lasts.
const (
	retryAfterFloorSeconds = 1
	maxRetryAfterSeconds   = 60
)

// retryAfterValue renders a Retry-After hint, clamped to
// [retryAfterFloorSeconds, maxRetryAfterSeconds]. Values this small
// stringify without allocation (strconv.Itoa's small-int fast path).
func retryAfterValue(secs int) string {
	if secs < retryAfterFloorSeconds {
		secs = retryAfterFloorSeconds
	}
	if secs > maxRetryAfterSeconds {
		secs = maxRetryAfterSeconds
	}
	return strconv.Itoa(secs)
}

// retrySecsFromNs converts a token-bucket refill deficit into whole
// seconds, rounding up — the client should not come back early.
func retrySecsFromNs(deficitNs int64) int {
	secs := int((deficitNs + int64(time.Second) - 1) / int64(time.Second))
	if secs < retryAfterFloorSeconds {
		return retryAfterFloorSeconds
	}
	return secs
}

// shedHint returns the Retry-After seconds for a shed answer,
// proportional to current pressure: 1 + (prior sheds in the last second
// per unit of capacity). The caller's own shed is excluded so an isolated
// blip hints exactly the floor; a sustained flood drowning an N-slot
// limiter hints progressively longer backoff.
func (l *inflightLimiter) shedHint() int {
	if l == nil {
		return retryAfterFloorSeconds
	}
	recent := l.winCount.Load()
	if recent > 0 {
		recent-- // this request's own shed is not prior pressure
	}
	return retryAfterFloorSeconds + int(recent/uint64(l.max)) //nolint:gosec // max ≥ 1 by construction
}

// writeShed emits the 429 overload answer with a pressure-proportional
// Retry-After hint (seconds).
func writeShed(w http.ResponseWriter, class string, hint int) {
	w.Header().Set("Retry-After", retryAfterValue(hint))
	writeJSON(w, http.StatusTooManyRequests,
		errorResponse{"overloaded: too many in-flight " + class + " requests"})
}
