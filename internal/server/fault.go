package server

import (
	"fmt"
	"strings"
	"time"
)

// Fault is one injected failure, used by the resilience test suite and —
// behind the faultinject build tag — by the wcmd -inject-fault flag. The
// server checks fault points only when Config.Faults is non-empty, so the
// production request path pays a single nil check.
//
// Points:
//
//	handler:<endpoint>  fires inside the instrumented handler, before the
//	                    endpoint logic runs (every endpoint name in
//	                    endpointNames is valid)
//	ingest:update       fires in the ingest handler after decode, just
//	                    before the stream update
//
// Kinds:
//
//	panic     panic at the point (exercises the recovery middleware)
//	sleep     block the request for Dur (slow handler / deadline overrun)
//	lockhold  hold the target stream's lock for Dur before proceeding
//	          (real lock contention: concurrent reads of the same stream
//	          see ErrBusy and degrade); at points without a stream it
//	          behaves like sleep
type Fault struct {
	Point string
	Kind  string
	Dur   time.Duration
}

// Fault kinds.
const (
	FaultPanic    = "panic"
	FaultSleep    = "sleep"
	FaultLockHold = "lockhold"
)

// ParseFaults parses a comma-separated fault list of the form
// kind:point[:duration], e.g. "panic:handler:curves,lockhold:ingest:update:200ms".
// The point itself may contain a colon (handler:curves), so the duration
// is recognized as a trailing segment that parses as a time.Duration.
func ParseFaults(spec string) ([]Fault, error) {
	var out []Fault
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		segs := strings.Split(part, ":")
		if len(segs) < 2 {
			return nil, fmt.Errorf("server: fault %q: want kind:point[:duration]", part)
		}
		f := Fault{Kind: segs[0]}
		rest := segs[1:]
		if len(rest) > 1 {
			if d, err := time.ParseDuration(rest[len(rest)-1]); err == nil {
				f.Dur = d
				rest = rest[:len(rest)-1]
			}
		}
		f.Point = strings.Join(rest, ":")
		switch f.Kind {
		case FaultPanic:
		case FaultSleep, FaultLockHold:
			if f.Dur <= 0 {
				return nil, fmt.Errorf("server: fault %q: kind %q needs a positive duration", part, f.Kind)
			}
		default:
			return nil, fmt.Errorf("server: fault %q: unknown kind %q", part, f.Kind)
		}
		out = append(out, f)
	}
	return out, nil
}

// buildFaults indexes the configured faults by point. Returns nil when
// none are configured, keeping the request-path check a nil comparison.
func buildFaults(fs []Fault) (map[string]Fault, error) {
	if len(fs) == 0 {
		return nil, nil
	}
	m := make(map[string]Fault, len(fs))
	for _, f := range fs {
		if f.Point == "" {
			return nil, fmt.Errorf("server: fault with empty point")
		}
		if _, dup := m[f.Point]; dup {
			return nil, fmt.Errorf("server: duplicate fault point %q", f.Point)
		}
		m[f.Point] = f
	}
	return m, nil
}

// fire triggers the fault registered at point, if any. e is the stream
// entry in scope at the point (nil where there is none); lockhold without
// a stream degenerates to sleep.
func (s *Server) fire(point string, e *entry) {
	f, ok := s.faults[point]
	if !ok {
		return
	}
	switch f.Kind {
	case FaultPanic:
		panic("injected fault at " + point)
	case FaultSleep:
		time.Sleep(f.Dur)
	case FaultLockHold:
		if e != nil {
			e.st.HoldLock(f.Dur)
		} else {
			time.Sleep(f.Dur)
		}
	}
}
