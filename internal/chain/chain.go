// Package chain composes the Network-Calculus results of the paper across
// multi-stage streaming architectures: given the arrival spans of the input
// stream and each stage's workload curve and clock, it derives per-stage
// delay and backlog bounds and propagates a sound arrival bound to the next
// stage.
//
// Propagation rule: a work-conserving FIFO stage delays each event by at
// most its delay bound D and preserves order, so k consecutive OUTPUT
// events span at least
//
//	d_out(k) ≥ max(0, d_in(k) − D)
//
// (the first event of the window leaves no later than its arrival + D, the
// last no earlier than its arrival). This is the standard "jitter increase"
// bound of compositional performance analysis; it lets the single-node
// results of Sec. 3.2 dimension whole PE chains.
package chain

import (
	"errors"
	"fmt"

	"wcm/internal/arrival"
	"wcm/internal/curve"
	"wcm/internal/netcalc"
	"wcm/internal/pwl"
	"wcm/internal/service"
)

// Errors returned by this package.
var (
	ErrNoStages = errors.New("chain: no stages")
	ErrBadStage = errors.New("chain: invalid stage")
)

// Stage is one processing element of the chain.
type Stage struct {
	Name         string
	Gamma        curve.Curve // upper workload curve of the stage's subtask
	FreqHz       float64     // clock frequency
	BufferEvents int         // FIFO size in front of the stage (for the eq. 8 check); 0 skips the check
}

// Report is the analysis outcome of one stage.
type Report struct {
	Name          string
	DelayNs       int64         // delay bound of the stage (horizontal deviation)
	BacklogEvents int           // eq. (7) backlog bound in events
	BufferOK      bool          // eq. (8) satisfied for the configured buffer (true when BufferEvents = 0)
	OutSpans      arrival.Spans // sound arrival bound for the next stage
}

// Analyze walks the chain front to back. `in` is the span table of the
// external input stream, `horizon` bounds the delay search (use the trace
// span).
func Analyze(in arrival.Spans, stages []Stage, horizon int64) ([]Report, error) {
	if len(stages) == 0 {
		return nil, ErrNoStages
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	spans := in
	out := make([]Report, 0, len(stages))
	for i, st := range stages {
		if st.FreqHz <= 0 || st.BufferEvents < 0 {
			return nil, fmt.Errorf("%w: %d (%q)", ErrBadStage, i, st.Name)
		}
		beta, err := service.Full(st.FreqHz)
		if err != nil {
			return nil, err
		}
		delay, err := netcalc.DelayBound(spans, beta, st.Gamma, horizon)
		if err != nil {
			return nil, fmt.Errorf("chain: stage %d (%q): %w", i, st.Name, err)
		}
		backlog, err := netcalc.BacklogEvents(spans, beta, st.Gamma)
		if err != nil {
			return nil, fmt.Errorf("chain: stage %d (%q): %w", i, st.Name, err)
		}
		bufferOK := true
		if st.BufferEvents > 0 {
			bufferOK, err = netcalc.CheckServiceConstraint(spans, beta, st.Gamma, st.BufferEvents)
			if err != nil {
				return nil, fmt.Errorf("chain: stage %d (%q): %w", i, st.Name, err)
			}
		}
		next := propagate(spans, delay)
		out = append(out, Report{
			Name:          st.Name,
			DelayNs:       delay,
			BacklogEvents: backlog,
			BufferOK:      bufferOK,
			OutSpans:      next,
		})
		spans = next
	}
	return out, nil
}

// EndToEndDelay sums the per-stage delay bounds.
func EndToEndDelay(reports []Report) int64 {
	var sum int64
	for _, r := range reports {
		sum += r.DelayNs
	}
	return sum
}

// EndToEndDelayPBOO computes a (usually tighter) end-to-end delay bound by
// the "pay bursts only once" principle: each stage's cycle service curve is
// converted to the event domain through its workload curve (Fig. 4 of the
// paper), the event-domain service curves are min-plus convolved into one
// tandem service curve, and the input stream's burstiness is paid against
// it once instead of at every stage.
//
// The event-domain conversion is sample-based (512 grid points per stage,
// see netcalc.CyclesToEvents); between samples the staircase is
// interpolated, so the bound carries a grid-resolution error of up to one
// event's service time per stage. Both bounds are reported by callers that
// need a certified number: take max(EndToEndDelayPBOO, observed) or fall
// back to EndToEndDelay, which is conservative throughout.
func EndToEndDelayPBOO(in arrival.Spans, stages []Stage, horizon int64) (int64, error) {
	if len(stages) == 0 {
		return 0, ErrNoStages
	}
	if err := in.Validate(); err != nil {
		return 0, err
	}
	var tandem pwl.Curve
	for i, st := range stages {
		if st.FreqHz <= 0 {
			return 0, fmt.Errorf("%w: %d (%q)", ErrBadStage, i, st.Name)
		}
		beta, err := service.Full(st.FreqHz)
		if err != nil {
			return 0, err
		}
		ev, err := netcalc.CyclesToEvents(beta, st.Gamma, horizon, 512)
		if err != nil {
			return 0, fmt.Errorf("chain: stage %d (%q): %w", i, st.Name, err)
		}
		if i == 0 {
			tandem = ev
		} else {
			tandem = pwl.Convolve(tandem, ev)
		}
	}
	alpha, err := in.Curve()
	if err != nil {
		return 0, err
	}
	d, ok := pwl.HorizontalDeviation(alpha, tandem, horizon)
	if !ok {
		return 0, fmt.Errorf("chain: tandem service never catches up within horizon %d", horizon)
	}
	return d, nil
}

// propagate applies d_out(k) = max(0, d_in(k) − delay) keeping the table
// monotone with d(1) = 0.
func propagate(in arrival.Spans, delay int64) arrival.Spans {
	out := make(arrival.Spans, len(in))
	for i, d := range in {
		v := d - delay
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out
}
