package chain

import (
	"errors"
	"testing"

	"wcm/internal/arrival"
	"wcm/internal/core"
	"wcm/internal/curve"
	"wcm/internal/events"
	"wcm/internal/pipeline"
)

// buildChainScenario creates a 3-stage workload: a bursty released input
// stream and per-stage modal demand traces, plus the matching analysis
// inputs (spans, workload curves).
func buildChainScenario(t *testing.T) (items []pipeline.ChainItem, in arrival.Spans, gammas []curve.Curve, release events.TimedTrace) {
	t.Helper()
	release, err := events.Bursty(0, 12, 10, 2_000, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	n := len(release)
	demand := make([]events.DemandTrace, 3)
	for s := range demand {
		demand[s], err = events.ModalDemands([]events.Mode{
			{Lo: 200, Hi: 500, MinRun: 2, MaxRun: 6},
			{Lo: 2000, Hi: 4000, MinRun: 1, MaxRun: 2},
		}, n, uint64(s)+7)
		if err != nil {
			t.Fatal(err)
		}
	}
	items = make([]pipeline.ChainItem, n)
	for i := range items {
		items[i] = pipeline.ChainItem{
			Bits:    0,
			ReadyAt: release[i],
			D:       []int64{demand[0][i], demand[1][i], demand[2][i]},
		}
	}
	maxK := 60
	in, err = arrival.FromTrace(release, maxK)
	if err != nil {
		t.Fatal(err)
	}
	gammas = make([]curve.Curve, 3)
	for s := range gammas {
		w, err := core.FromTrace(demand[s], maxK)
		if err != nil {
			t.Fatal(err)
		}
		gammas[s] = w.Upper
	}
	return items, in, gammas, release
}

func chainStages(gammas []curve.Curve, freqs []float64, buffers []int) []Stage {
	stages := make([]Stage, len(gammas))
	for i := range gammas {
		stages[i] = Stage{
			Name:         string(rune('A' + i)),
			Gamma:        gammas[i],
			FreqHz:       freqs[i],
			BufferEvents: buffers[i],
		}
	}
	return stages
}

func TestAnalyzeValidation(t *testing.T) {
	_, in, gammas, _ := buildChainScenario(t)
	if _, err := Analyze(in, nil, 1000); !errors.Is(err, ErrNoStages) {
		t.Fatal("no stages must fail")
	}
	bad := chainStages(gammas, []float64{0, 1e9, 1e9}, []int{0, 0, 0})
	if _, err := Analyze(in, bad, 1000); !errors.Is(err, ErrBadStage) {
		t.Fatal("zero frequency must fail")
	}
	if _, err := Analyze(arrival.Spans{}, chainStages(gammas, []float64{1e9, 1e9, 1e9}, []int{0, 0, 0}), 1000); err == nil {
		t.Fatal("bad spans must fail")
	}
}

// The central soundness test: analytic per-stage bounds dominate a full
// chain simulation of the very traces the curves were extracted from.
func TestAnalysisBoundsSimulation(t *testing.T) {
	items, in, gammas, release := buildChainScenario(t)
	freqs := []float64{1.2e9, 1.0e9, 1.4e9}
	buffers := []int{0, 0, 0}
	horizon := release.Span() * 2

	reports, err := Analyze(in, chainStages(gammas, freqs, buffers), horizon)
	if err != nil {
		t.Fatal(err)
	}
	st, err := pipeline.RunChain(items, pipeline.ChainConfig{
		BitRate: 1, // bits are zero; ReadyAt gates
		Stages: []pipeline.StageConfig{
			{Hz: freqs[0]}, {Hz: freqs[1]}, {Hz: freqs[2]},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Per-stage backlog bound.
	for s, r := range reports {
		if st.MaxBacklog[s] > r.BacklogEvents {
			t.Fatalf("stage %d: simulated backlog %d exceeds bound %d",
				s, st.MaxBacklog[s], r.BacklogEvents)
		}
	}
	// Per-stage delay bound: completion − arrival at the stage.
	prev := release
	for s, r := range reports {
		for i := range items {
			if d := st.Done[s][i] - prev[i]; d > r.DelayNs {
				t.Fatalf("stage %d item %d: delay %d exceeds bound %d", s, i, d, r.DelayNs)
			}
		}
		prev = st.Done[s]
	}
	// End-to-end.
	e2e := EndToEndDelay(reports)
	for i := range items {
		if d := st.Done[2][i] - release[i]; d > e2e {
			t.Fatalf("item %d: end-to-end %d exceeds bound %d", i, d, e2e)
		}
	}
}

// Output spans must be a sound arrival bound for the observed stage output.
func TestPropagatedSpansBoundStageOutputs(t *testing.T) {
	items, in, gammas, release := buildChainScenario(t)
	freqs := []float64{1.2e9, 1.0e9, 1.4e9}
	horizon := release.Span() * 2
	reports, err := Analyze(in, chainStages(gammas, freqs, []int{0, 0, 0}), horizon)
	if err != nil {
		t.Fatal(err)
	}
	st, err := pipeline.RunChain(items, pipeline.ChainConfig{
		BitRate: 1,
		Stages:  []pipeline.StageConfig{{Hz: freqs[0]}, {Hz: freqs[1]}, {Hz: freqs[2]}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for s, r := range reports {
		observed, err := arrival.FromTrace(st.Done[s], r.OutSpans.MaxK())
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= r.OutSpans.MaxK(); k++ {
			bound, _ := r.OutSpans.At(k)
			obs, _ := observed.At(k)
			if obs < bound {
				t.Fatalf("stage %d: observed d(%d)=%d below propagated bound %d", s, k, obs, bound)
			}
		}
	}
}

// Buffer verdicts follow eq. (8): generous buffers pass, tiny ones fail.
func TestBufferVerdicts(t *testing.T) {
	_, in, gammas, release := buildChainScenario(t)
	freqs := []float64{1.2e9, 1.0e9, 1.4e9}
	horizon := release.Span() * 2

	generous, err := Analyze(in, chainStages(gammas, freqs, []int{50, 50, 50}), horizon)
	if err != nil {
		t.Fatal(err)
	}
	for s, r := range generous {
		if !r.BufferOK {
			t.Fatalf("stage %d: buffer 50 should satisfy eq. 8 (backlog bound %d)", s, r.BacklogEvents)
		}
	}
	tiny, err := Analyze(in, chainStages(gammas, freqs, []int{1, 1, 1}), horizon)
	if err != nil {
		t.Fatal(err)
	}
	anyFail := false
	for _, r := range tiny {
		anyFail = anyFail || !r.BufferOK
	}
	if !anyFail {
		t.Fatal("1-event buffers should violate eq. 8 somewhere in a bursty chain")
	}
}

// The PBOO end-to-end bound must be sound (dominates the simulation) and
// at least as tight as the sum of per-stage bounds.
func TestEndToEndDelayPBOO(t *testing.T) {
	items, in, gammas, release := buildChainScenario(t)
	freqs := []float64{1.2e9, 1.0e9, 1.4e9}
	horizon := release.Span() * 2
	stages := chainStages(gammas, freqs, []int{0, 0, 0})

	reports, err := Analyze(in, stages, horizon)
	if err != nil {
		t.Fatal(err)
	}
	sum := EndToEndDelay(reports)
	pboo, err := EndToEndDelayPBOO(in, stages, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if pboo > sum {
		t.Fatalf("PBOO bound %d worse than per-stage sum %d", pboo, sum)
	}
	st, err := pipeline.RunChain(items, pipeline.ChainConfig{
		BitRate: 1,
		Stages:  []pipeline.StageConfig{{Hz: freqs[0]}, {Hz: freqs[1]}, {Hz: freqs[2]}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range items {
		if d := st.Done[2][i] - release[i]; d > pboo {
			t.Fatalf("item %d: observed delay %d exceeds PBOO bound %d", i, d, pboo)
		}
	}
	if _, err := EndToEndDelayPBOO(in, nil, horizon); err == nil {
		t.Fatal("no stages must fail")
	}
}
