package shaper

import (
	"testing"

	"wcm/internal/arrival"
	"wcm/internal/events"
)

// FuzzShape hardens the shaper against arbitrary (decoded) traces and
// shaping tables: whenever Shape accepts, the output must satisfy all
// shaper postconditions.
func FuzzShape(f *testing.F) {
	f.Add([]byte{0, 0, 0, 5, 5, 9}, uint8(3), uint8(10))
	f.Add([]byte{1}, uint8(1), uint8(1))
	f.Add([]byte{255, 1, 1}, uint8(2), uint8(50))
	f.Fuzz(func(t *testing.T, raw []byte, kRaw, periodRaw uint8) {
		if len(raw) == 0 || len(raw) > 64 {
			return
		}
		// Decode a sorted trace from the fuzz bytes (gaps).
		tt := make(events.TimedTrace, len(raw))
		var cur int64
		for i, b := range raw {
			cur += int64(b)
			tt[i] = cur
		}
		maxK := 1 + int(kRaw)%len(raw)
		period := 1 + int64(periodRaw)
		sigma, err := arrival.Periodic(period, maxK)
		if err != nil {
			return
		}
		out, err := Shape(tt, sigma)
		if err != nil {
			t.Fatalf("Shape rejected a valid input: %v", err)
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("unsorted output: %v", err)
		}
		for i := range tt {
			if out[i] < tt[i] {
				t.Fatalf("event %d released early", i)
			}
		}
		spans, err := arrival.FromTrace(out, maxK)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= maxK; k++ {
			s, _ := sigma.At(k)
			d, _ := spans.At(k)
			if d < s {
				t.Fatalf("σ violated at k=%d: %d < %d", k, d, s)
			}
		}
	})
}
