// Package shaper implements a greedy traffic shaper for event streams: the
// standard Network-Calculus companion of the arrival-curve machinery
// (Le Boudec & Thiran), applied here to event traces described by
// minimal-span tables.
//
// A greedy shaper with shaping table σ delays each event by the minimum
// amount such that the output stream satisfies d_out(k) ≥ σ(k) for every
// window the table covers: any k consecutive output events span at least
// σ(k) nanoseconds. Shaping the PE1 output stream of the paper's case
// study smooths the frame bursts before they reach the FIFO, buying a
// lower PE2 clock at the cost of shaper delay — the EXT-SHAPER ablation.
package shaper

import (
	"errors"
	"fmt"

	"wcm/internal/arrival"
	"wcm/internal/events"
)

// Errors returned by this package.
var (
	ErrBadSigma = errors.New("shaper: invalid shaping table")
)

// Shape passes the trace through a greedy shaper with shaping table sigma:
// output event i is released at
//
//	out[i] = max( t[i], out[i−1], max_{2 ≤ k ≤ K} out[i−k+1] + σ(k) )
//
// — the earliest instant that keeps every σ-window constraint satisfied.
// The result is sorted, dominates the input pointwise, and its minimal
// spans satisfy d_out(k) ≥ σ(k) for all k ≤ K.
func Shape(tt events.TimedTrace, sigma arrival.Spans) (events.TimedTrace, error) {
	if err := tt.Validate(); err != nil {
		return nil, err
	}
	if err := sigma.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSigma, err)
	}
	out := make(events.TimedTrace, len(tt))
	for i := range tt {
		release := tt[i]
		if i > 0 && out[i-1] > release {
			release = out[i-1]
		}
		maxK := sigma.MaxK()
		if maxK > i+1 {
			maxK = i + 1
		}
		for k := 2; k <= maxK; k++ {
			s, _ := sigma.At(k)
			if c := out[i-k+1] + s; c > release {
				release = c
			}
		}
		out[i] = release
	}
	return out, nil
}

// MaxDelay returns the largest per-event delay the shaper introduced.
func MaxDelay(in, out events.TimedTrace) (int64, error) {
	if len(in) != len(out) {
		return 0, fmt.Errorf("shaper: trace lengths differ: %d vs %d", len(in), len(out))
	}
	var worst int64
	for i := range in {
		if d := out[i] - in[i]; d > worst {
			worst = d
		}
	}
	return worst, nil
}

// Sustainable reports whether shaping table sigma can be sustained by the
// input's long-run rate: the shaper's delay stays bounded iff the input is
// eventually no denser than σ allows. The check compares the input's total
// span against σ's requirement for the whole trace (a necessary condition;
// callers shaping finite traces get the exact delay from MaxDelay).
func Sustainable(tt events.TimedTrace, sigma arrival.Spans) (bool, error) {
	if err := tt.Validate(); err != nil {
		return false, err
	}
	if err := sigma.Validate(); err != nil {
		return false, fmt.Errorf("%w: %v", ErrBadSigma, err)
	}
	n := len(tt)
	if n > sigma.MaxK() {
		n = sigma.MaxK()
	}
	need, _ := sigma.At(n)
	return tt[n-1]-tt[0] >= need-need/8, nil // within 12.5% of the σ rate
}
