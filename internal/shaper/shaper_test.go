package shaper

import (
	"testing"
	"testing/quick"

	"wcm/internal/arrival"
	"wcm/internal/core"
	"wcm/internal/events"
	"wcm/internal/netcalc"
)

func TestShapeEnforcesSigma(t *testing.T) {
	// Burst of 6 simultaneous events shaped to ≥10ns spacing.
	in := events.TimedTrace{0, 0, 0, 0, 0, 0}
	sigma, err := arrival.Periodic(10, 6)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Shape(in, sigma)
	if err != nil {
		t.Fatal(err)
	}
	want := events.TimedTrace{0, 10, 20, 30, 40, 50}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
	d, err := MaxDelay(in, out)
	if err != nil || d != 50 {
		t.Fatalf("max delay = %d, %v; want 50", d, err)
	}
}

func TestShapeIsNoOpForConformingTraffic(t *testing.T) {
	in, err := events.Periodic(0, 20, 50)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := arrival.Periodic(10, 20)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Shape(in, sigma)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("conforming trace altered at %d", i)
		}
	}
}

func TestShapeValidation(t *testing.T) {
	sigma, _ := arrival.Periodic(10, 4)
	if _, err := Shape(events.TimedTrace{}, sigma); err == nil {
		t.Fatal("empty trace must fail")
	}
	if _, err := Shape(events.TimedTrace{0, 5}, arrival.Spans{5}); err == nil {
		t.Fatal("bad sigma must fail")
	}
	if _, err := MaxDelay(events.TimedTrace{0}, events.TimedTrace{0, 1}); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func TestSustainable(t *testing.T) {
	in, _ := events.Periodic(0, 20, 40)
	loose, _ := arrival.Periodic(10, 40)
	tight, _ := arrival.Periodic(100, 40)
	ok, err := Sustainable(in, loose)
	if err != nil || !ok {
		t.Fatalf("20ns stream must sustain 10ns shaping: %v %v", ok, err)
	}
	ok, err = Sustainable(in, tight)
	if err != nil || ok {
		t.Fatalf("20ns stream cannot sustain 100ns shaping: %v %v", ok, err)
	}
}

// Core shaper properties on random bursty inputs: order preserved, no event
// released early, output spans dominate σ, and conforming prefixes pass
// through unchanged.
func TestQuickShaperProperties(t *testing.T) {
	f := func(seed uint64) bool {
		g := events.NewLCG(seed)
		// Bursty input.
		in, err := events.Bursty(0, 2+int(g.Intn(4)), 3+int(g.Intn(5)), g.Intn(5), 50+g.Intn(200))
		if err != nil {
			return false
		}
		period := 1 + g.Intn(30)
		maxK := len(in)
		if maxK > 12 {
			maxK = 12
		}
		sigma, err := arrival.Periodic(period, maxK)
		if err != nil {
			return false
		}
		out, err := Shape(in, sigma)
		if err != nil {
			return false
		}
		if out.Validate() != nil {
			return false
		}
		for i := range in {
			if out[i] < in[i] {
				return false
			}
		}
		spans, err := arrival.FromTrace(out, maxK)
		if err != nil {
			return false
		}
		for k := 1; k <= maxK; k++ {
			s, _ := sigma.At(k)
			d, _ := spans.At(k)
			if d < s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// EXT-SHAPER claim: shaping never increases Fᵞmin (the shaped stream's
// spans dominate the input's, and eq. 9 is antitone in the spans).
func TestShapingNeverRaisesFmin(t *testing.T) {
	in, err := events.Bursty(0, 8, 25, 5, 2000)
	if err != nil {
		t.Fatal(err)
	}
	demands, err := events.ModalDemands([]events.Mode{
		{Lo: 50, Hi: 90, MinRun: 3, MaxRun: 8},
		{Lo: 400, Hi: 700, MinRun: 1, MaxRun: 2},
	}, len(in), 3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := core.FromTrace(demands, 100)
	if err != nil {
		t.Fatal(err)
	}
	spansIn, err := arrival.FromTrace(in, 100)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := arrival.Periodic(40, 100)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Shape(in, sigma)
	if err != nil {
		t.Fatal(err)
	}
	spansOut, err := arrival.FromTrace(out, 100)
	if err != nil {
		t.Fatal(err)
	}
	const b = 10
	before, err := netcalc.MinFrequency(spansIn, w.Upper, b)
	if err != nil {
		t.Fatal(err)
	}
	after, err := netcalc.MinFrequency(spansOut, w.Upper, b)
	if err != nil {
		t.Fatal(err)
	}
	if after.Hz > before.Hz+1e-6 {
		t.Fatalf("shaping raised Fmin: %g → %g", before.Hz, after.Hz)
	}
	if after.Hz >= before.Hz {
		t.Fatalf("shaping a bursty stream should strictly lower Fmin (%g vs %g)", after.Hz, before.Hz)
	}
}
