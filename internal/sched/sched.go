// Package sched simulates preemptive fixed-priority scheduling of periodic
// tasks on a single processor, for empirical validation of the rms analysis:
// a task set accepted by the schedulability test must never miss a deadline
// in simulation (under demands consistent with the characterization), and
// the critical-instant (synchronous release, worst-case demand) simulation
// of a rejected set must exhibit the predicted miss.
//
// Time is in processor cycles at unit speed: a job with demand d occupies
// the processor for d time units in total (possibly split by preemption).
package sched

import (
	"errors"
	"fmt"
)

// Errors returned by this package.
var (
	ErrNoTasks    = errors.New("sched: no tasks")
	ErrBadTask    = errors.New("sched: invalid task")
	ErrBadHorizon = errors.New("sched: horizon must be > 0")
)

// Task is a periodic task for simulation. Job n (0-based) is released at
// Offset + n·Period with absolute deadline one period later and demand
// Demands[n mod len(Demands)]. Priority is by position in the task slice
// (index 0 = highest), which the caller sets — rms order for RM experiments.
type Task struct {
	Name    string
	Period  int64
	Offset  int64
	Demands []int64
}

// Validate checks task invariants.
func (t Task) Validate() error {
	if t.Period <= 0 || t.Offset < 0 || len(t.Demands) == 0 {
		return fmt.Errorf("%w: %q period=%d offset=%d demands=%d",
			ErrBadTask, t.Name, t.Period, t.Offset, len(t.Demands))
	}
	for i, d := range t.Demands {
		if d < 0 {
			return fmt.Errorf("%w: %q demand[%d]=%d", ErrBadTask, t.Name, i, d)
		}
	}
	return nil
}

// TaskStats aggregates per-task simulation outcomes.
type TaskStats struct {
	Name        string
	Jobs        int   // jobs completed within the horizon
	Misses      int   // jobs that completed after their deadline or never completed by a deadline ≤ horizon
	MaxResponse int64 // worst response time among completed jobs
	MaxBacklog  int   // worst number of simultaneously pending jobs of this task
}

// Result is the outcome of a simulation run.
type Result struct {
	PerTask []TaskStats
	Misses  int // total deadline misses
	Idle    int64
}

// job is a released, not-yet-finished activation.
type job struct {
	release   int64
	deadline  int64
	remaining int64
}

// Simulate runs the task set under preemptive fixed-priority scheduling
// until `horizon` time units. Priorities follow slice order (index 0
// highest). Jobs pending at the horizon whose deadline has passed count as
// misses.
func Simulate(tasks []Task, horizon int64) (Result, error) {
	return simulate(tasks, horizon, pickFixedPriority)
}

// SimulateEDF runs the task set under preemptive earliest-deadline-first
// scheduling until `horizon`. Used to validate the demand-bound-function
// feasibility test (internal/dbf) the same way Simulate validates the rms
// tests.
func SimulateEDF(tasks []Task, horizon int64) (Result, error) {
	return simulate(tasks, horizon, pickEDF)
}

// pickFixedPriority selects the lowest-index task with pending work.
func pickFixedPriority(pending [][]job) int {
	for i := range pending {
		if len(pending[i]) > 0 {
			return i
		}
	}
	return -1
}

// pickEDF selects the pending job with the earliest absolute deadline
// (ties: lowest task index, FIFO within a task).
func pickEDF(pending [][]job) int {
	best := -1
	var bestDeadline int64
	for i := range pending {
		if len(pending[i]) == 0 {
			continue
		}
		d := pending[i][0].deadline
		if best < 0 || d < bestDeadline {
			best, bestDeadline = i, d
		}
	}
	return best
}

func simulate(tasks []Task, horizon int64, pick func([][]job) int) (Result, error) {
	if len(tasks) == 0 {
		return Result{}, ErrNoTasks
	}
	if horizon <= 0 {
		return Result{}, ErrBadHorizon
	}
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			return Result{}, err
		}
	}

	n := len(tasks)
	res := Result{PerTask: make([]TaskStats, n)}
	for i := range tasks {
		res.PerTask[i].Name = tasks[i].Name
	}
	pending := make([][]job, n) // FIFO per task
	nextRelease := make([]int64, n)
	jobIndex := make([]int64, n)
	for i, t := range tasks {
		nextRelease[i] = t.Offset
	}

	release := func(now int64) {
		for i, t := range tasks {
			for nextRelease[i] <= now && nextRelease[i] < horizon {
				d := t.Demands[jobIndex[i]%int64(len(t.Demands))]
				pending[i] = append(pending[i], job{
					release:   nextRelease[i],
					deadline:  nextRelease[i] + t.Period,
					remaining: d,
				})
				if len(pending[i]) > res.PerTask[i].MaxBacklog {
					res.PerTask[i].MaxBacklog = len(pending[i])
				}
				jobIndex[i]++
				nextRelease[i] += t.Period
			}
		}
	}

	earliestRelease := func() int64 {
		best := int64(-1)
		for i := range tasks {
			if nextRelease[i] < horizon && (best < 0 || nextRelease[i] < best) {
				best = nextRelease[i]
			}
		}
		return best
	}

	now := int64(0)
	release(now)
	for now < horizon {
		run := pick(pending)
		if run < 0 {
			nxt := earliestRelease()
			if nxt < 0 {
				res.Idle += horizon - now
				now = horizon
				break
			}
			res.Idle += nxt - now
			now = nxt
			release(now)
			continue
		}
		j := &pending[run][0]
		if j.remaining == 0 {
			// Zero-demand job completes instantly.
			finish(&res.PerTask[run], j, now, &res.Misses)
			pending[run] = pending[run][1:]
			continue
		}
		// Run until the job finishes or the next release preempts/arrives.
		slice := j.remaining
		if nxt := earliestRelease(); nxt >= 0 && nxt-now < slice {
			slice = nxt - now
		}
		if now+slice > horizon {
			slice = horizon - now
		}
		j.remaining -= slice
		now += slice
		if j.remaining == 0 {
			finish(&res.PerTask[run], j, now, &res.Misses)
			pending[run] = pending[run][1:]
		}
		release(now)
	}

	// Unfinished jobs with deadlines inside the horizon are misses.
	for i := range tasks {
		for _, j := range pending[i] {
			if j.deadline <= horizon && j.remaining > 0 {
				res.PerTask[i].Misses++
				res.Misses++
			}
		}
	}
	return res, nil
}

func finish(st *TaskStats, j *job, now int64, totalMisses *int) {
	st.Jobs++
	resp := now - j.release
	if resp > st.MaxResponse {
		st.MaxResponse = resp
	}
	if now > j.deadline {
		st.Misses++
		*totalMisses++
	}
}
