package sched

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidation(t *testing.T) {
	if _, err := Simulate(nil, 100); !errors.Is(err, ErrNoTasks) {
		t.Fatal("no tasks must fail")
	}
	ok := Task{Name: "a", Period: 10, Demands: []int64{1}}
	if _, err := Simulate([]Task{ok}, 0); !errors.Is(err, ErrBadHorizon) {
		t.Fatal("zero horizon must fail")
	}
	bad := []Task{
		{Name: "p", Period: 0, Demands: []int64{1}},
		{Name: "o", Period: 5, Offset: -1, Demands: []int64{1}},
		{Name: "d", Period: 5, Demands: nil},
		{Name: "n", Period: 5, Demands: []int64{-2}},
	}
	for _, b := range bad {
		if _, err := Simulate([]Task{b}, 10); !errors.Is(err, ErrBadTask) {
			t.Fatalf("%q must fail validation", b.Name)
		}
	}
}

func TestSingleTask(t *testing.T) {
	res, err := Simulate([]Task{{Name: "a", Period: 5, Demands: []int64{2}}}, 50)
	if err != nil {
		t.Fatal(err)
	}
	st := res.PerTask[0]
	if st.Jobs != 10 || st.Misses != 0 {
		t.Fatalf("jobs=%d misses=%d", st.Jobs, st.Misses)
	}
	if st.MaxResponse != 2 {
		t.Fatalf("response = %d, want 2", st.MaxResponse)
	}
	if res.Idle != 30 {
		t.Fatalf("idle = %d, want 30", res.Idle)
	}
}

func TestPreemption(t *testing.T) {
	// High: C=1, T=2 (released every 2). Low: C=2, T=10.
	// Low's first job: runs in the gaps — finishes at t=4 (slots 1-2 used
	// 1, 3-4 used 1)… timeline: [0,1) hi, [1,2) lo, [2,3) hi, [3,4) lo done.
	tasks := []Task{
		{Name: "hi", Period: 2, Demands: []int64{1}},
		{Name: "lo", Period: 10, Demands: []int64{2}},
	}
	res, err := Simulate(tasks, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 0 {
		t.Fatalf("misses = %d", res.Misses)
	}
	if res.PerTask[1].MaxResponse != 4 {
		t.Fatalf("low response = %d, want 4", res.PerTask[1].MaxResponse)
	}
}

func TestDeadlineMissDetection(t *testing.T) {
	// Overloaded: U = 1/2 + 3/5 > 1.
	tasks := []Task{
		{Name: "hi", Period: 2, Demands: []int64{1}},
		{Name: "lo", Period: 5, Demands: []int64{3}},
	}
	res, err := Simulate(tasks, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses == 0 {
		t.Fatal("overloaded set must miss deadlines")
	}
	if res.PerTask[0].Misses != 0 {
		t.Fatal("highest priority task with C≤T must never miss")
	}
}

func TestUnfinishedJobAtHorizonCountsAsMiss(t *testing.T) {
	// One job of demand 100 with deadline 10, horizon 20: never finishes.
	res, err := Simulate([]Task{{Name: "x", Period: 10, Demands: []int64{100}}}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses == 0 {
		t.Fatal("unfinished past-deadline job must count as a miss")
	}
}

func TestVariableDemandsCycle(t *testing.T) {
	// Demands cycle 3,1,1: every 3rd job is expensive.
	res, err := Simulate([]Task{{Name: "v", Period: 5, Demands: []int64{3, 1, 1}}}, 150)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerTask[0].MaxResponse != 3 {
		t.Fatalf("max response = %d, want 3", res.PerTask[0].MaxResponse)
	}
	// Busy time = 10 cycles per 3 jobs·5 = 15 time units ⇒ idle = 150·(1/3).
	if res.Idle != 100 {
		t.Fatalf("idle = %d, want 100", res.Idle)
	}
}

func TestZeroDemandJobs(t *testing.T) {
	res, err := Simulate([]Task{{Name: "z", Period: 4, Demands: []int64{0}}}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerTask[0].Jobs != 10 || res.Misses != 0 || res.PerTask[0].MaxResponse != 0 {
		t.Fatalf("zero-demand: %+v", res.PerTask[0])
	}
}

func TestOffsetRelease(t *testing.T) {
	res, err := Simulate([]Task{{Name: "o", Period: 10, Offset: 7, Demands: []int64{1}}}, 30)
	if err != nil {
		t.Fatal(err)
	}
	// Releases at 7, 17, 27 → 3 jobs.
	if res.PerTask[0].Jobs != 3 {
		t.Fatalf("jobs = %d, want 3", res.PerTask[0].Jobs)
	}
	if res.Idle != 27 {
		t.Fatalf("idle = %d, want 27", res.Idle)
	}
}

func TestEDFPicksEarliestDeadline(t *testing.T) {
	// Under fixed priority (slice order), task "long" starves "short";
	// under EDF, short deadlines win regardless of slice order.
	tasks := []Task{
		{Name: "long", Period: 100, Demands: []int64{60}},
		{Name: "short", Period: 10, Demands: []int64{4}},
	}
	fp, err := Simulate(tasks, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if fp.PerTask[1].Misses == 0 {
		t.Fatal("fixed priority with inverted order must starve the short task")
	}
	edf, err := SimulateEDF(tasks, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if edf.Misses != 0 {
		t.Fatalf("EDF must schedule U=1.0 set: %d misses", edf.Misses)
	}
}

func TestEDFOverloadStillMisses(t *testing.T) {
	tasks := []Task{
		{Name: "a", Period: 4, Demands: []int64{3}},
		{Name: "b", Period: 8, Demands: []int64{4}},
	}
	res, err := SimulateEDF(tasks, 400)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses == 0 {
		t.Fatal("U=1.25 must miss under any policy")
	}
}

// EDF is optimal on one processor: whenever fixed priority succeeds, EDF
// succeeds too.
func TestQuickEDFDominatesFixedPriority(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		tasks := make([]Task, n)
		for i := range tasks {
			period := int64(3 + rng.Intn(12))
			tasks[i] = Task{Name: "t", Period: period, Demands: []int64{1 + rng.Int63n(period)}}
		}
		fp, err := Simulate(tasks, 600)
		if err != nil {
			return false
		}
		if fp.Misses > 0 {
			return true // nothing to check
		}
		edf, err := SimulateEDF(tasks, 600)
		return err == nil && edf.Misses == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// Conservation: busy + idle = horizon, and busy equals the total demand of
// completed jobs plus the consumed part of pending ones.
func TestQuickWorkConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		tasks := make([]Task, n)
		var totalU float64
		for i := range tasks {
			period := int64(4 + rng.Intn(20))
			demand := 1 + rng.Int63n(period)
			tasks[i] = Task{Name: "t", Period: period, Demands: []int64{demand}}
			totalU += float64(demand) / float64(period)
		}
		horizon := int64(500)
		res, err := Simulate(tasks, horizon)
		if err != nil {
			return false
		}
		busy := horizon - res.Idle
		if busy < 0 || busy > horizon {
			return false
		}
		// Underloaded sets must not miss for the highest-priority task.
		if res.PerTask[0].Misses != 0 && tasks[0].Demands[0] <= tasks[0].Period {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
