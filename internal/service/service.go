// Package service implements service curves β(Δ): lower bounds on the
// processing capacity (in cycles) a resource guarantees to a task in any
// time window of length Δ.
//
// The paper's case study uses the simplest instance — a fully available
// processor, β(Δ) = F·Δ — but the analysis framework composes with any
// lower service curve, so the standard Real-Time-Calculus family is
// provided: rate-latency, TDMA shares and fixed-priority leftover service.
// All curves are piecewise-linear (pwl.Curve) with time in nanoseconds and
// service in cycles.
package service

import (
	"fmt"

	"wcm/internal/pwl"
)

// Full returns the service curve of a fully available processor running at
// freqHz cycles per second: β(Δ) = F·Δ. This is the shape used for PE2 in
// the paper's case study ("the full processor resource is devoted to the
// decoding subtasks").
func Full(freqHz float64) (pwl.Curve, error) {
	if freqHz < 0 {
		return pwl.Curve{}, fmt.Errorf("service: negative frequency %g", freqHz)
	}
	return pwl.Rate(freqHz / 1e9) // cycles per nanosecond
}

// RateLatency returns β(Δ) = max(0, rate·(Δ − latency)): full speed after
// an initial blackout of `latency` nanoseconds (e.g. scheduler release
// delay, interrupt masking).
func RateLatency(freqHz float64, latencyNs int64) (pwl.Curve, error) {
	if freqHz < 0 {
		return pwl.Curve{}, fmt.Errorf("service: negative frequency %g", freqHz)
	}
	return pwl.RateLatency(freqHz/1e9, latencyNs)
}

// TDMA returns a safe lower service curve for a TDMA resource share: the
// task owns a slot of `slot` nanoseconds in every frame of `frame`
// nanoseconds on a processor at freqHz. The exact TDMA curve is a
// staircase; the standard safe linearization is the rate-latency curve with
// rate F·slot/frame and latency frame−slot (the longest wait for the slot).
func TDMA(freqHz float64, slot, frame int64) (pwl.Curve, error) {
	if slot <= 0 || frame < slot {
		return pwl.Curve{}, fmt.Errorf("service: TDMA slot=%d frame=%d", slot, frame)
	}
	if freqHz < 0 {
		return pwl.Curve{}, fmt.Errorf("service: negative frequency %g", freqHz)
	}
	rate := freqHz / 1e9 * float64(slot) / float64(frame)
	return pwl.RateLatency(rate, frame-slot)
}

// Leftover computes the service remaining for a lower-priority task under
// preemptive fixed-priority scheduling: the running supremum
//
//	β'(Δ) = max(0, sup_{0 ≤ u ≤ Δ} ( β(u) − α(u) ))
//
// where α is the (cycle-based) arrival curve of all higher-priority demand.
// The running-max closure keeps the result monotone, which the plain
// difference β−α is not.
func Leftover(beta, alpha pwl.Curve, horizon int64) (pwl.Curve, error) {
	if horizon <= 0 {
		return pwl.Curve{}, fmt.Errorf("service: horizon %d", horizon)
	}
	// Walk the difference over all breakpoints of both curves plus the
	// horizon. Between breakpoints the difference is linear, so the running
	// max is flat until the segment crosses the previous max, then follows
	// the segment. The crossing point is inserted explicitly (rounded UP, so
	// the flat part is kept longer — a safe under-approximation for a lower
	// service curve).
	xs := mergedBreakpoints(beta, alpha, horizon)
	diff := func(x int64) float64 { return beta.At(x) - alpha.At(x) }
	var pts []pwl.Point
	best := 0.0
	if d := diff(0); d > 0 {
		best = d
	}
	pts = append(pts, pwl.Point{X: 0, Y: best})
	for i := 1; i < len(xs); i++ {
		x1, x2 := xs[i-1], xs[i]
		d1, d2 := diff(x1), diff(x2)
		if d2 > best {
			if d1 < best && d2 > d1 {
				// Crossing inside the segment: keep flat until it.
				frac := (best - d1) / (d2 - d1)
				xc := x1 + int64(frac*float64(x2-x1)) + 1
				if xc > x1 && xc < x2 {
					pts = append(pts, pwl.Point{X: xc, Y: best})
				}
			}
			best = d2
		}
		pts = append(pts, pwl.Point{X: x2, Y: best})
	}
	// Beyond the horizon grow at the net long-term rate if positive.
	rate := beta.FinalRate() - alpha.FinalRate()
	if rate < 0 {
		rate = 0
	}
	return pwl.New(pts, rate)
}

func mergedBreakpoints(a, b pwl.Curve, horizon int64) []int64 {
	seen := map[int64]bool{0: true, horizon: true}
	xs := []int64{0, horizon}
	for _, p := range a.Points() {
		if p.X < horizon && !seen[p.X] {
			seen[p.X] = true
			xs = append(xs, p.X)
		}
	}
	for _, p := range b.Points() {
		if p.X < horizon && !seen[p.X] {
			seen[p.X] = true
			xs = append(xs, p.X)
		}
	}
	sortInt64(xs)
	return xs
}

func sortInt64(xs []int64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
