package service

import (
	"math"
	"testing"
	"testing/quick"

	"wcm/internal/pwl"
)

func TestFull(t *testing.T) {
	// 1 GHz = 1 cycle/ns.
	c, err := Full(1e9)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.At(1000); got != 1000 {
		t.Fatalf("Full(1GHz)(1000ns) = %g, want 1000 cycles", got)
	}
	// 340 MHz (the paper's Fᵞmin) = 0.34 cycles/ns.
	c2, _ := Full(340e6)
	if got := c2.At(1_000_000); math.Abs(got-340_000) > 1e-6 {
		t.Fatalf("Full(340MHz)(1ms) = %g, want 340000", got)
	}
	if _, err := Full(-1); err == nil {
		t.Fatal("negative frequency must fail")
	}
}

func TestRateLatency(t *testing.T) {
	c, err := RateLatency(1e9, 100)
	if err != nil {
		t.Fatal(err)
	}
	if c.At(100) != 0 || c.At(200) != 100 {
		t.Fatalf("rate-latency values: %g %g", c.At(100), c.At(200))
	}
}

func TestTDMAIsConservative(t *testing.T) {
	// Slot 2ms in frame 10ms at 1 GHz: rate 0.2 cycles/ns, latency 8ms.
	c, err := TDMA(1e9, 2_000_000, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Exact TDMA service in a window of n whole frames is n·slot·F cycles;
	// the linearization must never promise more.
	for frames := int64(1); frames <= 5; frames++ {
		window := frames * 10_000_000
		exact := float64(frames * 2_000_000) // cycles at 1 GHz
		if c.At(window) > exact+1e-6 {
			t.Fatalf("TDMA overestimates at %d frames: %g > %g", frames, c.At(window), exact)
		}
	}
	if _, err := TDMA(1e9, 0, 10); err == nil {
		t.Fatal("zero slot must fail")
	}
	if _, err := TDMA(1e9, 20, 10); err == nil {
		t.Fatal("slot > frame must fail")
	}
	if _, err := TDMA(-1, 1, 10); err == nil {
		t.Fatal("negative frequency must fail")
	}
}

func TestLeftoverRunningMax(t *testing.T) {
	// β = 1 cycle/ns, α = burst of 500 cycles at once: leftover is 0 until
	// the burst is repaid at Δ=500, then grows at the residual rate.
	beta, _ := Full(1e9)
	alpha := pwl.MustNew([]pwl.Point{{X: 0, Y: 500}}, 0.5)
	lo, err := Leftover(beta, alpha, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := lo.At(0); got != 0 {
		t.Fatalf("leftover(0) = %g", got)
	}
	// True leftover: max(0, Δ − 500 − 0.5Δ) = max(0, 0.5Δ − 500): zero
	// until Δ=1000, then 0.5/ns.
	for dt := int64(0); dt <= 1000; dt += 100 {
		if lo.At(dt) > 1e-9 {
			t.Fatalf("leftover must be 0 before repayment: At(%d)=%g", dt, lo.At(dt))
		}
	}
	for dt := int64(1100); dt < 5000; dt += 300 {
		want := 0.5*float64(dt) - 500
		got := lo.At(dt)
		if got > want+1e-6 {
			t.Fatalf("leftover overestimates at %d: %g > %g", dt, got, want)
		}
		if got < want-2 { // 1ns crossing round-up tolerance
			t.Fatalf("leftover too loose at %d: %g ≪ %g", dt, got, want)
		}
	}
	if _, err := Leftover(beta, alpha, 0); err == nil {
		t.Fatal("zero horizon must fail")
	}
}

func TestLeftoverNeverNegativeAndMonotone(t *testing.T) {
	beta, _ := RateLatency(1e9, 50)
	alpha := pwl.MustNew([]pwl.Point{{X: 0, Y: 100}, {X: 200, Y: 150}}, 2)
	lo, err := Leftover(beta, alpha, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for dt := int64(0); dt <= 10_000; dt += 37 {
		v := lo.At(dt)
		if v < 0 {
			t.Fatalf("negative leftover at %d: %g", dt, v)
		}
		if v < prev-1e-9 {
			t.Fatalf("leftover not monotone at %d", dt)
		}
		prev = v
	}
}

func TestQuickLeftoverIsLowerBound(t *testing.T) {
	// The leftover curve must never exceed the true running max of β−α.
	f := func(seed int64) bool {
		rng := seed
		next := func(n int64) int64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := (rng >> 11) % n
			if v < 0 {
				v = -v
			}
			return v
		}
		beta, err := RateLatency(float64(1+next(3))*1e9, next(200))
		if err != nil {
			return false
		}
		alpha := pwl.MustNew([]pwl.Point{{X: 0, Y: float64(next(300))}}, float64(next(2)))
		lo, err := Leftover(beta, alpha, 5000)
		if err != nil {
			return false
		}
		runMax := 0.0
		for dt := int64(0); dt <= 5000; dt += 13 {
			if d := beta.At(dt) - alpha.At(dt); d > runMax {
				runMax = d
			}
			if lo.At(dt) > runMax+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
