package wirefmt

import (
	"bytes"
	"testing"
)

func sampleCurves() Curves {
	return Curves{
		Version:  42,
		Total:    1000,
		InWindow: 7,
		Upper:    []int64{0, 10, 25, 90},
		Lower:    []int64{0, 1, 2, 3},
		DMin:     []int64{0, 4, 9},
		DMax:     []int64{0, 5, 9},
	}
}

func TestQueryCurvesRoundTrip(t *testing.T) {
	want := sampleCurves()
	b := AppendCurves(nil, want)
	got, err := DecodeCurves(b)
	if err != nil {
		t.Fatalf("DecodeCurves: %v", err)
	}
	if got.Version != want.Version || got.Total != want.Total || got.InWindow != want.InWindow {
		t.Fatalf("header mismatch: %+v vs %+v", got, want)
	}
	for i, pair := range [][2][]int64{
		{got.Upper, want.Upper}, {got.Lower, want.Lower}, {got.DMin, want.DMin}, {got.DMax, want.DMax},
	} {
		if len(pair[0]) != len(pair[1]) {
			t.Fatalf("col %d length %d vs %d", i, len(pair[0]), len(pair[1]))
		}
		for j := range pair[0] {
			if pair[0][j] != pair[1][j] {
				t.Fatalf("col %d[%d]: %d vs %d", i, j, pair[0][j], pair[1][j])
			}
		}
	}

	// Empty columns survive too (nil in → empty out).
	empty := Curves{Version: 1}
	got, err = DecodeCurves(AppendCurves(nil, empty))
	if err != nil {
		t.Fatalf("empty curves: %v", err)
	}
	if len(got.Upper) != 0 || len(got.Lower) != 0 || len(got.DMin) != 0 || len(got.DMax) != 0 {
		t.Fatalf("empty curves decoded non-empty: %+v", got)
	}
}

func TestQueryCheckRoundTrip(t *testing.T) {
	for _, ok := range []bool{true, false} {
		b := AppendCheck(nil, 9, ok)
		got, err := DecodeCheck(b)
		if err != nil {
			t.Fatalf("DecodeCheck(ok=%v): %v", ok, err)
		}
		if got.Version != 9 || got.OK != ok {
			t.Fatalf("check round trip: %+v", got)
		}
	}
	// The ok byte is strict: anything but 0/1 is a corrupt answer.
	b := AppendCheck(nil, 9, true)
	b[len(b)-1] = 2
	if _, err := DecodeCheck(b); err == nil {
		t.Fatal("ok byte 2 accepted")
	}
}

func TestQueryMinFreqRoundTrip(t *testing.T) {
	want := MinFreq{
		Version: 5, GammaHz: 1.25e9, GammaAtK: 3, GammaAtSpanNs: 99,
		WCETHz: 2.5e9, WCETAtK: 7, Saving: 0.5, Buffer: 2,
	}
	got, err := DecodeMinFreq(AppendMinFreq(nil, want))
	if err != nil {
		t.Fatalf("DecodeMinFreq: %v", err)
	}
	if got != want {
		t.Fatalf("minfreq round trip: %+v vs %+v", got, want)
	}
}

// TestQueryDecodeRejectsDamage: every truncation of a valid encoding, every
// trailing addition, and a kind mixup must error — never panic, never
// misparse.
func TestQueryDecodeRejectsDamage(t *testing.T) {
	curves := AppendCurves(nil, sampleCurves())
	check := AppendCheck(nil, 1, true)
	minfreq := AppendMinFreq(nil, MinFreq{Version: 1, GammaHz: 1e9})

	for i := 0; i < len(curves); i++ {
		if _, err := DecodeCurves(curves[:i]); err == nil {
			t.Fatalf("curves truncated to %d bytes accepted", i)
		}
	}
	for i := 0; i < len(check); i++ {
		if _, err := DecodeCheck(check[:i]); err == nil {
			t.Fatalf("check truncated to %d bytes accepted", i)
		}
	}
	for i := 0; i < len(minfreq); i++ {
		if _, err := DecodeMinFreq(minfreq[:i]); err == nil {
			t.Fatalf("minfreq truncated to %d bytes accepted", i)
		}
	}

	for name, b := range map[string][]byte{
		"curves": append(bytes.Clone(curves), 0),
		"check":  append(bytes.Clone(check), 0),
	} {
		var err error
		if name == "curves" {
			_, err = DecodeCurves(b)
		} else {
			_, err = DecodeCheck(b)
		}
		if err == nil {
			t.Fatalf("%s with trailing byte accepted", name)
		}
	}

	if _, err := DecodeCurves(check); err == nil {
		t.Fatal("check bytes accepted as curves")
	}
	if _, err := DecodeCheck(curves); err == nil {
		t.Fatal("curves bytes accepted as check")
	}
	if _, err := DecodeMinFreq(curves); err == nil {
		t.Fatal("curves bytes accepted as minfreq")
	}

	// A column count chosen to demand a giant allocation must be rejected
	// by the bound, not attempted.
	huge := []byte{KindCurves}
	huge = append(huge, make([]byte, 8+8+4)...) // version, total, in_window
	huge = append(huge, 0xFF, 0xFF, 0xFF, 0xFF) // upper: n = 2^32-1
	if _, err := DecodeCurves(huge); err == nil {
		t.Fatal("absurd column count accepted")
	}
}

// FuzzQueryDecode feeds arbitrary bytes to all three decoders: they must
// never panic, and on a successful decode, re-encoding must reproduce the
// input exactly (the format has a single canonical encoding).
func FuzzQueryDecode(f *testing.F) {
	f.Add(AppendCurves(nil, sampleCurves()))
	f.Add(AppendCheck(nil, 3, true))
	f.Add(AppendMinFreq(nil, MinFreq{Version: 2, GammaHz: 1e9, Buffer: 1}))
	f.Add([]byte{})
	f.Add([]byte{KindCurves})
	f.Fuzz(func(t *testing.T, b []byte) {
		if c, err := DecodeCurves(b); err == nil {
			if !bytes.Equal(AppendCurves(nil, c), b) {
				t.Fatalf("curves decode/encode not canonical for %x", b)
			}
		}
		if c, err := DecodeCheck(b); err == nil {
			if !bytes.Equal(AppendCheck(nil, c.Version, c.OK), b) {
				t.Fatalf("check decode/encode not canonical for %x", b)
			}
		}
		if m, err := DecodeMinFreq(b); err == nil {
			if !bytes.Equal(AppendMinFreq(nil, m), b) {
				t.Fatalf("minfreq decode/encode not canonical for %x", b)
			}
		}
	})
}
