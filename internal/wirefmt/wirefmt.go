// Package wirefmt holds the columnar binary batch encoding shared by the
// HTTP ingest fast path (Content-Type application/x-wcm-ingest, see
// internal/server) and the write-ahead log record payloads (internal/wal).
// It is a leaf package — no internal imports — precisely so both layers can
// share one codec: what travels on the wire is byte-for-byte what lands on
// disk, and one fuzzer covers both.
//
// The layout (all little-endian) is
//
//	uint32  n        number of samples, ≥ 1
//	int64×n t        timestamps, ingest order
//	int64×n demand   per-activation cycle demands
//
// — exactly 4+16·n bytes, nothing else. Columnar (all timestamps, then all
// demands) so the decoder writes two contiguous int64 runs instead of
// interleaving, and a trailing truncation can never be mistaken for a
// shorter valid batch: any length not matching the count is rejected.
package wirefmt

import (
	"encoding/binary"
	"fmt"
)

// HeaderLen is the length of the uint32 count prefix; SampleLen the size of
// one (t, demand) pair.
const (
	HeaderLen = 4
	SampleLen = 16
)

// EncodedLen returns the exact encoded size of an n-sample batch.
func EncodedLen(n int) int { return HeaderLen + SampleLen*n }

// AppendBatch appends the columnar encoding of the batch to dst and returns
// the extended slice. len(t) must equal len(d) and be ≥ 1 — the encoder is
// for batch producers (clients, benchmarks, the WAL appender), which control
// their batches, so it panics on misuse instead of returning an error.
func AppendBatch(dst []byte, t, d []int64) []byte {
	if len(t) != len(d) || len(t) == 0 {
		panic(fmt.Sprintf("wirefmt: batch needs len(t)=len(d)≥1, got %d and %d", len(t), len(d)))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(t)))
	for _, v := range t {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	for _, v := range d {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	return dst
}

// DecodeBatch decodes one encoded batch into t and d, appending to the
// passed slices (pass length-0 slices with retained capacity for a
// zero-allocation steady state). It must never panic, whatever bytes
// arrive — fuzz harnesses feed it arbitrary input.
func DecodeBatch(body []byte, t, d []int64) (ts, ds []int64, err error) {
	if len(body) < HeaderLen {
		return t, d, fmt.Errorf("binary ingest: body %d bytes, need at least the %d-byte count prefix",
			len(body), HeaderLen)
	}
	n := int64(binary.LittleEndian.Uint32(body))
	if n == 0 {
		return t, d, fmt.Errorf("binary ingest: sample count is 0")
	}
	want := int64(HeaderLen) + SampleLen*n
	if int64(len(body)) != want {
		return t, d, fmt.Errorf("binary ingest: count %d implies %d bytes, body has %d", n, want, len(body))
	}
	tcol := body[HeaderLen:]
	dcol := tcol[8*n:]
	for i := int64(0); i < n; i++ {
		t = append(t, int64(binary.LittleEndian.Uint64(tcol[8*i:])))
	}
	for i := int64(0); i < n; i++ {
		d = append(d, int64(binary.LittleEndian.Uint64(dcol[8*i:])))
	}
	return t, d, nil
}
