package wirefmt

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary query response encodings (Content-Type application/x-wcm-curves).
//
// These mirror the ingest encoding above: columnar, little-endian, exact
// length, shared verbatim between the HTTP query fast path and any client
// that wants to skip JSON (a DVS governor polling /minfreq every scheduling
// quantum has no business parsing text). Every payload opens with a kind
// byte so a client can sniff what it received:
//
//	kind 1 — curves (GET /curves)
//	  byte    kind = 1
//	  int64   version
//	  int64   total
//	  uint32  in_window
//	  4 × (uint32 n, int64×n values)   upper, lower, dmin, dmax in order
//
//	kind 2 — check (POST /check)
//	  byte    kind = 2
//	  int64   version
//	  byte    ok (0 or 1)
//
//	kind 3 — minfreq (GET /minfreq)
//	  byte    kind = 3
//	  int64   version
//	  float64 gamma_hz        (IEEE 754 bits)
//	  uint32  gamma_at_k
//	  int64   gamma_at_span_ns
//	  float64 wcet_hz
//	  uint32  wcet_at_k
//	  float64 saving
//	  uint32  buffer
//
// Errors never travel in this format: a non-200 response is always the
// JSON error object, whatever Accept asked for, so the status code is the
// only discriminator a client needs.

// Query payload kind bytes.
const (
	KindCurves  byte = 1
	KindCheck   byte = 2
	KindMinFreq byte = 3
)

// Curves is the decoded form of a kind-1 payload.
type Curves struct {
	Version  int64
	Total    int64
	InWindow int
	Upper    []int64
	Lower    []int64
	DMin     []int64
	DMax     []int64
}

// Check is the decoded form of a kind-2 payload.
type Check struct {
	Version int64
	OK      bool
}

// MinFreq is the decoded form of a kind-3 payload.
type MinFreq struct {
	Version       int64
	GammaHz       float64
	GammaAtK      int
	GammaAtSpanNs int64
	WCETHz        float64
	WCETAtK       int
	Saving        float64
	Buffer        int
}

func appendCol(dst []byte, vs []int64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(vs)))
	for _, v := range vs {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	return dst
}

// AppendCurves appends the kind-1 encoding of c to dst.
func AppendCurves(dst []byte, c Curves) []byte {
	dst = append(dst, KindCurves)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(c.Version))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(c.Total))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(c.InWindow))
	dst = appendCol(dst, c.Upper)
	dst = appendCol(dst, c.Lower)
	dst = appendCol(dst, c.DMin)
	return appendCol(dst, c.DMax)
}

// AppendCheck appends the kind-2 encoding to dst.
func AppendCheck(dst []byte, version int64, ok bool) []byte {
	dst = append(dst, KindCheck)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(version))
	b := byte(0)
	if ok {
		b = 1
	}
	return append(dst, b)
}

// AppendMinFreq appends the kind-3 encoding of m to dst.
func AppendMinFreq(dst []byte, m MinFreq) []byte {
	dst = append(dst, KindMinFreq)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(m.Version))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(m.GammaHz))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.GammaAtK))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(m.GammaAtSpanNs))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(m.WCETHz))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.WCETAtK))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(m.Saving))
	return binary.LittleEndian.AppendUint32(dst, uint32(m.Buffer))
}

// cursor is a bounds-checked little-endian reader over a payload. Decoders
// must never panic on arbitrary input — fuzz harnesses feed them garbage —
// so every read goes through it.
type cursor struct {
	b   []byte
	err error
}

func (c *cursor) take(n int) []byte {
	if c.err != nil || len(c.b) < n {
		c.err = fmt.Errorf("binary query: payload truncated")
		return nil
	}
	out := c.b[:n]
	c.b = c.b[n:]
	return out
}

func (c *cursor) u8() byte {
	if b := c.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (c *cursor) u32() uint32 {
	if b := c.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (c *cursor) u64() uint64 {
	if b := c.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

// maxQueryCol bounds a declared column length so a corrupted prefix cannot
// demand a multi-GiB allocation (a window rarely exceeds a few thousand k).
const maxQueryCol = 1 << 24

func (c *cursor) col() []int64 {
	n := int(c.u32())
	if c.err != nil {
		return nil
	}
	if n > maxQueryCol || len(c.b) < 8*n {
		c.err = fmt.Errorf("binary query: column length %d exceeds payload", n)
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(c.b[8*i:]))
	}
	c.b = c.b[8*n:]
	return out
}

func (c *cursor) done() error {
	if c.err != nil {
		return c.err
	}
	if len(c.b) != 0 {
		return fmt.Errorf("binary query: %d trailing bytes", len(c.b))
	}
	return nil
}

func expectKind(c *cursor, want byte) {
	if k := c.u8(); c.err == nil && k != want {
		c.err = fmt.Errorf("binary query: kind %d, want %d", k, want)
	}
}

// DecodeCurves decodes a kind-1 payload.
func DecodeCurves(b []byte) (Curves, error) {
	c := cursor{b: b}
	expectKind(&c, KindCurves)
	out := Curves{
		Version:  int64(c.u64()),
		Total:    int64(c.u64()),
		InWindow: int(c.u32()),
	}
	out.Upper = c.col()
	out.Lower = c.col()
	out.DMin = c.col()
	out.DMax = c.col()
	if err := c.done(); err != nil {
		return Curves{}, err
	}
	return out, nil
}

// DecodeCheck decodes a kind-2 payload.
func DecodeCheck(b []byte) (Check, error) {
	c := cursor{b: b}
	expectKind(&c, KindCheck)
	out := Check{Version: int64(c.u64())}
	switch v := c.u8(); v {
	case 0:
	case 1:
		out.OK = true
	default:
		if c.err == nil {
			c.err = fmt.Errorf("binary query: ok byte %d", v)
		}
	}
	if err := c.done(); err != nil {
		return Check{}, err
	}
	return out, nil
}

// DecodeMinFreq decodes a kind-3 payload.
func DecodeMinFreq(b []byte) (MinFreq, error) {
	c := cursor{b: b}
	expectKind(&c, KindMinFreq)
	out := MinFreq{
		Version:       int64(c.u64()),
		GammaHz:       math.Float64frombits(c.u64()),
		GammaAtK:      int(c.u32()),
		GammaAtSpanNs: int64(c.u64()),
		WCETHz:        math.Float64frombits(c.u64()),
		WCETAtK:       int(c.u32()),
		Saving:        math.Float64frombits(c.u64()),
		Buffer:        int(c.u32()),
	}
	if err := c.done(); err != nil {
		return MinFreq{}, err
	}
	return out, nil
}
