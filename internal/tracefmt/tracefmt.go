// Package tracefmt reads and writes the plain-text trace and curve files
// shared by the command-line tools:
//
//   - value files: one integer per line, '#' comments and blank lines
//     ignored — used for demand traces (cycles per activation) and timed
//     traces (timestamps in nanoseconds);
//   - curve files: a single wcurve/1 line (see internal/curve's codec).
package tracefmt

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"wcm/internal/curve"
	"wcm/internal/events"
)

// ErrNoValues is returned when a value file contains no data lines.
var ErrNoValues = errors.New("tracefmt: no values")

// ReadInts parses a value file: one int64 per line.
func ReadInts(r io.Reader, name string) ([]int64, error) {
	var vals []int64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, line, err)
		}
		vals = append(vals, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("%s: %w", name, ErrNoValues)
	}
	return vals, nil
}

// ReadIntsFile is ReadInts over a file path.
func ReadIntsFile(path string) ([]int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadInts(f, path)
}

// ReadDemandTrace loads and validates a demand trace.
func ReadDemandTrace(path string) (events.DemandTrace, error) {
	vals, err := ReadIntsFile(path)
	if err != nil {
		return nil, err
	}
	d := events.DemandTrace(vals)
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// ReadTimedTrace loads and validates a timed trace.
func ReadTimedTrace(path string) (events.TimedTrace, error) {
	vals, err := ReadIntsFile(path)
	if err != nil {
		return nil, err
	}
	tt := events.TimedTrace(vals)
	if err := tt.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tt, nil
}

// WriteInts writes a value file with an optional header comment.
func WriteInts(w io.Writer, header string, vals []int64) error {
	if header != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", header); err != nil {
			return err
		}
	}
	bw := bufio.NewWriter(w)
	for _, v := range vals {
		if _, err := fmt.Fprintln(bw, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteIntsFile is WriteInts to a file path.
func WriteIntsFile(path, header string, vals []int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteInts(f, header, vals); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadCurve loads a wcurve/1 file.
func ReadCurve(path string) (curve.Curve, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return curve.Curve{}, err
	}
	var c curve.Curve
	if err := c.UnmarshalText([]byte(strings.TrimSpace(string(raw)))); err != nil {
		return curve.Curve{}, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// WriteCurve stores a curve as a wcurve/1 file.
func WriteCurve(path string, c curve.Curve) error {
	text, err := c.MarshalText()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(text, '\n'), 0o644)
}
