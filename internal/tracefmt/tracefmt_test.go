package tracefmt

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wcm/internal/curve"
)

func TestReadIntsParsing(t *testing.T) {
	in := strings.NewReader("# header\n1\n\n 2 \n# mid\n3\n")
	vals, err := ReadInts(in, "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || vals[0] != 1 || vals[2] != 3 {
		t.Fatalf("vals = %v", vals)
	}
}

func TestReadIntsErrors(t *testing.T) {
	if _, err := ReadInts(strings.NewReader("abc\n"), "x"); err == nil {
		t.Fatal("non-numeric must fail")
	}
	if _, err := ReadInts(strings.NewReader("# only\n"), "x"); !errors.Is(err, ErrNoValues) {
		t.Fatal("empty must fail with ErrNoValues")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	vals := []int64{5, -3, 1 << 40}
	if err := WriteInts(&buf, "demo", vals); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInts(&buf, "buf")
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if back[i] != vals[i] {
			t.Fatalf("round trip: %v vs %v", back, vals)
		}
	}
}

func TestFileHelpers(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "vals.txt")
	if err := WriteIntsFile(p, "hdr", []int64{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	vals, err := ReadIntsFile(p)
	if err != nil || len(vals) != 3 {
		t.Fatalf("vals=%v err=%v", vals, err)
	}
	if _, err := ReadIntsFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestReadDemandTraceValidates(t *testing.T) {
	dir := t.TempDir()
	ok := filepath.Join(dir, "d.txt")
	if err := WriteIntsFile(ok, "", []int64{5, 1, 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDemandTrace(ok); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "neg.txt")
	if err := WriteIntsFile(bad, "", []int64{5, -1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDemandTrace(bad); err == nil {
		t.Fatal("negative demand must fail")
	}
}

func TestReadTimedTraceValidates(t *testing.T) {
	dir := t.TempDir()
	ok := filepath.Join(dir, "t.txt")
	if err := WriteIntsFile(ok, "", []int64{0, 5, 5, 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTimedTrace(ok); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "unsorted.txt")
	if err := WriteIntsFile(bad, "", []int64{9, 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTimedTrace(bad); err == nil {
		t.Fatal("unsorted trace must fail")
	}
}

func TestCurveFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "g.wcurve")
	c := curve.MustNew([]int64{0, 9, 11, 20}, 3, 13)
	if err := WriteCurve(p, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCurve(p)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 12; k++ {
		if back.MustAt(k) != c.MustAt(k) {
			t.Fatalf("diverges at %d", k)
		}
	}
	garbage := filepath.Join(dir, "bad.wcurve")
	if err := os.WriteFile(garbage, []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCurve(garbage); err == nil {
		t.Fatal("garbage curve must fail")
	}
	if _, err := ReadCurve(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing curve must fail")
	}
}
