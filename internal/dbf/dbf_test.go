package dbf

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"wcm/internal/core"
	"wcm/internal/events"
	"wcm/internal/sched"
)

func TestValidation(t *testing.T) {
	if _, err := WCETTask("x", 0, 1, 1); !errors.Is(err, ErrBadTask) {
		t.Fatal("zero period must fail")
	}
	if _, err := WCETTask("x", 10, 0, 1); !errors.Is(err, ErrBadTask) {
		t.Fatal("zero deadline must fail")
	}
	if _, err := WCETTask("x", 10, 11, 1); !errors.Is(err, ErrBadTask) {
		t.Fatal("deadline > period must fail")
	}
	if _, err := WCETTask("x", 10, 10, 0); !errors.Is(err, ErrBadTask) {
		t.Fatal("zero wcet must fail")
	}
	if _, err := NewTaskSet(); !errors.Is(err, ErrEmptySet) {
		t.Fatal("empty set must fail")
	}
}

func TestJobsInAndDemand(t *testing.T) {
	task, err := WCETTask("t", 10, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		dt   int64
		jobs int64
	}{{0, 0}, {5, 0}, {6, 1}, {15, 1}, {16, 2}, {26, 3}, {100, 10}}
	for _, tc := range cases {
		if got := task.JobsIn(tc.dt); got != tc.jobs {
			t.Fatalf("JobsIn(%d) = %d, want %d", tc.dt, got, tc.jobs)
		}
		if got := task.DemandWCET(tc.dt); got != 3*tc.jobs {
			t.Fatalf("DemandWCET(%d) = %d", tc.dt, got)
		}
	}
}

func TestFeasibleEDFClassic(t *testing.T) {
	// U = 0.5 + 0.5 = 1 with implicit deadlines: exactly feasible.
	a, _ := WCETTask("a", 4, 4, 2)
	b, _ := WCETTask("b", 6, 6, 3)
	ts, err := NewTaskSet(a, b)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ts.FeasibleEDF(120)
	if err != nil || !v.Feasible {
		t.Fatalf("U=1 implicit-deadline set must be feasible: %+v %v", v, err)
	}
	// Tight deadlines break it: same demand due earlier.
	a2, _ := WCETTask("a", 4, 2, 2)
	b2, _ := WCETTask("b", 6, 3, 3)
	ts2, _ := NewTaskSet(a2, b2)
	v2, err := ts2.FeasibleEDF(120)
	if err != nil || v2.Feasible {
		t.Fatalf("constrained set must be infeasible: %+v %v", v2, err)
	}
	if v2.ViolationAt == 0 || v2.Demand <= v2.ViolationAt {
		t.Fatalf("violation not reported: %+v", v2)
	}
}

// The combined test (workload curves in the processor-demand criterion):
// accepts a set the classical dbf test rejects.
func TestFeasibleEDFCurveBeatsWCET(t *testing.T) {
	p := core.PollingTask{Period: 10, ThetaMin: 30, ThetaMax: 50, Ep: 9, Ec: 2}
	w, err := p.Workload(64)
	if err != nil {
		t.Fatal(err)
	}
	// Poller: T=D=10, WCET 9 but γᵘ(3)=20 ≪ 27. Worker consumes the slack.
	poller := Task{Name: "poller", Period: 10, Deadline: 10, Gamma: w.Upper}
	worker, err := WCETTask("worker", 40, 40, 16)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := NewTaskSet(poller, worker)
	if err != nil {
		t.Fatal(err)
	}
	classic, err := ts.FeasibleEDF(400)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := ts.FeasibleEDFCurve(400)
	if err != nil {
		t.Fatal(err)
	}
	if classic.Feasible {
		t.Fatalf("classical dbf test should reject (U=1.3): %+v", classic)
	}
	if !curve.Feasible {
		t.Fatalf("curve dbf test should accept: %+v", curve)
	}
	// Validate with EDF simulation over sampled polling traces.
	for seed := uint64(1); seed <= 10; seed++ {
		demands, err := events.PollingDemands(p.Period, p.ThetaMin, p.ThetaMax, p.Ep, p.Ec, 400, seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sched.SimulateEDF([]sched.Task{
			{Name: "poller", Period: 10, Demands: demands},
			{Name: "worker", Period: 40, Demands: []int64{16}},
		}, 4000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Misses != 0 {
			t.Fatalf("seed %d: EDF misses despite curve-feasibility", seed)
		}
	}
}

// Relation (5) analogue for EDF: curve feasibility is implied by classical
// feasibility.
func TestQuickCurveTestNoStricter(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		tasks := make([]Task, n)
		for i := range tasks {
			period := int64(4 + rng.Intn(20))
			deadline := 1 + rng.Int63n(period)
			trace := make(events.DemandTrace, 8+rng.Intn(20))
			for j := range trace {
				trace[j] = 1 + rng.Int63n(9)
			}
			w, err := core.FromTrace(trace, len(trace))
			if err != nil {
				return false
			}
			tasks[i] = Task{Name: "t", Period: period, Deadline: deadline, Gamma: w.Upper}
		}
		ts, err := NewTaskSet(tasks...)
		if err != nil {
			return false
		}
		classic, err := ts.FeasibleEDF(300)
		if err != nil {
			return false
		}
		curve, err := ts.FeasibleEDFCurve(300)
		if err != nil {
			return false
		}
		if classic.Feasible && !curve.Feasible {
			return false // would violate relation (5)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The classical processor-demand criterion is exact for synchronous
// periodic WCET tasks under EDF: cross-validate with the simulator.
func TestQuickFeasibilityMatchesEDFSimulation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		tasks := make([]Task, n)
		simTasks := make([]sched.Task, n)
		for i := range tasks {
			period := int64(3 + rng.Intn(10))
			wcet := 1 + rng.Int63n(period)
			task, err := WCETTask("t", period, period, wcet)
			if err != nil {
				return false
			}
			tasks[i] = task
			simTasks[i] = sched.Task{Name: "t", Period: period, Demands: []int64{wcet}}
		}
		ts, err := NewTaskSet(tasks...)
		if err != nil {
			return false
		}
		// Horizon: two hyperperiods bounds the synchronous busy period for
		// these small sets.
		horizon := int64(1)
		for _, t := range tasks {
			horizon = lcm(horizon, t.Period)
		}
		horizon *= 2
		v, err := ts.FeasibleEDF(horizon)
		if err != nil {
			return false
		}
		res, err := sched.SimulateEDF(simTasks, horizon)
		if err != nil {
			return false
		}
		if v.Feasible {
			return res.Misses == 0
		}
		return res.Misses > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTestPoints(t *testing.T) {
	a, _ := WCETTask("a", 4, 3, 1)
	b, _ := WCETTask("b", 6, 6, 1)
	ts, _ := NewTaskSet(a, b)
	pts, err := ts.TestPoints(14)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{3, 6, 7, 11, 12}
	if len(pts) != len(want) {
		t.Fatalf("points = %v, want %v", pts, want)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("points = %v, want %v", pts, want)
		}
	}
	if _, err := ts.TestPoints(0); !errors.Is(err, ErrBadHorizon) {
		t.Fatal("zero horizon must fail")
	}
}

func lcm(a, b int64) int64 {
	g := a
	x := b
	for x != 0 {
		g, x = x, g%x
	}
	return a / g * b
}
