// Package dbf implements demand-bound functions for sporadic real-time
// tasks with deadlines, and — realizing the claim of the paper's Related
// Work section that Baruah's characterization and workload curves "can be
// easily combined into a powerful analytical framework" — the variant in
// which each task's cumulative demand goes through its upper workload
// curve instead of k·WCET.
//
// For a sporadic task with period T, relative deadline D and WCET C, the
// classical demand-bound function is
//
//	dbf(t) = max(0, ⌊(t − D)/T⌋ + 1) · C
//
// — the largest execution demand with both release and deadline inside any
// window of length t. The processor-demand criterion states that a task
// set is EDF-feasible on a unit-speed processor iff Σ_i dbf_i(t) ≤ t for
// all t ≥ 0 (checked at absolute-deadline points).
//
// With a workload curve the job count is kept but the cost k·C becomes
// γᵘ(k):
//
//	dbf_γ(t) = γᵘ( max(0, ⌊(t − D)/T⌋ + 1) )
//
// Since γᵘ(k) ≤ k·γᵘ(1) = k·C, the curve-based test accepts every set the
// classical test accepts (the analogue of the paper's relation (5) for
// EDF).
package dbf

import (
	"errors"
	"fmt"
	"sort"

	"wcm/internal/curve"
)

// Errors returned by this package.
var (
	ErrEmptySet   = errors.New("dbf: empty task set")
	ErrBadTask    = errors.New("dbf: invalid task")
	ErrBadHorizon = errors.New("dbf: horizon must be > 0")
)

// Task is a sporadic task with a constrained deadline and an upper workload
// curve. For the classical single-WCET characterization use WCETTask.
type Task struct {
	Name     string
	Period   int64
	Deadline int64       // relative deadline, 0 < Deadline ≤ Period
	Gamma    curve.Curve // γᵘ; γᵘ(1) is the WCET
}

// WCETTask builds a task with γᵘ(k) = C·k.
func WCETTask(name string, period, deadline, wcet int64) (Task, error) {
	t := Task{Name: name, Period: period, Deadline: deadline, Gamma: curve.MustLinear(wcet)}
	if wcet <= 0 {
		return Task{}, fmt.Errorf("%w: %q wcet=%d", ErrBadTask, name, wcet)
	}
	if err := t.Validate(); err != nil {
		return Task{}, err
	}
	return t, nil
}

// Validate checks task invariants.
func (t Task) Validate() error {
	if t.Period <= 0 || t.Deadline <= 0 || t.Deadline > t.Period {
		return fmt.Errorf("%w: %q period=%d deadline=%d", ErrBadTask, t.Name, t.Period, t.Deadline)
	}
	if t.Gamma.PrefixLen() < 2 && !t.Gamma.Infinite() {
		return fmt.Errorf("%w: %q needs γᵘ(1)", ErrBadTask, t.Name)
	}
	if t.Gamma.MustAt(1) <= 0 {
		return fmt.Errorf("%w: %q has γᵘ(1)=%d", ErrBadTask, t.Name, t.Gamma.MustAt(1))
	}
	return nil
}

// WCET returns γᵘ(1).
func (t Task) WCET() int64 { return t.Gamma.MustAt(1) }

// JobsIn returns the maximum number of jobs with both release and absolute
// deadline inside a window of length dt: max(0, ⌊(dt − D)/T⌋ + 1).
func (t Task) JobsIn(dt int64) int64 {
	if dt < t.Deadline {
		return 0
	}
	return (dt-t.Deadline)/t.Period + 1
}

// DemandWCET returns the classical dbf(dt) = JobsIn(dt)·C.
func (t Task) DemandWCET(dt int64) int64 {
	return t.JobsIn(dt) * t.WCET()
}

// DemandCurve returns dbf_γ(dt) = γᵘ(JobsIn(dt)), extending finite curves
// by subadditive decomposition.
func (t Task) DemandCurve(dt int64) (int64, error) {
	k := t.JobsIn(dt)
	v, err := t.Gamma.UpperBoundAt(int(k))
	if err != nil {
		return 0, fmt.Errorf("dbf: %q γᵘ(%d): %w", t.Name, k, err)
	}
	return v, nil
}

// TaskSet is a set of sporadic tasks for EDF feasibility analysis.
type TaskSet []Task

// NewTaskSet validates the tasks.
func NewTaskSet(tasks ...Task) (TaskSet, error) {
	if len(tasks) == 0 {
		return nil, ErrEmptySet
	}
	ts := make(TaskSet, len(tasks))
	copy(ts, tasks)
	for _, t := range ts {
		if err := t.Validate(); err != nil {
			return nil, err
		}
	}
	return ts, nil
}

// Utilization returns Σ C_i/T_i under the WCET view.
func (ts TaskSet) Utilization() float64 {
	var u float64
	for _, t := range ts {
		u += float64(t.WCET()) / float64(t.Period)
	}
	return u
}

// TestPoints returns all absolute-deadline instants D_i + k·T_i up to the
// horizon — the only points where any dbf jumps, hence the only points the
// processor-demand criterion must check.
func (ts TaskSet) TestPoints(horizon int64) ([]int64, error) {
	if horizon <= 0 {
		return nil, ErrBadHorizon
	}
	seen := map[int64]bool{}
	var pts []int64
	for _, t := range ts {
		for d := t.Deadline; d <= horizon; d += t.Period {
			if !seen[d] {
				seen[d] = true
				pts = append(pts, d)
			}
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	return pts, nil
}

// Verdict is the outcome of a feasibility check.
type Verdict struct {
	Feasible    bool
	ViolationAt int64 // first t with demand > t (0 when feasible)
	Demand      int64 // demand at the violation point
}

// FeasibleEDF runs the classical processor-demand criterion over
// [0, horizon]: feasible iff Σ dbf_i(t) ≤ t at every deadline point.
func (ts TaskSet) FeasibleEDF(horizon int64) (Verdict, error) {
	return ts.feasible(horizon, func(t Task, dt int64) (int64, error) {
		return t.DemandWCET(dt), nil
	})
}

// FeasibleEDFCurve runs the workload-curve variant: Σ γᵘ_i(jobs_i(t)) ≤ t.
func (ts TaskSet) FeasibleEDFCurve(horizon int64) (Verdict, error) {
	return ts.feasible(horizon, Task.DemandCurve)
}

func (ts TaskSet) feasible(horizon int64, demand func(Task, int64) (int64, error)) (Verdict, error) {
	if len(ts) == 0 {
		return Verdict{}, ErrEmptySet
	}
	pts, err := ts.TestPoints(horizon)
	if err != nil {
		return Verdict{}, err
	}
	for _, t := range pts {
		var sum int64
		for _, task := range ts {
			d, err := demand(task, t)
			if err != nil {
				return Verdict{}, err
			}
			sum += d
		}
		if sum > t {
			return Verdict{Feasible: false, ViolationAt: t, Demand: sum}, nil
		}
	}
	return Verdict{Feasible: true}, nil
}
