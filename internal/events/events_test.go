package events

import (
	"errors"
	"testing"
	"testing/quick"
)

func testTypes(t *testing.T) *TypeSet {
	t.Helper()
	// Types of the paper's Fig. 1: a, b, c with distinct BCET/WCET. The
	// figure does not list numbers; these are chosen so that γ_b(3,4)=5 and
	// γ_w(3,4)=13 as stated in the paper's text.
	// Window (3,4) covers events 3..6 = a,b,c,c:
	//   bcet: 2+1+1+1 = 5   wcet: 4+3+3+3 = 13
	ts, err := NewTypeSet(
		Type{Name: "a", BCET: 2, WCET: 4},
		Type{Name: "b", BCET: 1, WCET: 3},
		Type{Name: "c", BCET: 1, WCET: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func fig1Sequence(t *testing.T) *Sequence {
	t.Helper()
	// Fig. 1 event sequence: a b a b c c a a c
	return MustNewSequence(testTypes(t), "a", "b", "a", "b", "c", "c", "a", "a", "c")
}

func TestTypeValidate(t *testing.T) {
	bad := []Type{
		{Name: "x", BCET: 0, WCET: 5},
		{Name: "x", BCET: -1, WCET: 5},
		{Name: "x", BCET: 6, WCET: 5},
	}
	for _, tp := range bad {
		if err := tp.Validate(); !errors.Is(err, ErrBadInterval) {
			t.Fatalf("Validate(%+v) = %v, want ErrBadInterval", tp, err)
		}
	}
	if err := (Type{Name: "ok", BCET: 1, WCET: 1}).Validate(); err != nil {
		t.Fatalf("point interval must be valid: %v", err)
	}
}

func TestTypeSet(t *testing.T) {
	ts := testTypes(t)
	if ts.Len() != 3 {
		t.Fatalf("Len = %d", ts.Len())
	}
	if got := ts.Names(); len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("Names = %v", got)
	}
	if _, err := ts.Lookup("zz"); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("Lookup(zz) err = %v", err)
	}
	if _, err := NewTypeSet(Type{Name: "a", BCET: 1, WCET: 1}, Type{Name: "a", BCET: 1, WCET: 2}); err == nil {
		t.Fatal("duplicate names must fail")
	}
	if _, err := NewTypeSet(Type{Name: "bad", BCET: 0, WCET: 1}); err == nil {
		t.Fatal("invalid interval must fail")
	}
}

func TestSequenceUnknownEvent(t *testing.T) {
	if _, err := NewSequence(testTypes(t), "a", "nope"); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("err = %v, want ErrUnknownType", err)
	}
}

// The worked example from the paper: for the Fig. 1 sequence,
// type(E_3) = a, γ_b(3,4) = 5 and γ_w(3,4) = 13.
func TestFig1PaperValues(t *testing.T) {
	s := fig1Sequence(t)
	tp, err := s.TypeAt(3)
	if err != nil || tp.Name != "a" {
		t.Fatalf("TypeAt(3) = %v, %v; want a", tp.Name, err)
	}
	gb, err := s.GammaB(3, 4)
	if err != nil || gb != 5 {
		t.Fatalf("γ_b(3,4) = %d, %v; want 5", gb, err)
	}
	gw, err := s.GammaW(3, 4)
	if err != nil || gw != 13 {
		t.Fatalf("γ_w(3,4) = %d, %v; want 13", gw, err)
	}
}

func TestGammaZeroWindowAndBounds(t *testing.T) {
	s := fig1Sequence(t)
	for j := 1; j <= s.Len(); j++ {
		gb, err := s.GammaB(j, 0)
		if err != nil || gb != 0 {
			t.Fatalf("γ_b(%d,0) = %d, %v", j, gb, err)
		}
	}
	if _, err := s.GammaW(0, 1); !errors.Is(err, ErrBadWindow) {
		t.Fatalf("γ_w(0,1) err = %v", err)
	}
	if _, err := s.GammaW(8, 3); !errors.Is(err, ErrBadWindow) {
		t.Fatalf("γ_w(8,3) beyond end err = %v", err)
	}
	if _, err := s.TypeAt(0); !errors.Is(err, ErrBadWindow) {
		t.Fatal("TypeAt(0) must fail (1-based)")
	}
}

func TestGammaBLeqGammaW(t *testing.T) {
	s := fig1Sequence(t)
	for j := 1; j <= s.Len(); j++ {
		for k := 0; j+k-1 <= s.Len(); k++ {
			gb, err1 := s.GammaB(j, k)
			gw, err2 := s.GammaW(j, k)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if gb > gw {
				t.Fatalf("γ_b(%d,%d)=%d > γ_w=%d", j, k, gb, gw)
			}
		}
	}
}

func TestWorstBestDemands(t *testing.T) {
	s := fig1Sequence(t)
	w, b := s.WorstDemands(), s.BestDemands()
	if len(w) != s.Len() || len(b) != s.Len() {
		t.Fatal("length mismatch")
	}
	if w[0] != 4 || b[0] != 2 {
		t.Fatalf("first event a: w=%d b=%d, want 4, 2", w[0], b[0])
	}
}

func TestDemandTrace(t *testing.T) {
	d := DemandTrace{3, 1, 4, 1, 5}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Total() != 14 || d.Max() != 5 || d.Min() != 1 {
		t.Fatalf("Total/Max/Min = %d/%d/%d", d.Total(), d.Max(), d.Min())
	}
	if err := (DemandTrace{}).Validate(); !errors.Is(err, ErrEmptyTrace) {
		t.Fatal("empty trace must fail")
	}
	if err := (DemandTrace{1, -2}).Validate(); err == nil {
		t.Fatal("negative demand must fail")
	}
	if (DemandTrace{}).Min() != 0 {
		t.Fatal("Min of empty = 0")
	}
}

func TestTimedTrace(t *testing.T) {
	tt := TimedTrace{0, 10, 10, 35}
	if err := tt.Validate(); err != nil {
		t.Fatal(err)
	}
	if tt.Span() != 35 {
		t.Fatalf("Span = %d", tt.Span())
	}
	if got := tt.CountIn(0, 11); got != 3 {
		t.Fatalf("CountIn(0,11) = %d, want 3", got)
	}
	if got := tt.CountIn(10, 1); got != 2 {
		t.Fatalf("CountIn(10,1) = %d, want 2", got)
	}
	if err := (TimedTrace{5, 3}).Validate(); !errors.Is(err, ErrUnsortedTime) {
		t.Fatal("unsorted must fail")
	}
	if (TimedTrace{}).Span() != 0 {
		t.Fatal("Span of empty = 0")
	}
}

func TestPeriodic(t *testing.T) {
	tt, err := Periodic(100, 25, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := TimedTrace{100, 125, 150, 175}
	for i := range want {
		if tt[i] != want[i] {
			t.Fatalf("Periodic[%d] = %d, want %d", i, tt[i], want[i])
		}
	}
	if _, err := Periodic(0, 0, 3); err == nil {
		t.Fatal("zero period must fail")
	}
}

func TestPeriodicJitterBounds(t *testing.T) {
	tt, err := PeriodicJitter(0, 100, 40, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := tt.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, ts := range tt {
		nominal := int64(i) * 100
		if ts < nominal || ts > nominal+40 {
			t.Fatalf("event %d at %d outside [%d,%d]", i, ts, nominal, nominal+40)
		}
	}
	if _, err := PeriodicJitter(0, 100, 200, 5, 1); err == nil {
		t.Fatal("jitter > period must fail")
	}
}

func TestSporadicGaps(t *testing.T) {
	tt, err := Sporadic(0, 30, 50, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(tt); i++ {
		gap := tt[i] - tt[i-1]
		if gap < 30 || gap > 50 {
			t.Fatalf("gap %d at %d outside [30,50]", gap, i)
		}
	}
	// Determinism: same seed, same trace.
	tt2, _ := Sporadic(0, 30, 50, 500, 42)
	for i := range tt {
		if tt[i] != tt2[i] {
			t.Fatal("Sporadic not deterministic")
		}
	}
	if _, err := Sporadic(0, 50, 30, 5, 1); err == nil {
		t.Fatal("max < min must fail")
	}
}

func TestBursty(t *testing.T) {
	tt, err := Bursty(0, 3, 4, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(tt) != 12 {
		t.Fatalf("len = %d, want 12", len(tt))
	}
	if err := tt.Validate(); err != nil {
		t.Fatal(err)
	}
	// First burst occupies [0,3], next starts at 103.
	if tt[3] != 3 || tt[4] != 103 {
		t.Fatalf("burst boundaries: %d, %d", tt[3], tt[4])
	}
	if _, err := Bursty(0, 0, 4, 1, 10); err == nil {
		t.Fatal("zero bursts must fail")
	}
}

func TestModalDemands(t *testing.T) {
	modes := []Mode{
		{Lo: 10, Hi: 20, MinRun: 3, MaxRun: 5},
		{Lo: 100, Hi: 100, MinRun: 1, MaxRun: 2},
	}
	d, err := ModalDemands(modes, 300, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 300 {
		t.Fatalf("len = %d", len(d))
	}
	for i, v := range d {
		if !(v >= 10 && v <= 20) && v != 100 {
			t.Fatalf("demand %d at %d outside both modes", v, i)
		}
	}
	if _, err := ModalDemands(nil, 5, 1); err == nil {
		t.Fatal("no modes must fail")
	}
	if _, err := ModalDemands([]Mode{{Lo: 5, Hi: 4, MinRun: 1, MaxRun: 1}}, 5, 1); err == nil {
		t.Fatal("bad mode interval must fail")
	}
}

func TestPollingDemands(t *testing.T) {
	// T=10, θ∈[30,50]: at most 1 event per 3 polls, at least 1 per 5 polls.
	d, err := PollingDemands(10, 30, 50, 9, 2, 600, 5)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, v := range d {
		switch v {
		case 9:
			hits++
		case 2:
		default:
			t.Fatalf("unexpected demand %d", v)
		}
	}
	// Hit fraction must be within [1/5, 1/3] up to boundary effects.
	frac := float64(hits) / float64(len(d))
	if frac < 0.18 || frac > 0.36 {
		t.Fatalf("hit fraction %.3f outside plausible [0.18,0.36]", frac)
	}
	if _, err := PollingDemands(100, 30, 50, 9, 2, 10, 1); err == nil {
		t.Fatal("T > θmin must fail (paper assumes T < θmin)")
	}
}

func TestLCGDeterminismAndRanges(t *testing.T) {
	g1, g2 := NewLCG(123), NewLCG(123)
	for i := 0; i < 100; i++ {
		if g1.Next() != g2.Next() {
			t.Fatal("LCG not deterministic")
		}
	}
	g := NewLCG(0) // remapped seed
	for i := 0; i < 1000; i++ {
		if v := g.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := g.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestQuickWindowAdditivity(t *testing.T) {
	// γ_w(j, k1+k2) = γ_w(j,k1) + γ_w(j+k1, k2): window sums decompose.
	s := fig1Sequence(t)
	f := func(jRaw, k1Raw, k2Raw uint8) bool {
		j := 1 + int(jRaw)%s.Len()
		rem := s.Len() - j + 1
		k1 := int(k1Raw) % (rem + 1)
		k2 := int(k2Raw) % (rem - k1 + 1)
		whole, err := s.GammaW(j, k1+k2)
		if err != nil {
			return false
		}
		p1, err := s.GammaW(j, k1)
		if err != nil {
			return false
		}
		p2, err := s.GammaW(j+k1, k2)
		if err != nil {
			return false
		}
		return whole == p1+p2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGaps(t *testing.T) {
	tt := TimedTrace{0, 10, 15, 40}
	g := tt.Gaps()
	want := []int64{10, 5, 25}
	if len(g) != len(want) {
		t.Fatalf("gaps = %v", g)
	}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("gaps = %v, want %v", g, want)
		}
	}
	if (TimedTrace{5}).Gaps() != nil {
		t.Fatal("single-event trace has no gaps")
	}
}

func TestMergeTimed(t *testing.T) {
	a := TimedTrace{0, 10, 20}
	b := TimedTrace{5, 10, 30}
	m, err := MergeTimed(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := TimedTrace{0, 5, 10, 10, 20, 30}
	if len(m) != len(want) {
		t.Fatalf("merged = %v", m)
	}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("merged = %v, want %v", m, want)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeTimed(); err == nil {
		t.Fatal("no traces must fail")
	}
	if _, err := MergeTimed(TimedTrace{5, 3}); err == nil {
		t.Fatal("unsorted input must fail")
	}
}
