package events

import (
	"fmt"
)

// LCG is a small deterministic linear congruential generator (Numerical
// Recipes constants). The package avoids math/rand so that generated
// workloads are stable across Go releases: traces baked into golden tests
// and EXPERIMENTS.md stay reproducible byte-for-byte.
type LCG struct {
	state uint64
}

// NewLCG seeds a generator. Seed 0 is remapped to a fixed odd constant.
func NewLCG(seed uint64) *LCG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &LCG{state: seed}
}

// Next returns the next raw 64-bit value.
func (g *LCG) Next() uint64 {
	g.state = g.state*6364136223846793005 + 1442695040888963407
	return g.state
}

// Intn returns a deterministic value in [0, n). n must be > 0.
func (g *LCG) Intn(n int64) int64 {
	if n <= 0 {
		panic(fmt.Sprintf("events: Intn(%d)", n))
	}
	// Use the high bits; low bits of an LCG are weak.
	return int64((g.Next() >> 11) % uint64(n))
}

// Float64 returns a deterministic value in [0, 1).
func (g *LCG) Float64() float64 {
	return float64(g.Next()>>11) / float64(1<<53)
}

// Periodic generates n timestamps with exact period T starting at t0.
func Periodic(t0, period int64, n int) (TimedTrace, error) {
	if period <= 0 || n <= 0 {
		return nil, fmt.Errorf("events: Periodic(period=%d, n=%d)", period, n)
	}
	tt := make(TimedTrace, n)
	for i := range tt {
		tt[i] = t0 + int64(i)*period
	}
	return tt, nil
}

// PeriodicJitter generates n timestamps with nominal period T and per-event
// jitter drawn uniformly from [0, jitter], deterministic in seed. Events
// remain ordered because jitter ≤ period is enforced.
func PeriodicJitter(t0, period, jitter int64, n int, seed uint64) (TimedTrace, error) {
	if period <= 0 || n <= 0 || jitter < 0 || jitter > period {
		return nil, fmt.Errorf("events: PeriodicJitter(period=%d, jitter=%d, n=%d)", period, jitter, n)
	}
	g := NewLCG(seed)
	tt := make(TimedTrace, n)
	for i := range tt {
		j := int64(0)
		if jitter > 0 {
			j = g.Intn(jitter + 1)
		}
		tt[i] = t0 + int64(i)*period + j
	}
	// Jitter ≤ period keeps ordering within one period boundary but two
	// consecutive events can still swap when jitter == period; sort-fix by a
	// single pass (cheap, trace stays deterministic).
	for i := 1; i < n; i++ {
		if tt[i] < tt[i-1] {
			tt[i] = tt[i-1]
		}
	}
	return tt, nil
}

// Sporadic generates n timestamps with inter-arrival times drawn uniformly
// from [minGap, maxGap], deterministic in seed. This realizes the paper's
// event stream with known θmin/θmax.
func Sporadic(t0, minGap, maxGap int64, n int, seed uint64) (TimedTrace, error) {
	if n <= 0 || minGap <= 0 || maxGap < minGap {
		return nil, fmt.Errorf("events: Sporadic(min=%d, max=%d, n=%d)", minGap, maxGap, n)
	}
	g := NewLCG(seed)
	tt := make(TimedTrace, n)
	t := t0
	for i := range tt {
		tt[i] = t
		gap := minGap
		if maxGap > minGap {
			gap += g.Intn(maxGap - minGap + 1)
		}
		t += gap
	}
	return tt, nil
}

// Bursty generates timestamps in bursts: bursts of size burstLen with
// intra-burst gap `inner`, separated by `outer`. Useful to stress arrival-
// curve extraction with high short-window counts.
func Bursty(t0 int64, bursts, burstLen int, inner, outer int64) (TimedTrace, error) {
	if bursts <= 0 || burstLen <= 0 || inner < 0 || outer <= 0 {
		return nil, fmt.Errorf("events: Bursty(bursts=%d, len=%d)", bursts, burstLen)
	}
	tt := make(TimedTrace, 0, bursts*burstLen)
	t := t0
	for b := 0; b < bursts; b++ {
		for i := 0; i < burstLen; i++ {
			tt = append(tt, t)
			if i < burstLen-1 {
				t += inner
			}
		}
		t += outer
	}
	return tt, nil
}

// ModalDemands generates a demand trace that alternates between modes, each
// mode holding for a run of activations with demands in the mode's
// [lo, hi] interval. This models the multi-mode processes of the SPI model
// that the paper cites (Ziegenbein et al., Wolf).
type Mode struct {
	Lo, Hi int64 // per-activation demand interval in this mode
	MinRun int   // minimum consecutive activations in this mode
	MaxRun int   // maximum consecutive activations in this mode
}

// ModalDemands produces n demands cycling deterministically through modes.
func ModalDemands(modes []Mode, n int, seed uint64) (DemandTrace, error) {
	if len(modes) == 0 || n <= 0 {
		return nil, fmt.Errorf("events: ModalDemands(%d modes, n=%d)", len(modes), n)
	}
	for i, m := range modes {
		if m.Lo <= 0 || m.Hi < m.Lo || m.MinRun <= 0 || m.MaxRun < m.MinRun {
			return nil, fmt.Errorf("events: bad mode %d: %+v", i, m)
		}
	}
	g := NewLCG(seed)
	d := make(DemandTrace, 0, n)
	mi := 0
	for len(d) < n {
		m := modes[mi%len(modes)]
		run := m.MinRun
		if m.MaxRun > m.MinRun {
			run += int(g.Intn(int64(m.MaxRun - m.MinRun + 1)))
		}
		for i := 0; i < run && len(d) < n; i++ {
			v := m.Lo
			if m.Hi > m.Lo {
				v += g.Intn(m.Hi - m.Lo + 1)
			}
			d = append(d, v)
		}
		mi++
	}
	return d, nil
}

// PollingDemands generates the demand trace of the paper's Example 1: a task
// polls with period T; when an event is pending it runs for ep cycles,
// otherwise ec. Event arrivals are sporadic in [θmin, θmax]. The function
// returns the demand of each of n polling activations.
func PollingDemands(pollPeriod, thetaMin, thetaMax, ep, ec int64, n int, seed uint64) (DemandTrace, error) {
	if pollPeriod <= 0 || thetaMin < pollPeriod || thetaMax < thetaMin || ep < ec || ec <= 0 || n <= 0 {
		return nil, fmt.Errorf("events: PollingDemands(T=%d, θ=[%d,%d], e=[%d,%d], n=%d)",
			pollPeriod, thetaMin, thetaMax, ec, ep, n)
	}
	// Generate enough sporadic events to cover n polls.
	horizon := int64(n+1) * pollPeriod
	approx := int(horizon/thetaMin) + 2
	evs, err := Sporadic(0, thetaMin, thetaMax, approx, seed)
	if err != nil {
		return nil, err
	}
	d := make(DemandTrace, n)
	next := 0 // next undetected event index
	for i := 0; i < n; i++ {
		pollAt := int64(i+1) * pollPeriod // poll i samples at the end of its period
		if next < len(evs) && evs[next] <= pollAt {
			d[i] = ep
			// All events up to pollAt are drained by this poll in the
			// simplest polling semantics; step one (one event per poll) is
			// the paper's model since T < θmin means at most one pending.
			next++
		} else {
			d[i] = ec
		}
	}
	return d, nil
}
