// Package events models typed event sequences that trigger tasks.
//
// Following Section 2.1 of the paper, a task τ is triggered by a sequence of
// events [E1, E2, E3, ...], each tagged with a type t from a finite set T.
// An event type carries an execution-requirement interval
// [bcet(t), wcet(t)] in processor cycles. The package provides:
//
//   - Type / TypeSet: the event-type alphabet with per-type BCET/WCET,
//   - Sequence: an ordered sequence of typed events with the γ_b/γ_w window
//     demand functions of the paper,
//   - DemandTrace: a concrete per-activation cycle-demand trace (the input
//     to workload-curve extraction),
//   - TimedTrace: a trace of event timestamps (the input to arrival-curve
//     extraction),
//   - deterministic generators used by tests, examples and benchmarks.
package events

import (
	"errors"
	"fmt"
	"sort"
)

// Errors returned by this package.
var (
	ErrUnknownType  = errors.New("events: unknown event type")
	ErrBadInterval  = errors.New("events: need 0 < bcet ≤ wcet")
	ErrEmptyTrace   = errors.New("events: empty trace")
	ErrUnsortedTime = errors.New("events: timestamps must be non-decreasing")
	ErrBadWindow    = errors.New("events: invalid window")
)

// Type is an event type with its execution-requirement interval, as in the
// SPI model the paper builds on: every execution triggered by an event of
// this type takes between BCET and WCET cycles.
type Type struct {
	Name string
	BCET int64 // best-case execution time, cycles, > 0
	WCET int64 // worst-case execution time, cycles, ≥ BCET
}

// Validate checks the interval invariant 0 < BCET ≤ WCET.
func (t Type) Validate() error {
	if t.BCET <= 0 || t.WCET < t.BCET {
		return fmt.Errorf("%w: type %q has [%d,%d]", ErrBadInterval, t.Name, t.BCET, t.WCET)
	}
	return nil
}

// TypeSet is the finite alphabet T of event types, indexed by name.
type TypeSet struct {
	types map[string]Type
}

// NewTypeSet builds a type set from the given types. Names must be unique
// and intervals valid.
func NewTypeSet(types ...Type) (*TypeSet, error) {
	ts := &TypeSet{types: make(map[string]Type, len(types))}
	for _, t := range types {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		if _, dup := ts.types[t.Name]; dup {
			return nil, fmt.Errorf("events: duplicate type %q", t.Name)
		}
		ts.types[t.Name] = t
	}
	return ts, nil
}

// MustNewTypeSet is NewTypeSet but panics on error.
func MustNewTypeSet(types ...Type) *TypeSet {
	ts, err := NewTypeSet(types...)
	if err != nil {
		panic(err)
	}
	return ts
}

// Lookup returns the type with the given name.
func (ts *TypeSet) Lookup(name string) (Type, error) {
	t, ok := ts.types[name]
	if !ok {
		return Type{}, fmt.Errorf("%w: %q", ErrUnknownType, name)
	}
	return t, nil
}

// Names returns the sorted type names.
func (ts *TypeSet) Names() []string {
	names := make([]string, 0, len(ts.types))
	for n := range ts.types {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of types in the set.
func (ts *TypeSet) Len() int { return len(ts.types) }

// Sequence is an ordered sequence of typed events triggering a task. It is
// the object on which the paper defines γ_b(j,k) and γ_w(j,k): the best- and
// worst-case cycles consumed by the k events starting at (1-based) index j.
type Sequence struct {
	set   *TypeSet
	types []Type // resolved types, in order
}

// NewSequence resolves the named events against the type set.
func NewSequence(set *TypeSet, names ...string) (*Sequence, error) {
	s := &Sequence{set: set, types: make([]Type, len(names))}
	for i, n := range names {
		t, err := set.Lookup(n)
		if err != nil {
			return nil, fmt.Errorf("events: event %d: %w", i+1, err)
		}
		s.types[i] = t
	}
	return s, nil
}

// MustNewSequence is NewSequence but panics on error.
func MustNewSequence(set *TypeSet, names ...string) *Sequence {
	s, err := NewSequence(set, names...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of events in the sequence.
func (s *Sequence) Len() int { return len(s.types) }

// TypeAt returns the type of the i-th event (1-based, matching the paper's
// indexing convention type(E_i)).
func (s *Sequence) TypeAt(i int) (Type, error) {
	if i < 1 || i > len(s.types) {
		return Type{}, fmt.Errorf("%w: index %d of %d", ErrBadWindow, i, len(s.types))
	}
	return s.types[i-1], nil
}

// GammaB computes γ_b(j,k) = Σ_{i=j}^{j+k-1} bcet(type(E_i)): the best-case
// cycles of the k events starting at 1-based index j. γ_b(j,0) = 0.
func (s *Sequence) GammaB(j, k int) (int64, error) { return s.window(j, k, false) }

// GammaW computes γ_w(j,k) = Σ_{i=j}^{j+k-1} wcet(type(E_i)): the worst-case
// cycles of the k events starting at 1-based index j. γ_w(j,0) = 0.
func (s *Sequence) GammaW(j, k int) (int64, error) { return s.window(j, k, true) }

func (s *Sequence) window(j, k int, worst bool) (int64, error) {
	if j < 1 || k < 0 || j+k-1 > len(s.types) {
		return 0, fmt.Errorf("%w: j=%d k=%d len=%d", ErrBadWindow, j, k, len(s.types))
	}
	var sum int64
	for i := j - 1; i < j-1+k; i++ {
		if worst {
			sum += s.types[i].WCET
		} else {
			sum += s.types[i].BCET
		}
	}
	return sum, nil
}

// WorstDemands returns the per-event WCET demand trace of the sequence.
func (s *Sequence) WorstDemands() DemandTrace {
	d := make(DemandTrace, len(s.types))
	for i, t := range s.types {
		d[i] = t.WCET
	}
	return d
}

// BestDemands returns the per-event BCET demand trace of the sequence.
func (s *Sequence) BestDemands() DemandTrace {
	d := make(DemandTrace, len(s.types))
	for i, t := range s.types {
		d[i] = t.BCET
	}
	return d
}

// DemandTrace is a sequence of per-activation processor-cycle demands — the
// concrete observed (or modelled) execution requirement of each task
// activation in order. Workload-curve extraction consumes this type.
type DemandTrace []int64

// Validate checks that the trace is non-empty with non-negative demands.
func (d DemandTrace) Validate() error {
	if len(d) == 0 {
		return ErrEmptyTrace
	}
	for i, v := range d {
		if v < 0 {
			return fmt.Errorf("events: negative demand %d at index %d", v, i)
		}
	}
	return nil
}

// Total returns the sum of all demands.
func (d DemandTrace) Total() int64 {
	var s int64
	for _, v := range d {
		s += v
	}
	return s
}

// Max returns the largest single demand (the empirical WCET of the trace).
func (d DemandTrace) Max() int64 {
	var m int64
	for _, v := range d {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the smallest single demand (the empirical BCET of the trace).
// Returns 0 for an empty trace.
func (d DemandTrace) Min() int64 {
	if len(d) == 0 {
		return 0
	}
	m := d[0]
	for _, v := range d[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// TimedTrace is a sequence of event timestamps in nanoseconds, sorted
// non-decreasing. Arrival-curve extraction consumes this type.
type TimedTrace []int64

// Validate checks the trace is non-empty and sorted.
func (tt TimedTrace) Validate() error {
	if len(tt) == 0 {
		return ErrEmptyTrace
	}
	for i := 1; i < len(tt); i++ {
		if tt[i] < tt[i-1] {
			return fmt.Errorf("%w: t[%d]=%d after t[%d]=%d", ErrUnsortedTime, i, tt[i], i-1, tt[i-1])
		}
	}
	return nil
}

// Span returns the time between first and last event.
func (tt TimedTrace) Span() int64 {
	if len(tt) == 0 {
		return 0
	}
	return tt[len(tt)-1] - tt[0]
}

// CountIn returns the number of events with timestamp in the half-open
// window [from, from+width).
func (tt TimedTrace) CountIn(from, width int64) int {
	lo := sort.Search(len(tt), func(i int) bool { return tt[i] >= from })
	hi := sort.Search(len(tt), func(i int) bool { return tt[i] >= from+width })
	return hi - lo
}

// Gaps returns the inter-arrival times of the trace (length len−1).
func (tt TimedTrace) Gaps() []int64 {
	if len(tt) < 2 {
		return nil
	}
	g := make([]int64, len(tt)-1)
	for i := 1; i < len(tt); i++ {
		g[i-1] = tt[i] - tt[i-1]
	}
	return g
}

// MergeTimed interleaves several timed traces into one sorted stream — the
// combined arrival process of multiple flows joining a queue (logical OR).
func MergeTimed(traces ...TimedTrace) (TimedTrace, error) {
	var total int
	for _, t := range traces {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		total += len(t)
	}
	if total == 0 {
		return nil, ErrEmptyTrace
	}
	out := make(TimedTrace, 0, total)
	idx := make([]int, len(traces))
	for len(out) < total {
		best := -1
		for s, t := range traces {
			if idx[s] >= len(t) {
				continue
			}
			if best < 0 || t[idx[s]] < traces[best][idx[best]] {
				best = s
			}
		}
		out = append(out, traces[best][idx[best]])
		idx[best]++
	}
	return out, nil
}
