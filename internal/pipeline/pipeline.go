// Package pipeline is the transaction-level model of the paper's streaming
// architecture (Fig. 5): a CBR compressed stream enters PE1 (VLD + IQ),
// partially decoded items flow through a FIFO to PE2 (IDCT + MC).
//
//	CBR bits ──► PE1 ──► FIFO(b) ──► PE2 ──► decoded output
//
// The model is work-conserving and transaction-level in the paper's sense:
// an item occupies PE1 for D1/F1 seconds once its bits have arrived and PE1
// is free, enters the FIFO at its PE1 completion instant, and occupies PE2
// for D2/F2 seconds in arrival order. Backlog is the Network-Calculus
// backlog of the FIFO node: items arrived but not yet fully processed by
// PE2 (the quantity bounded by eq. (7) and checked in Fig. 7).
package pipeline

import (
	"errors"
	"fmt"

	"wcm/internal/des"
	"wcm/internal/events"
)

// Errors returned by this package.
var (
	ErrNoItems   = errors.New("pipeline: no items")
	ErrBadConfig = errors.New("pipeline: invalid configuration")
)

// Item is one unit of work flowing through the pipeline (one macroblock in
// the case study).
type Item struct {
	Bits int64 // compressed size; gates PE1 start under CBR input
	D1   int64 // PE1 demand in cycles
	D2   int64 // PE2 demand in cycles
	// ReadyAt optionally delays the item's availability to PE1 to an
	// absolute time (ns): the item starts no earlier than
	// max(bit arrival, ReadyAt). The case study uses this for VBV-style
	// frame gating — frame f's macroblocks are released at its decode
	// timestamp, by which the VBV buffer guarantees all its bits arrived.
	ReadyAt int64
}

// Config holds the architecture parameters.
type Config struct {
	BitRate    int64   // CBR input rate, bits per second
	F1Hz       float64 // PE1 clock frequency
	F2Hz       float64 // PE2 clock frequency
	FifoCap    int     // FIFO capacity in items; 0 = unbounded (measurement mode)
	StartDelay int64   // ns before the first bit arrives
}

// Validate checks configuration invariants.
func (c Config) Validate() error {
	if c.BitRate <= 0 || c.F1Hz <= 0 || c.F2Hz <= 0 || c.FifoCap < 0 || c.StartDelay < 0 {
		return fmt.Errorf("%w: %+v", ErrBadConfig, c)
	}
	return nil
}

// Stats is the outcome of a pipeline run.
type Stats struct {
	// PE1Done[i] is the time item i left PE1 and entered the FIFO — the
	// "macroblock arrival process on the output of PE1" whose arrival curve
	// the case study extracts.
	PE1Done events.TimedTrace
	// PE2Done[i] is the time item i completed on PE2.
	PE2Done events.TimedTrace
	// MaxBacklog is the maximum number of items simultaneously inside the
	// FIFO node (arrived at the FIFO, not yet completed by PE2).
	MaxBacklog int
	// Overflowed reports whether MaxBacklog exceeded FifoCap (only with
	// FifoCap > 0).
	Overflowed bool
	// Finish is the completion time of the last item on PE2.
	Finish des.Time
	// PE1Busy / PE2Busy are the cumulative busy times.
	PE1Busy des.Time
	PE2Busy des.Time
}

// cyclesToNs converts a cycle demand to occupancy time at freq (Hz),
// rounding up to the next nanosecond (conservative).
func cyclesToNs(cycles int64, freqHz float64) int64 {
	ns := float64(cycles) * 1e9 / freqHz
	t := int64(ns)
	if float64(t) < ns {
		t++
	}
	if t < 1 && cycles > 0 {
		t = 1
	}
	return t
}

// Run simulates the pipeline over the given items using the discrete-event
// kernel and returns the trace statistics.
func Run(items []Item, cfg Config) (Stats, error) {
	if len(items) == 0 {
		return Stats{}, ErrNoItems
	}
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}

	eng := des.NewEngine()
	st := Stats{
		PE1Done: make(events.TimedTrace, len(items)),
		PE2Done: make(events.TimedTrace, len(items)),
	}

	// Bits of item i have fully arrived at StartDelay + ceil(cumBits_i/rate).
	bitsReady := make([]int64, len(items))
	var cum int64
	for i, it := range items {
		if it.Bits < 0 || it.D1 < 0 || it.D2 < 0 || it.ReadyAt < 0 {
			return Stats{}, fmt.Errorf("%w: item %d %+v", ErrBadConfig, i, it)
		}
		cum += it.Bits
		// ceil(cum * 1e9 / bitrate)
		num := cum * 1_000_000_000
		t := num / cfg.BitRate
		if num%cfg.BitRate != 0 {
			t++
		}
		bitsReady[i] = cfg.StartDelay + t
		if it.ReadyAt > bitsReady[i] {
			bitsReady[i] = it.ReadyAt
		}
	}

	backlog := 0
	fifoWaiting := 0 // items in FIFO not yet started on PE2
	pe2Free := true
	next2 := 0 // next item index PE2 will process (FIFO order)

	var startPE2 func()
	startPE2 = func() {
		if !pe2Free || fifoWaiting == 0 {
			return
		}
		i := next2
		next2++
		fifoWaiting--
		pe2Free = false
		d := cyclesToNs(items[i].D2, cfg.F2Hz)
		st.PE2Busy += d
		_ = eng.After(d, func() {
			st.PE2Done[i] = eng.Now()
			st.Finish = eng.Now()
			backlog--
			pe2Free = true
			startPE2()
		})
	}

	// PE1 processes items in order: start_i = max(finish_{i-1}, bitsReady_i).
	var schedulePE1 func(i int)
	schedulePE1 = func(i int) {
		if i >= len(items) {
			return
		}
		start := eng.Now()
		if bitsReady[i] > start {
			start = bitsReady[i]
		}
		d := cyclesToNs(items[i].D1, cfg.F1Hz)
		st.PE1Busy += d
		_ = eng.Schedule(start+d, func() {
			st.PE1Done[i] = eng.Now()
			backlog++
			fifoWaiting++
			if backlog > st.MaxBacklog {
				st.MaxBacklog = backlog
			}
			if cfg.FifoCap > 0 && backlog > cfg.FifoCap {
				st.Overflowed = true
			}
			startPE2()
			schedulePE1(i + 1)
		})
	}
	schedulePE1(0)
	eng.RunAll()
	return st, nil
}
