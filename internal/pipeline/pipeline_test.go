package pipeline

import (
	"errors"
	"testing"
	"testing/quick"

	"wcm/internal/events"
)

// referenceRun computes the pipeline behaviour with the closed-form
// recurrences (no DES): start1_i = max(done1_{i-1}, bitsReady_i),
// done1_i = start1_i + d1_i; start2_i = max(done2_{i-1}, done1_i),
// done2_i = start2_i + d2_i. Used to cross-validate the event-driven model.
func referenceRun(items []Item, cfg Config) (pe1, pe2 events.TimedTrace) {
	pe1 = make(events.TimedTrace, len(items))
	pe2 = make(events.TimedTrace, len(items))
	var cum, prev1, prev2 int64
	for i, it := range items {
		cum += it.Bits
		num := cum * 1_000_000_000
		ready := num / cfg.BitRate
		if num%cfg.BitRate != 0 {
			ready++
		}
		ready += cfg.StartDelay
		if it.ReadyAt > ready {
			ready = it.ReadyAt
		}
		start1 := prev1
		if ready > start1 {
			start1 = ready
		}
		done1 := start1 + cyclesToNs(it.D1, cfg.F1Hz)
		pe1[i] = done1
		prev1 = done1
		start2 := prev2
		if done1 > start2 {
			start2 = done1
		}
		done2 := start2 + cyclesToNs(it.D2, cfg.F2Hz)
		pe2[i] = done2
		prev2 = done2
	}
	return pe1, pe2
}

func defaultCfg() Config {
	return Config{BitRate: 1_000_000_000, F1Hz: 1e9, F2Hz: 1e9} // 1 bit/ns, 1 cycle/ns
}

func TestMatchesReferenceRecurrence(t *testing.T) {
	items := []Item{
		{Bits: 100, D1: 50, D2: 200},
		{Bits: 10, D1: 20, D2: 10},
		{Bits: 500, D1: 100, D2: 300},
		{Bits: 1, D1: 1, D2: 1},
	}
	cfg := defaultCfg()
	st, err := Run(items, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref1, ref2 := referenceRun(items, cfg)
	for i := range items {
		if st.PE1Done[i] != ref1[i] {
			t.Fatalf("PE1Done[%d] = %d, want %d", i, st.PE1Done[i], ref1[i])
		}
		if st.PE2Done[i] != ref2[i] {
			t.Fatalf("PE2Done[%d] = %d, want %d", i, st.PE2Done[i], ref2[i])
		}
	}
	if st.Finish != ref2[len(ref2)-1] {
		t.Fatalf("finish = %d, want %d", st.Finish, ref2[len(ref2)-1])
	}
}

func TestBacklogMeasurement(t *testing.T) {
	// PE2 is 100× slower than PE1: all items pile up in the FIFO.
	items := make([]Item, 10)
	for i := range items {
		items[i] = Item{Bits: 1, D1: 1, D2: 10_000}
	}
	cfg := Config{BitRate: 1_000_000_000, F1Hz: 1e9, F2Hz: 1e9}
	st, err := Run(items, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxBacklog < 8 {
		t.Fatalf("max backlog = %d, want near 10", st.MaxBacklog)
	}
	// Fast PE2: backlog never exceeds 1.
	for i := range items {
		items[i].D2 = 1
	}
	st2, err := Run(items, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st2.MaxBacklog > 1 {
		t.Fatalf("fast PE2 backlog = %d", st2.MaxBacklog)
	}
}

func TestOverflowFlag(t *testing.T) {
	items := make([]Item, 20)
	for i := range items {
		items[i] = Item{Bits: 1, D1: 1, D2: 100_000}
	}
	cfg := Config{BitRate: 1_000_000_000, F1Hz: 1e9, F2Hz: 1e9, FifoCap: 5}
	st, err := Run(items, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Overflowed {
		t.Fatal("expected overflow with cap 5")
	}
	cfg.FifoCap = 50
	st2, err := Run(items, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Overflowed {
		t.Fatal("cap 50 must not overflow for 20 items")
	}
}

func TestBitGatingPacesPE1(t *testing.T) {
	// 1000 bits per item at 1 bit/ns, negligible processing: PE1 output is
	// paced by bit arrival — one item per ~1000ns.
	items := make([]Item, 5)
	for i := range items {
		items[i] = Item{Bits: 1000, D1: 1, D2: 1}
	}
	st, err := Run(items, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(items); i++ {
		gap := st.PE1Done[i] - st.PE1Done[i-1]
		if gap < 999 || gap > 1001 {
			t.Fatalf("gap %d between items %d,%d; want ≈1000", gap, i-1, i)
		}
	}
}

func TestStartDelayShiftsEverything(t *testing.T) {
	items := []Item{{Bits: 10, D1: 5, D2: 5}}
	cfg := defaultCfg()
	base, err := Run(items, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.StartDelay = 1000
	shifted, err := Run(items, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if shifted.PE1Done[0] != base.PE1Done[0]+1000 {
		t.Fatalf("delay not applied: %d vs %d", shifted.PE1Done[0], base.PE1Done[0])
	}
}

func TestReadyAtGatesRelease(t *testing.T) {
	// Tiny bits (arrive immediately) but explicit release times: PE1 output
	// must follow ReadyAt, modelling VBV frame gating.
	items := []Item{
		{Bits: 1, D1: 10, D2: 1, ReadyAt: 1000},
		{Bits: 1, D1: 10, D2: 1, ReadyAt: 1000},
		{Bits: 1, D1: 10, D2: 1, ReadyAt: 5000},
	}
	st, err := Run(items, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if st.PE1Done[0] != 1010 || st.PE1Done[1] != 1020 {
		t.Fatalf("first burst at %d, %d; want 1010, 1020", st.PE1Done[0], st.PE1Done[1])
	}
	if st.PE1Done[2] != 5010 {
		t.Fatalf("gated item done at %d, want 5010", st.PE1Done[2])
	}
	if _, err := Run([]Item{{Bits: 1, D1: 1, D2: 1, ReadyAt: -5}}, defaultCfg()); !errors.Is(err, ErrBadConfig) {
		t.Fatal("negative ReadyAt must fail")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(nil, defaultCfg()); !errors.Is(err, ErrNoItems) {
		t.Fatal("no items must fail")
	}
	bad := defaultCfg()
	bad.BitRate = 0
	if _, err := Run([]Item{{Bits: 1, D1: 1, D2: 1}}, bad); !errors.Is(err, ErrBadConfig) {
		t.Fatal("zero bitrate must fail")
	}
	if _, err := Run([]Item{{Bits: -1, D1: 1, D2: 1}}, defaultCfg()); !errors.Is(err, ErrBadConfig) {
		t.Fatal("negative bits must fail")
	}
}

func TestCyclesToNsRoundsUp(t *testing.T) {
	if got := cyclesToNs(3, 2e9); got != 2 { // 1.5ns → 2
		t.Fatalf("cyclesToNs(3, 2GHz) = %d, want 2", got)
	}
	if got := cyclesToNs(1, 1e12); got != 1 { // sub-ns work still occupies 1ns
		t.Fatalf("cyclesToNs(1, 1THz) = %d, want 1", got)
	}
	if got := cyclesToNs(0, 1e9); got != 0 {
		t.Fatalf("cyclesToNs(0) = %d", got)
	}
}

// Work conservation and FIFO order: PE2 completions are ordered and every
// item completes after its PE1 completion.
func TestQuickPipelineInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		g := events.NewLCG(seed)
		n := 3 + int(g.Intn(30))
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{Bits: 1 + g.Intn(500), D1: g.Intn(300), D2: g.Intn(300)}
		}
		cfg := Config{BitRate: 500_000_000, F1Hz: 5e8, F2Hz: 3e8}
		st, err := Run(items, cfg)
		if err != nil {
			return false
		}
		ref1, ref2 := referenceRun(items, cfg)
		for i := 0; i < n; i++ {
			if st.PE1Done[i] != ref1[i] || st.PE2Done[i] != ref2[i] {
				return false
			}
			if st.PE2Done[i] < st.PE1Done[i] {
				return false
			}
			if i > 0 && (st.PE1Done[i] < st.PE1Done[i-1] || st.PE2Done[i] < st.PE2Done[i-1]) {
				return false
			}
		}
		return st.MaxBacklog >= 1 && st.MaxBacklog <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
