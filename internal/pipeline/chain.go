package pipeline

import (
	"fmt"

	"wcm/internal/des"
	"wcm/internal/events"
)

// ChainItem is one unit of work flowing through an N-stage pipeline.
type ChainItem struct {
	Bits    int64   // compressed size; gates stage 0 under CBR input
	ReadyAt int64   // optional absolute release time (VBV-style gating)
	D       []int64 // D[s] = cycle demand at stage s (len = number of stages)
}

// StageConfig is one processing element of a chain.
type StageConfig struct {
	Name    string
	Hz      float64 // clock frequency, > 0
	FifoCap int     // capacity of the FIFO in FRONT of this stage; 0 = unbounded
}

// ChainConfig holds the N-stage architecture parameters.
type ChainConfig struct {
	BitRate    int64 // CBR input rate in bits/s (gates stage 0)
	StartDelay int64 // ns before the first bit arrives
	Stages     []StageConfig
}

// Validate checks configuration invariants.
func (c ChainConfig) Validate() error {
	if c.BitRate <= 0 || c.StartDelay < 0 || len(c.Stages) == 0 {
		return fmt.Errorf("%w: %+v", ErrBadConfig, c)
	}
	for i, s := range c.Stages {
		if s.Hz <= 0 || s.FifoCap < 0 {
			return fmt.Errorf("%w: stage %d %+v", ErrBadConfig, i, s)
		}
	}
	return nil
}

// ChainStats is the outcome of a chain simulation.
type ChainStats struct {
	// Done[s][i] is the completion time of item i at stage s. Done[s] is
	// the arrival trace of the FIFO in front of stage s+1.
	Done []events.TimedTrace
	// MaxBacklog[s] is the peak occupancy of the FIFO node in front of
	// stage s (items completed by stage s−1 — or released, for s = 0 —
	// but not yet completed by stage s).
	MaxBacklog []int
	// Overflowed[s] reports MaxBacklog[s] > FifoCap[s] (only when the cap
	// is non-zero).
	Overflowed []bool
	// Busy[s] is the cumulative busy time of stage s.
	Busy []des.Time
	// Finish is the completion time of the last item at the last stage.
	Finish des.Time
}

// RunChain simulates the N-stage pipeline: stage 0 consumes items as their
// bits arrive over the CBR link (and not before ReadyAt), every later stage
// consumes its predecessor's completions in FIFO order. The model follows
// the same closed-form recurrences as the two-PE Run (which it generalizes):
//
//	done[0][i] = max(done[0][i−1], bitsReady[i]) + D[0][i]/F0
//	done[s][i] = max(done[s][i−1], done[s−1][i]) + D[s][i]/Fs
func RunChain(items []ChainItem, cfg ChainConfig) (ChainStats, error) {
	if len(items) == 0 {
		return ChainStats{}, ErrNoItems
	}
	if err := cfg.Validate(); err != nil {
		return ChainStats{}, err
	}
	nStages := len(cfg.Stages)
	for i, it := range items {
		if it.Bits < 0 || it.ReadyAt < 0 || len(it.D) != nStages {
			return ChainStats{}, fmt.Errorf("%w: item %d %+v", ErrBadConfig, i, it)
		}
		for s, d := range it.D {
			if d < 0 {
				return ChainStats{}, fmt.Errorf("%w: item %d stage %d demand %d", ErrBadConfig, i, s, d)
			}
		}
	}

	st := ChainStats{
		Done:       make([]events.TimedTrace, nStages),
		MaxBacklog: make([]int, nStages),
		Overflowed: make([]bool, nStages),
		Busy:       make([]des.Time, nStages),
	}
	for s := range st.Done {
		st.Done[s] = make(events.TimedTrace, len(items))
	}

	// Release times at stage 0.
	release := make([]int64, len(items))
	var cum int64
	for i, it := range items {
		cum += it.Bits
		num := cum * 1_000_000_000
		t := num / cfg.BitRate
		if num%cfg.BitRate != 0 {
			t++
		}
		t += cfg.StartDelay
		if it.ReadyAt > t {
			t = it.ReadyAt
		}
		release[i] = t
	}

	prevDone := events.TimedTrace(release) // "stage −1" completions
	for s := 0; s < nStages; s++ {
		var prevFinish int64
		for i := range items {
			start := prevFinish
			if prevDone[i] > start {
				start = prevDone[i]
			}
			d := cyclesToNs(items[i].D[s], cfg.Stages[s].Hz)
			st.Busy[s] += d
			finish := start + d
			st.Done[s][i] = finish
			prevFinish = finish
		}
		// Backlog of the FIFO node in front of stage s: arrivals are
		// prevDone, departures are st.Done[s]. Peak occupancy by sweep.
		st.MaxBacklog[s] = peakOccupancy(prevDone, st.Done[s])
		if cap := cfg.Stages[s].FifoCap; cap > 0 && st.MaxBacklog[s] > cap {
			st.Overflowed[s] = true
		}
		prevDone = st.Done[s]
	}
	st.Finish = st.Done[nStages-1][len(items)-1]
	return st, nil
}

// peakOccupancy computes the maximum number of items that have arrived but
// not departed, given per-item arrival and departure times with FIFO order
// (arrivals and departures each non-decreasing, departure[i] ≥ arrival[i]).
func peakOccupancy(arrivals, departures events.TimedTrace) int {
	peak, inside := 0, 0
	ai, di := 0, 0
	for ai < len(arrivals) {
		// Process the earlier event first; arrivals before departures at
		// ties (occupancy counts an item during its service).
		if arrivals[ai] <= departures[di] {
			inside++
			ai++
			if inside > peak {
				peak = inside
			}
		} else {
			inside--
			di++
		}
	}
	return peak
}
