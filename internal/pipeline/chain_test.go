package pipeline

import (
	"errors"
	"testing"
	"testing/quick"

	"wcm/internal/events"
)

func TestRunChainMatchesTwoStageRun(t *testing.T) {
	// A 2-stage chain must reproduce the dedicated two-PE model exactly.
	g := events.NewLCG(5)
	n := 40
	items2 := make([]Item, n)
	itemsC := make([]ChainItem, n)
	for i := 0; i < n; i++ {
		bits := 1 + g.Intn(400)
		d1 := g.Intn(200)
		d2 := g.Intn(300)
		items2[i] = Item{Bits: bits, D1: d1, D2: d2}
		itemsC[i] = ChainItem{Bits: bits, D: []int64{d1, d2}}
	}
	cfg2 := Config{BitRate: 500_000_000, F1Hz: 7e8, F2Hz: 4e8}
	cfgC := ChainConfig{BitRate: 500_000_000, Stages: []StageConfig{
		{Name: "pe1", Hz: 7e8},
		{Name: "pe2", Hz: 4e8},
	}}
	st2, err := Run(items2, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	stC, err := RunChain(itemsC, cfgC)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if stC.Done[0][i] != st2.PE1Done[i] {
			t.Fatalf("stage0 done[%d] = %d vs %d", i, stC.Done[0][i], st2.PE1Done[i])
		}
		if stC.Done[1][i] != st2.PE2Done[i] {
			t.Fatalf("stage1 done[%d] = %d vs %d", i, stC.Done[1][i], st2.PE2Done[i])
		}
	}
	if stC.Finish != st2.Finish {
		t.Fatalf("finish %d vs %d", stC.Finish, st2.Finish)
	}
	// The two-PE FIFO backlog equals the chain's stage-1 backlog.
	if stC.MaxBacklog[1] != st2.MaxBacklog {
		t.Fatalf("backlog %d vs %d", stC.MaxBacklog[1], st2.MaxBacklog)
	}
}

func TestRunChainValidation(t *testing.T) {
	if _, err := RunChain(nil, ChainConfig{BitRate: 1, Stages: []StageConfig{{Hz: 1}}}); !errors.Is(err, ErrNoItems) {
		t.Fatal("no items must fail")
	}
	items := []ChainItem{{Bits: 1, D: []int64{1}}}
	if _, err := RunChain(items, ChainConfig{BitRate: 0, Stages: []StageConfig{{Hz: 1}}}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("zero bitrate must fail")
	}
	if _, err := RunChain(items, ChainConfig{BitRate: 1, Stages: nil}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("no stages must fail")
	}
	// Demand arity mismatch.
	if _, err := RunChain(items, ChainConfig{BitRate: 1, Stages: []StageConfig{{Hz: 1}, {Hz: 1}}}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("demand arity mismatch must fail")
	}
	bad := []ChainItem{{Bits: 1, D: []int64{-1}}}
	if _, err := RunChain(bad, ChainConfig{BitRate: 1, Stages: []StageConfig{{Hz: 1}}}); !errors.Is(err, ErrBadConfig) {
		t.Fatal("negative demand must fail")
	}
}

func TestRunChainThreeStageBottleneck(t *testing.T) {
	// Middle stage is 10× slower: its FIFO accumulates, others stay small.
	n := 50
	items := make([]ChainItem, n)
	for i := range items {
		items[i] = ChainItem{Bits: 1, D: []int64{10, 10, 10}}
	}
	cfg := ChainConfig{BitRate: 1_000_000_000, Stages: []StageConfig{
		{Name: "fast1", Hz: 1e9},
		{Name: "slow", Hz: 1e8, FifoCap: 10},
		{Name: "fast2", Hz: 1e9},
	}}
	st, err := RunChain(items, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxBacklog[1] < 20 {
		t.Fatalf("bottleneck backlog = %d, want large", st.MaxBacklog[1])
	}
	if !st.Overflowed[1] {
		t.Fatal("bottleneck must overflow its cap of 10")
	}
	if st.MaxBacklog[2] > 2 {
		t.Fatalf("post-bottleneck backlog = %d, want ≤ 2", st.MaxBacklog[2])
	}
	if st.Overflowed[0] || st.Overflowed[2] {
		t.Fatal("unbounded FIFOs cannot overflow")
	}
}

func TestRunChainReadyAtGating(t *testing.T) {
	items := []ChainItem{
		{Bits: 1, ReadyAt: 1000, D: []int64{10, 10}},
		{Bits: 1, ReadyAt: 1000, D: []int64{10, 10}},
	}
	cfg := ChainConfig{BitRate: 1_000_000_000, Stages: []StageConfig{{Hz: 1e9}, {Hz: 1e9}}}
	st, err := RunChain(items, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done[0][0] != 1010 || st.Done[0][1] != 1020 {
		t.Fatalf("gated stage-0 completions: %v", st.Done[0])
	}
}

func TestPeakOccupancy(t *testing.T) {
	arr := events.TimedTrace{0, 1, 2, 3}
	dep := events.TimedTrace{5, 6, 7, 8}
	if got := peakOccupancy(arr, dep); got != 4 {
		t.Fatalf("peak = %d, want 4", got)
	}
	dep2 := events.TimedTrace{1, 2, 3, 4}
	// Tie handling: item arriving at t counts before the departure at t.
	if got := peakOccupancy(arr, dep2); got != 2 {
		t.Fatalf("peak = %d, want 2", got)
	}
}

// Chain invariants: per-stage completions are ordered, each stage finishes
// an item no earlier than its predecessor, busy times are conserved.
func TestQuickChainInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		g := events.NewLCG(seed)
		n := 3 + int(g.Intn(30))
		stages := 1 + int(g.Intn(4))
		items := make([]ChainItem, n)
		for i := range items {
			d := make([]int64, stages)
			for s := range d {
				d[s] = g.Intn(200)
			}
			items[i] = ChainItem{Bits: 1 + g.Intn(300), D: d}
		}
		cfg := ChainConfig{BitRate: 300_000_000, Stages: make([]StageConfig, stages)}
		for s := range cfg.Stages {
			cfg.Stages[s] = StageConfig{Hz: float64(1+g.Intn(9)) * 1e8}
		}
		st, err := RunChain(items, cfg)
		if err != nil {
			return false
		}
		for s := 0; s < stages; s++ {
			for i := 0; i < n; i++ {
				if i > 0 && st.Done[s][i] < st.Done[s][i-1] {
					return false
				}
				if s > 0 && st.Done[s][i] < st.Done[s-1][i] {
					return false
				}
			}
			if st.MaxBacklog[s] < 1 || st.MaxBacklog[s] > n {
				return false
			}
		}
		return st.Finish == st.Done[stages-1][n-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
