package casestudy

import (
	"fmt"

	"wcm/internal/arrival"
	"wcm/internal/curve"
	"wcm/internal/netcalc"
)

// BufferPoint is one row of the ABL-BUFFER ablation: the minimum PE2
// frequencies for a given FIFO size.
type BufferPoint struct {
	BufferMBs int
	FGammaHz  float64
	FWCETHz   float64
}

// BufferSweep recomputes eq. (9) and eq. (10) for each buffer size, reusing
// the analysis's extracted spans and curves (no re-simulation needed: the
// buffer only enters the frequency computation).
func BufferSweep(a *Analysis, buffers []int) ([]BufferPoint, error) {
	out := make([]BufferPoint, 0, len(buffers))
	for _, b := range buffers {
		if b < 1 || b >= a.Spans.MaxK() {
			return nil, fmt.Errorf("%w: buffer %d outside 1..%d", ErrBadParams, b, a.Spans.MaxK()-1)
		}
		fg, err := netcalc.MinFrequency(a.Spans, a.Gamma.Upper, b)
		if err != nil {
			return nil, err
		}
		fw, err := netcalc.MinFrequencyWCET(a.Spans, a.Gamma.WCET(), b)
		if err != nil {
			return nil, err
		}
		out = append(out, BufferPoint{BufferMBs: b, FGammaHz: fg.Hz, FWCETHz: fw.Hz})
	}
	return out, nil
}

// WindowPoint is one row of the ABL-WINDOW ablation: curve tightness and
// the resulting frequency bound when the trace-analysis window is
// truncated to fewer frames.
type WindowPoint struct {
	WindowFrames int
	// GammaPerMB is γᵘ(K)/K at the window end — the effective per-event
	// demand the analysis can prove (lower = tighter).
	GammaPerMB float64
	FGammaHz   float64
}

// WindowSweep quantifies what a shorter trace-analysis window costs: the
// curves are truncated to each window length and then extended back to the
// full analysis range by their additivity properties — γᵘ by subadditive
// decomposition (a valid but looser upper bound), d(k) by superadditive
// decomposition (a valid but looser lower bound) — before recomputing
// eq. (9). Short windows therefore yield Fᵞmin at or above the full-window
// value; the sweep shows how quickly the bound tightens with window length.
func WindowSweep(a *Analysis, windowsFrames []int) ([]WindowPoint, error) {
	perFrame := a.Params.stream().MBPerFrame()
	fullK := a.Spans.MaxK()
	out := make([]WindowPoint, 0, len(windowsFrames))
	for _, wf := range windowsFrames {
		m := wf * perFrame
		if wf < 1 || m < 2 || m > fullK {
			return nil, fmt.Errorf("%w: window %d frames outside extracted range", ErrBadParams, wf)
		}
		// Conservative extensions to the full range.
		gammaVals := make([]int64, fullK+1)
		spanVals := make(arrival.Spans, fullK)
		short, err := a.Gamma.Upper.Truncate(m)
		if err != nil {
			return nil, err
		}
		for k := 1; k <= fullK; k++ {
			gv, err := short.UpperBoundAt(k)
			if err != nil {
				return nil, err
			}
			gammaVals[k] = gv
			// Superadditive span extension over event GAPS: k events have
			// k−1 gaps; d(m) covers m−1 gaps, so
			// d(k) ≥ q·d(m) + d(r+1) with k−1 = q·(m−1) + r.
			gaps := k - 1
			q, r := gaps/(m-1), gaps%(m-1)
			dm, _ := a.Spans.At(m)
			var dr int64
			if r > 0 {
				dr, _ = a.Spans.At(r + 1)
			}
			spanVals[k-1] = int64(q)*dm + dr
		}
		gamma, err := curve.NewFinite(gammaVals)
		if err != nil {
			return nil, err
		}
		fg, err := netcalc.MinFrequency(spanVals, gamma, a.Params.BufferMBs)
		if err != nil {
			return nil, err
		}
		out = append(out, WindowPoint{
			WindowFrames: wf,
			GammaPerMB:   float64(gamma.MustAt(fullK)) / float64(fullK),
			FGammaHz:     fg.Hz,
		})
	}
	return out, nil
}
