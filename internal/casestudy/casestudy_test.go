package casestudy

import (
	"errors"
	"testing"

	"wcm/internal/mpeg2"
	"wcm/internal/netcalc"
	"wcm/internal/service"
)

// fastParams returns a small configuration (few frames, few clips) for
// quick tests; the full-size experiment lives in cmd/paperfigs and the
// benchmark harness.
func fastParams(clips int) Params {
	p := DefaultParams(4)
	p.Clips = mpeg2.Library()[:clips]
	return p
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{Frames: 1, WindowFrames: 1, BufferMBs: 1, F1Hz: 1, Clips: mpeg2.Library()},
		{Frames: 4, WindowFrames: 0, BufferMBs: 1, F1Hz: 1, Clips: mpeg2.Library()},
		{Frames: 4, WindowFrames: 5, BufferMBs: 1, F1Hz: 1, Clips: mpeg2.Library()},
		{Frames: 4, WindowFrames: 2, BufferMBs: 0, F1Hz: 1, Clips: mpeg2.Library()},
		{Frames: 4, WindowFrames: 2, BufferMBs: 1, F1Hz: 0, Clips: mpeg2.Library()},
		{Frames: 4, WindowFrames: 2, BufferMBs: 1, F1Hz: 1, Clips: nil},
	}
	for i, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrBadParams) {
			t.Fatalf("case %d must fail, got %v", i, err)
		}
	}
	if err := DefaultParams(24).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultParamsWindowCap(t *testing.T) {
	if p := DefaultParams(100); p.WindowFrames != 24 {
		t.Fatalf("window = %d, want paper's 24", p.WindowFrames)
	}
	if p := DefaultParams(10); p.WindowFrames != 5 {
		t.Fatalf("window = %d, want frames/2", p.WindowFrames)
	}
	if p := DefaultParams(2); p.WindowFrames != 1 {
		t.Fatalf("window = %d, want 1", p.WindowFrames)
	}
}

func TestBuildClipTraceShape(t *testing.T) {
	p := fastParams(1)
	ct, err := BuildClipTrace(p, p.Clips[0])
	if err != nil {
		t.Fatal(err)
	}
	wantLen := p.Frames * 1620
	if len(ct.Items) != wantLen || len(ct.Arrivals) != wantLen || len(ct.D2) != wantLen {
		t.Fatalf("lengths: items=%d arrivals=%d d2=%d, want %d",
			len(ct.Items), len(ct.Arrivals), len(ct.D2), wantLen)
	}
	if err := ct.Arrivals.Validate(); err != nil {
		t.Fatalf("arrival trace not sorted: %v", err)
	}
	// VBV gating: macroblocks of frame f are never emitted before
	// startup + f·40ms.
	for i, at := range ct.Arrivals {
		frame := int64(i / 1620)
		if at < frame*40_000_000 {
			t.Fatalf("MB %d emitted at %d, before its frame cadence", i, at)
		}
	}
}

func TestAnalyzeInvariants(t *testing.T) {
	p := fastParams(3)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Traces) != 3 {
		t.Fatalf("traces = %d", len(a.Traces))
	}
	// Relation from the paper: Fᵞmin ≤ Fʷmin always.
	if a.FGamma.Hz > a.FWCET.Hz+1e-6 {
		t.Fatalf("Fγ %g > Fw %g", a.FGamma.Hz, a.FWCET.Hz)
	}
	if a.Savings() <= 0 {
		t.Fatalf("no savings: %g", a.Savings())
	}
	// Computed Fγ satisfies eq. (8); 0.9·Fγ must not.
	beta, _ := service.Full(a.FGamma.Hz * (1 + 1e-9))
	ok, err := netcalc.CheckServiceConstraint(a.Spans, beta, a.Gamma.Upper, p.BufferMBs)
	if err != nil || !ok {
		t.Fatalf("Fγ violates eq. 8: %v %v", ok, err)
	}
	lower, _ := service.Full(a.FGamma.Hz * 0.9)
	ok, err = netcalc.CheckServiceConstraint(a.Spans, lower, a.Gamma.Upper, p.BufferMBs)
	if err != nil || ok {
		t.Fatalf("0.9·Fγ still satisfies eq. 8 — Fγ not minimal")
	}
	// The merged γᵘ must dominate every per-clip trace curve at k=1:
	// WCET is the global maximum single-MB demand.
	for _, tr := range a.Traces {
		if tr.D2.Max() > a.Gamma.WCET() {
			t.Fatalf("clip %s has demand %d > merged WCET %d",
				tr.Clip.Name, tr.D2.Max(), a.Gamma.WCET())
		}
	}
}

// The end-to-end guarantee of eq. (8): simulating at Fᵞmin (with rounding
// headroom) never overflows the buffer — the Fig. 7 property.
func TestBacklogGuaranteeAtFGamma(t *testing.T) {
	p := fastParams(3)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateBacklogs(p, a.Traces, a.FGamma.Hz*1.001)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	for _, r := range res {
		if r.Overflowed || r.Normalized > 1 {
			t.Fatalf("clip %s overflowed: backlog %d (%.3f)", r.Clip, r.MaxBacklog, r.Normalized)
		}
		if r.MaxBacklog <= 0 {
			t.Fatalf("clip %s reports no backlog at all", r.Clip)
		}
	}
}

// Backlogs grow when PE2 slows down.
func TestBacklogMonotoneInFrequency(t *testing.T) {
	p := fastParams(2)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := SimulateBacklogs(p, a.Traces, a.FGamma.Hz*2)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := SimulateBacklogs(p, a.Traces, a.FGamma.Hz)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fast {
		if fast[i].MaxBacklog > slow[i].MaxBacklog {
			t.Fatalf("clip %s: backlog at 2F (%d) exceeds backlog at F (%d)",
				fast[i].Clip, fast[i].MaxBacklog, slow[i].MaxBacklog)
		}
	}
	if _, err := SimulateBacklogs(p, a.Traces, 0); !errors.Is(err, ErrBadParams) {
		t.Fatal("zero frequency must fail")
	}
}

// The savings mechanism: the WCET line w·k must strictly dominate γᵘ at the
// window scale (the grey area of Fig. 6).
func TestFig6CurveSeparation(t *testing.T) {
	p := fastParams(3)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	k := p.WindowFrames * 1620
	up := a.Gamma.Upper.MustAt(k)
	wcetLine := a.Gamma.WCET() * int64(k)
	if up*2 > wcetLine {
		t.Fatalf("γᵘ(%d)=%d not well below WCET line %d — savings shape lost", k, up, wcetLine)
	}
	lo := a.Gamma.Lower.MustAt(k)
	bcetLine := a.Gamma.BCET() * int64(k)
	if lo < bcetLine {
		t.Fatalf("γˡ(%d)=%d below BCET line %d", k, lo, bcetLine)
	}
	if err := a.Gamma.Validate(k); err != nil {
		t.Fatal(err)
	}
}
