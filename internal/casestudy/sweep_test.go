package casestudy

import (
	"errors"
	"math"
	"testing"
)

func sweepAnalysis(t *testing.T) (*Analysis, Params) {
	t.Helper()
	p := fastParams(2)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	return a, p
}

func TestBufferSweepMonotone(t *testing.T) {
	a, _ := sweepAnalysis(t)
	buffers := []int{100, 500, 1620, 3000}
	pts, err := BufferSweep(a, buffers)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(buffers) {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].FGammaHz > pts[i-1].FGammaHz+1e-6 {
			t.Fatalf("Fγ not monotone in buffer: %+v", pts)
		}
		if pts[i].FWCETHz > pts[i-1].FWCETHz+1e-6 {
			t.Fatalf("Fw not monotone in buffer: %+v", pts)
		}
	}
	for _, pt := range pts {
		if pt.FGammaHz > pt.FWCETHz+1e-6 {
			t.Fatalf("Fγ exceeds Fw at b=%d", pt.BufferMBs)
		}
	}
	// The baseline buffer must reproduce the analysis numbers.
	base, err := BufferSweep(a, []int{a.Params.BufferMBs})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(base[0].FGammaHz-a.FGamma.Hz) > 1e-6 {
		t.Fatalf("sweep at baseline buffer diverges: %g vs %g", base[0].FGammaHz, a.FGamma.Hz)
	}
}

func TestBufferSweepValidation(t *testing.T) {
	a, _ := sweepAnalysis(t)
	if _, err := BufferSweep(a, []int{0}); !errors.Is(err, ErrBadParams) {
		t.Fatal("buffer 0 must fail")
	}
	if _, err := BufferSweep(a, []int{a.Spans.MaxK()}); !errors.Is(err, ErrBadParams) {
		t.Fatal("buffer ≥ maxK must fail")
	}
}

func TestWindowSweepShortWindowsAreLooser(t *testing.T) {
	a, p := sweepAnalysis(t)
	full := p.WindowFrames
	pts, err := WindowSweep(a, []int{1, full})
	if err != nil {
		t.Fatal(err)
	}
	// The full window must reproduce the baseline exactly.
	if math.Abs(pts[1].FGammaHz-a.FGamma.Hz) > 1e-6 {
		t.Fatalf("full-window sweep %g ≠ baseline %g", pts[1].FGammaHz, a.FGamma.Hz)
	}
	// A 1-frame window must be at least as conservative (and in practice
	// strictly worse).
	if pts[0].FGammaHz < pts[1].FGammaHz-1e-6 {
		t.Fatalf("short window below full-window bound: %g < %g", pts[0].FGammaHz, pts[1].FGammaHz)
	}
	if pts[0].GammaPerMB < pts[1].GammaPerMB {
		t.Fatalf("short window claims tighter per-MB demand: %+v", pts)
	}
}

func TestWindowSweepValidation(t *testing.T) {
	a, p := sweepAnalysis(t)
	if _, err := WindowSweep(a, []int{0}); !errors.Is(err, ErrBadParams) {
		t.Fatal("window 0 must fail")
	}
	if _, err := WindowSweep(a, []int{p.WindowFrames + 1}); !errors.Is(err, ErrBadParams) {
		t.Fatal("window beyond extraction must fail")
	}
}
