// Package casestudy orchestrates the paper's MPEG-2 case study (Sec. 3.2)
// end to end:
//
//  1. generate the 14 synthetic clips (internal/mpeg2);
//  2. run each through PE1 of the two-PE pipeline (internal/pipeline) to
//     obtain the macroblock arrival process at the FIFO;
//  3. extract the arrival spans ᾱ and the PE2 workload curves γᵘ/γˡ from
//     the traces, taking the envelope over all clips (Fig. 6);
//  4. compute Fᵞmin (eq. 9) and Fʷmin (eq. 10) for the given FIFO size;
//  5. re-simulate every clip with PE2 at Fᵞmin and record the maximum
//     FIFO backlog, normalized to the buffer size (Fig. 7).
//
// The same entry points drive cmd/paperfigs, the benchmark harness and the
// integration tests; clips are processed concurrently.
package casestudy

import (
	"errors"
	"fmt"
	"sync"

	"wcm/internal/arrival"
	"wcm/internal/core"
	"wcm/internal/curve"
	"wcm/internal/events"
	"wcm/internal/mpeg2"
	"wcm/internal/netcalc"
	"wcm/internal/pipeline"
)

// Errors returned by this package.
var (
	ErrBadParams = errors.New("casestudy: invalid parameters")
)

// Params configures the case study.
type Params struct {
	Frames       int     // frames generated per clip
	WindowFrames int     // trace-analysis window (paper: 24 full frames)
	BufferMBs    int     // FIFO size b in macroblocks (paper: 1620 = 1 frame)
	F1Hz         float64 // PE1 clock (fixed; PE1 only has to keep up with the bitstream)
	PE1          mpeg2.PE1Costs
	PE2          mpeg2.PE2Costs
	Clips        []mpeg2.Clip
}

// DefaultParams returns the paper's setup scaled to the given clip length.
// The analysis window is capped to half the clip so every window position
// is observed many times.
func DefaultParams(frames int) Params {
	window := 24
	if window > frames/2 {
		window = frames / 2
	}
	if window < 1 {
		window = 1
	}
	return Params{
		Frames:       frames,
		WindowFrames: window,
		BufferMBs:    1620,
		F1Hz:         300e6,
		PE1:          mpeg2.DefaultPE1Costs(),
		PE2:          mpeg2.DefaultPE2Costs(),
		Clips:        mpeg2.Library(),
	}
}

// Validate checks parameter invariants.
func (p Params) Validate() error {
	switch {
	case p.Frames < 2:
		return fmt.Errorf("%w: frames=%d", ErrBadParams, p.Frames)
	case p.WindowFrames < 1 || p.WindowFrames > p.Frames:
		return fmt.Errorf("%w: window=%d of %d frames", ErrBadParams, p.WindowFrames, p.Frames)
	case p.BufferMBs < 1:
		return fmt.Errorf("%w: buffer=%d", ErrBadParams, p.BufferMBs)
	case p.F1Hz <= 0:
		return fmt.Errorf("%w: F1=%g", ErrBadParams, p.F1Hz)
	case len(p.Clips) == 0:
		return fmt.Errorf("%w: no clips", ErrBadParams)
	}
	return nil
}

// stream returns the stream configuration for this parameter set.
func (p Params) stream() mpeg2.StreamConfig { return mpeg2.DefaultStream(p.Frames) }

// windowMBs returns the analysis window in macroblocks (the maximum k for
// curve extraction).
func (p Params) windowMBs() int { return p.WindowFrames * p.stream().MBPerFrame() }

// ClipTrace holds the per-clip simulation artifacts the analysis consumes.
type ClipTrace struct {
	Clip     mpeg2.Clip
	Items    []pipeline.Item    // per-macroblock bits and stage demands
	Arrivals events.TimedTrace  // PE1 completion times (FIFO arrival process)
	D2       events.DemandTrace // PE2 demand per macroblock
	// VBVDelayNs is the minimal decoder startup delay: the first frame's
	// decode timestamp such that every frame's bits have arrived over the
	// CBR link by its DTS.
	VBVDelayNs int64
	// VBVBits is the peak occupancy of the decoder's bit buffer (bits
	// arrived but not yet consumed at a frame decode instant) — the VBV
	// buffer size this clip requires.
	VBVBits int64
}

// BuildClipTrace generates one clip and simulates PE1 to obtain the FIFO
// arrival trace. PE2's speed does not influence PE1 completions (the FIFO
// is unbounded in measurement mode), so an arbitrary PE2 clock is used here.
func BuildClipTrace(p Params, clip mpeg2.Clip) (ClipTrace, error) {
	if err := p.Validate(); err != nil {
		return ClipTrace{}, err
	}
	s, err := mpeg2.Generate(p.stream(), clip)
	if err != nil {
		return ClipTrace{}, err
	}
	d1, err := s.DemandsPE1(p.PE1)
	if err != nil {
		return ClipTrace{}, err
	}
	d2, err := s.DemandsPE2(p.PE2)
	if err != nil {
		return ClipTrace{}, err
	}
	bits := s.Bits()
	items := make([]pipeline.Item, len(d1))
	for i := range items {
		items[i] = pipeline.Item{Bits: bits[i], D1: d1[i], D2: d2[i]}
	}
	vbvDelay, vbvBits := applyVBVGating(p.stream(), items)
	st, err := pipeline.Run(items, pipeline.Config{
		BitRate: p.stream().BitRate,
		F1Hz:    p.F1Hz,
		F2Hz:    1e9, // irrelevant for PE1 completions
	})
	if err != nil {
		return ClipTrace{}, err
	}
	return ClipTrace{
		Clip: clip, Items: items, Arrivals: st.PE1Done, D2: d2,
		VBVDelayNs: vbvDelay, VBVBits: vbvBits,
	}, nil
}

// applyVBVGating sets each macroblock's ReadyAt to its frame's decode
// timestamp DTS(f) = D + f·framePeriod, with the startup delay D chosen
// minimally so every frame's bits have fully arrived over the CBR link by
// its DTS (the video-buffering-verifier discipline of a real decoder).
// Within a frame PE1 then runs at compute speed; across frames it follows
// the 25 fps decode cadence — exactly the bursty FIFO arrival process the
// paper's arrival curves capture.
//
// It returns the startup delay and the peak occupancy of the bit buffer:
// the largest amount of compressed data buffered ahead of decoding, i.e.
// the VBV size this stream needs under the minimal-delay schedule.
func applyVBVGating(cfg mpeg2.StreamConfig, items []pipeline.Item) (startup, maxBufferedBits int64) {
	perFrame := cfg.MBPerFrame()
	period := cfg.FramePeriodNs()
	frames := len(items) / perFrame

	// Arrival time of the last bit of each frame over the CBR link.
	var cum int64
	frameBits := make([]int64, frames)
	cumBits := make([]int64, frames) // through frame f inclusive
	tBits := make([]int64, frames)
	for f := 0; f < frames; f++ {
		for i := f * perFrame; i < (f+1)*perFrame; i++ {
			frameBits[f] += items[i].Bits
		}
		cum += frameBits[f]
		cumBits[f] = cum
		num := cum * 1_000_000_000
		t := num / cfg.BitRate
		if num%cfg.BitRate != 0 {
			t++
		}
		tBits[f] = t
		if d := t - int64(f)*period; d > startup {
			startup = d
		}
	}
	for f := 0; f < frames; f++ {
		dts := startup + int64(f)*period
		for i := f * perFrame; i < (f+1)*perFrame; i++ {
			items[i].ReadyAt = dts
		}
		// Buffer occupancy just before frame f is consumed at its DTS:
		// bits arrived by DTS minus bits of frames already consumed.
		arrived := dts * cfg.BitRate / 1_000_000_000
		if arrived > cumBits[frames-1] {
			arrived = cumBits[frames-1]
		}
		consumed := int64(0)
		if f > 0 {
			consumed = cumBits[f-1]
		}
		if occ := arrived - consumed; occ > maxBufferedBits {
			maxBufferedBits = occ
		}
	}
	return startup, maxBufferedBits
}

// clipAnalysis is the per-clip extraction result.
type clipAnalysis struct {
	trace ClipTrace
	spans arrival.Spans
	gamma core.Workload
}

// Analysis is the merged result over all clips: the inputs to eq. (9)/(10)
// and everything needed to print Fig. 6.
type Analysis struct {
	Params Params
	Traces []ClipTrace
	Spans  arrival.Spans // merged minimal spans (ᾱ over all clips)
	Gamma  core.Workload // merged workload curves (γᵘ max, γˡ min over clips)
	FGamma netcalc.MinFrequencyResult
	FWCET  netcalc.MinFrequencyResult
}

// WCET returns the trace WCET w = γᵘ(1) used by eq. (10).
func (a *Analysis) WCET() int64 { return a.Gamma.WCET() }

// Savings returns 1 − Fᵞmin/Fʷmin (the paper reports "over 50%").
func (a *Analysis) Savings() float64 {
	if a.FWCET.Hz == 0 {
		return 0
	}
	return 1 - a.FGamma.Hz/a.FWCET.Hz
}

// Analyze runs the full trace-extraction pipeline concurrently over the
// clips and computes both minimum frequencies.
func Analyze(p Params) (*Analysis, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	maxK := p.windowMBs()

	results := make([]clipAnalysis, len(p.Clips))
	errs := make([]error, len(p.Clips))
	var wg sync.WaitGroup
	for i, clip := range p.Clips {
		wg.Add(1)
		go func(i int, clip mpeg2.Clip) {
			defer wg.Done()
			ct, err := BuildClipTrace(p, clip)
			if err != nil {
				errs[i] = err
				return
			}
			// Both extractions route through the shared fused/blocked
			// kernel: spans come out of one pass over the timestamp
			// array, γᵘ and γˡ out of one pass over the demand prefix
			// sums (the clips themselves already run concurrently, so
			// the kernel's own pool engages only when cores are spare).
			spans, _, err := arrival.ExtractSpans(ct.Arrivals, maxK)
			if err != nil {
				errs[i] = fmt.Errorf("clip %q spans: %w", clip.Name, err)
				return
			}
			an, err := core.NewAnalyzer(ct.D2)
			if err != nil {
				errs[i] = fmt.Errorf("clip %q curves: %w", clip.Name, err)
				return
			}
			gamma, err := an.Workload(maxK)
			if err != nil {
				errs[i] = fmt.Errorf("clip %q curves: %w", clip.Name, err)
				return
			}
			results[i] = clipAnalysis{trace: ct, spans: spans, gamma: gamma}
		}(i, clip)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Merge: ᾱ takes the per-k minimum span, γᵘ the maximum, γˡ the minimum.
	tables := make([]arrival.Spans, len(results))
	for i, r := range results {
		tables[i] = r.spans
	}
	spans, err := arrival.Merge(tables...)
	if err != nil {
		return nil, err
	}
	gamma := results[0].gamma
	for _, r := range results[1:] {
		up, err := curve.Max(gamma.Upper, r.gamma.Upper)
		if err != nil {
			return nil, err
		}
		lo, err := curve.Min(gamma.Lower, r.gamma.Lower)
		if err != nil {
			return nil, err
		}
		gamma = core.Workload{Upper: up, Lower: lo}
	}

	a := &Analysis{Params: p, Spans: spans, Gamma: gamma}
	a.Traces = make([]ClipTrace, len(results))
	for i, r := range results {
		a.Traces[i] = r.trace
	}
	a.FGamma, err = netcalc.MinFrequency(spans, gamma.Upper, p.BufferMBs)
	if err != nil {
		return nil, fmt.Errorf("casestudy: eq. 9: %w", err)
	}
	a.FWCET, err = netcalc.MinFrequencyWCET(spans, gamma.WCET(), p.BufferMBs)
	if err != nil {
		return nil, fmt.Errorf("casestudy: eq. 10: %w", err)
	}
	return a, nil
}

// BacklogResult is one bar of Fig. 7.
type BacklogResult struct {
	Clip       string
	MaxBacklog int
	Normalized float64 // MaxBacklog / buffer size
	Overflowed bool
}

// SimulateBacklogs re-runs every clip through the full two-PE pipeline with
// PE2 clocked at f2Hz and reports the maximum FIFO backlog per clip,
// normalized to the buffer size (Fig. 7 of the paper).
func SimulateBacklogs(p Params, traces []ClipTrace, f2Hz float64) ([]BacklogResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if f2Hz <= 0 {
		return nil, fmt.Errorf("%w: F2=%g", ErrBadParams, f2Hz)
	}
	out := make([]BacklogResult, len(traces))
	errs := make([]error, len(traces))
	var wg sync.WaitGroup
	for i := range traces {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := pipeline.Run(traces[i].Items, pipeline.Config{
				BitRate: p.stream().BitRate,
				F1Hz:    p.F1Hz,
				F2Hz:    f2Hz,
				FifoCap: p.BufferMBs,
			})
			if err != nil {
				errs[i] = err
				return
			}
			out[i] = BacklogResult{
				Clip:       traces[i].Clip.Name,
				MaxBacklog: st.MaxBacklog,
				Normalized: float64(st.MaxBacklog) / float64(p.BufferMBs),
				Overflowed: st.Overflowed,
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
