package casestudy

import (
	"fmt"

	"wcm/internal/arrival"
	"wcm/internal/core"
	"wcm/internal/events"
	"wcm/internal/mpeg2"
	"wcm/internal/netcalc"
	"wcm/internal/service"
)

// AnalyzePE1 dimensions the FIRST processing element the same way eq. (9)
// dimensions PE2: macroblocks become available to PE1 at their VBV release
// instants (frame-granular bursts), the input queue holds bufferMBs
// macroblocks, and PE1's per-macroblock demand is the VLD/IQ model. The
// paper fixes PE1 and asks only about PE2; this closes the loop by
// verifying the assumed PE1 clock is sufficient.
func AnalyzePE1(p Params, traces []ClipTrace, bufferMBs int) (netcalc.MinFrequencyResult, error) {
	if err := p.Validate(); err != nil {
		return netcalc.MinFrequencyResult{}, err
	}
	if len(traces) == 0 {
		return netcalc.MinFrequencyResult{}, fmt.Errorf("%w: no traces", ErrBadParams)
	}
	maxK := p.windowMBs()
	var spanTables []arrival.Spans
	var demandTraces []events.DemandTrace
	for _, ct := range traces {
		release := make(events.TimedTrace, len(ct.Items))
		d1 := make(events.DemandTrace, len(ct.Items))
		for i, it := range ct.Items {
			release[i] = it.ReadyAt
			d1[i] = it.D1
		}
		s, err := arrival.FromTrace(release, maxK)
		if err != nil {
			return netcalc.MinFrequencyResult{}, err
		}
		spanTables = append(spanTables, s)
		demandTraces = append(demandTraces, d1)
	}
	spans, err := arrival.Merge(spanTables...)
	if err != nil {
		return netcalc.MinFrequencyResult{}, err
	}
	gamma, err := core.FromTraces(demandTraces, maxK)
	if err != nil {
		return netcalc.MinFrequencyResult{}, err
	}
	return netcalc.MinFrequency(spans, gamma.Upper, bufferMBs)
}

// SharedAudio is the EXT-SHARED experiment: PE2 additionally decodes an
// MPEG audio stream at LOW priority while the video subtask preempts it.
// The video side keeps its eq. (8) guarantee untouched (it is the high-
// priority stream); the audio side is bounded through the leftover
// service.
type SharedAudio struct {
	F2Hz          float64 // PE2 clock used
	AudioDelayNs  int64   // delay bound for an audio frame
	AudioBacklog  int     // backlog bound in audio frames
	AudioDeadline int64   // the audio frame period (its implicit deadline)
	MeetsDeadline bool    // delay bound ≤ deadline
}

// AnalyzeSharedAudio bounds the audio task on PE2 at frequency f2Hz, using
// the video analysis's merged spans/curves as the high-priority stream.
func AnalyzeSharedAudio(a *Analysis, f2Hz float64, audioFrames int, seed uint64) (SharedAudio, error) {
	if f2Hz <= 0 || audioFrames < 4 {
		return SharedAudio{}, fmt.Errorf("%w: f2=%g audioFrames=%d", ErrBadParams, f2Hz, audioFrames)
	}
	tt, d, err := mpeg2.AudioTrace(audioFrames, mpeg2.DefaultAudioCosts(), seed)
	if err != nil {
		return SharedAudio{}, err
	}
	maxK := audioFrames / 2
	audioSpans, err := arrival.FromTrace(tt, maxK)
	if err != nil {
		return SharedAudio{}, err
	}
	audioGamma, err := core.FromTrace(d, maxK)
	if err != nil {
		return SharedAudio{}, err
	}
	beta, err := service.Full(f2Hz)
	if err != nil {
		return SharedAudio{}, err
	}
	horizon := tt.Span()
	rep, err := netcalc.AnalyzeSharedPE(beta, a.Spans, a.Gamma.Upper,
		audioSpans, audioGamma.Upper, horizon)
	if err != nil {
		return SharedAudio{}, err
	}
	return SharedAudio{
		F2Hz:          f2Hz,
		AudioDelayNs:  rep.DelayNs,
		AudioBacklog:  rep.BacklogEvents,
		AudioDeadline: mpeg2.AudioFramePeriodNs,
		MeetsDeadline: rep.DelayNs <= mpeg2.AudioFramePeriodNs,
	}, nil
}
