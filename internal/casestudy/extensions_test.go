package casestudy

import (
	"testing"

	"wcm/internal/netcalc"
	"wcm/internal/service"
)

func TestAnalyzePE1FrequencySufficient(t *testing.T) {
	p := fastParams(3)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzePE1(p, a.Traces, 1620)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hz <= 0 {
		t.Fatalf("degenerate PE1 frequency %g", res.Hz)
	}
	// The default PE1 clock (300 MHz) must cover the computed minimum with
	// a one-frame input buffer — otherwise the whole case study would be
	// built on an under-provisioned front end.
	if res.Hz > p.F1Hz {
		t.Fatalf("PE1 needs %.1f MHz, configured only %.1f MHz", res.Hz/1e6, p.F1Hz/1e6)
	}
	if _, err := AnalyzePE1(p, nil, 1620); err == nil {
		t.Fatal("no traces must fail")
	}
}

func TestAnalyzeSharedAudio(t *testing.T) {
	p := fastParams(2)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	// At 2·Fγ the leftover absorbs even an I-frame burst within one audio
	// period: the 24ms frame deadline holds.
	rep, err := AnalyzeSharedAudio(a, a.FGamma.Hz*2, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.MeetsDeadline {
		t.Fatalf("audio misses deadline at 2·Fγ: delay %.2f ms", float64(rep.AudioDelayNs)/1e6)
	}
	if rep.AudioBacklog < 1 {
		t.Fatalf("degenerate audio backlog %d", rep.AudioBacklog)
	}
	// With barely more than Fγ, the video bursts blank out PE2 for longer
	// than an audio period: the deadline bound fails, but the backlog
	// bound shows a 2-frame output buffer rides it out — the kind of
	// design conclusion the analysis is for.
	tight, err := AnalyzeSharedAudio(a, a.FGamma.Hz*1.2, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tight.MeetsDeadline {
		t.Fatal("1.2·Fγ should not meet the per-frame audio deadline")
	}
	if tight.AudioBacklog > 3 {
		t.Fatalf("audio backlog bound %d; expected a small buffer to suffice", tight.AudioBacklog)
	}
	if _, err := AnalyzeSharedAudio(a, 0, 40, 5); err == nil {
		t.Fatal("zero frequency must fail")
	}
	if _, err := AnalyzeSharedAudio(a, 1e9, 2, 5); err == nil {
		t.Fatal("too few audio frames must fail")
	}
}

// The video guarantee is untouched by the audio add-on: eq. (8) holds for
// the video stream at the same frequency because video has priority.
func TestSharedAudioPreservesVideoGuarantee(t *testing.T) {
	p := fastParams(2)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	f2 := a.FGamma.Hz * 1.3
	beta, err := service.Full(f2)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := netcalc.CheckServiceConstraint(a.Spans, beta, a.Gamma.Upper, p.BufferMBs)
	if err != nil || !ok {
		t.Fatalf("video eq. 8 must hold at 1.3·Fγ: %v %v", ok, err)
	}
}

func TestVBVReportPlausible(t *testing.T) {
	p := fastParams(2)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range a.Traces {
		// Startup delay must cover the biggest frame skew: positive and
		// below a handful of frame periods for a CBR 5:3:1 GOP split.
		if tr.VBVDelayNs <= 0 || tr.VBVDelayNs > 8*40_000_000 {
			t.Fatalf("%s: implausible VBV delay %.1f ms", tr.Clip.Name, float64(tr.VBVDelayNs)/1e6)
		}
		// The bit buffer must hold at least one I frame's worth of data
		// and no more than the whole startup window of CBR bits.
		if tr.VBVBits < 391_200 { // one average frame
			t.Fatalf("%s: VBV %d bits too small", tr.Clip.Name, tr.VBVBits)
		}
		upper := (tr.VBVDelayNs + 40_000_000) * 9_780_000 / 1_000_000_000
		if tr.VBVBits > upper {
			t.Fatalf("%s: VBV %d bits exceeds CBR window bound %d", tr.Clip.Name, tr.VBVBits, upper)
		}
	}
}
