package rms

import (
	"math"
	"testing"
	"testing/quick"

	"wcm/internal/events"
)

func TestUUniFastSumsAndBounds(t *testing.T) {
	g := events.NewLCG(7)
	for trial := 0; trial < 50; trial++ {
		us, err := UUniFast(5, 0.8, g)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, u := range us {
			if u < 0 {
				t.Fatalf("negative utilization %g", u)
			}
			sum += u
		}
		if math.Abs(sum-0.8) > 1e-9 {
			t.Fatalf("sum = %g, want 0.8", sum)
		}
	}
	if _, err := UUniFast(0, 0.5, g); err == nil {
		t.Fatal("n=0 must fail")
	}
	if _, err := UUniFast(3, 0, g); err == nil {
		t.Fatal("u=0 must fail")
	}
	// n=1 degenerates to the whole utilization.
	us, err := UUniFast(1, 0.6, g)
	if err != nil || us[0] != 0.6 {
		t.Fatalf("n=1: %v %v", us, err)
	}
}

func TestSpikedCurveShape(t *testing.T) {
	c, err := SpikedCurve(100, 25, 4, 12)
	if err != nil {
		t.Fatal(err)
	}
	// n(k) = 1+⌊(k−1)/4⌋: k=1..4 → 1 spike, k=5..8 → 2.
	want := []int64{0, 100, 125, 150, 175, 275, 300, 325, 350, 450}
	for k := 0; k <= 9; k++ {
		if got := c.MustAt(k); got != want[k] {
			t.Fatalf("γᵘ(%d) = %d, want %d", k, got, want[k])
		}
	}
	if _, err := SpikedCurve(10, 25, 4, 12); err == nil {
		t.Fatal("cheap > wcet must fail")
	}
	if _, err := SpikedCurve(10, 5, 0, 12); err == nil {
		t.Fatal("spacing 0 must fail")
	}
}

func TestGenerateTaskSetRespectsUtilization(t *testing.T) {
	g := events.NewLCG(42)
	p := DefaultGenSetParams(4, 0.9)
	ts, err := GenerateTaskSet(p, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 4 {
		t.Fatalf("tasks = %d", len(ts))
	}
	// Rounding C = ⌊u·T⌋ only shrinks utilization; it must stay close.
	u := ts.Utilization()
	if u > 0.9+1e-9 || u < 0.6 {
		t.Fatalf("utilization = %g, target 0.9", u)
	}
	if _, err := GenerateTaskSet(GenSetParams{}, g); err == nil {
		t.Fatal("empty params must fail")
	}
}

func TestAcceptanceRatioExperiment(t *testing.T) {
	p := DefaultGenSetParams(4, 0)
	utils := []float64{0.6, 0.9, 1.2, 1.5}
	pts, err := AcceptanceRatio(p, utils, 40, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(utils) {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		// Relation (5): the curve test accepts at least as many sets.
		if pt.CurveRatio < pt.WCETRatio {
			t.Fatalf("U=%g: curve ratio %g < wcet ratio %g",
				pt.Utilization, pt.CurveRatio, pt.WCETRatio)
		}
	}
	// At low utilization both accept everything; far beyond 1 the WCET test
	// accepts nothing while the curve test still accepts some (its real
	// demand is ~¼ the WCET view with spacing 4, ratio 4).
	if pts[0].WCETRatio < 0.95 {
		t.Fatalf("U=0.6 should be almost always WCET-schedulable: %g", pts[0].WCETRatio)
	}
	if pts[3].WCETRatio > 0 {
		t.Fatalf("U=1.5 cannot be WCET-schedulable: %g", pts[3].WCETRatio)
	}
	if pts[3].CurveRatio < 0.3 {
		t.Fatalf("U=1.5 should still often be curve-schedulable: %g", pts[3].CurveRatio)
	}
	if _, err := AcceptanceRatio(p, utils, 0, 1); err == nil {
		t.Fatal("sets=0 must fail")
	}
}

func TestQuickGeneratedSetsSatisfyRelation5(t *testing.T) {
	f := func(seed uint64, uRaw uint8) bool {
		g := events.NewLCG(seed)
		u := 0.3 + float64(uRaw%120)/100
		p := DefaultGenSetParams(3, u)
		ts, err := GenerateTaskSet(p, g)
		if err != nil {
			return false
		}
		cmp, err := ts.Compare()
		if err != nil {
			return false
		}
		return cmp.Curve.Set <= cmp.WCET.Set+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestVariabilitySweepMonotone(t *testing.T) {
	base := DefaultGenSetParams(3, 0)
	pts, err := VariabilitySweep(base, []int64{1, 2, 4, 8}, 0.1, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// Constant demand (ratio 1) cannot certify utilization beyond ~1.
	if pts[0].BreakdownUtil > 1.01 {
		t.Fatalf("ratio 1 breakdown %g must not exceed 1", pts[0].BreakdownUtil)
	}
	// Any variability at all lifts the breakdown past 1 (deterministic
	// seeded sweep: ratios 2..8 measure 1.2–1.3).
	for _, pt := range pts[1:] {
		if pt.BreakdownUtil < 1.15 {
			t.Fatalf("ratio %d breakdown %g did not beat the WCET wall", pt.CheapRatio, pt.BreakdownUtil)
		}
	}
	// …and SATURATES: beyond ratio ≈ spacing the un-averaged short windows
	// (γᵘ(2) = wcet + cheap ≈ wcet) bind, so more variability buys nothing.
	// This is the honest flip side of the paper's gain story.
	if pts[3].BreakdownUtil > pts[1].BreakdownUtil+0.25 {
		t.Fatalf("expected saturation, got %+v", pts)
	}
	if _, err := VariabilitySweep(base, []int64{1}, 0, 10, 1); err == nil {
		t.Fatal("zero step must fail")
	}
}
