package rms

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"wcm/internal/core"
	"wcm/internal/sched"
)

func TestResponseTimeClassicExample(t *testing.T) {
	// C1=1,T1=2; C2=1,T2=5: R1=1; R2 is the least fixpoint of
	// R = 1 + ⌈R/2⌉ → R=2 (timeline: [0,1) τ1, [1,2) τ2).
	ts := mustWCETSet(t, [2]int64{1, 2}, [2]int64{1, 5})
	r0, err := ts.ResponseTimeWCET(0)
	if err != nil || r0 != 1 {
		t.Fatalf("R0 = %d, %v; want 1", r0, err)
	}
	r1, err := ts.ResponseTimeWCET(1)
	if err != nil || r1 != 2 {
		t.Fatalf("R1 = %d, %v; want 2", r1, err)
	}
	if _, err := ts.ResponseTimeWCET(5); !errors.Is(err, ErrBadIndex) {
		t.Fatal("bad index must fail")
	}
}

func TestResponseTimeUnbounded(t *testing.T) {
	ts := mustWCETSet(t, [2]int64{1, 2}, [2]int64{3, 5})
	if _, err := ts.ResponseTimeWCET(1); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("infeasible task must be unbounded: %v", err)
	}
	wcet, _, err := ts.ResponseTimes()
	if err != nil {
		t.Fatal(err)
	}
	if wcet[0] != 1 || wcet[1] != -1 {
		t.Fatalf("vector = %v", wcet)
	}
}

// RTA with workload curves tightens the response time of lower-priority
// tasks when the interferer's expensive activations cannot cluster.
func TestResponseTimeCurveTighter(t *testing.T) {
	p := core.PollingTask{Period: 10, ThetaMin: 30, ThetaMax: 50, Ep: 9, Ec: 2}
	w, err := p.Workload(64)
	if err != nil {
		t.Fatal(err)
	}
	hi := Task{Name: "poller", Period: 10, Gamma: w.Upper}
	lo, _ := WCETTask("worker", 40, 16)
	ts, err := NewTaskSet(hi, lo)
	if err != nil {
		t.Fatal(err)
	}
	// Classical: R = 16 + 9⌈R/10⌉ diverges past 40 → unbounded.
	if _, err := ts.ResponseTimeWCET(1); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("classical RTA should reject: %v", err)
	}
	// Curves: R = 16 + γᵘ(⌈R/10⌉): R=16+γᵘ(2)=27 → 16+γᵘ(3)=36 → 16+γᵘ(4)=38 → fix 38.
	r, err := ts.ResponseTimeCurve(1)
	if err != nil {
		t.Fatal(err)
	}
	if r != 38 {
		t.Fatalf("curve RTA R = %d, want 38", r)
	}
}

// For WCET tasks the RTA fixpoint is exact: it must equal the maximum
// response observed in a synchronous-release simulation.
func TestQuickRTAMatchesSimulation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		tasks := make([]Task, n)
		for i := range tasks {
			period := int64(3 + rng.Intn(12))
			wcet := 1 + rng.Int63n(period)
			task, err := WCETTask("t", period, wcet)
			if err != nil {
				return false
			}
			tasks[i] = task
		}
		ts, err := NewTaskSet(tasks...)
		if err != nil {
			return false
		}
		h, err := ts.Hyperperiod()
		if err != nil {
			return false
		}
		res, err := sched.Simulate(toSchedTasks(ts), 2*h)
		if err != nil {
			return false
		}
		for i := range ts {
			r, err := ts.ResponseTimeWCET(i)
			if errors.Is(err, ErrUnbounded) {
				// Analysis rejects: the simulation must show a miss
				// somewhere at or above this priority.
				miss := 0
				for j := 0; j <= i; j++ {
					miss += res.PerTask[j].Misses
				}
				if miss == 0 {
					return false
				}
				continue
			}
			if err != nil {
				return false
			}
			// Exactness: max observed response equals the fixpoint (the
			// critical instant occurs at t=0 under synchronous release).
			if res.PerTask[i].MaxResponse != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// Relation (5) analogue for RTA: curve response times never exceed WCET
// response times.
func TestQuickRTACurveLeqWCET(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		tasks := make([]Task, n)
		for i := range tasks {
			period := int64(10 + rng.Intn(60))
			trace := make([]int64, 10+rng.Intn(20))
			for j := range trace {
				trace[j] = 1 + rng.Int63n(8)
			}
			w, err := core.FromTrace(trace, len(trace))
			if err != nil {
				return false
			}
			tasks[i] = Task{Name: "t", Period: period, Gamma: w.Upper}
		}
		ts, err := NewTaskSet(tasks...)
		if err != nil {
			return false
		}
		wcet, curve, err := ts.ResponseTimes()
		if err != nil {
			return false
		}
		for i := range ts {
			if wcet[i] < 0 {
				continue // classical rejects; curve may accept or reject
			}
			if curve[i] < 0 || curve[i] > wcet[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
