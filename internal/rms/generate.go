package rms

import (
	"fmt"
	"math"

	"wcm/internal/core"
	"wcm/internal/curve"
	"wcm/internal/events"
)

// Task-set generation for statistical evaluation (acceptance-ratio
// experiments). UUniFast (Bini & Buttazzo) draws n per-task utilizations
// summing exactly to u, unbiased over the simplex.

// UUniFast returns n utilizations summing to u, deterministic in g.
func UUniFast(n int, u float64, g *events.LCG) ([]float64, error) {
	if n < 1 || u <= 0 {
		return nil, fmt.Errorf("rms: UUniFast(n=%d, u=%g)", n, u)
	}
	out := make([]float64, n)
	sum := u
	for i := 1; i < n; i++ {
		next := sum * math.Pow(g.Float64(), 1/float64(n-i))
		out[i-1] = sum - next
		sum = next
	}
	out[n-1] = sum
	return out, nil
}

// SpikedCurve builds an upper workload curve for a task whose activations
// cost `wcet` at most once every `spacing` activations and `cheap`
// otherwise — the canonical variable-demand task of the paper (a
// generalization of the polling task's upper curve):
//
//	γᵘ(k) = n(k)·wcet + (k − n(k))·cheap,  n(k) = 1 + ⌊(k−1)/spacing⌋
func SpikedCurve(wcet, cheap int64, spacing, maxK int) (curve.Curve, error) {
	if wcet < cheap || cheap <= 0 || spacing < 1 || maxK < 1 {
		return curve.Curve{}, fmt.Errorf("rms: SpikedCurve(wcet=%d, cheap=%d, spacing=%d)", wcet, cheap, spacing)
	}
	return core.UpperFromTypeCounts([]core.TypeCountBound{{
		Name: "spike", BCET: wcet, WCET: wcet,
		Count: func(k int) int64 { return 1 + int64(k-1)/int64(spacing) },
	}}, cheap, maxK)
}

// GenSetParams configures random task-set generation.
type GenSetParams struct {
	N           int     // tasks per set
	Utilization float64 // total WCET-utilization Σ C_i/T_i
	Periods     []int64 // period choices (drawn uniformly)
	Spacing     int     // spike spacing for the variable-demand curves
	CheapRatio  int64   // WCET / cheap-cost ratio (≥ 1; 1 = constant demand)
	MaxK        int     // curve horizon
}

// DefaultGenSetParams returns the configuration used by the acceptance-
// ratio experiment.
func DefaultGenSetParams(n int, u float64) GenSetParams {
	return GenSetParams{
		N:           n,
		Utilization: u,
		Periods:     []int64{20, 50, 100, 200, 500, 1000},
		Spacing:     4,
		CheapRatio:  4,
		MaxK:        256,
	}
}

// GenerateTaskSet draws one random task set: UUniFast utilizations, random
// periods, and a spiked workload curve per task whose WCET matches the
// drawn utilization (so the WCET test sees exactly Σ C/T = Utilization
// while the curve test sees the real demand structure).
func GenerateTaskSet(p GenSetParams, g *events.LCG) (TaskSet, error) {
	if p.N < 1 || len(p.Periods) == 0 || p.Spacing < 1 || p.CheapRatio < 1 {
		return nil, fmt.Errorf("rms: bad generation params %+v", p)
	}
	us, err := UUniFast(p.N, p.Utilization, g)
	if err != nil {
		return nil, err
	}
	tasks := make([]Task, p.N)
	for i, u := range us {
		period := p.Periods[g.Intn(int64(len(p.Periods)))]
		wcet := int64(u * float64(period))
		if wcet < 1 {
			wcet = 1
		}
		if wcet > period {
			wcet = period
		}
		cheap := wcet / p.CheapRatio
		if cheap < 1 {
			cheap = 1
		}
		gamma, err := SpikedCurve(wcet, cheap, p.Spacing, p.MaxK)
		if err != nil {
			return nil, err
		}
		tasks[i] = Task{Name: fmt.Sprintf("t%d", i), Period: period, Gamma: gamma}
	}
	return NewTaskSet(tasks...)
}

// VariabilityPoint is one row of the variability sweep: how much
// utilization beyond 1.0 (in the WCET view) the curve test can still
// certify, as a function of the WCET/average demand ratio.
type VariabilityPoint struct {
	CheapRatio    int64   // WCET / cheap-cost ratio of the generated tasks
	BreakdownUtil float64 // largest WCET-utilization with ≥ 50% curve acceptance
}

// VariabilitySweep measures the breakdown utilization of the curve test for
// increasing demand variability: for each WCET/cheap ratio it scans
// utilizations upward in steps of `step` until fewer than half of `sets`
// random task sets pass eq. (4). The paper's motivation — "the worst case
// processing requirement happens rarely resulting in a high ratio of WCET
// to the average execution time" — predicts BreakdownUtil grows with the
// ratio; ratio 1 (constant demand) reproduces the classical test exactly.
func VariabilitySweep(base GenSetParams, ratios []int64, step float64, sets int, seed uint64) ([]VariabilityPoint, error) {
	if step <= 0 || sets < 1 {
		return nil, fmt.Errorf("rms: VariabilitySweep(step=%g, sets=%d)", step, sets)
	}
	g := events.NewLCG(seed)
	out := make([]VariabilityPoint, 0, len(ratios))
	for _, ratio := range ratios {
		p := base
		p.CheapRatio = ratio
		breakdown := 0.0
		for u := step; u <= 4.0; u += step {
			p.Utilization = u
			accept := 0
			for s := 0; s < sets; s++ {
				ts, err := GenerateTaskSet(p, g)
				if err != nil {
					return nil, err
				}
				l, err := ts.AnalyzeCurve()
				if err != nil {
					return nil, err
				}
				if l.Schedulable() {
					accept++
				}
			}
			if accept*2 < sets {
				break
			}
			breakdown = u
		}
		out = append(out, VariabilityPoint{CheapRatio: ratio, BreakdownUtil: breakdown})
	}
	return out, nil
}

// AcceptancePoint is one row of the acceptance-ratio experiment.
type AcceptancePoint struct {
	Utilization float64
	WCETRatio   float64 // fraction of sets accepted by eq. (3)
	CurveRatio  float64 // fraction of sets accepted by eq. (4)
}

// AcceptanceRatio runs the classic schedulability experiment: for each
// target utilization, draw `sets` random task sets and report the fraction
// accepted by each test. Relation (5) guarantees CurveRatio ≥ WCETRatio
// pointwise.
func AcceptanceRatio(p GenSetParams, utils []float64, sets int, seed uint64) ([]AcceptancePoint, error) {
	if sets < 1 {
		return nil, fmt.Errorf("rms: sets=%d", sets)
	}
	g := events.NewLCG(seed)
	out := make([]AcceptancePoint, 0, len(utils))
	for _, u := range utils {
		pu := p
		pu.Utilization = u
		acceptW, acceptC := 0, 0
		for s := 0; s < sets; s++ {
			ts, err := GenerateTaskSet(pu, g)
			if err != nil {
				return nil, err
			}
			cmp, err := ts.Compare()
			if err != nil {
				return nil, err
			}
			if cmp.WCET.Schedulable() {
				acceptW++
			}
			if cmp.Curve.Schedulable() {
				acceptC++
			}
		}
		out = append(out, AcceptancePoint{
			Utilization: u,
			WCETRatio:   float64(acceptW) / float64(sets),
			CurveRatio:  float64(acceptC) / float64(sets),
		})
	}
	return out, nil
}
