// Package rms implements rate-monotonic schedulability analysis, both the
// classical exact test of Lehoczky, Sha and Ding (eq. 3 of the paper) and
// the paper's workload-curve refinement (eq. 4).
//
// A task set τ₁..τₙ of periodic tasks is indexed by non-decreasing period
// (rate-monotonic priority order, τ₁ highest). Deadlines equal periods.
// The classical test computes
//
//	W_i(t) = Σ_{j≤i} C_j · ⌈t/T_j⌉
//	L_i    = min_{0<t≤T_i} W_i(t)/t       (t ranges over the test points)
//	L      = max_i L_i
//
// and τ_i is schedulable iff L_i ≤ 1 (the set iff L ≤ 1). The paper
// replaces the per-task demand term C_j·⌈t/T_j⌉ by γᵘ_j(⌈t/T_j⌉), the upper
// workload curve of τ_j, producing W̃ ≤ W, L̃ ≤ L (relation 5): every set
// accepted by the classical test is accepted by the refined test, and sets
// whose expensive activations cannot cluster may be accepted only by the
// refined test.
package rms

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"wcm/internal/curve"
)

// Errors returned by this package.
var (
	ErrEmptySet  = errors.New("rms: empty task set")
	ErrBadTask   = errors.New("rms: invalid task")
	ErrBadIndex  = errors.New("rms: task index out of range")
	ErrNotSorted = errors.New("rms: tasks must be sorted by period")
)

// Task is a periodic task under rate-monotonic scheduling. Gamma is the
// upper workload curve γᵘ; for the classical WCET-only characterization use
// WCETTask, which sets γᵘ(k) = C·k.
type Task struct {
	Name   string
	Period int64       // T_i, also the relative deadline
	Gamma  curve.Curve // γᵘ_i; γᵘ(1) is the task's WCET C_i
}

// WCETTask builds a task with the single-value WCET characterization.
func WCETTask(name string, period, wcet int64) (Task, error) {
	if period <= 0 || wcet <= 0 {
		return Task{}, fmt.Errorf("%w: %q period=%d wcet=%d", ErrBadTask, name, period, wcet)
	}
	return Task{Name: name, Period: period, Gamma: curve.MustLinear(wcet)}, nil
}

// WCET returns the task's worst-case execution time γᵘ(1).
func (t Task) WCET() int64 { return t.Gamma.MustAt(1) }

// Validate checks task invariants.
func (t Task) Validate() error {
	if t.Period <= 0 {
		return fmt.Errorf("%w: %q period=%d", ErrBadTask, t.Name, t.Period)
	}
	if t.Gamma.PrefixLen() < 2 && !t.Gamma.Infinite() {
		return fmt.Errorf("%w: %q workload curve needs at least γᵘ(1)", ErrBadTask, t.Name)
	}
	if t.Gamma.MustAt(1) <= 0 {
		return fmt.Errorf("%w: %q has γᵘ(1)=%d", ErrBadTask, t.Name, t.Gamma.MustAt(1))
	}
	return nil
}

// TaskSet is a rate-monotonic task set, sorted by non-decreasing period.
type TaskSet []Task

// NewTaskSet validates the tasks and sorts them into rate-monotonic
// priority order (shorter period = higher priority; stable for ties).
func NewTaskSet(tasks ...Task) (TaskSet, error) {
	if len(tasks) == 0 {
		return nil, ErrEmptySet
	}
	ts := make(TaskSet, len(tasks))
	copy(ts, tasks)
	for _, t := range ts {
		if err := t.Validate(); err != nil {
			return nil, err
		}
	}
	sort.SliceStable(ts, func(i, j int) bool { return ts[i].Period < ts[j].Period })
	return ts, nil
}

// Utilization returns Σ C_i/T_i under the WCET characterization.
func (ts TaskSet) Utilization() float64 {
	var u float64
	for _, t := range ts {
		u += float64(t.WCET()) / float64(t.Period)
	}
	return u
}

// UtilizationBound returns the Liu & Layland bound n(2^{1/n} − 1): any task
// set with utilization below it is schedulable by RMS regardless of the
// exact periods.
func UtilizationBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * (math.Pow(2, 1/float64(n)) - 1)
}

// TestPoints returns the Lehoczky test points for task i (0-based): the
// multiples l·T_j ≤ T_i of every period T_j with j ≤ i, plus T_i itself.
// W_i(t)/t attains its minimum over (0, T_i] at one of these points because
// W_i is a right-continuous staircase that only jumps there.
func (ts TaskSet) TestPoints(i int) ([]int64, error) {
	if i < 0 || i >= len(ts) {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadIndex, i, len(ts))
	}
	seen := map[int64]bool{}
	var pts []int64
	Ti := ts[i].Period
	for j := 0; j <= i; j++ {
		Tj := ts[j].Period
		for l := int64(1); l*Tj <= Ti; l++ {
			if !seen[l*Tj] {
				seen[l*Tj] = true
				pts = append(pts, l*Tj)
			}
		}
	}
	if !seen[Ti] {
		pts = append(pts, Ti)
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a] < pts[b] })
	return pts, nil
}

// DemandWCET computes W_i(t) of eq. (3): cumulative WCET-based demand of
// tasks τ₁..τ_i in [0, t].
func (ts TaskSet) DemandWCET(i int, t int64) (int64, error) {
	if i < 0 || i >= len(ts) {
		return 0, fmt.Errorf("%w: %d of %d", ErrBadIndex, i, len(ts))
	}
	if t <= 0 {
		return 0, fmt.Errorf("rms: demand at t=%d", t)
	}
	var sum int64
	for j := 0; j <= i; j++ {
		arrivals := ceilDiv(t, ts[j].Period)
		sum += ts[j].WCET() * arrivals
	}
	return sum, nil
}

// DemandCurve computes W̃_i(t) of eq. (4): cumulative demand with each
// task's arrivals passed through its upper workload curve. Finite curves
// are extended by subadditive decomposition (a valid upper bound), so
// trace-derived curves work for any t.
func (ts TaskSet) DemandCurve(i int, t int64) (int64, error) {
	if i < 0 || i >= len(ts) {
		return 0, fmt.Errorf("%w: %d of %d", ErrBadIndex, i, len(ts))
	}
	if t <= 0 {
		return 0, fmt.Errorf("rms: demand at t=%d", t)
	}
	var sum int64
	for j := 0; j <= i; j++ {
		arrivals := ceilDiv(t, ts[j].Period)
		v, err := ts[j].Gamma.UpperBoundAt(int(arrivals))
		if err != nil {
			return 0, fmt.Errorf("rms: task %q γᵘ(%d): %w", ts[j].Name, arrivals, err)
		}
		sum += v
	}
	return sum, nil
}

// LFactors holds the per-task and set-wide schedulability factors.
type LFactors struct {
	PerTask []float64 // L_i (or L̃_i)
	Set     float64   // L = max_i L_i
}

// Schedulable reports whether every task meets its deadline: L ≤ 1.
func (l LFactors) Schedulable() bool { return l.Set <= 1 }

// AnalyzeWCET runs the classical Lehoczky test (eq. 3) on the set.
func (ts TaskSet) AnalyzeWCET() (LFactors, error) {
	return ts.analyze(ts.DemandWCET)
}

// AnalyzeCurve runs the workload-curve test (eq. 4) on the set.
func (ts TaskSet) AnalyzeCurve() (LFactors, error) {
	return ts.analyze(ts.DemandCurve)
}

func (ts TaskSet) analyze(demand func(int, int64) (int64, error)) (LFactors, error) {
	if len(ts) == 0 {
		return LFactors{}, ErrEmptySet
	}
	out := LFactors{PerTask: make([]float64, len(ts))}
	for i := range ts {
		pts, err := ts.TestPoints(i)
		if err != nil {
			return LFactors{}, err
		}
		li := math.Inf(1)
		for _, t := range pts {
			w, err := demand(i, t)
			if err != nil {
				return LFactors{}, err
			}
			if v := float64(w) / float64(t); v < li {
				li = v
			}
		}
		out.PerTask[i] = li
		if li > out.Set {
			out.Set = li
		}
	}
	return out, nil
}

// RequiredSpeed returns the minimum processor speed (as a fraction of the
// nominal speed used to express the execution demands) at which the task
// set remains schedulable under the workload-curve test: exactly L̃, since
// L_i = min_t W_i(t)/t is the speed at which τ_i's worst demand fits its
// window. This is the dynamic-voltage-scaling interpretation behind the
// paper's power-consumption motivation (Shin & Choi): a set with L̃ = 0.6
// can run at 60% clock — and the WCET view would demand L ≥ L̃.
func (ts TaskSet) RequiredSpeed() (float64, error) {
	l, err := ts.AnalyzeCurve()
	if err != nil {
		return 0, err
	}
	return l.Set, nil
}

// Compare runs both tests and reports the factors side by side. Relation
// (5) of the paper guarantees Curve.Set ≤ WCET.Set.
type Comparison struct {
	WCET  LFactors
	Curve LFactors
}

// Compare evaluates eq. (3) and eq. (4) on the same set.
func (ts TaskSet) Compare() (Comparison, error) {
	w, err := ts.AnalyzeWCET()
	if err != nil {
		return Comparison{}, err
	}
	c, err := ts.AnalyzeCurve()
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{WCET: w, Curve: c}, nil
}

// Hyperperiod returns the least common multiple of all periods (the horizon
// after which the synchronous schedule repeats). Returns an error if the
// value overflows int64.
func (ts TaskSet) Hyperperiod() (int64, error) {
	if len(ts) == 0 {
		return 0, ErrEmptySet
	}
	h := ts[0].Period
	for _, t := range ts[1:] {
		g := gcd64(h, t.Period)
		q := h / g
		if q > math.MaxInt64/t.Period {
			return 0, fmt.Errorf("rms: hyperperiod overflow")
		}
		h = q * t.Period
	}
	return h, nil
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
