package rms

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"wcm/internal/core"
	"wcm/internal/curve"
)

func mustWCETSet(t *testing.T, spec ...[2]int64) TaskSet {
	t.Helper()
	tasks := make([]Task, len(spec))
	for i, s := range spec {
		task, err := WCETTask("", s[1], s[0]) // (C, T)
		if err != nil {
			t.Fatal(err)
		}
		tasks[i] = task
	}
	ts, err := NewTaskSet(tasks...)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestUtilizationBound(t *testing.T) {
	if UtilizationBound(1) != 1 {
		t.Fatalf("U(1) = %g", UtilizationBound(1))
	}
	// n=2: 2(√2−1) ≈ 0.8284; n→∞: ln 2 ≈ 0.6931.
	if math.Abs(UtilizationBound(2)-0.828427) > 1e-5 {
		t.Fatalf("U(2) = %g", UtilizationBound(2))
	}
	if math.Abs(UtilizationBound(10000)-math.Ln2) > 1e-4 {
		t.Fatalf("U(10000) = %g", UtilizationBound(10000))
	}
	if UtilizationBound(0) != 0 {
		t.Fatal("U(0) must be 0")
	}
}

func TestTaskValidation(t *testing.T) {
	if _, err := WCETTask("x", 0, 1); !errors.Is(err, ErrBadTask) {
		t.Fatal("zero period must fail")
	}
	if _, err := WCETTask("x", 5, 0); !errors.Is(err, ErrBadTask) {
		t.Fatal("zero WCET must fail")
	}
	if _, err := NewTaskSet(); !errors.Is(err, ErrEmptySet) {
		t.Fatal("empty set must fail")
	}
}

func TestNewTaskSetSorts(t *testing.T) {
	a, _ := WCETTask("slow", 100, 10)
	b, _ := WCETTask("fast", 10, 1)
	ts, err := NewTaskSet(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].Name != "fast" || ts[1].Name != "slow" {
		t.Fatalf("not sorted: %s, %s", ts[0].Name, ts[1].Name)
	}
}

// The classic Liu & Layland example: C1=1,T1=2; C2=1,T2=5 → U = 0.7,
// schedulable. And the textbook infeasible pair C1=1,T1=2; C2=3,T2=5.
func TestLehoczkyClassicExamples(t *testing.T) {
	ok := mustWCETSet(t, [2]int64{1, 2}, [2]int64{1, 5})
	l, err := ok.AnalyzeWCET()
	if err != nil {
		t.Fatal(err)
	}
	if !l.Schedulable() {
		t.Fatalf("schedulable set rejected: L=%g", l.Set)
	}
	// τ2 demand at t=5: 1·⌈5/2⌉ + 3·1 = 6 > 5; at t=4: 2+3=5 > 4;
	// at t=2: 1+3 = 4 > 2 — infeasible.
	bad := mustWCETSet(t, [2]int64{1, 2}, [2]int64{3, 5})
	l2, err := bad.AnalyzeWCET()
	if err != nil {
		t.Fatal(err)
	}
	if l2.Schedulable() {
		t.Fatalf("infeasible set accepted: L=%g", l2.Set)
	}
	// Full utilization harmonic set C=1,T=2 + C=2,T=4: U=1, schedulable.
	harm := mustWCETSet(t, [2]int64{1, 2}, [2]int64{2, 4})
	l3, err := harm.AnalyzeWCET()
	if err != nil {
		t.Fatal(err)
	}
	if !l3.Schedulable() || l3.Set != 1 {
		t.Fatalf("harmonic set: L=%g, want exactly 1", l3.Set)
	}
}

func TestTestPoints(t *testing.T) {
	ts := mustWCETSet(t, [2]int64{1, 3}, [2]int64{1, 8})
	pts, err := ts.TestPoints(1)
	if err != nil {
		t.Fatal(err)
	}
	// Multiples of 3 up to 8: 3, 6; multiples of 8: 8 → {3, 6, 8}.
	want := []int64{3, 6, 8}
	if len(pts) != len(want) {
		t.Fatalf("points = %v", pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("points = %v, want %v", pts, want)
		}
	}
	if _, err := ts.TestPoints(5); !errors.Is(err, ErrBadIndex) {
		t.Fatal("bad index must fail")
	}
}

// With γᵘ(k) = C·k the curve test must coincide with the WCET test.
func TestCurveTestDegeneratesToWCET(t *testing.T) {
	ts := mustWCETSet(t, [2]int64{2, 7}, [2]int64{3, 11}, [2]int64{5, 23})
	cmp, err := ts.Compare()
	if err != nil {
		t.Fatal(err)
	}
	for i := range cmp.WCET.PerTask {
		if cmp.WCET.PerTask[i] != cmp.Curve.PerTask[i] {
			t.Fatalf("L_%d: %g vs %g", i, cmp.WCET.PerTask[i], cmp.Curve.PerTask[i])
		}
	}
}

// Paper Sec. 3.1 headline: a set rejected by eq. (3) but accepted by
// eq. (4) when expensive activations cannot cluster.
func TestCurveTestAcceptsWhatWCETRejects(t *testing.T) {
	// High-priority polling task: T=10, every 3rd activation may be
	// expensive (ep=9), others cheap (ec=2). WCET test sees C=9 every 10
	// time units; curve test sees γᵘ(k) ≪ 9k.
	p := core.PollingTask{Period: 10, ThetaMin: 30, ThetaMax: 50, Ep: 9, Ec: 2}
	w, err := p.Workload(64)
	if err != nil {
		t.Fatal(err)
	}
	hi := Task{Name: "poller", Period: 10, Gamma: w.Upper}
	lo, err := WCETTask("worker", 40, 20)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := NewTaskSet(hi, lo)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := ts.Compare()
	if err != nil {
		t.Fatal(err)
	}
	// WCET view: demand at t=40 for τ2 is 9·4 + 20 = 56 > 40 (and worse at
	// smaller t) → rejected.
	if cmp.WCET.Schedulable() {
		t.Fatalf("WCET test should reject: L=%g", cmp.WCET.Set)
	}
	// Curve view at t=40: γᵘ(4)=22, +20 = 42 > 40... at t=30: γᵘ(3)=20+20=40
	// wait τ2 test points {10,20,30,40}: t=30: γᵘ(3)+20 = 40 > 30;
	// t=40: γᵘ(4)+20 = 42 > 40. Hmm — tune worker WCET to 16:
	// t=40: 22+16 = 38 ≤ 40 ⇒ schedulable.
	if cmp.Curve.Schedulable() {
		// Accept either outcome for C=20 but enforce the relation; the
		// decisive assertion uses C=16 below.
		t.Log("curve test accepted with C=20")
	}
	lo2, _ := WCETTask("worker", 40, 16)
	ts2, _ := NewTaskSet(hi, lo2)
	cmp2, err := ts2.Compare()
	if err != nil {
		t.Fatal(err)
	}
	if cmp2.WCET.Schedulable() {
		t.Fatalf("WCET test should still reject C=16: L=%g", cmp2.WCET.Set)
	}
	if !cmp2.Curve.Schedulable() {
		t.Fatalf("curve test should accept C=16: L̃=%g", cmp2.Curve.Set)
	}
}

// Relation (5): W̃ ≤ W, L̃_i ≤ L_i, L̃ ≤ L for arbitrary curve tasks.
func TestQuickRelation5(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		tasks := make([]Task, n)
		for i := range tasks {
			period := int64(5+rng.Intn(50)) * 2
			// Random subadditive-ish curve from a random trace.
			trace := make([]int64, 10+rng.Intn(30))
			for j := range trace {
				trace[j] = 1 + rng.Int63n(20)
			}
			a, err := core.NewAnalyzer(trace)
			if err != nil {
				return false
			}
			g, err := a.UpperCurve(len(trace))
			if err != nil {
				return false
			}
			tasks[i] = Task{Name: "t", Period: period, Gamma: g}
		}
		ts, err := NewTaskSet(tasks...)
		if err != nil {
			return false
		}
		cmp, err := ts.Compare()
		if err != nil {
			return false
		}
		for i := range cmp.WCET.PerTask {
			if cmp.Curve.PerTask[i] > cmp.WCET.PerTask[i]+1e-12 {
				return false
			}
		}
		return cmp.Curve.Set <= cmp.WCET.Set+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestDemandMonotoneInT(t *testing.T) {
	ts := mustWCETSet(t, [2]int64{2, 7}, [2]int64{3, 11})
	var prev int64
	for tt := int64(1); tt <= 22; tt++ {
		w, err := ts.DemandWCET(1, tt)
		if err != nil {
			t.Fatal(err)
		}
		if w < prev {
			t.Fatalf("demand decreased at t=%d", tt)
		}
		prev = w
	}
	if _, err := ts.DemandWCET(1, 0); err == nil {
		t.Fatal("t=0 must fail")
	}
	if _, err := ts.DemandCurve(9, 5); !errors.Is(err, ErrBadIndex) {
		t.Fatal("bad index must fail")
	}
}

func TestHyperperiod(t *testing.T) {
	ts := mustWCETSet(t, [2]int64{1, 4}, [2]int64{1, 6}, [2]int64{1, 10})
	h, err := ts.Hyperperiod()
	if err != nil || h != 60 {
		t.Fatalf("hyperperiod = %d, %v; want 60", h, err)
	}
	big1, _ := WCETTask("a", math.MaxInt64/2-1, 1)
	big2, _ := WCETTask("b", math.MaxInt64/3-1, 1)
	ts2, _ := NewTaskSet(big1, big2)
	if _, err := ts2.Hyperperiod(); err == nil {
		t.Fatal("overflow must be reported")
	}
}

func TestUpperBoundAtExtension(t *testing.T) {
	// Finite curve 0,5,8 extended: C(5) ≤ 2·C(2)+C(1) = 16+5 = 21.
	c := curve.MustNew([]int64{0, 5, 8}, 0, 0)
	v, err := c.UpperBoundAt(5)
	if err != nil || v != 21 {
		t.Fatalf("UpperBoundAt(5) = %d, %v; want 21", v, err)
	}
	// Within prefix: exact.
	v, err = c.UpperBoundAt(2)
	if err != nil || v != 8 {
		t.Fatalf("UpperBoundAt(2) = %d, %v; want 8", v, err)
	}
}
