package rms

import (
	"errors"
	"fmt"
)

// Response-time analysis: the fixpoint companion of the Lehoczky test.
// Under synchronous release (the critical instant) the worst response time
// of task i satisfies
//
//	R = C_i + Σ_{j<i} C_j · ⌈R/T_j⌉              (classical)
//	R = γᵘ_i(1) + Σ_{j<i} γᵘ_j(⌈R/T_j⌉)          (workload curves)
//
// iterated from R = C_i to the least fixpoint. Task i is schedulable iff
// the fixpoint exists with R ≤ T_i (deadlines equal periods, so only the
// first job needs checking). The curve variant replaces each interferer's
// cumulative demand by its upper workload curve, mirroring eq. (4).

// ErrUnbounded reports that the response-time recurrence exceeded the
// task's deadline (the task set is not schedulable at that priority).
var ErrUnbounded = fmt.Errorf("rms: response time exceeds deadline")

// ResponseTimeWCET computes the classical worst-case response time of task
// i (0-based, rate-monotonic order). Returns ErrUnbounded if R would exceed
// T_i.
func (ts TaskSet) ResponseTimeWCET(i int) (int64, error) {
	return ts.responseTime(i, func(j int, arrivals int64) (int64, error) {
		return ts[j].WCET() * arrivals, nil
	})
}

// ResponseTimeCurve computes the workload-curve worst-case response time of
// task i. Finite curves extend by subadditive decomposition.
func (ts TaskSet) ResponseTimeCurve(i int) (int64, error) {
	return ts.responseTime(i, func(j int, arrivals int64) (int64, error) {
		return ts[j].Gamma.UpperBoundAt(int(arrivals))
	})
}

func (ts TaskSet) responseTime(i int, demand func(j int, arrivals int64) (int64, error)) (int64, error) {
	if i < 0 || i >= len(ts) {
		return 0, fmt.Errorf("%w: %d of %d", ErrBadIndex, i, len(ts))
	}
	r := ts[i].WCET()
	for iter := 0; ; iter++ {
		next := ts[i].WCET()
		for j := 0; j < i; j++ {
			arrivals := ceilDiv(r, ts[j].Period)
			d, err := demand(j, arrivals)
			if err != nil {
				return 0, err
			}
			next += d
		}
		if next > ts[i].Period {
			return next, fmt.Errorf("%w: task %q R=%d > T=%d", ErrUnbounded, ts[i].Name, next, ts[i].Period)
		}
		if next == r {
			return r, nil
		}
		r = next
		if iter > 1_000_000 {
			return 0, fmt.Errorf("rms: response-time iteration diverged for %q", ts[i].Name)
		}
	}
}

// ResponseTimes computes both response-time vectors; entries are -1 where
// the recurrence exceeds the deadline.
func (ts TaskSet) ResponseTimes() (wcet, curve []int64, err error) {
	wcet = make([]int64, len(ts))
	curve = make([]int64, len(ts))
	for i := range ts {
		r, err := ts.ResponseTimeWCET(i)
		if err != nil && !errors.Is(err, ErrUnbounded) {
			return nil, nil, err
		}
		if err != nil {
			wcet[i] = -1
		} else {
			wcet[i] = r
		}
		r, err = ts.ResponseTimeCurve(i)
		if err != nil && !errors.Is(err, ErrUnbounded) {
			return nil, nil, err
		}
		if err != nil {
			curve[i] = -1
		} else {
			curve[i] = r
		}
	}
	return wcet, curve, nil
}
