package rms

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wcm/internal/core"
	"wcm/internal/events"
	"wcm/internal/sched"
)

// toSchedTasks converts a WCET task set to simulator tasks with synchronous
// release (the critical instant) and constant WCET demands.
func toSchedTasks(ts TaskSet) []sched.Task {
	out := make([]sched.Task, len(ts))
	for i, t := range ts {
		out[i] = sched.Task{Name: t.Name, Period: t.Period, Demands: []int64{t.WCET()}}
	}
	return out
}

// The Lehoczky test is exact for synchronous periodic tasks: acceptance must
// imply a miss-free simulation over the hyperperiod, rejection must produce
// a miss in the critical-instant simulation.
func TestQuickAnalysisMatchesSimulation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		tasks := make([]Task, n)
		for i := range tasks {
			period := int64(2 + rng.Intn(12))
			wcet := 1 + rng.Int63n(period)
			task, err := WCETTask("t", period, wcet)
			if err != nil {
				return false
			}
			tasks[i] = task
		}
		ts, err := NewTaskSet(tasks...)
		if err != nil {
			return false
		}
		l, err := ts.AnalyzeWCET()
		if err != nil {
			return false
		}
		h, err := ts.Hyperperiod()
		if err != nil {
			return false
		}
		res, err := sched.Simulate(toSchedTasks(ts), 2*h)
		if err != nil {
			return false
		}
		if l.Schedulable() {
			return res.Misses == 0
		}
		return res.Misses > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// A set accepted only by the workload-curve test must still run miss-free
// when the actual demands follow the polling pattern the curve models.
func TestCurveAcceptedSetRunsMissFree(t *testing.T) {
	p := core.PollingTask{Period: 10, ThetaMin: 30, ThetaMax: 50, Ep: 9, Ec: 2}
	w, err := p.Workload(64)
	if err != nil {
		t.Fatal(err)
	}
	hi := Task{Name: "poller", Period: 10, Gamma: w.Upper}
	lo, err := WCETTask("worker", 40, 16)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := NewTaskSet(hi, lo)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := ts.Compare()
	if err != nil {
		t.Fatal(err)
	}
	if cmp.WCET.Schedulable() || !cmp.Curve.Schedulable() {
		t.Fatalf("premise broken: L=%g L̃=%g", cmp.WCET.Set, cmp.Curve.Set)
	}
	// Simulate many sampled polling demand sequences; none may miss.
	for seed := uint64(1); seed <= 25; seed++ {
		demands, err := events.PollingDemands(p.Period, p.ThetaMin, p.ThetaMax, p.Ep, p.Ec, 400, seed)
		if err != nil {
			t.Fatal(err)
		}
		simTasks := []sched.Task{
			{Name: "poller", Period: 10, Demands: demands},
			{Name: "worker", Period: 40, Demands: []int64{16}},
		}
		res, err := sched.Simulate(simTasks, 4000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Misses != 0 {
			t.Fatalf("seed %d: %d misses despite curve-test acceptance", seed, res.Misses)
		}
	}
}

// The worst demand pattern admitted by γᵘ (expensive burst first) must also
// be miss-free: the curve test guarantees ALL consistent sequences.
func TestCurveAcceptedSetWorstPhasing(t *testing.T) {
	p := core.PollingTask{Period: 10, ThetaMin: 30, ThetaMax: 50, Ep: 9, Ec: 2}
	w, err := p.Workload(64)
	if err != nil {
		t.Fatal(err)
	}
	hi := Task{Name: "poller", Period: 10, Gamma: w.Upper}
	lo, _ := WCETTask("worker", 40, 16)
	ts, _ := NewTaskSet(hi, lo)
	cmp, err := ts.Compare()
	if err != nil || !cmp.Curve.Schedulable() {
		t.Fatalf("premise broken: %v %v", cmp.Curve.Set, err)
	}
	// Greedy-worst sequence consistent with γᵘ: demand of job k is
	// γᵘ(k+1) − γᵘ(k) (front-loads all expensive activations).
	worst := make([]int64, 120)
	for k := range worst {
		worst[k] = w.Upper.MustAt(k+1) - w.Upper.MustAt(k)
	}
	simTasks := []sched.Task{
		{Name: "poller", Period: 10, Demands: worst},
		{Name: "worker", Period: 40, Demands: []int64{16}},
	}
	res, err := sched.Simulate(simTasks, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 0 {
		t.Fatalf("%d misses under greedy-worst phasing", res.Misses)
	}
}
