package rms_test

import (
	"fmt"
	"log"

	"wcm/internal/core"
	"wcm/internal/rms"
)

// The headline of Sec. 3.1: eq. (4) accepts a set eq. (3) rejects.
func ExampleTaskSet_Compare() {
	poll := core.PollingTask{Period: 10, ThetaMin: 30, ThetaMax: 50, Ep: 9, Ec: 2}
	w, err := poll.Workload(64)
	if err != nil {
		log.Fatal(err)
	}
	worker, err := rms.WCETTask("worker", 40, 16)
	if err != nil {
		log.Fatal(err)
	}
	set, err := rms.NewTaskSet(rms.Task{Name: "poller", Period: 10, Gamma: w.Upper}, worker)
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := set.Compare()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("L = %.3f (eq. 3), L̃ = %.3f (eq. 4)\n", cmp.WCET.Set, cmp.Curve.Set)
	// Output:
	// L = 1.300 (eq. 3), L̃ = 0.950 (eq. 4)
}

// Response-time analysis with workload curves: the fixpoint of
// R = C_lo + γᵘ_hi(⌈R/T_hi⌉).
func ExampleTaskSet_ResponseTimeCurve() {
	poll := core.PollingTask{Period: 10, ThetaMin: 30, ThetaMax: 50, Ep: 9, Ec: 2}
	w, _ := poll.Workload(64)
	worker, _ := rms.WCETTask("worker", 40, 16)
	set, _ := rms.NewTaskSet(rms.Task{Name: "poller", Period: 10, Gamma: w.Upper}, worker)
	r, err := set.ResponseTimeCurve(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worst response of the worker: %d (deadline 40)\n", r)
	// Output:
	// worst response of the worker: 38 (deadline 40)
}

// The DVS interpretation: L̃ is the minimum processor speed that keeps the
// set schedulable.
func ExampleTaskSet_RequiredSpeed() {
	a, _ := rms.WCETTask("a", 4, 1)
	b, _ := rms.WCETTask("b", 8, 2)
	set, _ := rms.NewTaskSet(a, b)
	s, err := set.RequiredSpeed()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("can run at %.0f%% clock\n", s*100)
	// Output:
	// can run at 50% clock
}
