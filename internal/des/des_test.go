package des

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	if err := e.Schedule(30, func() { order = append(order, 3) }); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(10, func() { order = append(order, 1) }); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(20, func() { order = append(order, 2) }); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 || e.Steps() != 3 {
		t.Fatalf("now=%d steps=%d", e.Now(), e.Steps())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if err := e.Schedule(5, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestScheduleInPastFails(t *testing.T) {
	e := NewEngine()
	_ = e.Schedule(10, func() {})
	e.RunAll()
	if err := e.Schedule(5, func() {}); !errors.Is(err, ErrPastEvent) {
		t.Fatalf("err = %v, want ErrPastEvent", err)
	}
	if err := e.Schedule(20, nil); !errors.Is(err, ErrNilAction) {
		t.Fatalf("err = %v, want ErrNilAction", err)
	}
}

func TestAfterAndCascading(t *testing.T) {
	e := NewEngine()
	var fired []Time
	_ = e.Schedule(100, func() {
		fired = append(fired, e.Now())
		_ = e.After(50, func() {
			fired = append(fired, e.Now())
		})
	})
	e.RunAll()
	if len(fired) != 2 || fired[0] != 100 || fired[1] != 150 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestRunHorizon(t *testing.T) {
	e := NewEngine()
	var count int
	_ = e.Schedule(10, func() { count++ })
	_ = e.Schedule(20, func() { count++ })
	_ = e.Schedule(30, func() { count++ })
	e.Run(20)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if e.Now() != 20 {
		t.Fatalf("now = %d, want 20 (horizon)", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.Run(100)
	if count != 3 || e.Now() != 100 {
		t.Fatalf("after second run: count=%d now=%d", count, e.Now())
	}
}

func TestQuickClockNeverGoesBackwards(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		last := Time(-1)
		ok := true
		for _, d := range delays {
			_ = e.Schedule(Time(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.RunAll()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
