// Package des is a minimal deterministic discrete-event simulation kernel:
// a time-ordered event queue with a run loop. It replaces the SystemC
// transaction-level engine the paper used. Events scheduled for the same
// instant fire in scheduling order (FIFO tie-break), so simulations are
// fully deterministic.
package des

import (
	"container/heap"
	"errors"
	"fmt"
)

// Time is simulated time in nanoseconds.
type Time = int64

// Errors returned by the engine.
var (
	ErrPastEvent = errors.New("des: cannot schedule in the past")
	ErrNilAction = errors.New("des: nil action")
)

type event struct {
	at  Time
	seq uint64 // insertion order, breaks ties deterministically
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator instance.
type Engine struct {
	queue eventHeap
	now   Time
	seq   uint64
	steps uint64
}

// NewEngine returns an engine at time 0 with an empty queue.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events processed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule enqueues fn to run at absolute time `at` (≥ Now).
func (e *Engine) Schedule(at Time, fn func()) error {
	if fn == nil {
		return ErrNilAction
	}
	if at < e.now {
		return fmt.Errorf("%w: at=%d now=%d", ErrPastEvent, at, e.now)
	}
	e.seq++
	heap.Push(&e.queue, event{at: at, seq: e.seq, fn: fn})
	return nil
}

// After enqueues fn to run `d` nanoseconds from now (d ≥ 0).
func (e *Engine) After(d Time, fn func()) error {
	return e.Schedule(e.now+d, fn)
}

// Run processes events in time order until the queue is empty or the next
// event lies beyond `until`; the clock ends at the last processed event (or
// `until` if that is later). Events scheduled by handlers are processed in
// the same run.
func (e *Engine) Run(until Time) {
	for len(e.queue) > 0 && e.queue[0].at <= until {
		ev := heap.Pop(&e.queue).(event)
		e.now = ev.at
		e.steps++
		ev.fn()
	}
	if e.now < until {
		e.now = until
	}
}

// RunAll processes every queued event regardless of horizon.
func (e *Engine) RunAll() {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(event)
		e.now = ev.at
		e.steps++
		ev.fn()
	}
}
