// Package arrival implements event arrival curves ᾱ(Δ): upper bounds on the
// number of events seen in any time window of length Δ.
//
// The paper follows the Network-Calculus convention (Le Boudec & Thiran,
// generalized to event flows by Chakraborty, Künzli, Thiele, DATE'03): an
// arrival curve characterizes a whole class of event streams, and for the
// MPEG-2 case study it is extracted from simulator traces.
//
// The central extraction artifact is the minimal-span table
//
//	d(k) = min_j ( t[j+k−1] − t[j] )   for k = 1..K
//
// — the shortest time in which k consecutive events ever arrive. The
// arrival curve is its (pseudo-)inverse: ᾱ(Δ) = max{k : d(k) ≤ Δ}. Keeping
// the span table explicit lets downstream analyses (the Fmin search of
// eq. 9) iterate exactly over event counts with no time discretization.
package arrival

import (
	"errors"
	"fmt"
	"sort"

	"wcm/internal/events"
	"wcm/internal/kernel"
	"wcm/internal/pwl"
)

// Errors returned by this package.
var (
	ErrBadMaxK    = errors.New("arrival: maxK must be within 1..trace length")
	ErrEmptySpans = errors.New("arrival: empty span table")
	ErrBadSpans   = errors.New("arrival: spans must be non-negative and non-decreasing")
)

// Spans is the minimal-span table of a trace: Spans[k-1] = d(k), the
// shortest observed duration containing k consecutive events. d(1) = 0 by
// convention (a single event occupies no time). Spans are non-decreasing.
type Spans []int64

// Validate checks the span-table invariants.
func (s Spans) Validate() error {
	if len(s) == 0 {
		return ErrEmptySpans
	}
	if s[0] != 0 {
		return fmt.Errorf("%w: d(1)=%d, want 0", ErrBadSpans, s[0])
	}
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return fmt.Errorf("%w: d(%d)=%d after d(%d)=%d", ErrBadSpans, i+1, s[i], i, s[i-1])
		}
	}
	return nil
}

// MaxK returns the largest event count the table covers.
func (s Spans) MaxK() int { return len(s) }

// At returns d(k). k must be in 1..MaxK().
func (s Spans) At(k int) (int64, error) {
	if k < 1 || k > len(s) {
		return 0, fmt.Errorf("%w: k=%d of %d", ErrBadMaxK, k, len(s))
	}
	return s[k-1], nil
}

// Alpha evaluates the arrival curve ᾱ(Δ) = max{k : d(k) ≤ Δ} implied by the
// span table. For Δ ≥ d(MaxK) the result saturates at MaxK (the table is a
// finite observation; callers must choose horizons within it).
func (s Spans) Alpha(dt int64) int {
	if dt < 0 {
		return 0
	}
	// Spans are sorted: find the last k with d(k) ≤ dt.
	return sort.Search(len(s), func(i int) bool { return s[i] > dt })
}

// FromTrace computes the minimal-span table of a timed trace for
// k = 1..maxK: d(k) = min over j of t[j+k−1] − t[j]. It routes through the
// fused extraction kernel; use ExtractSpans when the maximal table D(k) is
// needed too — both come out of the same pass.
func FromTrace(tt events.TimedTrace, maxK int) (Spans, error) {
	mins, _, err := ExtractSpans(tt, maxK)
	return mins, err
}

// ExtractSpans computes BOTH span tables of a timed trace in one fused,
// blocked, pool-parallel kernel sweep: the minimal spans d(k) behind the
// upper arrival curve ᾱ and the maximal spans D(k) behind the lower curve
// ᾱˡ (see MaxSpans). The span of k consecutive events is the k−1 offset
// difference of the timestamp array, so the kernel runs directly on the
// trace with maxK−1 as its largest offset.
func ExtractSpans(tt events.TimedTrace, maxK int) (Spans, MaxSpans, error) {
	if err := tt.Validate(); err != nil {
		return nil, nil, err
	}
	if maxK < 1 || maxK > len(tt) {
		return nil, nil, fmt.Errorf("%w: maxK=%d, n=%d", ErrBadMaxK, maxK, len(tt))
	}
	up, lo, err := kernel.Extract(tt, maxK-1, kernel.Options{})
	if err != nil {
		return nil, nil, err
	}
	mins := make(Spans, maxK)
	maxs := make(MaxSpans, maxK)
	for k := 2; k <= maxK; k++ {
		mins[k-1] = lo[k-1]
		maxs[k-1] = up[k-1]
	}
	return mins, maxs, nil
}

// FromValues validates raw span-table values produced elsewhere (e.g. the
// incremental sliding-window maintainer of internal/stream) and packages
// them as a Spans table. The input is copied.
func FromValues(vals []int64) (Spans, error) {
	s := append(Spans(nil), vals...)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Merge combines span tables from several traces into a table valid for all
// of them: the arrival curve must upper-bound every trace, so the merged
// d(k) is the MINIMUM of the individual d(k) (a shorter span means more
// events per window). Tables are truncated to the shortest.
func Merge(tables ...Spans) (Spans, error) {
	if len(tables) == 0 {
		return nil, ErrEmptySpans
	}
	n := tables[0].MaxK()
	for _, t := range tables[1:] {
		if t.MaxK() < n {
			n = t.MaxK()
		}
	}
	if n == 0 {
		return nil, ErrEmptySpans
	}
	out := make(Spans, n)
	for i := range out {
		best := tables[0][i]
		for _, t := range tables[1:] {
			if t[i] < best {
				best = t[i]
			}
		}
		out[i] = best
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// Curve renders the span table as a piecewise-linear arrival-curve envelope
// (see pwl.Staircase): ᾱ_pwl(Δ) ≥ ᾱ(Δ) everywhere, equality at the span
// breakpoints. The base is 0 events at Δ "just below" d(1)=0; the first
// step at Δ=0 yields ᾱ(0) ≥ 1 as usual for closed windows.
func (s Spans) Curve() (pwl.Curve, error) {
	if err := s.Validate(); err != nil {
		return pwl.Curve{}, err
	}
	return pwl.Staircase(0, s)
}

// Periodic returns the exact span table of a strictly periodic stream:
// d(k) = (k−1)·period.
func Periodic(period int64, maxK int) (Spans, error) {
	if period <= 0 || maxK < 1 {
		return nil, fmt.Errorf("arrival: Periodic(period=%d, maxK=%d)", period, maxK)
	}
	s := make(Spans, maxK)
	for k := 1; k <= maxK; k++ {
		s[k-1] = int64(k-1) * period
	}
	return s, nil
}

// PeriodicJitter returns the span table of a periodic-with-jitter stream
// (period p, jitter j): d(k) = max(0, (k−1)·p − j). This is the standard
// PJD event model with no minimum distance.
func PeriodicJitter(period, jitter int64, maxK int) (Spans, error) {
	if period <= 0 || jitter < 0 || maxK < 1 {
		return nil, fmt.Errorf("arrival: PeriodicJitter(p=%d, j=%d, maxK=%d)", period, jitter, maxK)
	}
	s := make(Spans, maxK)
	for k := 1; k <= maxK; k++ {
		d := int64(k-1)*period - jitter
		if d < 0 {
			d = 0
		}
		s[k-1] = d
	}
	return s, nil
}

// Sporadic returns the span table of a sporadic stream with minimum
// inter-arrival θmin: d(k) = (k−1)·θmin — the densest packing permitted.
func Sporadic(thetaMin int64, maxK int) (Spans, error) {
	return Periodic(thetaMin, maxK)
}

// PJD holds the parameters of the standard periodic-with-jitter event
// model (SymTA/S-style): nominal period P, jitter J.
type PJD struct {
	Period int64
	Jitter int64
}

// FitPJD fits the tightest periodic-with-jitter model that upper-bounds an
// observed span table: the model's spans max(0, (k−1)·P − J) must lower-
// bound the observed d(k) (so its arrival curve dominates the trace's).
// P is the largest period with (k−1)·P − d(k) bounded (the long-run
// slope), J the smallest jitter that covers every observation. Returns an
// error for tables too short to estimate a slope.
//
// Fitting maps trace-derived characterizations into the parameter space of
// classical event-model-based frameworks, at the cost of the precision the
// paper's curves retain.
func FitPJD(s Spans) (PJD, error) {
	if err := s.Validate(); err != nil {
		return PJD{}, err
	}
	if s.MaxK() < 2 {
		return PJD{}, fmt.Errorf("%w: need at least d(2)", ErrBadMaxK)
	}
	// Long-run period: the tail increment d(n) − d(n−1), which equals P
	// exactly once the jitter clamp max(0, ·) is inactive. Soundness does
	// not depend on the estimate — J below is computed to cover every
	// observation for whatever P we pick.
	n := s.MaxK()
	period := s[n-1] - s[n-2]
	if period < 1 {
		period = 1
	}
	var jitter int64
	for k := 2; k <= n; k++ {
		if j := int64(k-1)*period - s[k-1]; j > jitter {
			jitter = j
		}
	}
	return PJD{Period: period, Jitter: jitter}, nil
}

// Spans returns the span table of the fitted model for k = 1..maxK:
// d(k) = max(0, (k−1)·P − J).
func (m PJD) Spans(maxK int) (Spans, error) {
	return PeriodicJitter(m.Period, m.Jitter, maxK)
}

// LeakyBucket returns the piecewise-linear arrival curve α(Δ) = b + r·Δ
// (burst b events, sustained rate r events/ns). Provided for analyses that
// start from a declarative flow specification rather than a trace.
func LeakyBucket(burst float64, rate float64) (pwl.Curve, error) {
	if burst < 0 || rate < 0 {
		return pwl.Curve{}, fmt.Errorf("arrival: LeakyBucket(b=%g, r=%g)", burst, rate)
	}
	return pwl.New([]pwl.Point{{X: 0, Y: burst}}, rate)
}
