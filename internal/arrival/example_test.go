package arrival_test

import (
	"fmt"
	"log"

	"wcm/internal/arrival"
	"wcm/internal/events"
)

// Extracting the minimal-span table (the arrival-curve representation the
// whole analysis runs on) from a timed trace.
func ExampleFromTrace() {
	tt := events.TimedTrace{0, 3, 4, 10, 11, 12}
	spans, err := arrival.FromTrace(tt, 4)
	if err != nil {
		log.Fatal(err)
	}
	for k := 1; k <= 4; k++ {
		d, _ := spans.At(k)
		if k > 1 {
			fmt.Print(" ")
		}
		fmt.Printf("d(%d)=%d", k, d)
	}
	fmt.Println()
	fmt.Println("ᾱ(4ns) =", spans.Alpha(4))
	// Output:
	// d(1)=0 d(2)=1 d(3)=2 d(4)=8
	// ᾱ(4ns) = 3
}

// Fitting a periodic-with-jitter event model to an observed table, for
// interoperability with classical event-model frameworks.
func ExampleFitPJD() {
	spans, err := arrival.PeriodicJitter(100, 30, 12)
	if err != nil {
		log.Fatal(err)
	}
	m, err := arrival.FitPJD(spans)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P=%d J=%d\n", m.Period, m.Jitter)
	// Output:
	// P=100 J=30
}

// Lower arrival curves: the throughput side — how many events any window
// is guaranteed to contain.
func ExampleMaxSpans_AlphaLower() {
	spans, err := arrival.PeriodicMax(10, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("any 35ns window holds ≥", spans.AlphaLower(35), "events")
	// Output:
	// any 35ns window holds ≥ 3 events
}
