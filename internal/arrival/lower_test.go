package arrival

import (
	"errors"
	"testing"
	"testing/quick"

	"wcm/internal/events"
)

func bruteMaxSpan(tt events.TimedTrace, k int) int64 {
	worst := int64(0)
	for j := 0; j+k <= len(tt); j++ {
		if d := tt[j+k-1] - tt[j]; d > worst {
			worst = d
		}
	}
	return worst
}

// bruteMinCount counts the fewest events in any half-open window of length
// dt that lies fully inside the observed trace span (windows hanging past
// the last event would spuriously count unobserved time as empty).
func bruteMinCount(tt events.TimedTrace, dt int64) int {
	min := len(tt) + 1
	last := tt[len(tt)-1]
	consider := func(from int64) {
		if from < tt[0] || from+dt > last {
			return
		}
		n := tt.CountIn(from, dt)
		if n < min {
			min = n
		}
	}
	for _, t := range tt {
		consider(t + 1) // just after an event: the adversarial placement
		consider(t)
	}
	return min
}

func TestMaxSpansMatchesBruteForce(t *testing.T) {
	tt := events.TimedTrace{0, 3, 4, 10, 11, 12, 30, 31}
	spans, err := MaxSpansFromTrace(tt, len(tt))
	if err != nil {
		t.Fatal(err)
	}
	if err := spans.Validate(); err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= len(tt); k++ {
		got, err := spans.At(k)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteMaxSpan(tt, k); got != want {
			t.Fatalf("D(%d) = %d, want %d", k, got, want)
		}
	}
	if _, err := spans.At(0); err == nil {
		t.Fatal("At(0) must fail")
	}
}

func TestAlphaLowerPeriodic(t *testing.T) {
	// Period 10: a window of length Δ is guaranteed ⌈(Δ−10)/10⌉... check
	// against the formula via the table: D(k+2) = (k+1)·10 > Δ.
	spans, err := PeriodicMax(10, 12)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		dt   int64
		want int
	}{{-1, 0}, {0, 0}, {9, 0}, {10, 1}, {11, 1}, {20, 2}, {21, 2}, {95, 9}, {10000, 10}}
	for _, tc := range cases {
		if got := spans.AlphaLower(tc.dt); got != tc.want {
			t.Fatalf("ᾱˡ(%d) = %d, want %d", tc.dt, got, tc.want)
		}
	}
}

// The guarantee: every actual window of the trace holds at least ᾱˡ(Δ)
// events.
func TestAlphaLowerBoundsWindowCounts(t *testing.T) {
	tt, err := events.Sporadic(0, 5, 17, 200, 9)
	if err != nil {
		t.Fatal(err)
	}
	spans, err := MaxSpansFromTrace(tt, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, dt := range []int64{1, 10, 40, 100, 300} {
		bound := spans.AlphaLower(dt)
		got := bruteMinCount(tt, dt)
		if got < bound {
			t.Fatalf("Δ=%d: observed window with %d events < guaranteed %d", dt, got, bound)
		}
	}
}

func TestMergeMaxTakesMaximum(t *testing.T) {
	a := MaxSpans{0, 10, 25}
	b := MaxSpans{0, 8, 30}
	m, err := MergeMax(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := MaxSpans{0, 10, 30}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("merge[%d] = %d, want %d", i, m[i], want[i])
		}
	}
	if _, err := MergeMax(); !errors.Is(err, ErrEmptySpans) {
		t.Fatal("no tables must fail")
	}
}

func TestMaxSpansValidate(t *testing.T) {
	if err := (MaxSpans{}).Validate(); !errors.Is(err, ErrEmptySpans) {
		t.Fatal("empty must fail")
	}
	if err := (MaxSpans{5}).Validate(); !errors.Is(err, ErrBadSpans) {
		t.Fatal("D(1)≠0 must fail")
	}
	if err := (MaxSpans{0, 10, 5}).Validate(); !errors.Is(err, ErrBadSpans) {
		t.Fatal("decreasing must fail")
	}
	if _, err := MaxSpansFromTrace(events.TimedTrace{0, 1}, 5); !errors.Is(err, ErrBadMaxK) {
		t.Fatal("maxK beyond trace must fail")
	}
}

func TestMinLeqMaxSpans(t *testing.T) {
	tt, err := events.Bursty(0, 6, 8, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := FromTrace(tt, 30)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := MaxSpansFromTrace(tt, 30)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 30; k++ {
		dmin, _ := lo.At(k)
		dmax, _ := hi.At(k)
		if dmin > dmax {
			t.Fatalf("d(%d)=%d > D(%d)=%d", k, dmin, k, dmax)
		}
	}
}

func TestQuickAlphaLowerSound(t *testing.T) {
	f := func(seed uint64, dtRaw uint16) bool {
		tt, err := events.Sporadic(0, 3, 29, 120, seed)
		if err != nil {
			return false
		}
		spans, err := MaxSpansFromTrace(tt, 40)
		if err != nil {
			return false
		}
		dt := int64(dtRaw % 600)
		bound := spans.AlphaLower(dt)
		// Check a sample of interior windows.
		for j := 10; j < 60; j += 7 {
			from := tt[j] + 1
			if tt.CountIn(from, dt) < bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
