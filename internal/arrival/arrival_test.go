package arrival

import (
	"errors"
	"testing"
	"testing/quick"

	"wcm/internal/events"
)

// bruteSpan computes d(k) directly from the definition.
func bruteSpan(tt events.TimedTrace, k int) int64 {
	best := int64(1) << 62
	for j := 0; j+k <= len(tt); j++ {
		if d := tt[j+k-1] - tt[j]; d < best {
			best = d
		}
	}
	return best
}

func TestFromTraceMatchesBruteForce(t *testing.T) {
	tt := events.TimedTrace{0, 3, 4, 10, 11, 12, 30, 31}
	spans, err := FromTrace(tt, len(tt))
	if err != nil {
		t.Fatal(err)
	}
	if err := spans.Validate(); err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= len(tt); k++ {
		got, err := spans.At(k)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteSpan(tt, k); got != want {
			t.Fatalf("d(%d) = %d, want %d", k, got, want)
		}
	}
	if _, err := spans.At(0); err == nil {
		t.Fatal("At(0) must fail")
	}
	if _, err := spans.At(len(tt) + 1); err == nil {
		t.Fatal("At beyond table must fail")
	}
}

func TestFromTraceValidation(t *testing.T) {
	if _, err := FromTrace(events.TimedTrace{}, 1); err == nil {
		t.Fatal("empty trace must fail")
	}
	if _, err := FromTrace(events.TimedTrace{0, 10}, 3); !errors.Is(err, ErrBadMaxK) {
		t.Fatalf("maxK > n err = %v", err)
	}
	if _, err := FromTrace(events.TimedTrace{10, 0}, 2); err == nil {
		t.Fatal("unsorted trace must fail")
	}
}

func TestAlphaInverseOfSpans(t *testing.T) {
	// Periodic 10ns: d(k) = 10(k−1); ᾱ(Δ) = 1 + ⌊Δ/10⌋ (within the table).
	spans, err := Periodic(10, 8)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		dt   int64
		want int
	}{{-1, 0}, {0, 1}, {9, 1}, {10, 2}, {35, 4}, {70, 8}, {1000, 8}}
	for _, tc := range cases {
		if got := spans.Alpha(tc.dt); got != tc.want {
			t.Fatalf("ᾱ(%d) = %d, want %d", tc.dt, got, tc.want)
		}
	}
}

func TestAlphaGaloisWithSpans(t *testing.T) {
	// ᾱ(Δ) ≥ k ⇔ d(k) ≤ Δ.
	tt, err := events.Sporadic(0, 5, 17, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	spans, err := FromTrace(tt, 50)
	if err != nil {
		t.Fatal(err)
	}
	for dt := int64(0); dt < 300; dt += 7 {
		a := spans.Alpha(dt)
		for k := 1; k <= spans.MaxK(); k++ {
			d, _ := spans.At(k)
			if (a >= k) != (d <= dt) {
				t.Fatalf("Galois violated at Δ=%d k=%d: ᾱ=%d d(k)=%d", dt, k, a, d)
			}
		}
	}
}

func TestAlphaBoundsWindowCounts(t *testing.T) {
	// The arrival curve must upper-bound the count in EVERY window of the
	// trace it was extracted from.
	tt, err := events.Bursty(0, 5, 6, 2, 80)
	if err != nil {
		t.Fatal(err)
	}
	spans, err := FromTrace(tt, len(tt))
	if err != nil {
		t.Fatal(err)
	}
	for _, from := range []int64{0, 1, 5, 40, 95, 200} {
		for _, width := range []int64{1, 3, 11, 50, 200} {
			count := tt.CountIn(from, width)
			// Closed-window convention: CountIn uses [from, from+width), the
			// span d(k) measures t_last − t_first, so a window of width w
			// holds counts bounded by ᾱ(w) (spans are closed differences,
			// width-1 suffices but w is safe).
			if count > spans.Alpha(width) {
				t.Fatalf("window [%d,+%d) holds %d > ᾱ = %d", from, width, count, spans.Alpha(width))
			}
		}
	}
}

func TestMergeTakesMinimum(t *testing.T) {
	a := Spans{0, 10, 25}
	b := Spans{0, 8, 30}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := Spans{0, 8, 25}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("merge[%d] = %d, want %d", i, m[i], want[i])
		}
	}
	// Merged curve dominates both.
	for dt := int64(0); dt < 40; dt++ {
		if m.Alpha(dt) < a.Alpha(dt) || m.Alpha(dt) < b.Alpha(dt) {
			t.Fatalf("merged ᾱ below an operand at Δ=%d", dt)
		}
	}
	if _, err := Merge(); err == nil {
		t.Fatal("no tables must fail")
	}
}

func TestValidateRejects(t *testing.T) {
	if err := (Spans{}).Validate(); !errors.Is(err, ErrEmptySpans) {
		t.Fatal("empty must fail")
	}
	if err := (Spans{5}).Validate(); !errors.Is(err, ErrBadSpans) {
		t.Fatal("d(1) ≠ 0 must fail")
	}
	if err := (Spans{0, 10, 5}).Validate(); !errors.Is(err, ErrBadSpans) {
		t.Fatal("decreasing spans must fail")
	}
}

func TestPeriodicJitterSpans(t *testing.T) {
	s, err := PeriodicJitter(100, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := Spans{0, 70, 170, 270, 370}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("pjd span[%d] = %d, want %d", i, s[i], want[i])
		}
	}
	// Jitter spans must bound actual jittered traces.
	tt, err := events.PeriodicJitter(0, 100, 30, 400, 11)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := FromTrace(tt, 5)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 5; k++ {
		model, _ := s.At(k)
		trace, _ := obs.At(k)
		if trace < model {
			t.Fatalf("trace denser than PJD model at k=%d: %d < %d", k, trace, model)
		}
	}
}

func TestSporadicSpans(t *testing.T) {
	s, err := Sporadic(40, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := Spans{0, 40, 80, 120}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("sporadic span[%d] = %d", i, s[i])
		}
	}
}

func TestCurveEnvelope(t *testing.T) {
	spans := Spans{0, 10, 10, 35}
	c, err := spans.Curve()
	if err != nil {
		t.Fatal(err)
	}
	// Envelope must dominate ᾱ everywhere.
	for dt := int64(0); dt <= 40; dt++ {
		if c.At(dt) < float64(spans.Alpha(dt))-1e-9 {
			t.Fatalf("envelope below ᾱ at Δ=%d: %g < %d", dt, c.At(dt), spans.Alpha(dt))
		}
	}
	// Exact at breakpoints: ᾱ(0)=1, ᾱ(10)=3, ᾱ(35)=4.
	if c.At(0) != 1 || c.At(10) != 3 || c.At(35) != 4 {
		t.Fatalf("envelope breakpoints: %g %g %g", c.At(0), c.At(10), c.At(35))
	}
}

func TestLeakyBucket(t *testing.T) {
	c, err := LeakyBucket(5, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if c.At(0) != 5 || c.At(100) != 30 {
		t.Fatalf("leaky bucket values: %g %g", c.At(0), c.At(100))
	}
	if _, err := LeakyBucket(-1, 0); err == nil {
		t.Fatal("negative burst must fail")
	}
}

func TestFitPJDExactOnPJDModel(t *testing.T) {
	orig, err := PeriodicJitter(100, 30, 20)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FitPJD(orig)
	if err != nil {
		t.Fatal(err)
	}
	if m.Period != 100 || m.Jitter != 30 {
		t.Fatalf("fit = %+v, want P=100 J=30", m)
	}
	back, err := m.Spans(20)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 20; k++ {
		if back[k-1] != orig[k-1] {
			t.Fatalf("round trip diverges at k=%d", k)
		}
	}
}

func TestFitPJDDominatesObservedTrace(t *testing.T) {
	tt, err := events.PeriodicJitter(0, 200, 80, 300, 13)
	if err != nil {
		t.Fatal(err)
	}
	spans, err := FromTrace(tt, 40)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FitPJD(spans)
	if err != nil {
		t.Fatal(err)
	}
	model, err := m.Spans(40)
	if err != nil {
		t.Fatal(err)
	}
	// The model's spans must lower-bound the observed ones (so its ᾱ
	// dominates the trace's), and the fitted jitter must stay sane.
	for k := 1; k <= 40; k++ {
		if model[k-1] > spans[k-1] {
			t.Fatalf("model denser violated at k=%d: %d > %d", k, model[k-1], spans[k-1])
		}
	}
	if m.Jitter > 200 {
		t.Fatalf("fitted jitter %d implausibly large for J=80 input", m.Jitter)
	}
	if _, err := FitPJD(Spans{0}); err == nil {
		t.Fatal("single-entry table must fail")
	}
}

func TestQuickFitPJDSound(t *testing.T) {
	f := func(seed uint64) bool {
		tt, err := events.Sporadic(0, 10, 60, 150, seed)
		if err != nil {
			return false
		}
		spans, err := FromTrace(tt, 30)
		if err != nil {
			return false
		}
		m, err := FitPJD(spans)
		if err != nil {
			return false
		}
		model, err := m.Spans(30)
		if err != nil {
			return false
		}
		for k := 1; k <= 30; k++ {
			if model[k-1] > spans[k-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSpansBoundTraces(t *testing.T) {
	f := func(seed uint64) bool {
		tt, err := events.Sporadic(0, 3, 23, 100, seed)
		if err != nil {
			return false
		}
		spans, err := FromTrace(tt, 30)
		if err != nil {
			return false
		}
		if spans.Validate() != nil {
			return false
		}
		// Every actual window of k events spans at least d(k).
		for j := 0; j+30 <= len(tt); j += 7 {
			for k := 2; k <= 30; k += 3 {
				d, _ := spans.At(k)
				if tt[j+k-1]-tt[j] < d {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFromValuesCopiesAndValidates(t *testing.T) {
	raw := []int64{0, 5, 9}
	s, err := FromValues(raw)
	if err != nil {
		t.Fatal(err)
	}
	raw[1] = 99
	if s[1] != 5 {
		t.Fatal("FromValues must copy its input")
	}
	if _, err := FromValues([]int64{1, 2}); !errors.Is(err, ErrBadSpans) {
		t.Fatalf("d(1)≠0: want ErrBadSpans, got %v", err)
	}
	if _, err := FromValues([]int64{0, 4, 3}); !errors.Is(err, ErrBadSpans) {
		t.Fatalf("decreasing: want ErrBadSpans, got %v", err)
	}
	if _, err := FromValues(nil); !errors.Is(err, ErrEmptySpans) {
		t.Fatalf("empty: want ErrEmptySpans, got %v", err)
	}
	if _, err := MaxSpansFromValues([]int64{0, 3, 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := MaxSpansFromValues([]int64{0, 7, 3}); !errors.Is(err, ErrBadSpans) {
		t.Fatalf("decreasing max spans: want ErrBadSpans, got %v", err)
	}
}
