package arrival

import (
	"math/rand"
	"testing"

	"wcm/internal/events"
)

// Differential tests pinning the kernel-routed span extraction to the
// naive per-k reference (the pre-kernel algorithm, reimplemented here):
// exact equality for both tables, for every k.

func naiveSpans(tt events.TimedTrace, maxK int) (Spans, MaxSpans) {
	mins := make(Spans, maxK)
	maxs := make(MaxSpans, maxK)
	for k := 2; k <= maxK; k++ {
		best := tt[k-1] - tt[0]
		worst := int64(0)
		for j := 0; j+k-1 < len(tt); j++ {
			d := tt[j+k-1] - tt[j]
			if d < best {
				best = d
			}
			if d > worst {
				worst = d
			}
		}
		mins[k-1] = best
		maxs[k-1] = worst
	}
	return mins, maxs
}

func randTimedTrace(rng *rand.Rand, n int) events.TimedTrace {
	tt := make(events.TimedTrace, n)
	var t int64
	for i := range tt {
		tt[i] = t
		t += rng.Int63n(5_000) // zero gaps allowed: simultaneous events
	}
	return tt
}

func TestSpanExtractionMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{1, 2, 9, 100, 640} {
		tt := randTimedTrace(rng, n)
		for _, maxK := range []int{1, 2, n/2 + 1, n} {
			if maxK > n || maxK < 1 {
				continue
			}
			wantMin, wantMax := naiveSpans(tt, maxK)
			mins, err := FromTrace(tt, maxK)
			if err != nil {
				t.Fatalf("FromTrace n=%d maxK=%d: %v", n, maxK, err)
			}
			maxs, err := MaxSpansFromTrace(tt, maxK)
			if err != nil {
				t.Fatalf("MaxSpansFromTrace n=%d maxK=%d: %v", n, maxK, err)
			}
			bothMin, bothMax, err := ExtractSpans(tt, maxK)
			if err != nil {
				t.Fatalf("ExtractSpans n=%d maxK=%d: %v", n, maxK, err)
			}
			for k := 1; k <= maxK; k++ {
				if mins[k-1] != wantMin[k-1] || bothMin[k-1] != wantMin[k-1] {
					t.Fatalf("n=%d k=%d: d(k)=%d/%d want %d", n, k, mins[k-1], bothMin[k-1], wantMin[k-1])
				}
				if maxs[k-1] != wantMax[k-1] || bothMax[k-1] != wantMax[k-1] {
					t.Fatalf("n=%d k=%d: D(k)=%d/%d want %d", n, k, maxs[k-1], bothMax[k-1], wantMax[k-1])
				}
			}
			if err := mins.Validate(); err != nil {
				t.Fatalf("minimal table invalid: %v", err)
			}
			if err := maxs.Validate(); err != nil {
				t.Fatalf("maximal table invalid: %v", err)
			}
		}
	}
}
