package arrival

import (
	"fmt"

	"wcm/internal/events"
)

// Lower arrival curves: ᾱˡ(Δ) is a LOWER bound on the number of events in
// any window of length Δ — the throughput side of the framework (how many
// events are guaranteed to arrive, hence how much output a downstream
// consumer is guaranteed). The extraction artifact is the maximal-span
// table
//
//	D(k) = max_j ( t[j+k−1] − t[j] )   for k = 1..K
//
// — the longest time k consecutive events ever take to arrive. A window of
// length Δ placed anywhere contains at least k events iff even the
// sparsest k+2 consecutive events cannot straddle it:
//
//	ᾱˡ(Δ) = min{ k ≥ 0 : D(k+2) > Δ }        (D(m) = ∞ beyond the table)
//
// (a window with only k events inside fits strictly between events j and
// j+k+1 for some j, i.e. inside a span of k+2 consecutive events).

// MaxSpans is the maximal-span table: MaxSpans[k-1] = D(k), non-decreasing
// with D(1) = 0.
type MaxSpans []int64

// Validate checks the table invariants.
func (s MaxSpans) Validate() error {
	if len(s) == 0 {
		return ErrEmptySpans
	}
	if s[0] != 0 {
		return fmt.Errorf("%w: D(1)=%d, want 0", ErrBadSpans, s[0])
	}
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return fmt.Errorf("%w: D(%d)=%d after D(%d)=%d", ErrBadSpans, i+1, s[i], i, s[i-1])
		}
	}
	return nil
}

// MaxK returns the largest event count the table covers.
func (s MaxSpans) MaxK() int { return len(s) }

// At returns D(k) for k in 1..MaxK().
func (s MaxSpans) At(k int) (int64, error) {
	if k < 1 || k > len(s) {
		return 0, fmt.Errorf("%w: k=%d of %d", ErrBadMaxK, k, len(s))
	}
	return s[k-1], nil
}

// AlphaLower evaluates ᾱˡ(Δ): the number of events guaranteed inside any
// window of length Δ, based on the finite table (conservative: beyond the
// table's knowledge the bound stays flat).
func (s MaxSpans) AlphaLower(dt int64) int {
	if dt < 0 {
		return 0
	}
	// Find the smallest k with D(k+2) > dt; table indices are k-1.
	for k := 0; k+2 <= len(s); k++ {
		if s[k+2-1] > dt {
			return k
		}
	}
	// Even the sparsest observed MaxK() events fit: the table cannot
	// certify more than MaxK()−2 (a longer window may straddle unseen
	// gaps).
	if len(s) < 2 {
		return 0
	}
	return len(s) - 2
}

// MaxSpansFromTrace computes D(k) = max_j t[j+k−1] − t[j] for k = 1..maxK.
// It routes through the fused extraction kernel (see ExtractSpans).
func MaxSpansFromTrace(tt events.TimedTrace, maxK int) (MaxSpans, error) {
	_, maxs, err := ExtractSpans(tt, maxK)
	return maxs, err
}

// MaxSpansFromValues validates raw maximal-span values produced elsewhere
// (e.g. internal/stream) and packages them as a MaxSpans table. The input
// is copied.
func MaxSpansFromValues(vals []int64) (MaxSpans, error) {
	s := append(MaxSpans(nil), vals...)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// MergeMax combines maximal-span tables from several traces into one valid
// for all of them: the merged D(k) is the MAXIMUM of the individual tables
// (a longer span means fewer guaranteed events). Tables truncate to the
// shortest.
func MergeMax(tables ...MaxSpans) (MaxSpans, error) {
	if len(tables) == 0 {
		return nil, ErrEmptySpans
	}
	n := tables[0].MaxK()
	for _, t := range tables[1:] {
		if t.MaxK() < n {
			n = t.MaxK()
		}
	}
	if n == 0 {
		return nil, ErrEmptySpans
	}
	out := make(MaxSpans, n)
	for i := range out {
		worst := tables[0][i]
		for _, t := range tables[1:] {
			if t[i] > worst {
				worst = t[i]
			}
		}
		out[i] = worst
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// PeriodicMax returns the exact maximal-span table of a strictly periodic
// stream: D(k) = (k−1)·period (identical to the minimal table — no jitter).
func PeriodicMax(period int64, maxK int) (MaxSpans, error) {
	s, err := Periodic(period, maxK)
	if err != nil {
		return nil, err
	}
	return MaxSpans(s), nil
}

// SporadicMax returns the maximal-span table of a stream with maximum
// inter-arrival θmax: D(k) = (k−1)·θmax.
func SporadicMax(thetaMax int64, maxK int) (MaxSpans, error) {
	return PeriodicMax(thetaMax, maxK)
}
