package curve

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadInput(t *testing.T) {
	cases := []struct {
		name   string
		vals   []int64
		period int
		delta  int64
		want   error
	}{
		{"empty", nil, 0, 0, ErrEmpty},
		{"nonzero start", []int64{1, 2}, 0, 0, ErrNonZeroStart},
		{"decreasing", []int64{0, 5, 3}, 0, 0, ErrNotMonotone},
		{"negative period", []int64{0, 1}, -1, 0, ErrBadTail},
		{"delta without period", []int64{0, 1}, 0, 5, ErrBadTail},
		{"negative delta", []int64{0, 1}, 1, -1, ErrBadTail},
		{"period too long", []int64{0, 1}, 3, 1, ErrTailTooLong},
		{"tail breaks monotonicity", []int64{0, 10}, 2, 5, ErrNotMonotone},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.vals, tc.period, tc.delta)
			if !errors.Is(err, tc.want) {
				t.Fatalf("New(%v,%d,%d) err = %v, want %v", tc.vals, tc.period, tc.delta, err, tc.want)
			}
		})
	}
}

func TestAtFinite(t *testing.T) {
	c := MustNew([]int64{0, 3, 5, 9}, 0, 0)
	for k, want := range []int64{0, 3, 5, 9} {
		got, err := c.At(k)
		if err != nil || got != want {
			t.Fatalf("At(%d) = %d, %v; want %d", k, got, err, want)
		}
	}
	if _, err := c.At(4); !errors.Is(err, ErrOutOfDomain) {
		t.Fatalf("At(4) err = %v, want ErrOutOfDomain", err)
	}
	if _, err := c.At(-1); !errors.Is(err, ErrNegativeK) {
		t.Fatalf("At(-1) err = %v, want ErrNegativeK", err)
	}
}

func TestAtPeriodicTail(t *testing.T) {
	// Staircase: 0,2,3 then repeats last 2 increments adding 4 per period:
	// k:     0 1 2 3 4 5 6 7
	// value: 0 2 3 6 7 10 11 14
	c := MustNew([]int64{0, 2, 3}, 2, 4)
	want := []int64{0, 2, 3, 6, 7, 10, 11, 14}
	for k, w := range want {
		got, err := c.At(k)
		if err != nil || got != w {
			t.Fatalf("At(%d) = %d, %v; want %d", k, got, err, w)
		}
	}
	// Far point: k = 2 + 2p ⇒ value 3 + 4p.
	got := c.MustAt(2 + 2*1000)
	if got != 3+4*1000 {
		t.Fatalf("At(2002) = %d, want %d", got, 3+4*1000)
	}
}

func TestLinear(t *testing.T) {
	c := MustLinear(7)
	for _, k := range []int{0, 1, 2, 13, 1000} {
		if got := c.MustAt(k); got != int64(7*k) {
			t.Fatalf("Linear(7)(%d) = %d, want %d", k, got, 7*k)
		}
	}
	if _, err := Linear(-1); err == nil {
		t.Fatal("Linear(-1) should fail")
	}
}

func TestZero(t *testing.T) {
	z := Zero()
	for _, k := range []int{0, 1, 99} {
		if got := z.MustAt(k); got != 0 {
			t.Fatalf("Zero()(%d) = %d", k, got)
		}
	}
}

func TestAtClamped(t *testing.T) {
	c := MustNew([]int64{0, 4, 9}, 0, 0)
	if got := c.AtClamped(-5); got != 0 {
		t.Fatalf("AtClamped(-5) = %d, want 0", got)
	}
	if got := c.AtClamped(1); got != 4 {
		t.Fatalf("AtClamped(1) = %d, want 4", got)
	}
	if got := c.AtClamped(50); got != 9 {
		t.Fatalf("AtClamped(50) = %d, want 9 (last value)", got)
	}
}

func TestUpperInverseFinite(t *testing.T) {
	// γᵘ = 0,4,7,9 — γᵘ⁻¹(e) = max{k: γᵘ(k) ≤ e}
	c := MustNew([]int64{0, 4, 7, 9}, 0, 0)
	cases := []struct {
		e         int64
		k         int
		exhausted bool
	}{
		{0, 0, false}, {3, 0, false}, {4, 1, false}, {6, 1, false},
		{7, 2, false}, {8, 2, false}, {9, 3, true}, {100, 3, true},
	}
	for _, tc := range cases {
		k, exhausted, err := c.UpperInverse(tc.e)
		if err != nil || k != tc.k || exhausted != tc.exhausted {
			t.Fatalf("UpperInverse(%d) = (%d,%v,%v), want (%d,%v)", tc.e, k, exhausted, err, tc.k, tc.exhausted)
		}
	}
	if _, _, err := c.UpperInverse(-1); err == nil {
		t.Fatal("UpperInverse(-1) should fail")
	}
}

func TestUpperInverseInfinite(t *testing.T) {
	c := MustLinear(5) // γᵘ(k)=5k ⇒ γᵘ⁻¹(e)=⌊e/5⌋
	for _, e := range []int64{0, 4, 5, 23, 10000} {
		k, exhausted, err := c.UpperInverse(e)
		if err != nil || exhausted {
			t.Fatalf("UpperInverse(%d) err=%v exhausted=%v", e, err, exhausted)
		}
		if int64(k) != e/5 {
			t.Fatalf("UpperInverse(%d) = %d, want %d", e, k, e/5)
		}
	}
	flat := MustNew([]int64{0, 1}, 1, 0)
	if _, _, err := flat.UpperInverse(10); err == nil {
		t.Fatal("UpperInverse on flat tail with e ≥ sup should fail (unbounded)")
	}
}

func TestLowerInverse(t *testing.T) {
	// γˡ = 0,2,2,6 finite
	c := MustNew([]int64{0, 2, 2, 6}, 0, 0)
	cases := []struct {
		e int64
		k int
	}{{0, 0}, {1, 1}, {2, 1}, {3, 3}, {6, 3}}
	for _, tc := range cases {
		k, err := c.LowerInverse(tc.e)
		if err != nil || k != tc.k {
			t.Fatalf("LowerInverse(%d) = %d,%v; want %d", tc.e, k, err, tc.k)
		}
	}
	if _, err := c.LowerInverse(7); err == nil {
		t.Fatal("LowerInverse beyond sup of finite curve should fail")
	}
	lin := MustLinear(3)
	for _, e := range []int64{1, 3, 4, 300} {
		k, err := lin.LowerInverse(e)
		if err != nil {
			t.Fatal(err)
		}
		want := int((e + 2) / 3)
		if k != want {
			t.Fatalf("LowerInverse(%d) = %d, want %d", e, k, want)
		}
	}
}

// Galois connection from the paper: γᵘ(k) ≤ e ⇔ k ≤ γᵘ⁻¹(e).
func TestUpperInverseGalois(t *testing.T) {
	c := MustNew([]int64{0, 3, 5, 9, 14}, 2, 9)
	for e := int64(0); e < 60; e++ {
		kInv, _, err := c.UpperInverse(e)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 20; k++ {
			v := c.MustAt(k)
			if (v <= e) != (k <= kInv) {
				t.Fatalf("Galois violated at e=%d k=%d: γ(k)=%d, γ⁻¹(e)=%d", e, k, v, kInv)
			}
		}
	}
}

// Paper property: γᵘ⁻¹(γᵘ(k)) = k and γˡ⁻¹(γˡ(k)) = k on strictly
// increasing curves.
func TestInverseRoundTrip(t *testing.T) {
	c := MustNew([]int64{0, 3, 5, 9, 14}, 2, 9)
	if !c.StrictlyIncreasing() {
		t.Fatal("test curve must be strictly increasing")
	}
	for k := 0; k < 30; k++ {
		v := c.MustAt(k)
		up, _, err := c.UpperInverse(v)
		if err != nil {
			t.Fatal(err)
		}
		if up != k {
			t.Fatalf("UpperInverse(γ(%d)=%d) = %d", k, v, up)
		}
		if k > 0 { // LowerInverse(0)=0 by definition; strictly increasing ⇒ round trip for k>0
			lo, err := c.LowerInverse(v)
			if err != nil {
				t.Fatal(err)
			}
			if lo != k {
				t.Fatalf("LowerInverse(γ(%d)=%d) = %d", k, v, lo)
			}
		}
	}
}

func TestStrictlyIncreasing(t *testing.T) {
	if !MustLinear(1).StrictlyIncreasing() {
		t.Fatal("Linear(1) is strictly increasing")
	}
	if MustLinear(0).StrictlyIncreasing() {
		t.Fatal("Linear(0) is not strictly increasing")
	}
	if MustNew([]int64{0, 2, 2, 3}, 0, 0).StrictlyIncreasing() {
		t.Fatal("plateau must not count as strictly increasing")
	}
}

func TestAddFiniteAndTails(t *testing.T) {
	a := MustNew([]int64{0, 2, 5}, 0, 0)
	b := MustLinear(3)
	s, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxK() != 2 {
		t.Fatalf("finite+infinite domain = %d, want 2", s.MaxK())
	}
	for k, want := range []int64{0, 5, 11} {
		if got := s.MustAt(k); got != want {
			t.Fatalf("sum(%d) = %d, want %d", k, got, want)
		}
	}

	// Infinite + infinite: tails with periods 2 and 3 combine at lcm 6.
	x := MustNew([]int64{0, 5, 6}, 2, 6)    // slope 3/step avg
	y := MustNew([]int64{0, 1, 2, 3}, 3, 3) // slope 1/step
	s2, err := Add(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 40; k++ {
		want := x.MustAt(k) + y.MustAt(k)
		if got := s2.MustAt(k); got != want {
			t.Fatalf("tail sum at k=%d: %d want %d", k, got, want)
		}
	}
}

func TestMaxMinEqualSlopes(t *testing.T) {
	a := MustNew([]int64{0, 5, 6}, 2, 6)
	b := MustNew([]int64{0, 2, 6}, 2, 6)
	mx, err := Max(a, b)
	if err != nil {
		t.Fatal(err)
	}
	mn, err := Min(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 50; k++ {
		av, bv := a.MustAt(k), b.MustAt(k)
		if got := mx.MustAt(k); got != maxI64(av, bv) {
			t.Fatalf("Max at %d: %d want %d", k, got, maxI64(av, bv))
		}
		if got := mn.MustAt(k); got != minI64(av, bv) {
			t.Fatalf("Min at %d: %d want %d", k, got, minI64(av, bv))
		}
	}
}

func TestMaxMinDifferentSlopes(t *testing.T) {
	// a grows 2/step, b grows 5/step but starts higher at small k? Make a
	// start above b so there is a genuine crossover.
	a := MustNew([]int64{0, 100}, 1, 2)
	b := MustLinear(5)
	mx, err := Max(a, b)
	if err != nil {
		t.Fatal(err)
	}
	mn, err := Min(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 300; k++ {
		av, bv := a.MustAt(k), b.MustAt(k)
		if got := mx.MustAt(k); got != maxI64(av, bv) {
			t.Fatalf("Max at %d: %d want %d", k, got, maxI64(av, bv))
		}
		if got := mn.MustAt(k); got != minI64(av, bv) {
			t.Fatalf("Min at %d: %d want %d", k, got, minI64(av, bv))
		}
	}
}

func TestScaleTruncate(t *testing.T) {
	c := MustNew([]int64{0, 2, 5}, 1, 3)
	s, err := c.Scale(4)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		if got, want := s.MustAt(k), 4*c.MustAt(k); got != want {
			t.Fatalf("scale at %d: %d want %d", k, got, want)
		}
	}
	if _, err := c.Scale(-1); err == nil {
		t.Fatal("negative scale must fail")
	}
	tr, err := c.Truncate(5)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Infinite() || tr.MaxK() != 5 {
		t.Fatalf("truncate: infinite=%v maxK=%d", tr.Infinite(), tr.MaxK())
	}
}

func TestMinPlusConvSubadditiveFixpoint(t *testing.T) {
	// A subadditive curve with γ(0)=0 satisfies γ⊗γ = γ.
	// Concave-ish staircase: diminishing increments ⇒ subadditive.
	c := MustNew([]int64{0, 10, 18, 25, 31, 36, 41, 46}, 1, 5)
	ok, err := c.Subadditive(40)
	if err != nil || !ok {
		t.Fatalf("expected subadditive, got %v, %v", ok, err)
	}
	conv, err := MinPlusConv(c, c, 40)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 40; k++ {
		if conv.MustAt(k) != c.MustAt(k) {
			t.Fatalf("γ⊗γ ≠ γ at k=%d: %d vs %d", k, conv.MustAt(k), c.MustAt(k))
		}
	}
}

func TestMaxPlusConvSuperadditiveFixpoint(t *testing.T) {
	// Convex staircase: growing increments ⇒ superadditive.
	c := MustNew([]int64{0, 1, 3, 6, 10, 15}, 1, 6)
	ok, err := c.Superadditive(30)
	if err != nil || !ok {
		t.Fatalf("expected superadditive, got %v, %v", ok, err)
	}
	conv, err := MaxPlusConv(c, c, 30)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 30; k++ {
		if conv.MustAt(k) != c.MustAt(k) {
			t.Fatalf("γ⊕γ ≠ γ at k=%d: %d vs %d", k, conv.MustAt(k), c.MustAt(k))
		}
	}
}

func TestSubadditiveClosureTightens(t *testing.T) {
	// A curve that is NOT subadditive: big jump at k=2.
	c := MustNew([]int64{0, 3, 10, 13, 20}, 0, 0)
	cl, err := c.SubadditiveClosure(4)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := cl.Subadditive(4)
	if err != nil || !ok {
		t.Fatalf("closure not subadditive: %v %v", ok, err)
	}
	leq, err := cl.LeqOn(c, 4)
	if err != nil || !leq {
		t.Fatalf("closure must lower-bound original: %v %v", leq, err)
	}
	// γ(2) tightens to γ(1)+γ(1) = 6.
	if got := cl.MustAt(2); got != 6 {
		t.Fatalf("closure(2) = %d, want 6", got)
	}
}

func TestLeqOn(t *testing.T) {
	a := MustLinear(2)
	b := MustLinear(3)
	ok, err := a.LeqOn(b, 20)
	if err != nil || !ok {
		t.Fatalf("2k ≤ 3k should hold: %v %v", ok, err)
	}
	ok, err = b.LeqOn(a, 20)
	if err != nil || ok {
		t.Fatalf("3k ≤ 2k should fail: %v %v", ok, err)
	}
}

func TestStringer(t *testing.T) {
	c := MustNew([]int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 1)
	s := c.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

// randomMonotone builds a random monotone curve from a seed (for quick tests).
func randomMonotone(rng *rand.Rand, n int, maxStep int64) []int64 {
	vals := make([]int64, n)
	for i := 1; i < n; i++ {
		vals[i] = vals[i-1] + rng.Int63n(maxStep+1)
	}
	return vals
}

func TestQuickGaloisConnection(t *testing.T) {
	f := func(seed int64, eRaw int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := randomMonotone(rng, 2+rng.Intn(30), 20)
		c := MustNew(vals, 0, 0)
		e := eRaw % (c.LastValue() + 5)
		if e < 0 {
			e = -e
		}
		kInv, exhausted, err := c.UpperInverse(e)
		if err != nil {
			return false
		}
		for k := 0; k <= c.MaxK(); k++ {
			v := c.MustAt(k)
			if !exhausted && (v <= e) != (k <= kInv) {
				return false
			}
			if exhausted && v > e {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAddMonotoneAndExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := MustNew(randomMonotone(rng, 2+rng.Intn(20), 15), 0, 0)
		b := MustNew(randomMonotone(rng, 2+rng.Intn(20), 15), 0, 0)
		s, err := Add(a, b)
		if err != nil {
			return false
		}
		for k := 0; k <= s.MaxK(); k++ {
			if s.MustAt(k) != a.MustAt(k)+b.MustAt(k) {
				return false
			}
			if k > 0 && s.MustAt(k) < s.MustAt(k-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickClosureIsSubadditiveLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		c := MustNew(randomMonotone(rng, n, 25), 0, 0)
		cl, err := c.SubadditiveClosure(n - 1)
		if err != nil {
			return false
		}
		ok, err := cl.Subadditive(n - 1)
		if err != nil || !ok {
			return false
		}
		leq, err := cl.LeqOn(c, n-1)
		return err == nil && leq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInfiniteTailConsistency(t *testing.T) {
	// C(k+period) − C(k) must equal delta for all k beyond the prefix.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		vals := randomMonotone(rng, n, 10)
		period := 1 + rng.Intn(n)
		// Choose delta large enough to keep the seam monotone.
		minDelta := vals[n-1] - vals[n-period]
		delta := minDelta + rng.Int63n(10)
		c, err := New(vals, period, delta)
		if err != nil {
			return false
		}
		for k := n; k < n+4*period; k++ {
			if c.MustAt(k)-c.MustAt(k-period) != delta {
				return false
			}
			if c.MustAt(k) < c.MustAt(k-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
