package curve

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalText hardens the codec: arbitrary input must either be
// rejected or produce a valid curve that round-trips.
func FuzzUnmarshalText(f *testing.F) {
	f.Add("wcurve/1 period=0 delta=0 vals=0,4,7")
	f.Add("wcurve/1 period=2 delta=9 vals=0,3,5,9,14")
	f.Add("wcurve/1 period=1 delta=0 vals=0")
	f.Add("garbage")
	f.Add("wcurve/1 period=99999999999999999999 delta=0 vals=0")
	f.Fuzz(func(t *testing.T, input string) {
		var c Curve
		if err := c.UnmarshalText([]byte(input)); err != nil {
			return // rejected: fine
		}
		// Accepted: the curve must satisfy all invariants and round-trip.
		if c.PrefixLen() == 0 {
			t.Fatal("accepted curve with empty prefix")
		}
		if v := c.MustAt(0); v != 0 {
			t.Fatalf("accepted curve with C(0)=%d", v)
		}
		for k := 1; k < c.PrefixLen(); k++ {
			if c.MustAt(k) < c.MustAt(k-1) {
				t.Fatal("accepted non-monotone curve")
			}
		}
		text, err := c.MarshalText()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		var back Curve
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		text2, err := back.MarshalText()
		if err != nil || !bytes.Equal(text, text2) {
			t.Fatal("canonical encoding not stable")
		}
	})
}
