package curve

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCodecRoundTrip(t *testing.T) {
	orig := MustNew([]int64{0, 3, 5, 9}, 2, 9)
	text, err := orig.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back Curve
	if err := back.UnmarshalText(text); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 20; k++ {
		if back.MustAt(k) != orig.MustAt(k) {
			t.Fatalf("round trip diverges at k=%d", k)
		}
	}
	p1, d1 := orig.Tail()
	p2, d2 := back.Tail()
	if p1 != p2 || d1 != d2 {
		t.Fatalf("tail lost: (%d,%d) vs (%d,%d)", p1, d1, p2, d2)
	}
}

func TestCodecFormatStable(t *testing.T) {
	c := MustNew([]int64{0, 4, 7}, 1, 3)
	text, err := c.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	want := "wcurve/1 period=1 delta=3 vals=0,4,7"
	if string(text) != want {
		t.Fatalf("encoding = %q, want %q", text, want)
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"wcurve/2 period=0 delta=0 vals=0",
		"wcurve/1 period=0 delta=0",
		"wcurve/1 period=x delta=0 vals=0",
		"wcurve/1 period=0 delta=y vals=0",
		"wcurve/1 period=0 delta=0 vals=0,abc",
		"wcurve/1 period=0 delta=0 values=0",
		"wcurve/1 period=0 delta=0 vals=5",     // v0 ≠ 0
		"wcurve/1 period=0 delta=0 vals=0,9,3", // not monotone
		"wcurve/1 period=9 delta=1 vals=0,1",   // period > prefix
	}
	for _, s := range bad {
		var c Curve
		if err := c.UnmarshalText([]byte(s)); err == nil {
			t.Fatalf("accepted garbage %q", s)
		}
	}
}

func TestCodecMarshalEmptyFails(t *testing.T) {
	var c Curve
	if _, err := c.MarshalText(); err == nil {
		t.Fatal("zero-value curve must not marshal")
	}
}

func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		vals := randomMonotone(rng, n, 30)
		period := 0
		var delta int64
		if rng.Intn(2) == 1 {
			period = 1 + rng.Intn(n)
			delta = vals[n-1] - vals[n-period] + rng.Int63n(5)
		}
		c, err := New(vals, period, delta)
		if err != nil {
			return false
		}
		text, err := c.MarshalText()
		if err != nil {
			return false
		}
		if !strings.HasPrefix(string(text), "wcurve/1 ") {
			return false
		}
		var back Curve
		if err := back.UnmarshalText(text); err != nil {
			return false
		}
		for k := 0; k < n+5; k++ {
			a, errA := c.At(k)
			b, errB := back.At(k)
			if (errA == nil) != (errB == nil) {
				return false
			}
			if errA == nil && a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
