// Package curve implements integer-valued curves over the event-count
// domain k ∈ {0, 1, 2, ...}.
//
// A Curve maps a number of consecutive task activations k to a number of
// processor cycles. Workload curves (γᵘ, γˡ), cumulative demand functions and
// demand-bound functions are all represented with this one type. Values are
// stored explicitly for a finite prefix and may be extended to infinite
// support by an exact periodic tail: beyond the stored prefix the curve
// repeats its last `period` increments, adding `delta` cycles per period.
// This makes analytic curves such as the polling-task curves of the paper
// (ultimately periodic staircases) exactly representable.
//
// All curves in this package satisfy C(0) = 0 and are monotone
// (non-decreasing). Constructors enforce this and return an error otherwise.
package curve

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Errors returned by constructors and operations.
var (
	ErrEmpty        = errors.New("curve: need at least the k=0 point")
	ErrNonZeroStart = errors.New("curve: value at k=0 must be 0")
	ErrNotMonotone  = errors.New("curve: values must be non-decreasing")
	ErrBadTail      = errors.New("curve: periodic tail must have period ≥ 1 and delta ≥ 0")
	ErrTailTooLong  = errors.New("curve: tail period exceeds stored prefix")
	ErrOutOfDomain  = errors.New("curve: argument outside finite domain")
	ErrNegativeK    = errors.New("curve: k must be ≥ 0")
)

// Curve is an integer-valued, monotone curve on k ≥ 0 with C(0) = 0.
//
// The zero value is not usable; build curves with New, NewFinite or the
// helpers in this package. Curve values are immutable after construction;
// operations return new curves.
type Curve struct {
	// vals[k] is the curve value at k for k in [0, len(vals)).
	vals []int64
	// period and delta describe the periodic tail. If period == 0 the curve
	// is finite: evaluation beyond len(vals)-1 is an error. If period ≥ 1,
	// for k ≥ len(vals): C(k) = C(k - period) + delta.
	period int
	delta  int64
}

// New builds a curve from explicit values vals[k] for k = 0..len(vals)-1 and
// an exact periodic tail: for k ≥ len(vals), C(k) = C(k-period) + delta.
// Pass period 0 (and delta 0) for a finite curve.
func New(vals []int64, period int, delta int64) (Curve, error) {
	if len(vals) == 0 {
		return Curve{}, ErrEmpty
	}
	if vals[0] != 0 {
		return Curve{}, ErrNonZeroStart
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] {
			return Curve{}, fmt.Errorf("%w: value %d at k=%d after %d at k=%d",
				ErrNotMonotone, vals[i], i, vals[i-1], i-1)
		}
	}
	if period < 0 || (period == 0 && delta != 0) {
		return Curve{}, ErrBadTail
	}
	if period > 0 {
		if delta < 0 {
			return Curve{}, ErrBadTail
		}
		if period > len(vals) {
			return Curve{}, ErrTailTooLong
		}
		// The tail must preserve monotonicity across the prefix/tail seam:
		// C(len(vals)) = C(len(vals)-period) + delta ≥ C(len(vals)-1).
		seam := vals[len(vals)-period] + delta
		if seam < vals[len(vals)-1] {
			return Curve{}, fmt.Errorf("%w: tail value %d at k=%d below last prefix value %d",
				ErrNotMonotone, seam, len(vals), vals[len(vals)-1])
		}
	}
	cp := make([]int64, len(vals))
	copy(cp, vals)
	return Curve{vals: cp, period: period, delta: delta}, nil
}

// NewFinite builds a finite curve from explicit values (no tail).
func NewFinite(vals []int64) (Curve, error) { return New(vals, 0, 0) }

// MustNew is New but panics on error; for package-level constants and tests.
func MustNew(vals []int64, period int, delta int64) Curve {
	c, err := New(vals, period, delta)
	if err != nil {
		panic(err)
	}
	return c
}

// Zero returns the curve that is identically 0 on all k ≥ 0.
func Zero() Curve {
	return Curve{vals: []int64{0}, period: 1, delta: 0}
}

// Linear returns the curve C(k) = rate·k on all k ≥ 0. It models the
// single-value execution-time abstraction of the paper: with rate = WCET it
// is the "WCET only" line of Fig. 2 and Fig. 6, with rate = BCET the
// "BCET only" line. rate must be ≥ 0.
func Linear(rate int64) (Curve, error) {
	if rate < 0 {
		return Curve{}, fmt.Errorf("curve: negative rate %d: %w", rate, ErrNotMonotone)
	}
	return Curve{vals: []int64{0, rate}, period: 1, delta: rate}, nil
}

// MustLinear is Linear but panics on error.
func MustLinear(rate int64) Curve {
	c, err := Linear(rate)
	if err != nil {
		panic(err)
	}
	return c
}

// Infinite reports whether the curve has a periodic tail (is defined for
// every k ≥ 0) rather than only on its finite stored prefix.
func (c Curve) Infinite() bool { return c.period > 0 }

// PrefixLen returns the number of explicitly stored points (domain of the
// prefix is k = 0..PrefixLen()-1).
func (c Curve) PrefixLen() int { return len(c.vals) }

// MaxK returns the largest k at which the curve is defined, or -1 if the
// curve has infinite support.
func (c Curve) MaxK() int {
	if c.Infinite() {
		return -1
	}
	return len(c.vals) - 1
}

// Tail returns the periodic tail parameters (period, delta). period is 0 for
// finite curves.
func (c Curve) Tail() (period int, delta int64) { return c.period, c.delta }

// At evaluates the curve at k. It returns ErrOutOfDomain for k beyond a
// finite curve's prefix and ErrNegativeK for k < 0.
func (c Curve) At(k int) (int64, error) {
	if k < 0 {
		return 0, ErrNegativeK
	}
	if k < len(c.vals) {
		return c.vals[k], nil
	}
	if !c.Infinite() {
		return 0, fmt.Errorf("%w: k=%d, max=%d", ErrOutOfDomain, k, len(c.vals)-1)
	}
	// k ≥ len(vals): step back a whole number of periods into the prefix.
	over := k - len(c.vals) + 1
	periods := (over + c.period - 1) / c.period
	base := k - periods*c.period
	return c.vals[base] + int64(periods)*c.delta, nil
}

// MustAt is At but panics on error; for contexts where domain membership was
// already established.
func (c Curve) MustAt(k int) int64 {
	v, err := c.At(k)
	if err != nil {
		panic(err)
	}
	return v
}

// AtClamped evaluates the curve at k, clamping k into the curve's domain:
// negative k evaluates to 0, k beyond a finite prefix evaluates to the last
// stored value. This is the right semantics for eq. (9) of the paper, where
// ᾱ(Δ) − b may be negative (demand 0) and trace-derived curves are finite.
func (c Curve) AtClamped(k int) int64 {
	if k <= 0 {
		return 0
	}
	if v, err := c.At(k); err == nil {
		return v
	}
	return c.vals[len(c.vals)-1]
}

// LastValue returns the value at the end of the stored prefix.
func (c Curve) LastValue() int64 { return c.vals[len(c.vals)-1] }

// Values returns a copy of the stored prefix values.
func (c Curve) Values() []int64 {
	cp := make([]int64, len(c.vals))
	copy(cp, c.vals)
	return cp
}

// StrictlyIncreasing reports whether the curve is strictly increasing over
// its stored prefix (and, for infinite curves, over the tail as well). The
// paper notes workload curves are strictly increasing sequences; pseudo-
// inverse round-tripping (γ⁻¹(γ(k)) = k) relies on this.
func (c Curve) StrictlyIncreasing() bool {
	for i := 1; i < len(c.vals); i++ {
		if c.vals[i] <= c.vals[i-1] {
			return false
		}
	}
	if c.Infinite() {
		// One full period must gain at least one cycle per step: the tail
		// repeats prefix increments shifted by delta, so strictness over the
		// seam and delta > 0 ⇒ strictness everywhere.
		if c.delta <= 0 {
			return false
		}
		seam := c.vals[len(c.vals)-c.period] + c.delta
		if seam <= c.vals[len(c.vals)-1] {
			return false
		}
	}
	return true
}

// UpperInverse computes the pseudo-inverse of an upper curve at e:
//
//	γᵘ⁻¹(e) = max{k : γᵘ(k) ≤ e}
//
// following the paper's definition. It requires e ≥ 0. If the curve is
// finite and every stored value is ≤ e, the result is (MaxK(), true, nil)
// with exhausted=true signalling the maximum may extend beyond the stored
// domain. For infinite curves with delta == 0 and e ≥ sup γᵘ the maximum is
// unbounded; the function returns an error in that case.
func (c Curve) UpperInverse(e int64) (k int, exhausted bool, err error) {
	if e < 0 {
		return 0, false, fmt.Errorf("curve: UpperInverse of negative budget %d", e)
	}
	// Find in the prefix: largest index with vals[idx] ≤ e.
	idx := sort.Search(len(c.vals), func(i int) bool { return c.vals[i] > e }) - 1
	if idx < len(c.vals)-1 {
		// Strictly inside the prefix: vals[idx+1] > e, done.
		return idx, false, nil
	}
	// Every stored value is ≤ e.
	if !c.Infinite() {
		return len(c.vals) - 1, true, nil
	}
	if c.delta == 0 {
		return 0, false, fmt.Errorf("curve: UpperInverse(%d) unbounded (flat tail)", e)
	}
	// Advance whole periods: after p periods the minimum over one period of
	// the shifted prefix window is min over the last `period` stored values
	// plus p·delta. We need the largest k with value ≤ e. Work per-residue.
	best := len(c.vals) - 1
	for r := 0; r < c.period; r++ {
		base := len(c.vals) - c.period + r
		v := c.vals[base]
		if v > e {
			continue
		}
		p := (e - v) / c.delta
		k := base + int(p)*c.period
		if k > best {
			best = k
		}
	}
	return best, false, nil
}

// LowerInverse computes the pseudo-inverse of a lower curve at e:
//
//	γˡ⁻¹(e) = min{k : γˡ(k) ≥ e}
//
// It requires e ≥ 0 (γˡ⁻¹(0) = 0). If no k in the curve's domain reaches e
// the function returns an error for finite curves and for infinite curves
// with a flat tail.
func (c Curve) LowerInverse(e int64) (int, error) {
	if e < 0 {
		return 0, fmt.Errorf("curve: LowerInverse of negative demand %d", e)
	}
	if e == 0 {
		return 0, nil
	}
	idx := sort.Search(len(c.vals), func(i int) bool { return c.vals[i] >= e })
	if idx < len(c.vals) {
		return idx, nil
	}
	if !c.Infinite() || c.delta == 0 {
		return 0, fmt.Errorf("curve: LowerInverse(%d) unreachable (sup=%d)", e, c.vals[len(c.vals)-1])
	}
	// Find the smallest k ≥ len(vals) with value ≥ e, per residue class.
	best := math.MaxInt
	for r := 0; r < c.period; r++ {
		base := len(c.vals) - c.period + r
		v := c.vals[base]
		need := e - v
		p := need / c.delta
		if need%c.delta != 0 || p == 0 {
			p++ // first period count that lifts this residue to ≥ e; p ≥ 1 keeps k beyond the prefix
		}
		k := base + int(p)*c.period
		if k < best {
			best = k
		}
	}
	return best, nil
}

// UpperBoundAt evaluates the curve at k, extending finite curves beyond
// their prefix by subadditive decomposition: for k = q·m + r with m the last
// stored index, C(k) ≤ q·C(m) + C(r). For subadditive curves (all upper
// workload curves) the result is a valid upper bound everywhere and exact
// within the stored prefix. Infinite curves evaluate exactly.
func (c Curve) UpperBoundAt(k int) (int64, error) {
	if k < 0 {
		return 0, ErrNegativeK
	}
	if v, err := c.At(k); err == nil {
		return v, nil
	}
	m := len(c.vals) - 1
	if m == 0 {
		return 0, fmt.Errorf("%w: cannot extend single-point curve", ErrOutOfDomain)
	}
	q := k / m
	r := k % m
	return int64(q)*c.vals[m] + c.vals[r], nil
}

// Add returns the pointwise sum of two curves. The sum of upper workload
// curves bounds the joint demand of independent task sets (used by the RMS
// test of Sec. 3.1). The result's domain is the intersection of the
// operands' domains; tails combine exactly when both are infinite (period =
// lcm of the periods).
func Add(a, b Curve) (Curve, error) {
	if !a.Infinite() || !b.Infinite() {
		n := a.finiteDomain(b)
		vals := make([]int64, n+1)
		for k := 0; k <= n; k++ {
			av, err := a.At(k)
			if err != nil {
				return Curve{}, err
			}
			bv, err := b.At(k)
			if err != nil {
				return Curve{}, err
			}
			vals[k] = av + bv
		}
		return NewFinite(vals)
	}
	p := lcm(a.period, b.period)
	// Store one full combined period beyond the longer prefix so the tail
	// recurrence is exact.
	n := maxInt(len(a.vals), len(b.vals)) + p
	vals := make([]int64, n)
	for k := 0; k < n; k++ {
		vals[k] = a.MustAt(k) + b.MustAt(k)
	}
	delta := a.delta*int64(p/a.period) + b.delta*int64(p/b.period)
	return New(vals, p, delta)
}

// Max returns the pointwise maximum of two curves (least common upper bound).
func Max(a, b Curve) (Curve, error) { return combine(a, b, maxI64) }

// Min returns the pointwise minimum of two curves (greatest common lower
// bound). Min of upper workload curves of the same task is again an upper
// workload curve; the paper's case study takes curves "by taking maximum
// over all respective curves of individual video clips" — Max for γᵘ, Min
// for γˡ.
func Min(a, b Curve) (Curve, error) { return combine(a, b, minI64) }

func combine(a, b Curve, f func(int64, int64) int64) (Curve, error) {
	if !a.Infinite() || !b.Infinite() {
		n := a.finiteDomain(b)
		vals := make([]int64, n+1)
		for k := 0; k <= n; k++ {
			av, err := a.At(k)
			if err != nil {
				return Curve{}, err
			}
			bv, err := b.At(k)
			if err != nil {
				return Curve{}, err
			}
			vals[k] = f(av, bv)
		}
		return NewFinite(vals)
	}
	// Pointwise max/min of two ultimately-periodic curves is ultimately
	// periodic only when per-period slopes are equal; otherwise one curve
	// dominates eventually. We materialize far enough past the crossover
	// that the dominant curve's tail is exact, then adopt it.
	p := lcm(a.period, b.period)
	da := a.delta * int64(p/a.period)
	db := b.delta * int64(p/b.period)
	if da == db {
		n := maxInt(len(a.vals), len(b.vals)) + p
		vals := make([]int64, n)
		for k := 0; k < n; k++ {
			vals[k] = f(a.MustAt(k), b.MustAt(k))
		}
		return New(vals, p, da)
	}
	// Slopes differ: find a horizon after which the steeper curve (for Max)
	// or shallower curve (for Min) wins at every residue, then use its tail.
	n := maxInt(len(a.vals), len(b.vals))
	gap := int64(0)
	for k := n - p; k < n; k++ {
		d := a.MustAt(k) - b.MustAt(k)
		if d < 0 {
			d = -d
		}
		if d > gap {
			gap = d
		}
	}
	slopeDiff := da - db
	if slopeDiff < 0 {
		slopeDiff = -slopeDiff
	}
	periodsToDominance := int(gap/slopeDiff) + 2
	horizon := n + periodsToDominance*p
	vals := make([]int64, horizon)
	for k := 0; k < horizon; k++ {
		vals[k] = f(a.MustAt(k), b.MustAt(k))
	}
	// Max eventually follows the steeper curve, Min the shallower one.
	isMax := f(1, 0) == 1
	tailD := minI64(da, db)
	if isMax {
		tailD = maxI64(da, db)
	}
	return New(vals, p, tailD)
}

// Scale returns the curve multiplied pointwise by a non-negative integer
// factor (e.g. converting per-event cycle curves between clock domains with
// an integer ratio).
func (c Curve) Scale(factor int64) (Curve, error) {
	if factor < 0 {
		return Curve{}, fmt.Errorf("curve: negative scale factor %d", factor)
	}
	vals := make([]int64, len(c.vals))
	for i, v := range c.vals {
		vals[i] = v * factor
	}
	return New(vals, c.period, c.delta*factor)
}

// Truncate returns the curve restricted to k ≤ maxK (finite result). For
// finite curves maxK must be within the stored prefix.
func (c Curve) Truncate(maxK int) (Curve, error) {
	if maxK < 0 {
		return Curve{}, ErrNegativeK
	}
	vals := make([]int64, maxK+1)
	for k := 0; k <= maxK; k++ {
		v, err := c.At(k)
		if err != nil {
			return Curve{}, err
		}
		vals[k] = v
	}
	return NewFinite(vals)
}

// MinPlusConv returns the min-plus convolution over the stored domain:
//
//	(a ⊗ b)(k) = min_{0 ≤ i ≤ k} a(i) + b(k−i)
//
// computed for k = 0..maxK. Both operands must be defined on [0, maxK].
// For a subadditive curve γ with γ(0)=0, γ ⊗ γ = γ — a property test target.
func MinPlusConv(a, b Curve, maxK int) (Curve, error) {
	return conv(a, b, maxK, true)
}

// MaxPlusConv returns the max-plus convolution
//
//	(a ⊕ b)(k) = max_{0 ≤ i ≤ k} a(i) + b(k−i)
//
// computed for k = 0..maxK. For a superadditive curve γ with γ(0)=0,
// γ ⊕ γ = γ.
func MaxPlusConv(a, b Curve, maxK int) (Curve, error) {
	return conv(a, b, maxK, false)
}

func conv(a, b Curve, maxK int, min bool) (Curve, error) {
	if maxK < 0 {
		return Curve{}, ErrNegativeK
	}
	av := make([]int64, maxK+1)
	bv := make([]int64, maxK+1)
	for k := 0; k <= maxK; k++ {
		x, err := a.At(k)
		if err != nil {
			return Curve{}, err
		}
		y, err := b.At(k)
		if err != nil {
			return Curve{}, err
		}
		av[k], bv[k] = x, y
	}
	vals := make([]int64, maxK+1)
	for k := 0; k <= maxK; k++ {
		best := av[0] + bv[k]
		for i := 1; i <= k; i++ {
			v := av[i] + bv[k-i]
			if min && v < best || !min && v > best {
				best = v
			}
		}
		vals[k] = best
	}
	return NewFinite(vals)
}

// Subadditive reports whether the curve satisfies
// C(i+j) ≤ C(i) + C(j) for all i, j with i+j ≤ maxK. Upper workload curves
// are subadditive: the worst window of length i+j splits into windows of
// length i and j, each bounded by the curve.
func (c Curve) Subadditive(maxK int) (bool, error) {
	return c.additivity(maxK, true)
}

// Superadditive reports whether C(i+j) ≥ C(i) + C(j) for all i, j with
// i+j ≤ maxK. Lower workload curves are superadditive.
func (c Curve) Superadditive(maxK int) (bool, error) {
	return c.additivity(maxK, false)
}

func (c Curve) additivity(maxK int, sub bool) (bool, error) {
	v := make([]int64, maxK+1)
	for k := 0; k <= maxK; k++ {
		x, err := c.At(k)
		if err != nil {
			return false, err
		}
		v[k] = x
	}
	for i := 1; i <= maxK; i++ {
		for j := i; i+j <= maxK; j++ {
			if sub && v[i+j] > v[i]+v[j] {
				return false, nil
			}
			if !sub && v[i+j] < v[i]+v[j] {
				return false, nil
			}
		}
	}
	return true, nil
}

// SubadditiveClosure tightens an upper curve by repeated min-plus self-
// convolution until fixpoint, over k = 0..maxK. Any valid upper workload
// curve is already a fixpoint; for curves assembled from partial
// information the closure is the tightest subadditive upper bound.
func (c Curve) SubadditiveClosure(maxK int) (Curve, error) {
	cur, err := c.Truncate(maxK)
	if err != nil {
		return Curve{}, err
	}
	for {
		next, err := MinPlusConv(cur, cur, maxK)
		if err != nil {
			return Curve{}, err
		}
		if equalVals(cur.vals, next.vals) {
			return cur, nil
		}
		cur = next
	}
}

// LeqOn reports whether c(k) ≤ d(k) for every k in 0..maxK.
func (c Curve) LeqOn(d Curve, maxK int) (bool, error) {
	for k := 0; k <= maxK; k++ {
		cv, err := c.At(k)
		if err != nil {
			return false, err
		}
		dv, err := d.At(k)
		if err != nil {
			return false, err
		}
		if cv > dv {
			return false, nil
		}
	}
	return true, nil
}

// String renders a short human-readable description.
func (c Curve) String() string {
	var b strings.Builder
	n := len(c.vals)
	show := n
	if show > 8 {
		show = 8
	}
	fmt.Fprintf(&b, "Curve[")
	for i := 0; i < show; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", c.vals[i])
	}
	if show < n {
		fmt.Fprintf(&b, " …(%d pts)", n)
	}
	b.WriteByte(']')
	if c.Infinite() {
		fmt.Fprintf(&b, "+tail(p=%d,δ=%d)", c.period, c.delta)
	}
	return b.String()
}

// finiteDomain returns the largest k on which both curves are defined, given
// that at least one of them is finite.
func (c Curve) finiteDomain(d Curve) int {
	n := math.MaxInt
	if !c.Infinite() {
		n = len(c.vals) - 1
	}
	if !d.Infinite() && len(d.vals)-1 < n {
		n = len(d.vals) - 1
	}
	return n
}

func equalVals(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
