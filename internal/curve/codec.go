package curve

import (
	"fmt"
	"strconv"
	"strings"
)

// Text codec: a curve serializes to a single line
//
//	wcurve/1 period=<p> delta=<d> vals=<v0>,<v1>,...
//
// so curves can be stored next to traces, exchanged between the command-
// line tools, and embedded in golden tests. The format is versioned; only
// version 1 exists.

const codecHeader = "wcurve/1"

// MarshalText implements encoding.TextMarshaler.
func (c Curve) MarshalText() ([]byte, error) {
	if len(c.vals) == 0 {
		return nil, ErrEmpty
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s period=%d delta=%d vals=", codecHeader, c.period, c.delta)
	for i, v := range c.vals {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(v, 10))
	}
	return []byte(b.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler; the result passes the
// same validation as New.
func (c *Curve) UnmarshalText(text []byte) error {
	fields := strings.Fields(string(text))
	if len(fields) != 4 || fields[0] != codecHeader {
		return fmt.Errorf("curve: bad encoding (want %q header and 3 fields)", codecHeader)
	}
	period, err := parseKV(fields[1], "period")
	if err != nil {
		return err
	}
	delta, err := parseKV(fields[2], "delta")
	if err != nil {
		return err
	}
	raw, ok := strings.CutPrefix(fields[3], "vals=")
	if !ok {
		return fmt.Errorf("curve: missing vals= field")
	}
	parts := strings.Split(raw, ",")
	vals := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return fmt.Errorf("curve: vals[%d]: %w", i, err)
		}
		vals[i] = v
	}
	parsed, err := New(vals, int(period), delta)
	if err != nil {
		return err
	}
	*c = parsed
	return nil
}

func parseKV(field, key string) (int64, error) {
	raw, ok := strings.CutPrefix(field, key+"=")
	if !ok {
		return 0, fmt.Errorf("curve: missing %s= field", key)
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("curve: %s: %w", key, err)
	}
	return v, nil
}
