// Package textplot renders simple ASCII charts so the command-line tools
// can print the paper's figures directly into a terminal or a log file.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted curve: (x, y) points, drawn with Marker.
type Series struct {
	Name   string
	Marker byte
	X      []float64
	Y      []float64
}

// Chart renders the series on a width×height character grid with axis
// labels and a legend. Points are mapped linearly; later series overdraw
// earlier ones where cells collide.
func Chart(series []Series, width, height int, title string) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return title + "\n(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range series {
		for i := range s.X {
			col := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			row := int(math.Round((s.Y[i] - minY) / (maxY - minY) * float64(height-1)))
			r := height - 1 - row
			if r >= 0 && r < height && col >= 0 && col < width {
				grid[r][col] = s.Marker
			}
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for r, row := range grid {
		yVal := maxY - (maxY-minY)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%12.4g |%s\n", yVal, string(row))
	}
	fmt.Fprintf(&b, "%12s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%12s  %-*.4g%*.4g\n", "", width/2, minX, width-width/2, maxX)
	for _, s := range series {
		fmt.Fprintf(&b, "  %c = %s\n", s.Marker, s.Name)
	}
	return b.String()
}

// Bars renders a horizontal bar chart with one row per label, scaled to
// maxWidth characters at the largest value. A reference line at `ref`
// (e.g. the buffer limit in Fig. 7) is marked with '|' when positive.
func Bars(labels []string, values []float64, maxWidth int, ref float64, title string) string {
	if maxWidth < 10 {
		maxWidth = 10
	}
	maxV := ref
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, l := range labels {
		v := 0.0
		if i < len(values) {
			v = values[i]
		}
		n := int(math.Round(v / maxV * float64(maxWidth)))
		if n < 0 {
			n = 0
		}
		bar := strings.Repeat("#", n)
		if ref > 0 {
			refCol := int(math.Round(ref / maxV * float64(maxWidth)))
			pad := refCol - n
			if pad >= 0 {
				bar += strings.Repeat(" ", pad) + "|"
			}
		}
		fmt.Fprintf(&b, "%-*s %s %.3f\n", labelW, l, bar, v)
	}
	return b.String()
}
