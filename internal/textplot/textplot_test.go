package textplot

import (
	"strings"
	"testing"
)

func TestChartContainsMarkersAndLegend(t *testing.T) {
	s := Chart([]Series{
		{Name: "linear", Marker: '*', X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
		{Name: "flat", Marker: 'o', X: []float64{0, 1, 2, 3}, Y: []float64{1, 1, 1, 1}},
	}, 40, 10, "test chart")
	if !strings.Contains(s, "test chart") {
		t.Fatal("missing title")
	}
	if !strings.Contains(s, "*") || !strings.Contains(s, "o") {
		t.Fatal("missing markers")
	}
	if !strings.Contains(s, "* = linear") || !strings.Contains(s, "o = flat") {
		t.Fatal("missing legend")
	}
	lines := strings.Split(s, "\n")
	if len(lines) < 12 {
		t.Fatalf("chart too short: %d lines", len(lines))
	}
}

func TestChartEmptyAndDegenerate(t *testing.T) {
	if s := Chart(nil, 40, 10, "empty"); !strings.Contains(s, "(no data)") {
		t.Fatal("empty chart must say so")
	}
	// Single point: min == max on both axes must not divide by zero.
	s := Chart([]Series{{Name: "pt", Marker: 'x', X: []float64{5}, Y: []float64{7}}}, 20, 8, "")
	if !strings.Contains(s, "x") {
		t.Fatal("single point must render")
	}
}

func TestChartClampsTinyDimensions(t *testing.T) {
	s := Chart([]Series{{Name: "p", Marker: 'x', X: []float64{0, 1}, Y: []float64{0, 1}}}, 1, 1, "")
	if len(s) == 0 {
		t.Fatal("clamped chart must render")
	}
}

func TestBars(t *testing.T) {
	s := Bars([]string{"alpha", "beta"}, []float64{0.5, 1.0}, 20, 1.0, "bars")
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "beta") {
		t.Fatal("missing labels")
	}
	if !strings.Contains(s, "#") {
		t.Fatal("missing bars")
	}
	if !strings.Contains(s, "|") {
		t.Fatal("missing reference line")
	}
	if !strings.Contains(s, "0.500") || !strings.Contains(s, "1.000") {
		t.Fatal("missing values")
	}
	// The longer value must draw more #'s.
	alphaLine, betaLine := "", ""
	for _, l := range strings.Split(s, "\n") {
		if strings.HasPrefix(l, "alpha") {
			alphaLine = l
		}
		if strings.HasPrefix(l, "beta") {
			betaLine = l
		}
	}
	if strings.Count(betaLine, "#") <= strings.Count(alphaLine, "#") {
		t.Fatal("bar lengths not proportional")
	}
}

func TestBarsWithoutRefAndMissingValues(t *testing.T) {
	s := Bars([]string{"a", "b"}, []float64{2}, 10, 0, "")
	if !strings.Contains(s, "a") || !strings.Contains(s, "b") {
		t.Fatal("labels lost")
	}
	if strings.Contains(s, "|") {
		t.Fatal("no reference line expected")
	}
	// All-zero values must not divide by zero.
	if z := Bars([]string{"z"}, []float64{0}, 10, 0, ""); !strings.Contains(z, "z") {
		t.Fatal("zero bars must render")
	}
}
