package pwl

import (
	"math"
	"testing"
	"testing/quick"
)

func bruteConv(a, b Curve, dt int64) float64 {
	best := math.Inf(1)
	for u := int64(0); u <= dt; u++ {
		if v := a.At(u) + b.At(dt-u); v < best {
			best = v
		}
	}
	return best
}

// The classic tandem result: rate-latency ⊗ rate-latency = rate-latency
// with the minimum rate and the summed latency.
func TestConvolveRateLatencyTandem(t *testing.T) {
	b1, _ := RateLatency(2, 100)
	b2, _ := RateLatency(1, 50)
	conv := Convolve(b1, b2)
	want, _ := RateLatency(1, 150)
	for dt := int64(0); dt <= 1000; dt += 37 {
		if math.Abs(conv.At(dt)-want.At(dt)) > 1e-9 {
			t.Fatalf("tandem at %d: %g, want %g", dt, conv.At(dt), want.At(dt))
		}
	}
}

func TestConvolveWithZeroIsZero(t *testing.T) {
	b, _ := Rate(3)
	zero, _ := Constant(0)
	conv := Convolve(b, zero)
	for dt := int64(0); dt <= 100; dt += 9 {
		if conv.At(dt) != 0 {
			t.Fatalf("β ⊗ 0 must be 0, got %g at %d", conv.At(dt), dt)
		}
	}
}

func TestQuickConvolveMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := seed
		next := func(n int64) int64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := (rng >> 11) % n
			if v < 0 {
				v = -v
			}
			return v
		}
		a, err := RateLatency(float64(1+next(4)), next(60))
		if err != nil {
			return false
		}
		b := MustNew([]Point{{0, 0}, {1 + next(80), float64(next(50))}}, float64(1+next(3)))
		conv := Convolve(a, b)
		for dt := int64(0); dt <= 200; dt += 23 {
			truth := bruteConv(a, b, dt)
			// Never above the true convolution (safe lower service curve);
			// within one-segment slack below it (crossing rounding).
			if conv.At(dt) > truth+1e-6 {
				return false
			}
			if conv.At(dt) < truth-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Pay bursts only once: the delay bound against the convolved end-to-end
// service is no worse than the sum of per-node delay bounds.
func TestConvolvePayBurstsOnlyOnce(t *testing.T) {
	alpha := MustNew([]Point{{0, 20}}, 0.5)
	b1, _ := RateLatency(2, 100)
	b2, _ := RateLatency(1.5, 80)
	const horizon = 100_000

	d1, ok := HorizontalDeviation(alpha, b1, horizon)
	if !ok {
		t.Fatal("node 1 unbounded")
	}
	// Output of node 1 feeds node 2: bound its arrival by deconvolution.
	out1, err := Deconvolve(alpha, b1, horizon)
	if err != nil {
		t.Fatal(err)
	}
	d2, ok := HorizontalDeviation(out1, b2, horizon)
	if !ok {
		t.Fatal("node 2 unbounded")
	}
	e2e := Convolve(b1, b2)
	dBoth, ok := HorizontalDeviation(alpha, e2e, horizon)
	if !ok {
		t.Fatal("tandem unbounded")
	}
	if dBoth > d1+d2 {
		t.Fatalf("end-to-end bound %d worse than per-node sum %d", dBoth, d1+d2)
	}
	if dBoth >= d1+d2 {
		t.Fatalf("pay-bursts-only-once should be strict here: %d vs %d", dBoth, d1+d2)
	}
}
