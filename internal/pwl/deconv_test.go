package pwl

import (
	"math"
	"testing"
	"testing/quick"
)

// Reference implementation: dense scan over u.
func bruteDeconv(a, b Curve, dt, uMax int64) float64 {
	best := math.Inf(-1)
	for u := int64(0); u <= uMax; u++ {
		if v := a.At(dt+u) - b.At(u); v > best {
			best = v
		}
	}
	return best
}

func TestDeconvolveLeakyBucketThroughRateLatency(t *testing.T) {
	// Classic NC result: (b + rΔ) ⊘ rate-latency(R, T) with r ≤ R gives
	// b + r(Δ + T): the burst grows by the latency's worth of arrivals.
	alpha := MustNew([]Point{{0, 5}}, 0.5)
	beta, _ := RateLatency(1, 100)
	out, err := Deconvolve(alpha, beta, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, dt := range []int64{0, 50, 100, 1000} {
		want := 5 + 0.5*float64(dt+100)
		if math.Abs(out.At(dt)-want) > 1e-6 {
			t.Fatalf("out(%d) = %g, want %g", dt, out.At(dt), want)
		}
	}
}

func TestDeconvolveIdentityService(t *testing.T) {
	// Serving with infinite-rate service (0 latency, huge rate) leaves the
	// arrival curve unchanged at u = 0.
	alpha := MustNew([]Point{{0, 3}, {200, 7}}, 0.25)
	beta, _ := Rate(1e9)
	out, err := Deconvolve(alpha, beta, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, dt := range []int64{0, 100, 200, 500} {
		if out.At(dt) < alpha.At(dt)-1e-6 {
			t.Fatalf("deconv below original at %d", dt)
		}
		// With enormous service the sup is at u=0: equality.
		if out.At(dt) > alpha.At(dt)+1e-6 {
			t.Fatalf("deconv inflated at %d: %g vs %g", dt, out.At(dt), alpha.At(dt))
		}
	}
}

func TestDeconvolveRejectsNegativeHorizon(t *testing.T) {
	a, _ := Rate(1)
	if _, err := Deconvolve(a, a, -1); err == nil {
		t.Fatal("negative horizon must fail")
	}
}

func TestQuickDeconvolveDominatesBrute(t *testing.T) {
	// The PWL result must dominate the dense-scan sup at every sampled Δ
	// (it is an upper envelope) and be close at breakpoints.
	f := func(seed int64) bool {
		rng := seed
		next := func(n int64) int64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := (rng >> 11) % n
			if v < 0 {
				v = -v
			}
			return v
		}
		alpha := MustNew([]Point{{0, float64(next(20))}}, float64(next(3)))
		beta, err := RateLatency(float64(next(4)+1), next(50))
		if err != nil {
			return false
		}
		const uMax = 500
		out, err := Deconvolve(alpha, beta, uMax)
		if err != nil {
			return false
		}
		for dt := int64(0); dt <= 300; dt += 37 {
			if out.At(dt) < bruteDeconv(alpha, beta, dt, uMax)-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
