// Package pwl implements piecewise-linear curves over the time-interval
// domain Δ ≥ 0.
//
// Arrival curves ᾱ(Δ) (an upper bound on the number of events seen in any
// time window of length Δ) and service curves β(Δ) (a lower bound on the
// service available in any window of length Δ) are both represented as
// piecewise-linear functions: a finite list of breakpoints followed by a
// final ray with constant slope. Time is measured in integer nanoseconds
// (matching the des simulation kernel); values are float64 because service
// curves such as β(Δ) = F·Δ with fractional cycles-per-nanosecond rates must
// be representable.
//
// Functions in this package treat curves as defined on Δ ∈ [0, ∞) with
// evaluation beyond the last breakpoint following the final ray.
package pwl

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Errors returned by constructors.
var (
	ErrNoPoints      = errors.New("pwl: need at least one breakpoint")
	ErrBadOrigin     = errors.New("pwl: first breakpoint must be at Δ=0")
	ErrUnsortedX     = errors.New("pwl: breakpoint Δs must be strictly increasing")
	ErrNegativeSlope = errors.New("pwl: curve must be non-decreasing")
)

// Point is a curve breakpoint: the curve passes through (X, Y) and is linear
// until the next breakpoint. X values are strictly increasing; staircase
// jumps are represented by their linear upper envelope (see Staircase).
type Point struct {
	X int64   // interval length Δ in nanoseconds, ≥ 0
	Y float64 // curve value at Δ
}

// Curve is a non-decreasing piecewise-linear function on Δ ≥ 0.
type Curve struct {
	pts  []Point // strictly increasing X, pts[0].X == 0
	rate float64 // slope after the last breakpoint (units per nanosecond)
}

// New builds a curve through the given breakpoints with final slope rate.
// The breakpoints must start at Δ=0, have strictly increasing X and
// non-decreasing Y; rate must be ≥ 0.
func New(pts []Point, rate float64) (Curve, error) {
	if len(pts) == 0 {
		return Curve{}, ErrNoPoints
	}
	if pts[0].X != 0 {
		return Curve{}, ErrBadOrigin
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X <= pts[i-1].X {
			return Curve{}, fmt.Errorf("%w: X[%d]=%d after X[%d]=%d",
				ErrUnsortedX, i, pts[i].X, i-1, pts[i-1].X)
		}
		if pts[i].Y < pts[i-1].Y {
			return Curve{}, fmt.Errorf("%w: Y[%d]=%g after Y[%d]=%g",
				ErrNegativeSlope, i, pts[i].Y, i-1, pts[i-1].Y)
		}
	}
	if rate < 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return Curve{}, fmt.Errorf("%w: final rate %g", ErrNegativeSlope, rate)
	}
	cp := make([]Point, len(pts))
	copy(cp, pts)
	return Curve{pts: cp, rate: rate}, nil
}

// MustNew is New but panics on error.
func MustNew(pts []Point, rate float64) Curve {
	c, err := New(pts, rate)
	if err != nil {
		panic(err)
	}
	return c
}

// Rate returns a pure rate curve β(Δ) = rate·Δ — the service curve of a
// fully available processor running at `rate` cycles per nanosecond
// (rate = F[GHz]).
func Rate(rate float64) (Curve, error) {
	return New([]Point{{0, 0}}, rate)
}

// RateLatency returns the rate-latency service curve
// β(Δ) = max(0, rate·(Δ − latency)) — a processor that may withhold service
// for up to `latency` nanoseconds and then serves at full rate.
func RateLatency(rate float64, latency int64) (Curve, error) {
	if latency < 0 {
		return Curve{}, fmt.Errorf("pwl: negative latency %d", latency)
	}
	if latency == 0 {
		return Rate(rate)
	}
	return New([]Point{{0, 0}, {latency, 0}}, rate)
}

// Constant returns the constant curve c(Δ) = v.
func Constant(v float64) (Curve, error) {
	if v < 0 {
		return Curve{}, fmt.Errorf("pwl: negative constant %g", v)
	}
	return New([]Point{{0, v}}, 0)
}

// Staircase builds the piecewise-linear upper envelope of a unit-step
// staircase with steps at the given Δs: the envelope passes through
// (steps[i], base+i+1) and interpolates linearly in between, so it upper-
// bounds the true right-continuous staircase everywhere. With steps at the
// minimal spans d(1) ≤ d(2) ≤ ... of a trace, the result is a valid (and
// tight at its breakpoints) arrival curve for ᾱ(Δ) = max{k : d(k) ≤ Δ}.
// Steps at Δ=0 fold into the base value. The final ray continues flat
// (rate 0): callers extracting from finite traces must treat evaluation
// beyond the last step as a lower bound on the true ᾱ.
func Staircase(base float64, steps []int64) (Curve, error) {
	for i := 1; i < len(steps); i++ {
		if steps[i] < steps[i-1] {
			return Curve{}, fmt.Errorf("%w: step %d at Δ=%d after Δ=%d",
				ErrUnsortedX, i, steps[i], steps[i-1])
		}
	}
	if len(steps) > 0 && steps[0] < 0 {
		return Curve{}, fmt.Errorf("pwl: negative step Δ=%d", steps[0])
	}
	pts := []Point{{0, base}}
	v := base
	i := 0
	// Fold simultaneous steps at Δ=0 into the origin value.
	for i < len(steps) && steps[i] == 0 {
		v++
		i++
	}
	pts[0].Y = v
	for i < len(steps) {
		x := steps[i]
		n := 0
		for i < len(steps) && steps[i] == x {
			n++
			i++
		}
		v += float64(n)
		pts = append(pts, Point{x, v})
	}
	return New(pts, 0)
}

// At evaluates the curve at Δ (must be ≥ 0; negative Δ evaluates to 0, the
// natural extension for interval domains).
func (c Curve) At(dt int64) float64 {
	if dt < 0 {
		return 0
	}
	// Find the last breakpoint with X ≤ dt.
	i := sort.Search(len(c.pts), func(i int) bool { return c.pts[i].X > dt }) - 1
	p := c.pts[i]
	if i == len(c.pts)-1 {
		return p.Y + c.rate*float64(dt-p.X)
	}
	q := c.pts[i+1]
	frac := float64(dt-p.X) / float64(q.X-p.X)
	return p.Y + frac*(q.Y-p.Y)
}

// Points returns a copy of the breakpoints.
func (c Curve) Points() []Point {
	cp := make([]Point, len(c.pts))
	copy(cp, c.pts)
	return cp
}

// FinalRate returns the slope after the last breakpoint.
func (c Curve) FinalRate() float64 { return c.rate }

// LastX returns the Δ of the last breakpoint (the end of the explicitly
// described prefix).
func (c Curve) LastX() int64 { return c.pts[len(c.pts)-1].X }

// Shift returns the curve shifted right by d nanoseconds and clamped at 0:
// (c >> d)(Δ) = c(Δ − d) for Δ ≥ d, 0 before. Used to build delayed /
// leftover service curves. If the original curve jumps at the origin
// (c(0) > 0), the jump is approximated by a one-nanosecond ramp *below* the
// true shifted curve, so the result remains a valid lower service curve.
func (c Curve) Shift(d int64) (Curve, error) {
	if d < 0 {
		return Curve{}, fmt.Errorf("pwl: negative shift %d", d)
	}
	if d == 0 {
		return c, nil
	}
	pts := []Point{{0, 0}, {d, 0}}
	if c.pts[0].Y == 0 {
		// (0,0) shifts onto (d,0), already present; shift the rest.
		for _, p := range c.pts[1:] {
			pts = append(pts, Point{p.X + d, p.Y})
		}
	} else {
		// Jump at the origin: ramp up over one nanosecond (safe under-
		// approximation for lower curves).
		for _, p := range c.pts {
			pts = append(pts, Point{p.X + d + 1, p.Y})
		}
	}
	return New(pts, c.rate)
}

// Scale returns the curve with values multiplied by f ≥ 0.
func (c Curve) Scale(f float64) (Curve, error) {
	if f < 0 {
		return Curve{}, fmt.Errorf("pwl: negative scale %g", f)
	}
	pts := make([]Point, len(c.pts))
	for i, p := range c.pts {
		pts[i] = Point{p.X, p.Y * f}
	}
	return New(pts, c.rate*f)
}

// Add returns the pointwise sum a + b.
func Add(a, b Curve) Curve {
	xs := mergeXs(a, b)
	pts := make([]Point, len(xs))
	for i, x := range xs {
		pts[i] = Point{x, a.At(x) + b.At(x)}
	}
	return MustNew(pts, a.rate+b.rate)
}

// Min returns the pointwise minimum of a and b, with breakpoints at the
// union of both curves' breakpoints and at segment crossings.
func Min(a, b Curve) Curve { return combine(a, b, math.Min) }

// Max returns the pointwise maximum of a and b.
func Max(a, b Curve) Curve { return combine(a, b, math.Max) }

func combine(a, b Curve, f func(float64, float64) float64) Curve {
	xs := mergeXs(a, b)
	// Insert crossing points between consecutive xs so linearity holds.
	var allXs []int64
	for i := 0; i < len(xs); i++ {
		allXs = append(allXs, xs[i])
		if i+1 < len(xs) {
			if x, ok := crossing(a, b, xs[i], xs[i+1]); ok {
				allXs = append(allXs, x)
			}
		}
	}
	// Beyond the last breakpoint both are rays; a final crossing may occur.
	last := xs[len(xs)-1]
	av, bv := a.At(last), b.At(last)
	if (av-bv)*(a.rate-b.rate) < 0 {
		// The rays converge and cross at last + (bv-av)/(a.rate-b.rate).
		dx := (bv - av) / (a.rate - b.rate)
		if dx > 0 {
			allXs = append(allXs, last+int64(math.Ceil(dx)))
		}
	}
	sort.Slice(allXs, func(i, j int) bool { return allXs[i] < allXs[j] })
	allXs = dedupe(allXs)
	pts := make([]Point, len(allXs))
	for i, x := range allXs {
		pts[i] = Point{x, f(a.At(x), b.At(x))}
	}
	rate := f(a.rate, b.rate)
	// For Min the final rate is the smaller ray's rate; for Max the larger.
	// (After the final crossing point one ray dominates.)
	return MustNew(pts, rate)
}

// crossing returns an integer Δ strictly inside (x0, x1) where a−b changes
// sign, if any.
func crossing(a, b Curve, x0, x1 int64) (int64, bool) {
	d0 := a.At(x0) - b.At(x0)
	d1 := a.At(x1) - b.At(x1)
	if d0 == 0 || d1 == 0 || (d0 > 0) == (d1 > 0) {
		return 0, false
	}
	// Linear on the segment: solve for the sign change, round to int.
	t := d0 / (d0 - d1) // in (0,1)
	x := x0 + int64(math.Round(t*float64(x1-x0)))
	if x <= x0 || x >= x1 {
		return 0, false
	}
	return x, true
}

// SupDiff computes sup_{0 ≤ Δ ≤ horizon} (a(Δ) − b(Δ)) and the Δ attaining
// it. This is eq. (6) of the paper: the backlog bound B ≤ sup(α − β). The
// supremum over a piecewise-linear difference is attained at a breakpoint of
// either curve (or the horizon), so only those points are inspected.
func SupDiff(a, b Curve, horizon int64) (sup float64, at int64) {
	xs := mergeXs(a, b)
	sup = math.Inf(-1)
	consider := func(x int64) {
		if x < 0 || x > horizon {
			return
		}
		if d := a.At(x) - b.At(x); d > sup {
			sup, at = d, x
		}
	}
	for _, x := range xs {
		consider(x)
	}
	consider(horizon)
	return sup, at
}

// HorizontalDeviation computes the maximum horizontal distance from a to b
// over [0, horizon]: sup_Δ inf{d ≥ 0 : a(Δ) ≤ b(Δ+d)} — the Network-
// Calculus delay bound when a is an arrival curve and b a service curve.
// Returns the delay in nanoseconds (math.Inf(1) as +horizon saturation is
// reported via the bool: ok=false means b never catches up within horizon).
func HorizontalDeviation(a, b Curve, horizon int64) (delay int64, ok bool) {
	xs := append(mergeXs(a, b), horizon)
	var worst int64
	for _, x := range xs {
		if x > horizon {
			continue
		}
		target := a.At(x)
		d, found := invCatchUp(b, target, x, horizon)
		if !found {
			return 0, false
		}
		if d > worst {
			worst = d
		}
	}
	return worst, true
}

// invCatchUp finds the smallest t ≥ from with b(t) ≥ target, returning
// t − from. Search is over [from, horizon].
func invCatchUp(b Curve, target float64, from, horizon int64) (int64, bool) {
	if b.At(from) >= target {
		return 0, true
	}
	if b.At(horizon) < target {
		return 0, false
	}
	lo, hi := from, horizon
	for lo < hi {
		mid := lo + (hi-lo)/2
		if b.At(mid) >= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo - from, true
}

// Convolve computes the min-plus convolution
//
//	(a ⊗ b)(Δ) = inf_{0 ≤ u ≤ Δ} ( a(u) + b(Δ−u) )
//
// — the service curve of two nodes in tandem: a flow crossing both is
// guaranteed a ⊗ b end to end, which is the Network-Calculus
// "pay bursts only once" principle (one end-to-end bound beats the sum of
// per-node bounds). The infimum of a piecewise-linear sum is attained with
// u at a breakpoint of a or Δ−u at a breakpoint of b; the result is
// evaluated exactly at the pairwise breakpoint sums and interpolated
// linearly in between. For the convex curves used as service models
// (rate-latency) the result is exact everywhere.
func Convolve(a, b Curve) Curve {
	// The infimum over u is attained with u at a breakpoint of a or Δ−u at
	// a breakpoint of b (between breakpoints the objective is linear in u).
	// So a ⊗ b is the pointwise minimum of the finite family of shifted
	// curves { a(x) + b(·−x) : x ∈ bp(a) } ∪ { b(y) + a(·−y) : y ∈ bp(b) },
	// which we fold with Min (crossing points inserted; corner-cutting is
	// on the safe under-approximating side for lower service curves).
	family := func(fixed, moving Curve, out *[]Curve) {
		for _, p := range fixed.Points() {
			shifted, err := moving.Shift(p.X)
			if err != nil {
				continue // p.X ≥ 0 by construction; defensive only
			}
			level, err := Constant(fixed.At(p.X))
			if err != nil {
				continue
			}
			*out = append(*out, Add(shifted, level))
		}
	}
	var members []Curve
	family(a, b, &members)
	family(b, a, &members)
	conv := members[0]
	for _, m := range members[1:] {
		conv = Min(conv, m)
	}
	return conv
}

// Deconvolve computes the min-plus deconvolution (a ⊘ b)(Δ) =
// sup_{u ≥ 0} ( a(Δ+u) − b(u) ) over u ∈ [0, uMax] — the exact Network-
// Calculus output-arrival-curve operator: a flow with arrival curve a
// served with service curve b leaves with arrival curve a ⊘ b. When a's
// final rate exceeds b's the supremum diverges as u → ∞; the finite uMax
// makes the result a valid bound for analyses whose busy periods are known
// to be shorter than uMax (callers typically pass the backlog-clearing
// horizon).
//
// The result is evaluated exactly at the shifted breakpoints of both curves
// and interpolated linearly in between, which over-approximates (convexity
// of sup of linear functions), keeping the output a valid upper arrival
// curve.
func Deconvolve(a, b Curve, uMax int64) (Curve, error) {
	if uMax < 0 {
		return Curve{}, fmt.Errorf("pwl: negative deconvolution horizon %d", uMax)
	}
	// Candidate u values: breakpoints of b, breakpoints of a shifted into
	// range for each Δ — evaluating sup exactly for piecewise-linear f
	// requires u where slopes change: u ∈ breakpoints(b) ∪ {x − Δ : x ∈
	// breakpoints(a)}. We sample the sup at Δ values from both curves'
	// breakpoints (and their differences), computing the sup by scanning
	// candidate u's.
	var us []int64
	for _, p := range b.Points() {
		if p.X <= uMax {
			us = append(us, p.X)
		}
	}
	us = append(us, uMax)

	sup := func(dt int64) float64 {
		best := math.Inf(-1)
		for _, u := range us {
			if v := a.At(dt+u) - b.At(u); v > best {
				best = v
			}
		}
		// Also u such that dt+u hits a breakpoint of a.
		for _, p := range a.Points() {
			u := p.X - dt
			if u >= 0 && u <= uMax {
				if v := a.At(dt+u) - b.At(u); v > best {
					best = v
				}
			}
		}
		return best
	}

	// Output breakpoints: a's breakpoints (shifted by each u candidate
	// would be exhaustive; a's own Xs suffice for exactness at them, with
	// linear interpolation elsewhere being an upper bound).
	var xs []int64
	seen := map[int64]bool{}
	add := func(x int64) {
		if x >= 0 && !seen[x] {
			seen[x] = true
			xs = append(xs, x)
		}
	}
	add(0)
	for _, p := range a.Points() {
		add(p.X)
	}
	for _, p := range b.Points() {
		add(p.X)
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })

	pts := make([]Point, 0, len(xs))
	prev := math.Inf(-1)
	for _, x := range xs {
		v := sup(x)
		if v < prev {
			v = prev // monotone repair (sup is monotone in Δ; guard fp noise)
		}
		if v < 0 {
			v = 0
		}
		prev = v
		pts = append(pts, Point{X: x, Y: v})
	}
	return New(pts, a.rate)
}

// LeqOn reports whether a(Δ) ≤ b(Δ) for all Δ in [0, horizon]. Like SupDiff
// it needs to check only breakpoints and the horizon.
func LeqOn(a, b Curve, horizon int64) bool {
	sup, _ := SupDiff(a, b, horizon)
	return sup <= 1e-9
}

func mergeXs(a, b Curve) []int64 {
	xs := make([]int64, 0, len(a.pts)+len(b.pts))
	for _, p := range a.pts {
		xs = append(xs, p.X)
	}
	for _, p := range b.pts {
		xs = append(xs, p.X)
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	return dedupe(xs)
}

func dedupe(xs []int64) []int64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// String renders a short description.
func (c Curve) String() string {
	var b strings.Builder
	b.WriteString("PWL[")
	show := len(c.pts)
	if show > 6 {
		show = 6
	}
	for i := 0; i < show; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "(%d,%g)", c.pts[i].X, c.pts[i].Y)
	}
	if show < len(c.pts) {
		fmt.Fprintf(&b, " …(%d pts)", len(c.pts))
	}
	fmt.Fprintf(&b, "]+%g/ns", c.rate)
	return b.String()
}
