package pwl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Fatal("empty points must fail")
	}
	if _, err := New([]Point{{5, 0}}, 0); err == nil {
		t.Fatal("first point must be at Δ=0")
	}
	if _, err := New([]Point{{0, 0}, {0, 1}}, 0); err == nil {
		t.Fatal("duplicate X must fail")
	}
	if _, err := New([]Point{{0, 5}, {10, 3}}, 0); err == nil {
		t.Fatal("decreasing Y must fail")
	}
	if _, err := New([]Point{{0, 0}}, -1); err == nil {
		t.Fatal("negative rate must fail")
	}
	if _, err := New([]Point{{0, 0}}, math.NaN()); err == nil {
		t.Fatal("NaN rate must fail")
	}
}

func TestRateCurve(t *testing.T) {
	c, err := Rate(0.5) // 0.5 cycles/ns = 500 MHz
	if err != nil {
		t.Fatal(err)
	}
	for _, dt := range []int64{0, 1, 10, 1000} {
		if got, want := c.At(dt), 0.5*float64(dt); got != want {
			t.Fatalf("Rate(0.5)(%d) = %g, want %g", dt, got, want)
		}
	}
	if c.At(-5) != 0 {
		t.Fatal("negative Δ must evaluate to 0")
	}
}

func TestRateLatency(t *testing.T) {
	c, err := RateLatency(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		dt   int64
		want float64
	}{{0, 0}, {50, 0}, {100, 0}, {101, 2}, {200, 200}}
	for _, tc := range cases {
		if got := c.At(tc.dt); got != tc.want {
			t.Fatalf("RateLatency(2,100)(%d) = %g, want %g", tc.dt, got, tc.want)
		}
	}
	if _, err := RateLatency(1, -1); err == nil {
		t.Fatal("negative latency must fail")
	}
	// Zero latency degenerates to Rate.
	c0, err := RateLatency(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := c0.At(10); got != 30 {
		t.Fatalf("RateLatency(3,0)(10) = %g, want 30", got)
	}
}

func TestConstant(t *testing.T) {
	c, err := Constant(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, dt := range []int64{0, 1, 100000} {
		if got := c.At(dt); got != 7 {
			t.Fatalf("Constant(7)(%d) = %g", dt, got)
		}
	}
	if _, err := Constant(-1); err == nil {
		t.Fatal("negative constant must fail")
	}
}

func TestStaircase(t *testing.T) {
	// Steps at Δ=0,0,5,5,9: base 0 → value 2 at Δ=0, 4 at Δ=5, 5 at Δ=9.
	c, err := Staircase(0, []int64{0, 0, 5, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.At(0); got != 2 {
		t.Fatalf("At(0) = %g, want 2", got)
	}
	if got := c.At(5); got != 4 {
		t.Fatalf("At(5) = %g, want 4", got)
	}
	if got := c.At(9); got != 5 {
		t.Fatalf("At(9) = %g, want 5", got)
	}
	if got := c.At(1000); got != 5 {
		t.Fatalf("flat tail: At(1000) = %g, want 5", got)
	}
	// Envelope property: value at any Δ must be ≥ true staircase.
	trueStair := func(dt int64) float64 {
		steps := []int64{0, 0, 5, 5, 9}
		n := 0
		for _, s := range steps {
			if s <= dt {
				n++
			}
		}
		return float64(n)
	}
	for dt := int64(0); dt <= 12; dt++ {
		if c.At(dt) < trueStair(dt)-1e-12 {
			t.Fatalf("envelope below staircase at Δ=%d: %g < %g", dt, c.At(dt), trueStair(dt))
		}
	}
	if _, err := Staircase(0, []int64{5, 3}); err == nil {
		t.Fatal("unsorted steps must fail")
	}
	if _, err := Staircase(0, []int64{-1}); err == nil {
		t.Fatal("negative step must fail")
	}
}

func TestShiftPreservesLowerBound(t *testing.T) {
	c, _ := Rate(2)
	s, err := c.Shift(50)
	if err != nil {
		t.Fatal(err)
	}
	// Shifted rate curve is a rate-latency curve.
	want, _ := RateLatency(2, 50)
	for dt := int64(0); dt <= 200; dt += 7 {
		if got, w := s.At(dt), want.At(dt); math.Abs(got-w) > 1e-9 {
			t.Fatalf("shift(50) at %d = %g, want %g", dt, got, w)
		}
	}
	// Curve with an origin jump: shifted version must stay ≤ true shift.
	j := MustNew([]Point{{0, 10}, {100, 30}}, 1)
	sj, err := j.Shift(20)
	if err != nil {
		t.Fatal(err)
	}
	for dt := int64(0); dt <= 300; dt++ {
		var truth float64
		if dt >= 20 {
			truth = j.At(dt - 20)
		}
		if sj.At(dt) > truth+1e-9 {
			t.Fatalf("shift overestimates at Δ=%d: %g > %g", dt, sj.At(dt), truth)
		}
	}
	if _, err := c.Shift(-1); err == nil {
		t.Fatal("negative shift must fail")
	}
	s0, err := c.Shift(0)
	if err != nil || s0.At(10) != c.At(10) {
		t.Fatal("zero shift must be identity")
	}
}

func TestScale(t *testing.T) {
	c := MustNew([]Point{{0, 0}, {10, 5}}, 1)
	s, err := c.Scale(3)
	if err != nil {
		t.Fatal(err)
	}
	for dt := int64(0); dt < 40; dt++ {
		if got, want := s.At(dt), 3*c.At(dt); math.Abs(got-want) > 1e-9 {
			t.Fatalf("scale at %d: %g want %g", dt, got, want)
		}
	}
	if _, err := c.Scale(-2); err == nil {
		t.Fatal("negative scale must fail")
	}
}

func TestAdd(t *testing.T) {
	a := MustNew([]Point{{0, 0}, {10, 5}}, 2)
	b, _ := RateLatency(1, 4)
	s := Add(a, b)
	for dt := int64(0); dt < 50; dt++ {
		want := a.At(dt) + b.At(dt)
		if got := s.At(dt); math.Abs(got-want) > 1e-9 {
			t.Fatalf("add at %d: %g want %g", dt, got, want)
		}
	}
}

func TestMinMaxAgainstPointwise(t *testing.T) {
	a := MustNew([]Point{{0, 10}}, 1) // 10 + Δ
	b, _ := Rate(2)                   // 2Δ — crosses a at Δ=10
	mn := Min(a, b)
	mx := Max(a, b)
	for dt := int64(0); dt <= 40; dt++ {
		av, bv := a.At(dt), b.At(dt)
		wantMin, wantMax := math.Min(av, bv), math.Max(av, bv)
		// Min interpolation may cut concave corners from below, Max convex
		// corners from above: allow one-sided slack near kinks.
		if mn.At(dt) > wantMin+1e-9 {
			t.Fatalf("Min overestimates at %d: %g > %g", dt, mn.At(dt), wantMin)
		}
		if mx.At(dt) < wantMax-1e-9 {
			t.Fatalf("Max underestimates at %d: %g < %g", dt, mx.At(dt), wantMax)
		}
		// At breakpoints the combination is exact; check far from the kink.
		if dt < 8 || dt > 12 {
			if math.Abs(mn.At(dt)-wantMin) > 1e-9 || math.Abs(mx.At(dt)-wantMax) > 1e-9 {
				t.Fatalf("min/max not exact away from kink at %d", dt)
			}
		}
	}
}

func TestSupDiffBacklogBound(t *testing.T) {
	// α = staircase-ish burst then rate 1; β = rate 2 with latency 10.
	// Backlog bound sup(α−β) is attained at the service latency edge.
	alpha := MustNew([]Point{{0, 5}}, 1)
	beta, _ := RateLatency(2, 10)
	sup, at := SupDiff(alpha, beta, 1000)
	if math.Abs(sup-15) > 1e-9 || at != 10 {
		t.Fatalf("SupDiff = (%g at %d), want (15 at 10)", sup, at)
	}
}

func TestSupDiffAtHorizon(t *testing.T) {
	// α grows faster than β: sup over a finite horizon is at the horizon.
	alpha, _ := Rate(3)
	beta, _ := Rate(1)
	sup, at := SupDiff(alpha, beta, 100)
	if math.Abs(sup-200) > 1e-9 || at != 100 {
		t.Fatalf("SupDiff = (%g at %d), want (200 at 100)", sup, at)
	}
}

func TestHorizontalDeviationDelayBound(t *testing.T) {
	// α(Δ) = 5 + Δ, β = 2(Δ−10)⁺. Delay: worst over Δ of catch-up time.
	alpha := MustNew([]Point{{0, 5}}, 1)
	beta, _ := RateLatency(2, 10)
	d, ok := HorizontalDeviation(alpha, beta, 10000)
	if !ok {
		t.Fatal("expected bounded delay")
	}
	// At Δ=0: α=5, β reaches 5 at t=10+2.5→13 (integer search: 13).
	// Worst case should be ≥ that and bounded by ~13.
	if d < 12 || d > 14 {
		t.Fatalf("delay bound = %d, want ≈13", d)
	}
	// Service never catches up within horizon → not ok.
	slow, _ := Rate(0.5)
	if _, ok := HorizontalDeviation(alpha, slow, 20); ok {
		t.Fatal("expected catch-up failure within tiny horizon")
	}
}

func TestLeqOn(t *testing.T) {
	a, _ := Rate(1)
	b, _ := Rate(2)
	if !LeqOn(a, b, 1000) {
		t.Fatal("Δ ≤ 2Δ must hold")
	}
	if LeqOn(b, a, 1000) {
		t.Fatal("2Δ ≤ Δ must fail")
	}
}

func TestStringer(t *testing.T) {
	c := MustNew([]Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}, {6, 6}, {7, 7}}, 1)
	if c.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestQuickAddIsExactAtAllPoints(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomCurve(rng)
		b := randomCurve(rng)
		s := Add(a, b)
		for i := 0; i < 50; i++ {
			x := rng.Int63n(2000)
			if math.Abs(s.At(x)-(a.At(x)+b.At(x))) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMinMaxSandwich(t *testing.T) {
	// Min ≤ both operands ≤ Max (within corner-cutting tolerance on the
	// correct side: Min never above either operand, Max never below).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomCurve(rng)
		b := randomCurve(rng)
		mn, mx := Min(a, b), Max(a, b)
		for i := 0; i < 50; i++ {
			x := rng.Int63n(2000)
			if mn.At(x) > a.At(x)+1e-6 || mn.At(x) > b.At(x)+1e-6 {
				return false
			}
			if mx.At(x) < a.At(x)-1e-6 || mx.At(x) < b.At(x)-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCurve(rng)
		prev := c.At(0)
		for x := int64(1); x < 500; x += 3 {
			v := c.At(x)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randomCurve(rng *rand.Rand) Curve {
	n := 1 + rng.Intn(6)
	pts := make([]Point, n)
	x := int64(0)
	y := float64(rng.Intn(5))
	for i := 0; i < n; i++ {
		pts[i] = Point{x, y}
		x += 1 + rng.Int63n(100)
		y += float64(rng.Intn(20))
	}
	return MustNew(pts, float64(rng.Intn(4)))
}
