package stream

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"wcm/internal/arrival"
	"wcm/internal/core"
	"wcm/internal/curve"
	"wcm/internal/events"
	"wcm/internal/kernel"
	"wcm/internal/netcalc"
	"wcm/internal/pwl"
	"wcm/internal/service"
)

// Errors returned by this package (beyond ErrBadConfig).
var (
	ErrNoSamples = errors.New("stream: no samples ingested yet")
	ErrBadBatch  = errors.New("stream: invalid ingest batch")
	ErrNoSpans   = errors.New("stream: need at least 2 samples in window for span queries")
	// ErrBusy is returned by SnapshotWithin when the stream lock could not
	// be acquired inside the caller's budget — the signal the serving layer
	// uses to fall back to a cached (degraded) answer instead of blocking a
	// request past its deadline.
	ErrBusy = errors.New("stream: lock busy past deadline")
)

// Defaults for the zero-valued Config fields.
const (
	DefaultWindow = 1024
	DefaultMaxK   = 256
)

// rebaseAt is the running-prefix-sum magnitude beyond which the next
// re-extraction rebases the demand Inc (differences are shift-invariant, so
// this is invisible to every query). Variable so tests can lower it.
var rebaseAt int64 = 1 << 61

// Config parameterizes a Stream. The zero value picks service defaults.
type Config struct {
	// Window is the sliding window length in samples. Default 1024; must be
	// ≥ 2.
	Window int
	// MaxK is the largest window length k the curves cover, capped to
	// Window. Default min(256, Window).
	MaxK int
	// ReextractEvery is the number of ingested samples between full batch
	// re-extractions via internal/kernel — the correctness anchor that
	// cross-checks the incremental state (and the rebase point for the
	// running prefix sum). 0 means Window (amortized O(K) extra per
	// sample); negative disables the anchor.
	ReextractEvery int
}

// Resolved returns the config with every zero field replaced by its
// default — the exact parameters a stream built from c will run with.
// Durability layers (internal/wal) persist the resolved form so a config
// mismatch between the on-disk state and a restarted process is detected
// by equality, defaults included.
func (c Config) Resolved() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = DefaultWindow
	}
	if c.MaxK == 0 {
		c.MaxK = DefaultMaxK
	}
	if c.MaxK > c.Window {
		c.MaxK = c.Window
	}
	if c.ReextractEvery == 0 {
		c.ReextractEvery = c.Window
	}
	return c
}

// Stream is one task's live characterization: a sliding window of
// (timestamp, demand) samples with incrementally maintained workload curves
// γᵘ/γˡ and span tables d(k)/D(k), an optional contract monitor, and the
// Network-Calculus queries of the paper evaluated against the CURRENT
// window. All methods are safe for concurrent use.
type Stream struct {
	mu     sync.Mutex
	window int
	maxK   int
	reint  int // re-extraction interval; ≤ 0 disables

	// version counts state mutations (ingest batches, contract changes,
	// forced re-extractions). It is bumped under mu before the mutating
	// call returns and is readable WITHOUT the lock, so version-keyed
	// caches (internal/server) can validate a hit with one atomic load.
	//
	// version and lastMut are the only fields read lock-free while ingest
	// is writing everything around them, so they get their own cache line:
	// without the padding, every cache-validation load on a read path would
	// ping-pong the line that mu and the ring bookkeeping are being written
	// through (false sharing — one of the contention sources behind the
	// multicore ingest cliff).
	_       [64]byte
	version atomic.Int64
	lastMut atomic.Int64
	_       [64 - 16]byte

	demands []int64 // ring of the last ≤ window raw demands
	times   []int64 // ring of the last ≤ window raw timestamps
	total   int64   // samples ever ingested
	lastT   int64   // largest timestamp seen

	prefixLast int64 // running demand prefix sum (rebasable)
	pre        *Inc  // over prefix sums: offsets 1..maxK
	spi        *Inc  // over timestamps: offsets 1..maxK−1 (nil when maxK == 1)

	monitor    *core.Monitor   // nil until a contract is set
	firstViol  *core.Violation // first contract violation ever seen
	violations int64           // total contract violations

	sinceAnchor   int   // samples since the last re-extraction
	reextractions int64 // anchor runs performed
	drift         int64 // anchor runs that disagreed with the incremental state

	// Scratch buffers so ingest and re-extraction allocate nothing in
	// steady state.
	obsT, obsD  [1]int64 // Observe's single-sample batch
	scratchPre  []int64  // per-chunk prefix sums fed to pre.PushBatch
	scratchTs   []int64  // per-chunk fused timestamps (IngestBatches)
	scratchData []int64
	scratchUp   []int64
	scratchLo   []int64
	scratchUp2  []int64
	scratchLo2  []int64
}

// New builds an empty stream.
func New(cfg Config) (*Stream, error) {
	cfg = cfg.withDefaults()
	if cfg.Window < 2 {
		return nil, fmt.Errorf("%w: window=%d (need ≥ 2)", ErrBadConfig, cfg.Window)
	}
	if cfg.MaxK < 1 {
		return nil, fmt.Errorf("%w: maxK=%d (need ≥ 1)", ErrBadConfig, cfg.MaxK)
	}
	s := &Stream{
		window:  cfg.Window,
		maxK:    cfg.MaxK,
		reint:   cfg.ReextractEvery,
		demands: make([]int64, cfg.Window),
		times:   make([]int64, cfg.Window),
	}
	// Prefix sums: window+1 data points cover window samples; the initial
	// base point 0 is pushed up front.
	pre, err := NewInc(cfg.MaxK, cfg.Window+1)
	if err != nil {
		return nil, err
	}
	pre.Push(0)
	s.pre = pre
	if cfg.MaxK >= 2 {
		spi, err := NewInc(cfg.MaxK-1, cfg.Window)
		if err != nil {
			return nil, err
		}
		s.spi = spi
	}
	return s, nil
}

// IngestResult reports one accepted batch.
type IngestResult struct {
	Accepted   int             // samples in the batch
	Total      int64           // samples ever ingested
	Version    int64           // stream version after this batch's bump
	Violation  *core.Violation // first contract violation IN THIS BATCH, if any
	Violations int64           // cumulative contract violations
	Drift      int64           // cumulative anchor disagreements (expect 0)
}

// Ingest appends a batch of samples: timestamps (non-decreasing, not before
// anything already ingested) with their per-activation cycle demands
// (non-negative). Validation is all-or-nothing: a bad batch changes no
// state. The incremental update is expected amortized O(MaxK) per sample,
// applied in chunks via Inc.PushBatch so the per-offset extrema are walked
// once per batch, not once per sample.
func (s *Stream) Ingest(ts, demands []int64) (IngestResult, error) {
	if len(ts) == 0 || len(ts) != len(demands) {
		return IngestResult{}, fmt.Errorf("%w: %d timestamps, %d demands",
			ErrBadBatch, len(ts), len(demands))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := validateBatch(ts, demands, s.lastT); err != nil {
		return IngestResult{}, err
	}
	return s.ingestLocked(ts, demands)
}

// validateBatch checks one pre-sized batch against the stream's ordering and
// sign invariants, starting from `last` (the newest timestamp already
// accepted). On success it returns the batch's final timestamp, so runs of
// batches can be validated back to back without touching stream state. It is
// the single source of truth for ingest validation — Ingest and
// IngestBatches must reject exactly the same batches with exactly the same
// errors for the async pipeline to be response-identical to the sync path.
func validateBatch(ts, demands []int64, last int64) (int64, error) {
	for i := range ts {
		if ts[i] < last {
			return 0, fmt.Errorf("%w: timestamp %d at index %d precedes %d",
				ErrBadBatch, ts[i], i, last)
		}
		last = ts[i]
		if demands[i] < 0 {
			return 0, fmt.Errorf("%w: negative demand %d at index %d",
				ErrBadBatch, demands[i], i)
		}
	}
	return last, nil
}

// Observe ingests a single sample with a caller-supplied clock reading,
// clamping a timestamp that lags the newest one already ingested forward
// to it instead of rejecting the batch. It exists for INTERNAL
// self-observation streams (internal/obs feeding the service's own
// request costs back into the model): concurrent request completions race
// to the stream lock, so their wall-clock timestamps arrive slightly out
// of order even though each reading was taken honestly. Clamping keeps
// the span tables well-defined (a reordered pair collapses to a
// simultaneous one) without the all-or-nothing validation external
// ingest needs. Demand must still be non-negative. Allocation-free in
// steady state.
func (s *Stream) Observe(t, demand int64) (IngestResult, error) {
	if demand < 0 {
		return IngestResult{}, fmt.Errorf("%w: negative demand %d", ErrBadBatch, demand)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t < s.lastT {
		t = s.lastT
	}
	s.obsT[0], s.obsD[0] = t, demand
	return s.ingestLocked(s.obsT[:], s.obsD[:])
}

// ingestLocked applies a pre-validated batch: timestamps non-decreasing
// and ≥ lastT, demands non-negative, len(ts) == len(demands) ≥ 1.
func (s *Stream) ingestLocked(ts, demands []int64) (IngestResult, error) {
	// Validation passed, so state WILL change. The deferred bump runs
	// before the caller's unlock (LIFO), so it also covers error exits
	// below: even a partially applied batch invalidates version-keyed
	// caches.
	defer s.bumpLocked()

	res := IngestResult{Accepted: len(ts)}
	w64 := int64(s.window)
	for off := 0; off < len(ts); {
		// Chunk up to the next anchor point so re-extractions land at
		// exactly the same sample positions as the per-sample path did.
		n := len(ts) - off
		if s.reint > 0 {
			if to := s.reint - s.sinceAnchor; to < n {
				n = to
			}
		}
		tsc, dc := ts[off:off+n], demands[off:off+n]
		s.scratchPre = s.scratchPre[:0]
		p := s.prefixLast
		for i := 0; i < n; i++ {
			slot := (s.total + int64(i)) % w64
			s.demands[slot] = dc[i]
			s.times[slot] = tsc[i]
			p += dc[i]
			s.scratchPre = append(s.scratchPre, p)
		}
		s.total += int64(n)
		s.lastT = tsc[n-1]
		s.prefixLast = p
		s.pre.PushBatch(s.scratchPre)
		if s.spi != nil {
			s.spi.PushBatch(tsc)
		}
		if s.monitor != nil {
			for i := 0; i < n; i++ {
				v, err := s.monitor.Push(dc[i])
				if err != nil {
					return IngestResult{}, err
				}
				if v != nil {
					s.violations++
					if s.firstViol == nil {
						s.firstViol = v
					}
					if res.Violation == nil {
						res.Violation = v
					}
				}
			}
		}
		if s.reint > 0 {
			s.sinceAnchor += n
			if s.sinceAnchor >= s.reint {
				if err := s.reextractLocked(); err != nil {
					return IngestResult{}, err
				}
			}
		}
		off += n
	}
	res.Total = s.total
	// The deferred bump has not run yet (LIFO at return), so the version
	// this batch lands at is the current one plus its own bump. The WAL
	// tags each logged batch with it for exactly-once replay.
	res.Version = s.version.Load() + 1
	res.Violations = s.violations
	res.Drift = s.drift
	return res, nil
}

// Batch is one ingest request's samples, as queued by the async pipeline.
type Batch struct {
	Ts      []int64
	Demands []int64
}

// BatchResult reports the outcome of one Batch of an IngestBatches call:
// exactly what the corresponding Ingest call would have returned.
type BatchResult struct {
	Res IngestResult
	Err error
}

// IngestBatches ingests a sequence of batches under ONE lock acquisition,
// fusing runs of consecutive valid batches into shared Inc.PushBatch scans —
// the cross-request coalescing behind the async ingest pipeline. Results are
// written into the caller-supplied results slice (len(results) must equal
// len(batches); both are typically reused worker scratch, so steady-state
// ingest stays allocation-free).
//
// Per batch, the outcome is EXACTLY what a sequential Ingest call would have
// produced: an invalid batch records its validation error, changes no state,
// and does not break later batches (they validate against the timestamps
// actually accepted so far); a valid batch records the same counts, total,
// violation attribution, and one version bump. Fusion never moves anchor
// re-extractions — chunks still split at the same absolute sample positions
// — so incremental state, drift accounting, and rebase timing are
// bit-identical to the sequential path (Inc.PushBatch is split-invariant).
//
// The one knowing divergence: if the batch kernel or the contract monitor
// errors mid-run (unreachable after validation — see applyRunLocked), a
// fused run may have applied more of the failing and following batches'
// samples than sequential ingest would have before reporting the error.
func (s *Stream) IngestBatches(batches []Batch, results []BatchResult) {
	if len(batches) != len(results) {
		panic(fmt.Sprintf("stream: IngestBatches with %d batches, %d results", len(batches), len(results)))
	}
	if len(batches) == 0 {
		return
	}
	for i := range results {
		results[i] = BatchResult{} // results are reused scratch: clear stale state
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	i := 0
	for i < len(batches) {
		b := batches[i]
		if len(b.Ts) == 0 || len(b.Ts) != len(b.Demands) {
			results[i] = BatchResult{Err: fmt.Errorf("%w: %d timestamps, %d demands",
				ErrBadBatch, len(b.Ts), len(b.Demands))}
			i++
			continue
		}
		last, err := validateBatch(b.Ts, b.Demands, s.lastT)
		if err != nil {
			results[i] = BatchResult{Err: err}
			i++
			continue
		}
		// Extend the run through every consecutive batch that stays valid
		// against the timestamps the run will have accepted by then.
		j := i + 1
		for j < len(batches) {
			nb := batches[j]
			if len(nb.Ts) == 0 || len(nb.Ts) != len(nb.Demands) {
				break
			}
			nlast, err := validateBatch(nb.Ts, nb.Demands, last)
			if err != nil {
				break
			}
			last = nlast
			j++
		}
		s.applyRunLocked(batches[i:j], results[i:j])
		i = j
	}
}

// applyRunLocked applies a pre-validated run of batches as one fused sample
// sequence. Chunks split only at anchor boundaries (never at batch
// boundaries), so a single Inc scan pass serves every request in the run;
// per-batch results are recorded as the walk crosses each batch's last
// sample, reproducing sequential attribution of totals, violations, and
// drift. Anchor rule: a batch ending exactly on an anchor position records
// its result AFTER that anchor runs (sequentially the anchor fires inside
// that batch's ingest); a batch ending mid-chunk records before it.
func (s *Stream) applyRunLocked(run []Batch, results []BatchResult) {
	w64 := int64(s.window)
	base := s.total // flat positions below are relative to this
	remaining := 0
	for _, b := range run {
		remaining += len(b.Ts)
	}
	bi, off := 0, 0    // walk cursor: next sample is run[bi].Ts[off]
	rec := 0           // batches 0..rec-1 have recorded results
	flat := int64(0)   // samples of the run recorded so far
	record := func() { // record run[rec], which just ended, and bump
		flat += int64(len(run[rec].Ts))
		results[rec] = BatchResult{Res: IngestResult{
			Accepted:   len(run[rec].Ts),
			Total:      base + flat,
			Version:    s.version.Load() + 1, // matches the bump just below
			Violation:  results[rec].Res.Violation,
			Violations: s.violations,
			Drift:      s.drift,
		}}
		s.bumpLocked()
		rec++
	}
	fail := func(err error) { // unreachable in practice; see IngestBatches
		for ; rec < len(run); rec++ {
			results[rec] = BatchResult{Err: err}
			s.bumpLocked()
		}
	}
	for remaining > 0 {
		n := remaining
		if s.reint > 0 {
			if to := s.reint - s.sinceAnchor; to < n {
				n = to
			}
		}
		// Gather the chunk across batch boundaries: rings, fused prefix
		// sums, fused timestamps.
		s.scratchPre = s.scratchPre[:0]
		s.scratchTs = s.scratchTs[:0]
		p := s.prefixLast
		gbi, goff := bi, off
		for taken := 0; taken < n; {
			b := run[gbi]
			take := len(b.Ts) - goff
			if take > n-taken {
				take = n - taken
			}
			for x := 0; x < take; x++ {
				slot := (s.total + int64(taken+x)) % w64
				s.demands[slot] = b.Demands[goff+x]
				s.times[slot] = b.Ts[goff+x]
				p += b.Demands[goff+x]
				s.scratchPre = append(s.scratchPre, p)
			}
			s.scratchTs = append(s.scratchTs, b.Ts[goff:goff+take]...)
			taken += take
			goff += take
			if goff == len(b.Ts) {
				gbi++
				goff = 0
			}
		}
		s.total += int64(n)
		s.lastT = s.scratchTs[n-1]
		s.prefixLast = p
		s.pre.PushBatch(s.scratchPre)
		if s.spi != nil {
			s.spi.PushBatch(s.scratchTs)
		}
		remaining -= n
		// Walk the chunk's samples for monitor checks and batch-boundary
		// crossings. endsAtChunk notes a batch whose last sample is the
		// chunk's last sample: it records after the anchor below.
		endsAtChunk := false
		for t := 0; t < n; t++ {
			b := run[bi]
			if s.monitor != nil {
				v, err := s.monitor.Push(b.Demands[off])
				if err != nil {
					fail(err)
					return
				}
				if v != nil {
					s.violations++
					if s.firstViol == nil {
						s.firstViol = v
					}
					if results[bi].Res.Violation == nil {
						results[bi].Res.Violation = v
					}
				}
			}
			off++
			if off == len(b.Ts) {
				if t == n-1 {
					endsAtChunk = true
				} else {
					record()
				}
				bi++
				off = 0
			}
		}
		if s.reint > 0 {
			s.sinceAnchor += n
			if s.sinceAnchor >= s.reint {
				if err := s.reextractLocked(); err != nil {
					fail(err)
					return
				}
			}
		}
		if endsAtChunk {
			record()
		}
	}
}

// Version returns the stream's mutation counter: it increases (and never
// decreases) every time an ingest batch, contract change or forced
// re-extraction touches state. Reading it does not take the stream lock, so
// callers can validate version-keyed caches for free; Snapshot and Stats
// record the version consistent with their contents.
func (s *Stream) Version() int64 { return s.version.Load() }

// bumpLocked advances the version and stamps the mutation time. Must be
// called with mu held (or via defer scheduled under mu).
func (s *Stream) bumpLocked() {
	s.version.Add(1)
	s.lastMut.Store(time.Now().UnixNano())
}

// LastMutation returns the wall-clock time of the last state mutation, or
// the zero time if the stream was never mutated. Lock-free, like Version:
// a degraded read can stamp the answer it serves with its staleness
// without touching the contended stream.
func (s *Stream) LastMutation() time.Time {
	ns := s.lastMut.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// SetContract installs (or replaces) the admission contract: every
// subsequently ingested sample is checked by a core.Monitor against the
// workload characterization w over windows up to `window` activations, and
// violations are recorded (see Stats and IngestResult). The monitor starts
// empty: only windows entirely after the call are checked.
func (s *Stream) SetContract(w core.Workload, window int) error {
	m, err := core.NewMonitor(w, window)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.monitor = m
	s.bumpLocked()
	return nil
}

// inWindowLocked returns the number of samples currently in the window.
func (s *Stream) inWindowLocked() int {
	if s.total < int64(s.window) {
		return int(s.total)
	}
	return s.window
}

// effKLocked returns the largest curve argument currently defined.
func (s *Stream) effKLocked() int {
	k := s.inWindowLocked()
	if k > s.maxK {
		k = s.maxK
	}
	return k
}

// orderedLocked appends the retained samples of ring to dst in ingest order
// (oldest first) and returns the extended slice.
func (s *Stream) orderedLocked(dst, ring []int64) []int64 {
	n := s.inWindowLocked()
	start := s.total - int64(n)
	for i := int64(0); i < int64(n); i++ {
		dst = append(dst, ring[(start+i)%int64(s.window)])
	}
	return dst
}

// reextractLocked runs the batch kernel over the current window contents and
// compares bit for bit with the incremental state — the correctness anchor.
// Disagreement increments the drift counter and rebuilds the incremental
// state from the window (the anchor wins). Also rebases the running prefix
// sum when it approaches the int64 horizon.
func (s *Stream) reextractLocked() error {
	s.sinceAnchor = 0
	s.reextractions++
	n := s.inWindowLocked()
	if n == 0 {
		return nil
	}

	// Workload curves: prefix sums of the window's demands, base 0.
	s.scratchData = s.scratchData[:0]
	s.scratchData = append(s.scratchData, 0)
	s.scratchData = s.orderedLocked(s.scratchData, s.demands)
	var sum int64
	for i := 1; i <= n; i++ {
		sum += s.scratchData[i]
		s.scratchData[i] = sum
	}
	effK := s.effKLocked()
	s.scratchUp = grow(s.scratchUp, effK+1)
	s.scratchLo = grow(s.scratchLo, effK+1)
	// Workers: 1 — the anchor runs under the stream mutex, and the kernel's
	// pool (its default at this window·K size) would spawn GOMAXPROCS
	// goroutines per anchor while holding it: scheduler allocations (malg/
	// allocm) on the ingest hot path — the 4-proc "0 → 189 allocs/op"
	// regression — plus worker fan-out behind the most contended lock in
	// the service. Single-threaded extraction here is also what keeps each
	// registry shard's ingest goroutine independent of the others.
	if err := kernel.ExtractInto(s.scratchData, effK, kernel.Options{Workers: 1}, s.scratchUp, s.scratchLo); err != nil {
		return err
	}
	s.scratchUp2, s.scratchLo2 = s.pre.AppendCurves(s.scratchUp2[:0], s.scratchLo2[:0])
	agree := equal(s.scratchUp[:effK+1], s.scratchUp2) && equal(s.scratchLo[:effK+1], s.scratchLo2)

	// Span tables: the window's timestamps, offsets up to effK−1.
	if s.spi != nil && n >= 2 {
		s.scratchData = s.orderedLocked(s.scratchData[:0], s.times)
		off := effK - 1
		if err := kernel.ExtractInto(s.scratchData, off, kernel.Options{Workers: 1}, s.scratchUp, s.scratchLo); err != nil {
			return err
		}
		s.scratchUp2, s.scratchLo2 = s.spi.AppendCurves(s.scratchUp2[:0], s.scratchLo2[:0])
		agree = agree && equal(s.scratchUp[:off+1], s.scratchUp2) && equal(s.scratchLo[:off+1], s.scratchLo2)
	}

	if !agree {
		s.drift++
		s.rebuildLocked()
		return nil
	}
	if s.prefixLast >= rebaseAt {
		// The window's demand sum is the new prefixLast; differences are
		// invariant, so every maintained value survives unchanged.
		windowSum := sum
		s.pre.Rebase(s.prefixLast - windowSum)
		s.prefixLast = windowSum
	}
	return nil
}

// rebuildLocked reconstructs the incremental state from the retained raw
// samples — the recovery path should the anchor ever disagree.
func (s *Stream) rebuildLocked() {
	n := s.inWindowLocked()
	pre, _ := NewInc(s.maxK, s.window+1)
	pre.Push(0)
	var spi *Inc
	if s.maxK >= 2 {
		spi, _ = NewInc(s.maxK-1, s.window)
	}
	start := s.total - int64(n)
	var sum int64
	for i := int64(0); i < int64(n); i++ {
		slot := (start + i) % int64(s.window)
		sum += s.demands[slot]
		pre.Push(sum)
		if spi != nil {
			spi.Push(s.times[slot])
		}
	}
	s.pre, s.spi, s.prefixLast = pre, spi, sum
}

func grow(b []int64, n int) []int64 {
	if cap(b) < n {
		return make([]int64, n)
	}
	return b[:n]
}

func equal(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Workload materializes the current sliding-window characterization
// (γᵘ, γˡ) on k = 0..min(MaxK, samples in window).
func (s *Stream) Workload() (core.Workload, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.workloadLocked()
}

func (s *Stream) workloadLocked() (core.Workload, error) {
	if s.total == 0 {
		return core.Workload{}, ErrNoSamples
	}
	upVals, loVals := s.pre.AppendCurves(nil, nil)
	up, err := curve.NewFinite(upVals)
	if err != nil {
		return core.Workload{}, err
	}
	lo, err := curve.NewFinite(loVals)
	if err != nil {
		return core.Workload{}, err
	}
	return core.Workload{Upper: up, Lower: lo}, nil
}

// Spans materializes the current span tables d(k) (minimal, behind ᾱ) and
// D(k) (maximal, behind ᾱˡ) for k = 1..min(MaxK, samples in window).
func (s *Stream) Spans() (arrival.Spans, arrival.MaxSpans, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spansLocked()
}

func (s *Stream) spansLocked() (arrival.Spans, arrival.MaxSpans, error) {
	if s.total == 0 {
		return nil, nil, ErrNoSamples
	}
	effK := s.effKLocked()
	dmin := make([]int64, effK)
	dmax := make([]int64, effK)
	for k := 2; k <= effK; k++ {
		lo, err := s.spi.LoAt(k - 1)
		if err != nil {
			return nil, nil, err
		}
		up, err := s.spi.UpAt(k - 1)
		if err != nil {
			return nil, nil, err
		}
		dmin[k-1], dmax[k-1] = lo, up
	}
	mins, err := arrival.FromValues(dmin)
	if err != nil {
		return nil, nil, err
	}
	maxs, err := arrival.MaxSpansFromValues(dmax)
	if err != nil {
		return nil, nil, err
	}
	return mins, maxs, nil
}

// Snapshot is a consistent point-in-time view of a stream: curves and span
// tables taken under one lock acquisition, tagged with the stream version
// they were taken at.
type Snapshot struct {
	Version  int64
	Total    int64
	InWindow int
	Workload core.Workload
	Spans    arrival.Spans
	MaxSpans arrival.MaxSpans
}

// Snapshot captures curves and spans atomically.
func (s *Stream) Snapshot() (Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

// SnapshotWithin captures a snapshot like Snapshot, but gives up with
// ErrBusy if the stream lock cannot be acquired within d: it polls
// TryLock with a short growing sleep instead of queueing on the mutex, so
// a request that is already near its deadline never joins a convoy behind
// a long-held lock. d ≤ 0 means a single TryLock attempt.
func (s *Stream) SnapshotWithin(d time.Duration) (Snapshot, error) {
	if !s.lockWithin(d) {
		return Snapshot{}, ErrBusy
	}
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

// lockWithin tries to acquire mu for at most d, backing off from 50µs to
// 2ms between attempts. Reports whether the lock was acquired.
func (s *Stream) lockWithin(d time.Duration) bool {
	if s.mu.TryLock() {
		return true
	}
	if d <= 0 {
		return false
	}
	deadline := time.Now().Add(d)
	pause := 50 * time.Microsecond
	for {
		if rem := time.Until(deadline); rem <= 0 {
			return false
		} else if pause > rem {
			pause = rem
		}
		time.Sleep(pause)
		if s.mu.TryLock() {
			return true
		}
		if pause < 2*time.Millisecond {
			pause *= 2
		}
	}
}

// HoldLock acquires the stream lock and holds it for d before releasing.
// It is a fault-injection aid for resilience tests and the wcmd
// -inject-fault hook: it manufactures the lock contention a monster batch
// or a stalled ingest would cause, so degraded-read and deadline paths
// can be exercised deterministically. Never use it on a production path.
func (s *Stream) HoldLock(d time.Duration) {
	s.mu.Lock()
	time.Sleep(d)
	s.mu.Unlock()
}

func (s *Stream) snapshotLocked() (Snapshot, error) {
	w, err := s.workloadLocked()
	if err != nil {
		return Snapshot{}, err
	}
	spans, maxs, err := s.spansLocked()
	if err != nil {
		return Snapshot{}, err
	}
	return Snapshot{
		Version:  s.version.Load(),
		Total:    s.total,
		InWindow: s.inWindowLocked(),
		Workload: w,
		Spans:    spans,
		MaxSpans: maxs,
	}, nil
}

// MinFrequency evaluates eq. (9) and eq. (10) against the snapshot: the
// minimum processor frequency avoiding overflow of a FIFO holding b events,
// by workload curve and by single-value WCET. The snapshot must hold at
// least 2 samples. Pure: callers may share one snapshot across queries.
func (sn *Snapshot) MinFrequency(b int) (netcalc.FrequencyComparison, error) {
	if sn.Spans.MaxK() < 2 {
		return netcalc.FrequencyComparison{}, ErrNoSpans
	}
	return netcalc.CompareFrequencies(sn.Spans, sn.Workload.Upper, b)
}

// CheckService evaluates eq. (8) against the snapshot: does a processor of
// freqHz (optionally a rate-latency server with latencyNs) keep a FIFO of b
// events from overflowing on this stream? Pure, like Snapshot.MinFrequency.
func (sn *Snapshot) CheckService(freqHz float64, latencyNs int64, b int) (bool, error) {
	if sn.Spans.MaxK() < 2 {
		return false, ErrNoSpans
	}
	var beta pwl.Curve
	var err error
	if latencyNs > 0 {
		beta, err = service.RateLatency(freqHz, latencyNs)
	} else {
		beta, err = service.Full(freqHz)
	}
	if err != nil {
		return false, err
	}
	return netcalc.CheckServiceConstraint(sn.Spans, beta, sn.Workload.Upper, b)
}

// MinFrequency evaluates eq. (9) and eq. (10) against the CURRENT window.
// At least 2 samples must be in the window.
func (s *Stream) MinFrequency(b int) (netcalc.FrequencyComparison, error) {
	snap, err := s.Snapshot()
	if err != nil {
		return netcalc.FrequencyComparison{}, err
	}
	return snap.MinFrequency(b)
}

// CheckService evaluates eq. (8) against the current window.
func (s *Stream) CheckService(freqHz float64, latencyNs int64, b int) (bool, error) {
	snap, err := s.Snapshot()
	if err != nil {
		return false, err
	}
	return snap.CheckService(freqHz, latencyNs, b)
}

// Stats is the stream's observability surface.
type Stats struct {
	Version        int64           // mutation counter at capture time
	Total          int64           // samples ever ingested
	InWindow       int             // samples currently characterized
	Window         int             // configured sliding window
	MaxK           int             // configured curve domain
	LastTimestamp  int64           // largest timestamp ingested
	Reextractions  int64           // anchor re-extractions run
	Drift          int64           // anchor disagreements (expect 0)
	ContractSet    bool            // a monitor is installed
	Violations     int64           // contract violations observed
	FirstViolation *core.Violation // earliest contract violation, if any
}

// Stats returns a consistent snapshot of the stream's counters.
func (s *Stream) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

func (s *Stream) statsLocked() Stats {
	return Stats{
		Version:        s.version.Load(),
		Total:          s.total,
		InWindow:       s.inWindowLocked(),
		Window:         s.window,
		MaxK:           s.maxK,
		LastTimestamp:  s.lastT,
		Reextractions:  s.reextractions,
		Drift:          s.drift,
		ContractSet:    s.monitor != nil,
		Violations:     s.violations,
		FirstViolation: s.firstViol,
	}
}

// StatsWithin reports stats like Stats, but gives up with ErrBusy if the
// stream lock cannot be acquired within d (see SnapshotWithin for the
// acquisition strategy). d ≤ 0 means a single TryLock attempt.
func (s *Stream) StatsWithin(d time.Duration) (Stats, error) {
	if !s.lockWithin(d) {
		return Stats{}, ErrBusy
	}
	defer s.mu.Unlock()
	return s.statsLocked(), nil
}

// Reextract forces an anchor re-extraction now (normally they run every
// Config.ReextractEvery samples) and reports the cumulative drift count.
func (s *Stream) Reextract() (drift int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.total == 0 {
		return 0, nil
	}
	defer s.bumpLocked() // counters (and possibly state) change
	if err := s.reextractLocked(); err != nil {
		return 0, err
	}
	return s.drift, nil
}

// DemandTrace returns the retained window's demands in ingest order — the
// batch the anchor re-extraction characterizes.
func (s *Stream) DemandTrace() events.DemandTrace {
	s.mu.Lock()
	defer s.mu.Unlock()
	return events.DemandTrace(s.orderedLocked(nil, s.demands))
}
