package stream

// Differential tests: the incremental sliding-window state must be
// BIT-IDENTICAL to a full batch re-extraction (internal/kernel) of the
// current window contents — after every batch, for randomized demands,
// timestamps (including simultaneous events), window sizes, curve domains,
// batch splits and re-extraction policies.

import (
	"math/rand"
	"testing"

	"wcm/internal/kernel"
)

// batchCurves extracts ground truth for the last min(len, window) samples.
func batchCurves(t *testing.T, ts, d []int64, window, maxK int) (up, lo, dmin, dmax []int64) {
	t.Helper()
	n := len(d)
	if n > window {
		ts, d = ts[n-window:], d[n-window:]
		n = window
	}
	effK := maxK
	if effK > n {
		effK = n
	}
	prefix := make([]int64, n+1)
	for i, v := range d {
		prefix[i+1] = prefix[i] + v
	}
	up, lo, err := kernel.Extract(prefix, effK, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dmax, dmin, err = kernel.Extract(ts, effK-1, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return up, lo, dmin, dmax
}

func checkAgainstBatch(t *testing.T, s *Stream, ts, d []int64, window, maxK int) {
	t.Helper()
	wantUp, wantLo, wantDmin, wantDmax := batchCurves(t, ts, d, window, maxK)
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	effK := len(wantUp) - 1
	if snap.Workload.Upper.MaxK() != effK {
		t.Fatalf("workload domain %d, want %d (n=%d)", snap.Workload.Upper.MaxK(), effK, len(d))
	}
	for k := 0; k <= effK; k++ {
		if got := snap.Workload.Upper.MustAt(k); got != wantUp[k] {
			t.Fatalf("γᵘ(%d) = %d, want %d (n=%d, window=%d)", k, got, wantUp[k], len(d), window)
		}
		if got := snap.Workload.Lower.MustAt(k); got != wantLo[k] {
			t.Fatalf("γˡ(%d) = %d, want %d (n=%d, window=%d)", k, got, wantLo[k], len(d), window)
		}
	}
	if snap.Spans.MaxK() != effK {
		t.Fatalf("span domain %d, want %d", snap.Spans.MaxK(), effK)
	}
	for k := 2; k <= effK; k++ {
		gd, _ := snap.Spans.At(k)
		gD, _ := snap.MaxSpans.At(k)
		if gd != wantDmin[k-1] || gD != wantDmax[k-1] {
			t.Fatalf("spans(%d) = (%d, %d), want (%d, %d)", k, gd, gD, wantDmin[k-1], wantDmax[k-1])
		}
	}
}

func TestDifferentialIncrementalVsKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	for trial := 0; trial < 40; trial++ {
		window := 2 + rng.Intn(50)
		maxK := 1 + rng.Intn(window)
		reevery := []int{-1, 0, 1 + rng.Intn(2*window)}[rng.Intn(3)]
		total := 1 + rng.Intn(300)

		s, err := New(Config{Window: window, MaxK: maxK, ReextractEvery: reevery})
		if err != nil {
			t.Fatal(err)
		}

		ts := make([]int64, total)
		d := make([]int64, total)
		var now int64
		for i := range ts {
			// gap 0 keeps simultaneous events in play (d(k) = 0 paths).
			now += int64(rng.Intn(50))
			ts[i] = now
			d[i] = int64(rng.Intn(1000))
		}

		for i := 0; i < total; {
			b := 1 + rng.Intn(17)
			if i+b > total {
				b = total - i
			}
			if _, err := s.Ingest(ts[i:i+b], d[i:i+b]); err != nil {
				t.Fatal(err)
			}
			i += b
			checkAgainstBatch(t, s, ts[:i], d[:i], window, maxK)
		}
		if st := s.Stats(); st.Drift != 0 {
			t.Fatalf("trial %d: anchor drift %d (re-extractions %d)", trial, st.Drift, st.Reextractions)
		}
	}
}

// TestDifferentialForcedAnchors interleaves explicit Reextract calls with
// ingestion: the anchor must never disagree, whatever its cadence.
func TestDifferentialForcedAnchors(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s, err := New(Config{Window: 16, MaxK: 8, ReextractEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	var ts, d []int64
	var now int64
	for i := 0; i < 200; i++ {
		now += int64(rng.Intn(10))
		ts = append(ts, now)
		d = append(d, int64(rng.Intn(100)))
		if _, err := s.Ingest(ts[len(ts)-1:], d[len(d)-1:]); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if drift, err := s.Reextract(); err != nil || drift != 0 {
				t.Fatalf("step %d: drift=%d, %v", i, drift, err)
			}
		}
		checkAgainstBatch(t, s, ts, d, 16, 8)
	}
}

func BenchmarkIngest(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const batch = 512
	ts := make([]int64, batch)
	d := make([]int64, batch)
	var now int64
	for i := range ts {
		now += int64(rng.Intn(1000))
		ts[i] = now
		d[i] = int64(rng.Intn(10_000))
	}
	step := ts[batch-1] + 1
	s, err := New(Config{Window: 4096, MaxK: 256})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Ingest(ts, d); err != nil {
			b.Fatal(err)
		}
		for j := range ts {
			ts[j] += step
		}
	}
	b.ReportMetric(float64(batch), "samples/op")
}
