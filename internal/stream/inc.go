// Package stream maintains workload and arrival curves INCREMENTALLY over a
// sliding window of demand samples — the long-running-service counterpart of
// the batch extraction in internal/kernel.
//
// The batch kernel answers "given this whole trace, what are the curves?" in
// O(K·m). A service ingesting samples forever cannot afford that per sample.
// This package keeps the same quantities — for every offset k ≤ K the
// extrema of the k-differences data[j+k] − data[j], restricted to windows
// that lie entirely inside the last W data points — continuously up to date:
//
//   - workload curves: data is the running demand prefix sum, so
//     γᵘ(k)/γˡ(k) are the max/min k-differences (Def. 1 of the paper,
//     restricted to the sliding window);
//   - span tables: data is the event timestamps, so d(k)/D(k) are the
//     min/max (k−1)-differences.
//
// The structure is deliberately NOT the classic monotone deque. Per offset
// it stores only the current extremum and the (latest) window index
// achieving it — 4 int64 per offset, contiguous in memory. A batch of B new
// samples advances each offset with one branch-predictable linear scan over
// the B new windows; only when an offset's recorded extremal window falls
// out of the sliding window does that offset rescan its live range. The
// extremal position of non-adversarial data is uniform over the window, so
// a rescan costs O(W) with probability B/W per offset: expected amortized
// O(maxOff) per sample, the same bound as the deques — but the scans are
// sequential ring reads with rarely-taken branches (~10× cheaper per
// (sample, offset) pair than deque pushes, which chase ~2·maxOff scattered
// cache lines per sample and mispredict on every pop loop). Worst case
// (data crafted so an extremum expires every batch) degrades to O(maxOff·W)
// per batch — the cost of one batch kernel run, which is the natural
// ceiling anyway. Memory is O(W + maxOff), independent of data.
//
// Results are BIT-IDENTICAL to kernel.Extract over the current window
// contents: both compute exact int64 differences of the same values (the
// prefix-sum base cancels in every difference). Stream re-runs the batch
// kernel periodically as a correctness anchor and counts any disagreement in
// a drift counter (see Stream).
package stream

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadConfig is wrapped by every configuration-validation error of the
// package.
var ErrBadConfig = errors.New("stream: invalid configuration")

// Inc maintains, for every offset k = 1..maxOff, the extrema of the
// k-differences data[j+k] − data[j] over all windows contained in the last
// `window` pushed data points. It is the incremental counterpart of
// kernel.Extract; Push costs expected amortized O(maxOff).
type Inc struct {
	maxOff int
	window int     // max data points retained
	ring   []int64 // last ≤ window data points, ring[i % window]
	total  int64   // data points ever pushed

	// Per-offset extrema over the live windows, k−1 indexed. The idx
	// arrays hold the LATEST window start achieving the extremum (ties
	// break to the freshest index, maximizing its lifetime); −1 marks an
	// offset that has never been scanned.
	maxVal []int64
	maxIdx []int64
	minVal []int64
	minIdx []int64
}

// NewInc builds an incremental extractor for offsets 1..maxOff over a
// sliding window of `window` data points. Every offset must always have at
// least one live window, so 1 ≤ maxOff ≤ window−1.
func NewInc(maxOff, window int) (*Inc, error) {
	if maxOff < 1 || window < maxOff+1 {
		return nil, fmt.Errorf("%w: maxOff=%d, window=%d (need 1 ≤ maxOff ≤ window−1)",
			ErrBadConfig, maxOff, window)
	}
	x := &Inc{
		maxOff: maxOff,
		window: window,
		ring:   make([]int64, window),
		maxVal: make([]int64, maxOff),
		maxIdx: make([]int64, maxOff),
		minVal: make([]int64, maxOff),
		minIdx: make([]int64, maxOff),
	}
	for i := 0; i < maxOff; i++ {
		x.maxIdx[i] = -1
		x.minIdx[i] = -1
	}
	return x, nil
}

// Total returns the number of data points ever pushed.
func (x *Inc) Total() int64 { return x.total }

// Retained returns the number of data points currently in the window.
func (x *Inc) Retained() int {
	if x.total < int64(x.window) {
		return int(x.total)
	}
	return x.window
}

// EffOff returns the largest offset with at least one live window:
// min(maxOff, Retained()−1).
func (x *Inc) EffOff() int {
	e := x.Retained() - 1
	if e > x.maxOff {
		e = x.maxOff
	}
	return e
}

// Push appends one data point. Equivalent to PushBatch of a single value.
func (x *Inc) Push(v int64) {
	var one [1]int64
	one[0] = v
	x.pushChunk(one[:])
}

// PushBatch appends every value of vs in ingest order — the service ingest
// fast path. The final state is identical to calling Push per value, but
// each offset's extremum is advanced by ONE linear scan over the batch's
// new windows, so the per-offset state (4 int64) stays in registers while a
// whole chunk streams through it.
func (x *Inc) PushBatch(vs []int64) {
	// A chunk is capped at window−maxOff points: the ring slots it
	// overwrites then belong only to data points no live window still
	// references, so every difference a scan needs is available.
	maxChunk := x.window - x.maxOff
	for len(vs) > maxChunk {
		x.pushChunk(vs[:maxChunk])
		vs = vs[maxChunk:]
	}
	if len(vs) > 0 {
		x.pushChunk(vs)
	}
}

func (x *Inc) pushChunk(vs []int64) {
	w := int64(x.window)
	start := x.total
	for i, v := range vs {
		x.ring[(start+int64(i))%w] = v
	}
	x.total += int64(len(vs))
	low := x.total - w // oldest live window start (clamped below)
	if low < 0 {
		low = 0
	}
	kEff := x.total - 1
	if kEff > int64(x.maxOff) {
		kEff = int64(x.maxOff)
	}
	for k := int64(1); k <= kEff; k++ {
		jhi := x.total - k // windows are [j, j+k], j < jhi
		mx, mxj := x.maxVal[k-1], x.maxIdx[k-1]
		mn, mnj := x.minVal[k-1], x.minIdx[k-1]
		a := start - k // first NEW window (ends inside this chunk)
		if a < 0 {
			a = 0
		}
		if mxj < low || mnj < low {
			// A recorded extremal window expired (or the offset just
			// activated): rescan the whole live range. Rescanning windows
			// the fresh extremum already covers is idempotent, so one
			// fused scan serves both extrema.
			a = low
			mx, mxj = math.MinInt64, -1
			mn, mnj = math.MaxInt64, -1
		}
		jj := a % w
		kk := (a + k) % w
		ring := x.ring
		for j := a; j < jhi; j++ {
			d := ring[kk] - ring[jj]
			if d >= mx {
				mx, mxj = d, j
			}
			if d <= mn {
				mn, mnj = d, j
			}
			if jj++; jj == w {
				jj = 0
			}
			if kk++; kk == w {
				kk = 0
			}
		}
		x.maxVal[k-1], x.maxIdx[k-1] = mx, mxj
		x.minVal[k-1], x.minIdx[k-1] = mn, mnj
	}
}

// UpAt returns the maximum k-difference over the live windows. k must be in
// 1..EffOff().
func (x *Inc) UpAt(k int) (int64, error) {
	if k < 1 || k > x.EffOff() {
		return 0, fmt.Errorf("%w: offset k=%d, effective max %d", ErrBadConfig, k, x.EffOff())
	}
	return x.maxVal[k-1], nil
}

// LoAt returns the minimum k-difference over the live windows. k must be in
// 1..EffOff().
func (x *Inc) LoAt(k int) (int64, error) {
	if k < 1 || k > x.EffOff() {
		return 0, fmt.Errorf("%w: offset k=%d, effective max %d", ErrBadConfig, k, x.EffOff())
	}
	return x.minVal[k-1], nil
}

// AppendCurves appends the current extrema for offsets 0..EffOff() to up and
// lo (index 0 is 0 by construction, matching kernel.Extract) and returns the
// extended slices. Pass nil slices to allocate, or recycle buffers for
// zero-allocation snapshots.
func (x *Inc) AppendCurves(up, lo []int64) (outUp, outLo []int64) {
	eff := x.EffOff()
	up = append(up, 0)
	lo = append(lo, 0)
	up = append(up, x.maxVal[:eff]...)
	lo = append(lo, x.minVal[:eff]...)
	return up, lo
}

// Rebase subtracts delta from every retained data point. All maintained
// k-differences are invariant under a uniform shift, so only the ring
// changes; the caller must shift every subsequently pushed value by the same
// delta. Stream uses this to keep running prefix sums far from int64
// overflow on effectively endless streams.
func (x *Inc) Rebase(delta int64) {
	for i := range x.ring {
		x.ring[i] -= delta
	}
}
