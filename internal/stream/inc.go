// Package stream maintains workload and arrival curves INCREMENTALLY over a
// sliding window of demand samples — the long-running-service counterpart of
// the batch extraction in internal/kernel.
//
// The batch kernel answers "given this whole trace, what are the curves?" in
// O(K·m). A service ingesting samples forever cannot afford that per sample.
// This package keeps the same quantities — for every offset k ≤ K the
// extrema of the k-differences data[j+k] − data[j], restricted to windows
// that lie entirely inside the last W data points — continuously up to date:
//
//   - workload curves: data is the running demand prefix sum, so
//     γᵘ(k)/γˡ(k) are the max/min k-differences (Def. 1 of the paper,
//     restricted to the sliding window);
//   - span tables: data is the event timestamps, so d(k)/D(k) are the
//     min/max (k−1)-differences.
//
// The structure is the classic monotone deque (sliding-window maximum),
// instantiated once per offset and per extremum. A push appends one new
// window per offset and expires old ones, so each of the 2K deques does
// amortized O(1) work: Push is amortized O(K) worst case, and far cheaper in
// practice because the inner pop loop usually terminates immediately.
// Memory is bounded by the window, not the stream: at most W−k+1 live
// entries per deque (O(K·W) worst case, typically O(K) — a deque only grows
// when the data is monotone in its unfavourable direction).
//
// Results are BIT-IDENTICAL to kernel.Extract over the current window
// contents: both compute exact int64 differences of the same values (the
// prefix-sum base cancels in every difference). Stream re-runs the batch
// kernel periodically as a correctness anchor and counts any disagreement in
// a drift counter (see Stream).
package stream

import (
	"errors"
	"fmt"
)

// ErrBadConfig is wrapped by every configuration-validation error of the
// package.
var ErrBadConfig = errors.New("stream: invalid configuration")

// mono is a monotone deque of (window-start index, k-difference value)
// pairs. The slices grow as needed; popFront advances head and compacts
// occasionally, so memory tracks the live entry count.
type mono struct {
	idx  []int64
	val  []int64
	head int
}

func (q *mono) len() int { return len(q.idx) - q.head }

func (q *mono) frontIdx() int64 { return q.idx[q.head] }

func (q *mono) frontVal() int64 { return q.val[q.head] }

func (q *mono) popFront() {
	q.head++
	// Reclaim the dead prefix once it dominates the backing array.
	if q.head > 32 && q.head > len(q.idx)/2 {
		n := copy(q.idx, q.idx[q.head:])
		copy(q.val, q.val[q.head:])
		q.idx = q.idx[:n]
		q.val = q.val[:n]
		q.head = 0
	}
}

// pushMax appends a window keeping the deque non-increasing in val: entries
// dominated by the newcomer (≤ val, older) can never be the maximum again.
func (q *mono) pushMax(idx, val int64) {
	for len(q.idx) > q.head && q.val[len(q.val)-1] <= val {
		q.idx = q.idx[:len(q.idx)-1]
		q.val = q.val[:len(q.val)-1]
	}
	q.idx = append(q.idx, idx)
	q.val = append(q.val, val)
}

// pushMin is pushMax mirrored for the minimum.
func (q *mono) pushMin(idx, val int64) {
	for len(q.idx) > q.head && q.val[len(q.val)-1] >= val {
		q.idx = q.idx[:len(q.idx)-1]
		q.val = q.val[:len(q.val)-1]
	}
	q.idx = append(q.idx, idx)
	q.val = append(q.val, val)
}

// evict drops windows whose start index fell off the sliding window.
func (q *mono) evict(low int64) {
	for q.len() > 0 && q.frontIdx() < low {
		q.popFront()
	}
}

// Inc maintains, for every offset k = 1..maxOff, the extrema of the
// k-differences data[j+k] − data[j] over all windows contained in the last
// `window` pushed data points. It is the incremental counterpart of
// kernel.Extract; Push costs amortized O(maxOff).
type Inc struct {
	maxOff int
	window int     // max data points retained
	ring   []int64 // last ≤ window data points, ring[i % window]
	total  int64   // data points ever pushed
	maxQ   []mono  // maxQ[k-1]: max k-differences
	minQ   []mono  // minQ[k-1]: min k-differences
}

// NewInc builds an incremental extractor for offsets 1..maxOff over a
// sliding window of `window` data points. Every offset must always have at
// least one live window, so 1 ≤ maxOff ≤ window−1.
func NewInc(maxOff, window int) (*Inc, error) {
	if maxOff < 1 || window < maxOff+1 {
		return nil, fmt.Errorf("%w: maxOff=%d, window=%d (need 1 ≤ maxOff ≤ window−1)",
			ErrBadConfig, maxOff, window)
	}
	return &Inc{
		maxOff: maxOff,
		window: window,
		ring:   make([]int64, window),
		maxQ:   make([]mono, maxOff),
		minQ:   make([]mono, maxOff),
	}, nil
}

// Total returns the number of data points ever pushed.
func (x *Inc) Total() int64 { return x.total }

// Retained returns the number of data points currently in the window.
func (x *Inc) Retained() int {
	if x.total < int64(x.window) {
		return int(x.total)
	}
	return x.window
}

// EffOff returns the largest offset with at least one live window:
// min(maxOff, Retained()−1).
func (x *Inc) EffOff() int {
	e := x.Retained() - 1
	if e > x.maxOff {
		e = x.maxOff
	}
	return e
}

// Push appends one data point: one new window per offset enters, expired
// windows leave. Amortized O(maxOff).
func (x *Inc) Push(v int64) {
	i := x.total // absolute index of the new point
	x.ring[i%int64(x.window)] = v
	x.total++
	low := x.total - int64(x.window) // oldest retained absolute index
	kMax := x.maxOff
	if i < int64(kMax) {
		kMax = int(i)
	}
	for k := 1; k <= kMax; k++ {
		// The new window starts at j = i−k; maxOff ≤ window−1 guarantees
		// j ≥ low, so it is always live.
		j := i - int64(k)
		d := v - x.ring[j%int64(x.window)]
		x.maxQ[k-1].pushMax(j, d)
		x.minQ[k-1].pushMin(j, d)
	}
	if low > 0 {
		for k := range x.maxQ {
			x.maxQ[k].evict(low)
			x.minQ[k].evict(low)
		}
	}
}

// UpAt returns the maximum k-difference over the live windows. k must be in
// 1..EffOff().
func (x *Inc) UpAt(k int) (int64, error) {
	if k < 1 || k > x.EffOff() {
		return 0, fmt.Errorf("%w: offset k=%d, effective max %d", ErrBadConfig, k, x.EffOff())
	}
	return x.maxQ[k-1].frontVal(), nil
}

// LoAt returns the minimum k-difference over the live windows. k must be in
// 1..EffOff().
func (x *Inc) LoAt(k int) (int64, error) {
	if k < 1 || k > x.EffOff() {
		return 0, fmt.Errorf("%w: offset k=%d, effective max %d", ErrBadConfig, k, x.EffOff())
	}
	return x.minQ[k-1].frontVal(), nil
}

// AppendCurves appends the current extrema for offsets 0..EffOff() to up and
// lo (index 0 is 0 by construction, matching kernel.Extract) and returns the
// extended slices. Pass nil slices to allocate, or recycle buffers for
// zero-allocation snapshots.
func (x *Inc) AppendCurves(up, lo []int64) (outUp, outLo []int64) {
	eff := x.EffOff()
	up = append(up, 0)
	lo = append(lo, 0)
	for k := 1; k <= eff; k++ {
		up = append(up, x.maxQ[k-1].frontVal())
		lo = append(lo, x.minQ[k-1].frontVal())
	}
	return up, lo
}

// Rebase subtracts delta from every retained data point. All maintained
// k-differences are invariant under a uniform shift, so only the ring
// changes; the caller must shift every subsequently pushed value by the same
// delta. Stream uses this to keep running prefix sums far from int64
// overflow on effectively endless streams.
func (x *Inc) Rebase(delta int64) {
	for i := range x.ring {
		x.ring[i] -= delta
	}
}
