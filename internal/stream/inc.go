// Package stream maintains workload and arrival curves INCREMENTALLY over a
// sliding window of demand samples — the long-running-service counterpart of
// the batch extraction in internal/kernel.
//
// The batch kernel answers "given this whole trace, what are the curves?" in
// O(K·m). A service ingesting samples forever cannot afford that per sample.
// This package keeps the same quantities — for every offset k ≤ K the
// extrema of the k-differences data[j+k] − data[j], restricted to windows
// that lie entirely inside the last W data points — continuously up to date:
//
//   - workload curves: data is the running demand prefix sum, so
//     γᵘ(k)/γˡ(k) are the max/min k-differences (Def. 1 of the paper,
//     restricted to the sliding window);
//   - span tables: data is the event timestamps, so d(k)/D(k) are the
//     min/max (k−1)-differences.
//
// The structure is deliberately NOT the classic monotone deque. Per offset
// it stores only the current extremum and the (latest) window index
// achieving it — 4 int64 per offset, contiguous in memory. A batch of B new
// samples advances each offset with one branch-predictable linear scan over
// the B new windows; only when an offset's recorded extremal window falls
// out of the sliding window does that offset rescan its live range. The
// extremal position of non-adversarial data is uniform over the window, so
// a rescan costs O(W) with probability B/W per offset: expected amortized
// O(maxOff) per sample, the same bound as the deques — but the scans are
// sequential ring reads with rarely-taken branches (~10× cheaper per
// (sample, offset) pair than deque pushes, which chase ~2·maxOff scattered
// cache lines per sample and mispredict on every pop loop). Worst case
// (data crafted so an extremum expires every batch) degrades to O(maxOff·W)
// per batch — the cost of one batch kernel run, which is the natural
// ceiling anyway. Memory is O(W + maxOff), independent of data.
//
// Results are BIT-IDENTICAL to kernel.Extract over the current window
// contents: both compute exact int64 differences of the same values (the
// prefix-sum base cancels in every difference). Stream re-runs the batch
// kernel periodically as a correctness anchor and counts any disagreement in
// a drift counter (see Stream).
package stream

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadConfig is wrapped by every configuration-validation error of the
// package.
var ErrBadConfig = errors.New("stream: invalid configuration")

// Inc maintains, for every offset k = 1..maxOff, the extrema of the
// k-differences data[j+k] − data[j] over all windows contained in the last
// `window` pushed data points. It is the incremental counterpart of
// kernel.Extract; Push costs expected amortized O(maxOff).
type Inc struct {
	maxOff int
	window int     // max data points retained
	ring   []int64 // last ≤ window data points, ring[i % window]
	total  int64   // data points ever pushed

	// Per-offset extrema over the live windows, k−1 indexed. The idx
	// arrays hold the LATEST window start achieving the extremum (ties
	// break to the freshest index, maximizing its lifetime); −1 marks an
	// offset that has never been scanned.
	maxVal []int64
	maxIdx []int64
	minVal []int64
	minIdx []int64
}

// NewInc builds an incremental extractor for offsets 1..maxOff over a
// sliding window of `window` data points. Every offset must always have at
// least one live window, so 1 ≤ maxOff ≤ window−1.
func NewInc(maxOff, window int) (*Inc, error) {
	if maxOff < 1 || window < maxOff+1 {
		return nil, fmt.Errorf("%w: maxOff=%d, window=%d (need 1 ≤ maxOff ≤ window−1)",
			ErrBadConfig, maxOff, window)
	}
	x := &Inc{
		maxOff: maxOff,
		window: window,
		ring:   make([]int64, window),
		maxVal: make([]int64, maxOff),
		maxIdx: make([]int64, maxOff),
		minVal: make([]int64, maxOff),
		minIdx: make([]int64, maxOff),
	}
	for i := 0; i < maxOff; i++ {
		x.maxIdx[i] = -1
		x.minIdx[i] = -1
	}
	return x, nil
}

// Total returns the number of data points ever pushed.
func (x *Inc) Total() int64 { return x.total }

// Retained returns the number of data points currently in the window.
func (x *Inc) Retained() int {
	if x.total < int64(x.window) {
		return int(x.total)
	}
	return x.window
}

// EffOff returns the largest offset with at least one live window:
// min(maxOff, Retained()−1).
func (x *Inc) EffOff() int {
	e := x.Retained() - 1
	if e > x.maxOff {
		e = x.maxOff
	}
	return e
}

// Push appends one data point. Equivalent to PushBatch of a single value.
func (x *Inc) Push(v int64) {
	var one [1]int64
	one[0] = v
	x.pushChunk(one[:])
}

// PushBatch appends every value of vs in ingest order — the service ingest
// fast path. The final state is identical to calling Push per value, but
// each offset's extremum is advanced by ONE linear scan over the batch's
// new windows, so the per-offset state (4 int64) stays in registers while a
// whole chunk streams through it.
func (x *Inc) PushBatch(vs []int64) {
	// A chunk is capped at window−maxOff points: the ring slots it
	// overwrites then belong only to data points no live window still
	// references, so every difference a scan needs is available.
	maxChunk := x.window - x.maxOff
	for len(vs) > maxChunk {
		x.pushChunk(vs[:maxChunk])
		vs = vs[maxChunk:]
	}
	if len(vs) > 0 {
		x.pushChunk(vs)
	}
}

func (x *Inc) pushChunk(vs []int64) {
	w := int64(x.window)
	start := x.total
	for i, v := range vs {
		x.ring[(start+int64(i))%w] = v
	}
	x.total += int64(len(vs))
	low := x.total - w // oldest live window start (clamped below)
	if low < 0 {
		low = 0
	}
	kEff := x.total - 1
	if kEff > int64(x.maxOff) {
		kEff = int64(x.maxOff)
	}
	for k := int64(1); k <= kEff; k++ {
		jhi := x.total - k // windows are [j, j+k], j < jhi
		mx, mxj := x.maxVal[k-1], x.maxIdx[k-1]
		mn, mnj := x.minVal[k-1], x.minIdx[k-1]
		a := start - k // first NEW window (ends inside this chunk)
		if a < 0 {
			a = 0
		}
		if mxj < low || mnj < low {
			// A recorded extremal window expired (or the offset just
			// activated): rescan the whole live range. Rescanning windows
			// the fresh extremum already covers is idempotent, so one
			// fused scan serves both extrema.
			a = low
			mx, mxj = math.MinInt64, -1
			mn, mnj = math.MaxInt64, -1
		}
		mx, mxj, mn, mnj = scanRange(x.ring, a, jhi, k, w, mx, mxj, mn, mnj)
		x.maxVal[k-1], x.maxIdx[k-1] = mx, mxj
		x.minVal[k-1], x.minIdx[k-1] = mn, mnj
	}
}

// scanRange advances the running extrema (mx@mxj, mn@mnj) over the
// k-differences ring[(j+k)%w] − ring[j%w] for j in [a, jhi) and returns the
// updated state. It is the hot loop of the package — every (sample, offset)
// pair of an ingest passes through here — written for throughput but
// BIT-IDENTICAL to the naive scan (see TestScanRangeDifferential):
//
//   - the wrap-around modular walk is split into runs where both the j and
//     j+k columns are contiguous ring slices, so the per-element bounds
//     checks and wrap branches hoist out of the inner loop;
//   - each run is consumed in 8-wide blocks whose min/max fold into block
//     extrema first; a block whose max is strictly below mx AND whose min is
//     strictly above mn cannot change either extremum OR either index and is
//     skipped wholesale. Blocks that tie or beat fall back to the original
//     scalar `>=`/`<=` walk, preserving latest-index tie-breaking exactly —
//     the strictness of the skip test is what makes equality reach the
//     scalar path and refresh the index.
//
// On steady-state data the extrema advance rarely, so nearly every block
// takes the 8-comparison skip path with no index bookkeeping, and the loads
// are sequential with hoisted bounds — this is what buys the single-core
// throughput the 1→4 proc scaling figures are measured against.
func scanRange(ring []int64, a, jhi, k, w int64, mx, mxj, mn, mnj int64) (int64, int64, int64, int64) {
	jj := a % w
	kk := (a + k) % w
	for j := a; j < jhi; {
		// Longest run where neither column wraps.
		run := jhi - j
		if r := w - jj; r < run {
			run = r
		}
		if r := w - kk; r < run {
			run = r
		}
		lo := ring[jj : jj+run] // ring[j%w ...]
		hi := ring[kk : kk+run] // ring[(j+k)%w ...]
		var i int64
		for ; i+8 <= run; i += 8 {
			h := hi[i : i+8 : i+8]
			l := lo[i : i+8 : i+8]
			d0 := h[0] - l[0]
			d1 := h[1] - l[1]
			d2 := h[2] - l[2]
			d3 := h[3] - l[3]
			d4 := h[4] - l[4]
			d5 := h[5] - l[5]
			d6 := h[6] - l[6]
			d7 := h[7] - l[7]
			bmx := max(max(max(d0, d1), max(d2, d3)), max(max(d4, d5), max(d6, d7)))
			bmn := min(min(min(d0, d1), min(d2, d3)), min(min(d4, d5), min(d6, d7)))
			if bmx < mx && bmn > mn {
				continue // strictly inside (mn, mx): can't move values or indices
			}
			base := j + i
			if d0 >= mx {
				mx, mxj = d0, base
			}
			if d0 <= mn {
				mn, mnj = d0, base
			}
			if d1 >= mx {
				mx, mxj = d1, base+1
			}
			if d1 <= mn {
				mn, mnj = d1, base+1
			}
			if d2 >= mx {
				mx, mxj = d2, base+2
			}
			if d2 <= mn {
				mn, mnj = d2, base+2
			}
			if d3 >= mx {
				mx, mxj = d3, base+3
			}
			if d3 <= mn {
				mn, mnj = d3, base+3
			}
			if d4 >= mx {
				mx, mxj = d4, base+4
			}
			if d4 <= mn {
				mn, mnj = d4, base+4
			}
			if d5 >= mx {
				mx, mxj = d5, base+5
			}
			if d5 <= mn {
				mn, mnj = d5, base+5
			}
			if d6 >= mx {
				mx, mxj = d6, base+6
			}
			if d6 <= mn {
				mn, mnj = d6, base+6
			}
			if d7 >= mx {
				mx, mxj = d7, base+7
			}
			if d7 <= mn {
				mn, mnj = d7, base+7
			}
		}
		for ; i < run; i++ { // tail of the run, < 8 elements
			d := hi[i] - lo[i]
			if d >= mx {
				mx, mxj = d, j+i
			}
			if d <= mn {
				mn, mnj = d, j+i
			}
		}
		j += run
		if jj += run; jj == w {
			jj = 0
		}
		if kk += run; kk == w {
			kk = 0
		}
	}
	return mx, mxj, mn, mnj
}

// UpAt returns the maximum k-difference over the live windows. k must be in
// 1..EffOff().
func (x *Inc) UpAt(k int) (int64, error) {
	if k < 1 || k > x.EffOff() {
		return 0, fmt.Errorf("%w: offset k=%d, effective max %d", ErrBadConfig, k, x.EffOff())
	}
	return x.maxVal[k-1], nil
}

// LoAt returns the minimum k-difference over the live windows. k must be in
// 1..EffOff().
func (x *Inc) LoAt(k int) (int64, error) {
	if k < 1 || k > x.EffOff() {
		return 0, fmt.Errorf("%w: offset k=%d, effective max %d", ErrBadConfig, k, x.EffOff())
	}
	return x.minVal[k-1], nil
}

// AppendCurves appends the current extrema for offsets 0..EffOff() to up and
// lo (index 0 is 0 by construction, matching kernel.Extract) and returns the
// extended slices. Pass nil slices to allocate, or recycle buffers for
// zero-allocation snapshots.
func (x *Inc) AppendCurves(up, lo []int64) (outUp, outLo []int64) {
	eff := x.EffOff()
	up = append(up, 0)
	lo = append(lo, 0)
	up = append(up, x.maxVal[:eff]...)
	lo = append(lo, x.minVal[:eff]...)
	return up, lo
}

// Rebase subtracts delta from every retained data point. All maintained
// k-differences are invariant under a uniform shift, so only the ring
// changes; the caller must shift every subsequently pushed value by the same
// delta. Stream uses this to keep running prefix sums far from int64
// overflow on effectively endless streams.
func (x *Inc) Rebase(delta int64) {
	for i := range x.ring {
		x.ring[i] -= delta
	}
}
