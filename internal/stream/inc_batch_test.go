package stream

// PushBatch is the ingest fast path: chunked ring writes plus one linear
// scan per offset over the chunk's new windows (with full rescans whenever a
// recorded extremum expires). These tests pin it bit-for-bit to the
// one-value-at-a-time Push across chunk boundaries, ring wraparound and
// degenerate window/offset combinations.

import (
	"math/rand"
	"testing"
)

// incEqual compares the full observable state of two extractors: retained
// counts and every live extremum.
func incEqual(t *testing.T, got, want *Inc, ctx string) {
	t.Helper()
	if got.Total() != want.Total() || got.Retained() != want.Retained() || got.EffOff() != want.EffOff() {
		t.Fatalf("%s: totals (%d,%d,%d) vs (%d,%d,%d)", ctx,
			got.Total(), got.Retained(), got.EffOff(),
			want.Total(), want.Retained(), want.EffOff())
	}
	for k := 1; k <= want.EffOff(); k++ {
		gu, err1 := got.UpAt(k)
		wu, err2 := want.UpAt(k)
		gl, err3 := got.LoAt(k)
		wl, err4 := want.LoAt(k)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			t.Fatalf("%s: query errors at k=%d: %v %v %v %v", ctx, k, err1, err2, err3, err4)
		}
		if gu != wu || gl != wl {
			t.Fatalf("%s: k=%d: batch (%d,%d), sequential (%d,%d)", ctx, k, gu, gl, wu, wl)
		}
	}
}

func TestPushBatchMatchesPush(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	for trial := 0; trial < 60; trial++ {
		window := 2 + rng.Intn(40)
		maxOff := 1 + rng.Intn(window-1)
		total := 1 + rng.Intn(6*window) // several ring wraps

		batch, err := NewInc(maxOff, window)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := NewInc(maxOff, window)
		if err != nil {
			t.Fatal(err)
		}

		data := make([]int64, total)
		for i := range data {
			// Mix drifting runs (extrema survive) with jumps (extrema expire).
			if rng.Intn(3) == 0 {
				data[i] = rng.Int63n(1 << 30)
			} else if i > 0 {
				data[i] = data[i-1] + rng.Int63n(100) - 50
			}
		}

		for i := 0; i < total; {
			// Batch sizes deliberately straddle the window−maxOff chunk cap.
			b := 1 + rng.Intn(2*window)
			if i+b > total {
				b = total - i
			}
			batch.PushBatch(data[i : i+b])
			for _, v := range data[i : i+b] {
				seq.Push(v)
			}
			i += b
			incEqual(t, batch, seq, "mid-stream")
		}

		// AppendCurves must agree too (it reads every front at once).
		bu, bl := batch.AppendCurves(nil, nil)
		su, sl := seq.AppendCurves(nil, nil)
		if len(bu) != len(su) {
			t.Fatalf("curve lengths %d vs %d", len(bu), len(su))
		}
		for k := range bu {
			if bu[k] != su[k] || bl[k] != sl[k] {
				t.Fatalf("AppendCurves k=%d: (%d,%d) vs (%d,%d)", k, bu[k], bl[k], su[k], sl[k])
			}
		}
	}
}

// TestPushBatchSingleChunkCap exercises the degenerate maxOff = window−1
// configuration where every chunk is a single value.
func TestPushBatchSingleChunkCap(t *testing.T) {
	batch, err := NewInc(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewInc(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	data := []int64{5, 1, 4, 9, 2, 2, 7, 0, 3, 8}
	batch.PushBatch(data)
	for _, v := range data {
		seq.Push(v)
	}
	incEqual(t, batch, seq, "chunk-cap-1")
}
