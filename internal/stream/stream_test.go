package stream

import (
	"errors"
	"testing"

	"wcm/internal/arrival"
	"wcm/internal/core"
	"wcm/internal/events"
	"wcm/internal/netcalc"
	"wcm/internal/service"
)

func TestNewIncValidation(t *testing.T) {
	for _, tc := range []struct{ off, win int }{{0, 4}, {-1, 4}, {4, 4}, {1, 1}} {
		if _, err := NewInc(tc.off, tc.win); !errors.Is(err, ErrBadConfig) {
			t.Errorf("NewInc(%d, %d): want ErrBadConfig, got %v", tc.off, tc.win, err)
		}
	}
	if _, err := NewInc(1, 2); err != nil {
		t.Fatalf("NewInc(1, 2): %v", err)
	}
}

func TestIncSmallByHand(t *testing.T) {
	// data = [5, 1, 4, 9], window 3, offsets up to 2.
	x, err := NewInc(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{5, 1, 4, 9} {
		x.Push(v)
	}
	// Retained: [1, 4, 9]. Offset 1 diffs: 3, 5 → up 5, lo 3.
	// Offset 2 diffs: 9−1 = 8 → up = lo = 8.
	if up, _ := x.UpAt(1); up != 5 {
		t.Errorf("UpAt(1) = %d, want 5", up)
	}
	if lo, _ := x.LoAt(1); lo != 3 {
		t.Errorf("LoAt(1) = %d, want 3", lo)
	}
	if up, _ := x.UpAt(2); up != 8 {
		t.Errorf("UpAt(2) = %d, want 8", up)
	}
	if lo, _ := x.LoAt(2); lo != 8 {
		t.Errorf("LoAt(2) = %d, want 8", lo)
	}
	if _, err := x.UpAt(3); err == nil {
		t.Error("UpAt(3) beyond maxOff must fail")
	}
}

func TestStreamConfigValidation(t *testing.T) {
	if _, err := New(Config{Window: 1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("window=1: want ErrBadConfig, got %v", err)
	}
	if _, err := New(Config{MaxK: -1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("maxK=-1: want ErrBadConfig, got %v", err)
	}
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Window != DefaultWindow || st.MaxK != DefaultMaxK {
		t.Errorf("defaults: %+v", st)
	}
	// MaxK caps to Window.
	s2, err := New(Config{Window: 8, MaxK: 99})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Stats().MaxK != 8 {
		t.Errorf("maxK not capped: %+v", s2.Stats())
	}
}

func TestIngestValidationAllOrNothing(t *testing.T) {
	s, err := New(Config{Window: 8, MaxK: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(nil, nil); !errors.Is(err, ErrBadBatch) {
		t.Errorf("empty batch: got %v", err)
	}
	if _, err := s.Ingest([]int64{1, 2}, []int64{3}); !errors.Is(err, ErrBadBatch) {
		t.Errorf("length mismatch: got %v", err)
	}
	if _, err := s.Ingest([]int64{5, 4}, []int64{1, 1}); !errors.Is(err, ErrBadBatch) {
		t.Errorf("unsorted timestamps: got %v", err)
	}
	if _, err := s.Ingest([]int64{1, 2}, []int64{1, -1}); !errors.Is(err, ErrBadBatch) {
		t.Errorf("negative demand: got %v", err)
	}
	if s.Stats().Total != 0 {
		t.Fatalf("rejected batches must leave no state: %+v", s.Stats())
	}
	if _, err := s.Ingest([]int64{10}, []int64{7}); err != nil {
		t.Fatal(err)
	}
	// Timestamps must not go backwards ACROSS batches either.
	if _, err := s.Ingest([]int64{9}, []int64{7}); !errors.Is(err, ErrBadBatch) {
		t.Errorf("cross-batch time regression: got %v", err)
	}
}

func TestEmptyStreamQueries(t *testing.T) {
	s, err := New(Config{Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Workload(); !errors.Is(err, ErrNoSamples) {
		t.Errorf("Workload on empty: %v", err)
	}
	if _, _, err := s.Spans(); !errors.Is(err, ErrNoSamples) {
		t.Errorf("Spans on empty: %v", err)
	}
	if _, err := s.MinFrequency(1); !errors.Is(err, ErrNoSamples) {
		t.Errorf("MinFrequency on empty: %v", err)
	}
	if drift, err := s.Reextract(); err != nil || drift != 0 {
		t.Errorf("Reextract on empty: %d, %v", drift, err)
	}
}

func TestSingleSampleEdge(t *testing.T) {
	s, err := New(Config{Window: 8, MaxK: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest([]int64{100}, []int64{42}); err != nil {
		t.Fatal(err)
	}
	w, err := s.Workload()
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Upper.MustAt(1); got != 42 {
		t.Errorf("γᵘ(1) = %d, want 42", got)
	}
	spans, maxs, err := s.Spans()
	if err != nil {
		t.Fatal(err)
	}
	if spans.MaxK() != 1 || spans[0] != 0 || maxs[0] != 0 {
		t.Errorf("single-sample spans: %v %v", spans, maxs)
	}
	if _, err := s.MinFrequency(0); !errors.Is(err, ErrNoSpans) {
		t.Errorf("MinFrequency with 1 sample: %v", err)
	}
}

func TestMaxK1SpansOnly(t *testing.T) {
	s, err := New(Config{Window: 4, MaxK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest([]int64{0, 10, 20}, []int64{5, 6, 7}); err != nil {
		t.Fatal(err)
	}
	w, err := s.Workload()
	if err != nil {
		t.Fatal(err)
	}
	if w.Upper.MaxK() != 1 || w.Upper.MustAt(1) != 7 {
		t.Errorf("maxK=1 workload: %v", w.Upper)
	}
	spans, _, err := s.Spans()
	if err != nil || spans.MaxK() != 1 {
		t.Errorf("maxK=1 spans: %v %v", spans, err)
	}
}

// TestQueriesMatchBatchPath pins the service queries to the established
// batch pipeline: ingest a trace, then compare MinFrequency and
// CheckService against netcalc fed with kernel-extracted curves.
func TestQueriesMatchBatchPath(t *testing.T) {
	const n, maxK = 300, 48
	d, err := events.ModalDemands([]events.Mode{
		{Lo: 100, Hi: 900, MinRun: 2, MaxRun: 5},
		{Lo: 2000, Hi: 5000, MinRun: 1, MaxRun: 2},
	}, n, 11)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := events.Sporadic(0, 1_000, 5_000, n, 5)
	if err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{Window: n, MaxK: maxK})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(tt, d); err != nil {
		t.Fatal(err)
	}

	wantW, err := core.FromTrace(d, maxK)
	if err != nil {
		t.Fatal(err)
	}
	wantSpans, wantMax, err := arrival.ExtractSpans(tt, maxK)
	if err != nil {
		t.Fatal(err)
	}

	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= maxK; k++ {
		if snap.Workload.Upper.MustAt(k) != wantW.Upper.MustAt(k) ||
			snap.Workload.Lower.MustAt(k) != wantW.Lower.MustAt(k) {
			t.Fatalf("workload mismatch at k=%d", k)
		}
	}
	for k := 1; k <= maxK; k++ {
		ws, _ := wantSpans.At(k)
		gs, _ := snap.Spans.At(k)
		wm, _ := wantMax.At(k)
		gm, _ := snap.MaxSpans.At(k)
		if ws != gs || wm != gm {
			t.Fatalf("span mismatch at k=%d: d %d vs %d, D %d vs %d", k, gs, ws, gm, wm)
		}
	}

	const b = 3
	got, err := s.MinFrequency(b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := netcalc.CompareFrequencies(wantSpans, wantW.Upper, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("MinFrequency: got %+v want %+v", got, want)
	}

	// eq. 8 must pass at Fᵞmin (the definition of minimality) and the
	// service returns the same verdicts as direct netcalc calls.
	for _, hz := range []float64{want.Gamma.Hz, want.Gamma.Hz * 0.7} {
		beta, err := service.Full(hz)
		if err != nil {
			t.Fatal(err)
		}
		wantOK, err := netcalc.CheckServiceConstraint(wantSpans, beta, wantW.Upper, b)
		if err != nil {
			t.Fatal(err)
		}
		gotOK, err := s.CheckService(hz, 0, b)
		if err != nil {
			t.Fatal(err)
		}
		if gotOK != wantOK {
			t.Fatalf("CheckService(%g): got %v want %v", hz, gotOK, wantOK)
		}
	}
}

func TestContractMonitor(t *testing.T) {
	task := core.PollingTask{Period: 10, ThetaMin: 30, ThetaMax: 50, Ep: 9, Ec: 2}
	w, err := task.Workload(32)
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := events.PollingDemands(10, 30, 50, 9, 2, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	ts := make([]int64, len(healthy))
	for i := range ts {
		ts[i] = int64(i) * 1000
	}

	s, err := New(Config{Window: 256, MaxK: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetContract(w, 32); err != nil {
		t.Fatal(err)
	}
	res, err := s.Ingest(ts, healthy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil || res.Violations != 0 {
		t.Fatalf("healthy trace flagged: %+v", res)
	}

	// One activation at 3× the modeled WCET must trip the monitor.
	res, err = s.Ingest([]int64{int64(len(healthy)) * 1000}, []int64{3 * task.Ep})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil || !res.Violation.Upper {
		t.Fatalf("fault not flagged: %+v", res)
	}
	st := s.Stats()
	if !st.ContractSet || st.Violations == 0 || st.FirstViolation == nil {
		t.Fatalf("stats after violation: %+v", st)
	}
}

func TestRebase(t *testing.T) {
	old := rebaseAt
	rebaseAt = 1_000
	defer func() { rebaseAt = old }()

	s, err := New(Config{Window: 8, MaxK: 4, ReextractEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts, d := make([]int64, 64), make([]int64, 64)
	for i := range ts {
		ts[i] = int64(i) * 10
		d[i] = int64(100 + i%7)
	}
	if _, err := s.Ingest(ts, d); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	pl := s.prefixLast
	s.mu.Unlock()
	if pl >= 2_000 {
		t.Fatalf("prefix sum never rebased: %d", pl)
	}
	st := s.Stats()
	if st.Drift != 0 {
		t.Fatalf("rebase broke the anchor: drift=%d", st.Drift)
	}
	// Curves still match a fresh batch extraction of the window.
	w, err := s.Workload()
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.FromTrace(events.DemandTrace(d[64-8:]), 4)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 4; k++ {
		if w.Upper.MustAt(k) != want.Upper.MustAt(k) || w.Lower.MustAt(k) != want.Lower.MustAt(k) {
			t.Fatalf("post-rebase mismatch at k=%d", k)
		}
	}
}

func TestRebuildRecoversFromCorruption(t *testing.T) {
	s, err := New(Config{Window: 8, MaxK: 4, ReextractEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts, d := make([]int64, 20), make([]int64, 20)
	for i := range ts {
		ts[i] = int64(i) * 5
		d[i] = int64(10 * (i%3 + 1))
	}
	if _, err := s.Ingest(ts, d); err != nil {
		t.Fatal(err)
	}
	// Corrupt the incremental state behind the anchor's back.
	s.mu.Lock()
	s.pre.maxVal[0] += 999
	s.mu.Unlock()
	drift, err := s.Reextract()
	if err != nil {
		t.Fatal(err)
	}
	if drift != 1 {
		t.Fatalf("drift = %d, want 1", drift)
	}
	// The rebuild restored ground truth.
	w, err := s.Workload()
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.FromTrace(events.DemandTrace(d[12:]), 4)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 4; k++ {
		if w.Upper.MustAt(k) != want.Upper.MustAt(k) {
			t.Fatalf("rebuild mismatch at k=%d", k)
		}
	}
	// A subsequent anchor run agrees again.
	if drift, err := s.Reextract(); err != nil || drift != 1 {
		t.Fatalf("post-rebuild anchor: drift=%d, %v", drift, err)
	}
}

func TestDemandTraceReturnsWindow(t *testing.T) {
	s, err := New(Config{Window: 4, MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest([]int64{0, 1, 2, 3, 4, 5}, []int64{10, 20, 30, 40, 50, 60}); err != nil {
		t.Fatal(err)
	}
	got := s.DemandTrace()
	want := []int64{30, 40, 50, 60}
	if len(got) != len(want) {
		t.Fatalf("window trace %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("window trace %v, want %v", got, want)
		}
	}
}

// TestObserveClampsAndMatchesIngest pins the single-sample Observe hook:
// a sequence of observations with out-of-order timestamps must produce
// exactly the state Ingest would produce for the clamped (sorted-forward)
// sequence, negative demand is rejected without a state change, and the
// version bumps once per accepted observation.
func TestObserveClampsAndMatchesIngest(t *testing.T) {
	cfg := Config{Window: 16, MaxK: 8}
	obs, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ts := []int64{10, 30, 20, 25, 40, 40, 35}      // 20, 25, 35 lag and must clamp
	clamped := []int64{10, 30, 30, 30, 40, 40, 40} // what Ingest should see
	ds := []int64{5, 7, 6, 9, 5, 8, 7}
	for i := range ts {
		v0 := obs.Version()
		res, err := obs.Observe(ts[i], ds[i])
		if err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
		if res.Accepted != 1 || res.Total != int64(i+1) {
			t.Fatalf("observe %d: %+v", i, res)
		}
		if obs.Version() != v0+1 {
			t.Fatalf("observe %d: version %d → %d", i, v0, obs.Version())
		}
	}
	if _, err := ref.Ingest(clamped, ds); err != nil {
		t.Fatal(err)
	}

	so, err := obs.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sr, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	gu := so.Workload.Upper.Values()
	wu := sr.Workload.Upper.Values()
	for k := range wu {
		if gu[k] != wu[k] {
			t.Fatalf("γᵘ(%d): observe %d, ingest %d", k, gu[k], wu[k])
		}
	}
	for k := 2; k <= so.Spans.MaxK(); k++ {
		a, _ := so.Spans.At(k)
		b, _ := sr.Spans.At(k)
		if a != b {
			t.Fatalf("d(%d): observe %d, ingest %d", k, a, b)
		}
	}

	v0 := obs.Version()
	if _, err := obs.Observe(100, -1); !errors.Is(err, ErrBadBatch) {
		t.Fatalf("negative demand: %v", err)
	}
	if obs.Version() != v0 {
		t.Fatal("rejected observation bumped the version")
	}
	if obs.Stats().Total != int64(len(ts)) {
		t.Fatal("rejected observation changed state")
	}

	// An early timestamp after a rejection still clamps, not errors.
	if _, err := obs.Observe(0, 3); err != nil {
		t.Fatalf("clamped late observation: %v", err)
	}
	if got := obs.Stats().LastTimestamp; got != 40 {
		t.Fatalf("lastT = %d, want clamped 40", got)
	}
}

// TestObserveSteadyStateAllocs pins the Observe hot path at zero
// allocations once scratch capacity is warm — it runs on every completed
// request of the wcmd service.
func TestObserveSteadyStateAllocs(t *testing.T) {
	s, err := New(Config{Window: 64, MaxK: 16})
	if err != nil {
		t.Fatal(err)
	}
	var tick int64
	for i := 0; i < 200; i++ { // warm: fill window, cross one anchor
		tick += 3
		if _, err := s.Observe(tick, int64(i%11)); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(300, func() {
		tick += 3
		if _, err := s.Observe(tick, 7); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("Observe allocates %.2f/op, want 0", avg)
	}
}
