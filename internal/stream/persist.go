package stream

import (
	"encoding/binary"
	"fmt"
)

// This file is the stream's durability surface: State captures everything a
// Stream needs to come back after a process death, ExportState/Restore move
// between the live and portable forms, and AppendBinary/DecodeState are the
// on-disk codec used by internal/wal's snapshot files.
//
// What is NOT persisted, deliberately:
//
//   - The contract monitor (SetContract) and its violation history. A
//     monitor's internal deque positions reference samples that may have
//     left the window, and a half-restored monitor would yield verdicts
//     that neither a fresh nor the original stream would have produced.
//     Contracts are control-plane configuration; operators re-apply them
//     after a restart.
//   - The Inc extrema arrays. The retained rings fully determine them:
//     Restore rebuilds the per-offset extrema by replaying the window's
//     prefix sums, exactly like rebuildLocked does after anchor drift, so
//     the restored curves are value-identical without trusting redundant
//     (and corruptible) extrema bytes.
//   - The absolute prefix-sum base. Curves are differences of prefix sums,
//     which are shift-invariant; Restore rebases at 0 like a post-rebase
//     stream would.

// stateMagic versions the binary State encoding; bump it when the layout
// changes so a stale snapshot is rejected instead of misparsed.
const stateMagic = "WCMSTRM1"

// State is a portable snapshot of one Stream's durable fields, sufficient
// to Restore a stream whose every subsequent answer is value-identical to
// the original's. Produced by ExportState under the stream lock, so it is
// always internally consistent.
type State struct {
	// Config the stream ran with, resolved (defaults applied). Restore
	// refuses a State whose config disagrees with the caller's: silently
	// reinterpreting a ring recorded at one window length under another
	// would corrupt every curve.
	Window         int
	MaxK           int
	ReextractEvery int

	Version int64 // mutation counter at capture
	Total   int64 // samples ever ingested
	LastT   int64 // largest timestamp seen

	SinceAnchor   int   // samples since the last re-extraction
	Reextractions int64 // anchor runs performed
	Drift         int64 // anchor disagreements

	// The retained window in ingest order (oldest first), both columns the
	// same length n = min(Total, Window).
	Demands []int64
	Times   []int64
}

// ExportState captures the stream's durable state under one lock
// acquisition. The returned slices are fresh copies — the caller may hold
// them across later ingests.
func (s *Stream) ExportState() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return State{
		Window:         s.window,
		MaxK:           s.maxK,
		ReextractEvery: s.reint,
		Version:        s.version.Load(),
		Total:          s.total,
		LastT:          s.lastT,
		SinceAnchor:    s.sinceAnchor,
		Reextractions:  s.reextractions,
		Drift:          s.drift,
		Demands:        s.orderedLocked(nil, s.demands),
		Times:          s.orderedLocked(nil, s.times),
	}
}

// Restore builds a stream from a previously exported State. cfg must
// resolve to the same window/maxK/reextract parameters the State was
// captured under. The restored stream's curves, span tables, and query
// answers are value-identical to the original's at capture time, and it
// evolves identically under further ingest (anchor positions included —
// SinceAnchor survives). The contract monitor does not survive (see the
// file comment); Version does, so version-tagged WAL records can be
// replayed exactly once on top.
func Restore(cfg Config, st State) (*Stream, error) {
	r := cfg.Resolved()
	if r.Window != st.Window || r.MaxK != st.MaxK || r.ReextractEvery != st.ReextractEvery {
		return nil, fmt.Errorf("%w: config window=%d maxK=%d reextract=%d, state window=%d maxK=%d reextract=%d",
			ErrBadConfig, r.Window, r.MaxK, r.ReextractEvery, st.Window, st.MaxK, st.ReextractEvery)
	}
	if err := st.validate(); err != nil {
		return nil, err
	}
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	n := int64(len(st.Demands))
	start := st.Total - n
	var sum int64
	for i := int64(0); i < n; i++ {
		slot := (start + i) % int64(s.window)
		s.demands[slot] = st.Demands[i]
		s.times[slot] = st.Times[i]
		sum += st.Demands[i]
		s.pre.Push(sum)
		if s.spi != nil {
			s.spi.Push(st.Times[i])
		}
	}
	s.prefixLast = sum
	s.total = st.Total
	s.lastT = st.LastT
	s.sinceAnchor = st.SinceAnchor
	s.reextractions = st.Reextractions
	s.drift = st.Drift
	s.version.Store(st.Version)
	return s, nil
}

// validate checks a decoded State's internal invariants, so Restore (and
// recovery paths feeding it attacker-corruptible bytes) can trust the
// shapes it indexes with.
func (st State) validate() error {
	n := int64(len(st.Demands))
	if len(st.Times) != len(st.Demands) {
		return fmt.Errorf("stream: state has %d demands, %d times", len(st.Demands), len(st.Times))
	}
	if st.Total < 0 || st.Version < 0 || st.SinceAnchor < 0 || st.Reextractions < 0 || st.Drift < 0 {
		return fmt.Errorf("stream: state with negative counters")
	}
	// A State is always captured from a live stream, whose config is in
	// resolved form: these bounds are what New enforces plus the resolved
	// invariants (MaxK capped to Window, ReextractEvery never 0).
	if st.Window < 2 || st.MaxK < 1 || st.MaxK > st.Window || st.ReextractEvery == 0 {
		return fmt.Errorf("stream: state config window=%d maxK=%d reextract=%d is not in resolved form",
			st.Window, st.MaxK, st.ReextractEvery)
	}
	want := st.Total
	if want > int64(st.Window) {
		want = int64(st.Window)
	}
	if n != want {
		return fmt.Errorf("stream: state retains %d samples, total=%d window=%d implies %d", n, st.Total, st.Window, want)
	}
	// Timestamps a real stream can retain are non-negative (validation
	// starts from lastT == 0) and non-decreasing in ingest order.
	last := int64(0)
	for i := int64(0); i < n; i++ {
		if st.Demands[i] < 0 {
			return fmt.Errorf("stream: state demand %d at index %d is negative", st.Demands[i], i)
		}
		if st.Times[i] < last {
			return fmt.Errorf("stream: state timestamps decrease at index %d", i)
		}
		last = st.Times[i]
	}
	if n > 0 && st.LastT != last {
		return fmt.Errorf("stream: state lastT=%d but newest retained timestamp is %d", st.LastT, last)
	}
	return nil
}

// AppendBinary appends the binary encoding of the state to dst and returns
// the extended slice. The layout (all little-endian) is the stateMagic
// followed by the fixed fields, the retained count, and the two columns —
// integrity (CRC) is the container's job (internal/wal frames and snapshot
// files both checksum their payloads).
func (st State) AppendBinary(dst []byte) []byte {
	dst = append(dst, stateMagic...)
	for _, v := range []int64{
		int64(st.Window), int64(st.MaxK), int64(st.ReextractEvery),
		st.Version, st.Total, st.LastT,
		int64(st.SinceAnchor), st.Reextractions, st.Drift,
		int64(len(st.Demands)),
	} {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	for _, v := range st.Demands {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	for _, v := range st.Times {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	return dst
}

// stateFixedFields is the count of int64 fields between the magic and the
// columns in the binary encoding.
const stateFixedFields = 10

// DecodeState parses a binary State. It never panics, whatever bytes
// arrive (FuzzSnapshot feeds it corrupted input), and validates the decoded
// invariants so a successful decode is always Restorable shape-wise.
func DecodeState(b []byte) (State, error) {
	if len(b) < len(stateMagic)+8*stateFixedFields {
		return State{}, fmt.Errorf("stream: state blob %d bytes, need at least %d",
			len(b), len(stateMagic)+8*stateFixedFields)
	}
	if string(b[:len(stateMagic)]) != stateMagic {
		return State{}, fmt.Errorf("stream: state magic %q, want %q", b[:len(stateMagic)], stateMagic)
	}
	b = b[len(stateMagic):]
	var f [stateFixedFields]int64
	for i := range f {
		f[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	b = b[8*stateFixedFields:]
	st := State{
		Window: int(f[0]), MaxK: int(f[1]), ReextractEvery: int(f[2]),
		Version: f[3], Total: f[4], LastT: f[5],
		SinceAnchor: int(f[6]), Reextractions: f[7], Drift: f[8],
	}
	n := f[9]
	if n < 0 || n > int64(st.Window) || st.Window < 2 || st.Window > 1<<31 {
		return State{}, fmt.Errorf("stream: state count %d with window %d", n, st.Window)
	}
	if int64(len(b)) != 16*n {
		return State{}, fmt.Errorf("stream: state count %d implies %d column bytes, have %d", n, 16*n, len(b))
	}
	st.Demands = make([]int64, n)
	st.Times = make([]int64, n)
	for i := int64(0); i < n; i++ {
		st.Demands[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	b = b[8*n:]
	for i := int64(0); i < n; i++ {
		st.Times[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	if err := st.validate(); err != nil {
		return State{}, err
	}
	return st, nil
}
