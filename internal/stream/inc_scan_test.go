package stream

import (
	"math"
	"math/rand"
	"testing"
)

// refScanRange is the pre-unroll scalar scan, kept verbatim as the oracle:
// one modular walk, `>=`/`<=` comparisons so ties refresh the index.
func refScanRange(ring []int64, a, jhi, k, w int64, mx, mxj, mn, mnj int64) (int64, int64, int64, int64) {
	jj := a % w
	kk := (a + k) % w
	for j := a; j < jhi; j++ {
		d := ring[kk] - ring[jj]
		if d >= mx {
			mx, mxj = d, j
		}
		if d <= mn {
			mn, mnj = d, j
		}
		if jj++; jj == w {
			jj = 0
		}
		if kk++; kk == w {
			kk = 0
		}
	}
	return mx, mxj, mn, mnj
}

// TestScanRangeDifferential fuzzes the unrolled scan against the scalar
// oracle across ring sizes, offsets, alignments (wrap positions), and data
// shapes chosen to stress tie-breaking and block skipping.
func TestScanRangeDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	gens := map[string]func(n int) []int64{
		"constant": func(n int) []int64 { return make([]int64, n) }, // all differences tie at 0
		"monotone": func(n int) []int64 {
			vs := make([]int64, n)
			for i := range vs {
				vs[i] = int64(i) * 3
			}
			return vs
		},
		"sawtooth": func(n int) []int64 {
			vs := make([]int64, n)
			for i := range vs {
				vs[i] = int64(i % 5)
			}
			return vs
		},
		"twolevel": func(n int) []int64 { // long ties: many blocks tie the extremum
			vs := make([]int64, n)
			for i := range vs {
				vs[i] = int64((i / 7) % 2)
			}
			return vs
		},
		"random": func(n int) []int64 {
			vs := make([]int64, n)
			for i := range vs {
				vs[i] = rng.Int63n(1000) - 500
			}
			return vs
		},
		"extreme": func(n int) []int64 { // near-overflow magnitudes
			vs := make([]int64, n)
			for i := range vs {
				if i%2 == 0 {
					vs[i] = math.MaxInt64/2 - int64(i)
				} else {
					vs[i] = math.MinInt64/2 + int64(i)
				}
			}
			return vs
		},
	}
	for name, gen := range gens {
		for _, w := range []int64{8, 16, 31, 64} {
			ring := gen(int(w))
			for trial := 0; trial < 200; trial++ {
				k := 1 + rng.Int63n(w-1)
				// total simulates how far the stream has advanced, so a and
				// jhi land at arbitrary ring alignments including wraps.
				total := rng.Int63n(10 * w)
				if total < k+1 {
					total = k + 1
				}
				low := total - w
				if low < 0 {
					low = 0
				}
				jhi := total - k
				a := low + rng.Int63n(jhi-low+1)
				// Seed the running extrema three ways: fresh rescan, already
				// converged, and mid-range values that blocks can tie.
				seeds := [][4]int64{
					{math.MinInt64, -1, math.MaxInt64, -1},
					{0, low, 0, low},
					{5, low, -5, low},
				}
				for _, s := range seeds {
					gmx, gmxj, gmn, gmnj := scanRange(ring, a, jhi, k, w, s[0], s[1], s[2], s[3])
					wmx, wmxj, wmn, wmnj := refScanRange(ring, a, jhi, k, w, s[0], s[1], s[2], s[3])
					if gmx != wmx || gmxj != wmxj || gmn != wmn || gmnj != wmnj {
						t.Fatalf("%s w=%d k=%d a=%d jhi=%d seed=%v:\n got (mx=%d@%d mn=%d@%d)\nwant (mx=%d@%d mn=%d@%d)",
							name, w, k, a, jhi, s, gmx, gmxj, gmn, gmnj, wmx, wmxj, wmn, wmnj)
					}
				}
			}
		}
	}
}

// refInc mirrors Inc but uses the scalar oracle scan, so whole-structure
// evolution (rescans on expiry, chunk splitting) is compared end to end.
type refInc struct {
	maxOff, window int
	ring           []int64
	total          int64
	maxVal, maxIdx []int64
	minVal, minIdx []int64
}

func newRefInc(maxOff, window int) *refInc {
	r := &refInc{
		maxOff: maxOff, window: window,
		ring:   make([]int64, window),
		maxVal: make([]int64, maxOff), maxIdx: make([]int64, maxOff),
		minVal: make([]int64, maxOff), minIdx: make([]int64, maxOff),
	}
	for i := 0; i < maxOff; i++ {
		r.maxIdx[i] = -1
		r.minIdx[i] = -1
	}
	return r
}

func (x *refInc) push(vs []int64) {
	maxChunk := x.window - x.maxOff
	for len(vs) > maxChunk {
		x.pushChunk(vs[:maxChunk])
		vs = vs[maxChunk:]
	}
	if len(vs) > 0 {
		x.pushChunk(vs)
	}
}

func (x *refInc) pushChunk(vs []int64) {
	w := int64(x.window)
	start := x.total
	for i, v := range vs {
		x.ring[(start+int64(i))%w] = v
	}
	x.total += int64(len(vs))
	low := x.total - w
	if low < 0 {
		low = 0
	}
	kEff := x.total - 1
	if kEff > int64(x.maxOff) {
		kEff = int64(x.maxOff)
	}
	for k := int64(1); k <= kEff; k++ {
		jhi := x.total - k
		mx, mxj := x.maxVal[k-1], x.maxIdx[k-1]
		mn, mnj := x.minVal[k-1], x.minIdx[k-1]
		a := start - k
		if a < 0 {
			a = 0
		}
		if mxj < low || mnj < low {
			a = low
			mx, mxj = math.MinInt64, -1
			mn, mnj = math.MaxInt64, -1
		}
		mx, mxj, mn, mnj = refScanRange(x.ring, a, jhi, k, w, mx, mxj, mn, mnj)
		x.maxVal[k-1], x.maxIdx[k-1] = mx, mxj
		x.minVal[k-1], x.minIdx[k-1] = mn, mnj
	}
}

// TestIncDifferentialVsReference evolves Inc and the oracle through the same
// randomized batch schedule and demands full state equality after every
// batch — values AND indices, so rescan timing matches forever after.
func TestIncDifferentialVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	shapes := []func(i int) int64{
		func(i int) int64 { return 0 },
		func(i int) int64 { return int64(i) },
		func(i int) int64 { return int64(i % 9) },
		func(i int) int64 { return rng.Int63n(200) - 100 },
		// Crafted expiry: a huge spike early, then flat — the max expires as
		// the spike leaves the window, forcing the rescan path repeatedly.
		func(i int) int64 {
			if i%40 == 0 {
				return 1_000_000
			}
			return int64(i % 3)
		},
	}
	for si, shape := range shapes {
		for _, cfg := range []struct{ maxOff, window int }{{3, 8}, {7, 20}, {16, 64}} {
			inc, err := NewInc(cfg.maxOff, cfg.window)
			if err != nil {
				t.Fatal(err)
			}
			ref := newRefInc(cfg.maxOff, cfg.window)
			n := 0
			for batch := 0; batch < 60; batch++ {
				b := 1 + rng.Intn(2*cfg.window) // batches larger than a chunk split
				vs := make([]int64, b)
				for i := range vs {
					vs[i] = shape(n + i)
				}
				n += b
				inc.PushBatch(vs)
				ref.push(vs)
				for k := 0; k < cfg.maxOff; k++ {
					if inc.maxVal[k] != ref.maxVal[k] || inc.maxIdx[k] != ref.maxIdx[k] ||
						inc.minVal[k] != ref.minVal[k] || inc.minIdx[k] != ref.minIdx[k] {
						t.Fatalf("shape %d cfg %+v batch %d k=%d: inc (mx=%d@%d mn=%d@%d) != ref (mx=%d@%d mn=%d@%d)",
							si, cfg, batch, k+1,
							inc.maxVal[k], inc.maxIdx[k], inc.minVal[k], inc.minIdx[k],
							ref.maxVal[k], ref.maxIdx[k], ref.minVal[k], ref.minIdx[k])
					}
				}
			}
		}
	}
}
