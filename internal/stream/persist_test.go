package stream

import (
	"errors"
	"reflect"
	"testing"
)

// feedN ingests n single-sample batches with a deterministic demand pattern
// (including zeros and repeats, so extrema rebuilds are exercised).
func feedN(t *testing.T, s *Stream, startT, n int64) {
	t.Helper()
	for i := int64(0); i < n; i++ {
		ts := startT + i*10
		d := (i*7)%13 + (i % 3) // varied, non-negative
		if _, err := s.Ingest([]int64{ts}, []int64{d}); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
}

// queriesEqual asserts two streams answer the full read surface identically.
func queriesEqual(t *testing.T, want, got *Stream) {
	t.Helper()
	ww, errW := want.Workload()
	wg, errG := got.Workload()
	if (errW == nil) != (errG == nil) {
		t.Fatalf("Workload errors diverge: %v vs %v", errW, errG)
	}
	if errW == nil && !reflect.DeepEqual(ww, wg) {
		t.Fatalf("Workload diverges:\n want %+v\n  got %+v", ww, wg)
	}
	sw, mw, errW := want.Spans()
	sg, mg, errG := got.Spans()
	if (errW == nil) != (errG == nil) {
		t.Fatalf("Spans errors diverge: %v vs %v", errW, errG)
	}
	if errW == nil && (!reflect.DeepEqual(sw, sg) || !reflect.DeepEqual(mw, mg)) {
		t.Fatalf("Spans diverge")
	}
	fw, errW := want.MinFrequency(0)
	fg, errG := got.MinFrequency(0)
	if (errW == nil) != (errG == nil) {
		t.Fatalf("MinFrequency errors diverge: %v vs %v", errW, errG)
	}
	if errW == nil && !reflect.DeepEqual(fw, fg) {
		t.Fatalf("MinFrequency diverges:\n want %+v\n  got %+v", fw, fg)
	}
	stw, stg := want.Stats(), got.Stats()
	if !reflect.DeepEqual(stw, stg) {
		t.Fatalf("Stats diverge:\n want %+v\n  got %+v", stw, stg)
	}
	if want.Version() != got.Version() {
		t.Fatalf("Version diverges: %d vs %d", want.Version(), got.Version())
	}
}

func TestExportRestoreRoundTrip(t *testing.T) {
	for _, n := range []int64{0, 1, 5, 64, 200} { // below, at, and past the window
		cfg := Config{Window: 64, MaxK: 16}
		orig, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		feedN(t, orig, 100, n)

		st := orig.ExportState()
		blob := st.AppendBinary(nil)
		dec, err := DecodeState(blob)
		if err != nil {
			t.Fatalf("n=%d DecodeState: %v", n, err)
		}
		// Compare via re-encoding: DeepEqual would flag nil vs empty columns,
		// a distinction the codec (rightly) does not preserve.
		if reblob := dec.AppendBinary(nil); string(reblob) != string(blob) {
			t.Fatalf("n=%d state round-trip diverges:\n want %+v\n  got %+v", n, st, dec)
		}
		restored, err := Restore(cfg, dec)
		if err != nil {
			t.Fatalf("n=%d Restore: %v", n, err)
		}
		queriesEqual(t, orig, restored)
	}
}

// TestRestoredStreamEvolvesIdentically is the property durability actually
// relies on: export mid-history, restore, then feed both streams the same
// tail — every answer (including anchor re-extractions, whose cadence
// SinceAnchor preserves) must stay identical.
func TestRestoredStreamEvolvesIdentically(t *testing.T) {
	cfg := Config{Window: 32, MaxK: 8, ReextractEvery: 10}
	orig, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feedN(t, orig, 0, 47) // mid-anchor-cycle on purpose

	restored, err := Restore(cfg, orig.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	queriesEqual(t, orig, restored)

	feedN(t, orig, 1000, 53)
	feedN(t, restored, 1000, 53)
	queriesEqual(t, orig, restored)

	os, rs := orig.Stats(), restored.Stats()
	if os.Reextractions != rs.Reextractions {
		t.Fatalf("anchor cadence diverged: %d vs %d re-extractions", os.Reextractions, rs.Reextractions)
	}
}

func TestRestoreConfigMismatch(t *testing.T) {
	orig, err := New(Config{Window: 64, MaxK: 16})
	if err != nil {
		t.Fatal(err)
	}
	feedN(t, orig, 0, 10)
	st := orig.ExportState()
	for _, cfg := range []Config{
		{Window: 128, MaxK: 16},
		{Window: 64, MaxK: 8},
		{Window: 64, MaxK: 16, ReextractEvery: 7},
	} {
		if _, err := Restore(cfg, st); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("Restore with config %+v: err=%v, want ErrBadConfig", cfg, err)
		}
	}
}

func TestDecodeStateRejectsCorruption(t *testing.T) {
	orig, err := New(Config{Window: 16, MaxK: 4})
	if err != nil {
		t.Fatal(err)
	}
	feedN(t, orig, 0, 8)
	good := orig.ExportState().AppendBinary(nil)

	cases := map[string][]byte{
		"empty":       {},
		"short":       good[:len(good)/2],
		"bad magic":   append([]byte("NOTSTRM1"), good[8:]...),
		"truncated":   good[:len(good)-1],
		"trailing":    append(append([]byte{}, good...), 0),
		"neg demands": nil, // filled below
	}
	// A demand column byte flipped to make a value negative.
	neg := append([]byte{}, good...)
	neg[len(neg)-8*9-1] = 0xFF // high byte of a demand → negative int64
	cases["neg demands"] = neg

	for name, b := range cases {
		if _, err := DecodeState(b); err == nil {
			t.Errorf("%s: DecodeState accepted corrupt input", name)
		}
	}
}
